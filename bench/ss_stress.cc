// SS-heavy steady-state stress: the same budget-bounded zipf update mix
// run twice — inline mode (eviction/GC/consolidation amortized onto the
// op path every maintenance_interval_ops) and background mode (a
// MaintenanceScheduler doing the same work on worker threads, with the
// op path only signalling pressure). Prints throughput, tail latencies
// (p50/p99/p999), the MM/SS per-class split, and the maintenance
// attribution counters.
//
// This binary is also the enforcement point for the background-mode
// contract: it exits non-zero if the background run charged ANY
// maintenance work to a foreground thread (foreground_maintenance_ops
// must be exactly 0), or if background workers did no work at all.
// scripts/check.sh runs it as the `stress` lane.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/sharded_store.h"
#include "workload/runner.h"

namespace costperf {
namespace {

using bench::Banner;

constexpr size_t kShards = 4;
constexpr int kThreads = 4;
constexpr uint64_t kRecords = 24'000;
constexpr uint64_t kOpsPerThread = 30'000;
constexpr size_t kValueSize = 256;

core::CachingStoreOptions StressOptions(bool background) {
  core::CachingStoreOptions o;
  // ~1.5 MiB budget against a ~7 MiB dataset: every worker thread is
  // under sustained eviction pressure and the log accumulates dead space
  // fast enough that GC triggers during the run.
  o.memory_budget_bytes = (1536 << 10) / kShards;
  o.device.capacity_bytes = 512ull << 20;
  o.device.max_iops = 0;
  o.maintenance_interval_ops = 128;
  if (background) {
    o.background.workers = 2;
    o.background.log_dead_trigger = 0.5;
  }
  return o;
}

workload::RunReport RunOnce(bool background) {
  auto store =
      core::ShardedStore::OfCaching(kShards, StressOptions(background));
  workload::RunnerOptions ropts;
  ropts.threads = kThreads;
  ropts.ops_per_thread = kOpsPerThread;
  ropts.latency_sample = 4;
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbA(kRecords);
  spec.value_size = kValueSize;
  workload::Runner runner(store.get(), spec, ropts);
  return runner.LoadAndRun();
}

int Run() {
  Banner("SS-heavy steady state — inline vs background maintenance",
         "Budget-bounded zipf 50/50 mix; background mode must complete "
         "the run with zero foreground maintenance ops.");

  struct ModeRow {
    const char* name;
    bool background;
    workload::RunReport report;
  };
  ModeRow rows[] = {{"inline", false, {}}, {"background", true, {}}};

  printf("\n%-11s | %12s | %8s %8s %8s | %10s %10s %8s %12s\n", "mode",
         "wall ops/s", "p50us", "p99us", "p999us", "fg ops", "bg steps",
         "stalls", "stall us");
  for (ModeRow& row : rows) {
    row.report = RunOnce(row.background);
    const workload::RunReport& r = row.report;
    if (r.failed_ops > 0) {
      printf("FAIL: %s mode had %llu failed ops\n", row.name,
             (unsigned long long)r.failed_ops);
      return 1;
    }
    printf("%-11s | %12.0f | %8.1f %8.1f %8.1f | %10llu %10llu %8llu "
           "%12llu\n",
           row.name, r.ops_per_wall_sec, r.p50_micros, r.p99_micros,
           r.p999_micros, (unsigned long long)r.foreground_maintenance_ops,
           (unsigned long long)r.background_maintenance_steps,
           (unsigned long long)r.write_stalls,
           (unsigned long long)r.stall_micros_total);
    if (r.mm_latency_micros.count() > 0 || r.ss_latency_micros.count() > 0) {
      printf("%-11s | classes: mm=%llu (p50 %.1f / p99 %.1f)  ss=%llu "
             "(p50 %.1f / p99 %.1f)\n",
             "", (unsigned long long)r.mm_latency_micros.count(),
             r.mm_p50_micros, r.mm_p99_micros,
             (unsigned long long)r.ss_latency_micros.count(),
             r.ss_p50_micros, r.ss_p99_micros);
    }
  }

  const workload::RunReport& inline_r = rows[0].report;
  const workload::RunReport& bg_r = rows[1].report;

  // The contract under test. Inline mode proves the workload actually
  // generates maintenance pressure; background mode proves all of it
  // moved off the foreground path.
  int rc = 0;
  if (inline_r.foreground_maintenance_ops == 0) {
    printf("\nFAIL: inline run did no foreground maintenance — the "
           "workload is not generating pressure, so the background "
           "assertion below would be vacuous\n");
    rc = 1;
  }
  if (bg_r.foreground_maintenance_ops != 0) {
    printf("\nFAIL: background run charged %llu maintenance ops to "
           "foreground threads (contract: exactly 0)\n",
           (unsigned long long)bg_r.foreground_maintenance_ops);
    rc = 1;
  }
  if (bg_r.background_maintenance_steps == 0) {
    printf("\nFAIL: background run executed no scheduler steps under "
           "sustained eviction pressure\n");
    rc = 1;
  }
  if (rc == 0) {
    printf("\nOK: steady-state foreground_maintenance_ops == 0 in "
           "background mode (%llu scheduler steps did the work)\n",
           (unsigned long long)bg_r.background_maintenance_steps);
  }
  return rc;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
