// Reproduces the §6.1 claims about log-structuring:
//  (1) many pages per device write (large flush buffers),
//  (2) variable-size pages save ~30% media vs fixed 4K blocks (B-tree
//      pages run ~ln(2) ~ 69% full),
//  (3) delta-only flushes shrink write volume further when the base page
//      is already on flash.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"

namespace costperf {
namespace {

using bench::Banner;

int Run() {
  Banner("§6.1 — log-structuring for reduced writes",
         "One large write per segment; variable pages ~30% smaller than "
         "fixed blocks; delta flushes smaller still.");

  constexpr uint64_t kRecords = 40'000;
  constexpr uint64_t kBlockBytes = 4096;

  // --- baseline: full-page flushes of a freshly loaded store ---
  core::CachingStore store(bench::FigureStoreOptions());
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kRecords);
  spec.value_size = 100;
  workload::Workload loader(spec);
  if (!loader.Load(&store).ok()) return 1;
  if (!store.Checkpoint().ok()) return 1;

  auto log_stats = store.log_store()->stats();
  auto dev_stats = store.device()->stats();
  const uint64_t pages = log_stats.records_appended;
  const uint64_t variable_bytes = log_stats.payload_bytes_appended;
  const uint64_t fixed_bytes = pages * kBlockBytes;

  printf("\nfull checkpoint of %llu records:\n",
         (unsigned long long)kRecords);
  printf("  pages flushed:            %12llu\n", (unsigned long long)pages);
  printf("  device writes:            %12llu  (%.0f pages per write — one "
         "large write per segment)\n",
         (unsigned long long)dev_stats.writes,
         pages / double(dev_stats.writes ? dev_stats.writes : 1));
  printf("  variable-size bytes:      %12llu  (avg %.0f B/page)\n",
         (unsigned long long)variable_bytes, variable_bytes / double(pages));
  printf("  fixed 4K-block bytes:     %12llu\n",
         (unsigned long long)fixed_bytes);
  printf("  variable/fixed = %.2f  (paper: ~0.7, i.e. ~30%% saved)\n",
         variable_bytes / double(fixed_bytes));

  // --- delta-only flushes after sparse updates ---
  // Evict everything, blind-update 5% of records, flush deltas only.
  // (Snapshot the leaf page ids while resident: walking them later would
  // page everything back in.)
  std::vector<mapping::PageId> leaf_pids = store.tree()->LeafPageIds();
  if (!store.EvictAll().ok()) return 1;
  Random rng(66);
  const uint64_t updates = kRecords / 20;
  for (uint64_t i = 0; i < updates; ++i) {
    std::string key = loader.KeyAt(rng.Uniform(kRecords));
    std::string val(100, 'u');
    if (!store.Put(Slice(key), Slice(val)).ok()) return 1;
  }
  uint64_t full_before = store.tree()->stats().bytes_flushed;
  // Policy A: delta-only.
  for (auto pid : leaf_pids) {
    (void)store.tree()->FlushPage(pid, bwtree::FlushMode::kDeltaOnly);
  }
  uint64_t delta_bytes = store.tree()->stats().bytes_flushed - full_before;
  uint64_t delta_flushes = store.tree()->stats().delta_flushes;

  // Policy B (counterfactual on the same update count): full page
  // rewrite of every touched page.
  uint64_t touched_pages = delta_flushes;
  double full_page_bytes = touched_pages * (variable_bytes / double(pages));

  printf("\nafter blind-updating %llu records on evicted pages:\n",
         (unsigned long long)updates);
  printf("  delta-only flush bytes:   %12llu over %llu pages "
         "(avg %.0f B/page)\n",
         (unsigned long long)delta_bytes, (unsigned long long)delta_flushes,
         delta_flushes ? delta_bytes / double(delta_flushes) : 0);
  printf("  full-page rewrite bytes:  %12.0f (same pages, counterfactual)\n",
         full_page_bytes);
  printf("  delta/full = %.3f — delta updates capture the new page state "
         "for a fraction of the write volume (Fig. 5)\n",
         full_page_bytes > 0 ? delta_bytes / full_page_bytes : 0.0);

  if (variable_bytes >= fixed_bytes) {
    printf("WARNING: variable-size pages did not save media\n");
    return 1;
  }
  if (delta_bytes >= full_page_bytes) {
    printf("WARNING: delta flushes did not reduce write volume\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
