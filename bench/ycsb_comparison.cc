// YCSB-style workload comparison of the two systems the paper analyzes:
// the data caching store (Bw-tree/LLAMA, memory-budgeted) and the main
// memory store (MassTree, everything resident). Two parts:
//
//  1. Single-thread A/B/C/D/F mixes — CPU-time throughput (the paper's
//     performance measure), the caching store's miss fraction F, and
//     memory footprints: the raw ingredients of Figures 1-3.
//  2. A thread-count sweep ({1,2,4,8} workers over a ShardedStore of
//     each system) — the multi-core deployment the paper's per-core
//     numbers get scaled to. "aggregate ops/s" is ops divided by the
//     slowest worker's CPU time, i.e. throughput with one core per
//     worker (on a core-limited CI host the wall column will not scale;
//     the CPU-time column is the machine-independent number).
//
// The measured rates are fed back into costmodel::Calibration so the
// cost model's ROPS/R come from this substrate rather than the paper's
// hardware.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/memory_store.h"
#include "core/sharded_store.h"
#include "costmodel/calibration.h"
#include "costmodel/cost_params.h"
#include "workload/runner.h"

namespace costperf {
namespace {

using bench::Banner;

constexpr uint64_t kRecords = 60'000;
constexpr uint64_t kOps = 120'000;
constexpr size_t kShards = 8;
constexpr uint64_t kSweepRecords = 20'000;
constexpr uint64_t kSweepOps = 40'000;  // total, split across threads

core::CachingStoreOptions BudgetedShardOptions() {
  core::CachingStoreOptions o;
  // ~1 MiB total across shards against a ~2.6 MiB dataset, so the sweep
  // runs under real budget pressure (F > 0) and the calibration fit gets
  // miss-fraction observations to work with.
  o.memory_budget_bytes = (1 << 20) / kShards;
  o.device.capacity_bytes = 256ull << 20;
  o.device.max_iops = 0;
  o.maintenance_interval_ops = 128;
  return o;
}

struct Row {
  const char* name;
  workload::WorkloadSpec spec;
};

int RunSingleThreadMixes() {
  Banner("YCSB A/B/C/D/F — caching store vs main-memory store",
         "Throughput in ops per CPU-second; F = SS fraction of the "
         "caching store's ops under its DRAM budget.");

  Row rows[] = {
      {"A 50r/50u zipf", workload::WorkloadSpec::YcsbA(kRecords)},
      {"B 95r/5u zipf", workload::WorkloadSpec::YcsbB(kRecords)},
      {"C 100r zipf", workload::WorkloadSpec::YcsbC(kRecords)},
      {"D 95r/5i latest", workload::WorkloadSpec::YcsbD(kRecords)},
      {"F 50r/50rmw zipf", workload::WorkloadSpec::YcsbF(kRecords)},
  };

  printf("\n%-18s | %14s %8s %12s | %14s %12s\n", "workload",
         "caching ops/s", "F", "resident(B)", "masstree ops/s", "bytes");
  for (const Row& row : rows) {
    // Caching store with a budget ~40% of the data set.
    core::CachingStoreOptions copts;
    copts.memory_budget_bytes = 4 << 20;
    copts.device.capacity_bytes = 1ull << 30;
    copts.device.max_iops = 0;
    copts.maintenance_interval_ops = 128;
    core::CachingStore caching(copts);
    core::MemoryStore memory;

    workload::WorkloadSpec spec = row.spec;
    spec.value_size = 100;
    {
      workload::Workload l1(spec);
      if (!l1.Load(&caching).ok()) return 1;
      workload::Workload l2(spec);
      if (!l2.Load(&memory).ok()) return 1;
    }
    caching.Maintain();

    // Miss fraction from the structured stats delta — no component
    // poking, no string parsing.
    core::KvStoreStats before = caching.Stats();
    workload::Workload w1(spec, 1);
    auto r1 = workload::RunWorkload(&caching, &w1, kOps);
    core::KvStoreStats after = caching.Stats();
    core::KvStoreStats delta;
    delta.hits = after.hits - before.hits;
    delta.misses = after.misses - before.misses;
    double f = delta.MissFraction();

    workload::Workload w2(spec, 1);
    auto r2 = workload::RunWorkload(&memory, &w2, kOps);

    printf("%-18s | %14.0f %8.3f %12llu | %14.0f %12llu\n", row.name,
           r1.ops_per_cpu_sec, f,
           (unsigned long long)caching.cache()->resident_bytes(),
           r2.ops_per_cpu_sec,
           (unsigned long long)memory.MemoryFootprintBytes());
    if (r1.failed_ops + r2.failed_ops > 0) {
      printf("WARNING: %llu failed ops\n",
             (unsigned long long)(r1.failed_ops + r2.failed_ops));
      return 1;
    }
  }
  printf("\nThe main-memory store is faster on every mix (the paper's "
         "P_x) but holds the whole database in DRAM; the caching store "
         "holds a fraction and pays with SS operations — the trade the "
         "cost model prices (Figs. 1-3).\n");
  return 0;
}

struct SweepPoint {
  int threads = 0;
  workload::RunReport report;
  double miss_fraction = 0;
};

// One (store kind, workload) sweep over thread counts. Returns the
// collected points, or empty on failure.
std::vector<SweepPoint> Sweep(const char* store_name,
                              const workload::WorkloadSpec& base_spec,
                              bool caching) {
  std::vector<SweepPoint> points;
  for (int threads : {1, 2, 4, 8}) {
    std::unique_ptr<core::ShardedStore> store =
        caching ? core::ShardedStore::OfCaching(kShards,
                                                BudgetedShardOptions())
                : core::ShardedStore::OfMemory(kShards);
    workload::WorkloadSpec spec = base_spec;
    workload::RunnerOptions opts;
    opts.threads = threads;
    opts.ops_per_thread = kSweepOps / threads;
    workload::Runner runner(store.get(), spec, opts);

    core::KvStoreStats before = store->Stats();
    workload::RunReport report = runner.LoadAndRun();
    core::KvStoreStats after = store->Stats();
    if (report.failed_ops > 0) {
      printf("WARNING: %s %d threads: %llu failed ops\n", store_name,
             threads, (unsigned long long)report.failed_ops);
      return {};
    }

    SweepPoint p;
    p.threads = threads;
    p.report = report;
    core::KvStoreStats delta;
    delta.hits = after.hits - before.hits;
    delta.misses = after.misses - before.misses;
    p.miss_fraction = delta.MissFraction();
    points.push_back(std::move(p));

    printf("%-10s %7d | %12.0f %12.0f %12.0f | %8.1f %8.1f | %6.3f\n",
           store_name, threads, report.ops_per_wall_sec,
           report.ops_per_cpu_sec, report.modeled_parallel_ops_per_sec,
           report.p50_micros, report.p99_micros, p.miss_fraction);
  }
  return points;
}

int RunThreadSweep() {
  Banner("Thread scaling — ShardedStore over 8 shards, T worker threads",
         "aggregate = ops / slowest worker's CPU seconds (one core per "
         "worker); wall-clock scaling depends on host core count.");

  struct SweepSpec {
    const char* workload_name;
    workload::WorkloadSpec spec;
  };
  SweepSpec sweeps[] = {
      {"YCSB-C", workload::WorkloadSpec::YcsbC(kSweepRecords)},
      {"YCSB-A", workload::WorkloadSpec::YcsbA(kSweepRecords)},
  };

  std::vector<SweepPoint> caching_c_points;
  double memory_c_1thread_cpu_rate = 0;
  for (const SweepSpec& sw : sweeps) {
    printf("\n[%s]\n%-10s %7s | %12s %12s %12s | %8s %8s | %6s\n",
           sw.workload_name, "store", "threads", "wall ops/s", "cpu ops/s",
           "aggregate", "p50us", "p99us", "F");
    auto caching_points = Sweep("caching", sw.spec, /*caching=*/true);
    auto memory_points = Sweep("masstree", sw.spec, /*caching=*/false);
    if (caching_points.empty() || memory_points.empty()) return 1;

    // The acceptance gate: 4 workers must out-run 1 worker on YCSB-C.
    if (sw.spec.update_proportion == 0.0) {
      caching_c_points = caching_points;
      memory_c_1thread_cpu_rate = memory_points[0].report.ops_per_cpu_sec;
      for (const auto& points : {caching_points, memory_points}) {
        double t1 = points[0].report.modeled_parallel_ops_per_sec;
        double t4 = points[2].report.modeled_parallel_ops_per_sec;
        if (t4 <= t1) {
          printf("WARNING: 4-thread aggregate (%.0f) <= 1-thread (%.0f)\n",
                 t4, t1);
          return 1;
        }
      }
    }
  }
  printf("\nPer-CPU-second rates stay flat as threads grow (shard mutexes "
         "block without burning CPU), so aggregate throughput scales with "
         "the worker count — the sharding argument for multi-core boxes.\n");

  // Feed the measured rates back into the cost model: ROPS from the
  // 1-thread main-memory run, R from the caching store's (F, throughput)
  // observations against its all-cached rate.
  Banner("Calibration — measured rates applied to the cost model",
         "ROPS from MassTree, R fitted from the caching store's miss "
         "fraction vs throughput (Eq. 3).");
  {
    auto p0_store = core::ShardedStore::OfCaching(kShards, [] {
      core::CachingStoreOptions o = BudgetedShardOptions();
      o.memory_budget_bytes = 0;  // unbounded: the all-cached rate P0
      return o;
    }());
    workload::RunnerOptions opts;
    opts.threads = 1;
    opts.ops_per_thread = kSweepOps;
    opts.record_latencies = false;
    workload::Runner runner(p0_store.get(),
                            workload::WorkloadSpec::YcsbC(kSweepRecords),
                            opts);
    workload::RunReport p0_report = runner.LoadAndRun();

    std::vector<costmodel::MixedObservation> observations;
    for (const SweepPoint& p : caching_c_points) {
      if (p.miss_fraction > 0) {
        observations.push_back(
            {p.miss_fraction, p.report.ops_per_cpu_sec});
      }
    }
    costmodel::CalibrationReport report = costmodel::DeriveRFromObservations(
        p0_report.ops_per_cpu_sec, observations);
    report.rops = memory_c_1thread_cpu_rate;
    costmodel::CostParams calibrated = costmodel::ApplyCalibration(
        costmodel::CostParams::PaperDefaults(), report);
    printf("\nmeasured: %s\ncalibrated params: %s\n",
           report.ToString().c_str(), calibrated.ToString().c_str());
  }
  return 0;
}

// Smoke sweep for scripts/bench_smoke.sh: the thread sweep restricted to
// an *in-cache* read-heavy mix (YCSB-C, unbounded budget), with one JSON
// row per thread count so successive PRs can diff the scaling trajectory.
// Every store-side mutex is off the read path here, so this sweep is the
// direct measure of hot-path serialization (cache Touch, shard routing).
// A "batched_sweep" section repeats it with reads issued as 64-key
// MultiGet batches — the AMAC-interleaved index probe path; 64 keys
// over 8 shards leaves ~8 probes per shard group, a full interleave
// window for the state machine — recording
// the batched/single throughput ratio per thread count. A third section
// ("ss_sweep") runs a budget-bounded SS-heavy mix in inline vs
// background maintenance mode so the tail-latency effect of moving
// eviction/GC off the op path is diffable too.
int RunSmokeJson(const char* path) {
  constexpr uint64_t kSmokeRecords = 20'000;
  // Total ops, split across threads. Large enough that one row runs for
  // hundreds of milliseconds — on a core-limited host the 8-thread wall
  // number is otherwise dominated by scheduler jitter.
  constexpr uint64_t kSmokeOps = 320'000;

  FILE* out = fopen(path, "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  fprintf(out,
          "{\n  \"bench\": \"smoke_in_cache_read_heavy\",\n"
          "  \"workload\": \"ycsb-c\",\n  \"records\": %llu,\n"
          "  \"total_ops\": %llu,\n  \"shards\": %zu,\n  \"sweep\": [\n",
          (unsigned long long)kSmokeRecords, (unsigned long long)kSmokeOps,
          kShards);
  printf("smoke: in-cache YCSB-C sweep -> %s\n", path);
  printf("%7s | %12s %12s %12s | %8s %8s %8s\n", "threads", "wall ops/s",
         "cpu ops/s", "aggregate", "p50us", "p99us", "p999us");

  bool first = true;
  double single_aggregate[4] = {0, 0, 0, 0};  // per thread-count row
  int row_index = 0;
  for (int threads : {1, 2, 4, 8}) {
    core::CachingStoreOptions opts;
    opts.memory_budget_bytes = 0;  // unbounded: fully in-cache
    opts.device.capacity_bytes = 256ull << 20;
    opts.device.max_iops = 0;
    opts.maintenance_interval_ops = 128;
    // Sampled recency: with an unbounded budget eviction never consults
    // ticks, so only the CLOCK reference bit matters — skip 15/16 of the
    // hot-path clock reads.
    opts.cache_touch_sample = 16;
    auto store = core::ShardedStore::OfCaching(kShards, opts);

    workload::RunnerOptions ropts;
    ropts.threads = threads;
    ropts.ops_per_thread = kSmokeOps / threads;
    ropts.latency_sample = 8;  // p50/p99 from 1-in-8 sampled ops
    workload::Runner runner(store.get(),
                            workload::WorkloadSpec::YcsbC(kSmokeRecords),
                            ropts);
    workload::RunReport r = runner.LoadAndRun();
    if (r.failed_ops > 0) {
      fprintf(stderr, "smoke: %llu failed ops at %d threads\n",
              (unsigned long long)r.failed_ops, threads);
      fclose(out);
      return 1;
    }
    single_aggregate[row_index++] = r.modeled_parallel_ops_per_sec;
    printf("%7d | %12.0f %12.0f %12.0f | %8.1f %8.1f %8.1f\n", threads,
           r.ops_per_wall_sec, r.ops_per_cpu_sec,
           r.modeled_parallel_ops_per_sec, r.p50_micros, r.p99_micros,
           r.p999_micros);
    fprintf(out,
            "%s    {\"threads\": %d, \"ops_per_wall_sec\": %.0f, "
            "\"ops_per_cpu_sec\": %.0f, "
            "\"modeled_parallel_ops_per_sec\": %.0f, "
            "\"p50_micros\": %.2f, \"p99_micros\": %.2f, "
            "\"p999_micros\": %.2f}",
            first ? "" : ",\n", threads, r.ops_per_wall_sec,
            r.ops_per_cpu_sec, r.modeled_parallel_ops_per_sec, r.p50_micros,
            r.p99_micros, r.p999_micros);
    first = false;
  }
  fprintf(out, "\n  ],\n");

  // The same in-cache sweep issuing reads as 16-key MultiGet batches:
  // grouped per shard by ShardedStore::BatchGet, then served by the
  // Bw-tree's AMAC-interleaved MultiGetBatch with SIMD node search.
  // "x single" is the ratio against the same-thread single-probe row —
  // the acceptance gate for the batched read path is >= 1.5x at 8T.
  printf("smoke: in-cache YCSB-C sweep, batched reads (batch=64)\n");
  printf("%7s | %12s %12s %12s | %8s\n", "threads", "wall ops/s",
         "cpu ops/s", "aggregate", "x single");
  fprintf(out, "  \"batched_sweep\": [\n");
  first = true;
  row_index = 0;
  for (int threads : {1, 2, 4, 8}) {
    core::CachingStoreOptions opts;
    opts.memory_budget_bytes = 0;
    opts.device.capacity_bytes = 256ull << 20;
    opts.device.max_iops = 0;
    opts.maintenance_interval_ops = 128;
    opts.cache_touch_sample = 16;
    auto store = core::ShardedStore::OfCaching(kShards, opts);

    workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kSmokeRecords);
    spec.batch_size = 64;
    workload::RunnerOptions ropts;
    ropts.threads = threads;
    ropts.ops_per_thread = kSmokeOps / threads;
    ropts.latency_sample = 8;
    workload::Runner runner(store.get(), spec, ropts);
    workload::RunReport r = runner.LoadAndRun();
    if (r.failed_ops > 0) {
      fprintf(stderr, "smoke: %llu failed ops at %d threads (batched)\n",
              (unsigned long long)r.failed_ops, threads);
      fclose(out);
      return 1;
    }
    const double base = single_aggregate[row_index++];
    const double ratio =
        base > 0 ? r.modeled_parallel_ops_per_sec / base : 0.0;
    printf("%7d | %12.0f %12.0f %12.0f | %7.2fx\n", threads,
           r.ops_per_wall_sec, r.ops_per_cpu_sec,
           r.modeled_parallel_ops_per_sec, ratio);
    fprintf(out,
            "%s    {\"threads\": %d, \"batch_size\": 64, "
            "\"ops_per_wall_sec\": %.0f, \"ops_per_cpu_sec\": %.0f, "
            "\"modeled_parallel_ops_per_sec\": %.0f, "
            "\"vs_single_probe\": %.3f}",
            first ? "" : ",\n", threads, r.ops_per_wall_sec,
            r.ops_per_cpu_sec, r.modeled_parallel_ops_per_sec, ratio);
    first = false;
  }
  fprintf(out, "\n  ],\n");

  // SS-heavy steady state, inline vs background maintenance: the same
  // budget-bounded zipf update mix with maintenance amortized onto the
  // op path vs done by scheduler workers. The diffable claims are the
  // tail latencies (background mode removes the periodic inline
  // eviction/GC bursts from the op path) and the attribution counters
  // (foreground_maintenance_ops must be 0 in background mode).
  printf("smoke: SS-heavy inline vs background maintenance\n");
  printf("%-11s | %12s | %8s %8s %8s | %10s %10s\n", "mode", "wall ops/s",
         "p50us", "p99us", "p999us", "fg ops", "bg steps");
  fprintf(out, "  \"ss_sweep\": [\n");
  first = true;
  for (int background = 0; background <= 1; ++background) {
    core::CachingStoreOptions opts;
    opts.memory_budget_bytes = (1536 << 10) / kShards;
    opts.device.capacity_bytes = 512ull << 20;
    opts.device.max_iops = 0;
    opts.maintenance_interval_ops = 128;
    if (background != 0) {
      opts.background.workers = 2;
      opts.background.log_dead_trigger = 0.5;
    }
    auto store = core::ShardedStore::OfCaching(kShards, opts);

    workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbA(24'000);
    spec.value_size = 256;
    workload::RunnerOptions ropts;
    ropts.threads = 4;
    ropts.ops_per_thread = 30'000;
    ropts.latency_sample = 4;
    workload::Runner runner(store.get(), spec, ropts);
    workload::RunReport r = runner.LoadAndRun();
    if (r.failed_ops > 0) {
      fprintf(stderr, "smoke: %llu failed ops in ss sweep (%s)\n",
              (unsigned long long)r.failed_ops,
              background ? "background" : "inline");
      fclose(out);
      return 1;
    }
    const char* mode = background ? "background" : "inline";
    printf("%-11s | %12.0f | %8.1f %8.1f %8.1f | %10llu %10llu\n", mode,
           r.ops_per_wall_sec, r.p50_micros, r.p99_micros, r.p999_micros,
           (unsigned long long)r.foreground_maintenance_ops,
           (unsigned long long)r.background_maintenance_steps);
    fprintf(out,
            "%s    {\"mode\": \"%s\", \"ops_per_wall_sec\": %.0f, "
            "\"p50_micros\": %.2f, \"p99_micros\": %.2f, "
            "\"p999_micros\": %.2f, \"foreground_maintenance_ops\": %llu, "
            "\"background_maintenance_steps\": %llu, "
            "\"write_stalls\": %llu, \"stall_micros_total\": %llu}",
            first ? "" : ",\n", mode, r.ops_per_wall_sec, r.p50_micros,
            r.p99_micros, r.p999_micros,
            (unsigned long long)r.foreground_maintenance_ops,
            (unsigned long long)r.background_maintenance_steps,
            (unsigned long long)r.write_stalls,
            (unsigned long long)r.stall_micros_total);
    first = false;
  }
  fprintf(out, "\n  ],\n");

  // Three-tier hierarchy sweep (§7.2 / Fig. 8): the same Zipfian
  // read-heavy mix at three DRAM budgets — fully in-cache, DRAM ~25% of
  // the working set (the CSS sweet spot), and SS-heavy (~10%) — each run
  // with the compressed tier off and on. Values are structured
  // (compressible), maintenance is background-only. The diffable claims:
  // css_hits > 0 and foreground_maintenance_ops == 0 on every tier row,
  // hit_rate_per_dollar improves at the constrained budget (cold pages
  // pay flash rent at the measured compression ratio instead of DRAM
  // rent), and the measured T_i / CSS breakeven land beside the modeled
  // Fig. 8 values.
  printf("smoke: CSS tier sweep (zipfian, budgets x {tier off, on})\n");
  printf("%-16s %-5s | %11s %7s %9s %9s | %12s | %9s %9s\n", "budget",
         "tier", "wall ops/s", "hitrate", "css_hits", "demotions",
         "hr_per_$", "T_i meas", "T_i model");
  fprintf(out, "  \"css_sweep\": [\n");
  first = true;
  constexpr uint64_t kCssRecords = 24'000;
  struct BudgetRow {
    const char* name;
    uint64_t budget_total;  // 0 = unbounded
  };
  // ~24k records x 256B values ≈ 7.5 MiB of leaf bytes: 25% ≈ 1.9 MiB,
  // 10% ≈ 768 KiB.
  const BudgetRow budget_rows[] = {
      {"in_cache", 0},
      {"css_constrained", 1920ull << 10},
      {"ss_heavy", 768ull << 10},
  };
  double hrpd_off = 0;  // css_constrained comparison pair
  double hrpd_on = 0;
  for (const BudgetRow& b : budget_rows) {
    for (int tier_on = 0; tier_on <= 1; ++tier_on) {
      core::CachingStoreOptions opts;
      opts.memory_budget_bytes = b.budget_total / kShards;
      opts.device.capacity_bytes = 512ull << 20;
      opts.device.max_iops = 0;
      opts.maintenance_interval_ops = 128;
      opts.background.workers = 2;
      opts.background.log_dead_trigger = 0.5;
      if (tier_on != 0) {
        opts.tier.css_budget_bytes = (8ull << 20) / kShards;
        // Bench runs are sub-second; a 20ms idle floor still separates
        // the zipf-hot head (touched every few microseconds) from the
        // cold tail.
        opts.tier.demote_idle_seconds = 0.02;
      }
      auto store = core::ShardedStore::OfCaching(kShards, opts);

      workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbB(kCssRecords);
      spec.value_size = 256;
      spec.compressible_values = true;
      workload::RunnerOptions ropts;
      ropts.threads = 4;
      ropts.ops_per_thread = 30'000;
      ropts.latency_sample = 4;
      workload::Runner runner(store.get(), spec, ropts);
      workload::RunReport r = runner.LoadAndRun();
      if (r.failed_ops > 0) {
        fprintf(stderr, "smoke: %llu failed ops in css sweep (%s, tier %s)\n",
                (unsigned long long)r.failed_ops, b.name,
                tier_on ? "on" : "off");
        fclose(out);
        return 1;
      }
      const core::KvStoreStats s = store->Stats();
      // Two-level cache hit rate, Fig. 8's framing: the compressed tier
      // is a cache level, so an op served from a compressed record (a
      // small flash read + decompression instead of a full-page SS read)
      // counts as a hit. css_hits counts per page install — ~1 per op
      // that reheated a leaf, since inner nodes never live compressed —
      // but background promotions also install from compressed records
      // without any op behind them, so subtract those and cap at 1.
      const uint64_t classified = s.hits + s.misses;
      const uint64_t op_css_hits =
          s.tier_css_hits > s.background_pages_promoted
              ? s.tier_css_hits - s.background_pages_promoted
              : 0;
      const double hit_rate =
          classified == 0
              ? 0.0
              : std::min(1.0, static_cast<double>(s.hits + op_css_hits) /
                                  static_cast<double>(classified));
      // Occupancy cost at the paper's §4.1 prices: DRAM rent on what is
      // actually resident plus flash rent on the compressed footprint.
      const costmodel::CostParams prices = costmodel::CostParams::PaperDefaults();
      const double dollars = prices.dram_cost_per_byte *
                                 static_cast<double>(s.memory_bytes) +
                             prices.flash_cost_per_byte *
                                 static_cast<double>(s.tier_css_bytes);
      const double hrpd = dollars > 0 ? hit_rate / dollars : 0.0;
      if (b.budget_total == (1920ull << 10)) {
        (tier_on ? hrpd_on : hrpd_off) = hrpd;
      }
      printf("%-16s %-5s | %11.0f %7.3f %9llu %9llu | %12.1f | %9.1f %9.1f\n",
             b.name, tier_on ? "on" : "off", r.ops_per_wall_sec, hit_rate,
             (unsigned long long)s.tier_css_hits,
             (unsigned long long)s.tier_demotions, hrpd,
             s.measured_t_i_seconds, s.modeled_t_i_seconds);
      fprintf(out,
              "%s    {\"budget\": \"%s\", \"budget_bytes\": %llu, "
              "\"tier\": \"%s\", \"ops_per_wall_sec\": %.0f, "
              "\"p99_micros\": %.2f, \"hit_rate\": %.4f, "
              "\"hit_rate_per_dollar\": %.2f, "
              "\"dram_resident_bytes\": %llu, \"css_bytes\": %llu, "
              "\"css_hits\": %llu, \"demotions\": %llu, "
              "\"promotions\": %llu, \"demotion_refusals\": %llu, "
              "\"compression_ratio\": %.4f, "
              "\"measured_t_i_seconds\": %.2f, "
              "\"modeled_t_i_seconds\": %.2f, "
              "\"measured_css_breakeven_ops\": %.6f, "
              "\"modeled_css_breakeven_ops\": %.6f, "
              "\"foreground_maintenance_ops\": %llu}",
              first ? "" : ",\n", b.name,
              (unsigned long long)b.budget_total, tier_on ? "on" : "off",
              r.ops_per_wall_sec, r.p99_micros, hit_rate, hrpd,
              (unsigned long long)s.memory_bytes,
              (unsigned long long)s.tier_css_bytes,
              (unsigned long long)s.tier_css_hits,
              (unsigned long long)s.tier_demotions,
              (unsigned long long)s.tier_promotions,
              (unsigned long long)s.tier_demotion_refusals,
              s.MeasuredCompressionRatio(), s.measured_t_i_seconds,
              s.modeled_t_i_seconds, s.measured_css_breakeven_ops,
              s.modeled_css_breakeven_ops,
              (unsigned long long)r.foreground_maintenance_ops);
      first = false;
      // Acceptance: background maintenance must never leak into the
      // foreground on any tier row, and the constrained (~25% DRAM)
      // budget — the Fig. 8 configuration of interest — must actually
      // serve reads from the compressed tier. The ss_heavy row churns
      // too fast for a deterministic css_hits floor.
      const bool must_hit_css =
          tier_on != 0 && b.budget_total == (1920ull << 10);
      if (tier_on != 0 && (r.foreground_maintenance_ops != 0 ||
                           (must_hit_css && s.tier_css_hits == 0))) {
        fprintf(stderr,
                "smoke: css acceptance failed (%s): css_hits=%llu fg_ops=%llu\n",
                b.name, (unsigned long long)s.tier_css_hits,
                (unsigned long long)r.foreground_maintenance_ops);
        fclose(out);
        return 1;
      }
    }
  }
  if (hrpd_on <= hrpd_off) {
    fprintf(stderr,
            "smoke: css tier did not improve hit-rate-per-dollar at the "
            "constrained budget (off %.1f, on %.1f)\n",
            hrpd_off, hrpd_on);
    fclose(out);
    return 1;
  }
  printf("css: hit_rate_per_dollar at 25%% DRAM, tier off %.1f -> on %.1f "
         "(%.2fx)\n",
         hrpd_off, hrpd_on, hrpd_off > 0 ? hrpd_on / hrpd_off : 0.0);
  fprintf(out, "\n  ]\n}\n");
  fclose(out);
  return 0;
}

int Run() {
  int rc = RunSingleThreadMixes();
  if (rc != 0) return rc;
  return RunThreadSweep();
}

}  // namespace
}  // namespace costperf

int main() {
  // COSTPERF_SMOKE_JSON=<path>: run only the in-cache smoke sweep and emit
  // machine-readable results (scripts/bench_smoke.sh uses this).
  if (const char* path = std::getenv("COSTPERF_SMOKE_JSON")) {
    return costperf::RunSmokeJson(path);
  }
  return costperf::Run();
}
