// YCSB-style workload comparison of the two systems the paper analyzes:
// the data caching store (Bw-tree/LLAMA, memory-budgeted) and the main
// memory store (MassTree, everything resident). Reports CPU-time
// throughput (the paper's performance measure), the caching store's miss
// fraction F, and memory footprints — the raw ingredients of Figures 1-3
// under standard workload mixes rather than microbenchmarks.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/memory_store.h"

namespace costperf {
namespace {

using bench::Banner;

struct Row {
  const char* name;
  workload::WorkloadSpec spec;
};

int Run() {
  Banner("YCSB A/B/C/D/F — caching store vs main-memory store",
         "Throughput in ops per CPU-second; F = SS fraction of the "
         "caching store's ops under its DRAM budget.");

  constexpr uint64_t kRecords = 60'000;
  constexpr uint64_t kOps = 120'000;
  Row rows[] = {
      {"A 50r/50u zipf", workload::WorkloadSpec::YcsbA(kRecords)},
      {"B 95r/5u zipf", workload::WorkloadSpec::YcsbB(kRecords)},
      {"C 100r zipf", workload::WorkloadSpec::YcsbC(kRecords)},
      {"D 95r/5i latest", workload::WorkloadSpec::YcsbD(kRecords)},
      {"F 50r/50rmw zipf", workload::WorkloadSpec::YcsbF(kRecords)},
  };

  printf("\n%-18s | %14s %8s %12s | %14s %12s\n", "workload",
         "caching ops/s", "F", "resident(B)", "masstree ops/s", "bytes");
  for (const Row& row : rows) {
    // Caching store with a budget ~40% of the data set.
    core::CachingStoreOptions copts;
    copts.memory_budget_bytes = 4 << 20;
    copts.device.capacity_bytes = 1ull << 30;
    copts.device.max_iops = 0;
    copts.maintenance_interval_ops = 128;
    core::CachingStore caching(copts);
    core::MemoryStore memory;

    workload::WorkloadSpec spec = row.spec;
    spec.value_size = 100;
    {
      workload::Workload l1(spec);
      if (!l1.Load(&caching).ok()) return 1;
      workload::Workload l2(spec);
      if (!l2.Load(&memory).ok()) return 1;
    }
    caching.Maintain();

    auto t_before = caching.tree()->stats();
    workload::Workload w1(spec, 1);
    auto r1 = workload::RunWorkload(&caching, &w1, kOps);
    auto t_after = caching.tree()->stats();
    uint64_t ss = t_after.ss_ops - t_before.ss_ops;
    uint64_t mm = t_after.mm_ops - t_before.mm_ops;
    double f = ss + mm > 0 ? double(ss) / double(ss + mm) : 0;

    workload::Workload w2(spec, 1);
    auto r2 = workload::RunWorkload(&memory, &w2, kOps);

    printf("%-18s | %14.0f %8.3f %12llu | %14.0f %12llu\n", row.name,
           r1.ops_per_cpu_sec, f,
           (unsigned long long)caching.cache()->resident_bytes(),
           r2.ops_per_cpu_sec,
           (unsigned long long)memory.MemoryFootprintBytes());
    if (r1.failed_ops + r2.failed_ops > 0) {
      printf("WARNING: %llu failed ops\n",
             (unsigned long long)(r1.failed_ops + r2.failed_ops));
      return 1;
    }
  }
  printf("\nThe main-memory store is faster on every mix (the paper's "
         "P_x) but holds the whole database in DRAM; the caching store "
         "holds a fraction and pays with SS operations — the trade the "
         "cost model prices (Figs. 1-3).\n");
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
