// Ablation of the design choice §4.2 motivates: using the cost model's
// breakeven interval T_i to drive eviction, vs plain LRU. A hotspot
// workload with a drifting hot set runs on a virtual clock (200 ops/sec
// of simulated time). LRU without memory pressure keeps every page
// resident and pays DRAM rental; the cost-based policy evicts pages idle
// past T_i and pays for occasional SS operations instead. We then account
// the total run cost with the paper's prices:
//   storage $ = integral of resident bytes * $M dt  (+ flash copy)
//   exec $    = mm_ops * $P/ROPS + ss_ops * (R*$P/ROPS + $I/IOPS)

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "costmodel/five_minute_rule.h"

namespace costperf {
namespace {

using bench::Banner;

struct RunCost {
  double storage_dollars = 0;
  double exec_dollars = 0;
  double total() const { return storage_dollars + exec_dollars; }
  uint64_t ss_ops = 0;
  uint64_t final_resident = 0;
};

RunCost RunPolicy(llama::EvictionPolicy policy, double breakeven_s) {
  VirtualClock clock(1);
  auto opts = bench::FigureStoreOptions();
  opts.clock = &clock;
  opts.eviction_policy = policy;
  opts.breakeven_interval_seconds = breakeven_s;
  opts.memory_budget_bytes = 0;  // no pressure: policy differences only
  opts.maintenance_interval_ops = 0;
  core::CachingStore store(opts);

  constexpr uint64_t kRecords = 30'000;
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kRecords);
  workload::Workload loader(spec);
  (void)loader.Load(&store);
  (void)store.Checkpoint();

  costmodel::CostParams p = costmodel::CostParams::PaperDefaults();
  // Hot set: 2% of the keyspace gets 99% of accesses; drifts every chunk.
  // At 200 ops/sec of simulated time the cold pages see inter-access
  // intervals far beyond T_i = 45 s (the regime where eviction pays),
  // while hot pages stay well inside it.
  HotspotGenerator gen(kRecords, 0.02, 0.99, 404);

  constexpr uint64_t kOps = 60'000;
  constexpr double kOpsPerSecond = 200.0;  // simulated access rate
  const uint64_t step_nanos = static_cast<uint64_t>(1e9 / kOpsPerSecond);

  RunCost cost;
  auto* tree = store.tree();
  uint64_t mm_before = tree->stats().mm_ops;
  uint64_t ss_before = tree->stats().ss_ops;

  for (uint64_t i = 0; i < kOps; ++i) {
    // Storage rental accrues over simulated time.
    cost.storage_dollars += store.cache()->resident_bytes() *
                            p.dram_cost_per_byte * (step_nanos * 1e-9);
    clock.AdvanceNanos(step_nanos);
    (void)store.Get(Slice(loader.KeyAt(gen.Next())));
    if (i % 500 == 0) {
      store.Maintain();
      if (i % 10'000 == 0) gen.ShiftHotSet(kRecords / 3);
    }
  }
  uint64_t mm = tree->stats().mm_ops - mm_before;
  uint64_t ss = tree->stats().ss_ops - ss_before;
  cost.exec_dollars = mm * (p.processor_cost / p.rops) +
                      ss * (p.r * p.processor_cost / p.rops +
                            p.ssd_io_capability_cost / p.iops);
  cost.ss_ops = ss;
  cost.final_resident = store.cache()->resident_bytes();
  return cost;
}

int Run() {
  Banner("Ablation — cost-based (T_i) eviction vs LRU",
         "Drifting 2%-hotspot at 200 ops/sec of simulated time. The "
         "cost-based policy sheds pages idle past T_i = 45 s; LRU without "
         "pressure hoards them.");

  costmodel::CostParams p = costmodel::CostParams::PaperDefaults();
  double t_i = costmodel::BreakevenIntervalSeconds(p);

  RunCost lru = RunPolicy(llama::EvictionPolicy::kLru, t_i);
  RunCost cost_based = RunPolicy(llama::EvictionPolicy::kCostBased, t_i);

  printf("\n%-14s %14s %14s %14s %10s %14s\n", "policy", "$storage",
         "$exec", "$total", "SS ops", "resident(B)");
  printf("%-14s %14.4e %14.4e %14.4e %10llu %14llu\n", "lru",
         lru.storage_dollars, lru.exec_dollars, lru.total(),
         (unsigned long long)lru.ss_ops,
         (unsigned long long)lru.final_resident);
  printf("%-14s %14.4e %14.4e %14.4e %10llu %14llu\n", "cost-based",
         cost_based.storage_dollars, cost_based.exec_dollars,
         cost_based.total(), (unsigned long long)cost_based.ss_ops,
         (unsigned long long)cost_based.final_resident);

  printf("\ncost-based / lru total cost = %.2f  (< 1 means the five-minute "
         "rule paid off)\n",
         cost_based.total() / lru.total());
  printf("The cost-based policy trades a few SS operations (%llu) for a "
         "much smaller resident set — exactly the §4.2 trade.\n",
         (unsigned long long)cost_based.ss_ops);

  if (cost_based.total() >= lru.total()) {
    printf("WARNING: cost-based eviction did not reduce total cost\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
