// loadgen: multi-tenant pipelined load generator for costperf_server.
//
//   loadgen --port P --connections 8 --pipeline 16 --tenants 4
//           --duration-seconds 5 --keys-per-multiget 16
//
// Each connection belongs to one tenant (round-robin) and keeps
// `--pipeline` frames outstanding; a frame is a MULTIGET of K keys or a
// WRITEBATCH of K entries, drawn per-tenant from a Zipfian-skewed key
// space whose hot set drifts every --drift-period-seconds (hot-key
// churn). A single poll() loop drives every connection, measuring
// per-frame latency client-side.
//
// The report is per tenant (frames, keys, keys/s, p50/p95/p99 frame
// latency) plus the server's own batching evidence pulled over the wire
// via STATS, and can be emitted as JSON with --json.

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/histogram.h"
#include "common/random.h"
#include "fault/net_fault.h"
#include "server/client.h"
#include "server/protocol.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

using costperf::Histogram;
using costperf::RealClock;
using costperf::Random;
using costperf::ZipfianGenerator;
namespace server = costperf::server;

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connections = 8;
  int pipeline = 16;
  int tenants = 4;
  double duration_seconds = 5.0;
  int keys_per_multiget = 16;
  size_t value_bytes = 100;
  uint64_t keyspace = 100000;  // keys per tenant
  double zipf_theta = 0.99;
  double read_fraction = 0.95;
  double drift_period_seconds = 1.0;
  uint64_t seed = 42;
  bool preload = true;
  std::string json_path;  // empty = human-readable only
  // Relative per-request deadline stamped on every frame (v2 headers);
  // 0 = no deadline (v1 frames, the default).
  uint64_t deadline_micros = 0;
  // Client-side fault injection: probability per socket op of an injected
  // connection kill (chaos-style resilience runs). 0 = off.
  double client_fault_rate = 0;
  uint64_t client_fault_seed = 7;
  bool faults() const { return client_fault_rate > 0; }
};

struct TenantState {
  std::unique_ptr<ZipfianGenerator> zipf;
  uint64_t drift_offset = 0;
  uint64_t frames = 0;
  uint64_t keys = 0;
  uint64_t errors = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;              // kUnavailable: load-shed / degraded
  uint64_t deadline_expired = 0;  // kDeadlineExceeded responses
  uint64_t reconnects = 0;        // connections rebuilt after faults
  Histogram latency_micros;
};

struct Pending {
  uint32_t request_id;
  double send_seconds;
  uint32_t keys;
  bool is_write;
};

struct LoadConn {
  int fd = -1;
  int tenant = 0;
  uint32_t next_request_id = 1;
  std::string out;
  size_t out_sent = 0;
  std::string in;
  size_t in_consumed = 0;
  std::deque<Pending> pending;
  // Client-side fault channel (null when --client-fault-rate is 0).
  std::unique_ptr<costperf::fault::NetChannel> channel;
};

std::string TenantKey(int tenant, uint64_t idx) {
  char buf[48];
  snprintf(buf, sizeof(buf), "t%d:key%010llu", tenant,
           (unsigned long long)idx);
  return buf;
}

int ConnectNonBlocking(const Config& cfg) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return fd;
}

// Queue one request frame on `c`, keyed from its tenant's generator.
void EnqueueRequest(const Config& cfg, LoadConn* c, TenantState* ts,
                    Random* rng, const std::string& value, double now) {
  const bool is_write = !rng->Bernoulli(cfg.read_fraction);
  const uint32_t id = c->next_request_id++;
  const uint32_t k = static_cast<uint32_t>(cfg.keys_per_multiget);
  std::string payload;
  costperf::PutFixed32(&payload, k);
  for (uint32_t i = 0; i < k; ++i) {
    const uint64_t idx =
        (ts->zipf->Next() + ts->drift_offset) % cfg.keyspace;
    const std::string key = TenantKey(c->tenant, idx);
    server::AppendLengthPrefixed(&payload, key);
    if (is_write) server::AppendLengthPrefixed(&payload, value);
  }
  server::AppendFrameDeadline(
      &c->out, is_write ? server::kOpWriteBatch : server::kOpMultiGet, id,
      static_cast<uint32_t>(c->tenant), cfg.deadline_micros, payload);
  c->pending.push_back({id, now, k, is_write});
}

// Parse complete response frames; record latency; return frames consumed.
// Returns false on a protocol error from the server.
bool ConsumeResponses(LoadConn* c, TenantState* ts, RealClock* clock) {
  while (true) {
    const char* base = c->in.data() + c->in_consumed;
    const size_t avail = c->in.size() - c->in_consumed;
    server::FrameHeader h;
    server::DecodeResult dr = server::DecodeHeader(base, avail, &h);
    if (dr == server::DecodeResult::kNeedMore) break;
    if (dr != server::DecodeResult::kOk) return false;
    if (avail < h.header_size + h.payload_len) break;
    std::string_view payload(base + h.header_size, h.payload_len);
    c->in_consumed += h.header_size + h.payload_len;

    if (c->pending.empty()) return false;  // unsolicited frame
    Pending p = c->pending.front();
    c->pending.pop_front();
    if (h.request_id != p.request_id) return false;  // order violation

    const double lat_micros = (clock->NowSeconds() - p.send_seconds) * 1e6;
    ts->latency_micros.Add(lat_micros);
    ts->frames += 1;
    ts->keys += p.keys;
    const uint8_t op = h.opcode & ~server::kResponseBit;
    if (op == server::kOpError) {
      uint8_t code = 0;
      server::GetU8(&payload, &code);
      switch (server::DecodeStatusCode(code)) {
        case costperf::StatusCode::kResourceExhausted:
          ts->rejected += 1;
          break;
        case costperf::StatusCode::kUnavailable:
          ts->shed += 1;
          break;
        case costperf::StatusCode::kDeadlineExceeded:
          ts->deadline_expired += 1;
          break;
        default:
          ts->errors += 1;
      }
    }
  }
  if (c->in_consumed == c->in.size()) {
    c->in.clear();
    c->in_consumed = 0;
  } else if (c->in_consumed > (1u << 16)) {
    c->in.erase(0, c->in_consumed);
    c->in_consumed = 0;
  }
  return true;
}

bool Preload(const Config& cfg, const std::string& value) {
  server::SyncClient client;
  if (!client.Connect(cfg.host, cfg.port).ok()) return false;
  std::vector<costperf::core::KvEntry> entries;
  costperf::core::BatchWriteResult result;
  for (int t = 0; t < cfg.tenants; ++t) {
    client.set_tenant(static_cast<uint32_t>(t));
    for (uint64_t base = 0; base < cfg.keyspace; base += 1024) {
      entries.clear();
      const uint64_t end = std::min(base + 1024, cfg.keyspace);
      for (uint64_t i = base; i < end; ++i) {
        entries.emplace_back(TenantKey(t, i), value);
      }
      if (!client.WriteBatch(entries, &result).ok() || !result.all_ok()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "%s needs a value\n", flag);
        exit(2);
      }
      return argv[++i];
    };
    if (!strcmp(argv[i], "--host")) cfg.host = next("--host");
    else if (!strcmp(argv[i], "--port")) cfg.port = static_cast<uint16_t>(atoi(next("--port")));
    else if (!strcmp(argv[i], "--connections")) cfg.connections = atoi(next("--connections"));
    else if (!strcmp(argv[i], "--pipeline")) cfg.pipeline = atoi(next("--pipeline"));
    else if (!strcmp(argv[i], "--tenants")) cfg.tenants = atoi(next("--tenants"));
    else if (!strcmp(argv[i], "--duration-seconds")) cfg.duration_seconds = atof(next("--duration-seconds"));
    else if (!strcmp(argv[i], "--keys-per-multiget")) cfg.keys_per_multiget = atoi(next("--keys-per-multiget"));
    else if (!strcmp(argv[i], "--value-bytes")) cfg.value_bytes = static_cast<size_t>(atoll(next("--value-bytes")));
    else if (!strcmp(argv[i], "--keyspace")) cfg.keyspace = static_cast<uint64_t>(atoll(next("--keyspace")));
    else if (!strcmp(argv[i], "--zipf")) cfg.zipf_theta = atof(next("--zipf"));
    else if (!strcmp(argv[i], "--read-fraction")) cfg.read_fraction = atof(next("--read-fraction"));
    else if (!strcmp(argv[i], "--drift-period-seconds")) cfg.drift_period_seconds = atof(next("--drift-period-seconds"));
    else if (!strcmp(argv[i], "--seed")) cfg.seed = static_cast<uint64_t>(atoll(next("--seed")));
    else if (!strcmp(argv[i], "--no-preload")) cfg.preload = false;
    else if (!strcmp(argv[i], "--json")) cfg.json_path = next("--json");
    else if (!strcmp(argv[i], "--deadline-micros")) cfg.deadline_micros = static_cast<uint64_t>(atoll(next("--deadline-micros")));
    else if (!strcmp(argv[i], "--client-fault-rate")) cfg.client_fault_rate = atof(next("--client-fault-rate"));
    else if (!strcmp(argv[i], "--client-fault-seed")) cfg.client_fault_seed = static_cast<uint64_t>(atoll(next("--client-fault-seed")));
    else {
      fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (cfg.port == 0) {
    fprintf(stderr, "--port is required\n");
    return 2;
  }

  const std::string value(cfg.value_bytes, 'v');
  if (cfg.preload && !Preload(cfg, value)) {
    fprintf(stderr, "preload failed\n");
    return 1;
  }

  std::vector<TenantState> tenants(static_cast<size_t>(cfg.tenants));
  for (int t = 0; t < cfg.tenants; ++t) {
    tenants[t].zipf = std::make_unique<ZipfianGenerator>(
        cfg.keyspace, cfg.zipf_theta, cfg.seed + 0x9e3779b9ull * t);
  }

  // Client-side fault injection: every socket op has a chance of an
  // injected ECONNRESET/EPIPE; the loop reconnects and keeps going.
  costperf::fault::NetFaultInjector injector(cfg.client_fault_seed);
  if (cfg.faults()) {
    costperf::fault::NetFaultPlan plan;
    plan.read_error_rate = cfg.client_fault_rate;
    plan.write_error_rate = cfg.client_fault_rate;
    injector.set_default_plan(plan);
  }

  std::vector<LoadConn> conns(static_cast<size_t>(cfg.connections));
  for (int i = 0; i < cfg.connections; ++i) {
    conns[i].fd = ConnectNonBlocking(cfg);
    if (conns[i].fd < 0) {
      fprintf(stderr, "connect failed for connection %d\n", i);
      return 1;
    }
    conns[i].tenant = i % cfg.tenants;
    if (cfg.faults()) conns[i].channel = injector.NewChannel();
  }

  RealClock clock;
  Random rng(cfg.seed);
  const double start = clock.NowSeconds();
  const double deadline = start + cfg.duration_seconds;
  double next_drift = start + cfg.drift_period_seconds;

  // Prime every connection's pipeline.
  for (auto& c : conns) {
    for (int i = 0; i < cfg.pipeline; ++i) {
      EnqueueRequest(cfg, &c, &tenants[c.tenant], &rng, value,
                     clock.NowSeconds());
    }
  }

  std::vector<pollfd> pfds(conns.size());
  bool protocol_error = false;

  // Tear down and rebuild a faulted connection. In-flight frames are lost
  // (the injected fault killed the stream); the pipeline is re-primed so
  // throughput recovers.
  auto revive = [&](LoadConn* c, TenantState* ts, double now) -> bool {
    if (c->fd >= 0) close(c->fd);
    c->channel.reset();
    c->out.clear();
    c->out_sent = 0;
    c->in.clear();
    c->in_consumed = 0;
    c->pending.clear();
    c->fd = ConnectNonBlocking(cfg);
    if (c->fd < 0) return false;
    if (cfg.faults()) c->channel = injector.NewChannel();
    ts->reconnects += 1;
    if (now < deadline) {
      for (int k = 0; k < cfg.pipeline; ++k) {
        EnqueueRequest(cfg, c, ts, &rng, value, clock.NowSeconds());
      }
    }
    return true;
  };

  while (!protocol_error) {
    const double now = clock.NowSeconds();
    const bool sending = now < deadline;
    if (!sending) {
      bool any_pending = false;
      for (const auto& c : conns) any_pending |= !c.pending.empty();
      if (!any_pending) break;
      if (now > deadline + 10.0) {
        fprintf(stderr, "drain timeout with outstanding frames\n");
        break;
      }
    }
    if (now >= next_drift) {
      // Hot-key churn: rotate every tenant's hot set to a new region.
      for (auto& ts : tenants) ts.drift_offset += cfg.keyspace / 8 + 1;
      next_drift += cfg.drift_period_seconds;
    }

    for (size_t i = 0; i < conns.size(); ++i) {
      pfds[i].fd = conns[i].fd;
      pfds[i].events = POLLIN;
      if (conns[i].out_sent < conns[i].out.size()) pfds[i].events |= POLLOUT;
      pfds[i].revents = 0;
    }
    if (poll(pfds.data(), pfds.size(), 100) < 0) {
      if (errno == EINTR) continue;
      perror("poll");
      return 1;
    }

    for (size_t i = 0; i < conns.size(); ++i) {
      LoadConn& c = conns[i];
      TenantState& ts = tenants[c.tenant];
      bool faulted = false;
      if (pfds[i].revents & POLLOUT ||
          (c.out_sent < c.out.size() && (pfds[i].revents & POLLIN))) {
        while (c.out_sent < c.out.size()) {
          ssize_t w = c.channel != nullptr
                          ? c.channel->Send(c.fd, c.out.data() + c.out_sent,
                                            c.out.size() - c.out_sent,
                                            MSG_NOSIGNAL)
                          : send(c.fd, c.out.data() + c.out_sent,
                                 c.out.size() - c.out_sent, MSG_NOSIGNAL);
          if (w > 0) {
            c.out_sent += static_cast<size_t>(w);
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (w < 0 && errno == EINTR) continue;
          if (cfg.faults()) {
            faulted = true;
            break;
          }
          fprintf(stderr, "write error on connection %zu\n", i);
          return 1;
        }
        if (c.out_sent == c.out.size()) {
          c.out.clear();
          c.out_sent = 0;
        }
      }
      if (!faulted && (pfds[i].revents & (POLLIN | POLLHUP))) {
        while (true) {
          char buf[64 * 1024];
          ssize_t r = c.channel != nullptr
                          ? c.channel->Read(c.fd, buf, sizeof(buf))
                          : read(c.fd, buf, sizeof(buf));
          if (r > 0) {
            c.in.append(buf, static_cast<size_t>(r));
            if (static_cast<size_t>(r) < sizeof(buf)) break;
            continue;
          }
          if (r == 0) {
            if (cfg.faults()) {
              faulted = true;
              break;
            }
            fprintf(stderr, "server closed connection %zu\n", i);
            protocol_error = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          if (cfg.faults()) {
            faulted = true;
            break;
          }
          protocol_error = true;
          break;
        }
        const size_t before = c.pending.size();
        if (!faulted && !ConsumeResponses(&c, &ts, &clock)) {
          // With faults in play a torn stream is expected; rebuild. Without
          // them a framing violation is a real server bug.
          if (cfg.faults()) {
            faulted = true;
          } else {
            fprintf(stderr, "protocol error on connection %zu\n", i);
            protocol_error = true;
          }
        }
        const size_t completed = before - c.pending.size();
        if (!faulted && sending) {
          for (size_t k = 0; k < completed; ++k) {
            EnqueueRequest(cfg, &c, &ts, &rng, value, clock.NowSeconds());
          }
        }
      }
      if (faulted && !revive(&c, &ts, now)) {
        fprintf(stderr, "reconnect failed for connection %zu\n", i);
        return 1;
      }
    }
  }
  const double elapsed = clock.NowSeconds() - start;

  // Pull the server's own view (batching evidence, per-tenant counters).
  std::map<std::string, uint64_t> server_stats;
  {
    server::SyncClient stats_client;
    if (stats_client.Connect(cfg.host, cfg.port).ok()) {
      auto r = stats_client.StatsMap();
      if (r.ok()) server_stats = *r;
    }
  }

  for (auto& c : conns) {
    if (c.fd >= 0) close(c.fd);
  }

  uint64_t total_frames = 0, total_keys = 0, total_shed = 0;
  uint64_t total_deadline = 0, total_reconnects = 0;
  for (const auto& ts : tenants) {
    total_frames += ts.frames;
    total_keys += ts.keys;
    total_shed += ts.shed;
    total_deadline += ts.deadline_expired;
    total_reconnects += ts.reconnects;
  }
  printf("loadgen: %d conns x pipeline %d, %d tenants, %.1fs\n",
         cfg.connections, cfg.pipeline, cfg.tenants, elapsed);
  printf("total: frames=%llu keys=%llu frames/s=%.0f keys/s=%.0f "
         "shed=%llu deadline_expired=%llu reconnects=%llu\n",
         (unsigned long long)total_frames, (unsigned long long)total_keys,
         total_frames / elapsed, total_keys / elapsed,
         (unsigned long long)total_shed, (unsigned long long)total_deadline,
         (unsigned long long)total_reconnects);
  for (int t = 0; t < cfg.tenants; ++t) {
    const TenantState& ts = tenants[t];
    printf(
        "tenant %d: frames=%llu keys=%llu keys/s=%.0f p50=%.0fus "
        "p95=%.0fus p99=%.0fus rejected=%llu shed=%llu "
        "deadline_expired=%llu errors=%llu\n",
        t, (unsigned long long)ts.frames, (unsigned long long)ts.keys,
        ts.keys / elapsed, ts.latency_micros.Percentile(50.0),
        ts.latency_micros.Percentile(95.0), ts.latency_micros.Percentile(99.0),
        (unsigned long long)ts.rejected, (unsigned long long)ts.shed,
        (unsigned long long)ts.deadline_expired,
        (unsigned long long)ts.errors);
  }
  auto sv = [&](const char* k) -> unsigned long long {
    auto it = server_stats.find(k);
    return it == server_stats.end() ? 0 : it->second;
  };
  printf("server: windows=%llu read_runs=%llu write_runs=%llu "
         "multiget_batches=%llu multiget_keys=%llu "
         "multiget_shard_groups=%llu writebatch_batches=%llu "
         "log_append_groups=%llu\n",
         sv("server.windows"), sv("server.read_runs"), sv("server.write_runs"),
         sv("store.multiget_batches"), sv("store.multiget_keys"),
         sv("store.multiget_shard_groups"), sv("store.writebatch_batches"),
         sv("store.log_append_groups"));

  if (!cfg.json_path.empty()) {
    FILE* f = cfg.json_path == "-" ? stdout : fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      perror("fopen --json");
      return 1;
    }
    fprintf(f,
            "{\n  \"connections\": %d,\n  \"pipeline\": %d,\n"
            "  \"tenants\": %d,\n  \"elapsed_seconds\": %.3f,\n"
            "  \"frames\": %llu,\n  \"keys\": %llu,\n"
            "  \"frames_per_sec\": %.0f,\n  \"keys_per_sec\": %.0f,\n"
            "  \"shed\": %llu,\n  \"deadline_expired\": %llu,\n"
            "  \"reconnects\": %llu,\n",
            cfg.connections, cfg.pipeline, cfg.tenants, elapsed,
            (unsigned long long)total_frames, (unsigned long long)total_keys,
            total_frames / elapsed, total_keys / elapsed,
            (unsigned long long)total_shed, (unsigned long long)total_deadline,
            (unsigned long long)total_reconnects);
    fprintf(f,
            "  \"server\": {\"windows\": %llu, \"read_runs\": %llu, "
            "\"write_runs\": %llu, \"multiget_batches\": %llu, "
            "\"multiget_keys\": %llu, \"multiget_shard_groups\": %llu, "
            "\"writebatch_batches\": %llu, \"log_append_groups\": %llu},\n",
            sv("server.windows"), sv("server.read_runs"),
            sv("server.write_runs"), sv("store.multiget_batches"),
            sv("store.multiget_keys"), sv("store.multiget_shard_groups"),
            sv("store.writebatch_batches"), sv("store.log_append_groups"));
    fprintf(f, "  \"per_tenant\": [\n");
    for (int t = 0; t < cfg.tenants; ++t) {
      const TenantState& ts = tenants[t];
      fprintf(f,
              "    {\"tenant\": %d, \"frames\": %llu, \"keys\": %llu, "
              "\"keys_per_sec\": %.0f, \"p50_us\": %.0f, \"p95_us\": %.0f, "
              "\"p99_us\": %.0f, \"rejected\": %llu, \"errors\": %llu}%s\n",
              t, (unsigned long long)ts.frames, (unsigned long long)ts.keys,
              ts.keys / elapsed, ts.latency_micros.Percentile(50.0),
              ts.latency_micros.Percentile(95.0),
              ts.latency_micros.Percentile(99.0),
              (unsigned long long)ts.rejected, (unsigned long long)ts.errors,
              t + 1 < cfg.tenants ? "," : "");
    }
    fprintf(f, "  ]\n}\n");
    if (f != stdout) fclose(f);
  }
  return protocol_error ? 1 : 0;
}
