// Reproduces Figure 7 and §7.1.1: the effect of the I/O execution path on
// cost/performance. The same store runs the same miss-heavy workload
// under (a) an OS-mediated I/O path and (b) a user-level (SPDK-style)
// path; we derive R for each and show the cheaper path flattens the SS
// cost line and shrinks the breakeven interval. Paper: R dropped from ~9x
// to ~5.8x, about a third off the I/O execution path.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "costmodel/calibration.h"
#include "costmodel/five_minute_rule.h"
#include "costmodel/operation_cost.h"

namespace costperf {
namespace {

using bench::Banner;

struct PathResult {
  double rops;       // MM ops/sec-cpu
  double ss_op_sec;  // CPU seconds per SS op
  double r;
};

PathResult MeasurePath(storage::IoPathKind kind) {
  core::CachingStore store(bench::FigureStoreOptions());
  store.device()->set_io_path(kind);
  constexpr uint64_t kRecords = 50'000;
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kRecords);
  workload::Workload loader(spec);
  (void)loader.Load(&store);
  (void)store.Checkpoint();

  auto* tree = store.tree();
  Random rng(kind == storage::IoPathKind::kUserLevel ? 1 : 2);
  for (int i = 0; i < 20'000; ++i) {
    (void)tree->Get(Slice(loader.KeyAt(rng.Uniform(kRecords))));
  }
  PathResult res;
  res.rops = costmodel::MeasureRops(
      [&] { (void)tree->Get(Slice(loader.KeyAt(rng.Uniform(kRecords)))); },
      100'000);

  // Warm the SS path itself (allocator, page-load code, flash chunks)
  // before timing; the paper likewise excludes the "very cold" I/O-path
  // regime from its R derivation.
  for (int i = 0; i < 1'000; ++i) {
    std::string key = loader.KeyAt(rng.Uniform(kRecords));
    auto pid = tree->LeafOf(Slice(key));
    if (pid.ok()) tree->EvictPage(*pid, bwtree::EvictMode::kFullEviction);
    (void)tree->Get(Slice(key));
    if (i % 512 == 0) tree->ReclaimMemory();
  }

  uint64_t ss_nanos = 0;
  const int kProbes = 3'000;
  for (int i = 0; i < kProbes; ++i) {
    std::string key = loader.KeyAt(rng.Uniform(kRecords));
    auto pid = tree->LeafOf(Slice(key));
    if (pid.ok()) tree->EvictPage(*pid, bwtree::EvictMode::kFullEviction);
    uint64_t t0 = ThreadCpuNanos();
    (void)tree->Get(Slice(key));
    ss_nanos += ThreadCpuNanos() - t0;
    if (i % 1024 == 0) tree->ReclaimMemory();
  }
  res.ss_op_sec = ss_nanos * 1e-9 / kProbes;
  res.r = res.ss_op_sec * res.rops;
  return res;
}

int Run() {
  Banner("Figure 7 / §7.1.1 — optimizing the I/O execution path",
         "User-level I/O (SPDK-style) cuts the SS execution path; R drops "
         "(paper: ~9x -> ~5.8x), SS cost-line slope falls, breakeven "
         "shrinks.");

  PathResult os_path = MeasurePath(storage::IoPathKind::kOsMediated);
  PathResult user_path = MeasurePath(storage::IoPathKind::kUserLevel);

  printf("\n%-22s %14s %16s %8s\n", "I/O path", "MM ops/s-cpu",
         "SS op cpu (us)", "R");
  printf("%-22s %14.0f %16.2f %8.2f\n", "OS-mediated", os_path.rops,
         os_path.ss_op_sec * 1e6, os_path.r);
  printf("%-22s %14.0f %16.2f %8.2f\n", "user-level (SPDK)",
         user_path.rops, user_path.ss_op_sec * 1e6, user_path.r);
  printf("\npath improvement: SS op cost ratio os/user = %.2f "
         "(paper: R 9 -> 5.8, i.e. ~1.55x)\n",
         os_path.ss_op_sec / user_path.ss_op_sec);

  // Cost lines under the two Rs (everything else equal).
  costmodel::CostParams base = costmodel::CostParams::PaperDefaults();
  costmodel::CostParams p_os = base, p_user = base;
  p_os.r = os_path.r;
  p_user.r = user_path.r;

  printf("\n%14s %14s %14s  (SS cost at paper prices)\n", "N (ops/sec)",
         "$SS os-path", "$SS user-path");
  for (double n = 0.001; n <= 4.1; n *= 4) {
    printf("%14.3f %14.4e %14.4e\n", n,
           costmodel::SsCost(n, p_os).total(),
           costmodel::SsCost(n, p_user).total());
  }
  printf("\nbreakeven T_i: os-path = %.1f s, user-path = %.1f s "
         "(smaller => evict earlier, lower cost over a wide range)\n",
         costmodel::BreakevenIntervalSeconds(p_os),
         costmodel::BreakevenIntervalSeconds(p_user));

  if (os_path.r <= user_path.r) {
    printf("WARNING: expected OS path R > user path R\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
