// Reproduces the §4.1 "hardware costs" inventory and every derived
// quantity the paper's analysis quotes, side by side with the values
// measured on this substrate.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "costmodel/calibration.h"
#include "costmodel/five_minute_rule.h"
#include "costmodel/masstree_compare.h"
#include "costmodel/operation_cost.h"

namespace costperf {
namespace {

using bench::Banner;

int Run() {
  Banner("§4.1 table — hardware constants and derived quantities",
         "Paper constants next to this substrate's measured equivalents.");

  costmodel::CostParams p = costmodel::CostParams::PaperDefaults();

  printf("\n%-44s %14s\n", "constant (paper §4.1)", "value");
  printf("%-44s %14.3g\n", "$M  DRAM cost per byte", p.dram_cost_per_byte);
  printf("%-44s %14.3g\n", "$Fl flash cost per byte", p.flash_cost_per_byte);
  printf("%-44s %14.0f\n", "$P  processor cost", p.processor_cost);
  printf("%-44s %14.0f\n", "$I  SSD I/O capability cost ($300-$250)",
         p.ssd_io_capability_cost);
  printf("%-44s %14.3g\n", "ROPS (MM ops/sec, 4-core experiments)", p.rops);
  printf("%-44s %14.3g\n", "IOPS (device max)", p.iops);
  printf("%-44s %14.2f\n", "R (SS/MM execution ratio)", p.r);
  printf("%-44s %14.0f\n", "P_s average page size (bytes)",
         p.page_size_bytes);

  printf("\n%-44s %10s %12s\n", "derived quantity", "paper", "this model");
  printf("%-44s %10s %12.1f\n", "T_i breakeven (s), Eq. 6", "~45",
         costmodel::BreakevenIntervalSeconds(p));
  printf("%-44s %10s %12.1f\n", "MM/SS storage cost ratio", "~11x",
         costmodel::MmCost(0, p).storage / costmodel::SsCost(0, p).storage);
  printf("%-44s %10s %12.1f\n", "SS/MM execution cost ratio", "~12x",
         costmodel::SsCost(1000, p).execution /
             costmodel::MmCost(1000, p).execution);
  costmodel::SystemComparison sys;
  printf("%-44s %10s %12.3g\n", "Eq. 8 coefficient (byte-seconds)", "8.3e3",
         costmodel::CrossoverCoefficient(sys, p));
  printf("%-44s %10s %12.3g\n", "6.1GB crossover rate (ops/sec)", "0.73e6",
         costmodel::CrossoverOpsPerSec(sys, p));
  sys.database_bytes = 100e9;
  printf("%-44s %10s %12.3g\n", "100GB crossover rate (ops/sec)", "12e6",
         costmodel::CrossoverOpsPerSec(sys, p));
  sys.database_bytes = 6.1e9;
  printf("%-44s %10s %12.1f\n", "2.7KB-page MassTree T_i threshold (s)",
         "3.1",
         costmodel::CrossoverCoefficient(sys, p) / 6.1e9 *
             (6.1e9 / 2.7e3));

  // Substrate measurements.
  printf("\n--- measured on this substrate ---\n");
  core::CachingStore store(bench::FigureStoreOptions());
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(50'000);
  workload::Workload loader(spec);
  if (!loader.Load(&store).ok()) return 1;
  (void)store.Checkpoint();
  Random rng(5);
  auto* tree = store.tree();
  for (int i = 0; i < 20'000; ++i) {
    (void)tree->Get(Slice(loader.KeyAt(rng.Uniform(50'000))));
  }
  double rops = costmodel::MeasureRops(
      [&] { (void)tree->Get(Slice(loader.KeyAt(rng.Uniform(50'000)))); },
      100'000);
  storage::SsdOptions dev;
  dev.max_iops = 200'000;
  storage::SsdDevice probe(dev);
  double iops = probe.MeasureIops(50'000);
  printf("%-44s %14.3g\n", "ROPS (1 thread, Bw-tree MM gets)", rops);
  printf("%-44s %14.3g\n", "IOPS (simulated device)", iops);

  // Average flushed page size on our store (the paper's P_s = 2.7e3 came
  // from ~70%-utilized 4K-max pages).
  (void)store.EvictAll();
  auto ls = store.log_store()->stats();
  if (ls.records_appended > 0) {
    printf("%-44s %14.0f\n", "average flushed page image (bytes)",
           double(ls.payload_bytes_appended) / ls.records_appended);
  }
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
