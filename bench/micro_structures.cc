// Micro-benchmarks of the building blocks (google-benchmark): mapping
// table CAS/Get (Fig. 4's indirection), Bw-tree and MassTree point ops,
// delta-chain consolidation effects, epoch guards, CRC, compression, and
// the zipfian generator. These are the per-operation numbers the figure
// benches build on.

#include <benchmark/benchmark.h>

#include <memory>

#include "bwtree/bwtree.h"
#include "common/crc32.h"
#include "common/epoch.h"
#include "common/random.h"
#include "compression/compressor.h"
#include "mapping/mapping_table.h"
#include "masstree/masstree.h"

namespace costperf {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

void BM_MappingTableGet(benchmark::State& state) {
  mapping::MappingTable table(1 << 16);
  for (int i = 0; i < 1000; ++i) table.Allocate(i);
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(rng.Uniform(1000)));
  }
}
BENCHMARK(BM_MappingTableGet);

void BM_MappingTableCas(benchmark::State& state) {
  mapping::MappingTable table(1 << 16);
  mapping::PageId pid = table.Allocate(0);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Cas(pid, v, v + 2));
    v += 2;
  }
}
BENCHMARK(BM_MappingTableCas);

void BM_BwTreeGetInMemory(benchmark::State& state) {
  bwtree::BwTreeOptions opts;
  auto tree = std::make_unique<bwtree::BwTree>(opts);
  const uint64_t n = state.range(0);
  for (uint64_t i = 0; i < n; ++i) {
    (void)tree->Put(Slice(Key(i)), "value-0123456789");
  }
  Random rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Get(Slice(Key(rng.Uniform(n)))));
  }
}
BENCHMARK(BM_BwTreeGetInMemory)->Arg(10'000)->Arg(100'000);

void BM_BwTreePutInMemory(benchmark::State& state) {
  bwtree::BwTreeOptions opts;
  auto tree = std::make_unique<bwtree::BwTree>(opts);
  const uint64_t n = 100'000;
  for (uint64_t i = 0; i < n; ++i) {
    (void)tree->Put(Slice(Key(i)), "value-0123456789");
  }
  Random rng(3);
  uint64_t ops = 0;
  for (auto _ : state) {
    (void)tree->Put(Slice(Key(rng.Uniform(n))), "value-9876543210");
    if (++ops % 8192 == 0) tree->ReclaimMemory();
  }
}
BENCHMARK(BM_BwTreePutInMemory);

void BM_MassTreeGet(benchmark::State& state) {
  masstree::MassTree tree;
  const uint64_t n = state.range(0);
  for (uint64_t i = 0; i < n; ++i) {
    (void)tree.Put(Slice(Key(i)), "value-0123456789");
  }
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(Slice(Key(rng.Uniform(n)))));
  }
}
BENCHMARK(BM_MassTreeGet)->Arg(10'000)->Arg(100'000);

void BM_MassTreePut(benchmark::State& state) {
  masstree::MassTree tree;
  const uint64_t n = 100'000;
  for (uint64_t i = 0; i < n; ++i) {
    (void)tree.Put(Slice(Key(i)), "value-0123456789");
  }
  Random rng(5);
  uint64_t ops = 0;
  for (auto _ : state) {
    (void)tree.Put(Slice(Key(rng.Uniform(n))), "value-9876543210");
    if (++ops % 8192 == 0) tree.ReclaimMemory();
  }
}
BENCHMARK(BM_MassTreePut);

void BM_EpochGuard(benchmark::State& state) {
  EpochManager mgr;
  for (auto _ : state) {
    EpochGuard g(&mgr);
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_EpochGuard);

void BM_Crc32c4K(benchmark::State& state) {
  std::string data(4096, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Crc32c4K);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator gen(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_CompressPage(benchmark::State& state) {
  Random rng(6);
  std::string page;
  for (int i = 0; page.size() < 2700; ++i) {
    page += "user" + std::to_string(i) + "|field=value_" +
            std::to_string(i % 7) + "|";
  }
  std::string out;
  for (auto _ : state) {
    compression::Compressor::Compress(Slice(page), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * page.size());
}
BENCHMARK(BM_CompressPage);

void BM_DecompressPage(benchmark::State& state) {
  std::string page;
  for (int i = 0; page.size() < 2700; ++i) {
    page += "user" + std::to_string(i) + "|field=value_" +
            std::to_string(i % 7) + "|";
  }
  std::string compressed, out;
  compression::Compressor::Compress(Slice(page), &compressed);
  for (auto _ : state) {
    (void)compression::Compressor::Decompress(Slice(compressed), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * page.size());
}
BENCHMARK(BM_DecompressPage);

// Delta-chain length vs read cost: the consolidation trade-off.
void BM_BwTreeGetWithChainLength(benchmark::State& state) {
  bwtree::BwTreeOptions opts;
  opts.consolidate_threshold = state.range(0) + 1;
  auto tree = std::make_unique<bwtree::BwTree>(opts);
  (void)tree->Put("hot-key", "v0");
  for (int i = 0; i < state.range(0); ++i) {
    (void)tree->Put("hot-key", "v" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Get("hot-key"));
  }
}
BENCHMARK(BM_BwTreeGetWithChainLength)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace costperf

BENCHMARK_MAIN();
