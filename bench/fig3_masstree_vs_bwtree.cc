// Reproduces Figure 3 and §5: Bw-tree (fully cached) vs MassTree cost per
// operation. Measures P_x (MassTree speedup on read-only gets) and M_x
// (memory expansion) on identical data, then evaluates Eq. (7)/(8):
// crossover interval, its scaling with database size, and the cost
// curves. Paper point measurements: P_x ~ 2.6, M_x ~ 2.1, coefficient
// ~ 8.3e3, 6.1 GB -> 0.73e6 ops/sec, 100 GB -> 12e6 ops/sec.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/memory_store.h"
#include "costmodel/calibration.h"
#include "costmodel/masstree_compare.h"

namespace costperf {
namespace {

using bench::Banner;

int Run() {
  Banner("Figure 3 / §5 — Bw-tree vs MassTree cost/performance",
         "MassTree is faster (P_x) but bigger (M_x); which is cheaper "
         "depends on how hot the database is (Eq. 7/8).");

  constexpr uint64_t kRecords = 200'000;
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kRecords);
  spec.value_size = 100;

  core::MemoryStore mass;
  core::CachingStore bw(bench::FigureStoreOptions());
  {
    workload::Workload l1(spec);
    if (!l1.Load(&mass).ok()) return 1;
    workload::Workload l2(spec);
    if (!l2.Load(&bw).ok()) return 1;
  }
  bw.Maintain();
  mass.Maintain();

  // Warm both, then measure read-only throughput (CPU time, uniform).
  workload::WorkloadSpec read_spec = spec;
  read_spec.distribution = workload::Distribution::kUniform;
  auto measure = [&](core::KvStore* store) {
    workload::Workload warm(read_spec, 1);
    workload::RunWorkload(store, &warm, 100'000);
    workload::Workload run(read_spec, 2);
    return workload::RunWorkload(store, &run, 400'000);
  };
  auto bw_result = measure(&bw);
  auto mass_result = measure(&mass);

  const double px =
      mass_result.ops_per_cpu_sec / bw_result.ops_per_cpu_sec;
  const double mx = static_cast<double>(mass.MemoryFootprintBytes()) /
                    static_cast<double>(bw.MemoryFootprintBytes());

  printf("\nmeasured on this substrate (%llu records, %zu-byte values):\n",
         (unsigned long long)kRecords, spec.value_size);
  printf("  Bw-tree:  %12.0f reads/sec-cpu, footprint %10llu bytes\n",
         bw_result.ops_per_cpu_sec,
         (unsigned long long)bw.MemoryFootprintBytes());
  printf("  MassTree: %12.0f reads/sec-cpu, footprint %10llu bytes\n",
         mass_result.ops_per_cpu_sec,
         (unsigned long long)mass.MemoryFootprintBytes());
  printf("  P_x = %.2f   (paper: ~2.6)\n", px);
  printf("  M_x = %.2f   (paper: ~2.1)\n", mx);

  costmodel::CostParams p = costmodel::CostParams::PaperDefaults();

  auto report = [&](const char* label, double use_px, double use_mx) {
    printf("\n--- Eq. (7)/(8) with %s (Px=%.2f, Mx=%.2f) ---\n", label,
           use_px, use_mx);
    costmodel::SystemComparison sys;
    sys.px = use_px;
    sys.mx = use_mx;
    printf("  coefficient T_i*S = %.3g byte-seconds (paper: ~8.3e3)\n",
           costmodel::CrossoverCoefficient(sys, p));
    for (double gb : {6.1, 20.0, 100.0}) {
      sys.database_bytes = gb * 1e9;
      printf("  DB %6.1f GB: crossover T_i = %.3g s -> MassTree cheaper "
             "above %.3g ops/sec\n",
             gb, costmodel::CrossoverIntervalSeconds(sys, p),
             costmodel::CrossoverOpsPerSec(sys, p));
    }
    // Figure 3 cost curves for the 6.1 GB point.
    sys.database_bytes = 6.1e9;
    double t_star = costmodel::CrossoverIntervalSeconds(sys, p);
    printf("  %16s %14s %14s %9s\n", "T_i (s/op)", "$ Bw-tree",
           "$ MassTree", "cheaper");
    for (double t = t_star * 16; t >= t_star / 16; t /= 4) {
      double bw_cost = costmodel::BwTreeCostPerOp(t, sys, p);
      double mt_cost = costmodel::MassTreeCostPerOp(t, sys, p);
      printf("  %16.3g %14.4e %14.4e %9s\n", t, bw_cost, mt_cost,
             bw_cost <= mt_cost ? "Bw-tree" : "MassTree");
    }
  };

  report("the paper's measured values", 2.6, 2.1);
  report("OUR measured values", px, mx);

  printf("\nShape check: the crossover rate scales linearly with DB size, "
         "and the Bw-tree can cut costs further by evicting cold pages at "
         "T_i = 45 s when run as a data caching system (Fig. 2).\n");
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
