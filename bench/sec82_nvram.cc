// Reproduces the §8.2 discussion quantitatively: where NVRAM could fit.
// NVRAM is modeled as a byte-addressable tier priced between DRAM and
// flash whose accesses cost a small CPU multiple of a DRAM operation
// (no I/O path, no IOPS rental). The paper's two observations:
//   (1) as an SSD replacement it loses — SS cost is dominated by the I/O
//       execution path, which NVRAM-as-SSD would still pay, while flash
//       keeps the $/byte advantage;
//   (2) as main/extended memory it can displace DRAM for warm data if
//       its performance is close enough — and even when hot data moves
//       back to DRAM, fetching from NVRAM beats an SS operation.

#include <cstdio>

#include "bench/bench_util.h"
#include "costmodel/five_minute_rule.h"
#include "costmodel/operation_cost.h"

namespace costperf {
namespace {

using bench::Banner;

// Cost/sec of keeping a page in NVRAM-as-memory and operating on it N
// times a second: storage = page * ($N + flash copy for capacity safety is
// unnecessary — NVRAM is persistent), execution = slowdown * $P/ROPS.
double NvramCost(double n, const costmodel::CostParams& p,
                 double nvram_cost_per_byte, double slowdown) {
  return p.page_size_bytes * nvram_cost_per_byte +
         n * slowdown * p.processor_cost / p.rops;
}

int Run() {
  Banner("§8.2 — new technology: NVRAM's two candidate roles",
         "Priced between DRAM and flash; performance decides whether it "
         "displaces DRAM for warm data. Fetching from NVRAM always beats "
         "an SS operation.");

  costmodel::CostParams p = costmodel::CostParams::PaperDefaults();
  // NVRAM ~ 1/3 of DRAM price (between $M=5e-9 and $Fl=0.5e-9).
  const double nvram_price = 1.7e-9;

  printf("\nassumed NVRAM price: %.2g $/B (DRAM %.2g, flash %.2g)\n",
         nvram_price, p.dram_cost_per_byte, p.flash_cost_per_byte);

  // Role 1: inside an SSD. The $I + CPU path cost is unchanged; only the
  // media price worsens vs flash — strictly dominated.
  costmodel::CostParams nvram_ssd = p;
  nvram_ssd.flash_cost_per_byte = nvram_price;
  printf("\nrole 1 — NVRAM-based SSD: SS storage cost rises %.1fx with "
         "zero execution saving (the I/O path dominates). Breakeven "
         "shrinks from %.1f s to %.1f s — i.e. it only makes caching "
         "LESS attractive. Flash keeps the SSD (paper's conclusion).\n",
         nvram_price / p.flash_cost_per_byte,
         costmodel::BreakevenIntervalSeconds(p),
         costmodel::BreakevenIntervalSeconds(nvram_ssd));

  // Role 2: extended memory, at several performance hypotheses.
  printf("\nrole 2 — NVRAM as (extended) memory, cost per page at rate N "
         "(slowdown = NVRAM op CPU vs DRAM op):\n");
  printf("%12s %12s | %12s %12s %12s | %s\n", "N (ops/s)", "$DRAM(MM)",
         "x2 slow", "x4 slow", "x8 slow", "cheapest");
  for (double n = 0.001; n <= 70; n *= 4) {
    double mm = costmodel::MmCost(n, p).total();
    double n2 = NvramCost(n, p, nvram_price, 2);
    double n4 = NvramCost(n, p, nvram_price, 4);
    double n8 = NvramCost(n, p, nvram_price, 8);
    const char* best = "DRAM";
    double best_cost = mm;
    if (n2 < best_cost) { best = "NVRAMx2"; best_cost = n2; }
    printf("%12.3f %12.3e | %12.3e %12.3e %12.3e | %s\n", n, mm, n2, n4,
           n8, best);
  }
  // Crossover: DRAM becomes cheaper than x2-NVRAM when the execution
  // premium outweighs the storage saving.
  double storage_saving =
      p.page_size_bytes * (p.dram_cost_per_byte + p.flash_cost_per_byte -
                           nvram_price);
  double exec_premium_x2 = (2 - 1) * p.processor_cost / p.rops;
  printf("\nDRAM/NVRAM(x2) crossover at N = %.2f ops/sec — hot data "
         "migrates back to DRAM, warm data stays in NVRAM (the paper's "
         "expected outcome).\n",
         storage_saving / exec_premium_x2);

  // And the paper's final point: an NVRAM fetch vs an SS operation.
  double n_probe = 1.0;
  printf("\nat N = %.0f ops/sec: NVRAM(x4) costs %.2e vs SS %.2e — "
         "%.0fx cheaper: 'fetching data from NVRAM has much lower cost "
         "and performance impact than an SS operation'.\n",
         n_probe, NvramCost(n_probe, p, nvram_price, 4),
         costmodel::SsCost(n_probe, p).total(),
         costmodel::SsCost(n_probe, p).total() /
             NvramCost(n_probe, p, nvram_price, 4));
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
