// Reproduces the §8.3 discussion quantitatively: why HDDs are no longer a
// useful technology for high-performance data stores ("disk is tape,
// flash is disk"). Same cost model, HDD-class IOPS and prices: the
// breakeven intervals explode and a single drive saturates at a handful
// of transactions per second.

#include <cstdio>

#include "bench/bench_util.h"
#include "costmodel/five_minute_rule.h"
#include "costmodel/operation_cost.h"

namespace costperf {
namespace {

using bench::Banner;

int Run() {
  Banner("§8.3 — old technology: HDD vs flash SSD",
         "HDD IOPS are ~3 orders of magnitude scarcer; the cost analysis "
         "shows why 'disk is tape' for high-performance stores.");

  costmodel::CostParams ssd = costmodel::CostParams::PaperDefaults();

  // High-end HDD per §8.3: ~200 IOPS, ~5 ms latency; commodity: ~100
  // IOPS, ~10 ms. Assume a $250 drive whose whole price buys its I/O
  // capability (HDD byte storage is nearly free per byte: ~$0.02/GB).
  costmodel::CostParams hdd_fast = ssd;
  hdd_fast.iops = 200;
  hdd_fast.ssd_io_capability_cost = 250;
  hdd_fast.flash_cost_per_byte = 0.02e-9;
  costmodel::CostParams hdd_commodity = hdd_fast;
  hdd_commodity.iops = 100;

  struct Row {
    const char* name;
    const costmodel::CostParams* p;
  } rows[] = {{"flash SSD (paper)", &ssd},
              {"HDD high-end (200 IOPS)", &hdd_fast},
              {"HDD commodity (100 IOPS)", &hdd_commodity}};

  printf("\n%-26s %12s %16s %18s\n", "device", "IOPS", "$/IO (amortized)",
         "breakeven T_i (s)");
  for (const Row& r : rows) {
    printf("%-26s %12.0f %16.2e %18.0f\n", r.name, r.p->iops,
           r.p->ssd_io_capability_cost / r.p->iops,
           costmodel::BreakevenIntervalSeconds(*r.p));
  }
  printf("\nHDD breakeven ~ %.0f minutes vs ~%.0f seconds on flash: with "
         "HDDs, almost everything belongs in DRAM — the pre-SSD world.\n",
         costmodel::BreakevenIntervalSeconds(hdd_fast) / 60,
         costmodel::BreakevenIntervalSeconds(ssd));

  // Saturation arithmetic from §8.3: a store doing ~1e6 ops/sec executes
  // ~5000 operations within one HDD access latency; if transactions need
  // 10 I/Os each, one HDD supports at most IOPS/10 transactions/sec.
  printf("\nsaturation (paper's arithmetic):\n");
  printf("  ops executed during one 5 ms HDD access at 1e6 ops/sec: %d\n",
         5000);
  printf("  max transactions/sec at 10 I/Os per txn: HDD %d vs SSD %d\n",
         200 / 10, 200000 / 10);
  printf("  fraction of ops that may touch an HDD before it saturates at "
         "1e6 ops/sec: %.3f%%\n", 100.0 * 200 / 1e6);

  // Where HDDs still make sense: storage-cost-dominated use (backup,
  // archive, sequential analytics) — the regime where access rates are
  // near zero and only the $/byte term matters.
  printf("\nstorage-only cost for 1 TB (access rate ~ 0): HDD $%.0f vs "
         "flash $%.0f — archival is the surviving HDD niche (§8.3).\n",
         hdd_fast.flash_cost_per_byte * 1e12,
         ssd.flash_cost_per_byte * 1e12);

  if (costmodel::BreakevenIntervalSeconds(hdd_fast) <
      20 * costmodel::BreakevenIntervalSeconds(ssd)) {
    printf("WARNING: HDD breakeven should dwarf the SSD breakeven\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
