// Reproduces Figure 2 and §4.2: MM vs SS operation cost as the access
// rate changes, and the updated five-minute rule breakeven T_i ~ 45 s.
// Printed twice: once with the paper's §4.1 constants, once with rates
// calibrated on OUR substrate (measured ROPS from Bw-tree MM gets,
// measured IOPS from the simulated device, measured R from a quick mixed
// run) — the crossover shape must hold in both.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "costmodel/calibration.h"
#include "costmodel/five_minute_rule.h"
#include "costmodel/operation_cost.h"

namespace costperf {
namespace {

using bench::Banner;
using bench::FigureStoreOptions;

void PrintCostCurves(const costmodel::CostParams& p, const char* label) {
  printf("\n--- %s ---\n", label);
  printf("params: %s\n", p.ToString().c_str());
  double t_i = costmodel::BreakevenIntervalSeconds(p);
  double n_star = costmodel::BreakevenOpsPerSec(p);
  printf("breakeven: T_i = %.1f s  (N* = %.4f ops/sec)\n", t_i, n_star);
  printf("classic (Gray, I/O-vs-memory only) T_i = %.1f s — the CPU path "
         "term adds the difference (§4.2 'additional cost')\n",
         costmodel::ClassicBreakevenIntervalSeconds(p));
  printf("record-granularity (P_s/10) T_i = %.1f s (§6.3: ~10x the page "
         "breakeven)\n",
         costmodel::RecordBreakevenIntervalSeconds(p, p.page_size_bytes / 10));

  printf("\n%14s %14s %14s %9s\n", "N (ops/sec)", "$MM", "$SS", "cheaper");
  for (double n = n_star / 64; n <= n_star * 64; n *= 4) {
    auto mm = costmodel::MmCost(n, p);
    auto ss = costmodel::SsCost(n, p);
    printf("%14.5f %14.4e %14.4e %9s\n", n, mm.total(), ss.total(),
           mm.total() <= ss.total() ? "MM" : "SS");
  }
}

int Run() {
  Banner("Figure 2 / §4.2 — the updated five-minute rule",
         "SS cheaper left of the crossover (storage-dominated), MM cheaper "
         "right of it (execution-dominated); paper T_i ~ 45 s.");

  // 1. Paper constants.
  costmodel::CostParams paper = costmodel::CostParams::PaperDefaults();
  PrintCostCurves(paper, "paper §4.1 constants");

  // Structural ratios the paper quotes.
  printf("\nstorage-cost ratio MM/SS = %.1fx (paper: ~11x)\n",
         costmodel::MmCost(0, paper).storage /
             costmodel::SsCost(0, paper).storage);
  double n = 1000;
  printf("execution-cost ratio SS/MM = %.1fx (paper: ~12x)\n",
         costmodel::SsCost(n, paper).execution /
             costmodel::MmCost(n, paper).execution);

  // 2. Calibrated on our substrate.
  core::CachingStore store(bench::FigureStoreOptions());
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(50'000);
  workload::Workload loader(spec);
  if (!loader.Load(&store).ok()) return 1;
  if (!store.Checkpoint().ok()) return 1;

  // Measured ROPS and R with identical probe loops (only the eviction
  // before the Get differs), so the ratio is apples-to-apples — the same
  // discipline the paper uses for its R derivation.
  Random rng(123);
  auto* tree = store.tree();
  for (int i = 0; i < 40'000; ++i) {
    (void)tree->Get(Slice(loader.KeyAt(rng.Uniform(50'000))));
  }
  uint64_t mm_nanos = 0;
  const int kMmProbes = 100'000;
  for (int i = 0; i < kMmProbes; ++i) {
    std::string key = loader.KeyAt(rng.Uniform(50'000));
    uint64_t t0 = ThreadCpuNanos();
    (void)tree->Get(Slice(key));
    mm_nanos += ThreadCpuNanos() - t0;
  }
  double rops = kMmProbes / (mm_nanos * 1e-9);

  // Warm the SS path before timing (the paper excludes the cold-path
  // regime from its R derivation).
  for (int i = 0; i < 1'000; ++i) {
    std::string key = loader.KeyAt(rng.Uniform(50'000));
    auto pid = tree->LeafOf(Slice(key));
    if (pid.ok()) tree->EvictPage(*pid, bwtree::EvictMode::kFullEviction);
    (void)tree->Get(Slice(key));
    if (i % 512 == 0) tree->ReclaimMemory();
  }

  uint64_t ss_nanos = 0;
  const int kSsProbes = 5'000;
  for (int i = 0; i < kSsProbes; ++i) {
    std::string key = loader.KeyAt(rng.Uniform(50'000));
    auto pid = tree->LeafOf(Slice(key));
    if (pid.ok()) tree->EvictPage(*pid, bwtree::EvictMode::kFullEviction);
    uint64_t t0 = ThreadCpuNanos();
    (void)tree->Get(Slice(key));
    ss_nanos += ThreadCpuNanos() - t0;
    if (i % 1024 == 0) tree->ReclaimMemory();
  }
  double ss_op_seconds = ss_nanos * 1e-9 / kSsProbes;
  double measured_r = ss_op_seconds * rops;

  // Measured IOPS of a throttled device configured like the paper's.
  storage::SsdOptions dev_probe;
  dev_probe.max_iops = 200'000;
  storage::SsdDevice probe(dev_probe);
  double iops = probe.MeasureIops(50'000);

  costmodel::CalibrationReport cal;
  cal.rops = rops;
  cal.iops = iops;
  cal.r = measured_r;
  costmodel::CostParams ours = costmodel::ApplyCalibration(paper, cal);
  PrintCostCurves(ours, "calibrated on this substrate");

  printf("\ncalibration: measured ROPS=%.3g, IOPS=%.3g, R=%.2f\n", rops,
         iops, measured_r);
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
