// Reproduces Figure 8 and §7.2: adding a compressed secondary storage
// (CSS) tier. Measures an actual compression ratio and decompression CPU
// cost on synthetic page images (structured records, as Facebook-style
// cold data would be), converts the decompress cost into the model's
// decompress_r, and prints the three-tier cost curves with their two
// switch points: CSS cheapest when very cold, SS in the middle, MM when
// hot.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "compression/compressor.h"
#include "costmodel/advisor.h"
#include "costmodel/calibration.h"
#include "costmodel/five_minute_rule.h"

namespace costperf {
namespace {

using bench::Banner;

std::string SyntheticPage(Random* rng, size_t approx_bytes) {
  std::string page;
  int i = 0;
  while (page.size() < approx_bytes) {
    char buf[128];
    snprintf(buf, sizeof(buf),
             "user%010d|name=customer_%d|city=city_%03d|balance=%08llu|",
             i, i % 1000, i % 250,
             static_cast<unsigned long long>(rng->Uniform(100000000)));
    page += buf;
    ++i;
  }
  return page;
}

int Run() {
  Banner("Figure 8 / §7.2 — compressed secondary storage (CSS) tier",
         "Compression trades CPU for storage: CSS wins on very cold data, "
         "SS in the middle, MM when hot — two crossovers.");

  // Measure real ratio & decompress CPU on ~2.7KB synthetic pages.
  Random rng(2024);
  constexpr int kPages = 400;
  std::vector<std::string> pages, compressed(kPages);
  for (int i = 0; i < kPages; ++i) pages.push_back(SyntheticPage(&rng, 2700));

  uint64_t raw_bytes = 0, comp_bytes = 0;
  for (int i = 0; i < kPages; ++i) {
    compression::Compressor::Compress(Slice(pages[i]), &compressed[i]);
    raw_bytes += pages[i].size();
    comp_bytes += compressed[i].size();
  }
  const double ratio = static_cast<double>(comp_bytes) / raw_bytes;

  // Decompression CPU per page.
  uint64_t t0 = ThreadCpuNanos();
  std::string out;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kPages; ++i) {
      (void)compression::Compressor::Decompress(Slice(compressed[i]), &out);
    }
  }
  const double decompress_sec_per_page =
      (ThreadCpuNanos() - t0) * 1e-9 / (kRounds * kPages);

  costmodel::CostParams p = costmodel::CostParams::PaperDefaults();
  // Express decompression as a multiple of an MM operation (1/ROPS sec).
  const double mm_op_sec = 1.0 / p.rops;
  costmodel::CompressionParams comp;
  comp.compression_ratio = ratio;
  comp.decompress_r = decompress_sec_per_page / mm_op_sec;

  printf("\nmeasured compression: ratio = %.2f (%.0f -> %.0f bytes/page), "
         "decompress = %.2f us/page = %.1f MM-ops of CPU\n",
         ratio, raw_bytes / double(kPages), comp_bytes / double(kPages),
         decompress_sec_per_page * 1e6, comp.decompress_r);

  costmodel::CostAdvisor advisor(p, comp);
  printf("%s\n", advisor.DescribeRegimes().c_str());

  const double css_ss = costmodel::CssSsBreakevenOpsPerSec(p, comp);
  const double ss_mm = costmodel::MmSsBreakevenOpsPerSec(p);

  printf("\n%14s %13s %13s %13s %9s\n", "N (ops/sec)", "$MM", "$SS", "$CSS",
         "cheapest");
  for (double n = css_ss / 64; n <= ss_mm * 64; n *= 4) {
    auto a = advisor.AdviseForRate(n);
    printf("%14.6f %13.4e %13.4e %13.4e %9s\n", n, a.mm_cost, a.ss_cost,
           *a.css_cost, costmodel::TierName(a.tier).c_str());
  }

  printf("\nswitch points: CSS->SS at %.3g ops/sec, SS->MM at %.3g ops/sec\n",
         css_ss, ss_mm);
  printf("Do not be misled by the small left-hand range: the amount of "
         "data that cold can be enormous (§7.2).\n");

  // Shape check: tier order must be CSS -> SS -> MM as rate grows.
  auto cold = advisor.AdviseForRate(css_ss / 100).tier;
  auto mid = advisor.AdviseForRate((css_ss + ss_mm) / 2).tier;
  auto hot = advisor.AdviseForRate(ss_mm * 100).tier;
  if (cold != costmodel::Tier::kCompressedSecondary ||
      mid != costmodel::Tier::kSecondaryStorage ||
      hot != costmodel::Tier::kMainMemory) {
    printf("WARNING: tier regime order broke\n");
    return 1;
  }

  // --- the CSS tier running inside the actual store ---
  // Same dataset flushed uncompressed vs via the compressed tier:
  // compare media bytes and the CPU of reading a page back from each.
  printf("\n--- CSS tier in the storage stack ---\n");
  auto opts = bench::FigureStoreOptions();
  core::CachingStore store(opts);
  constexpr int kStoreRecords = 20'000;
  for (int i = 0; i < kStoreRecords; ++i) {
    char key[32], val[96];
    snprintf(key, sizeof(key), "rec%010d", i);
    snprintf(val, sizeof(val), "name=customer_%04d|city=city_%03d|tier=%d|",
             i % 1000, i % 250, i % 3);
    if (!store.Put(Slice(key), Slice(val)).ok()) return 1;
  }
  auto pids = store.tree()->LeafPageIds();
  uint64_t before = store.log_store()->stats().payload_bytes_appended;
  for (auto pid : pids) {
    (void)store.tree()->FlushPage(pid, bwtree::FlushMode::kFullPage);
  }
  uint64_t raw_media = store.log_store()->stats().payload_bytes_appended -
                       before;
  // Dirty everything and re-flush compressed.
  for (int i = 0; i < kStoreRecords; i += 50) {
    char key[32];
    snprintf(key, sizeof(key), "rec%010d", i);
    (void)store.Put(Slice(key), "touch");
  }
  before = store.log_store()->stats().payload_bytes_appended;
  for (auto pid : store.tree()->LeafPageIds()) {
    (void)store.tree()->FlushPage(pid, bwtree::FlushMode::kCompressedPage);
  }
  uint64_t css_media = store.log_store()->stats().payload_bytes_appended -
                       before;
  printf("media bytes for the dataset: full pages %llu, CSS pages %llu "
         "(ratio %.2f)\n",
         (unsigned long long)raw_media, (unsigned long long)css_media,
         css_media / double(raw_media));

  // CPU per SS read from the compressed tier vs the plain tier.
  auto probe = [&](bwtree::FlushMode mode) {
    Random prng(9);
    uint64_t nanos = 0;
    constexpr int kProbes = 800;
    for (int i = 0; i < kProbes; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "rec%010d",
               (int)prng.Uniform(kStoreRecords));
      // Force the page onto the probed tier: dirty it, flush under the
      // chosen mode, evict, then time the read back.
      auto pid = store.tree()->LeafOf(Slice(key));
      if (!pid.ok()) continue;
      (void)store.tree()->Get(Slice(key));  // ensure resident
      (void)store.tree()->Put(Slice(key), "probe-touch");
      (void)store.tree()->FlushPage(*pid, mode);
      (void)store.tree()->EvictPage(*pid, bwtree::EvictMode::kFullEviction);
      uint64_t t0 = ThreadCpuNanos();
      (void)store.tree()->Get(Slice(key));
      nanos += ThreadCpuNanos() - t0;
      if (i % 256 == 0) store.tree()->ReclaimMemory();
    }
    return nanos / double(kProbes);
  };
  double plain_ns = probe(bwtree::FlushMode::kFullPage);
  double css_ns = probe(bwtree::FlushMode::kCompressedPage);
  printf("SS read CPU: plain %.1f us, CSS %.1f us (decompression premium "
         "%.2fx) — execution traded for storage, exactly Fig. 8's CSS "
         "line.\n",
         plain_ns / 1e3, css_ns / 1e3, css_ns / plain_ns);
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
