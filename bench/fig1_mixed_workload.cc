// Reproduces Figure 1: relative performance of a mixed workload of MM and
// SS operations as the SS fraction F sweeps 0..100%, against the model
// curves PF/P0 = 1/((1-F) + F*R) for R = 5.8 +/- 30% (paper §2.2).
//
// Method: a Bw-tree over the simulated SSD, fully loaded. For each target
// F we run uniform random Gets; with probability F the target leaf is
// evicted first (untimed) so the Get is an SS operation (page load from
// flash); otherwise it is an MM operation. Only the Gets' thread-CPU time
// is charged, matching the paper's definition of performance. R is then
// derived per point via Eq. (3) and fitted via least squares.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "costmodel/calibration.h"
#include "costmodel/mixed_workload.h"

namespace costperf {
namespace {

using bench::Banner;
using bench::FigureStoreOptions;

struct Measured {
  double f_target;
  double f_actual;
  double ops_per_cpu_sec;
};

Measured MeasureAtFraction(core::CachingStore* store,
                           workload::Workload* keys, double f,
                           uint64_t ops) {
  Random rng(0xF00D + static_cast<uint64_t>(f * 1000));
  auto* tree = store->tree();
  const uint64_t ss_before = tree->stats().ss_ops;
  const uint64_t mm_before = tree->stats().mm_ops;
  uint64_t timed_nanos = 0;
  const uint64_t n_records = keys->spec().record_count;

  for (uint64_t i = 0; i < ops; ++i) {
    std::string key = keys->KeyAt(rng.Uniform(n_records));
    if (f > 0 && rng.Bernoulli(f)) {
      // Untimed: force the next access to be an SS operation.
      auto pid = tree->LeafOf(Slice(key));
      if (pid.ok()) {
        tree->EvictPage(*pid, bwtree::EvictMode::kFullEviction);
      }
    }
    const uint64_t t0 = ThreadCpuNanos();
    auto r = tree->Get(Slice(key));
    timed_nanos += ThreadCpuNanos() - t0;
    if (!r.ok()) {
      fprintf(stderr, "unexpected miss on %s: %s\n", key.c_str(),
              r.status().ToString().c_str());
    }
    if (i % 4096 == 0) tree->ReclaimMemory();
  }
  const uint64_t ss = tree->stats().ss_ops - ss_before;
  const uint64_t mm = tree->stats().mm_ops - mm_before;
  Measured m;
  m.f_target = f;
  m.f_actual = static_cast<double>(ss) / static_cast<double>(ss + mm);
  m.ops_per_cpu_sec = ops / (static_cast<double>(timed_nanos) * 1e-9);
  return m;
}

int Run() {
  Banner("Figure 1 — mixed MM/SS workload relative performance",
         "Model: PF/P0 = 1/((1-F)+F*R); measured points should fall inside "
         "the R = 5.8 +/- 30% band once R is measured on OUR substrate.");

  core::CachingStore store(FigureStoreOptions());
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(100'000);
  spec.value_size = 100;
  workload::Workload loader(spec);
  if (!loader.Load(&store).ok()) return 1;
  if (!store.Checkpoint().ok()) return 1;

  // Warm passes: one to make every page resident and consolidated, one
  // to warm the eviction/load path itself (the paper notes R is only
  // stable once the I/O path is not "very cold").
  Measured p0 = MeasureAtFraction(&store, &loader, 0.0, 60'000);
  (void)MeasureAtFraction(&store, &loader, 0.3, 10'000);
  p0 = MeasureAtFraction(&store, &loader, 0.0, 60'000);

  const std::vector<double> fractions = {0.02, 0.05, 0.1, 0.2, 0.35,
                                         0.5,  0.7,  0.85, 1.0};
  std::vector<costmodel::MixedObservation> observations;
  std::vector<Measured> points;
  for (double f : fractions) {
    Measured m = MeasureAtFraction(&store, &loader, f, 40'000);
    points.push_back(m);
    observations.push_back({m.f_actual, m.ops_per_cpu_sec});
  }

  auto report = costmodel::DeriveRFromObservations(p0.ops_per_cpu_sec,
                                                   observations);
  const double r_fit = report.r;

  printf("\nP0 (all-MM) = %.0f ops/sec-cpu\n", p0.ops_per_cpu_sec);
  printf("fitted R = %.2f   (per-point range %.2f .. %.2f)\n", r_fit,
         report.r_min, report.r_max);
  printf("paper's optimized (user-level I/O) R was 5.8 +/- 30%%\n\n");

  printf("%8s %8s %12s %9s | model bands around fitted R\n", "F_target",
         "F_meas", "PF ops/s", "PF/P0");
  printf("%8s %8s %12s %9s | %9s %9s %9s %8s\n", "", "", "", "meas",
         "R-30%", "R_fit", "R+30%", "R_point");
  for (const auto& m : points) {
    double rel = m.ops_per_cpu_sec / p0.ops_per_cpu_sec;
    double lo = costmodel::RelativeThroughput(m.f_actual, r_fit * 1.3);
    double mid = costmodel::RelativeThroughput(m.f_actual, r_fit);
    double hi = costmodel::RelativeThroughput(m.f_actual, r_fit * 0.7);
    double r_point =
        costmodel::DeriveR(p0.ops_per_cpu_sec, m.ops_per_cpu_sec, m.f_actual);
    printf("%8.2f %8.3f %12.0f %9.3f | %9.3f %9.3f %9.3f %8.2f\n",
           m.f_target, m.f_actual, m.ops_per_cpu_sec, rel, lo, mid, hi,
           r_point);
  }

  printf("\nShape check: at F=1 the store runs at ~1/R of in-memory "
         "performance (measured %.3f vs 1/R_fit %.3f).\n",
         points.back().ops_per_cpu_sec / p0.ops_per_cpu_sec, 1.0 / r_fit);
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
