#ifndef COSTPERF_BENCH_BENCH_UTIL_H_
#define COSTPERF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/clock.h"
#include "core/caching_store.h"
#include "workload/workload.h"

namespace costperf::bench {

// Prints a banner naming the paper artifact a binary reproduces.
inline void Banner(const char* experiment, const char* claim) {
  printf("\n================================================================\n");
  printf("%s\n", experiment);
  printf("%s\n", claim);
  printf("================================================================\n");
}

// Measures CPU nanoseconds of `fn` via thread CPU time (the paper's
// performance measure: core execution time, excluding I/O waits).
template <typename Fn>
double CpuSeconds(Fn&& fn) {
  const uint64_t start = ThreadCpuNanos();
  fn();
  return static_cast<double>(ThreadCpuNanos() - start) * 1e-9;
}

// Standard store configuration for the figure benches: unthrottled
// simulated SSD (we measure CPU cost; the IOPS limit is modeled in the
// cost analysis), 4K max pages as in the paper's Deuteronomy setup.
inline core::CachingStoreOptions FigureStoreOptions() {
  core::CachingStoreOptions o;
  o.memory_budget_bytes = 0;          // explicit eviction control
  o.maintenance_interval_ops = 0;     // no background interference
  o.device.capacity_bytes = 2ull << 30;
  o.device.max_iops = 0;
  o.tree.max_page_bytes = 4096;
  return o;
}

}  // namespace costperf::bench

#endif  // COSTPERF_BENCH_BENCH_UTIL_H_
