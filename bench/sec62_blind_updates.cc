// Reproduces the §6.2 claim: blind updates avoid I/O entirely. With the
// index pages cached, an update to a record whose data page is evicted
// posts a delta through the mapping table without reading the page.
// Baseline: read-modify-write, which must load the page first.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"

namespace costperf {
namespace {

using bench::Banner;

struct Mode {
  const char* name;
  bool read_before_write;
};

int Run() {
  Banner("§6.2 — blind updates to avoid I/O",
         "Updates to evicted pages: blind deltas need zero reads; "
         "read-modify-write must fetch every page.");

  constexpr uint64_t kRecords = 40'000;
  constexpr uint64_t kUpdates = 10'000;

  Mode modes[] = {{"blind update (Deuteronomy)", false},
                  {"read-modify-write (classic)", true}};
  double blind_cpu = 0, rmw_cpu = 0;
  uint64_t blind_reads = 0, rmw_reads = 0;

  for (const Mode& mode : modes) {
    core::CachingStore store(bench::FigureStoreOptions());
    workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kRecords);
    spec.value_size = 100;
    workload::Workload loader(spec);
    if (!loader.Load(&store).ok()) return 1;
    if (!store.EvictAll().ok()) return 1;

    Random rng(99);
    uint64_t reads_before = store.device()->stats().reads;
    uint64_t t0 = ThreadCpuNanos();
    for (uint64_t i = 0; i < kUpdates; ++i) {
      std::string key = loader.KeyAt(rng.Uniform(kRecords));
      std::string val(100, 'b');
      if (mode.read_before_write) {
        (void)store.Get(Slice(key));  // forces the page load
      }
      if (!store.Put(Slice(key), Slice(val)).ok()) return 1;
      if (i % 2048 == 0) store.tree()->ReclaimMemory();
    }
    double cpu = (ThreadCpuNanos() - t0) * 1e-9;
    uint64_t reads = store.device()->stats().reads - reads_before;
    auto t = store.tree()->stats();
    printf("\n%s:\n", mode.name);
    printf("  device reads:       %10llu  (%.3f per update)\n",
           (unsigned long long)reads, reads / double(kUpdates));
    printf("  blind updates:      %10llu\n",
           (unsigned long long)t.blind_updates);
    printf("  cpu:                %10.3f s  (%.2f us/update)\n", cpu,
           cpu / kUpdates * 1e6);
    if (mode.read_before_write) {
      rmw_cpu = cpu;
      rmw_reads = reads;
    } else {
      blind_cpu = cpu;
      blind_reads = reads;
    }
  }

  printf("\nblind vs RMW: %.1fx less CPU, %llu vs %llu device reads\n",
         rmw_cpu / blind_cpu, (unsigned long long)blind_reads,
         (unsigned long long)rmw_reads);
  if (blind_reads != 0) {
    printf("WARNING: blind updates performed device reads\n");
    return 1;
  }
  if (rmw_reads == 0) {
    printf("WARNING: RMW baseline performed no reads — eviction broken?\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
