// Reproduces §6.3 — record caching:
//  (a) LLAMA-level: eviction that keeps delta updates in memory serves
//      later reads of those records without any I/O,
//  (b) TC-level: the MVCC version store and the read cache answer reads
//      without even reaching the data component,
//  (c) the analysis consequence: record-granularity breakeven intervals
//      are ~10x the page breakeven (Eq. 6 with P_s/10).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "costmodel/five_minute_rule.h"
#include "tc/transaction_component.h"

namespace costperf {
namespace {

using bench::Banner;

int Run() {
  Banner("§6.3 — record caching",
         "Delta record caches (LLAMA) and TC version/read caches avoid "
         "I/O; record-level breakeven is ~10x the page breakeven.");

  constexpr uint64_t kRecords = 40'000;
  constexpr uint64_t kHot = 400;  // records updated then re-read

  // ---- (a) LLAMA record cache: kKeepDeltas vs kFullEviction ----
  for (bool keep_deltas : {true, false}) {
    core::CachingStore store(bench::FigureStoreOptions());
    workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kRecords);
    workload::Workload loader(spec);
    if (!loader.Load(&store).ok()) return 1;
    if (!store.Checkpoint().ok()) return 1;

    // Update a hot subset, then evict every page under the chosen mode.
    Random rng(7);
    std::vector<std::string> hot_keys;
    for (uint64_t i = 0; i < kHot; ++i) {
      hot_keys.push_back(loader.KeyAt(rng.Uniform(kRecords)));
      if (!store.Put(Slice(hot_keys.back()), "hot-value").ok()) return 1;
    }
    // EvictPage writes out whatever the mode requires: full eviction
    // flushes the consolidated page; keep-deltas writes the base image
    // and leaves the delta spine in memory as the record cache.
    auto mode = keep_deltas ? bwtree::EvictMode::kKeepDeltas
                            : bwtree::EvictMode::kFullEviction;
    for (auto pid : store.tree()->LeafPageIds()) {
      (void)store.tree()->EvictPage(pid, mode);
    }

    uint64_t flash_before = store.tree()->stats().flash_record_reads;
    for (const auto& k : hot_keys) {
      auto r = store.Get(Slice(k));
      if (!r.ok() || *r != "hot-value") {
        printf("WARNING: wrong value after eviction\n");
        return 1;
      }
    }
    uint64_t flash_reads = store.tree()->stats().flash_record_reads -
                           flash_before;
    auto t = store.tree()->stats();
    printf("\neviction mode = %s:\n",
           keep_deltas ? "keep deltas (record cache)" : "full eviction");
    printf("  re-reads of %llu updated records -> flash record reads: "
           "%llu, record-cache hits: %llu\n",
           (unsigned long long)kHot, (unsigned long long)flash_reads,
           (unsigned long long)t.record_cache_hits);
    if (keep_deltas && flash_reads != 0) {
      printf("WARNING: record cache should have avoided all I/O\n");
      return 1;
    }
    if (!keep_deltas && flash_reads == 0) {
      printf("WARNING: full eviction should have required I/O\n");
      return 1;
    }
  }

  // ---- (b) TC record caches ----
  {
    core::CachingStore store(bench::FigureStoreOptions());
    workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(kRecords);
    workload::Workload loader(spec);
    if (!loader.Load(&store).ok()) return 1;
    tc::RecoveryLog log;
    tc::TransactionComponent tc(store.tree(), &log);

    Random rng(8);
    // Transactionally update a hot set; then read it back repeatedly.
    for (uint64_t i = 0; i < kHot; ++i) {
      (void)tc.WriteOne(loader.KeyAt(i), "tc-updated");
    }
    // Also read a cold set once (warms the read cache).
    for (uint64_t i = kHot; i < 2 * kHot; ++i) {
      std::string v;
      (void)tc.ReadOne(loader.KeyAt(i), &v);
    }
    auto before = tc.stats();
    for (int round = 0; round < 5; ++round) {
      std::string v;
      for (uint64_t i = 0; i < 2 * kHot; ++i) {
        (void)tc.ReadOne(loader.KeyAt(i), &v);
      }
    }
    auto after = tc.stats();
    uint64_t reads = after.reads - before.reads;
    printf("\nTC re-read pass (%llu reads):\n", (unsigned long long)reads);
    printf("  served by MVCC version store: %llu\n",
           (unsigned long long)(after.reads_from_version_store -
                                before.reads_from_version_store));
    printf("  served by read cache:         %llu\n",
           (unsigned long long)(after.reads_from_read_cache -
                                before.reads_from_read_cache));
    printf("  reached the data component:   %llu\n",
           (unsigned long long)(after.reads_from_dc - before.reads_from_dc));
    if (after.reads_from_dc != before.reads_from_dc) {
      printf("WARNING: TC caches should have absorbed every re-read\n");
      return 1;
    }
  }

  // ---- (c) the Eq. 6 consequence ----
  costmodel::CostParams p = costmodel::CostParams::PaperDefaults();
  printf("\nEq. (6) at record granularity (page P_s = %.0f B):\n",
         p.page_size_bytes);
  printf("  %18s %16s\n", "records per page", "breakeven T_i (s)");
  for (int rpp : {1, 5, 10, 27}) {
    printf("  %18d %16.0f\n", rpp,
           costmodel::RecordBreakevenIntervalSeconds(
               p, p.page_size_bytes / rpp));
  }
  printf("  10 records/page -> T_i ~ 10x the page breakeven, widening the "
         "regime where keeping the record in memory is cheapest (§6.3).\n");
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
