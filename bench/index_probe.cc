// Point-probe microbench for the batch-interleaved index descent
// (BwTree::MultiGetBatch / MassTree::LookupBatch): per-probe CPU cost of
// single-key Get vs batched probes, swept over batch size at a fixed
// interleave depth and over interleave depth at a fixed batch size. The
// interleave sweep is the direct measurement of miss overlap: depth 1 is
// the batched API with no overlap (every descent hop stalls alone),
// deeper lanes keep more misses in flight per thread.
//
// COSTPERF_INDEX_JSON=<path>: also emit machine-readable rows
// (scripts/bench_smoke.sh uses this to write BENCH_index.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bwtree/bwtree.h"
#include "common/random.h"
#include "common/simd.h"
#include "llama/log_store.h"
#include "masstree/masstree.h"
#include "storage/device.h"

namespace costperf {
namespace {

using bench::Banner;
using bench::CpuSeconds;

// Large enough that the index working set (inner nodes + leaf headers)
// spills the fast cache levels — batched probes have misses to overlap.
constexpr uint64_t kRecords = 400'000;
constexpr uint64_t kProbesPerConfig = 400'000;

const size_t kBatchSweep[] = {4, 16, 64, 256};
const size_t kInterleaveSweep[] = {1, 2, 4, 8, 16};
constexpr size_t kFixedInterleave = 8;
constexpr size_t kFixedBatch = 64;

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(i));
  return buf;
}

// Shuffled probe sequence: every config walks the same random order, so
// differences are probe mechanics, not locality luck.
std::vector<uint32_t> ProbeOrder() {
  std::vector<uint32_t> order(kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) order[i] = static_cast<uint32_t>(i);
  Random rng(0x5eed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  return order;
}

struct RowOut {
  const char* structure;
  const char* mode;  // "single" or "batched"
  size_t batch;
  size_t interleave;
  double ns_per_op;
  double speedup;  // vs the structure's single-probe baseline
};

std::vector<RowOut> g_rows;

void Report(const char* structure, const char* mode, size_t batch,
            size_t interleave, double seconds, double baseline_ns) {
  const double ns = seconds * 1e9 / static_cast<double>(kProbesPerConfig);
  const double speedup = baseline_ns > 0 ? baseline_ns / ns : 1.0;
  printf("%-9s %-8s batch=%-4zu ilv=%-3zu | %8.1f ns/probe  %6.2fx\n",
         structure, mode, batch, interleave, ns, speedup);
  g_rows.push_back({structure, mode, batch, interleave, ns, speedup});
}

// ---- Bw-tree ----------------------------------------------------------

struct BwFixture {
  std::unique_ptr<storage::SsdDevice> device;
  std::unique_ptr<llama::LogStructuredStore> log;
  std::unique_ptr<bwtree::BwTree> tree;

  BwFixture() {
    storage::SsdOptions dev;
    dev.capacity_bytes = 2ull << 30;
    dev.max_iops = 0;
    device = std::make_unique<storage::SsdDevice>(dev);
    log = std::make_unique<llama::LogStructuredStore>(device.get());
    bwtree::BwTreeOptions opts;
    opts.max_page_bytes = 4096;
    opts.log_store = log.get();
    tree = std::make_unique<bwtree::BwTree>(opts);
  }
};

double BwSingle(bwtree::BwTree* tree, const std::vector<uint32_t>& order,
                const std::vector<std::string>& keys) {
  std::string value;
  return CpuSeconds([&] {
    for (uint32_t i : order) {
      (void)tree->Get(Slice(keys[i]), &value);
    }
  });
}

double BwBatched(bwtree::BwTree* tree, const std::vector<uint32_t>& order,
                 const std::vector<std::string>& keys, size_t batch,
                 size_t interleave) {
  std::vector<std::string> values(batch);
  std::vector<Status> statuses(batch);
  std::vector<bwtree::BwTree::BatchGetOp> ops(batch);
  return CpuSeconds([&] {
    for (size_t base = 0; base + batch <= order.size(); base += batch) {
      for (size_t j = 0; j < batch; ++j) {
        ops[j] = {Slice(keys[order[base + j]]), &values[j], &statuses[j]};
      }
      tree->MultiGetBatch(ops.data(), batch, interleave);
    }
  });
}

// ---- MassTree ---------------------------------------------------------

// The single-probe MassTree baseline is a 1-op LookupBatch at interleave
// 1: identical output discipline to the batched rows (caller-owned value
// buffer), so the comparison isolates descent mechanics instead of the
// Result<std::string> allocation the Get() convenience surface pays.
double MtBatched(const masstree::MassTree* tree,
                 const std::vector<uint32_t>& order,
                 const std::vector<std::string>& keys, size_t batch,
                 size_t interleave) {
  std::vector<std::string> values(batch);
  std::vector<Status> statuses(batch);
  std::vector<masstree::MassTree::LookupOp> ops(batch);
  return CpuSeconds([&] {
    for (size_t base = 0; base + batch <= order.size(); base += batch) {
      for (size_t j = 0; j < batch; ++j) {
        ops[j] = {Slice(keys[order[base + j]]), &values[j], &statuses[j]};
      }
      tree->LookupBatch(ops.data(), batch, interleave);
    }
  });
}

int Run() {
  Banner("Index point-probe cost — single vs batch-interleaved descent",
         "ns of CPU per probe over a uniform shuffled key set; speedup "
         "is against the same structure's single-probe baseline.");
  printf("simd backend: %s\n\n", simd::BackendName());

  std::vector<std::string> keys;
  keys.reserve(kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) keys.push_back(Key(i));
  const std::vector<uint32_t> order = ProbeOrder();
  const std::string value(8, 'v');

  // Bw-tree.
  double bw_single_ns = 0;
  {
    BwFixture fx;
    for (uint64_t i = 0; i < kRecords; ++i) {
      if (!fx.tree->Put(Slice(keys[i]), Slice(value)).ok()) return 1;
    }
    const double s = BwSingle(fx.tree.get(), order, keys);
    bw_single_ns = s * 1e9 / kProbesPerConfig;
    Report("bwtree", "single", 1, 1, s, bw_single_ns);
    for (size_t batch : kBatchSweep) {
      Report("bwtree", "batched", batch, kFixedInterleave,
             BwBatched(fx.tree.get(), order, keys, batch, kFixedInterleave),
             bw_single_ns);
    }
    for (size_t ilv : kInterleaveSweep) {
      Report("bwtree", "batched", kFixedBatch, ilv,
             BwBatched(fx.tree.get(), order, keys, kFixedBatch, ilv),
             bw_single_ns);
    }
  }
  printf("\n");

  // MassTree.
  {
    masstree::MassTree tree;
    for (uint64_t i = 0; i < kRecords; ++i) {
      if (!tree.Put(Slice(keys[i]), Slice(value)).ok()) return 1;
    }
    const double s = MtBatched(&tree, order, keys, 1, 1);
    const double mt_single_ns = s * 1e9 / kProbesPerConfig;
    Report("masstree", "single", 1, 1, s, mt_single_ns);
    for (size_t batch : kBatchSweep) {
      Report("masstree", "batched", batch, kFixedInterleave,
             MtBatched(&tree, order, keys, batch, kFixedInterleave),
             mt_single_ns);
    }
    for (size_t ilv : kInterleaveSweep) {
      Report("masstree", "batched", kFixedBatch, ilv,
             MtBatched(&tree, order, keys, kFixedBatch, ilv), mt_single_ns);
    }
  }

  printf("\nDeeper interleave keeps more descent misses in flight per "
         "thread until the batch runs out of independent work; SIMD node "
         "search compounds by shrinking the per-hop compare cost.\n");

  if (const char* path = std::getenv("COSTPERF_INDEX_JSON")) {
    FILE* out = fopen(path, "w");
    if (out == nullptr) {
      fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    fprintf(out,
            "{\n  \"bench\": \"index_probe\",\n  \"simd_backend\": \"%s\",\n"
            "  \"records\": %llu,\n  \"probes_per_config\": %llu,\n"
            "  \"rows\": [\n",
            simd::BackendName(), (unsigned long long)kRecords,
            (unsigned long long)kProbesPerConfig);
    for (size_t i = 0; i < g_rows.size(); ++i) {
      const RowOut& r = g_rows[i];
      fprintf(out,
              "%s    {\"structure\": \"%s\", \"mode\": \"%s\", "
              "\"batch\": %zu, \"interleave\": %zu, "
              "\"ns_per_probe\": %.1f, \"speedup_vs_single\": %.3f}",
              i == 0 ? "" : ",\n", r.structure, r.mode, r.batch,
              r.interleave, r.ns_per_op, r.speedup);
    }
    fprintf(out, "\n  ]\n}\n");
    fclose(out);
    printf("wrote %s\n", path);
  }
  return 0;
}

}  // namespace
}  // namespace costperf

int main() { return costperf::Run(); }
