# Empty compiler generated dependencies file for sec82_nvram.
# This may be replaced when dependencies are built.
