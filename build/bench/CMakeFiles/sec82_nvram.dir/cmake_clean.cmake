file(REMOVE_RECURSE
  "CMakeFiles/sec82_nvram.dir/sec82_nvram.cc.o"
  "CMakeFiles/sec82_nvram.dir/sec82_nvram.cc.o.d"
  "sec82_nvram"
  "sec82_nvram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec82_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
