# Empty compiler generated dependencies file for sec61_write_reduction.
# This may be replaced when dependencies are built.
