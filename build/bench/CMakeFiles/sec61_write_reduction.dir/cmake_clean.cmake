file(REMOVE_RECURSE
  "CMakeFiles/sec61_write_reduction.dir/sec61_write_reduction.cc.o"
  "CMakeFiles/sec61_write_reduction.dir/sec61_write_reduction.cc.o.d"
  "sec61_write_reduction"
  "sec61_write_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec61_write_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
