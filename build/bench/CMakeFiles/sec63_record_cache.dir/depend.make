# Empty dependencies file for sec63_record_cache.
# This may be replaced when dependencies are built.
