file(REMOVE_RECURSE
  "CMakeFiles/sec63_record_cache.dir/sec63_record_cache.cc.o"
  "CMakeFiles/sec63_record_cache.dir/sec63_record_cache.cc.o.d"
  "sec63_record_cache"
  "sec63_record_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_record_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
