# Empty dependencies file for ablate_cost_eviction.
# This may be replaced when dependencies are built.
