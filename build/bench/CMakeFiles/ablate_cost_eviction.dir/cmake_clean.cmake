file(REMOVE_RECURSE
  "CMakeFiles/ablate_cost_eviction.dir/ablate_cost_eviction.cc.o"
  "CMakeFiles/ablate_cost_eviction.dir/ablate_cost_eviction.cc.o.d"
  "ablate_cost_eviction"
  "ablate_cost_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cost_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
