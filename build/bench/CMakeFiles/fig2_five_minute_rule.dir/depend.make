# Empty dependencies file for fig2_five_minute_rule.
# This may be replaced when dependencies are built.
