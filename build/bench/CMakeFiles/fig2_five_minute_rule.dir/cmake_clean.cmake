file(REMOVE_RECURSE
  "CMakeFiles/fig2_five_minute_rule.dir/fig2_five_minute_rule.cc.o"
  "CMakeFiles/fig2_five_minute_rule.dir/fig2_five_minute_rule.cc.o.d"
  "fig2_five_minute_rule"
  "fig2_five_minute_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_five_minute_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
