# Empty compiler generated dependencies file for fig1_mixed_workload.
# This may be replaced when dependencies are built.
