file(REMOVE_RECURSE
  "CMakeFiles/fig1_mixed_workload.dir/fig1_mixed_workload.cc.o"
  "CMakeFiles/fig1_mixed_workload.dir/fig1_mixed_workload.cc.o.d"
  "fig1_mixed_workload"
  "fig1_mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
