# Empty dependencies file for table_hw_constants.
# This may be replaced when dependencies are built.
