file(REMOVE_RECURSE
  "CMakeFiles/table_hw_constants.dir/table_hw_constants.cc.o"
  "CMakeFiles/table_hw_constants.dir/table_hw_constants.cc.o.d"
  "table_hw_constants"
  "table_hw_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_hw_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
