# Empty dependencies file for sec62_blind_updates.
# This may be replaced when dependencies are built.
