file(REMOVE_RECURSE
  "CMakeFiles/sec62_blind_updates.dir/sec62_blind_updates.cc.o"
  "CMakeFiles/sec62_blind_updates.dir/sec62_blind_updates.cc.o.d"
  "sec62_blind_updates"
  "sec62_blind_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_blind_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
