file(REMOVE_RECURSE
  "CMakeFiles/fig3_masstree_vs_bwtree.dir/fig3_masstree_vs_bwtree.cc.o"
  "CMakeFiles/fig3_masstree_vs_bwtree.dir/fig3_masstree_vs_bwtree.cc.o.d"
  "fig3_masstree_vs_bwtree"
  "fig3_masstree_vs_bwtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_masstree_vs_bwtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
