# Empty compiler generated dependencies file for fig3_masstree_vs_bwtree.
# This may be replaced when dependencies are built.
