file(REMOVE_RECURSE
  "CMakeFiles/fig7_io_path.dir/fig7_io_path.cc.o"
  "CMakeFiles/fig7_io_path.dir/fig7_io_path.cc.o.d"
  "fig7_io_path"
  "fig7_io_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_io_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
