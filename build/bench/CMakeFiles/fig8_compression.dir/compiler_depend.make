# Empty compiler generated dependencies file for fig8_compression.
# This may be replaced when dependencies are built.
