file(REMOVE_RECURSE
  "CMakeFiles/fig8_compression.dir/fig8_compression.cc.o"
  "CMakeFiles/fig8_compression.dir/fig8_compression.cc.o.d"
  "fig8_compression"
  "fig8_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
