# Empty dependencies file for ycsb_comparison.
# This may be replaced when dependencies are built.
