file(REMOVE_RECURSE
  "CMakeFiles/ycsb_comparison.dir/ycsb_comparison.cc.o"
  "CMakeFiles/ycsb_comparison.dir/ycsb_comparison.cc.o.d"
  "ycsb_comparison"
  "ycsb_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
