# Empty dependencies file for sec83_hdd_vs_ssd.
# This may be replaced when dependencies are built.
