file(REMOVE_RECURSE
  "CMakeFiles/sec83_hdd_vs_ssd.dir/sec83_hdd_vs_ssd.cc.o"
  "CMakeFiles/sec83_hdd_vs_ssd.dir/sec83_hdd_vs_ssd.cc.o.d"
  "sec83_hdd_vs_ssd"
  "sec83_hdd_vs_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec83_hdd_vs_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
