file(REMOVE_RECURSE
  "CMakeFiles/cost_advisor.dir/cost_advisor.cpp.o"
  "CMakeFiles/cost_advisor.dir/cost_advisor.cpp.o.d"
  "cost_advisor"
  "cost_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
