file(REMOVE_RECURSE
  "CMakeFiles/hot_cold_tiering.dir/hot_cold_tiering.cpp.o"
  "CMakeFiles/hot_cold_tiering.dir/hot_cold_tiering.cpp.o.d"
  "hot_cold_tiering"
  "hot_cold_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_cold_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
