# Empty compiler generated dependencies file for hot_cold_tiering.
# This may be replaced when dependencies are built.
