file(REMOVE_RECURSE
  "CMakeFiles/css_tier_test.dir/css_tier_test.cc.o"
  "CMakeFiles/css_tier_test.dir/css_tier_test.cc.o.d"
  "css_tier_test"
  "css_tier_test.pdb"
  "css_tier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/css_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
