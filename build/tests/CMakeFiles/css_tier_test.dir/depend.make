# Empty dependencies file for css_tier_test.
# This may be replaced when dependencies are built.
