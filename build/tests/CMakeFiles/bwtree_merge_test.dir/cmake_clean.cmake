file(REMOVE_RECURSE
  "CMakeFiles/bwtree_merge_test.dir/bwtree_merge_test.cc.o"
  "CMakeFiles/bwtree_merge_test.dir/bwtree_merge_test.cc.o.d"
  "bwtree_merge_test"
  "bwtree_merge_test.pdb"
  "bwtree_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwtree_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
