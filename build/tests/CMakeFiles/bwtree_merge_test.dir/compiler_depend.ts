# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bwtree_merge_test.
