# Empty compiler generated dependencies file for bwtree_merge_test.
# This may be replaced when dependencies are built.
