# Empty dependencies file for five_minute_rule_test.
# This may be replaced when dependencies are built.
