file(REMOVE_RECURSE
  "CMakeFiles/five_minute_rule_test.dir/five_minute_rule_test.cc.o"
  "CMakeFiles/five_minute_rule_test.dir/five_minute_rule_test.cc.o.d"
  "five_minute_rule_test"
  "five_minute_rule_test.pdb"
  "five_minute_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/five_minute_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
