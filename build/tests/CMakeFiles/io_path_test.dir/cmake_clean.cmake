file(REMOVE_RECURSE
  "CMakeFiles/io_path_test.dir/io_path_test.cc.o"
  "CMakeFiles/io_path_test.dir/io_path_test.cc.o.d"
  "io_path_test"
  "io_path_test.pdb"
  "io_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
