# Empty compiler generated dependencies file for io_path_test.
# This may be replaced when dependencies are built.
