file(REMOVE_RECURSE
  "CMakeFiles/latch_test.dir/latch_test.cc.o"
  "CMakeFiles/latch_test.dir/latch_test.cc.o.d"
  "latch_test"
  "latch_test.pdb"
  "latch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
