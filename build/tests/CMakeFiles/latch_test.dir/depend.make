# Empty dependencies file for latch_test.
# This may be replaced when dependencies are built.
