file(REMOVE_RECURSE
  "CMakeFiles/masstree_compare_test.dir/masstree_compare_test.cc.o"
  "CMakeFiles/masstree_compare_test.dir/masstree_compare_test.cc.o.d"
  "masstree_compare_test"
  "masstree_compare_test.pdb"
  "masstree_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masstree_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
