# Empty dependencies file for masstree_compare_test.
# This may be replaced when dependencies are built.
