# Empty dependencies file for bwtree_test.
# This may be replaced when dependencies are built.
