file(REMOVE_RECURSE
  "CMakeFiles/masstree_test.dir/masstree_test.cc.o"
  "CMakeFiles/masstree_test.dir/masstree_test.cc.o.d"
  "masstree_test"
  "masstree_test.pdb"
  "masstree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masstree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
