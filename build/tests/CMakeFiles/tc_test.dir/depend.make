# Empty dependencies file for tc_test.
# This may be replaced when dependencies are built.
