# Empty dependencies file for mapping_table_test.
# This may be replaced when dependencies are built.
