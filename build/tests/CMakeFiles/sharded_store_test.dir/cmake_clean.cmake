file(REMOVE_RECURSE
  "CMakeFiles/sharded_store_test.dir/sharded_store_test.cc.o"
  "CMakeFiles/sharded_store_test.dir/sharded_store_test.cc.o.d"
  "sharded_store_test"
  "sharded_store_test.pdb"
  "sharded_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
