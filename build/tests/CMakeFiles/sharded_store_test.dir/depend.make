# Empty dependencies file for sharded_store_test.
# This may be replaced when dependencies are built.
