file(REMOVE_RECURSE
  "CMakeFiles/costperf_storage.dir/device.cc.o"
  "CMakeFiles/costperf_storage.dir/device.cc.o.d"
  "CMakeFiles/costperf_storage.dir/io_path.cc.o"
  "CMakeFiles/costperf_storage.dir/io_path.cc.o.d"
  "CMakeFiles/costperf_storage.dir/rate_limiter.cc.o"
  "CMakeFiles/costperf_storage.dir/rate_limiter.cc.o.d"
  "libcostperf_storage.a"
  "libcostperf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
