# Empty compiler generated dependencies file for costperf_storage.
# This may be replaced when dependencies are built.
