file(REMOVE_RECURSE
  "libcostperf_storage.a"
)
