# Empty dependencies file for costperf_llama.
# This may be replaced when dependencies are built.
