
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llama/cache_manager.cc" "src/llama/CMakeFiles/costperf_llama.dir/cache_manager.cc.o" "gcc" "src/llama/CMakeFiles/costperf_llama.dir/cache_manager.cc.o.d"
  "/root/repo/src/llama/log_store.cc" "src/llama/CMakeFiles/costperf_llama.dir/log_store.cc.o" "gcc" "src/llama/CMakeFiles/costperf_llama.dir/log_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/costperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/costperf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/costperf_mapping.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
