file(REMOVE_RECURSE
  "CMakeFiles/costperf_llama.dir/cache_manager.cc.o"
  "CMakeFiles/costperf_llama.dir/cache_manager.cc.o.d"
  "CMakeFiles/costperf_llama.dir/log_store.cc.o"
  "CMakeFiles/costperf_llama.dir/log_store.cc.o.d"
  "libcostperf_llama.a"
  "libcostperf_llama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_llama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
