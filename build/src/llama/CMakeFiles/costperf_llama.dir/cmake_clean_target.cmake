file(REMOVE_RECURSE
  "libcostperf_llama.a"
)
