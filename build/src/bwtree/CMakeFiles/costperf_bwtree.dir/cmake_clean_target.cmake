file(REMOVE_RECURSE
  "libcostperf_bwtree.a"
)
