file(REMOVE_RECURSE
  "CMakeFiles/costperf_bwtree.dir/bwtree.cc.o"
  "CMakeFiles/costperf_bwtree.dir/bwtree.cc.o.d"
  "CMakeFiles/costperf_bwtree.dir/node.cc.o"
  "CMakeFiles/costperf_bwtree.dir/node.cc.o.d"
  "CMakeFiles/costperf_bwtree.dir/page_codec.cc.o"
  "CMakeFiles/costperf_bwtree.dir/page_codec.cc.o.d"
  "libcostperf_bwtree.a"
  "libcostperf_bwtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_bwtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
