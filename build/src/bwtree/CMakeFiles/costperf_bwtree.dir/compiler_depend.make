# Empty compiler generated dependencies file for costperf_bwtree.
# This may be replaced when dependencies are built.
