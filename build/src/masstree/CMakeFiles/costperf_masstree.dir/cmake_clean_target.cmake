file(REMOVE_RECURSE
  "libcostperf_masstree.a"
)
