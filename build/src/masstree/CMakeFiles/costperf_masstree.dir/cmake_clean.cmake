file(REMOVE_RECURSE
  "CMakeFiles/costperf_masstree.dir/masstree.cc.o"
  "CMakeFiles/costperf_masstree.dir/masstree.cc.o.d"
  "libcostperf_masstree.a"
  "libcostperf_masstree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_masstree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
