# Empty compiler generated dependencies file for costperf_masstree.
# This may be replaced when dependencies are built.
