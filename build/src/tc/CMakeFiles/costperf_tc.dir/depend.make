# Empty dependencies file for costperf_tc.
# This may be replaced when dependencies are built.
