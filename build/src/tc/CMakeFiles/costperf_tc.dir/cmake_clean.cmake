file(REMOVE_RECURSE
  "CMakeFiles/costperf_tc.dir/transaction_component.cc.o"
  "CMakeFiles/costperf_tc.dir/transaction_component.cc.o.d"
  "libcostperf_tc.a"
  "libcostperf_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
