file(REMOVE_RECURSE
  "libcostperf_tc.a"
)
