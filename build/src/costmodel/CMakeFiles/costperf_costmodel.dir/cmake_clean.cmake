file(REMOVE_RECURSE
  "CMakeFiles/costperf_costmodel.dir/advisor.cc.o"
  "CMakeFiles/costperf_costmodel.dir/advisor.cc.o.d"
  "CMakeFiles/costperf_costmodel.dir/calibration.cc.o"
  "CMakeFiles/costperf_costmodel.dir/calibration.cc.o.d"
  "CMakeFiles/costperf_costmodel.dir/five_minute_rule.cc.o"
  "CMakeFiles/costperf_costmodel.dir/five_minute_rule.cc.o.d"
  "CMakeFiles/costperf_costmodel.dir/masstree_compare.cc.o"
  "CMakeFiles/costperf_costmodel.dir/masstree_compare.cc.o.d"
  "CMakeFiles/costperf_costmodel.dir/mixed_workload.cc.o"
  "CMakeFiles/costperf_costmodel.dir/mixed_workload.cc.o.d"
  "CMakeFiles/costperf_costmodel.dir/operation_cost.cc.o"
  "CMakeFiles/costperf_costmodel.dir/operation_cost.cc.o.d"
  "libcostperf_costmodel.a"
  "libcostperf_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
