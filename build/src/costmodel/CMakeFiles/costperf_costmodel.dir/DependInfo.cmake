
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/advisor.cc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/advisor.cc.o" "gcc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/advisor.cc.o.d"
  "/root/repo/src/costmodel/calibration.cc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/calibration.cc.o" "gcc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/calibration.cc.o.d"
  "/root/repo/src/costmodel/five_minute_rule.cc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/five_minute_rule.cc.o" "gcc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/five_minute_rule.cc.o.d"
  "/root/repo/src/costmodel/masstree_compare.cc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/masstree_compare.cc.o" "gcc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/masstree_compare.cc.o.d"
  "/root/repo/src/costmodel/mixed_workload.cc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/mixed_workload.cc.o" "gcc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/mixed_workload.cc.o.d"
  "/root/repo/src/costmodel/operation_cost.cc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/operation_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/costperf_costmodel.dir/operation_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/costperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
