file(REMOVE_RECURSE
  "libcostperf_costmodel.a"
)
