# Empty dependencies file for costperf_costmodel.
# This may be replaced when dependencies are built.
