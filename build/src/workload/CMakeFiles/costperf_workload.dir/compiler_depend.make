# Empty compiler generated dependencies file for costperf_workload.
# This may be replaced when dependencies are built.
