file(REMOVE_RECURSE
  "libcostperf_workload.a"
)
