file(REMOVE_RECURSE
  "CMakeFiles/costperf_workload.dir/runner.cc.o"
  "CMakeFiles/costperf_workload.dir/runner.cc.o.d"
  "CMakeFiles/costperf_workload.dir/workload.cc.o"
  "CMakeFiles/costperf_workload.dir/workload.cc.o.d"
  "libcostperf_workload.a"
  "libcostperf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
