
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/runner.cc" "src/workload/CMakeFiles/costperf_workload.dir/runner.cc.o" "gcc" "src/workload/CMakeFiles/costperf_workload.dir/runner.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/costperf_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/costperf_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/costperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/costperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bwtree/CMakeFiles/costperf_bwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/llama/CMakeFiles/costperf_llama.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/costperf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/costperf_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/costperf_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/masstree/CMakeFiles/costperf_masstree.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/costperf_costmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
