
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/caching_store.cc" "src/core/CMakeFiles/costperf_core.dir/caching_store.cc.o" "gcc" "src/core/CMakeFiles/costperf_core.dir/caching_store.cc.o.d"
  "/root/repo/src/core/kv_store.cc" "src/core/CMakeFiles/costperf_core.dir/kv_store.cc.o" "gcc" "src/core/CMakeFiles/costperf_core.dir/kv_store.cc.o.d"
  "/root/repo/src/core/memory_store.cc" "src/core/CMakeFiles/costperf_core.dir/memory_store.cc.o" "gcc" "src/core/CMakeFiles/costperf_core.dir/memory_store.cc.o.d"
  "/root/repo/src/core/sharded_store.cc" "src/core/CMakeFiles/costperf_core.dir/sharded_store.cc.o" "gcc" "src/core/CMakeFiles/costperf_core.dir/sharded_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/costperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/costperf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/costperf_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/llama/CMakeFiles/costperf_llama.dir/DependInfo.cmake"
  "/root/repo/build/src/bwtree/CMakeFiles/costperf_bwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/masstree/CMakeFiles/costperf_masstree.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/costperf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/costperf_compression.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
