file(REMOVE_RECURSE
  "libcostperf_core.a"
)
