file(REMOVE_RECURSE
  "CMakeFiles/costperf_core.dir/caching_store.cc.o"
  "CMakeFiles/costperf_core.dir/caching_store.cc.o.d"
  "CMakeFiles/costperf_core.dir/kv_store.cc.o"
  "CMakeFiles/costperf_core.dir/kv_store.cc.o.d"
  "CMakeFiles/costperf_core.dir/memory_store.cc.o"
  "CMakeFiles/costperf_core.dir/memory_store.cc.o.d"
  "CMakeFiles/costperf_core.dir/sharded_store.cc.o"
  "CMakeFiles/costperf_core.dir/sharded_store.cc.o.d"
  "libcostperf_core.a"
  "libcostperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
