# Empty compiler generated dependencies file for costperf_core.
# This may be replaced when dependencies are built.
