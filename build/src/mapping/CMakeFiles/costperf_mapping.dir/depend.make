# Empty dependencies file for costperf_mapping.
# This may be replaced when dependencies are built.
