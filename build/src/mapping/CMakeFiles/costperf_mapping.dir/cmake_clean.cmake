file(REMOVE_RECURSE
  "CMakeFiles/costperf_mapping.dir/mapping_table.cc.o"
  "CMakeFiles/costperf_mapping.dir/mapping_table.cc.o.d"
  "libcostperf_mapping.a"
  "libcostperf_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
