file(REMOVE_RECURSE
  "libcostperf_mapping.a"
)
