# Empty compiler generated dependencies file for costperf_common.
# This may be replaced when dependencies are built.
