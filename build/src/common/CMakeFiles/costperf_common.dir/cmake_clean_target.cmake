file(REMOVE_RECURSE
  "libcostperf_common.a"
)
