file(REMOVE_RECURSE
  "CMakeFiles/costperf_common.dir/clock.cc.o"
  "CMakeFiles/costperf_common.dir/clock.cc.o.d"
  "CMakeFiles/costperf_common.dir/coding.cc.o"
  "CMakeFiles/costperf_common.dir/coding.cc.o.d"
  "CMakeFiles/costperf_common.dir/crc32.cc.o"
  "CMakeFiles/costperf_common.dir/crc32.cc.o.d"
  "CMakeFiles/costperf_common.dir/epoch.cc.o"
  "CMakeFiles/costperf_common.dir/epoch.cc.o.d"
  "CMakeFiles/costperf_common.dir/histogram.cc.o"
  "CMakeFiles/costperf_common.dir/histogram.cc.o.d"
  "CMakeFiles/costperf_common.dir/random.cc.o"
  "CMakeFiles/costperf_common.dir/random.cc.o.d"
  "CMakeFiles/costperf_common.dir/status.cc.o"
  "CMakeFiles/costperf_common.dir/status.cc.o.d"
  "libcostperf_common.a"
  "libcostperf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
