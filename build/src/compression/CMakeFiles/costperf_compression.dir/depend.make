# Empty dependencies file for costperf_compression.
# This may be replaced when dependencies are built.
