file(REMOVE_RECURSE
  "libcostperf_compression.a"
)
