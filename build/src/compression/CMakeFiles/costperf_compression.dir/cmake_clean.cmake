file(REMOVE_RECURSE
  "CMakeFiles/costperf_compression.dir/compressor.cc.o"
  "CMakeFiles/costperf_compression.dir/compressor.cc.o.d"
  "libcostperf_compression.a"
  "libcostperf_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costperf_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
