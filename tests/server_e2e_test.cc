// End-to-end server tests over loopback: CRUD round-trips, proof that a
// pipelined window reaches the store's batched paths (grouping counters),
// per-tenant accounting via STATS, multi-threaded clients against
// multi-threaded I/O (the TSan lane runs this), graceful shutdown, and
// the admission controller's write-pushback policy (unit-tested against
// a VirtualClock).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/sharded_store.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/server.h"

namespace costperf::server {
namespace {

class ServerE2eTest : public ::testing::Test {
 protected:
  void StartServer(int io_threads, ServerOptions opts = ServerOptions()) {
    store_ = core::ShardedStore::OfMemory(4);
    opts.io_threads = io_threads;
    server_ = std::make_unique<Server>(store_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<core::ShardedStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerE2eTest, CrudRoundTrip) {
  StartServer(1);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());

  EXPECT_TRUE(c.Get("missing").status().IsNotFound());
  ASSERT_TRUE(c.Put("alpha", "1").ok());
  ASSERT_TRUE(c.Put("beta", std::string(2000, 'b')).ok());
  auto got = c.Get("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "1");
  got = c.Get("beta");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2000u);
  ASSERT_TRUE(c.Delete("alpha").ok());
  EXPECT_TRUE(c.Get("alpha").status().IsNotFound());
}

TEST_F(ServerE2eTest, BatchOpsOverTheWire) {
  StartServer(1);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());

  std::vector<core::KvEntry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.emplace_back("wb" + std::to_string(i), "v" + std::to_string(i));
  }
  core::BatchWriteResult wr;
  ASSERT_TRUE(c.WriteBatch(entries, &wr).ok());
  EXPECT_EQ(wr.ok_count, 100u);

  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) keys.push_back("wb" + std::to_string(i));
  keys.push_back("absent");
  core::BatchReadResult rr;
  ASSERT_TRUE(c.MultiGet(keys, &rr).ok());
  ASSERT_EQ(rr.size(), 101u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rr.statuses[i].ok()) << keys[i];
    EXPECT_EQ(rr.values[i], "v" + std::to_string(i));
  }
  EXPECT_TRUE(rr.statuses[100].IsNotFound());
}

TEST_F(ServerE2eTest, PipelinedWindowReachesBatchedStorePaths) {
  StartServer(1);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(c.Put("pk" + std::to_string(i), "v").ok());
  }
  const core::KvStoreStats before = store_->Stats();

  // 32 GETs in one pipelined window: the server must coalesce them into
  // far fewer MultiGet calls than frames (one per event-loop pass).
  for (int i = 0; i < 32; ++i) c.QueueGet("pk" + std::to_string(i));
  ASSERT_TRUE(c.Flush().ok());
  for (int i = 0; i < 32; ++i) {
    SyncClient::Response r;
    ASSERT_TRUE(c.ReadResponse(&r).ok());
    EXPECT_EQ(r.code, StatusCode::kOk);
    EXPECT_EQ(r.value, "v");
  }

  const core::KvStoreStats after = store_->Stats();
  const uint64_t batches = after.multiget_batches - before.multiget_batches;
  const uint64_t mg_keys = after.multiget_keys - before.multiget_keys;
  EXPECT_EQ(mg_keys, 32u);
  EXPECT_GE(batches, 1u);
  EXPECT_LT(batches, 32u) << "pipelined GETs must not degrade to per-key "
                             "store calls";
  // Grouping: one shard visit serves many keys.
  const uint64_t groups =
      after.multiget_shard_groups - before.multiget_shard_groups;
  EXPECT_LE(groups, batches * store_->shard_count());

  // Same for a write window.
  const uint64_t wb_before = after.writebatch_batches;
  for (int i = 0; i < 32; ++i) c.QueuePut("wk" + std::to_string(i), "w");
  ASSERT_TRUE(c.Flush().ok());
  for (int i = 0; i < 32; ++i) {
    SyncClient::Response r;
    ASSERT_TRUE(c.ReadResponse(&r).ok());
    EXPECT_EQ(r.code, StatusCode::kOk);
  }
  const core::KvStoreStats last = store_->Stats();
  EXPECT_GE(last.writebatch_entries, 32u);
  EXPECT_LT(last.writebatch_batches - wb_before, 32u)
      << "pipelined PUTs must not degrade to per-entry store calls";
}

TEST_F(ServerE2eTest, InterleavedReadsAndWritesKeepOrder) {
  StartServer(1);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  // PUT x=1, GET x, PUT x=2, GET x, ... pipelined in one window. Each GET
  // must observe the PUT before it (runs are flushed at read/write
  // boundaries).
  std::vector<uint32_t> put_ids, get_ids;
  for (int i = 0; i < 8; ++i) {
    put_ids.push_back(c.QueuePut("x", std::to_string(i)));
    get_ids.push_back(c.QueueGet("x"));
  }
  ASSERT_TRUE(c.Flush().ok());
  for (int i = 0; i < 8; ++i) {
    SyncClient::Response r;
    ASSERT_TRUE(c.ReadResponse(&r).ok());
    EXPECT_EQ(r.request_id, put_ids[i]);
    ASSERT_TRUE(c.ReadResponse(&r).ok());
    EXPECT_EQ(r.request_id, get_ids[i]);
    EXPECT_EQ(r.value, std::to_string(i)) << "GET must see preceding PUT";
  }
}

TEST_F(ServerE2eTest, ValueLargerThanMaxValueBytesIsRefusedPerKey) {
  ServerOptions opts;
  opts.max_value_bytes = 128;
  StartServer(1, opts);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("big", std::string(4096, 'x')).ok());
  ASSERT_TRUE(c.Put("small", "s").ok());
  std::vector<std::string> keys = {"big", "small"};
  core::BatchReadResult rr;
  Status s = c.MultiGet(keys, &rr);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rr.statuses[0].code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(rr.statuses[1].ok());
  EXPECT_EQ(rr.values[1], "s");
}

TEST_F(ServerE2eTest, StatsReportsPerTenantTraffic) {
  StartServer(1);
  SyncClient t1, t2;
  ASSERT_TRUE(t1.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(t2.Connect("127.0.0.1", server_->port()).ok());
  t1.set_tenant(101);
  t2.set_tenant(202);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t1.Put("t1k" + std::to_string(i), "v").ok());
  }
  std::vector<std::string> keys = {"t1k0", "t1k1", "t1k2"};
  core::BatchReadResult rr;
  ASSERT_TRUE(t2.MultiGet(keys, &rr).ok());

  // Pull stats over t2: the STATS frame itself is tenant traffic, so
  // fetching through t1 would bump tenant.101.requests past 10.
  auto stats = t2.StatsMap();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)["tenant.101.write_keys"], 10u);
  EXPECT_EQ((*stats)["tenant.101.requests"], 10u);
  EXPECT_EQ((*stats)["tenant.202.read_keys"], 3u);
  EXPECT_GE((*stats)["server.frames_in"], 11u);
  EXPECT_GE((*stats)["store.writes"], 10u);
}

TEST_F(ServerE2eTest, ConcurrentClientsOverMultipleIoThreads) {
  StartServer(2);
  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 300;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int id = 0; id < kClients; ++id) {
    threads.emplace_back([this, id, &failures] {
      SyncClient c;
      if (!c.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      c.set_tenant(static_cast<uint32_t>(id % 3));
      const std::string prefix = "c" + std::to_string(id) + ":";
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key = prefix + std::to_string(i % 50);
        if (i % 3 == 0) {
          if (!c.Put(key, std::to_string(i)).ok()) failures.fetch_add(1);
        } else {
          auto r = c.Get(key);
          if (!r.ok() && !r.status().IsNotFound()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const ServerCounters counters = server_->counters();
  EXPECT_GE(counters.frames_in, uint64_t{kClients * kOpsPerClient});
  EXPECT_EQ(counters.frames_in, counters.frames_out);
}

TEST_F(ServerE2eTest, GracefulShutdownAndRestart) {
  StartServer(2);
  const uint16_t old_port = server_->port();
  {
    SyncClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", old_port).ok());
    ASSERT_TRUE(c.Put("persist", "1").ok());
  }
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // Stop twice is safe.
  server_->Stop();

  // The same store can be re-fronted by a new server instance.
  ServerOptions opts;
  opts.io_threads = 1;
  Server second(store_.get(), opts);
  ASSERT_TRUE(second.Start().ok());
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", second.port()).ok());
  auto got = c.Get("persist");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "1");
  second.Stop();
}

// -- admission pushback -------------------------------------------------

TEST(AdmissionControllerTest, NoPushbackWithoutStalls) {
  VirtualClock clock;
  AdmissionController ac(&clock, AdmissionOptions());
  core::KvStoreStats stats;
  ac.ObserveStoreStats(stats);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ac.AdmitWrite(1, 64));
  }
  EXPECT_FALSE(ac.in_pushback());
  EXPECT_EQ(ac.rejected(), 0u);
}

TEST(AdmissionControllerTest, StallOpensWindowAndRejectsOverShareTenant) {
  VirtualClock clock;
  AdmissionOptions opts;
  opts.pushback_window_seconds = 1.0;
  opts.min_write_keys = 10;
  AdmissionController ac(&clock, opts);

  // Tenant 1 produces 90% of write traffic; tenant 2 the rest.
  ASSERT_TRUE(ac.AdmitWrite(1, 900));
  ASSERT_TRUE(ac.AdmitWrite(2, 100));

  core::KvStoreStats stats;
  ac.ObserveStoreStats(stats);  // baseline
  stats.write_stalls = 3;       // the store reports stalls
  ac.ObserveStoreStats(stats);
  EXPECT_TRUE(ac.in_pushback());
  EXPECT_EQ(ac.pushback_windows(), 1u);

  // The hog is pushed back; the light tenant keeps writing.
  EXPECT_FALSE(ac.AdmitWrite(1, 10));
  EXPECT_TRUE(ac.AdmitWrite(2, 10));
  EXPECT_GE(ac.rejected(), 1u);

  // The window expires with time; everyone is admitted again.
  clock.AdvanceSeconds(1.5);
  EXPECT_FALSE(ac.in_pushback());
  EXPECT_TRUE(ac.AdmitWrite(1, 10));
}

TEST(AdmissionControllerTest, RepeatedStallsExtendTheWindow) {
  VirtualClock clock;
  AdmissionOptions opts;
  opts.pushback_window_seconds = 1.0;
  AdmissionController ac(&clock, opts);
  core::KvStoreStats stats;
  ac.ObserveStoreStats(stats);
  stats.write_stalls = 1;
  ac.ObserveStoreStats(stats);
  EXPECT_TRUE(ac.in_pushback());
  clock.AdvanceSeconds(0.8);
  stats.write_stalls = 2;
  ac.ObserveStoreStats(stats);  // extends, same window
  EXPECT_EQ(ac.pushback_windows(), 1u);
  clock.AdvanceSeconds(0.8);
  EXPECT_TRUE(ac.in_pushback()) << "window extended past original expiry";
  clock.AdvanceSeconds(0.3);
  EXPECT_FALSE(ac.in_pushback());
  // A stall after expiry opens a new window.
  stats.write_stalls = 3;
  ac.ObserveStoreStats(stats);
  EXPECT_EQ(ac.pushback_windows(), 2u);
}

TEST(AdmissionControllerTest, SingleTenantIsNeverPushedBack) {
  // With one active tenant there is no fairness to arbitrate; pushback
  // would just idle the box.
  VirtualClock clock;
  AdmissionOptions opts;
  opts.min_write_keys = 1;
  AdmissionController ac(&clock, opts);
  ASSERT_TRUE(ac.AdmitWrite(7, 1000));
  core::KvStoreStats stats;
  ac.ObserveStoreStats(stats);
  stats.write_stalls = 5;
  ac.ObserveStoreStats(stats);
  EXPECT_TRUE(ac.in_pushback());
  EXPECT_TRUE(ac.AdmitWrite(7, 1000));
}

TEST(AdmissionControllerTest, SharesDecaySoOldTrafficStopsCounting) {
  VirtualClock clock;
  AdmissionOptions opts;
  opts.pushback_window_seconds = 1.0;
  opts.min_write_keys = 10;
  opts.share_halflife_seconds = 1.0;
  AdmissionController ac(&clock, opts);

  // Tenant 1 was the historical hog; then a long idle stretch passes.
  ASSERT_TRUE(ac.AdmitWrite(1, 10000));
  ASSERT_TRUE(ac.AdmitWrite(2, 100));
  core::KvStoreStats stats;
  ac.ObserveStoreStats(stats);
  clock.AdvanceSeconds(64.0);
  ac.ObserveStoreStats(stats);  // decay tick: old shares wash out

  // Now tenant 2 is the aggressor when a stall opens a window.
  ASSERT_TRUE(ac.AdmitWrite(2, 900));
  ASSERT_TRUE(ac.AdmitWrite(1, 50));
  stats.write_stalls = 1;
  ac.ObserveStoreStats(stats);
  ASSERT_TRUE(ac.in_pushback());
  EXPECT_FALSE(ac.AdmitWrite(2, 10)) << "current aggressor is over share";
  EXPECT_TRUE(ac.AdmitWrite(1, 10))
      << "historical hog decayed back under its share";
}

TEST(AdmissionControllerTest, ShareTrackingIsBoundedUnderIdSpray) {
  VirtualClock clock;
  AdmissionOptions opts;
  opts.max_tracked_tenants = 8;
  opts.min_write_keys = 1;
  opts.pushback_window_seconds = 10.0;
  AdmissionController ac(&clock, opts);

  // One honest tenant plus a client spraying fresh ids.
  ASSERT_TRUE(ac.AdmitWrite(1, 100));
  for (uint32_t id = 1000; id < 2000; ++id) ac.AdmitWrite(id, 10);

  core::KvStoreStats stats;
  ac.ObserveStoreStats(stats);
  stats.write_stalls = 1;
  ac.ObserveStoreStats(stats);
  ASSERT_TRUE(ac.in_pushback());

  // Past the cap the sprayed ids share one overflow bucket — and one fair
  // share — so a fresh sprayed id cannot look like a brand-new tenant.
  EXPECT_FALSE(ac.AdmitWrite(55555, 1));
  EXPECT_TRUE(ac.AdmitWrite(1, 1)) << "honest tenant keeps writing";
}

TEST(TenantRegistryTest, CapsTrackedTenantsAndFoldsOverflow) {
  TenantRegistry reg(4);
  for (uint32_t id = 0; id < 10; ++id) {
    reg.Get(id)->requests.fetch_add(1, std::memory_order_relaxed);
  }
  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 5u);  // 4 tracked + the overflow bucket
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].tenant_id, i);
    EXPECT_EQ(snap[i].requests, 1u);
  }
  EXPECT_EQ(snap[4].tenant_id, kOverflowTenantId);
  EXPECT_EQ(snap[4].requests, 6u);
}

TEST(ServerAdmissionE2eTest, DeleteGoesThroughAdmissionPushback) {
  // Inject a VirtualClock so the pushback window stays open (and the
  // server's own stats poll never fires) for the whole test.
  VirtualClock clock;
  auto store = core::ShardedStore::OfMemory(4);
  ServerOptions opts;
  opts.io_threads = 1;
  Server server(store.get(), opts, &clock);
  ASSERT_TRUE(server.Start().ok());

  AdmissionController& ac = server.admission();
  // Tenant 1 produced 90% of recent write traffic; a stall opens a window.
  ASSERT_TRUE(ac.AdmitWrite(1, 900));
  ASSERT_TRUE(ac.AdmitWrite(2, 100));
  core::KvStoreStats stats;
  ac.ObserveStoreStats(stats);
  stats.write_stalls = 1;
  ac.ObserveStoreStats(stats);
  ASSERT_TRUE(ac.in_pushback());

  SyncClient hog, light;
  ASSERT_TRUE(hog.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(light.Connect("127.0.0.1", server.port()).ok());
  hog.set_tenant(1);
  light.set_tenant(2);
  EXPECT_EQ(hog.Put("k", "v").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(hog.Delete("k").code(), StatusCode::kResourceExhausted)
      << "DELETE hits the write path; pushback must apply to it too";
  ASSERT_TRUE(light.Put("other", "x").ok());
  EXPECT_TRUE(light.Delete("other").ok())
      << "under-share tenant's deletes keep flowing";
  server.Stop();
}

TEST_F(ServerE2eTest, StopClosesPendingHandoffConnections) {
  StartServer(2);
  // A burst of connections stopped immediately: some fds may still sit in
  // another thread's handoff queue, never adopted. Stop must close every
  // accepted fd regardless.
  std::vector<std::unique_ptr<SyncClient>> clients;
  for (int i = 0; i < 16; ++i) {
    auto c = std::make_unique<SyncClient>();
    ASSERT_TRUE(c->Connect("127.0.0.1", server_->port()).ok());
    clients.push_back(std::move(c));
  }
  server_->Stop();
  const ServerCounters counters = server_->counters();
  EXPECT_EQ(counters.connections_accepted, counters.connections_closed);
}

TEST_F(ServerE2eTest, HealthReportsAllShardsHealthy) {
  StartServer(1);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("k", "v").ok());

  SyncClient::HealthReport hr;
  ASSERT_TRUE(c.Health(&hr).ok());
  EXPECT_FALSE(hr.degraded);
  EXPECT_EQ(hr.retry_after_millis, 0u);
  ASSERT_EQ(hr.shards.size(), 4u);  // StartServer builds a 4-shard store
  for (auto s : hr.shards) EXPECT_EQ(s, core::HealthStatus::kHealthy);
  EXPECT_EQ(hr.deadline_expired, 0u);
  EXPECT_EQ(hr.watchdog_kills, 0u);
  EXPECT_EQ(hr.degraded_write_rejects, 0u);
}

TEST_F(ServerE2eTest, GenerousDeadlineRoundTripsOnV2Frames) {
  StartServer(1);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  // A deadline far in the future upgrades every data frame to the v2
  // header; the server must decode it and serve the window normally.
  c.set_deadline_micros(60'000'000);
  ASSERT_TRUE(c.Put("alpha", "1").ok());
  auto got = c.Get("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "1");
  std::vector<std::string> keys = {"alpha", "missing"};
  core::BatchReadResult batch;
  ASSERT_TRUE(c.MultiGet(keys, &batch).ok());
  ASSERT_EQ(batch.statuses.size(), 2u);
  EXPECT_TRUE(batch.statuses[0].ok());
  EXPECT_TRUE(batch.statuses[1].IsNotFound());
  EXPECT_EQ(server_->counters().deadline_expired, 0u);
}

TEST_F(ServerE2eTest, TenantRegistrySnapshotIsStable) {
  StartServer(1);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  for (uint32_t t = 0; t < 5; ++t) {
    c.set_tenant(t);
    ASSERT_TRUE(c.Put("k" + std::to_string(t), "v").ok());
  }
  auto snap = server_->tenants().Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (uint32_t t = 0; t < 5; ++t) {
    EXPECT_EQ(snap[t].tenant_id, t);  // ordered by tenant id
    EXPECT_EQ(snap[t].requests, 1u);
    EXPECT_EQ(snap[t].write_keys, 1u);
    EXPECT_GT(snap[t].bytes_in, 0u);
    EXPECT_GT(snap[t].bytes_out, 0u);
  }
}

}  // namespace
}  // namespace costperf::server
