#include "masstree/masstree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>

#include "common/random.h"

namespace costperf::masstree {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}
std::string Val(uint64_t i) { return "value-" + std::to_string(i); }

TEST(MassTreeTest, PutGetSingle) {
  MassTree t;
  ASSERT_TRUE(t.Put("a", "1").ok());
  auto r = t.Get("a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "1");
  EXPECT_EQ(t.size(), 1u);
}

TEST(MassTreeTest, GetMissing) {
  MassTree t;
  EXPECT_TRUE(t.Get("x").status().IsNotFound());
}

TEST(MassTreeTest, Overwrite) {
  MassTree t;
  ASSERT_TRUE(t.Put("k", "v1").ok());
  ASSERT_TRUE(t.Put("k", "v2").ok());
  EXPECT_EQ(*t.Get("k"), "v2");
  EXPECT_EQ(t.size(), 1u);
}

TEST(MassTreeTest, DeleteRemoves) {
  MassTree t;
  ASSERT_TRUE(t.Put("k", "v").ok());
  ASSERT_TRUE(t.Delete("k").ok());
  EXPECT_TRUE(t.Get("k").status().IsNotFound());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.Delete("k").IsNotFound());
}

TEST(MassTreeTest, EmptyKeyWorks) {
  MassTree t;
  ASSERT_TRUE(t.Put("", "empty").ok());
  EXPECT_EQ(*t.Get(""), "empty");
}

TEST(MassTreeTest, ShortKeysOfEveryLength) {
  MassTree t;
  // Keys 0..8 bytes long sharing prefixes: exercises (slice, len) pairs.
  std::vector<std::string> keys;
  std::string k;
  for (int len = 0; len <= 8; ++len) {
    keys.push_back(k);
    ASSERT_TRUE(t.Put(k, "len" + std::to_string(len)).ok());
    k.push_back('a');
  }
  for (int len = 0; len <= 8; ++len) {
    auto r = t.Get(keys[len]);
    ASSERT_TRUE(r.ok()) << "len=" << len;
    EXPECT_EQ(*r, "len" + std::to_string(len));
  }
}

TEST(MassTreeTest, LongKeysCreateLayers) {
  MassTree t;
  // Shared 8-byte prefix forces a sublayer.
  ASSERT_TRUE(t.Put("prefix00suffixA", "A").ok());
  ASSERT_TRUE(t.Put("prefix00suffixB", "B").ok());
  ASSERT_TRUE(t.Put("prefix00", "exact8").ok());
  EXPECT_EQ(*t.Get("prefix00suffixA"), "A");
  EXPECT_EQ(*t.Get("prefix00suffixB"), "B");
  EXPECT_EQ(*t.Get("prefix00"), "exact8");
  EXPECT_GE(t.stats().layers_created, 2u);
}

TEST(MassTreeTest, VeryLongKeysMultipleLayers) {
  MassTree t;
  std::string base(50, 'p');  // 7 layers deep
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.Put(base + std::to_string(i), Val(i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*t.Get(base + std::to_string(i)), Val(i));
  }
  EXPECT_GE(t.stats().layers_created, 7u);
}

TEST(MassTreeTest, BinaryKeysWithNulBytes) {
  MassTree t;
  std::string k1("a\0b", 3), k2("a\0c", 3), k3("a", 1);
  ASSERT_TRUE(t.Put(k1, "1").ok());
  ASSERT_TRUE(t.Put(k2, "2").ok());
  ASSERT_TRUE(t.Put(k3, "3").ok());
  EXPECT_EQ(*t.Get(k1), "1");
  EXPECT_EQ(*t.Get(k2), "2");
  EXPECT_EQ(*t.Get(k3), "3");
}

TEST(MassTreeTest, ZeroPaddingDisambiguation) {
  MassTree t;
  // "ab" and "ab\0" produce the same slice but different lengths.
  std::string a("ab", 2), b("ab\0", 3), c("ab\0\0", 4);
  ASSERT_TRUE(t.Put(a, "2").ok());
  ASSERT_TRUE(t.Put(b, "3").ok());
  ASSERT_TRUE(t.Put(c, "4").ok());
  EXPECT_EQ(*t.Get(a), "2");
  EXPECT_EQ(*t.Get(b), "3");
  EXPECT_EQ(*t.Get(c), "4");
  ASSERT_TRUE(t.Delete(b).ok());
  EXPECT_TRUE(t.Get(b).status().IsNotFound());
  EXPECT_EQ(*t.Get(a), "2");
  EXPECT_EQ(*t.Get(c), "4");
}

TEST(MassTreeTest, ManyKeysSplitNodes) {
  MassTree t;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.Put(Key(i), Val(i)).ok());
  }
  EXPECT_GT(t.stats().border_splits, 10u);
  EXPECT_GT(t.stats().interior_splits, 0u);
  for (int i = 0; i < 10000; ++i) {
    auto r = t.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(*r, Val(i));
  }
}

TEST(MassTreeTest, EquivalenceWithStdMap) {
  MassTree t;
  std::map<std::string, std::string> model;
  Random rng(4711);
  for (int op = 0; op < 30000; ++op) {
    // Mixed-length keys to exercise layers.
    uint64_t k = rng.Uniform(2000);
    std::string key = rng.Bernoulli(0.5)
                          ? Key(k)
                          : "k" + std::to_string(k % 97);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string val = Val(rng.Next() % 100000);
      ASSERT_TRUE(t.Put(key, val).ok());
      model[key] = val;
    } else if (dice < 0.7) {
      Status s = t.Delete(key);
      if (model.erase(key)) {
        EXPECT_TRUE(s.ok());
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {
      auto r = t.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(r.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(r.ok()) << key;
        EXPECT_EQ(*r, it->second);
      }
    }
  }
  EXPECT_EQ(t.size(), model.size());
  for (auto& [k, v] : model) {
    auto r = t.Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, v);
  }
}

TEST(MassTreeTest, ScanOrderedFullRange) {
  MassTree t;
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(t.Put(Key(i), Val(i)).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(t.Scan("", 10000, &out).ok());
  ASSERT_EQ(out.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(out[i].first, Key(i));
    EXPECT_EQ(out[i].second, Val(i));
  }
}

TEST(MassTreeTest, ScanFromMiddleWithLimit) {
  MassTree t;
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(t.Put(Key(i), Val(i)).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(t.Scan(Key(100), 25, &out).ok());
  ASSERT_EQ(out.size(), 25u);
  EXPECT_EQ(out.front().first, Key(100));
  EXPECT_EQ(out.back().first, Key(124));
}

TEST(MassTreeTest, ScanWithEndBound) {
  MassTree t;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(t.Put(Key(i), Val(i)).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(t.Scan(Key(10), 1000, &out, Key(15)).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.back().first, Key(14));
}

TEST(MassTreeTest, ScanAcrossLayers) {
  MassTree t;
  // Mix of short and long keys interleaved lexicographically.
  std::vector<std::string> keys = {"aa",          "aabbccdd",
                                   "aabbccddee",  "aabbccddeeff",
                                   "aabbccde",    "ab",
                                   "b"};
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(t.Put(keys[i], std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(t.Scan("", 100, &out).ok());
  ASSERT_EQ(out.size(), keys.size());
  std::vector<std::string> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(out[i].first, sorted[i]) << i;
  }
}

TEST(MassTreeTest, MemoryFootprintGrowsWithData) {
  MassTree t;
  uint64_t empty = t.MemoryFootprintBytes();
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(t.Put(Key(i), Val(i)).ok());
  uint64_t loaded = t.MemoryFootprintBytes();
  EXPECT_GT(loaded, empty + 1000 * 10);
}

TEST(MassTreeTest, ConcurrentReadersWithWriter) {
  MassTree t;
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(t.Put(Key(i), Val(i)).ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Random rng(100 + r);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t k = rng.Uniform(2000);
        auto res = t.Get(Key(k));
        if (!res.ok()) errors++;
      }
    });
  }
  Random rng(55);
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.Uniform(2000);
    ASSERT_TRUE(t.Put(Key(k), Val(rng.Next() % 1000)).ok());
    if (i % 1000 == 0) t.ReclaimMemory();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(errors.load(), 0u);
}

TEST(MassTreeTest, ConcurrentWritersDisjointRanges) {
  MassTree t;
  constexpr int kThreads = 4, kPer = 3000;
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (int i = 0; i < kPer; ++i) {
        uint64_t k = static_cast<uint64_t>(ti) * kPer + i;
        ASSERT_TRUE(t.Put(Key(k), Val(k)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size(), uint64_t{kThreads} * kPer);
  for (uint64_t k = 0; k < uint64_t{kThreads} * kPer; ++k) {
    ASSERT_EQ(*t.Get(Key(k)), Val(k)) << k;
  }
}

}  // namespace
}  // namespace costperf::masstree
