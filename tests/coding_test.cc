#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace costperf {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  PutFixed32(&s, 0xDEADBEEFu);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xDEADBEEFu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  PutFixed64(&s, 0x0123456789ABCDEFull);
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(DecodeFixed64(s.data()), 0x0123456789ABCDEFull);
}

TEST(CodingTest, VarintBoundaries) {
  for (uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xFFFFFFFFull,
        0xFFFFFFFFFFFFFFFFull}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
    uint64_t out = 0;
    const char* p = GetVarint64(s.data(), s.data() + s.size(), &out);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(out, v);
    EXPECT_EQ(p, s.data() + s.size());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string s;
  PutVarint64(&s, 0x1FFFFFFFFull);  // > UINT32_MAX
  uint32_t out;
  EXPECT_EQ(GetVarint32(s.data(), s.data() + s.size(), &out), nullptr);
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint64(&s, 1ull << 40);
  uint64_t out;
  EXPECT_EQ(GetVarint64(s.data(), s.data() + s.size() - 1, &out), nullptr);
}

TEST(CodingTest, VarintFuzzRoundTrip) {
  Random rng(99);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    std::string s;
    PutVarint64(&s, v);
    uint64_t out = 0;
    ASSERT_NE(GetVarint64(s.data(), s.data() + s.size(), &out), nullptr);
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("payload"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("tail"));
  Slice a, b, c;
  const char* p = s.data();
  const char* limit = s.data() + s.size();
  p = GetLengthPrefixedSlice(p, limit, &a);
  ASSERT_NE(p, nullptr);
  p = GetLengthPrefixedSlice(p, limit, &b);
  ASSERT_NE(p, nullptr);
  p = GetLengthPrefixedSlice(p, limit, &c);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.ToString(), "payload");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), "tail");
  EXPECT_EQ(p, limit);
}

TEST(CodingTest, LengthPrefixedSliceTruncatedBodyFails) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("0123456789"));
  Slice out;
  EXPECT_EQ(GetLengthPrefixedSlice(s.data(), s.data() + 5, &out), nullptr);
}

}  // namespace
}  // namespace costperf
