#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "costmodel/advisor.h"
#include "costmodel/five_minute_rule.h"
#include "costmodel/masstree_compare.h"
#include "costmodel/mixed_workload.h"
#include "costmodel/operation_cost.h"

namespace costperf::costmodel {
namespace {

// Property tests: the cost model's algebraic invariants must hold for
// arbitrary (sane) parameterizations, not just the paper's constants.

CostParams RandomParams(Random* rng) {
  CostParams p;
  p.dram_cost_per_byte = 1e-9 * (1 + rng->Uniform(20));        // $1-20/GB
  p.flash_cost_per_byte = p.dram_cost_per_byte /
                          (5.0 + rng->Uniform(20));            // 5-25x cheaper
  p.processor_cost = 50.0 + rng->Uniform(1000);
  p.ssd_io_capability_cost = 5.0 + rng->Uniform(300);
  p.rops = 1e5 * (1 + rng->Uniform(100));
  p.iops = 1e4 * (1 + rng->Uniform(100));
  p.r = 1.5 + rng->NextDouble() * 15;
  p.page_size_bytes = 256.0 * (1 + rng->Uniform(64));
  return p;
}

class RandomParamsTest : public ::testing::TestWithParam<int> {
 protected:
  RandomParamsTest() : rng_(GetParam() * 2654435761u), p_(RandomParams(&rng_)) {}
  Random rng_;
  CostParams p_;
};

TEST_P(RandomParamsTest, BreakevenEquatesMmAndSsCosts) {
  double n_star = BreakevenOpsPerSec(p_);
  ASSERT_GT(n_star, 0);
  double mm = MmCost(n_star, p_).total();
  double ss = SsCost(n_star, p_).total();
  EXPECT_NEAR(mm, ss, std::abs(mm) * 1e-9);
}

TEST_P(RandomParamsTest, RegimesArePartitioned) {
  // Below breakeven SS is cheaper, above MM is cheaper — always, because
  // both costs are affine in N and cross exactly once.
  double n_star = BreakevenOpsPerSec(p_);
  for (double m : {0.01, 0.25, 0.9}) {
    EXPECT_GT(MmCost(n_star * m, p_).total(), SsCost(n_star * m, p_).total());
  }
  for (double m : {1.1, 4.0, 100.0}) {
    EXPECT_LT(MmCost(n_star * m, p_).total(), SsCost(n_star * m, p_).total());
  }
}

TEST_P(RandomParamsTest, ClassicRuleNeverExceedsUpdatedRule) {
  // The CPU-path term can only extend the breakeven interval (R > 1).
  EXPECT_LE(ClassicBreakevenIntervalSeconds(p_),
            BreakevenIntervalSeconds(p_) * (1 + 1e-12));
}

TEST_P(RandomParamsTest, BreakevenScalesInverselyWithPageSize) {
  CostParams doubled = p_;
  doubled.page_size_bytes *= 2;
  EXPECT_NEAR(BreakevenIntervalSeconds(doubled) * 2,
              BreakevenIntervalSeconds(p_),
              BreakevenIntervalSeconds(p_) * 1e-9);
}

TEST_P(RandomParamsTest, MixedModelInverses) {
  for (double f : {0.0, 0.3, 0.9, 1.0}) {
    double pf = MixedThroughput(p_.rops, f, p_.r);
    EXPECT_NEAR(MixedExecTimePerOp(p_.rops, f, p_.r) * pf, 1.0, 1e-9);
    if (f > 0) {
      EXPECT_NEAR(DeriveR(p_.rops, pf, f), p_.r, p_.r * 1e-9);
    }
  }
}

TEST_P(RandomParamsTest, AdvisorTierIsAlwaysArgmin) {
  CompressionParams c;
  c.compression_ratio = 0.2 + rng_.NextDouble() * 0.7;
  c.decompress_r = rng_.NextDouble() * 8;
  CostAdvisor advisor(p_, c);
  for (double n = 1e-8; n < 1e8; n *= 13) {
    Advice a = advisor.AdviseForRate(n);
    double best = std::min({a.mm_cost, a.ss_cost, *a.css_cost});
    double chosen = a.tier == Tier::kMainMemory          ? a.mm_cost
                    : a.tier == Tier::kSecondaryStorage ? a.ss_cost
                                                        : *a.css_cost;
    EXPECT_DOUBLE_EQ(chosen, best) << "rate " << n;
  }
}

TEST_P(RandomParamsTest, CssRegimeIsContiguous) {
  CompressionParams c;
  c.compression_ratio = 0.2 + rng_.NextDouble() * 0.6;
  c.decompress_r = 0.5 + rng_.NextDouble() * 6;
  // Tier order can only move CSS -> SS -> MM as the rate grows (each cost
  // is affine in N with slopes ordered MM < SS < CSS and intercepts
  // ordered CSS < SS < MM).
  int rank_prev = -1;
  for (double n = 1e-9; n < 1e9; n *= 2) {
    Tier t = CheapestTier(n, p_, c);
    int rank = t == Tier::kCompressedSecondary ? 0
               : t == Tier::kSecondaryStorage ? 1
                                              : 2;
    EXPECT_GE(rank, rank_prev) << "tier order regressed at N=" << n;
    rank_prev = std::max(rank_prev, rank);
  }
}

TEST_P(RandomParamsTest, MassTreeCrossoverEquatesCosts) {
  SystemComparison sys;
  sys.px = 1.2 + rng_.NextDouble() * 4;
  sys.mx = 1.1 + rng_.NextDouble() * 4;
  sys.database_bytes = 1e8 * (1 + rng_.Uniform(1000));
  double t = CrossoverIntervalSeconds(sys, p_);
  ASSERT_GT(t, 0);
  double bw = BwTreeCostPerOp(t, sys, p_);
  double mt = MassTreeCostPerOp(t, sys, p_);
  EXPECT_NEAR(bw, mt, bw * 1e-9);
}

TEST_P(RandomParamsTest, RecordBreakevenScalesWithRecordsPerPage) {
  double page_t = BreakevenIntervalSeconds(p_);
  for (int rpp : {2, 7, 32}) {
    double rec_t =
        RecordBreakevenIntervalSeconds(p_, p_.page_size_bytes / rpp);
    EXPECT_NEAR(rec_t, page_t * rpp, page_t * rpp * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomParamsTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace costperf::costmodel
