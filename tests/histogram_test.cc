#include "common/histogram.h"

#include <gtest/gtest.h>

namespace costperf {
namespace {

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.mean(), 42);
  EXPECT_NEAR(h.Median(), 42, 42 * 0.5);
}

TEST(HistogramTest, MeanAndStddevExact) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.stddev(), 2.0, 1e-9);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(i);
  double p50 = h.Percentile(50), p90 = h.Percentile(90),
         p99 = h.Percentile(99);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  // Log-bucketing gives bounded relative error.
  EXPECT_NEAR(p50, 5000, 5000 * 0.6);
  EXPECT_NEAR(p99, 9900, 9900 * 0.6);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Add(1.0);
  for (int i = 0; i < 100; ++i) b.Add(1000.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 1000.0);
  EXPECT_NEAR(a.mean(), 500.5, 1e-9);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
}

TEST(HistogramTest, ToStringContainsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

}  // namespace
}  // namespace costperf
