#include "costmodel/advisor.h"

#include <gtest/gtest.h>

#include "costmodel/five_minute_rule.h"

namespace costperf::costmodel {
namespace {

TEST(AdvisorTest, BreakevenMatchesRule) {
  CostAdvisor advisor(CostParams::PaperDefaults());
  EXPECT_DOUBLE_EQ(
      advisor.breakeven_interval_seconds(),
      BreakevenIntervalSeconds(CostParams::PaperDefaults()));
}

TEST(AdvisorTest, HotPageGoesToMainMemory) {
  CostAdvisor advisor(CostParams::PaperDefaults());
  Advice a = advisor.AdviseForRate(1000.0);
  EXPECT_EQ(a.tier, Tier::kMainMemory);
  EXPECT_LT(a.mm_cost, a.ss_cost);
  EXPECT_FALSE(a.css_cost.has_value());
}

TEST(AdvisorTest, ColdPageGoesToFlash) {
  CostAdvisor advisor(CostParams::PaperDefaults());
  Advice a = advisor.AdviseForInterval(3600.0);  // touched hourly
  EXPECT_EQ(a.tier, Tier::kSecondaryStorage);
  EXPECT_LT(a.ss_cost, a.mm_cost);
}

TEST(AdvisorTest, NeverAccessedGoesToCheapestStorage) {
  CostAdvisor advisor(CostParams::PaperDefaults());
  Advice a = advisor.AdviseForInterval(0.0);  // interval 0 => "max rate"
  EXPECT_EQ(a.tier, Tier::kMainMemory);
}

TEST(AdvisorTest, ShouldEvictPastBreakeven) {
  CostAdvisor advisor(CostParams::PaperDefaults());
  double t_i = advisor.breakeven_interval_seconds();
  EXPECT_FALSE(advisor.ShouldEvict(t_i * 0.5));
  EXPECT_TRUE(advisor.ShouldEvict(t_i * 1.5));
}

TEST(AdvisorTest, CompressionAddsThirdTier) {
  CostAdvisor advisor(CostParams::PaperDefaults(), CompressionParams{});
  Advice cold = advisor.AdviseForInterval(1e6);
  ASSERT_TRUE(cold.css_cost.has_value());
  EXPECT_EQ(cold.tier, Tier::kCompressedSecondary);
  Advice hot = advisor.AdviseForRate(10000.0);
  EXPECT_EQ(hot.tier, Tier::kMainMemory);
}

TEST(AdvisorTest, SavingsNonNegative) {
  CostAdvisor advisor(CostParams::PaperDefaults(), CompressionParams{});
  for (double rate : {1e-6, 1e-3, 1.0, 1e3, 1e6}) {
    EXPECT_GE(advisor.AdviseForRate(rate).savings_vs_worst, 0.0);
  }
}

TEST(AdvisorTest, DescribeRegimesMentionsBreakeven) {
  CostAdvisor plain(CostParams::PaperDefaults());
  EXPECT_NE(plain.DescribeRegimes().find("T_i"), std::string::npos);
  CostAdvisor with_css(CostParams::PaperDefaults(), CompressionParams{});
  EXPECT_NE(with_css.DescribeRegimes().find("CSS"), std::string::npos);
}

// Property sweep: the advisor's tier choice must always be the argmin of
// the reported per-tier costs.
class AdvisorSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(AdvisorSweepTest, TierIsArgminOfReportedCosts) {
  CostAdvisor advisor(CostParams::PaperDefaults(), CompressionParams{});
  Advice a = advisor.AdviseForRate(GetParam());
  double best = std::min({a.mm_cost, a.ss_cost, *a.css_cost});
  double chosen = a.tier == Tier::kMainMemory ? a.mm_cost
                  : a.tier == Tier::kSecondaryStorage ? a.ss_cost
                                                      : *a.css_cost;
  EXPECT_DOUBLE_EQ(chosen, best);
}

INSTANTIATE_TEST_SUITE_P(Rates, AdvisorSweepTest,
                         ::testing::Values(1e-9, 1e-6, 1e-4, 1e-2, 0.022,
                                           1.0, 10.0, 1e3, 1e6, 1e9));

}  // namespace
}  // namespace costperf::costmodel
