// Multithreaded stress for the lock-free hot paths added with the
// sharded CLOCK cache: concurrent Touch/Insert/Erase/Contains against
// one CacheManager, touches racing table growth, eviction sweeps racing
// readers, and an epoch retire/reclaim hammer. These tests assert
// end-state consistency; their real value is running clean under
// -DCOSTPERF_SANITIZE=thread, which checks the memory-ordering contract
// (payload-before-pid publication, acquire probes, relaxed recency).

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch.h"
#include "llama/cache_manager.h"

namespace costperf::llama {
namespace {

TEST(CacheConcurrencyTest, TouchContainsRaceInsertErase) {
  CacheOptions opts;
  opts.memory_budget_bytes = ~0ull;
  CacheManager cm(opts);

  constexpr uint64_t kPids = 512;
  constexpr int kReaders = 3;
  constexpr int kRounds = 20'000;
  for (uint64_t pid = 0; pid < kPids; pid += 2) cm.Insert(pid, 64);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Readers: lock-free Touch/Contains/IdleSeconds over the full pid
  // range, half of which is being inserted/erased under their feet.
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&cm, &stop, t] {
      uint64_t pid = static_cast<uint64_t>(t) * 17;
      while (!stop.load(std::memory_order_relaxed)) {
        pid = (pid + 13) % kPids;
        cm.Touch(pid);
        cm.Contains(pid);
        cm.IdleSeconds(pid);
      }
    });
  }
  // Writer: churns the odd half of the pid space through insert/resize/
  // erase so readers race slot claiming and tombstoning.
  threads.emplace_back([&cm] {
    for (int round = 0; round < kRounds; ++round) {
      uint64_t pid = 1 + 2 * (static_cast<uint64_t>(round) % (kPids / 2));
      cm.Insert(pid, 64);
      cm.Resize(pid, 128);
      cm.Erase(pid);
    }
  });
  threads.back().join();
  threads.pop_back();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();

  // The even half was never erased; the odd half always ends erased.
  for (uint64_t pid = 0; pid < kPids; pid += 2) EXPECT_TRUE(cm.Contains(pid));
  for (uint64_t pid = 1; pid < kPids; pid += 2) EXPECT_FALSE(cm.Contains(pid));
  auto s = cm.stats();
  EXPECT_EQ(s.resident_pages, kPids / 2);
  EXPECT_EQ(s.resident_bytes, (kPids / 2) * 64);
  EXPECT_GT(s.touches, 0u);
}

TEST(CacheConcurrencyTest, TouchRacesTableGrowth) {
  CacheOptions opts;
  opts.memory_budget_bytes = ~0ull;
  opts.shards = 1;  // all inserts hit one shard: maximum growth pressure
  CacheManager cm(opts);
  cm.Insert(0, 8);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&cm, &stop] {
      // Probes keep landing while the writer doubles the slot table;
      // stale-table probes must stay safe (retired tables are kept).
      uint64_t pid = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        cm.Touch(pid);
        cm.Contains(pid + 1);
        pid = (pid + 1) % 4096;
      }
    });
  }
  for (uint64_t pid = 1; pid < 4096; ++pid) cm.Insert(pid, 8);
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  for (uint64_t pid = 0; pid < 4096; ++pid) {
    ASSERT_TRUE(cm.Contains(pid)) << pid;
  }
  EXPECT_EQ(cm.stats().resident_pages, 4096u);
}

TEST(CacheConcurrencyTest, EvictionSweepRacesReaders) {
  CacheOptions opts;
  opts.memory_budget_bytes = 64 * 100;  // room for ~100 of 400 pages
  opts.policy = EvictionPolicy::kSecondChance;
  CacheManager cm(opts);

  constexpr uint64_t kPids = 400;
  for (uint64_t pid = 0; pid < kPids; ++pid) cm.Insert(pid, 64);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&cm, &stop] {
      uint64_t pid = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        cm.Touch(pid);
        pid = (pid + 7) % kPids;
      }
    });
  }
  // The evictor loop mirrors EnforceBudget: pick victims under the shard
  // latches, erase them while readers keep touching the same pids.
  int sweeps = 0;
  while (cm.OverBudget() && sweeps < 64) {
    uint64_t over = cm.resident_bytes() - 64 * 100;
    for (mapping::PageId pid : cm.PickVictims(over)) cm.Erase(pid);
    ++sweeps;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_FALSE(cm.OverBudget());
  // Accounting stayed consistent through the races.
  uint64_t bytes = 0;
  for (const auto& [pid, sz] : cm.ResidentEntries()) bytes += sz;
  EXPECT_EQ(bytes, cm.resident_bytes());
  EXPECT_EQ(cm.stats().resident_bytes, cm.resident_bytes());
}

TEST(CacheConcurrencyTest, SampledTouchesCountAndStaySafe) {
  CacheOptions opts;
  opts.memory_budget_bytes = ~0ull;
  opts.touch_sample = 8;
  CacheManager cm(opts);
  for (uint64_t pid = 0; pid < 64; ++pid) cm.Insert(pid, 16);

  constexpr int kThreads = 4;
  constexpr int kTouchesPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cm] {
      for (int i = 0; i < kTouchesPerThread; ++i) {
        cm.Touch(static_cast<uint64_t>(i) % 64);
      }
    });
  }
  for (auto& th : threads) th.join();

  auto s = cm.stats();
  EXPECT_EQ(s.touches, static_cast<uint64_t>(kThreads) * kTouchesPerThread);
  // Roughly 7 of 8 touches take the counted fast path (thread-phase
  // offsets make it inexact across joins, never more than 1-in-8 full).
  EXPECT_GE(s.touches_sampled, s.touches / 2);
  EXPECT_LT(s.touches_sampled, s.touches);
}

TEST(EpochConcurrencyTest, RetireReclaimHammer) {
  EpochManager epochs;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::atomic<uint64_t> freed{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&epochs, &freed] {
      for (int i = 0; i < kPerThread; ++i) {
        epochs.Enter();
        int* obj = new int(i);
        epochs.Retire([obj, &freed] {
          delete obj;
          freed.fetch_add(1, std::memory_order_relaxed);
        });
        epochs.Exit();
        if ((i & 255) == 0) epochs.TryReclaim();
      }
    });
  }
  for (auto& th : threads) th.join();

  epochs.ReclaimAll();
  EXPECT_EQ(freed.load(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(epochs.retired_count(), 0u);
  EXPECT_GT(epochs.reclaim_batches(), 0u);
  EXPECT_EQ(epochs.reclaimed_items(), freed.load());
}

TEST(EpochConcurrencyTest, GuardedReadersNeverSeeFreedObject) {
  EpochManager epochs;
  struct Boxed {
    std::atomic<uint64_t> value{0};
  };
  std::atomic<Boxed*> current{new Boxed()};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&epochs, &current, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        epochs.Enter();
        Boxed* b = current.load(std::memory_order_acquire);
        // Under TSan/ASan this dereference is the assertion: the writer
        // retires swapped-out boxes, and the epoch must keep them alive
        // while we hold the guard.
        b->value.load(std::memory_order_relaxed);
        epochs.Exit();
      }
    });
  }
  for (int round = 0; round < 5000; ++round) {
    auto* fresh = new Boxed();
    fresh->value.store(static_cast<uint64_t>(round),
                       std::memory_order_relaxed);
    Boxed* old = current.exchange(fresh, std::memory_order_acq_rel);
    epochs.Retire([old] { delete old; });
    if ((round & 63) == 0) epochs.TryReclaim();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  epochs.ReclaimAll();
  delete current.load();
  EXPECT_EQ(epochs.retired_count(), 0u);
}

}  // namespace
}  // namespace costperf::llama
