#include "common/clock.h"

#include <gtest/gtest.h>

namespace costperf {
namespace {

TEST(ClockTest, RealClockMonotonic) {
  RealClock clock;
  uint64_t a = clock.NowNanos();
  uint64_t b = clock.NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, VirtualClockStartsAtOrigin) {
  VirtualClock c(123);
  EXPECT_EQ(c.NowNanos(), 123u);
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock c;
  c.AdvanceNanos(1000);
  EXPECT_EQ(c.NowNanos(), 1000u);
  c.AdvanceSeconds(2.0);
  EXPECT_EQ(c.NowNanos(), 1000u + 2'000'000'000u);
  c.SetNanos(5);
  EXPECT_EQ(c.NowNanos(), 5u);
}

TEST(ClockTest, ThreadCpuTimeGrowsUnderWork) {
  uint64_t start = ThreadCpuNanos();
  volatile uint64_t x = 1;
  for (int i = 0; i < 2'000'000; ++i) x = x * 6364136223846793005ull + 1;
  uint64_t end = ThreadCpuNanos();
  EXPECT_GT(end, start);
}

TEST(ClockTest, ScopedTimerAccumulates) {
  VirtualClock c;
  uint64_t total = 0;
  {
    ScopedTimer t(&c, &total);
    c.AdvanceNanos(500);
  }
  EXPECT_EQ(total, 500u);
  {
    ScopedTimer t(&c, &total);
    c.AdvanceNanos(250);
  }
  EXPECT_EQ(total, 750u);
}

}  // namespace
}  // namespace costperf
