#include "storage/rate_limiter.h"

#include <gtest/gtest.h>

namespace costperf::storage {
namespace {

TEST(RateLimiterTest, UnlimitedNeverWaits) {
  VirtualClock clock;
  RateLimiter rl(&clock, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rl.Acquire(), 0u);
}

TEST(RateLimiterTest, BurstAdmitsImmediately) {
  VirtualClock clock(1'000'000'000);
  RateLimiter rl(&clock, 1000, /*burst=*/8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rl.Acquire(), 0u) << i;
  EXPECT_GT(rl.Acquire(), 0u);
}

TEST(RateLimiterTest, SteadyStateMatchesRate) {
  VirtualClock clock(1'000'000'000);
  RateLimiter rl(&clock, 1000, /*burst=*/1);  // 1ms per token
  uint64_t total_wait = 0;
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) total_wait += rl.Acquire();
  // kN tokens at 1ms apart from a single instant: waits sum to ~kN^2/2 ms.
  double expected = 0.5 * kN * kN * 1e6;
  EXPECT_NEAR(static_cast<double>(total_wait), expected, expected * 0.05);
}

TEST(RateLimiterTest, AdvancingTimeRefillsTokens) {
  VirtualClock clock(1'000'000'000);
  RateLimiter rl(&clock, 1000, 4);
  for (int i = 0; i < 4; ++i) rl.Acquire();
  EXPECT_GT(rl.Acquire(), 0u);
  clock.AdvanceSeconds(1.0);
  EXPECT_EQ(rl.Acquire(), 0u);
}

TEST(RateLimiterTest, TryAcquireRespectsBudget) {
  VirtualClock clock(1'000'000'000);
  RateLimiter rl(&clock, 100, 2);
  EXPECT_TRUE(rl.TryAcquire());
  EXPECT_TRUE(rl.TryAcquire());
  int extra = 0;
  for (int i = 0; i < 10; ++i) extra += rl.TryAcquire() ? 1 : 0;
  EXPECT_LE(extra, 1);
  clock.AdvanceSeconds(0.05);  // 5 tokens refill
  EXPECT_TRUE(rl.TryAcquire());
}

TEST(RateLimiterTest, SetRateTakesEffect) {
  VirtualClock clock(1'000'000'000);
  RateLimiter rl(&clock, 10, 1);
  rl.Acquire();
  rl.set_rate_per_sec(1e9);
  // Nearly free tokens now.
  uint64_t w = 0;
  for (int i = 0; i < 100; ++i) w += rl.Acquire();
  EXPECT_LT(w, 1'000'000u);
}

}  // namespace
}  // namespace costperf::storage
