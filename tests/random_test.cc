#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace costperf {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
    uint64_t v = r.UniformRange(100, 200);
    EXPECT_GE(v, 100u);
    EXPECT_LT(v, 200u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(11);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) is 0.5; allow generous slack.
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Random r(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(RandomTest, FillWritesEveryByteLength) {
  Random r(17);
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 64u, 100u}) {
    std::vector<char> buf(len + 8, '\x7f');
    r.Fill(buf.data(), len);
    // Guard bytes untouched.
    for (size_t i = len; i < buf.size(); ++i) EXPECT_EQ(buf[i], '\x7f');
  }
}

TEST(ZipfianTest, ProducesValuesInRange) {
  ZipfianGenerator z(1000, 0.99, 5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 1000u);
}

TEST(ZipfianTest, RankZeroIsHottest) {
  ZipfianGenerator z(10000, 0.99, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) counts[z.Next()]++;
  // Item 0 must be the most frequent, and dramatically more frequent than
  // a mid-range item.
  int max_count = 0;
  uint64_t max_item = 0;
  for (auto& [item, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_item = item;
    }
  }
  EXPECT_EQ(max_item, 0u);
  EXPECT_GT(counts[0], 20 * (counts.count(5000) ? counts[5000] : 1));
}

TEST(ZipfianTest, SkewConcentratesMass) {
  ZipfianGenerator z(100000, 0.99, 9);
  int in_top_1pct = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (z.Next() < 1000) ++in_top_1pct;
  }
  // YCSB zipfian 0.99: top 1% of items draw well over a third of accesses.
  EXPECT_GT(in_top_1pct, n / 3);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator z(100000, 0.99, 21);
  // The single hottest key should NOT be key 0 with overwhelming
  // probability (it is Hash64(0) % n).
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.Next()]++;
  uint64_t expected_hot = Hash64(0) % 100000;
  int max_count = 0;
  uint64_t max_item = 0;
  for (auto& [item, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_item = item;
    }
  }
  EXPECT_EQ(max_item, expected_hot);
}

TEST(HotspotTest, HotFractionReceivesHotProbability) {
  HotspotGenerator g(100000, 0.1, 0.9, 33);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    uint64_t k = g.Next();
    if (k >= g.hot_start() && k < g.hot_start() + g.hot_size()) ++hot;
  }
  EXPECT_NEAR(hot / static_cast<double>(n), 0.9, 0.02);
}

TEST(HotspotTest, ShiftMovesHotSet) {
  HotspotGenerator g(1000, 0.1, 1.0, 35);  // all accesses hot
  g.ShiftHotSet(500);
  EXPECT_EQ(g.hot_start(), 500u);
  for (int i = 0; i < 1000; ++i) {
    uint64_t k = g.Next();
    EXPECT_TRUE(k >= 500 && k < 600) << k;
  }
}

TEST(HotspotTest, ShiftWrapsAround) {
  HotspotGenerator g(1000, 0.05, 0.5, 37);
  g.ShiftHotSet(990);
  EXPECT_EQ(g.hot_start(), 990u);
  // Keys from the hot set wrap: valid keys are 990..999 and 0..39.
  for (int i = 0; i < 2000; ++i) EXPECT_LT(g.Next(), 1000u);
}

TEST(LatestTest, SkewsTowardNewestKeys) {
  LatestGenerator g(10000, 0.99, 41);
  int near_end = 0;
  for (int i = 0; i < 10000; ++i) {
    if (g.Next() >= 9900) ++near_end;
  }
  EXPECT_GT(near_end, 3000);
}

TEST(HashTest, Hash64Avalanche) {
  // Flipping one input bit should flip ~half the output bits on average.
  int total_flips = 0;
  for (uint64_t k = 0; k < 64; ++k) {
    uint64_t h1 = Hash64(12345);
    uint64_t h2 = Hash64(12345 ^ (1ull << k));
    total_flips += __builtin_popcountll(h1 ^ h2);
  }
  double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashBytesDiffersOnContent) {
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abc", 2));
  EXPECT_EQ(HashBytes("abc", 3), HashBytes("abc", 3));
}

}  // namespace
}  // namespace costperf
