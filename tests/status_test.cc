#include "common/status.h"

#include <gtest/gtest.h>

namespace costperf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryConstructorsSetCode) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::IoError().IsIoError());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, MessageIsCarried) {
  Status s = Status::IoError("disk on fire");
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::Corruption("bad crc");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad crc");
  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsCorruption());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::IoError());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace costperf
