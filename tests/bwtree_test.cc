#include "bwtree/bwtree.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/random.h"

namespace costperf::bwtree {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}
std::string Val(uint64_t i) { return "value-" + std::to_string(i); }

class BwTreeTest : public ::testing::Test {
 protected:
  void SetUpStore(uint64_t max_page_bytes = 1024) {
    storage::SsdOptions dev;
    dev.capacity_bytes = 256ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    log_ = std::make_unique<llama::LogStructuredStore>(device_.get());
    BwTreeOptions opts;
    opts.max_page_bytes = max_page_bytes;
    opts.consolidate_threshold = 4;
    opts.max_inner_children = 8;
    opts.log_store = log_.get();
    tree_ = std::make_unique<BwTree>(opts);
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<BwTree> tree_;
};

TEST_F(BwTreeTest, PutGetSingle) {
  SetUpStore();
  ASSERT_TRUE(tree_->Put("a", "1").ok());
  auto r = tree_->Get("a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "1");
}

TEST_F(BwTreeTest, GetMissingIsNotFound) {
  SetUpStore();
  EXPECT_TRUE(tree_->Get("nope").status().IsNotFound());
  ASSERT_TRUE(tree_->Put("a", "1").ok());
  EXPECT_TRUE(tree_->Get("b").status().IsNotFound());
}

TEST_F(BwTreeTest, PutOverwrites) {
  SetUpStore();
  ASSERT_TRUE(tree_->Put("k", "v1").ok());
  ASSERT_TRUE(tree_->Put("k", "v2").ok());
  EXPECT_EQ(*tree_->Get("k"), "v2");
}

TEST_F(BwTreeTest, DeleteRemoves) {
  SetUpStore();
  ASSERT_TRUE(tree_->Put("k", "v").ok());
  ASSERT_TRUE(tree_->Delete("k").ok());
  EXPECT_TRUE(tree_->Get("k").status().IsNotFound());
}

TEST_F(BwTreeTest, DeleteThenReinsert) {
  SetUpStore();
  ASSERT_TRUE(tree_->Put("k", "v1").ok());
  ASSERT_TRUE(tree_->Delete("k").ok());
  ASSERT_TRUE(tree_->Put("k", "v2").ok());
  EXPECT_EQ(*tree_->Get("k"), "v2");
}

TEST_F(BwTreeTest, TimestampedBlindUpdatesNewestWins) {
  SetUpStore();
  // Posted out of order: higher timestamp must win regardless.
  ASSERT_TRUE(tree_->Put("k", "late", 100).ok());
  ASSERT_TRUE(tree_->Put("k", "early", 50).ok());
  EXPECT_EQ(*tree_->Get("k"), "late");
  // Consolidation must preserve the decision.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  EXPECT_EQ(*tree_->Get("k"), "late");
}

TEST_F(BwTreeTest, ConsolidationTriggersAndPreservesData) {
  SetUpStore(64 << 10);  // large pages: no splits
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i % 10), Val(i)).ok());
  }
  EXPECT_GT(tree_->stats().consolidations, 0u);
  for (int k = 0; k < 10; ++k) {
    // Last write per key: i where i%10==k, max i = 90+k
    EXPECT_EQ(*tree_->Get(Key(k)), Val(90 + k));
  }
}

TEST_F(BwTreeTest, SplitsProduceMultipleLeaves) {
  SetUpStore(512);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  EXPECT_GT(tree_->stats().leaf_splits, 5u);
  EXPECT_GT(tree_->stats().root_splits, 0u);
  EXPECT_GT(tree_->LeafPageIds().size(), 5u);
  for (int i = 0; i < 500; ++i) {
    auto r = tree_->Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(*r, Val(i));
  }
}

TEST_F(BwTreeTest, InnerSplitsWithTinyFanout) {
  SetUpStore(256);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  EXPECT_GT(tree_->stats().inner_splits, 0u);
  Random rng(3);
  for (int t = 0; t < 500; ++t) {
    uint64_t i = rng.Uniform(2000);
    ASSERT_EQ(*tree_->Get(Key(i)), Val(i));
  }
}

TEST_F(BwTreeTest, EquivalenceWithStdMapRandomOps) {
  SetUpStore(512);
  std::map<std::string, std::string> model;
  Random rng(42);
  for (int op = 0; op < 20000; ++op) {
    uint64_t k = rng.Uniform(800);
    std::string key = Key(k);
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      std::string val = Val(rng.Next() % 100000);
      ASSERT_TRUE(tree_->Put(key, val).ok());
      model[key] = val;
    } else if (dice < 0.75) {
      ASSERT_TRUE(tree_->Delete(key).ok());
      model.erase(key);
    } else {
      auto r = tree_->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(r.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(r.ok()) << key;
        EXPECT_EQ(*r, it->second);
      }
    }
  }
  // Full verification pass.
  for (auto& [k, v] : model) {
    auto r = tree_->Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, v);
  }
}

TEST_F(BwTreeTest, ScanReturnsSortedRange) {
  SetUpStore(512);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan(Key(100), 50, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i].first, Key(100 + i));
    EXPECT_EQ(out[i].second, Val(100 + i));
  }
}

TEST_F(BwTreeTest, ScanRespectsEndBound) {
  SetUpStore(512);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan(Key(10), 1000, &out, Key(20)).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().first, Key(10));
  EXPECT_EQ(out.back().first, Key(19));
}

TEST_F(BwTreeTest, ScanSkipsDeletedKeys) {
  SetUpStore(512);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  for (int i = 0; i < 50; i += 2) {
    ASSERT_TRUE(tree_->Delete(Key(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("", 1000, &out).ok());
  EXPECT_EQ(out.size(), 25u);
  for (auto& [k, v] : out) {
    uint64_t i = std::stoull(k.substr(3));
    EXPECT_EQ(i % 2, 1u) << k;
  }
}

TEST_F(BwTreeTest, EmptyTreeScan) {
  SetUpStore();
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("", 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

// ---------------- paging ----------------

TEST_F(BwTreeTest, FlushThenEvictThenGetReloads) {
  SetUpStore(512);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (PageId pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, EvictMode::kFullEviction).ok());
    EXPECT_FALSE(tree_->IsLeafResident(pid));
  }
  uint64_t ss_before = tree_->stats().ss_ops;
  for (int i = 0; i < 100; ++i) {
    auto r = tree_->Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(*r, Val(i));
  }
  EXPECT_GT(tree_->stats().ss_ops, ss_before);
  EXPECT_GT(tree_->stats().page_loads, 0u);
}

TEST_F(BwTreeTest, EvictedPagesAreMmAgainAfterLoad) {
  SetUpStore(512);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (PageId pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, EvictMode::kFullEviction).ok());
  }
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(tree_->Get(Key(i)).ok());
  uint64_t ss_after_warm = tree_->stats().ss_ops;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(tree_->Get(Key(i)).ok());
  EXPECT_EQ(tree_->stats().ss_ops, ss_after_warm)
      << "second pass must be all MM";
}

TEST_F(BwTreeTest, BlindPutOnEvictedPageNeedsNoRead) {
  SetUpStore(64 << 10);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  ASSERT_TRUE(tree_->FlushAll().ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());

  uint64_t reads_before = device_->stats().reads;
  uint64_t flash_reads_before = tree_->stats().flash_record_reads;
  ASSERT_TRUE(tree_->Put(Key(5), "updated-blind").ok());
  EXPECT_EQ(device_->stats().reads, reads_before)
      << "blind update must not read the device";
  EXPECT_EQ(tree_->stats().flash_record_reads, flash_reads_before);
  EXPECT_GT(tree_->stats().blind_updates, 0u);

  // And the update is visible (record-cache hit, still no base load).
  auto r = tree_->Get(Key(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "updated-blind");
  EXPECT_GT(tree_->stats().record_cache_hits, 0u);

  // Reading a different key now loads the base and merges the delta.
  EXPECT_EQ(*tree_->Get(Key(6)), Val(6));
  EXPECT_EQ(*tree_->Get(Key(5)), "updated-blind");
}

TEST_F(BwTreeTest, RecordCacheEvictionKeepsDeltas) {
  SetUpStore(64 << 10);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);
  // Dirty the page with fresh deltas, then evict keeping deltas.
  ASSERT_TRUE(tree_->FlushAll().ok());
  ASSERT_TRUE(tree_->Put(Key(3), "hot-update").ok());
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kKeepDeltas).ok());
  EXPECT_GT(tree_->stats().record_cache_evictions, 0u);
  EXPECT_FALSE(tree_->IsLeafResident(pids[0]));

  uint64_t flash_reads_before = tree_->stats().flash_record_reads;
  auto r = tree_->Get(Key(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hot-update");
  EXPECT_EQ(tree_->stats().flash_record_reads, flash_reads_before)
      << "record-cache hit must not touch flash";
  EXPECT_GT(tree_->stats().record_cache_hits, 0u);
}

TEST_F(BwTreeTest, DeltaOnlyFlushWritesFewerBytes) {
  SetUpStore(64 << 10);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  ASSERT_TRUE(tree_->FlushAll().ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);
  // Evict keeping nothing; then blind-update one record and delta-flush.
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());
  ASSERT_TRUE(tree_->Put(Key(7), "tiny-change").ok());

  uint64_t flushed_before = tree_->stats().bytes_flushed;
  ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kDeltaOnly).ok());
  uint64_t delta_bytes = tree_->stats().bytes_flushed - flushed_before;
  EXPECT_GT(tree_->stats().delta_flushes, 0u);
  EXPECT_LT(delta_bytes, 200u)
      << "delta flush must write only the one update";

  // The page state is recoverable: evict fully, reload via Get.
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());
  EXPECT_EQ(*tree_->Get(Key(7)), "tiny-change");
  EXPECT_EQ(*tree_->Get(Key(8)), Val(8));
}

TEST_F(BwTreeTest, MultiHopFlashChainLoads) {
  SetUpStore(64 << 10);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  ASSERT_TRUE(tree_->FlushAll().ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());

  // Three rounds of blind update + delta-only flush: flash chain length 4.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(tree_->Put(Key(round), "round-" + std::to_string(round)).ok());
    ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kDeltaOnly).ok());
    ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());
  }
  uint64_t reads_before = tree_->stats().flash_record_reads;
  EXPECT_EQ(*tree_->Get(Key(0)), "round-0");
  uint64_t hops = tree_->stats().flash_record_reads - reads_before;
  EXPECT_EQ(hops, 4u) << "expected base + 3 delta pages";
  EXPECT_EQ(*tree_->Get(Key(1)), "round-1");
  EXPECT_EQ(*tree_->Get(Key(2)), "round-2");
  EXPECT_EQ(*tree_->Get(Key(10)), Val(10));
}

TEST_F(BwTreeTest, FlushCleanPageIsNoop) {
  SetUpStore(64 << 10);
  ASSERT_TRUE(tree_->Put("a", "1").ok());
  ASSERT_TRUE(tree_->FlushAll().ok());
  uint64_t flushes = tree_->stats().full_flushes;
  auto pids = tree_->LeafPageIds();
  ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kFullPage).ok());
  EXPECT_EQ(tree_->stats().full_flushes, flushes) << "clean page: no write";
}

TEST_F(BwTreeTest, EvictDirtyPageFlushesFirst) {
  SetUpStore(64 << 10);
  ASSERT_TRUE(tree_->Put("a", "1").ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());
  EXPECT_GT(tree_->stats().full_flushes, 0u);
  EXPECT_EQ(*tree_->Get("a"), "1");
}

TEST_F(BwTreeTest, PagingStressAgainstModel) {
  SetUpStore(512);
  std::map<std::string, std::string> model;
  Random rng(77);
  for (int op = 0; op < 5000; ++op) {
    uint64_t k = rng.Uniform(300);
    std::string key = Key(k);
    double dice = rng.NextDouble();
    if (dice < 0.4) {
      std::string val = Val(rng.Next() % 100000);
      ASSERT_TRUE(tree_->Put(key, val).ok());
      model[key] = val;
    } else if (dice < 0.5) {
      ASSERT_TRUE(tree_->Delete(key).ok());
      model.erase(key);
    } else if (dice < 0.9) {
      auto r = tree_->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(r.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(r.ok()) << key << " " << r.status().ToString();
        EXPECT_EQ(*r, it->second);
      }
    } else {
      // Random paging activity on a random leaf.
      auto leaf = tree_->LeafOf(key);
      ASSERT_TRUE(leaf.ok());
      if (rng.Bernoulli(0.5)) {
        tree_->FlushPage(*leaf, rng.Bernoulli(0.5) ? FlushMode::kFullPage
                                                   : FlushMode::kDeltaOnly);
      } else {
        tree_->EvictPage(*leaf, rng.Bernoulli(0.5)
                                    ? EvictMode::kFullEviction
                                    : EvictMode::kKeepDeltas);
      }
    }
    if (op % 512 == 0) tree_->ReclaimMemory();
  }
  for (auto& [k, v] : model) {
    auto r = tree_->Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, v);
  }
}

TEST_F(BwTreeTest, GcPreservesEvictedPages) {
  SetUpStore(512);
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  ASSERT_TRUE(tree_->FlushAll().ok());
  // Rewrite everything once so the first segments are mostly dead.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i + 1000)).ok());
  }
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (PageId pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, EvictMode::kFullEviction).ok());
  }

  auto live = [&](PageId pid, FlashAddress a) { return tree_->GcIsLive(pid, a); };
  auto install = [&](PageId pid, FlashAddress o, FlashAddress n) {
    return tree_->GcInstall(pid, o, n);
  };
  int collected = 0;
  for (int round = 0; round < 50; ++round) {
    auto segs = tree_->options().log_store->segments();
    uint64_t victim = UINT64_MAX;
    for (auto& s : segs) {
      if (s.sealed && s.live_fraction() < 0.99) {
        victim = s.id;
        break;
      }
    }
    if (victim == UINT64_MAX) break;
    ASSERT_TRUE(tree_->PrepareSegmentForGc(victim, 1 << 20).ok());
    auto gc = log_->CollectSegment(victim, live, install);
    ASSERT_TRUE(gc.ok()) << gc.status().ToString();
    ++collected;
    // After preparation some pages are resident again; evict them.
    for (PageId pid : tree_->LeafPageIds()) {
      tree_->EvictPage(pid, EvictMode::kFullEviction);
    }
  }
  EXPECT_GT(collected, 0);
  for (int i = 0; i < 300; ++i) {
    auto r = tree_->Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << " " << r.status().ToString();
    EXPECT_EQ(*r, Val(i + 1000));
  }
}

TEST_F(BwTreeTest, MemoryFootprintShrinksOnEviction) {
  SetUpStore(512);
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  uint64_t resident = tree_->MemoryFootprintBytes();
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (PageId pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, EvictMode::kFullEviction).ok());
  }
  tree_->ReclaimMemory();
  EXPECT_LT(tree_->MemoryFootprintBytes(), resident / 2);
}

TEST_F(BwTreeTest, ConcurrentWritersDisjointKeys) {
  SetUpStore(512);
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(tree_->Put(Key(k), Val(k)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  tree_->ReclaimMemory();
  for (uint64_t k = 0; k < uint64_t{kThreads} * kPerThread; ++k) {
    auto r = tree_->Get(Key(k));
    ASSERT_TRUE(r.ok()) << Key(k);
    EXPECT_EQ(*r, Val(k));
  }
}

TEST_F(BwTreeTest, ConcurrentReadersAndWriters) {
  SetUpStore(512);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([&] {
    Random rng(9);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t k = rng.Uniform(1000);
      auto r = tree_->Get(Key(k));
      // Values change concurrently but must always parse as Val(something)
      // and never error except NotFound-free keys (all exist here).
      if (!r.ok()) read_errors++;
    }
  });
  Random rng(10);
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.Uniform(1000);
    ASSERT_TRUE(tree_->Put(Key(k), Val(rng.Next() % 100000)).ok());
    if (i % 1000 == 0) tree_->ReclaimMemory();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
}

TEST_F(BwTreeTest, PurelyInMemoryTreeRejectsPaging) {
  BwTreeOptions opts;  // no log store
  BwTree tree(opts);
  ASSERT_TRUE(tree.Put("a", "1").ok());
  auto pid = tree.LeafOf("a");
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(tree.FlushPage(*pid, FlushMode::kFullPage).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(tree.EvictPage(*pid, EvictMode::kFullEviction).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BwTreeTest, LargeValuesAcrossSplits) {
  SetUpStore(4096);
  std::string big(1500, 'x');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), big + std::to_string(i)).ok());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*tree_->Get(Key(i)), big + std::to_string(i));
  }
}

}  // namespace
}  // namespace costperf::bwtree
