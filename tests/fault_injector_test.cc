#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace costperf::fault {
namespace {

storage::SsdOptions TestDevice() {
  storage::SsdOptions o;
  o.capacity_bytes = 16ull << 20;
  o.max_iops = 0;
  return o;
}

TEST(FaultInjectorTest, ScheduledCrashFiresAfterExactWriteCount) {
  storage::SsdDevice dev(TestDevice());
  FaultInjector fi;
  fi.Attach(&dev);
  fi.ScheduleCrash(/*writes=*/3, /*torn_fraction=*/0.0);
  std::string data(512, 'w');
  // Three writes are admitted...
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dev.Write(i * 1024, Slice(data)).ok()) << i;
    EXPECT_FALSE(fi.crashed());
  }
  // ...the fourth is the crash point.
  EXPECT_TRUE(dev.Write(3 * 1024, Slice(data)).IsIoError());
  EXPECT_TRUE(fi.crashed());
  EXPECT_EQ(fi.stats().torn_writes, 1u);
  // Fail-stop: every I/O after the crash fails.
  std::vector<char> buf(16);
  EXPECT_TRUE(dev.Read(0, 16, buf.data()).IsIoError());
  EXPECT_TRUE(dev.Write(0, Slice("x")).IsIoError());
  EXPECT_EQ(fi.stats().post_crash_ios, 2u);
}

TEST(FaultInjectorTest, ClearCrashRebootsOntoHealthyMedia) {
  storage::SsdDevice dev(TestDevice());
  FaultInjector fi;
  fi.Attach(&dev);
  fi.set_read_error_rate(1.0);
  fi.ScheduleCrash(0, 0.0);
  EXPECT_TRUE(dev.Write(0, Slice("x")).IsIoError());
  ASSERT_TRUE(fi.crashed());
  fi.ClearCrash();
  EXPECT_FALSE(fi.crashed());
  // The reboot also disarmed the read-error rate: recovery runs against
  // healthy media unless faults are re-armed.
  std::vector<char> buf(4);
  EXPECT_TRUE(dev.Read(0, 4, buf.data()).ok());
  EXPECT_TRUE(dev.Write(0, Slice("y")).ok());
}

TEST(FaultInjectorTest, TornFractionAdmitsPrefix) {
  storage::SsdDevice dev(TestDevice());
  FaultInjector fi;
  fi.Attach(&dev);
  fi.ScheduleCrash(0, /*torn_fraction=*/0.25);
  std::string data(1000, 't');
  EXPECT_TRUE(dev.Write(0, Slice(data)).IsIoError());
  fi.ClearCrash();
  std::vector<char> buf(1000);
  ASSERT_TRUE(dev.Read(0, 1000, buf.data()).ok());
  for (int i = 0; i < 250; ++i) ASSERT_EQ(buf[i], 't') << i;
  for (int i = 250; i < 1000; ++i) ASSERT_EQ(buf[i], '\0') << i;
}

TEST(FaultInjectorTest, SameSeedSameIoSequenceReplaysIdentically) {
  auto run = [](uint64_t seed) {
    storage::SsdDevice dev(TestDevice());
    FaultInjector fi(seed);
    fi.Attach(&dev);
    fi.set_write_error_rate(0.5);
    std::vector<bool> outcomes;
    std::string data(64, 'd');
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(dev.Write(i * 64, Slice(data)).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42)) << "same seed must replay the same plan";
  EXPECT_NE(run(42), run(43)) << "different seeds must differ";
}

TEST(FaultInjectorTest, PersistentFailureHoldsUntilCleared) {
  storage::SsdDevice dev(TestDevice());
  FaultInjector fi;
  fi.Attach(&dev);
  fi.set_persistent_write_failure(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(dev.Write(0, Slice("x")).IsIoError()) << i;
  }
  EXPECT_EQ(fi.stats().write_errors, 5u);
  fi.set_persistent_write_failure(false);
  EXPECT_TRUE(dev.Write(0, Slice("x")).ok());
}

TEST(FaultInjectorTest, ResetDisarmsButKeepsStats) {
  storage::SsdDevice dev(TestDevice());
  FaultInjector fi;
  fi.Attach(&dev);
  fi.set_read_error_rate(1.0);
  std::vector<char> buf(4);
  EXPECT_TRUE(dev.Read(0, 4, buf.data()).IsIoError());
  fi.Reset();
  EXPECT_TRUE(dev.Read(0, 4, buf.data()).ok());
  EXPECT_EQ(fi.stats().read_errors, 1u) << "Reset keeps the stats";
  EXPECT_EQ(fi.stats().reads_seen, 2u);
}

TEST(FaultInjectorTest, CorruptRangeFlipsBitsInPlace) {
  storage::SsdDevice dev(TestDevice());
  FaultInjector fi(5);
  fi.Attach(&dev);
  std::string data(4096, 'q');
  ASSERT_TRUE(dev.Write(0, Slice(data)).ok());
  ASSERT_TRUE(fi.CorruptRange(1024, 512, /*bits=*/4).ok());
  std::vector<char> buf(4096);
  ASSERT_TRUE(dev.Read(0, 4096, buf.data()).ok());
  int diffs = 0;
  for (int i = 0; i < 4096; ++i) {
    if (buf[i] != 'q') {
      EXPECT_GE(i, 1024);
      EXPECT_LT(i, 1536);
      ++diffs;
    }
  }
  EXPECT_GE(diffs, 1);
  EXPECT_LE(diffs, 4);
}

}  // namespace
}  // namespace costperf::fault
