#include "bwtree/page_codec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace costperf::bwtree {
namespace {

TEST(PageCodecTest, LeafRoundTrip) {
  LeafBase leaf;
  leaf.keys = {"apple", "banana", "cherry"};
  leaf.values = {"1", "22", "333"};
  leaf.high_key = "d";
  leaf.right_sibling = 42;
  std::string image;
  PageCodec::EncodeLeaf(leaf, &image);

  LeafBase out;
  ASSERT_TRUE(PageCodec::DecodeLeaf(Slice(image), &out).ok());
  EXPECT_EQ(out.keys, leaf.keys);
  EXPECT_EQ(out.values, leaf.values);
  EXPECT_EQ(out.high_key, "d");
  EXPECT_EQ(out.right_sibling, 42u);
}

TEST(PageCodecTest, EmptyLeafRoundTrip) {
  LeafBase leaf;
  std::string image;
  PageCodec::EncodeLeaf(leaf, &image);
  LeafBase out;
  ASSERT_TRUE(PageCodec::DecodeLeaf(Slice(image), &out).ok());
  EXPECT_TRUE(out.keys.empty());
  EXPECT_TRUE(out.high_key.empty());
  EXPECT_EQ(out.right_sibling, kInvalidPageId);
}

TEST(PageCodecTest, DeltaPageRoundTrip) {
  std::vector<DeltaOp> ops;
  ops.push_back({DeltaOp::kInsert, "k1", "v1", 5});
  ops.push_back({DeltaOp::kDelete, "k2", "", 7});
  ops.push_back({DeltaOp::kInsert, "k3", "", 0});  // empty value legal
  FlashAddress prev(12345, 678);
  std::string image;
  PageCodec::EncodeDeltaPage(prev, ops, &image);

  FlashAddress got_prev;
  std::vector<DeltaOp> got;
  ASSERT_TRUE(PageCodec::DecodeDeltaPage(Slice(image), &got_prev, &got).ok());
  EXPECT_EQ(got_prev, prev);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].kind, DeltaOp::kInsert);
  EXPECT_EQ(got[0].key, "k1");
  EXPECT_EQ(got[0].value, "v1");
  EXPECT_EQ(got[0].timestamp, 5u);
  EXPECT_EQ(got[1].kind, DeltaOp::kDelete);
  EXPECT_EQ(got[1].key, "k2");
  EXPECT_EQ(got[2].value, "");
}

TEST(PageCodecTest, PeekKindDistinguishes) {
  LeafBase leaf;
  std::string leaf_img;
  PageCodec::EncodeLeaf(leaf, &leaf_img);
  std::string delta_img;
  PageCodec::EncodeDeltaPage(FlashAddress(), {}, &delta_img);
  uint8_t kind = 99;
  ASSERT_TRUE(PageCodec::PeekKind(Slice(leaf_img), &kind).ok());
  EXPECT_EQ(kind, PageCodec::kFullLeaf);
  ASSERT_TRUE(PageCodec::PeekKind(Slice(delta_img), &kind).ok());
  EXPECT_EQ(kind, PageCodec::kDeltaPage);
  EXPECT_FALSE(PageCodec::PeekKind(Slice(""), &kind).ok());
  std::string junk = "\x7fjunk";
  EXPECT_FALSE(PageCodec::PeekKind(Slice(junk), &kind).ok());
}

TEST(PageCodecTest, DecodeLeafRejectsWrongKind) {
  std::string delta_img;
  PageCodec::EncodeDeltaPage(FlashAddress(), {}, &delta_img);
  LeafBase out;
  EXPECT_TRUE(PageCodec::DecodeLeaf(Slice(delta_img), &out).IsCorruption());
}

TEST(PageCodecTest, DecodeRejectsTruncation) {
  LeafBase leaf;
  leaf.keys = {"k"};
  leaf.values = {"v"};
  std::string image;
  PageCodec::EncodeLeaf(leaf, &image);
  LeafBase out;
  for (size_t cut = 1; cut < image.size(); ++cut) {
    EXPECT_FALSE(
        PageCodec::DecodeLeaf(Slice(image.data(), cut), &out).ok())
        << cut;
  }
}

TEST(PageCodecTest, DecodeRejectsTrailingBytes) {
  LeafBase leaf;
  std::string image;
  PageCodec::EncodeLeaf(leaf, &image);
  image += "extra";
  LeafBase out;
  EXPECT_TRUE(PageCodec::DecodeLeaf(Slice(image), &out).IsCorruption());
}

TEST(PageCodecTest, BinaryKeysAndValues) {
  Random rng(31);
  LeafBase leaf;
  for (int i = 0; i < 100; ++i) {
    std::string k(1 + rng.Uniform(40), '\0');
    std::string v(rng.Uniform(200), '\0');
    rng.Fill(k.data(), k.size());
    rng.Fill(v.data(), v.size());
    leaf.keys.push_back(k);
    leaf.values.push_back(v);
  }
  std::string image;
  PageCodec::EncodeLeaf(leaf, &image);
  LeafBase out;
  ASSERT_TRUE(PageCodec::DecodeLeaf(Slice(image), &out).ok());
  EXPECT_EQ(out.keys, leaf.keys);
  EXPECT_EQ(out.values, leaf.values);
}

TEST(PageCodecTest, VariableImageSizeTracksContent) {
  // §6.1: variable-size pages — the image is proportional to content.
  LeafBase small, large;
  small.keys = {"k"};
  small.values = {"v"};
  for (int i = 0; i < 100; ++i) {
    large.keys.push_back("key" + std::to_string(i));
    large.values.push_back(std::string(30, 'v'));
  }
  std::string si, li;
  PageCodec::EncodeLeaf(small, &si);
  PageCodec::EncodeLeaf(large, &li);
  EXPECT_LT(si.size(), 32u);
  EXPECT_GT(li.size(), 3000u);
}

}  // namespace
}  // namespace costperf::bwtree
