#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/random.h"
#include "core/caching_store.h"
#include "fault/fault_injector.h"

namespace costperf {
namespace {

// Crash-recovery torture: run a random workload, checkpoint, crash the
// device at a random write with a random torn fraction, reboot, recover,
// and verify the durability contract against a shadow model:
//
//   - zero invariant-checker violations after recovery,
//   - every key present at the last successful Checkpoint() is readable
//     and returns its checkpoint value or a post-checkpoint value,
//   - NotFound only for keys never checkpointed or deleted after the
//     checkpoint,
//   - values are never garbage (only values the workload actually wrote).
//
// Every iteration derives from one printed base seed, so any failure
// reproduces exactly. COSTPERF_TORTURE_ITERS overrides the crash-point
// count (the asan lane in scripts/check.sh runs a reduced loop; the
// default exercises >= 200 seeded crash points).

int TortureIters() {
  const char* env = std::getenv("COSTPERF_TORTURE_ITERS");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

struct Accept {
  std::set<std::string> values;
  bool not_found_ok = false;
};

TEST(CrashRecoveryTortureTest, RandomCrashPointsNeverLoseCheckpointedData) {
  const uint64_t base_seed = 0xc4a55eedull;
  const int iters = TortureIters();
  printf("torture: %d crash points, base seed %llu\n", iters,
         (unsigned long long)base_seed);
  int crashes_fired = 0;
  int salvages = 0;
  uint64_t total_demotions = 0;

  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = Hash64(base_seed + static_cast<uint64_t>(iter));
    SCOPED_TRACE("iter " + std::to_string(iter) + " seed " +
                 std::to_string(seed));
    Random rng(seed);

    storage::SsdOptions dev_opts;
    dev_opts.capacity_bytes = 16ull << 20;
    dev_opts.max_iops = 0;
    auto device = std::make_unique<storage::SsdDevice>(dev_opts);
    fault::FaultInjector fi(seed ^ 0x5a5a5a5aull);
    fi.Attach(device.get());

    core::CachingStoreOptions opts;
    opts.external_device = device.get();
    opts.memory_budget_bytes = 0;  // no eviction churn; crash is the fault
    opts.log.segment_bytes = 32 << 10;  // frequent device writes
    opts.tree.max_page_bytes = 4 << 10;
    opts.tree.io_retry.max_attempts = 1;  // crash errors are not transient
    opts.degrade_after_write_failures = 0;
    // CSS tier armed with a zero idle floor: every Maintain() demotes a
    // batch of pages compressed, so seeded crash points regularly land
    // mid-compressed-record. Recovery must stay lossless through both
    // record forms.
    opts.tier.css_budget_bytes = 4ull << 20;
    opts.tier.demote_idle_seconds = 0.0;

    std::map<std::string, std::string> shadow;
    auto key_of = [&rng]() { return "key" + std::to_string(rng.Uniform(400)); };
    uint64_t value_counter = 0;
    auto next_value = [&](const std::string& key) {
      return key + ":" + std::to_string(value_counter++);
    };

    std::map<std::string, std::string> committed;
    std::map<std::string, Accept> accept;
    {
      auto store = std::make_unique<core::CachingStore>(opts);

      // Phase 1: healthy workload, then a checkpoint that must succeed.
      const int phase1_ops = 100 + static_cast<int>(rng.Uniform(400));
      for (int op = 0; op < phase1_ops; ++op) {
        std::string key = key_of();
        if (rng.Bernoulli(0.8)) {
          std::string val = next_value(key);
          ASSERT_TRUE(store->Put(key, val).ok());
          shadow[key] = val;
        } else {
          ASSERT_TRUE(store->Delete(key).ok());
          shadow.erase(key);
        }
      }
      ASSERT_TRUE(store->Checkpoint().ok());
      committed = shadow;
      for (const auto& [k, v] : committed) accept[k].values.insert(v);

      // Phase 2: arm the crash, keep working until the device dies.
      // Periodic checkpoints drive device writes (the budget is unbounded,
      // so plain puts stay memory-only) until the scheduled crash fires —
      // usually mid-flush, tearing a segment write.
      fi.ScheduleCrash(/*writes=*/rng.Uniform(6),
                       /*torn_fraction=*/rng.NextDouble());
      for (int op = 0; op < 4000 && !fi.crashed(); ++op) {
        std::string key = key_of();
        Accept& a = accept[key];
        if (committed.count(key) == 0) a.not_found_ok = true;
        if (rng.Bernoulli(0.8)) {
          std::string val = next_value(key);
          // Applied or not (the crash may interrupt it), the value is now
          // a legal post-recovery answer; the checkpoint value stays one.
          a.values.insert(val);
          (void)store->Put(key, val);
        } else {
          // A post-checkpoint delete may or may not be durable, and the
          // durability contract allows it to resurface as the checkpoint
          // value — so NotFound and every older accepted value stay legal.
          a.not_found_ok = true;
          (void)store->Delete(key);
        }
        if (op % 16 == 7) store->Maintain();  // drives CSS demotions
        if (op % 16 == 15) (void)store->Checkpoint();
      }
      if (fi.crashed()) ++crashes_fired;
      total_demotions += store->Stats().tier_demotions;
      // The store dies with the machine; nothing else reaches media.
    }

    // Phase 3: reboot onto healthy media and recover.
    fi.ClearCrash();
    auto store = std::make_unique<core::CachingStore>(opts);
    uint64_t salvages_before = store->tree()->stats().salvage_recoveries;
    Status rs = store->Recover();
    ASSERT_TRUE(rs.ok()) << rs.ToString();
    if (store->tree()->stats().salvage_recoveries > salvages_before) {
      ++salvages;
    }

    auto violations = store->CheckInvariants();
    ASSERT_TRUE(violations.empty())
        << violations.size() << " violations; first: "
        << violations[0].ToString();

    // Verify the durability contract for every key the workload touched.
    for (const auto& [key, a] : accept) {
      auto r = store->Get(key);
      if (r.status().IsNotFound()) {
        ASSERT_TRUE(a.not_found_ok)
            << key << " lost: present at checkpoint, never deleted after";
        continue;
      }
      ASSERT_TRUE(r.ok()) << key << ": " << r.status().ToString();
      ASSERT_TRUE(a.values.count(*r))
          << key << " returned a value the workload never wrote (or one "
          << "older than the checkpoint): " << *r;
    }

    // The recovered store must be fully writable again.
    ASSERT_TRUE(store->Put("post-recovery-probe", "alive").ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_EQ(*store->Get("post-recovery-probe"), "alive");
  }

  printf("torture: %d/%d crash points fired, %d salvage recoveries, "
         "%llu CSS demotions\n",
         crashes_fired, iters, salvages,
         (unsigned long long)total_demotions);
  // The plan must actually bite: most iterations reach their crash point,
  // and the compressed tier is live enough that crash points land among
  // compressed records too.
  EXPECT_GT(crashes_fired, iters / 4);
  EXPECT_GT(total_demotions, 0u);
}

// Same durability contract, but with background maintenance active and a
// memory budget small enough that scheduler workers are continuously
// evicting, flushing, and log-collecting while the crash fires — so the
// device regularly dies mid-background-GC/flush, on a thread the
// foreground never sees. Recovery must still satisfy the contract and
// the invariant checkers.
TEST(CrashRecoveryTortureTest, CrashMidBackgroundMaintenanceRecovers) {
  const uint64_t base_seed = 0xbadc0ffeull;
  const int iters = std::max(TortureIters() / 4, 10);
  printf("bg torture: %d crash points, base seed %llu\n", iters,
         (unsigned long long)base_seed);
  int crashes_fired = 0;
  uint64_t total_demotions = 0;

  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = Hash64(base_seed + static_cast<uint64_t>(iter));
    SCOPED_TRACE("iter " + std::to_string(iter) + " seed " +
                 std::to_string(seed));
    Random rng(seed);

    storage::SsdOptions dev_opts;
    dev_opts.capacity_bytes = 16ull << 20;
    dev_opts.max_iops = 0;
    auto device = std::make_unique<storage::SsdDevice>(dev_opts);
    fault::FaultInjector fi(seed ^ 0xa5a5a5a5ull);
    fi.Attach(device.get());

    core::CachingStoreOptions opts;
    opts.external_device = device.get();
    opts.memory_budget_bytes = 64 << 10;  // constant eviction pressure
    opts.log.segment_bytes = 32 << 10;
    opts.tree.max_page_bytes = 4 << 10;
    opts.tree.io_retry.max_attempts = 1;
    opts.degrade_after_write_failures = 0;
    opts.background.workers = 1;
    opts.background.log_dead_trigger = 0.2;  // aggressive background GC
    // Short stall bound: post-crash evictions all fail, so backpressure
    // must not turn the remaining (unstallable) debt into long waits.
    opts.background.stall_max_wait_micros = 2000;
    opts.gc_live_threshold = 0.8;
    // Zero idle floor: background eviction demotes its victims to the
    // compressed tier until the CSS budget fills, so the crash also
    // lands mid-compressed-record on scheduler threads.
    opts.tier.css_budget_bytes = 1ull << 20;
    opts.tier.demote_idle_seconds = 0.0;

    std::map<std::string, std::string> shadow;
    auto key_of = [&rng]() { return "key" + std::to_string(rng.Uniform(300)); };
    uint64_t value_counter = 0;
    auto next_value = [&](const std::string& key) {
      return key + ":" + std::to_string(value_counter++);
    };

    std::map<std::string, std::string> committed;
    std::map<std::string, Accept> accept;
    {
      auto store = std::make_unique<core::CachingStore>(opts);
      std::string value_pad(256, 'p');

      // Phase 1: healthy workload with enough churn that background
      // eviction and GC are active, then a checkpoint that must succeed.
      const int phase1_ops = 200 + static_cast<int>(rng.Uniform(600));
      for (int op = 0; op < phase1_ops; ++op) {
        std::string key = key_of();
        std::string val = next_value(key) + value_pad;
        ASSERT_TRUE(store->Put(key, val).ok());
        shadow[key] = val;
      }
      // Background flush/GC can race the checkpoint on the healthy
      // device; drain workers first so the checkpoint is a stable line.
      store->maintenance_scheduler()->Quiesce();
      ASSERT_TRUE(store->Checkpoint().ok());
      committed = shadow;
      for (const auto& [k, v] : committed) accept[k].values.insert(v);

      // Phase 2: arm the crash and keep writing. With the tiny budget,
      // most device writes come from scheduler workers (evict flushes,
      // GC relocations), so the crash usually lands mid-background-step.
      fi.ScheduleCrash(/*writes=*/rng.Uniform(12),
                       /*torn_fraction=*/rng.NextDouble());
      for (int op = 0; op < 3000 && !fi.crashed(); ++op) {
        std::string key = key_of();
        Accept& a = accept[key];
        if (committed.count(key) == 0) a.not_found_ok = true;
        std::string val = next_value(key) + value_pad;
        a.values.insert(val);
        (void)store->Put(key, val);
      }
      if (fi.crashed()) ++crashes_fired;
      total_demotions += store->Stats().tier_demotions;
      // Store destruction deregisters from the scheduler, waiting out
      // any step that is mid-GC on the now-dead device.
    }

    // Phase 3: reboot onto healthy media, recover without background
    // workers (recovery is single-threaded by contract).
    fi.ClearCrash();
    core::CachingStoreOptions recover_opts = opts;
    recover_opts.background = {};
    auto store = std::make_unique<core::CachingStore>(recover_opts);
    Status rs = store->Recover();
    ASSERT_TRUE(rs.ok()) << rs.ToString();

    auto violations = store->CheckInvariants();
    ASSERT_TRUE(violations.empty())
        << violations.size() << " violations; first: "
        << violations[0].ToString();

    for (const auto& [key, a] : accept) {
      auto r = store->Get(key);
      if (r.status().IsNotFound()) {
        ASSERT_TRUE(a.not_found_ok)
            << key << " lost: present at checkpoint, never deleted after";
        continue;
      }
      ASSERT_TRUE(r.ok()) << key << ": " << r.status().ToString();
      ASSERT_TRUE(a.values.count(*r))
          << key << " returned a value the workload never wrote (or one "
          << "older than the checkpoint): " << *r;
    }

    ASSERT_TRUE(store->Put("post-recovery-probe", "alive").ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_EQ(*store->Get("post-recovery-probe"), "alive");
  }

  printf("bg torture: %d/%d crash points fired, %llu CSS demotions\n",
         crashes_fired, iters, (unsigned long long)total_demotions);
  EXPECT_GT(crashes_fired, iters / 4);
  EXPECT_GT(total_demotions, 0u);
}

}  // namespace
}  // namespace costperf
