#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/caching_store.h"

namespace costperf {
namespace {

// Fault-injection tests: device-level read/write errors must surface as
// IoError through every layer without corrupting in-memory state, and the
// stack must keep working once the fault clears.

class FaultyStackTest : public ::testing::Test {
 protected:
  void Build(double read_err, double write_err) {
    storage::SsdOptions dev;
    dev.capacity_bytes = 128ull << 20;
    dev.max_iops = 0;
    dev.read_error_rate = read_err;
    dev.write_error_rate = write_err;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    log_ = std::make_unique<llama::LogStructuredStore>(device_.get());
    bwtree::BwTreeOptions topts;
    topts.log_store = log_.get();
    tree_ = std::make_unique<bwtree::BwTree>(topts);
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<bwtree::BwTree> tree_;
};

TEST_F(FaultyStackTest, LogStoreSurfacesWriteErrors) {
  Build(0, 1.0);
  // Appends buffer fine; the flush hits the device and fails.
  ASSERT_TRUE(log_->Append(1, Slice("x")).ok());
  Status s = log_->Flush();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST_F(FaultyStackTest, LogStoreSurfacesReadErrors) {
  Build(0, 0);
  auto addr = log_->Append(1, Slice("payload"));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(log_->Flush().ok());
  // Now break reads.
  storage::SsdOptions dev;
  Build(1.0, 0);
  // New store over new device: instead, test via the original path —
  // rebuild with errors using the same device is not possible, so probe
  // the tree path below.
  SUCCEED();
}

TEST_F(FaultyStackTest, TreeGetReturnsIoErrorOnDeadDevice) {
  Build(0, 0);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        tree_->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (auto pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, bwtree::EvictMode::kFullEviction).ok());
  }
  // Break the device completely: loads must fail loudly, not crash or
  // return stale data.
  // (Reach into options: error injection is dynamic via rates read on
  // each call, so rebuild-free toggling isn't available; instead verify
  // that on a healthy device everything still reads, then break reads
  // with a fresh faulty device in the next test.)
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(tree_->Get("k" + std::to_string(i)).ok());
  }
}

TEST(FaultInjectionTest, IntermittentReadErrorsRetryCleanly) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 128ull << 20;
  dev.max_iops = 0;
  dev.read_error_rate = 0.3;  // 30% of reads fail
  auto device = std::make_unique<storage::SsdDevice>(dev);
  auto log = std::make_unique<llama::LogStructuredStore>(device.get());
  bwtree::BwTreeOptions topts;
  topts.log_store = log.get();
  bwtree::BwTree tree(topts);

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(tree.FlushAll().ok());
  for (auto pid : tree.LeafPageIds()) {
    ASSERT_TRUE(tree.EvictPage(pid, bwtree::EvictMode::kFullEviction).ok());
  }

  // Force a page load per probe (evict first): Gets either succeed or
  // report IoError; after enough attempts every key must be readable, and
  // values are never wrong.
  int io_errors = 0;
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    auto pid = tree.LeafOf(key);
    ASSERT_TRUE(pid.ok());
    (void)tree.EvictPage(*pid, bwtree::EvictMode::kFullEviction);
    bool ok = false;
    for (int attempt = 0; attempt < 100 && !ok; ++attempt) {
      auto r = tree.Get(key);
      if (r.ok()) {
        EXPECT_EQ(*r, "v");
        ok = true;
      } else {
        EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
        ++io_errors;
      }
    }
    EXPECT_TRUE(ok) << key << " unreadable after 100 attempts";
  }
  EXPECT_GT(io_errors, 0) << "fault injection did not fire";
}

TEST(FaultInjectionTest, WriteErrorsDoNotLoseResidentData) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 128ull << 20;
  dev.max_iops = 0;
  dev.write_error_rate = 1.0;  // device rejects all writes
  auto device = std::make_unique<storage::SsdDevice>(dev);
  auto log = std::make_unique<llama::LogStructuredStore>(device.get());
  bwtree::BwTreeOptions topts;
  topts.log_store = log.get();
  bwtree::BwTree tree(topts);

  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Put("k" + std::to_string(i), "v").ok());
  }
  // Flushes fail at the device...
  Status s = tree.FlushAll();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  // ...but every record is still resident and readable.
  for (int i = 0; i < 2000; ++i) {
    auto r = tree.Get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
  }
}

TEST(FaultInjectionTest, CorruptionDetectedByChecksumOnLoad) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 128ull << 20;
  dev.max_iops = 0;
  auto device = std::make_unique<storage::SsdDevice>(dev);
  auto log = std::make_unique<llama::LogStructuredStore>(device.get());
  bwtree::BwTreeOptions topts;
  topts.log_store = log.get();
  topts.max_page_bytes = 64 << 10;
  bwtree::BwTree tree(topts);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Put("key" + std::to_string(i), "value").ok());
  }
  ASSERT_TRUE(tree.FlushAll().ok());
  auto pids = tree.LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_TRUE(tree.EvictPage(pids[0], bwtree::EvictMode::kFullEviction).ok());

  // Scribble over the page's media region (bit rot).
  Random rng(3);
  std::string junk(512, '\0');
  rng.Fill(junk.data(), junk.size());
  ASSERT_TRUE(
      device->Write(llama::LogStructuredStore::kSegmentHeaderBytes + 40,
                    Slice(junk))
          .ok());

  auto r = tree.Get("key7");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption() || r.status().IsIoError())
      << r.status().ToString();
}

TEST(FaultInjectionTest, CachePressureWithTinyBudgetStaysCorrect) {
  core::CachingStoreOptions opts;
  opts.memory_budget_bytes = 64 << 10;  // absurdly small: constant churn
  opts.device.capacity_bytes = 128ull << 20;
  opts.device.max_iops = 0;
  opts.tree.max_page_bytes = 1024;
  opts.maintenance_interval_ops = 16;
  core::CachingStore store(opts);

  Random rng(44);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 5000; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(2000));
    if (rng.Bernoulli(0.6)) {
      std::string val = std::string(200, 'x') +
                        std::to_string(rng.Next() % 1000);
      ASSERT_TRUE(store.Put(key, val).ok());
      model[key] = val;
    } else {
      auto r = store.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(r.status().IsNotFound());
      } else {
        ASSERT_TRUE(r.ok()) << key << " " << r.status().ToString();
        EXPECT_EQ(*r, it->second);
      }
    }
  }
  EXPECT_GT(store.tree()->stats().full_evictions +
                store.tree()->stats().record_cache_evictions,
            100u);
}

}  // namespace
}  // namespace costperf
