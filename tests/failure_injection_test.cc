#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "bwtree/page_codec.h"
#include "common/random.h"
#include "core/caching_store.h"
#include "core/sharded_store.h"
#include "fault/fault_injector.h"

namespace costperf {
namespace {

// Fault-injection tests: device-level read/write errors must surface as
// IoError through every layer without corrupting in-memory state, and the
// stack must keep working once the fault clears.

class FaultyStackTest : public ::testing::Test {
 protected:
  void Build() {
    storage::SsdOptions dev;
    dev.capacity_bytes = 128ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    injector_ = std::make_unique<fault::FaultInjector>(17);
    injector_->Attach(device_.get());
    log_ = std::make_unique<llama::LogStructuredStore>(device_.get());
    bwtree::BwTreeOptions topts;
    topts.log_store = log_.get();
    // Keep retries fast: unit tests sleep microseconds, not milliseconds.
    topts.io_retry.initial_backoff_nanos = 1'000;
    tree_ = std::make_unique<bwtree::BwTree>(topts);
  }

  // Declaration order matters: the injector detaches (dtor) while the
  // device is still alive.
  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<bwtree::BwTree> tree_;
};

TEST_F(FaultyStackTest, LogStoreSurfacesWriteErrors) {
  Build();
  injector_->set_persistent_write_failure(true);
  // Appends buffer fine; the flush hits the device and fails.
  ASSERT_TRUE(log_->Append(1, Slice("x")).ok());
  Status s = log_->Flush();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST_F(FaultyStackTest, LogStoreSurfacesReadErrors) {
  Build();
  auto addr = log_->Append(1, Slice("payload"));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(log_->Flush().ok());
  // Break reads on the live device — runtime-armed, no rebuild needed.
  injector_->set_persistent_read_failure(true);
  std::string image;
  Status s = log_->Read(*addr, &image);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  // Clear the fault: the same address reads back intact.
  injector_->set_persistent_read_failure(false);
  ASSERT_TRUE(log_->Read(*addr, &image).ok());
  EXPECT_EQ(image, "payload");
}

TEST_F(FaultyStackTest, TreeGetReturnsIoErrorOnDeadDevice) {
  Build();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        tree_->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (auto pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, bwtree::EvictMode::kFullEviction).ok());
  }
  // Kill the read channel: loads must fail loudly (after exhausting
  // bounded retries), never crash or return stale data.
  injector_->set_persistent_read_failure(true);
  auto r = tree_->Get("k7");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
  EXPECT_GT(tree_->stats().io_retry_give_ups, 0u);
  // Fault clears: everything reads again.
  injector_->set_persistent_read_failure(false);
  for (int i = 0; i < 200; ++i) {
    auto v = tree_->Get("k" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
}

TEST_F(FaultyStackTest, IntermittentReadErrorsRetryCleanly) {
  Build();
  // 85% of reads fail: most page loads need the tree's internal retry
  // (4 attempts ~ 48% success per Get), and many need the outer loop too.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (auto pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, bwtree::EvictMode::kFullEviction).ok());
  }
  injector_->set_read_error_rate(0.85);

  int give_ups = 0;
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    bool ok = false;
    for (int attempt = 0; attempt < 200 && !ok; ++attempt) {
      auto r = tree_->Get(key);
      if (r.ok()) {
        EXPECT_EQ(*r, "v");
        ok = true;
      } else {
        EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
        ++give_ups;
      }
    }
    ASSERT_TRUE(ok) << key << " unreadable after 200 attempts";
    // Re-evict so the next key also needs a load.
    auto pid = tree_->LeafOf(key);
    ASSERT_TRUE(pid.ok());
    (void)tree_->EvictPage(*pid, bwtree::EvictMode::kFullEviction);
  }
  // The retry layer absorbed transient errors invisibly...
  EXPECT_GT(tree_->stats().io_retries, 0u) << "retries never engaged";
  // ...and at this error rate some Gets still exhausted their budget.
  EXPECT_GT(give_ups, 0) << "fault injection did not fire";
  EXPECT_EQ(tree_->stats().io_retry_give_ups, (uint64_t)give_ups);
}

TEST_F(FaultyStackTest, TransientFlushErrorsAbsorbedByRetry) {
  Build();
  // Half of writes fail; the flush path's bounded retry should ride
  // through without surfacing an error.
  injector_->set_write_error_rate(0.5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), std::string(100, 'x')).ok());
  }
  Status s = tree_->FlushAll();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(tree_->stats().io_retries, 0u);
  EXPECT_GT(injector_->stats().write_errors, 0u);
}

TEST_F(FaultyStackTest, WriteErrorsDoNotLoseResidentData) {
  Build();
  injector_->set_persistent_write_failure(true);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), "v").ok());
  }
  // Flushes fail at the device...
  Status s = tree_->FlushAll();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  // ...but every record is still resident and readable.
  for (int i = 0; i < 2000; ++i) {
    auto r = tree_->Get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
  }
  // And once the device heals, the same data flushes fine.
  injector_->set_persistent_write_failure(false);
  EXPECT_TRUE(tree_->FlushAll().ok());
}

TEST_F(FaultyStackTest, CorruptionDetectedByChecksumOnLoad) {
  Build();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Put("key" + std::to_string(i), "value").ok());
  }
  ASSERT_TRUE(tree_->FlushAll().ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_TRUE(tree_->EvictPage(pids[0], bwtree::EvictMode::kFullEviction).ok());

  // Bit rot over the page's media region. Corruption is NOT transient:
  // the load must fail without burning the whole retry budget.
  ASSERT_TRUE(
      injector_
          ->CorruptRange(llama::LogStructuredStore::kSegmentHeaderBytes + 40,
                         512, /*bits=*/9)
          .ok());
  uint64_t retries_before = tree_->stats().io_retries;
  auto r = tree_->Get("key7");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption() || r.status().IsIoError())
      << r.status().ToString();
  EXPECT_EQ(tree_->stats().io_retries, retries_before)
      << "corruption must not be retried";
}

TEST(FaultInjectionTest, CachePressureWithTinyBudgetStaysCorrect) {
  core::CachingStoreOptions opts;
  opts.memory_budget_bytes = 64 << 10;  // absurdly small: constant churn
  opts.device.capacity_bytes = 128ull << 20;
  opts.device.max_iops = 0;
  opts.tree.max_page_bytes = 1024;
  opts.maintenance_interval_ops = 16;
  core::CachingStore store(opts);

  Random rng(44);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 5000; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(2000));
    if (rng.Bernoulli(0.6)) {
      std::string val = std::string(200, 'x') +
                        std::to_string(rng.Next() % 1000);
      ASSERT_TRUE(store.Put(key, val).ok());
      model[key] = val;
    } else {
      auto r = store.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(r.status().IsNotFound());
      } else {
        ASSERT_TRUE(r.ok()) << key << " " << r.status().ToString();
        EXPECT_EQ(*r, it->second);
      }
    }
  }
  EXPECT_GT(store.tree()->stats().full_evictions +
                store.tree()->stats().record_cache_evictions,
            100u);
}

// --- degraded mode ---------------------------------------------------------

class DegradedModeTest : public ::testing::Test {
 protected:
  void Build(uint32_t threshold = 3) {
    storage::SsdOptions dev;
    dev.capacity_bytes = 64ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    injector_ = std::make_unique<fault::FaultInjector>(23);
    injector_->Attach(device_.get());
    core::CachingStoreOptions opts;
    opts.external_device = device_.get();
    opts.degrade_after_write_failures = threshold;
    opts.tree.io_retry.max_attempts = 2;  // fail fast in tests
    opts.tree.io_retry.initial_backoff_nanos = 1'000;
    store_ = std::make_unique<core::CachingStore>(opts);
  }

  // Drives the store into kDegraded via repeated failing checkpoints.
  void Degrade() {
    injector_->set_persistent_write_failure(true);
    for (int i = 0; i < 16 && store_->health() == core::HealthStatus::kHealthy;
         ++i) {
      ASSERT_TRUE(store_->Put("dirty" + std::to_string(i), "x").ok())
          << "puts are memory-only until degradation trips";
      EXPECT_FALSE(store_->Checkpoint().ok());
    }
    ASSERT_EQ(store_->health(), core::HealthStatus::kDegraded);
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<core::CachingStore> store_;
};

TEST_F(DegradedModeTest, PersistentWriteFailuresDegradeToReadOnly) {
  Build();
  ASSERT_TRUE(store_->Put("stable", "value").ok());
  ASSERT_TRUE(store_->Checkpoint().ok());
  EXPECT_EQ(store_->health(), core::HealthStatus::kHealthy);
  Degrade();

  // Writes fail fast with the original media error...
  Status w = store_->Put("rejected", "x");
  EXPECT_TRUE(w.IsIoError()) << w.ToString();
  EXPECT_TRUE(store_->Delete("stable").IsIoError());
  EXPECT_TRUE(store_->Checkpoint().IsIoError());
  // ...while reads keep serving.
  auto r = store_->Get("stable");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "value");
  EXPECT_EQ(store_->Stats().health, core::HealthStatus::kDegraded);
}

TEST_F(DegradedModeTest, ClearingFaultAloneDoesNotHeal) {
  Build();
  Degrade();
  injector_->Reset();  // media is healthy again...
  // ...but the store stays degraded until explicitly reset: silent
  // self-healing would hide the incident from the operator.
  EXPECT_EQ(store_->health(), core::HealthStatus::kDegraded);
  EXPECT_TRUE(store_->Put("still", "rejected").IsIoError());

  store_->ResetHealth();
  EXPECT_EQ(store_->health(), core::HealthStatus::kHealthy);
  ASSERT_TRUE(store_->Put("back", "alive").ok());
  ASSERT_TRUE(store_->Checkpoint().ok());
  EXPECT_EQ(*store_->Get("back"), "alive");
}

TEST_F(DegradedModeTest, ResetWhileFaultPersistsJustDegradesAgain) {
  Build();
  Degrade();
  store_->ResetHealth();  // premature: the device is still broken
  EXPECT_EQ(store_->health(), core::HealthStatus::kHealthy);
  for (int i = 0; i < 16 && store_->health() == core::HealthStatus::kHealthy;
       ++i) {
    (void)store_->Put("again" + std::to_string(i), "x");
    (void)store_->Checkpoint();
  }
  EXPECT_EQ(store_->health(), core::HealthStatus::kDegraded);
}

TEST_F(DegradedModeTest, TransientErrorsBelowThresholdDoNotDegrade) {
  Build(/*threshold=*/3);
  ASSERT_TRUE(store_->Put("k", "v").ok());
  // One failing checkpoint, then the device heals: the success resets
  // the consecutive-failure streak.
  injector_->set_persistent_write_failure(true);
  ASSERT_TRUE(store_->Put("k2", "v").ok());
  EXPECT_FALSE(store_->Checkpoint().ok());
  injector_->set_persistent_write_failure(false);
  ASSERT_TRUE(store_->Checkpoint().ok());
  EXPECT_EQ(store_->health(), core::HealthStatus::kHealthy);
}

TEST_F(DegradedModeTest, ZeroThresholdDisablesHealthTracking) {
  Build(/*threshold=*/0);
  injector_->set_persistent_write_failure(true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
    EXPECT_FALSE(store_->Checkpoint().ok());
  }
  EXPECT_EQ(store_->health(), core::HealthStatus::kHealthy)
      << "threshold 0 must never degrade";
  // Writes keep being attempted (and keep failing at the device, not at
  // the health gate).
  injector_->set_persistent_write_failure(false);
  ASSERT_TRUE(store_->Checkpoint().ok());
}

TEST(ShardedHealthTest, OneDegradedShardDoesNotTakeDownTheOthers) {
  core::CachingStoreOptions per_shard;
  per_shard.device.capacity_bytes = 32ull << 20;
  per_shard.device.max_iops = 0;
  per_shard.tree.io_retry.max_attempts = 2;
  per_shard.tree.io_retry.initial_backoff_nanos = 1'000;
  auto store = core::ShardedStore::OfCaching(2, per_shard);

  // Find keys landing on each shard.
  std::string key0, key1;
  for (int i = 0; key0.empty() || key1.empty(); ++i) {
    std::string k = "key" + std::to_string(i);
    (store->ShardIndexOf(Slice(k)) == 0 ? key0 : key1) = k;
  }

  ASSERT_TRUE(store->Put(Slice(key0), Slice("v0")).ok());
  ASSERT_TRUE(store->Put(Slice(key1), Slice("v1")).ok());

  // Break shard 0's device only.
  auto* shard0 = static_cast<core::CachingStore*>(store->shard(0));
  fault::FaultInjector fi(29);
  fi.Attach(shard0->device());
  fi.set_persistent_write_failure(true);
  for (int i = 0; i < 16 && shard0->health() == core::HealthStatus::kHealthy;
       ++i) {
    ASSERT_TRUE(store->Put(Slice(key0 + std::to_string(i)), Slice("x")).ok());
    (void)shard0->Checkpoint();
  }
  ASSERT_EQ(shard0->health(), core::HealthStatus::kDegraded);

  auto health = store->PerShardHealth();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0], core::HealthStatus::kDegraded);
  EXPECT_EQ(health[1], core::HealthStatus::kHealthy);
  // The aggregate reports degraded (any shard down)...
  EXPECT_EQ(store->Stats().health, core::HealthStatus::kDegraded);
  // ...but only shard 0's key range lost write availability.
  EXPECT_TRUE(store->Put(Slice(key0), Slice("nope")).IsIoError());
  ASSERT_TRUE(store->Put(Slice(key1), Slice("v1b")).ok());
  EXPECT_EQ(*store->Get(Slice(key1)), "v1b");
  EXPECT_EQ(*store->Get(Slice(key0)), "v0") << "reads still serve";

  fi.Detach();
}

// A torn checkpoint can leave the on-media fence chain structurally
// inconsistent: a split's source page survives with its PRE-split image
// (claiming the whole key range) while the new sibling's image was also
// adopted. The fast recovery path must reject that snapshot and the
// salvage rebuild must merge it newest-wins without losing a key. The log
// state is crafted directly so the test is deterministic — it is exactly
// what a tear between the sibling flush and the source re-flush leaves
// behind (FlushAll orders siblings first for this reason).
TEST(SalvageRecoveryTest, TornSplitCheckpointFallsBackToLosslessSalvage) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 64ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  llama::LogStructuredStore log(&device);

  // Checkpoint 1: pid 1 is the sole leaf and holds every key.
  bwtree::LeafBase full;
  full.keys = {"a", "b", "c", "d"};
  full.values = {"1", "2", "3", "4"};
  std::string img;
  bwtree::PageCodec::EncodeLeaf(full, &img);
  ASSERT_TRUE(log.Append(1, Slice(img)).ok());
  ASSERT_TRUE(log.Flush().ok());

  // Torn checkpoint 2 after pid 1 split into (pid 1, pid 2): the sibling
  // image landed, the source's re-image was torn off the adopted prefix.
  bwtree::LeafBase sib;
  sib.keys = {"c", "d"};
  sib.values = {"3x", "4x"};
  std::string sib_img;
  bwtree::PageCodec::EncodeLeaf(sib, &sib_img);
  ASSERT_TRUE(log.Append(2, Slice(sib_img)).ok());
  ASSERT_TRUE(log.Flush().ok());

  // Both adopted images claim ranges up to +infinity, so the fast path
  // sees two sibling-chain heads and must fall back to salvage.
  bwtree::BwTreeOptions topts;
  topts.log_store = &log;
  bwtree::BwTree tree(topts);
  ASSERT_TRUE(tree.RecoverFromStore().ok());
  EXPECT_EQ(tree.stats().salvage_recoveries, 1u);

  // Newest-wins: the moved keys read from the sibling's (later) image,
  // the rest from the checkpoint image. Nothing is lost.
  EXPECT_EQ(*tree.Get("a"), "1");
  EXPECT_EQ(*tree.Get("b"), "2");
  EXPECT_EQ(*tree.Get("c"), "3x");
  EXPECT_EQ(*tree.Get("d"), "4x");
}

}  // namespace
}  // namespace costperf
