#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "bwtree/bwtree.h"
#include "common/random.h"

#include <atomic>
#include <thread>

namespace costperf::bwtree {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", (unsigned long long)i);
  return buf;
}
std::string Val(uint64_t i) { return "value-" + std::to_string(i); }

class BwTreeMergeTest : public ::testing::Test {
 protected:
  void SetUpStore(uint64_t max_page_bytes = 1024) {
    storage::SsdOptions dev;
    dev.capacity_bytes = 128ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    log_ = std::make_unique<llama::LogStructuredStore>(device_.get());
    BwTreeOptions opts;
    opts.max_page_bytes = max_page_bytes;
    opts.consolidate_threshold = 4;
    opts.max_inner_children = 8;
    opts.log_store = log_.get();
    tree_ = std::make_unique<BwTree>(opts);
  }

  // Deletes a key range to leave pages underfull.
  void DeleteRange(uint64_t from, uint64_t to) {
    for (uint64_t i = from; i < to; ++i) {
      ASSERT_TRUE(tree_->Delete(Key(i)).ok());
    }
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<BwTree> tree_;
};

TEST_F(BwTreeMergeTest, ExplicitMergePreservesData) {
  SetUpStore(4096);
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  // Force a split so there are at least two leaves.
  SetUpStore(512);
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_GE(pids.size(), 2u);
  // Delete most records so the first pair fits in one page.
  DeleteRange(5, 55);
  size_t merges = tree_->MergeUnderfullLeaves(0.9);
  EXPECT_GT(merges, 0u);
  EXPECT_GT(tree_->stats().leaf_merges, 0u);
  // Every surviving record is intact.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*tree_->Get(Key(i)), Val(i));
  for (int i = 55; i < 60; ++i) EXPECT_EQ(*tree_->Get(Key(i)), Val(i));
  for (int i = 5; i < 55; ++i) {
    EXPECT_TRUE(tree_->Get(Key(i)).status().IsNotFound()) << i;
  }
  EXPECT_LT(tree_->LeafPageIds().size(), pids.size());
}

TEST_F(BwTreeMergeTest, MergeShrinksLeafCountAfterMassDelete) {
  SetUpStore(512);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  size_t leaves_before = tree_->LeafPageIds().size();
  ASSERT_GT(leaves_before, 10u);
  DeleteRange(100, 1000);
  size_t merges = tree_->MergeUnderfullLeaves();
  EXPECT_GT(merges, 5u);
  size_t leaves_after = tree_->LeafPageIds().size();
  EXPECT_LT(leaves_after, leaves_before / 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*tree_->Get(Key(i)), Val(i)) << i;
  }
  // Scans traverse the merged structure in order.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("", 2000, &out).ok());
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i].first, Key(i));
}

TEST_F(BwTreeMergeTest, RootCollapsesWhenTreeEmpties) {
  SetUpStore(512);
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  ASSERT_GT(tree_->stats().root_splits, 0u);
  DeleteRange(0, 499);  // keep one record
  for (int round = 0; round < 20; ++round) {
    if (tree_->MergeUnderfullLeaves() == 0) break;
  }
  EXPECT_GT(tree_->stats().root_collapses, 0u);
  EXPECT_EQ(*tree_->Get(Key(499)), Val(499));
  EXPECT_EQ(tree_->LeafPageIds().size(), 1u);
}

TEST_F(BwTreeMergeTest, WritesDuringMergedStateLandCorrectly) {
  SetUpStore(512);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  DeleteRange(20, 190);
  ASSERT_GT(tree_->MergeUnderfullLeaves(), 0u);
  // Write into the absorbed key ranges.
  for (int i = 50; i < 60; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), "post-merge").ok());
  }
  for (int i = 50; i < 60; ++i) {
    EXPECT_EQ(*tree_->Get(Key(i)), "post-merge");
  }
  EXPECT_EQ(*tree_->Get(Key(5)), Val(5));
  EXPECT_EQ(*tree_->Get(Key(195)), Val(195));
}

TEST_F(BwTreeMergeTest, MergedPagesFlushEvictReload) {
  SetUpStore(512);
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  DeleteRange(30, 270);
  ASSERT_GT(tree_->MergeUnderfullLeaves(), 0u);
  ASSERT_TRUE(tree_->FlushAll().ok());
  for (auto pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->EvictPage(pid, EvictMode::kFullEviction).ok());
  }
  for (int i = 0; i < 30; ++i) EXPECT_EQ(*tree_->Get(Key(i)), Val(i));
  for (int i = 270; i < 300; ++i) EXPECT_EQ(*tree_->Get(Key(i)), Val(i));
}

TEST_F(BwTreeMergeTest, MergeRefusedWhenCombinedTooBig) {
  SetUpStore(512);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  auto pids = tree_->LeafPageIds();
  ASSERT_GE(pids.size(), 2u);
  // Full pages: combined payload exceeds the page cap.
  Status s = tree_->TryMergeRight(pids[0]);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(BwTreeMergeTest, SplitThenMergeThenSplitCycle) {
  SetUpStore(512);
  std::map<std::string, std::string> model;
  Random rng(1213);
  for (int cycle = 0; cycle < 4; ++cycle) {
    // Grow.
    for (int i = 0; i < 400; ++i) {
      uint64_t k = rng.Uniform(600);
      ASSERT_TRUE(tree_->Put(Key(k), Val(cycle)).ok());
      model[Key(k)] = Val(cycle);
    }
    // Shrink.
    for (int i = 0; i < 300; ++i) {
      uint64_t k = rng.Uniform(600);
      ASSERT_TRUE(tree_->Delete(Key(k)).ok());
      model.erase(Key(k));
    }
    tree_->MergeUnderfullLeaves();
    tree_->ReclaimMemory();
    // Spot check.
    for (int i = 0; i < 100; ++i) {
      std::string key = Key(rng.Uniform(600));
      auto r = tree_->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(r.status().IsNotFound()) << key << " cycle " << cycle;
      } else {
        ASSERT_TRUE(r.ok()) << key << " cycle " << cycle;
        ASSERT_EQ(*r, it->second);
      }
    }
  }
  // Full verification with a scan.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("", model.size() + 10, &out).ok());
  ASSERT_EQ(out.size(), model.size());
  auto mit = model.begin();
  for (size_t i = 0; i < out.size(); ++i, ++mit) {
    EXPECT_EQ(out[i].first, mit->first);
    EXPECT_EQ(out[i].second, mit->second);
  }
}

TEST_F(BwTreeMergeTest, ConcurrentReadsDuringMerges) {
  SetUpStore(512);
  for (int i = 0; i < 600; ++i) ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  DeleteRange(50, 550);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::thread reader([&] {
    Random rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t k = rng.Uniform(50);  // surviving low range
      auto r = tree_->Get(Key(k));
      if (!r.ok() || *r != Val(k)) errors++;
    }
  });
  for (int round = 0; round < 10; ++round) {
    tree_->MergeUnderfullLeaves();
    tree_->ReclaimMemory();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(errors.load(), 0u);
}

}  // namespace
}  // namespace costperf::bwtree
