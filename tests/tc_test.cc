#include "tc/transaction_component.h"

#include <gtest/gtest.h>

#include <memory>

namespace costperf::tc {
namespace {

class TcTest : public ::testing::Test {
 protected:
  TcTest() {
    storage::SsdOptions dev;
    dev.capacity_bytes = 128ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    log_store_ = std::make_unique<llama::LogStructuredStore>(device_.get());
    bwtree::BwTreeOptions topts;
    topts.log_store = log_store_.get();
    dc_ = std::make_unique<bwtree::BwTree>(topts);
    recovery_log_ = std::make_unique<RecoveryLog>();
    tc_ = std::make_unique<TransactionComponent>(dc_.get(),
                                                 recovery_log_.get());
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<llama::LogStructuredStore> log_store_;
  std::unique_ptr<bwtree::BwTree> dc_;
  std::unique_ptr<RecoveryLog> recovery_log_;
  std::unique_ptr<TransactionComponent> tc_;
};

TEST_F(TcTest, CommitMakesWritesVisible) {
  Transaction* t = tc_->Begin();
  tc_->Write(t, "a", "1");
  ASSERT_TRUE(tc_->Commit(t).ok());
  std::string v;
  ASSERT_TRUE(tc_->ReadOne("a", &v).ok());
  EXPECT_EQ(v, "1");
  // And the blind post reached the data component.
  EXPECT_EQ(*dc_->Get("a"), "1");
  EXPECT_GT(tc_->stats().blind_posts_to_dc, 0u);
}

TEST_F(TcTest, ReadYourOwnWrites) {
  Transaction* t = tc_->Begin();
  tc_->Write(t, "k", "mine");
  std::string v;
  ASSERT_TRUE(tc_->Read(t, "k", &v).ok());
  EXPECT_EQ(v, "mine");
  tc_->Abort(t);
}

TEST_F(TcTest, AbortDiscardsWrites) {
  Transaction* t = tc_->Begin();
  tc_->Write(t, "k", "ghost");
  tc_->Abort(t);
  std::string v;
  EXPECT_TRUE(tc_->ReadOne("k", &v).IsNotFound());
  EXPECT_TRUE(dc_->Get("k").status().IsNotFound());
}

TEST_F(TcTest, SnapshotIsolationReadsOldVersion) {
  ASSERT_TRUE(tc_->WriteOne("k", "v1").ok());
  Transaction* reader = tc_->Begin();
  // A later writer commits v2.
  ASSERT_TRUE(tc_->WriteOne("k", "v2").ok());
  // The reader still sees v1 (its snapshot).
  std::string v;
  ASSERT_TRUE(tc_->Read(reader, "k", &v).ok());
  EXPECT_EQ(v, "v1");
  tc_->Abort(reader);
  // New transactions see v2.
  ASSERT_TRUE(tc_->ReadOne("k", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST_F(TcTest, WriteWriteConflictAborts) {
  ASSERT_TRUE(tc_->WriteOne("k", "base").ok());
  Transaction* t1 = tc_->Begin();
  Transaction* t2 = tc_->Begin();
  tc_->Write(t1, "k", "one");
  tc_->Write(t2, "k", "two");
  ASSERT_TRUE(tc_->Commit(t1).ok());
  Status s = tc_->Commit(t2);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_EQ(tc_->stats().conflicts, 1u);
  std::string v;
  ASSERT_TRUE(tc_->ReadOne("k", &v).ok());
  EXPECT_EQ(v, "one");
}

TEST_F(TcTest, DisjointWritesBothCommit) {
  Transaction* t1 = tc_->Begin();
  Transaction* t2 = tc_->Begin();
  tc_->Write(t1, "a", "1");
  tc_->Write(t2, "b", "2");
  EXPECT_TRUE(tc_->Commit(t1).ok());
  EXPECT_TRUE(tc_->Commit(t2).ok());
}

TEST_F(TcTest, TransactionalDelete) {
  ASSERT_TRUE(tc_->WriteOne("k", "v").ok());
  Transaction* t = tc_->Begin();
  tc_->Delete(t, "k");
  ASSERT_TRUE(tc_->Commit(t).ok());
  std::string v;
  EXPECT_TRUE(tc_->ReadOne("k", &v).IsNotFound());
  EXPECT_TRUE(dc_->Get("k").status().IsNotFound());
}

TEST_F(TcTest, VersionStoreServesReadsWithoutDc) {
  ASSERT_TRUE(tc_->WriteOne("hot", "cached").ok());
  uint64_t dc_reads_before = tc_->stats().reads_from_dc;
  std::string v;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tc_->ReadOne("hot", &v).ok());
    EXPECT_EQ(v, "cached");
  }
  EXPECT_EQ(tc_->stats().reads_from_dc, dc_reads_before)
      << "reads of recently updated records must hit the version store";
  EXPECT_GE(tc_->stats().reads_from_version_store, 10u);
}

TEST_F(TcTest, ReadCacheServesRepeatedDcReads) {
  // Record written directly into the DC (not through the TC), so the
  // version store knows nothing about it.
  ASSERT_TRUE(dc_->Put("dc-only", "from-dc").ok());
  std::string v;
  ASSERT_TRUE(tc_->ReadOne("dc-only", &v).ok());
  EXPECT_EQ(v, "from-dc");
  EXPECT_EQ(tc_->stats().reads_from_dc, 1u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tc_->ReadOne("dc-only", &v).ok());
  }
  EXPECT_EQ(tc_->stats().reads_from_dc, 1u)
      << "subsequent reads must come from the read cache";
  EXPECT_GE(tc_->stats().reads_from_read_cache, 5u);
}

TEST_F(TcTest, ReadCacheHitAvoidsIoOnEvictedPage) {
  // §6.3's headline: a TC record-cache hit avoids both the I/O and the
  // Bw-tree lookup.
  ASSERT_TRUE(dc_->Put("cold", "value").ok());
  std::string v;
  ASSERT_TRUE(tc_->ReadOne("cold", &v).ok());  // now in read cache
  ASSERT_TRUE(dc_->FlushAll().ok());
  for (auto pid : dc_->LeafPageIds()) {
    ASSERT_TRUE(dc_->EvictPage(pid, bwtree::EvictMode::kFullEviction).ok());
  }
  uint64_t flash_reads = dc_->stats().flash_record_reads;
  ASSERT_TRUE(tc_->ReadOne("cold", &v).ok());
  EXPECT_EQ(v, "value");
  EXPECT_EQ(dc_->stats().flash_record_reads, flash_reads)
      << "read-cache hit must not touch flash";
}

TEST_F(TcTest, RecoveryReplaysCommittedTransactions) {
  ASSERT_TRUE(tc_->WriteOne("a", "1").ok());
  ASSERT_TRUE(tc_->WriteOne("b", "2").ok());
  Transaction* t = tc_->Begin();
  tc_->Write(t, "a", "updated");
  tc_->Delete(t, "b");
  ASSERT_TRUE(tc_->Commit(t).ok());

  // "Crash": build a fresh DC and replay the durable log into it.
  storage::SsdOptions dev;
  dev.capacity_bytes = 128ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device2(dev);
  llama::LogStructuredStore log2(&device2);
  bwtree::BwTreeOptions topts;
  topts.log_store = &log2;
  bwtree::BwTree dc2(topts);
  TransactionComponent tc2(&dc2, recovery_log_.get());
  ASSERT_TRUE(tc2.RecoverFromLog().ok());

  EXPECT_EQ(*dc2.Get("a"), "updated");
  EXPECT_TRUE(dc2.Get("b").status().IsNotFound());
}

TEST_F(TcTest, RecoveryReplayIsIdempotent) {
  ASSERT_TRUE(tc_->WriteOne("a", "1").ok());
  Transaction* t = tc_->Begin();
  tc_->Write(t, "a", "2");
  tc_->Write(t, "c", "3");
  tc_->Delete(t, "a");
  ASSERT_TRUE(tc_->Commit(t).ok());

  storage::SsdOptions dev;
  dev.capacity_bytes = 128ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device2(dev);
  llama::LogStructuredStore log2(&device2);
  bwtree::BwTreeOptions topts;
  topts.log_store = &log2;
  bwtree::BwTree dc2(topts);
  TransactionComponent tc2(&dc2, recovery_log_.get());

  // Replaying twice — a crash mid-recovery followed by a second recovery
  // — must leave the DC exactly as one replay does: posts carry their
  // original commit timestamps and the DC merges newest-wins, keeping the
  // first-applied version on timestamp ties.
  ASSERT_TRUE(tc2.RecoverFromLog().ok());
  ASSERT_TRUE(tc2.RecoverFromLog().ok());
  EXPECT_TRUE(dc2.Get("a").status().IsNotFound());
  EXPECT_EQ(*dc2.Get("c"), "3");
  EXPECT_EQ(tc2.stats().log_replays, 2u);

  // Replay re-armed the timestamp clock: a post-recovery commit must win
  // over every replayed version, not be discarded as stale.
  ASSERT_TRUE(tc2.WriteOne("c", "post-recovery").ok());
  EXPECT_EQ(*dc2.Get("c"), "post-recovery");
}

TEST_F(TcTest, RecoveryIgnoresUnflushedCommits) {
  RecoveryLog log;
  log.AppendCommit({RedoRecord{1, 10, false, "x", "durable"}});
  log.Flush();
  log.AppendCommit({RedoRecord{2, 11, false, "x", "lost"}});
  // Not flushed.
  int seen = 0;
  std::string last;
  log.ReplayDurable([&](const RedoRecord& r) {
    ++seen;
    last = r.value;
  });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(last, "durable");
}

TEST_F(TcTest, PruneDropsOldPostedVersions) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tc_->WriteOne("k", "v" + std::to_string(i)).ok());
  }
  uint64_t before = tc_->version_store_bytes();
  size_t pruned = tc_->PruneVersions();
  EXPECT_GT(pruned, 0u);
  EXPECT_LT(tc_->version_store_bytes(), before);
  // Latest version still readable.
  std::string v;
  ASSERT_TRUE(tc_->ReadOne("k", &v).ok());
  EXPECT_EQ(v, "v19");
}

TEST_F(TcTest, PruneKeepsVersionsVisibleToActiveTxns) {
  ASSERT_TRUE(tc_->WriteOne("k", "old").ok());
  Transaction* reader = tc_->Begin();
  ASSERT_TRUE(tc_->WriteOne("k", "new").ok());
  tc_->PruneVersions();
  std::string v;
  ASSERT_TRUE(tc_->Read(reader, "k", &v).ok());
  EXPECT_EQ(v, "old") << "active snapshot must survive pruning";
  tc_->Abort(reader);
}

TEST_F(TcTest, ReadCacheEvictsUnderPressure) {
  TcOptions opts;
  opts.read_cache_bytes = 1024;
  TransactionComponent small_tc(dc_.get(), recovery_log_.get(), opts);
  for (int i = 0; i < 50; ++i) {
    std::string key = "rc" + std::to_string(i);
    ASSERT_TRUE(dc_->Put(key, std::string(100, 'x')).ok());
    std::string v;
    ASSERT_TRUE(small_tc.ReadOne(key, &v).ok());
  }
  EXPECT_LE(small_tc.read_cache_bytes(), 1024u + 200u);
}

TEST_F(TcTest, StatsAccounting) {
  Transaction* t = tc_->Begin();
  tc_->Write(t, "a", "1");
  ASSERT_TRUE(tc_->Commit(t).ok());
  auto s = tc_->stats();
  EXPECT_EQ(s.begun, 1u);
  EXPECT_EQ(s.committed, 1u);
  EXPECT_EQ(s.writes, 1u);
}

}  // namespace
}  // namespace costperf::tc
