#include "maintenance/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/caching_store.h"
#include "core/sharded_store.h"
#include "workload/runner.h"

namespace costperf {
namespace {

using maintenance::BackgroundMaintainer;
using maintenance::MaintenanceQuota;
using maintenance::MaintenanceScheduler;

// Spin-waits (with sleeps) for cond() to hold; generous bound so slow
// sanitizer lanes don't flake.
template <typename Cond>
bool WaitFor(Cond cond, int timeout_ms = 30000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class CountingMaintainer : public BackgroundMaintainer {
 public:
  // Returns true ("more work") while steps taken < more_until.
  explicit CountingMaintainer(int more_until = 0)
      : more_until_(more_until) {}

  bool MaintenanceStep(const MaintenanceQuota&) override {
    const int n = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    return n < more_until_;
  }

  int steps() const { return steps_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> steps_{0};
  const int more_until_;
};

// Blocks inside MaintenanceStep until Release() so tests can observe
// in-flight-step behavior (Deregister/Quiesce races).
class BlockingMaintainer : public BackgroundMaintainer {
 public:
  bool MaintenanceStep(const MaintenanceQuota&) override {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    steps_++;
    return false;
  }

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_; });
  }

  void Release() {
    std::unique_lock<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  int steps() {
    std::unique_lock<std::mutex> lock(mu_);
    return steps_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
  int steps_ = 0;
};

TEST(MaintenanceSchedulerTest, SignalDrivesStepAndQuiesceDrains) {
  MaintenanceScheduler sched;
  CountingMaintainer m;
  auto h = sched.Register(&m);
  sched.Signal(h);
  sched.Quiesce();
  EXPECT_GE(m.steps(), 1);
  sched.Deregister(h);
}

TEST(MaintenanceSchedulerTest, CoalescesBurstsToFewSteps) {
  MaintenanceScheduler sched;
  BlockingMaintainer m;
  auto h = sched.Register(&m);
  sched.Signal(h);
  m.AwaitEntered();
  // The worker is mid-step: these all land on the pending flag and must
  // collapse into at most one follow-up step.
  for (int i = 0; i < 1000; ++i) sched.Signal(h);
  m.Release();
  sched.Quiesce();
  EXPECT_LE(m.steps(), 2);
  const auto stats = sched.stats();
  EXPECT_GT(stats.coalesced, 0u);
  EXPECT_EQ(stats.steps, static_cast<uint64_t>(m.steps()));
  sched.Deregister(h);
}

TEST(MaintenanceSchedulerTest, RequeuesWhileStepReportsMoreWork) {
  MaintenanceScheduler sched;
  CountingMaintainer m(/*more_until=*/7);
  auto h = sched.Register(&m);
  sched.Signal(h);  // one signal; the requeue path does the rest
  sched.Quiesce();
  EXPECT_EQ(m.steps(), 7);
  EXPECT_EQ(sched.stats().requeues, 6u);
  sched.Deregister(h);
}

TEST(MaintenanceSchedulerTest, DeregisterWaitsForInflightStep) {
  MaintenanceScheduler sched;
  BlockingMaintainer m;
  auto h = sched.Register(&m);
  sched.Signal(h);
  m.AwaitEntered();

  std::atomic<bool> deregistered{false};
  std::thread t([&] {
    sched.Deregister(h);
    deregistered.store(true, std::memory_order_release);
  });
  // Deregister must block while the step is inside the maintainer.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(deregistered.load(std::memory_order_acquire));
  m.Release();
  t.join();
  EXPECT_TRUE(deregistered.load(std::memory_order_acquire));
  // A late signal on a tombstoned handle must be a safe no-op (and must
  // not wedge Quiesce on an unclaimable pending flag).
  sched.Signal(h);
  sched.Quiesce();
  EXPECT_EQ(m.steps(), 1);
}

TEST(MaintenanceSchedulerTest, QuiesceWaitsForInflightStep) {
  MaintenanceScheduler sched;
  BlockingMaintainer m;
  auto h = sched.Register(&m);
  sched.Signal(h);
  m.AwaitEntered();

  std::atomic<bool> quiesced{false};
  std::thread t([&] {
    sched.Quiesce();
    quiesced.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(quiesced.load(std::memory_order_acquire));
  m.Release();
  t.join();
  EXPECT_TRUE(quiesced.load(std::memory_order_acquire));
  sched.Deregister(h);
}

TEST(MaintenanceSchedulerTest, StopJoinsWorkersAndDropsQueuedWork) {
  auto sched = std::make_unique<MaintenanceScheduler>();
  CountingMaintainer m;
  auto h = sched->Register(&m);
  sched->Signal(h);
  sched->Stop();
  sched->Stop();  // idempotent
  sched->Signal(h);  // no-op after Stop
  sched->Quiesce();  // returns immediately after Stop
  sched.reset();
}

TEST(MaintenanceSchedulerTest, MultipleWorkersShareSources) {
  MaintenanceScheduler::Options opts;
  opts.workers = 4;
  MaintenanceScheduler sched(opts);
  CountingMaintainer a(3), b(3), c(3);
  auto ha = sched.Register(&a);
  auto hb = sched.Register(&b);
  auto hc = sched.Register(&c);
  sched.Signal(ha);
  sched.Signal(hb);
  sched.Signal(hc);
  sched.Quiesce();
  EXPECT_EQ(a.steps() + b.steps() + c.steps(), 9);
  sched.Deregister(ha);
  sched.Deregister(hb);
  sched.Deregister(hc);
}

// ---- CachingStore integration -------------------------------------------

core::CachingStoreOptions SmallBudgetOptions() {
  core::CachingStoreOptions opts;
  opts.memory_budget_bytes = 256 << 10;
  opts.tree.max_page_bytes = 4 << 10;
  opts.log.segment_bytes = 64 << 10;
  opts.device.capacity_bytes = 256ull << 20;
  opts.device.max_iops = 0;
  return opts;
}

TEST(BackgroundMaintenanceTest, EvictsToBudgetWithZeroForegroundOps) {
  auto opts = SmallBudgetOptions();
  opts.background.workers = 1;
  core::CachingStore store(opts);
  ASSERT_NE(store.maintenance_scheduler(), nullptr);

  const std::string value(512, 'v');
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(store.Put("key" + std::to_string(i), value).ok());
  }
  // Background eviction must bring the resident set back to budget
  // without any foreground thread running maintenance. The Gets keep the
  // op path signalling pressure while we wait.
  ASSERT_TRUE(WaitFor([&] {
    for (int i = 0; i < 64; ++i) (void)store.Get("key0");
    return store.cache()->resident_bytes() <= opts.memory_budget_bytes;
  })) << "resident=" << store.cache()->resident_bytes();
  store.maintenance_scheduler()->Quiesce();

  const auto stats = store.Stats();
  EXPECT_EQ(stats.foreground_maintenance_ops, 0u);
  EXPECT_GT(stats.background_maintenance_steps, 0u);
  EXPECT_GT(stats.background_pages_evicted, 0u);

  // Data survives eviction.
  EXPECT_EQ(*store.Get("key0"), value);
  EXPECT_EQ(*store.Get("key3999"), value);
}

TEST(BackgroundMaintenanceTest, GcTriggersOnDeadSpaceFraction) {
  auto opts = SmallBudgetOptions();
  opts.memory_budget_bytes = 128 << 10;  // eviction keeps flash churning
  opts.background.workers = 1;
  opts.background.log_dead_trigger = 0.3;
  opts.gc_live_threshold = 0.8;
  core::CachingStore store(opts);

  const std::string value(512, 'v');
  // Overwrite a small key set many times: each eviction/flush rewrites
  // pages, deadening the previous flash images.
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(store.Put("key" + std::to_string(i), value).ok());
    }
  }
  store.maintenance_scheduler()->Quiesce();
  const auto stats = store.Stats();
  EXPECT_EQ(stats.foreground_maintenance_ops, 0u);
  if (stats.background_gc_segments > 0) {
    // GC ran in the background; dead space must not still be saturated.
    EXPECT_LT(store.log_store()->DeadSpaceFraction(), 0.95);
  }
  // Either way the data is intact.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(store.Get("key" + std::to_string(i)).ok()) << i;
  }
}

TEST(BackgroundMaintenanceTest, WriteBackpressureStallsAndReleases) {
  auto opts = SmallBudgetOptions();
  opts.memory_budget_bytes = 64 << 10;
  opts.background.workers = 1;
  // One page per step: the worker cannot keep up with the burst, so the
  // stall budget is guaranteed to engage.
  opts.background.quota.evict_pages = 1;
  opts.background.stall_trigger = 1.0;  // stall as soon as budget exceeded
  opts.background.stall_max_wait_micros = 2000;
  core::CachingStore store(opts);

  const std::string value(1024, 'v');
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(store.Put("key" + std::to_string(i), value).ok());
  }
  store.maintenance_scheduler()->Quiesce();
  const auto stats = store.Stats();
  // The write burst outpaces one worker: stalls must have engaged, and
  // every stalled write still completed (bounded waits, no deadlock).
  EXPECT_GT(stats.write_stalls, 0u);
  EXPECT_GT(stats.stall_micros_total, 0u);
  EXPECT_EQ(stats.foreground_maintenance_ops, 0u);
  EXPECT_EQ(*store.Get("key2999"), value);
}

TEST(BackgroundMaintenanceTest, ExternalSchedulerSharedAcrossStores) {
  MaintenanceScheduler sched;
  auto opts = SmallBudgetOptions();
  opts.background.scheduler = &sched;
  {
    core::CachingStore a(opts);
    core::CachingStore b(opts);
    EXPECT_EQ(a.maintenance_scheduler(), &sched);
    EXPECT_EQ(b.maintenance_scheduler(), &sched);
    const std::string value(512, 'v');
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(a.Put("a" + std::to_string(i), value).ok());
      ASSERT_TRUE(b.Put("b" + std::to_string(i), value).ok());
    }
    sched.Quiesce();
    // Stores deregister on destruction here, while sched outlives them.
  }
  SUCCEED();
}

TEST(BackgroundMaintenanceTest, ShardedStoreOwnsOneSharedScheduler) {
  auto opts = SmallBudgetOptions();
  opts.background.workers = 2;
  auto store = core::ShardedStore::OfCaching(4, opts);
  ASSERT_NE(store->maintenance_scheduler(), nullptr);
  // Every shard registered with the composite's scheduler, not a
  // private one.
  for (size_t i = 0; i < store->shard_count(); ++i) {
    auto* shard = static_cast<core::CachingStore*>(store->shard(i));
    EXPECT_EQ(shard->maintenance_scheduler(), store->maintenance_scheduler());
  }

  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbA(2000);
  spec.record_count = 2000;
  spec.value_size = 256;
  workload::RunnerOptions ropts;
  ropts.threads = 4;
  ropts.ops_per_thread = 2000;
  workload::Runner runner(store.get(), spec, ropts);
  auto report = runner.LoadAndRun();
  EXPECT_EQ(report.failed_ops, 0u);
  EXPECT_EQ(report.foreground_maintenance_ops, 0u);
  store->maintenance_scheduler()->Quiesce();
  EXPECT_EQ(store->Stats().foreground_maintenance_ops, 0u);
}

TEST(BackgroundMaintenanceTest, InlineModeStillMaintainsAndCountsOps) {
  auto opts = SmallBudgetOptions();
  // Deprecated alias path: a non-power-of-two interval must still pace
  // inline maintenance through the modulo branch.
  opts.maintenance_interval_ops = 100;
  core::CachingStore store(opts);
  EXPECT_EQ(store.maintenance_scheduler(), nullptr);

  const std::string value(512, 'v');
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Put("key" + std::to_string(i), value).ok());
  }
  const auto stats = store.Stats();
  EXPECT_GT(stats.foreground_maintenance_ops, 0u);
  EXPECT_EQ(stats.background_maintenance_steps, 0u);
  // Inline maintenance enforced the budget on the op path (a single
  // pass may leave a few unevictable victims resident, so check
  // activity, not an exact byte bound).
  EXPECT_GT(store.cache()->stats().evictions, 0u);
}

}  // namespace
}  // namespace costperf
