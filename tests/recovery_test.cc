#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "core/caching_store.h"

namespace costperf::core {
namespace {

// Restart/recovery tests: a CachingStore writes and checkpoints, then a
// second store attaches to the same device and rebuilds the tree from the
// log-structured media.

CachingStoreOptions BaseOptions() {
  CachingStoreOptions o;
  o.device.capacity_bytes = 256ull << 20;
  o.device.max_iops = 0;
  o.tree.max_page_bytes = 1024;
  o.maintenance_interval_ops = 0;
  return o;
}

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", (unsigned long long)i);
  return buf;
}

TEST(RecoveryTest, CheckpointedDataSurvivesRestart) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);

  CachingStoreOptions opts = BaseOptions();
  opts.external_device = &device;
  {
    CachingStore store(opts);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(store.Put(Key(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }  // "crash"

  CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  for (int i = 0; i < 2000; ++i) {
    auto r = reopened.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(*r, "v" + std::to_string(i));
  }
  // Point lookups on absent keys still work.
  EXPECT_TRUE(reopened.Get("zzz").status().IsNotFound());
}

TEST(RecoveryTest, UnflushedWritesAreLost) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  CachingStoreOptions opts = BaseOptions();
  opts.external_device = &device;
  {
    CachingStore store(opts);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(store.Put(Key(i), "durable").ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
    // Post-checkpoint updates never reach the device.
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(store.Put(Key(i), "volatile").ok());
    }
  }
  CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  EXPECT_EQ(*reopened.Get(Key(123)), "durable");
}

TEST(RecoveryTest, LatestCheckpointWins) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  CachingStoreOptions opts = BaseOptions();
  opts.external_device = &device;
  {
    CachingStore store(opts);
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(store.Put(Key(i), "v1").ok());
    ASSERT_TRUE(store.Checkpoint().ok());
    for (int i = 0; i < 1000; i += 2) {
      ASSERT_TRUE(store.Put(Key(i), "v2").ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*reopened.Get(Key(i)), i % 2 == 0 ? "v2" : "v1") << i;
  }
}

TEST(RecoveryTest, DeltaPagesRecovered) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  CachingStoreOptions opts = BaseOptions();
  opts.tree.max_page_bytes = 64 << 10;  // one big page
  opts.external_device = &device;
  {
    CachingStore store(opts);
    for (int i = 0; i < 200; ++i) ASSERT_TRUE(store.Put(Key(i), "base").ok());
    ASSERT_TRUE(store.EvictAll().ok());
    // Blind updates + delta-only flush: the newest on-media image is a
    // delta page chained to the base.
    ASSERT_TRUE(store.Put(Key(7), "delta-update").ok());
    auto pids = store.tree()->LeafPageIds();
    ASSERT_EQ(pids.size(), 1u);
    ASSERT_TRUE(
        store.tree()->FlushPage(pids[0], bwtree::FlushMode::kDeltaOnly).ok());
    ASSERT_TRUE(store.log_store()->Flush().ok());
  }
  CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  EXPECT_EQ(*reopened.Get(Key(7)), "delta-update");
  EXPECT_EQ(*reopened.Get(Key(8)), "base");
}

TEST(RecoveryTest, EmptyStoreRecoversEmpty) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 64ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  CachingStoreOptions opts = BaseOptions();
  opts.external_device = &device;
  CachingStore store(opts);
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_TRUE(store.Get("anything").status().IsNotFound());
  // And the recovered (empty) store is writable.
  ASSERT_TRUE(store.Put("a", "1").ok());
  EXPECT_EQ(*store.Get("a"), "1");
}

TEST(RecoveryTest, RecoveredStoreAcceptsNewWritesAndSplits) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  CachingStoreOptions opts = BaseOptions();
  opts.external_device = &device;
  {
    CachingStore store(opts);
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(store.Put(Key(i), "old").ok());
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  // Grow the keyspace 3x to force fresh splits on recovered pages.
  for (int i = 1000; i < 4000; ++i) {
    ASSERT_TRUE(reopened.Put(Key(i), "new").ok());
  }
  Random rng(5);
  for (int t = 0; t < 1000; ++t) {
    uint64_t i = rng.Uniform(4000);
    auto r = reopened.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(*r, i < 1000 ? "old" : "new");
  }
  // Scans traverse the rebuilt B-link chain.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(reopened.Scan(Key(0), 4000, &out).ok());
  EXPECT_EQ(out.size(), 4000u);
}

TEST(RecoveryTest, RecoveryAfterGc) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  CachingStoreOptions opts = BaseOptions();
  opts.external_device = &device;
  {
    CachingStore store(opts);
    std::string big(300, 'x');
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 1500; ++i) {
        ASSERT_TRUE(store.Put(Key(i), big + std::to_string(round)).ok());
      }
      ASSERT_TRUE(store.Checkpoint().ok());
    }
    ASSERT_TRUE(store.RunGc(0.6).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  std::string big(300, 'x');
  for (int i = 0; i < 1500; i += 13) {
    auto r = reopened.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(*r, big + "2");
  }
}

TEST(RecoveryTest, RandomizedEndToEnd) {
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  CachingStoreOptions opts = BaseOptions();
  opts.external_device = &device;

  std::map<std::string, std::string> model;
  Random rng(909);
  {
    CachingStore store(opts);
    for (int op = 0; op < 8000; ++op) {
      std::string key = Key(rng.Uniform(700));
      if (rng.Bernoulli(0.7)) {
        std::string val = "v" + std::to_string(rng.Next() % 100000);
        ASSERT_TRUE(store.Put(key, val).ok());
        model[key] = val;
      } else {
        ASSERT_TRUE(store.Delete(key).ok());
        model.erase(key);
      }
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  for (int i = 0; i < 700; ++i) {
    std::string key = Key(i);
    auto r = reopened.Get(key);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(r.status().IsNotFound()) << key;
    } else {
      ASSERT_TRUE(r.ok()) << key;
      EXPECT_EQ(*r, it->second);
    }
  }
}

}  // namespace
}  // namespace costperf::core
