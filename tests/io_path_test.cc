#include "storage/io_path.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"

namespace costperf::storage {
namespace {

TEST(IoPathTest, ExecuteReturnsConfiguredUnits) {
  IoPathOptions o;
  o.user_level_units = 100;
  o.os_mediated_units = 300;
  IoPathSimulator sim(o);
  std::vector<char> buf(512);
  EXPECT_EQ(sim.Execute(IoPathKind::kUserLevel, buf.data(), buf.size()), 100u);
  EXPECT_EQ(sim.Execute(IoPathKind::kOsMediated, buf.data(), buf.size()),
            300u);
}

TEST(IoPathTest, OsPathCostsMoreCpuThanUserPath) {
  IoPathSimulator sim;  // default calibration
  std::vector<char> buf(4096);
  constexpr int kIters = 3000;

  uint64_t t0 = ThreadCpuNanos();
  for (int i = 0; i < kIters; ++i) {
    sim.Execute(IoPathKind::kUserLevel, buf.data(), buf.size());
  }
  uint64_t user_cpu = ThreadCpuNanos() - t0;

  t0 = ThreadCpuNanos();
  for (int i = 0; i < kIters; ++i) {
    sim.Execute(IoPathKind::kOsMediated, buf.data(), buf.size());
  }
  uint64_t os_cpu = ThreadCpuNanos() - t0;

  EXPECT_GT(os_cpu, user_cpu * 2)
      << "OS-mediated path should cost well over 2x user-level CPU";
}

TEST(IoPathTest, OsExtraCopyPreservesData) {
  IoPathSimulator sim;
  std::vector<char> buf(1024);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<char>(i);
  sim.Execute(IoPathKind::kOsMediated, buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], static_cast<char>(i));
  }
}

TEST(IoPathTest, NullTransferIsSafe) {
  IoPathSimulator sim;
  EXPECT_EQ(sim.Execute(IoPathKind::kOsMediated, nullptr, 0),
            sim.options().os_mediated_units);
}

TEST(IoPathTest, BurnWorkScalesRoughlyLinearly) {
  // 10x the units should cost noticeably more CPU (not asserting exact
  // linearity; CI machines jitter).
  uint64_t t0 = ThreadCpuNanos();
  BurnWork(1'000'000);
  uint64_t small = ThreadCpuNanos() - t0;
  t0 = ThreadCpuNanos();
  BurnWork(10'000'000);
  uint64_t large = ThreadCpuNanos() - t0;
  EXPECT_GT(large, small * 4);
}

TEST(IoPathTest, MeasureNanosPerUnitIsPositiveAndSane) {
  double npu = IoPathSimulator::MeasureNanosPerUnit();
  EXPECT_GT(npu, 0.01);
  EXPECT_LT(npu, 1000.0);
}

}  // namespace
}  // namespace costperf::storage
