#include "mapping/mapping_table.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace costperf::mapping {
namespace {

TEST(MappingTableTest, AllocateReturnsDistinctIds) {
  MappingTable t(128);
  std::set<PageId> ids;
  for (int i = 0; i < 100; ++i) {
    PageId id = t.Allocate();
    ASSERT_NE(id, kInvalidPageId);
    EXPECT_TRUE(ids.insert(id).second);
  }
  EXPECT_EQ(t.live_pages(), 100u);
}

TEST(MappingTableTest, AllocateInitializesEntry) {
  MappingTable t(16);
  PageId id = t.Allocate(0xABCD);
  EXPECT_EQ(t.Get(id), 0xABCDu);
}

TEST(MappingTableTest, FreedIdsAreReused) {
  MappingTable t(16);
  PageId a = t.Allocate(1);
  t.Free(a);
  PageId b = t.Allocate(2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.Get(b), 2u);
}

TEST(MappingTableTest, ExhaustionReturnsInvalid) {
  MappingTable t(4);
  for (int i = 0; i < 4; ++i) ASSERT_NE(t.Allocate(), kInvalidPageId);
  EXPECT_EQ(t.Allocate(), kInvalidPageId);
  // Freeing restores capacity.
  t.Free(2);
  EXPECT_NE(t.Allocate(), kInvalidPageId);
}

TEST(MappingTableTest, CasSucceedsOnMatch) {
  MappingTable t(16);
  PageId id = t.Allocate(10);
  EXPECT_TRUE(t.Cas(id, 10, 20));
  EXPECT_EQ(t.Get(id), 20u);
}

TEST(MappingTableTest, CasFailsOnMismatch) {
  MappingTable t(16);
  PageId id = t.Allocate(10);
  EXPECT_FALSE(t.Cas(id, 11, 20));
  EXPECT_EQ(t.Get(id), 10u);
}

TEST(MappingTableTest, SetOverwrites) {
  MappingTable t(16);
  PageId id = t.Allocate(1);
  t.Set(id, 99);
  EXPECT_EQ(t.Get(id), 99u);
}

TEST(MappingTableTest, ConcurrentCasExactlyOneWinnerPerRound) {
  MappingTable t(16);
  PageId id = t.Allocate(0);
  constexpr int kThreads = 4;
  constexpr uint64_t kRounds = 10000;
  std::vector<uint64_t> wins(kThreads, 0);
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (uint64_t round = 0; round < kRounds; ++round) {
        // Everyone tries to advance round -> round+1; exactly one CAS may
        // succeed per round.
        if (t.Cas(id, round, round + 1)) wins[ti]++;
        while (t.Get(id) <= round) {
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (auto w : wins) total += w;
  EXPECT_EQ(total, kRounds);
  EXPECT_EQ(t.Get(id), kRounds);
}

TEST(MappingTableTest, ConcurrentAllocateUnique) {
  MappingTable t(10000);
  constexpr int kThreads = 4;
  std::vector<std::vector<PageId>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (int i = 0; i < 2000; ++i) {
        per_thread[ti].push_back(t.Allocate());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<PageId> all;
  for (auto& v : per_thread) {
    for (PageId id : v) {
      ASSERT_NE(id, kInvalidPageId);
      EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(all.size(), size_t{kThreads} * 2000);
}

TEST(MappingTableTest, HighWaterTracksBumpAllocations) {
  MappingTable t(64);
  EXPECT_EQ(t.high_water(), 0u);
  t.Allocate();
  t.Allocate();
  EXPECT_EQ(t.high_water(), 2u);
  t.Free(0);
  t.Allocate();  // reused, no bump
  EXPECT_EQ(t.high_water(), 2u);
}

}  // namespace
}  // namespace costperf::mapping
