#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace costperf {
namespace {

// Policy with an injected sleep recorder: tests observe the exact backoff
// sequence instead of waiting it out.
RetryPolicy RecordingPolicy(std::vector<uint64_t>* sleeps) {
  RetryPolicy p;
  p.max_attempts = 4;
  p.initial_backoff_nanos = 100;
  p.multiplier = 2.0;
  p.jitter = 0.0;  // deterministic backoffs
  p.sleep = [sleeps](uint64_t nanos) { sleeps->push_back(nanos); };
  return p;
}

TEST(RetryTest, TransientClassification) {
  EXPECT_TRUE(IsTransientError(Status::IoError("disk glitch")));
  EXPECT_TRUE(IsTransientError(Status::Unavailable("busy")));
  EXPECT_FALSE(IsTransientError(Status::Ok()));
  EXPECT_FALSE(IsTransientError(Status::Corruption("bad crc")));
  EXPECT_FALSE(IsTransientError(Status::Aborted("cas lost")));
  EXPECT_FALSE(IsTransientError(Status::NotFound()));
}

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  std::vector<uint64_t> sleeps;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(RecordingPolicy(&sleeps), [&]() {
    ++calls;
    return Status::Ok();
  }, &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_FALSE(stats.gave_up);
}

TEST(RetryTest, ExponentialBackoffSequence) {
  std::vector<uint64_t> sleeps;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(RecordingPolicy(&sleeps), [&]() {
    ++calls;
    return Status::IoError("always");
  }, &stats);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(calls, 4);
  // 3 sleeps between 4 attempts, doubling from 100ns, no jitter.
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_EQ(sleeps[0], 100u);
  EXPECT_EQ(sleeps[1], 200u);
  EXPECT_EQ(sleeps[2], 400u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.backoff_nanos, 700u);
  EXPECT_TRUE(stats.gave_up);
}

TEST(RetryTest, SucceedsMidSequence) {
  std::vector<uint64_t> sleeps;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(RecordingPolicy(&sleeps), [&]() {
    ++calls;
    return calls < 3 ? Status::IoError("flaky") : Status::Ok();
  }, &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_FALSE(stats.gave_up);
}

TEST(RetryTest, NonTransientErrorsReturnImmediately) {
  std::vector<uint64_t> sleeps;
  int calls = 0;
  Status s = RetryTransient(RecordingPolicy(&sleeps), [&]() {
    ++calls;
    return Status::Corruption("never retry this");
  });
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1) << "corruption must not be retried";
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, JitterShrinksBackoffDeterministically) {
  std::vector<uint64_t> sleeps1, sleeps2;
  RetryPolicy p = RecordingPolicy(&sleeps1);
  p.jitter = 0.5;
  auto fail = []() { return Status::IoError("x"); };
  (void)RetryTransient(p, fail);
  p.sleep = [&sleeps2](uint64_t nanos) { sleeps2.push_back(nanos); };
  (void)RetryTransient(p, fail);
  // Same seed + salt => identical jittered sequence; every backoff lands
  // in ((1-jitter)*base, base].
  EXPECT_EQ(sleeps1, sleeps2);
  ASSERT_EQ(sleeps1.size(), 3u);
  uint64_t base = 100;
  for (uint64_t nanos : sleeps1) {
    EXPECT_GT(nanos, base / 2);
    EXPECT_LE(nanos, base);
    base *= 2;
  }
}

TEST(RetryTest, SaltVariesTheJitterStream) {
  std::vector<uint64_t> a, b;
  RetryPolicy p;
  p.max_attempts = 4;
  p.initial_backoff_nanos = 1'000'000;
  p.jitter = 0.9;
  auto fail = []() { return Status::IoError("x"); };
  p.sleep = [&a](uint64_t nanos) { a.push_back(nanos); };
  (void)RetryTransient(p, fail, nullptr, /*seed_salt=*/1);
  p.sleep = [&b](uint64_t nanos) { b.push_back(nanos); };
  (void)RetryTransient(p, fail, nullptr, /*seed_salt=*/2);
  EXPECT_NE(a, b) << "different salts must decorrelate concurrent retriers";
}

TEST(RetryTest, ZeroAttemptsStillRunsOnce) {
  RetryPolicy p;
  p.max_attempts = 0;
  p.sleep = [](uint64_t) {};
  int calls = 0;
  Status s = RetryTransient(p, [&]() {
    ++calls;
    return Status::IoError("x");
  });
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace costperf
