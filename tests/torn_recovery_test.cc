#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "analysis/log_store_auditor.h"
#include "compression/compressor.h"
#include "fault/fault_injector.h"
#include "llama/log_store.h"

namespace costperf::llama {
namespace {

// Crash-consistency tests for LogStructuredStore::Recover(): a crash can
// tear the tail of a segment write, and bad media can corrupt a record in
// the middle of an otherwise valid segment. Recovery must adopt exactly
// the decodable prefix/records, report what it dropped, and leave the
// store's accounting clean (LogStoreAuditor).

constexpr uint64_t kSeg = 16 << 10;

storage::SsdOptions SmallDevice() {
  storage::SsdOptions o;
  o.capacity_bytes = 4ull << 20;
  o.max_iops = 0;
  return o;
}

LogStoreOptions SmallSegments() {
  LogStoreOptions o;
  o.segment_bytes = kSeg;
  return o;
}

// Recovers a fresh store over `device` and returns pid -> payload
// (log-order last-wins, as BwTree consumes it).
std::map<PageId, std::string> RecoverAll(storage::SsdDevice* device,
                                         LogStructuredStore* store,
                                         RecoveryReport* report) {
  std::map<PageId, std::string> out;
  Status s = store->Recover(
      [&](PageId pid, FlashAddress, const Slice& payload) {
        out[pid] = std::string(payload.data(), payload.size());
      },
      report);
  EXPECT_TRUE(s.ok()) << s.ToString();
  (void)device;
  return out;
}

void ExpectAuditClean(LogStructuredStore* store) {
  analysis::LogStoreAuditor auditor(store);
  auto violations = auditor.Check();
  EXPECT_TRUE(violations.empty());
  for (const auto& v : violations) {
    ADD_FAILURE() << v.ToString();
  }
}

TEST(TornRecoveryTest, TornTailIsTruncatedValidPrefixAdopted) {
  storage::SsdDevice device(SmallDevice());
  fault::FaultInjector fi;
  fi.Attach(&device);

  const std::string payload(200, 'A');  // 225-byte records (25B header)
  {
    LogStructuredStore store(&device, SmallSegments());
    for (PageId pid = 1; pid <= 20; ++pid) {
      ASSERT_TRUE(store.Append(pid, Slice(payload)).ok());
    }
    ASSERT_TRUE(store.Flush().ok());  // segment 0 sealed, intact
    for (PageId pid = 21; pid <= 40; ++pid) {
      ASSERT_TRUE(store.Append(pid, Slice(payload)).ok());
    }
    // Crash halfway through segment 1's device write. Buffer is
    // 12 + 20*225 = 4512 bytes; 2256 persist: the header plus 9 full
    // records (12 + 9*225 = 2037) and a torn 10th.
    fi.ScheduleCrash(/*writes=*/0, /*torn_fraction=*/0.5);
    EXPECT_TRUE(store.Flush().IsIoError());
  }
  fi.ClearCrash();

  LogStructuredStore reopened(&device, SmallSegments());
  RecoveryReport report;
  auto recovered = RecoverAll(&device, &reopened, &report);

  EXPECT_EQ(report.segments_scanned, 2u);
  EXPECT_EQ(report.torn_segments, 1u);
  EXPECT_GT(report.bytes_truncated, 0u);
  EXPECT_EQ(report.corrupt_records_skipped, 0u);
  EXPECT_EQ(report.records_adopted, 29u) << report.ToString();
  // Everything adopted reads back exactly; nothing fabricated.
  ASSERT_EQ(recovered.size(), 29u);
  for (PageId pid = 1; pid <= 29; ++pid) {
    ASSERT_TRUE(recovered.count(pid)) << pid;
    EXPECT_EQ(recovered[pid], payload) << pid;
  }
  ExpectAuditClean(&reopened);

  // The reopened log appends past everything recovered.
  EXPECT_GE(reopened.open_segment_id(), 2u);
  ASSERT_TRUE(reopened.Append(99, Slice(payload)).ok());
  ASSERT_TRUE(reopened.Flush().ok());
  ExpectAuditClean(&reopened);
}

TEST(TornRecoveryTest, CorruptMidSegmentRecordSkippedLaterRecordsAdopted) {
  storage::SsdDevice device(SmallDevice());
  fault::FaultInjector fi(3);
  fi.Attach(&device);

  const std::string payload(200, 'B');
  {
    LogStructuredStore store(&device, SmallSegments());
    for (PageId pid = 0; pid < 10; ++pid) {
      ASSERT_TRUE(store.Append(pid + 100, Slice(payload)).ok());
    }
    ASSERT_TRUE(store.Flush().ok());
  }
  // Flip one bit inside record 3's payload: seg header (12) + 3 records
  // (3*225) + record header (25) lands in its payload.
  constexpr uint64_t kRec3Payload = 12 + 3 * 225 + 25;
  ASSERT_TRUE(fi.CorruptRange(kRec3Payload, 50, /*bits=*/1).ok());

  LogStructuredStore reopened(&device, SmallSegments());
  RecoveryReport report;
  auto recovered = RecoverAll(&device, &reopened, &report);

  // Mid-segment damage is a skip, not a truncation: the records after it
  // are still adopted.
  EXPECT_EQ(report.corrupt_records_skipped, 1u) << report.ToString();
  EXPECT_EQ(report.records_adopted, 9u);
  EXPECT_EQ(report.torn_segments, 0u);
  EXPECT_EQ(report.bytes_truncated, 0u);
  EXPECT_EQ(recovered.count(103), 0u) << "corrupt record must not surface";
  for (PageId pid = 0; pid < 10; ++pid) {
    if (pid == 3) continue;
    ASSERT_TRUE(recovered.count(pid + 100)) << pid;
    EXPECT_EQ(recovered[pid + 100], payload);
  }
  // The skipped record is accounted dead, so the auditor's dead-bytes
  // closure still holds.
  ExpectAuditClean(&reopened);
}

TEST(TornRecoveryTest, TornSegmentHeaderConsumesSlotAdoptsNothing) {
  storage::SsdDevice device(SmallDevice());
  fault::FaultInjector fi;
  fi.Attach(&device);

  const std::string payload(100, 'C');
  {
    LogStructuredStore store(&device, SmallSegments());
    ASSERT_TRUE(store.Append(7, Slice(payload)).ok());
    // Crash two bytes into the segment write: even the 4-byte segment
    // magic is torn, so the slot reads back as unframed garbage.
    // (Buffer is 12 + 25 + 100 = 137 bytes.)
    fi.ScheduleCrash(/*writes=*/0, /*torn_fraction=*/2.0 / 137.0);
    EXPECT_TRUE(store.Flush().IsIoError());
  }
  fi.ClearCrash();

  LogStructuredStore reopened(&device, SmallSegments());
  RecoveryReport report;
  auto recovered = RecoverAll(&device, &reopened, &report);

  EXPECT_EQ(report.records_adopted, 0u) << report.ToString();
  EXPECT_EQ(report.segments_scanned, 0u);
  EXPECT_EQ(report.torn_segments, 1u);
  EXPECT_GT(report.bytes_truncated, 0u);
  EXPECT_TRUE(recovered.empty());
  // The garbage slot's id is consumed: the reopened log must not append
  // new segments over it.
  EXPECT_GE(reopened.open_segment_id(), 1u);
  ExpectAuditClean(&reopened);

  // Life goes on: new appends persist and survive another recovery.
  ASSERT_TRUE(reopened.Append(8, Slice(payload)).ok());
  ASSERT_TRUE(reopened.Flush().ok());
  LogStructuredStore third(&device, SmallSegments());
  RecoveryReport report2;
  auto recovered2 = RecoverAll(&device, &third, &report2);
  ASSERT_EQ(recovered2.count(8), 1u);
  EXPECT_EQ(recovered2[8], payload);
  ExpectAuditClean(&third);
}

// A compressible page image, as the CSS tier would demote.
std::string StructuredPayload() {
  std::string out;
  for (int i = 0; i < 40; ++i) {
    char buf[64];
    snprintf(buf, sizeof(buf), "name=customer_%04d|tier=gold|", i);
    out += buf;
  }
  return out;
}

TEST(TornRecoveryTest, TornTailMidCompressedRecordAdoptsValidPrefix) {
  storage::SsdDevice device(SmallDevice());
  fault::FaultInjector fi;
  fi.Attach(&device);

  const std::string raw = StructuredPayload();
  std::string compressed;
  compression::Compressor::Compress(Slice(raw), &compressed);
  ASSERT_LT(compressed.size(), raw.size());
  const uint64_t rec_len = LogStructuredStore::kHeaderBytes +
                           compressed.size();
  {
    LogStructuredStore store(&device, SmallSegments());
    // Segment 0: compressed records, sealed intact.
    for (PageId pid = 1; pid <= 10; ++pid) {
      ASSERT_TRUE(store
                      .AppendCompressed(pid, Slice(compressed),
                                        static_cast<uint32_t>(raw.size()))
                      .ok());
    }
    ASSERT_TRUE(store.Flush().ok());
    // Segment 1: ten more; the crash lands mid-way through one of them.
    for (PageId pid = 11; pid <= 20; ++pid) {
      ASSERT_TRUE(store
                      .AppendCompressed(pid, Slice(compressed),
                                        static_cast<uint32_t>(raw.size()))
                      .ok());
    }
    fi.ScheduleCrash(/*writes=*/0, /*torn_fraction=*/0.5);
    EXPECT_TRUE(store.Flush().IsIoError());
  }
  fi.ClearCrash();

  // How many whole compressed records fit in the persisted prefix.
  const uint64_t buffer = LogStructuredStore::kSegmentHeaderBytes +
                          10 * rec_len;
  const uint64_t persisted = buffer / 2;
  const uint64_t full_in_prefix =
      (persisted - LogStructuredStore::kSegmentHeaderBytes) / rec_len;
  ASSERT_GT(full_in_prefix, 0u);
  ASSERT_LT(full_in_prefix, 10u) << "crash must tear a record in half";

  LogStructuredStore reopened(&device, SmallSegments());
  RecoveryReport report;
  auto recovered = RecoverAll(&device, &reopened, &report);

  EXPECT_EQ(report.torn_segments, 1u) << report.ToString();
  EXPECT_EQ(report.corrupt_records_skipped, 0u);
  EXPECT_EQ(report.records_adopted, 10u + full_in_prefix);
  ASSERT_EQ(recovered.size(), 10u + full_in_prefix);
  // Every adopted compressed record inflates back to the exact raw image.
  for (const auto& [pid, payload] : recovered) {
    EXPECT_EQ(payload, raw) << pid;
  }
  // The css closure (stored and raw) holds over the torn boundary.
  ExpectAuditClean(&reopened);
  EXPECT_EQ(reopened.stats().css_stored_bytes_recovered,
            (10u + full_in_prefix) * compressed.size());
  EXPECT_EQ(reopened.stats().css_raw_bytes_recovered,
            (10u + full_in_prefix) * raw.size());
}

TEST(TornRecoveryTest, CorruptCompressedRecordSkippedOthersInflate) {
  storage::SsdDevice device(SmallDevice());
  fault::FaultInjector fi(7);
  fi.Attach(&device);

  const std::string raw = StructuredPayload();
  std::string compressed;
  compression::Compressor::Compress(Slice(raw), &compressed);
  const uint64_t rec_len = LogStructuredStore::kHeaderBytes +
                           compressed.size();
  const std::string plain(150, 'P');
  {
    LogStructuredStore store(&device, SmallSegments());
    // Alternate forms so the corrupt record sits between both kinds:
    // pids 0,2,4 compressed; pids 1,3 plain.
    for (PageId pid = 0; pid < 5; ++pid) {
      if (pid % 2 == 0) {
        ASSERT_TRUE(store
                        .AppendCompressed(pid + 100, Slice(compressed),
                                          static_cast<uint32_t>(raw.size()))
                        .ok());
      } else {
        ASSERT_TRUE(store.Append(pid + 100, Slice(plain)).ok());
      }
    }
    ASSERT_TRUE(store.Flush().ok());
  }
  // Flip a bit inside record 2's (compressed, pid 102) payload: the CRC
  // covers the stored bytes, so the damage is caught before inflation.
  const uint64_t plain_len = LogStructuredStore::kHeaderBytes + plain.size();
  const uint64_t rec2_payload = LogStructuredStore::kSegmentHeaderBytes +
                                rec_len + plain_len +
                                LogStructuredStore::kHeaderBytes;
  ASSERT_TRUE(fi.CorruptRange(rec2_payload, 5, /*bits=*/1).ok());

  LogStructuredStore reopened(&device, SmallSegments());
  RecoveryReport report;
  auto recovered = RecoverAll(&device, &reopened, &report);

  EXPECT_EQ(report.corrupt_records_skipped, 1u) << report.ToString();
  EXPECT_EQ(report.records_adopted, 4u);
  EXPECT_EQ(recovered.count(102), 0u) << "corrupt record must not surface";
  EXPECT_EQ(recovered[100], raw);
  EXPECT_EQ(recovered[104], raw);
  EXPECT_EQ(recovered[101], plain);
  EXPECT_EQ(recovered[103], plain);
  // The corrupt record is excluded from the css closure on BOTH sides
  // (not recovered, not charged to the segment), so the audit stays
  // clean — including the css-accounting identity.
  ExpectAuditClean(&reopened);
  EXPECT_EQ(reopened.stats().css_stored_bytes_recovered,
            2 * compressed.size());
  EXPECT_EQ(reopened.stats().css_raw_bytes_recovered, 2 * raw.size());
}

TEST(TornRecoveryTest, PristineDeviceRecoversEmpty) {
  storage::SsdDevice device(SmallDevice());
  LogStructuredStore store(&device, SmallSegments());
  RecoveryReport report;
  auto recovered = RecoverAll(&device, &store, &report);
  EXPECT_TRUE(recovered.empty());
  EXPECT_EQ(report.segments_scanned, 0u);
  EXPECT_EQ(report.torn_segments, 0u);
  EXPECT_EQ(report.bytes_truncated, 0u);
  // A pristine recovery is free: the scan probes headers, never full
  // segments.
  EXPECT_EQ(device.stats().bytes_read,
            (device.capacity_bytes() / kSeg) *
                LogStructuredStore::kSegmentHeaderBytes);
  ExpectAuditClean(&store);
  ASSERT_TRUE(store.Append(1, Slice("still works")).ok());
  ASSERT_TRUE(store.Flush().ok());
}

TEST(TornRecoveryTest, ReportToStringMentionsTheDamage) {
  RecoveryReport r;
  r.segments_scanned = 3;
  r.records_adopted = 17;
  r.bytes_truncated = 42;
  r.torn_segments = 1;
  std::string s = r.ToString();
  EXPECT_NE(s.find("17"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

}  // namespace
}  // namespace costperf::llama
