#include "llama/log_store.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"

namespace costperf::llama {
namespace {

class LogStoreTest : public ::testing::Test {
 protected:
  LogStoreTest() {
    storage::SsdOptions dev_opts;
    dev_opts.capacity_bytes = 256ull << 20;
    dev_opts.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev_opts);
    store_ = std::make_unique<LogStructuredStore>(device_.get());
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<LogStructuredStore> store_;
};

TEST_F(LogStoreTest, AppendReadRoundTripFromBuffer) {
  auto addr = store_->Append(7, Slice("page-seven"));
  ASSERT_TRUE(addr.ok());
  std::string image;
  PageId pid = 0;
  ASSERT_TRUE(store_->Read(*addr, &image, &pid).ok());
  EXPECT_EQ(image, "page-seven");
  EXPECT_EQ(pid, 7u);
  // Never flushed: the read was served from the open buffer.
  EXPECT_EQ(store_->stats().buffer_reads, 1u);
  EXPECT_EQ(store_->stats().device_reads, 0u);
  EXPECT_EQ(device_->stats().writes, 0u);
}

TEST_F(LogStoreTest, ReadAfterFlushHitsDevice) {
  auto addr = store_->Append(1, Slice("payload"));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_EQ(device_->stats().writes, 1u);
  std::string image;
  ASSERT_TRUE(store_->Read(*addr, &image).ok());
  EXPECT_EQ(image, "payload");
  EXPECT_EQ(store_->stats().device_reads, 1u);
  EXPECT_EQ(device_->stats().reads, 1u);
}

TEST_F(LogStoreTest, ManyPagesOneWrite) {
  // §6.1: "writes very large buffers containing a large number of pages to
  // secondary storage in a single write."
  for (int i = 0; i < 100; ++i) {
    std::string img(1000, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(store_->Append(i, Slice(img)).ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_EQ(device_->stats().writes, 1u)
      << "100 pages must reach the device in one large write";
}

TEST_F(LogStoreTest, AutoFlushWhenSegmentFull) {
  std::string big(300 << 10, 'x');  // 300 KiB pages, 1 MiB segments
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store_->Append(i, Slice(big)).ok());
  }
  // The 4th append cannot fit in the first segment: one auto-flush.
  EXPECT_EQ(device_->stats().writes, 1u);
  EXPECT_EQ(store_->stats().segments_written, 1u);
}

TEST_F(LogStoreTest, OversizedPageRejected) {
  std::string huge(2 << 20, 'x');
  auto r = store_->Append(1, Slice(huge));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LogStoreTest, ChecksumDetectsMediaCorruption) {
  auto addr = store_->Append(3, Slice("fragile data"));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(store_->Flush().ok());
  // Corrupt one payload byte directly on the device.
  char bad = 'X';
  ASSERT_TRUE(device_
                  ->Write(addr->offset() + LogStructuredStore::kHeaderBytes +
                              2,
                          Slice(&bad, 1))
                  .ok());
  std::string image;
  Status s = store_->Read(*addr, &image);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(LogStoreTest, MarkDeadTracksLiveFraction) {
  auto a1 = store_->Append(1, Slice(std::string(1000, 'a')));
  auto a2 = store_->Append(2, Slice(std::string(1000, 'b')));
  ASSERT_TRUE(store_->Flush().ok());
  store_->MarkDead(*a1);
  auto segs = store_->segments();
  ASSERT_GE(segs.size(), 1u);
  EXPECT_LT(segs[0].live_fraction(), 0.6);
  EXPECT_GT(segs[0].live_fraction(), 0.3);
  (void)a2;
}

TEST_F(LogStoreTest, GcRelocatesLiveAndDropsDead) {
  std::map<PageId, FlashAddress> table;
  auto a1 = store_->Append(1, Slice("live-one"));
  auto a2 = store_->Append(2, Slice("dead-two"));
  auto a3 = store_->Append(3, Slice("live-three"));
  ASSERT_TRUE(store_->Flush().ok());
  table[1] = *a1;
  table[3] = *a3;
  store_->MarkDead(*a2);

  uint64_t victim = a1->offset() / store_->options().segment_bytes;
  auto gc = store_->CollectSegment(
      victim,
      [&](PageId pid, FlashAddress addr) {
        auto it = table.find(pid);
        return it != table.end() && it->second == addr;
      },
      [&](PageId pid, FlashAddress old_addr, FlashAddress new_addr) {
        if (table[pid] != old_addr) return false;
        table[pid] = new_addr;
        return true;
      });
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  EXPECT_EQ(gc->relocated_records, 2u);
  EXPECT_EQ(gc->reclaimed_bytes, store_->options().segment_bytes);

  // Relocated pages readable at their new addresses.
  std::string image;
  ASSERT_TRUE(store_->Read(table[1], &image).ok());
  EXPECT_EQ(image, "live-one");
  ASSERT_TRUE(store_->Read(table[3], &image).ok());
  EXPECT_EQ(image, "live-three");
  // Old segment's media was trimmed.
  EXPECT_EQ(device_->stats().trims, 1u);
}

TEST_F(LogStoreTest, GcRefusesOpenSegment) {
  ASSERT_TRUE(store_->Append(1, Slice("x")).ok());
  auto gc = store_->CollectSegment(
      store_->open_segment_id(),
      [](PageId, FlashAddress) { return true; },
      [](PageId, FlashAddress, FlashAddress) { return true; });
  EXPECT_FALSE(gc.ok());
  EXPECT_EQ(gc.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LogStoreTest, CollectColdestPicksMostlyDeadSegment) {
  // Segment 0: all dead. Segment 1: all live.
  std::map<PageId, FlashAddress> table;
  std::string blob(200 << 10, 'd');
  for (PageId pid = 0; pid < 4; ++pid) {
    auto a = store_->Append(pid, Slice(blob));
    ASSERT_TRUE(a.ok());
    store_->MarkDead(*a);
  }
  ASSERT_TRUE(store_->Flush().ok());
  for (PageId pid = 10; pid < 14; ++pid) {
    auto a = store_->Append(pid, Slice(blob));
    ASSERT_TRUE(a.ok());
    table[pid] = *a;
  }
  ASSERT_TRUE(store_->Flush().ok());

  auto gc = store_->CollectColdest(
      [&](PageId pid, FlashAddress addr) {
        auto it = table.find(pid);
        return it != table.end() && it->second == addr;
      },
      [&](PageId pid, FlashAddress, FlashAddress neu) {
        table[pid] = neu;
        return true;
      },
      /*live_threshold=*/0.5);
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  EXPECT_EQ(gc->relocated_records, 0u) << "victim must be the dead segment";
}

TEST_F(LogStoreTest, CollectColdestNotFoundWhenAllLive) {
  ASSERT_TRUE(store_->Append(1, Slice("x")).ok());
  ASSERT_TRUE(store_->Flush().ok());
  auto gc = store_->CollectColdest(
      [](PageId, FlashAddress) { return true; },
      [](PageId, FlashAddress, FlashAddress) { return true; },
      /*live_threshold=*/0.5);
  EXPECT_FALSE(gc.ok());
  EXPECT_TRUE(gc.status().IsNotFound());
}

TEST_F(LogStoreTest, RecoverReplaysSealedSegmentsInOrder) {
  // Write v1 of pages 1..5, then v2 of pages 1..3; flush everything.
  for (PageId pid = 1; pid <= 5; ++pid) {
    ASSERT_TRUE(store_->Append(pid, Slice("v1-" + std::to_string(pid))).ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  for (PageId pid = 1; pid <= 3; ++pid) {
    ASSERT_TRUE(store_->Append(pid, Slice("v2-" + std::to_string(pid))).ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  // Unflushed update to page 4 must be lost across restart.
  ASSERT_TRUE(store_->Append(4, Slice("v2-4-unflushed")).ok());

  // "Restart": a fresh store over the same device.
  LogStructuredStore recovered(device_.get());
  std::map<PageId, std::string> latest;
  ASSERT_TRUE(recovered
                  .Recover([&](PageId pid, FlashAddress, const Slice& img) {
                    latest[pid] = img.ToString();
                  })
                  .ok());
  EXPECT_EQ(latest.size(), 5u);
  EXPECT_EQ(latest[1], "v2-1");
  EXPECT_EQ(latest[3], "v2-3");
  EXPECT_EQ(latest[4], "v1-4") << "unflushed update must not survive";
  EXPECT_EQ(latest[5], "v1-5");

  // The recovered store appends past the old log.
  auto a = recovered.Append(9, Slice("post-recovery"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(recovered.Flush().ok());
  std::string img;
  ASSERT_TRUE(recovered.Read(*a, &img).ok());
  EXPECT_EQ(img, "post-recovery");
}

TEST_F(LogStoreTest, VariablePagesConsumeOnlyTheirSize) {
  // §6.1 claim 1: variable size pages — storage consumed tracks content,
  // not a fixed block size.
  uint64_t before = store_->stats().bytes_appended;
  ASSERT_TRUE(store_->Append(1, Slice(std::string(100, 'a'))).ok());
  uint64_t after = store_->stats().bytes_appended;
  EXPECT_EQ(after - before, 100 + LogStructuredStore::kHeaderBytes);
}

TEST_F(LogStoreTest, StressManyAppendsReadBack) {
  Random rng(4242);
  std::map<PageId, std::pair<FlashAddress, std::string>> expected;
  for (int i = 0; i < 2000; ++i) {
    PageId pid = rng.Uniform(500);
    std::string img(10 + rng.Uniform(3000), '\0');
    rng.Fill(img.data(), img.size());
    auto a = store_->Append(pid, Slice(img));
    ASSERT_TRUE(a.ok());
    auto it = expected.find(pid);
    if (it != expected.end()) store_->MarkDead(it->second.first);
    expected[pid] = {*a, img};
  }
  ASSERT_TRUE(store_->Flush().ok());
  for (auto& [pid, entry] : expected) {
    std::string img;
    PageId got = 0;
    ASSERT_TRUE(store_->Read(entry.first, &img, &got).ok());
    EXPECT_EQ(got, pid);
    ASSERT_EQ(img, entry.second);
  }
}

}  // namespace
}  // namespace costperf::llama
