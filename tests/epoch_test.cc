#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace costperf {
namespace {

TEST(EpochTest, RetireAndReclaimWhenIdle) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  mgr.Retire([&] { freed++; });
  EXPECT_EQ(mgr.retired_count(), 1u);
  mgr.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(mgr.retired_count(), 0u);
}

TEST(EpochTest, GuardBlocksReclamation) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    EpochGuard g(&mgr);
    mgr.Retire([&] { freed++; });
    mgr.TryReclaim();
    // We are still inside the epoch the item was retired in.
    EXPECT_EQ(freed.load(), 0);
  }
  mgr.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ReentrantGuards) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    EpochGuard outer(&mgr);
    {
      EpochGuard inner(&mgr);
      mgr.Retire([&] { freed++; });
    }
    mgr.TryReclaim();
    EXPECT_EQ(freed.load(), 0) << "outer guard must still protect";
  }
  mgr.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ReclaimAllFreesEverything) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  for (int i = 0; i < 10; ++i) mgr.Retire([&] { freed++; });
  EXPECT_EQ(mgr.ReclaimAll(), 10u);
  EXPECT_EQ(freed.load(), 10);
}

TEST(EpochTest, DestructorRunsPendingDeleters) {
  std::atomic<int> freed{0};
  {
    EpochManager mgr;
    mgr.Retire([&] { freed++; });
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ConcurrentReadersNeverSeeFreedMemory) {
  // Readers traverse a latch-free "current" pointer under epoch guards
  // while a writer keeps swapping and retiring old nodes. ASan or a
  // poisoned-value check would catch use-after-free.
  struct Node {
    std::atomic<uint64_t> value{0xABCDABCDABCDABCDull};
  };
  EpochManager mgr;
  std::atomic<Node*> current{new Node()};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard g(&mgr);
        Node* n = current.load(std::memory_order_acquire);
        if (n->value.load(std::memory_order_relaxed) !=
            0xABCDABCDABCDABCDull) {
          bad_reads++;
        }
      }
    });
  }

  for (int i = 0; i < 2000; ++i) {
    Node* fresh = new Node();
    Node* old = current.exchange(fresh, std::memory_order_acq_rel);
    mgr.Retire([old] {
      old->value.store(0xDEADDEADDEADDEADull, std::memory_order_relaxed);
      delete old;
    });
    if (i % 16 == 0) mgr.TryReclaim();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  delete current.load();
  mgr.ReclaimAll();
  EXPECT_EQ(bad_reads.load(), 0u);
}

TEST(EpochTest, EpochAdvances) {
  EpochManager mgr;
  uint64_t e0 = mgr.current_epoch();
  mgr.TryReclaim();
  mgr.TryReclaim();
  EXPECT_GE(mgr.current_epoch(), e0 + 2);
}

}  // namespace
}  // namespace costperf
