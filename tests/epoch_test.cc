#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace costperf {
namespace {

TEST(EpochTest, RetireAndReclaimWhenIdle) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  mgr.Retire([&] { freed++; });
  EXPECT_EQ(mgr.retired_count(), 1u);
  mgr.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(mgr.retired_count(), 0u);
}

TEST(EpochTest, GuardBlocksReclamation) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    EpochGuard g(&mgr);
    mgr.Retire([&] { freed++; });
    mgr.TryReclaim();
    // We are still inside the epoch the item was retired in.
    EXPECT_EQ(freed.load(), 0);
  }
  mgr.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ReentrantGuards) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    EpochGuard outer(&mgr);
    {
      EpochGuard inner(&mgr);
      mgr.Retire([&] { freed++; });
    }
    mgr.TryReclaim();
    EXPECT_EQ(freed.load(), 0) << "outer guard must still protect";
  }
  mgr.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ReclaimAllFreesEverything) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  for (int i = 0; i < 10; ++i) mgr.Retire([&] { freed++; });
  EXPECT_EQ(mgr.ReclaimAll(), 10u);
  EXPECT_EQ(freed.load(), 10);
}

TEST(EpochTest, DestructorRunsPendingDeleters) {
  std::atomic<int> freed{0};
  {
    EpochManager mgr;
    mgr.Retire([&] { freed++; });
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ConcurrentReadersNeverSeeFreedMemory) {
  // Readers traverse a latch-free "current" pointer under epoch guards
  // while a writer keeps swapping and retiring old nodes. ASan or a
  // poisoned-value check would catch use-after-free.
  struct Node {
    std::atomic<uint64_t> value{0xABCDABCDABCDABCDull};
  };
  EpochManager mgr;
  std::atomic<Node*> current{new Node()};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard g(&mgr);
        Node* n = current.load(std::memory_order_acquire);
        if (n->value.load(std::memory_order_relaxed) !=
            0xABCDABCDABCDABCDull) {
          bad_reads++;
        }
      }
    });
  }

  for (int i = 0; i < 2000; ++i) {
    Node* fresh = new Node();
    Node* old = current.exchange(fresh, std::memory_order_acq_rel);
    mgr.Retire([old] {
      old->value.store(0xDEADDEADDEADDEADull, std::memory_order_relaxed);
      delete old;
    });
    if (i % 16 == 0) mgr.TryReclaim();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  delete current.load();
  mgr.ReclaimAll();
  EXPECT_EQ(bad_reads.load(), 0u);
}

TEST(EpochTest, EpochAdvances) {
  EpochManager mgr;
  uint64_t e0 = mgr.current_epoch();
  mgr.TryReclaim();
  mgr.TryReclaim();
  EXPECT_GE(mgr.current_epoch(), e0 + 2);
}

// --- Runtime backstop for the static epoch capability (AssertActive /
// IsActiveOnThisThread). The Clang thread-safety analysis proves guard
// coverage at compile time on ANALYZE builds; these tests pin down the
// dynamic check that GCC and Release-with-assertions builds rely on.

TEST(EpochBackstopTest, IsActiveTracksGuardLifetime) {
  EpochManager mgr;
  EXPECT_FALSE(mgr.IsActiveOnThisThread());
  {
    EpochGuard g(&mgr);
    EXPECT_TRUE(mgr.IsActiveOnThisThread());
    {
      EpochGuard nested(&mgr);
      EXPECT_TRUE(mgr.IsActiveOnThisThread());
    }
    // Inner exit must not clear the outer guard's active state.
    EXPECT_TRUE(mgr.IsActiveOnThisThread());
  }
  EXPECT_FALSE(mgr.IsActiveOnThisThread());
}

TEST(EpochBackstopTest, IsActiveIsPerManager) {
  // One guard per tree/shard manager: holding shard A's epoch must not
  // satisfy shard B's contract.
  EpochManager a;
  EpochManager b;
  EpochGuard g(&a);
  EXPECT_TRUE(a.IsActiveOnThisThread());
  EXPECT_FALSE(b.IsActiveOnThisThread());
}

TEST(EpochBackstopTest, IsActiveIsPerThread) {
  EpochManager mgr;
  EpochGuard g(&mgr);
  ASSERT_TRUE(mgr.IsActiveOnThisThread());
  bool other_thread_active = true;
  std::thread([&] { other_thread_active = mgr.IsActiveOnThisThread(); })
      .join();
  EXPECT_FALSE(other_thread_active)
      << "a guard on one thread must not license another thread";
}

TEST(EpochBackstopTest, IsActiveSurvivesTlsSlotCacheChurn) {
  // The per-thread slot cache (epoch.cc) holds 16 (manager, slot, depth)
  // entries and evicts only at depth 0. Hold a guard on one manager,
  // then enter/exit more managers than the cache holds: the held
  // manager's entry must survive every eviction sweep.
  EpochManager held;
  EpochGuard g(&held);
  {
    std::vector<std::unique_ptr<EpochManager>> churn;
    for (int i = 0; i < 24; ++i) {
      churn.emplace_back(std::make_unique<EpochManager>());
      EpochGuard pass(churn.back().get());
      EXPECT_TRUE(churn.back()->IsActiveOnThisThread());
    }
  }
  EXPECT_TRUE(held.IsActiveOnThisThread());
  held.AssertActive();  // must be silent: the guard is live
}

TEST(EpochBackstopTest, AssertActiveSilentUnderGuard) {
  EpochManager mgr;
  EpochGuard g(&mgr);
  mgr.AssertActive();
  {
    EpochGuard nested(&mgr);
    mgr.AssertActive();
  }
  mgr.AssertActive();
}

#ifndef NDEBUG
// The abort path only exists in debug builds (AssertActive compiles to
// nothing under NDEBUG so Release hot paths pay zero cost).
TEST(EpochBackstopDeathTest, AssertActiveDiesWithoutGuard) {
  EpochManager mgr;
  EXPECT_DEATH(mgr.AssertActive(), "epoch contract violation");
}

TEST(EpochBackstopDeathTest, AssertActiveDiesAfterGuardReleased) {
  EpochManager mgr;
  { EpochGuard g(&mgr); }
  EXPECT_DEATH(mgr.AssertActive(), "epoch contract violation");
}

TEST(EpochBackstopDeathTest, AssertActiveDiesOnWrongManager) {
  EpochManager a;
  EpochManager b;
  EpochGuard g(&a);
  EXPECT_DEATH(b.AssertActive(), "epoch contract violation");
}
#endif  // NDEBUG

}  // namespace
}  // namespace costperf
