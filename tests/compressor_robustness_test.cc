#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/random.h"
#include "compression/compressor.h"

namespace costperf::compression {
namespace {

// Robustness contract of Decompress (the CSS tier's read path): any byte
// string — truncated, bit-flipped, or pure noise — either round-trips or
// fails with a clean Corruption. It must never crash, hang, or allocate
// past max_raw_size, because a torn or corrupted log record reaches this
// code before the CRC layer has vouched for it during recovery scans.

std::string StructuredPayload(size_t records) {
  std::string out;
  for (size_t i = 0; i < records; ++i) {
    char buf[96];
    snprintf(buf, sizeof(buf), "name=customer_%04zu|city=city_%03zu|tier=%s|",
             i % 1000, i % 250, i % 3 ? "gold" : "basic");
    out += buf;
  }
  return out;
}

void ExpectDecompressIsTotal(const Slice& input, size_t max_raw) {
  std::string out;
  Status s = Compressor::Decompress(input, &out, max_raw);
  if (s.ok()) {
    EXPECT_LE(out.size(), max_raw);
  } else {
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
}

TEST(CompressorRobustnessTest, TruncationAtEveryLengthIsClean) {
  std::string compressed;
  Compressor::Compress(Slice(StructuredPayload(200)), &compressed);
  ASSERT_GT(compressed.size(), 8u);
  for (size_t len = 0; len < compressed.size(); ++len) {
    ExpectDecompressIsTotal(Slice(compressed.data(), len), 1 << 20);
  }
}

TEST(CompressorRobustnessTest, SingleBitFlipsAreCleanOrRoundTrip) {
  const std::string raw = StructuredPayload(120);
  std::string compressed;
  Compressor::Compress(Slice(raw), &compressed);
  // Every bit of the stream flipped once. A flip the format cannot detect
  // may "succeed" with different bytes — that is the CRC layer's job —
  // but it must stay within max_raw_size and never crash.
  for (size_t byte = 0; byte < compressed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = compressed;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      ExpectDecompressIsTotal(Slice(mutated), raw.size() * 4);
    }
  }
}

TEST(CompressorRobustnessTest, RandomNoiseBuffersAreClean) {
  Random rng(20260808);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = rng.Uniform(512);
    std::string noise(len, '\0');
    for (size_t i = 0; i < len; ++i) {
      noise[i] = static_cast<char>(rng.Uniform(256));
    }
    ExpectDecompressIsTotal(Slice(noise), 1 << 16);
  }
}

TEST(CompressorRobustnessTest, ClaimedRawSizePastLimitIsRefused) {
  // A stream whose raw_size varint claims far more than the caller's
  // bound must be refused up front, not after allocating the claim.
  std::string compressed;
  Compressor::Compress(Slice(StructuredPayload(300)), &compressed);
  std::string out;
  Status s = Compressor::Decompress(Slice(compressed), &out,
                                    /*max_raw_size=*/16);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(CompressorRobustnessTest, RoundTripRepetitive) {
  const std::string raw(256 << 10, 'z');
  std::string compressed, back;
  CompressInfo info;
  Compressor::Compress(Slice(raw), &compressed, &info);
  EXPECT_EQ(info.raw_size, raw.size());
  EXPECT_EQ(info.compressed_size, compressed.size());
  EXPECT_LT(info.ratio(), 0.05);
  ASSERT_TRUE(Compressor::Decompress(Slice(compressed), &back).ok());
  EXPECT_EQ(back, raw);
}

TEST(CompressorRobustnessTest, RoundTripIncompressible) {
  Random rng(42);
  std::string raw(64 << 10, '\0');
  for (auto& c : raw) c = static_cast<char>(rng.Uniform(256));
  std::string compressed, back;
  CompressInfo info;
  Compressor::Compress(Slice(raw), &compressed, &info);
  // Noise cannot shrink; the format's literal framing keeps the
  // expansion bounded rather than letting it run away.
  EXPECT_LT(info.ratio(), 1.1);
  ASSERT_TRUE(Compressor::Decompress(Slice(compressed), &back).ok());
  EXPECT_EQ(back, raw);
}

TEST(CompressorRobustnessTest, RoundTripEmpty) {
  std::string compressed, back;
  CompressInfo info;
  Compressor::Compress(Slice(), &compressed, &info);
  EXPECT_EQ(info.raw_size, 0u);
  EXPECT_EQ(info.ratio(), 1.0);
  ASSERT_TRUE(Compressor::Decompress(Slice(compressed), &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(CompressorRobustnessTest, RoundTripRandomLengthsRandomContent) {
  Random rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = rng.Uniform(8192);
    std::string raw(len, '\0');
    // Mix of compressible runs and noise, stressing match emission.
    for (size_t i = 0; i < len; ++i) {
      raw[i] = rng.Bernoulli(0.3) ? static_cast<char>(rng.Uniform(256))
                                  : static_cast<char>('a' + (i / 7) % 4);
    }
    std::string compressed, back;
    Compressor::Compress(Slice(raw), &compressed);
    ASSERT_TRUE(Compressor::Decompress(Slice(compressed), &back).ok())
        << "trial " << trial;
    ASSERT_EQ(back, raw) << "trial " << trial;
  }
}

}  // namespace
}  // namespace costperf::compression
