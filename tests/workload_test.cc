#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/memory_store.h"

namespace costperf::workload {
namespace {

TEST(WorkloadSpecTest, PresetsHaveSaneProportions) {
  for (auto spec : {WorkloadSpec::YcsbA(10), WorkloadSpec::YcsbB(10),
                    WorkloadSpec::YcsbC(10), WorkloadSpec::YcsbD(10),
                    WorkloadSpec::YcsbE(10), WorkloadSpec::YcsbF(10)}) {
    double total = spec.read_proportion + spec.update_proportion +
                   spec.insert_proportion + spec.scan_proportion +
                   spec.rmw_proportion;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(WorkloadTest, KeysAreFixedWidthAndOrdered) {
  Workload w(WorkloadSpec::YcsbC(100));
  EXPECT_EQ(w.KeyAt(0), "user000000000000");
  EXPECT_EQ(w.KeyAt(42), "user000000000042");
  EXPECT_LT(w.KeyAt(9), w.KeyAt(10)) << "lexicographic == numeric order";
}

TEST(WorkloadTest, LoadInsertsAllRecords) {
  core::MemoryStore store;
  WorkloadSpec spec = WorkloadSpec::YcsbC(500);
  Workload w(spec);
  ASSERT_TRUE(w.Load(&store).ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(store.Get(Slice(w.KeyAt(i))).ok()) << i;
  }
}

TEST(WorkloadTest, ReadOnlySpecGeneratesOnlyReads) {
  Workload w(WorkloadSpec::YcsbC(1000));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(w.NextOp().type, OpType::kRead);
  }
}

TEST(WorkloadTest, MixMatchesProportions) {
  Workload w(WorkloadSpec::YcsbA(1000));
  std::map<OpType, int> counts;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) counts[w.NextOp().type]++;
  EXPECT_NEAR(counts[OpType::kRead] / double(kN), 0.5, 0.03);
  EXPECT_NEAR(counts[OpType::kUpdate] / double(kN), 0.5, 0.03);
}

TEST(WorkloadTest, InsertsExtendKeyspace) {
  WorkloadSpec spec = WorkloadSpec::YcsbD(100);
  Workload w(spec);
  std::set<std::string> inserted;
  for (int i = 0; i < 1000; ++i) {
    Op op = w.NextOp();
    if (op.type == OpType::kInsert) {
      EXPECT_TRUE(inserted.insert(op.key).second) << "duplicate insert key";
      EXPECT_GE(op.key, w.KeyAt(100));
    }
  }
  EXPECT_GT(w.inserted_count(), 100u);
}

TEST(WorkloadTest, ZipfianSkewsAccesses) {
  WorkloadSpec spec = WorkloadSpec::YcsbC(100000);
  spec.distribution = Distribution::kZipfian;
  Workload w(spec);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) counts[w.NextOp().key]++;
  // Hottest key should be hit far more than 1/n of the time.
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 500);
}

TEST(WorkloadTest, UniformDoesNotSkew) {
  WorkloadSpec spec = WorkloadSpec::YcsbC(1000);
  spec.distribution = Distribution::kUniform;
  Workload w(spec);
  std::map<std::string, int> counts;
  for (int i = 0; i < 50000; ++i) counts[w.NextOp().key]++;
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_LT(max_count, 150);  // mean 50
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadSpec spec = WorkloadSpec::YcsbA(1000);
  Workload a(spec), b(spec);
  for (int i = 0; i < 1000; ++i) {
    Op oa = a.NextOp(), ob = b.NextOp();
    EXPECT_EQ(oa.key, ob.key);
    EXPECT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
  }
}

TEST(WorkloadTest, ThreadOffsetsDiverge) {
  WorkloadSpec spec = WorkloadSpec::YcsbC(10000);
  Workload a(spec, 1), b(spec, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextOp().key == b.NextOp().key) ++same;
  }
  EXPECT_LT(same, 30);
}

TEST(WorkloadRunnerTest, RunsAndMeasures) {
  core::MemoryStore store;
  WorkloadSpec spec = WorkloadSpec::YcsbB(2000);
  spec.value_size = 32;
  Workload loader(spec);
  ASSERT_TRUE(loader.Load(&store).ok());
  Workload ops(spec, 1);
  RunResult r = RunWorkload(&store, &ops, 10000);
  EXPECT_EQ(r.ops, 10000u);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_GT(r.cpu_seconds, 0.0);
  EXPECT_GT(r.ops_per_cpu_sec, 1000.0);
}

TEST(WorkloadRunnerTest, ThreadedRunAggregates) {
  core::MemoryStore store;
  WorkloadSpec spec = WorkloadSpec::YcsbC(2000);
  Workload loader(spec);
  ASSERT_TRUE(loader.Load(&store).ok());
  RunResult r = RunWorkloadThreaded(&store, spec, 2000, 2);
  EXPECT_EQ(r.ops, 4000u);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_GT(r.ops_per_cpu_sec, 0.0);
}

TEST(WorkloadRunnerTest, ScansAndRmwExecute) {
  core::MemoryStore store;
  WorkloadSpec spec = WorkloadSpec::YcsbE(500);
  spec.max_scan_len = 10;
  Workload loader(spec);
  ASSERT_TRUE(loader.Load(&store).ok());
  Workload ops(spec, 1);
  RunResult r = RunWorkload(&store, &ops, 2000);
  EXPECT_EQ(r.failed_ops, 0u);

  WorkloadSpec f = WorkloadSpec::YcsbF(500);
  Workload fops(f, 1);
  RunResult rf = RunWorkload(&store, &fops, 2000);
  EXPECT_EQ(rf.failed_ops, 0u);
}

}  // namespace
}  // namespace costperf::workload
