#include "core/cursor.h"

#include <gtest/gtest.h>

#include "core/caching_store.h"
#include "core/memory_store.h"

namespace costperf::core {
namespace {

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

template <typename StoreT>
void FillStore(StoreT* store, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v" + std::to_string(i)).ok());
  }
}

TEST(CursorTest, FullTraversalMemoryStore) {
  MemoryStore store;
  FillStore(&store, 500);
  Cursor c(&store);
  int count = 0;
  for (; c.Valid(); c.Next()) {
    EXPECT_EQ(c.key(), Key(count));
    EXPECT_EQ(c.value(), "v" + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 500);
  EXPECT_TRUE(c.status().ok());
}

TEST(CursorTest, FullTraversalCachingStoreWithPaging) {
  CachingStoreOptions opts;
  opts.memory_budget_bytes = 32 << 10;  // forces paging mid-scan
  opts.device.capacity_bytes = 128ull << 20;
  opts.device.max_iops = 0;
  opts.tree.max_page_bytes = 512;
  opts.maintenance_interval_ops = 64;
  CachingStore store(opts);
  FillStore(&store, 2000);
  ASSERT_TRUE(store.EvictAll().ok());  // scan from a fully cold cache

  Cursor c(&store, Slice(), /*batch_size=*/64);
  int count = 0;
  for (; c.Valid(); c.Next()) {
    ASSERT_EQ(c.key(), Key(count)) << count;
    ++count;
  }
  EXPECT_EQ(count, 2000);
}

TEST(CursorTest, StartMidRange) {
  MemoryStore store;
  FillStore(&store, 100);
  Cursor c(&store, Slice(Key(42)));
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), Key(42));
}

TEST(CursorTest, SeekJumpsForwardAndBackward) {
  MemoryStore store;
  FillStore(&store, 100);
  Cursor c(&store);
  c.Seek(Key(90));
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), Key(90));
  c.Seek(Key(10));
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.key(), Key(10));
}

TEST(CursorTest, EmptyStore) {
  MemoryStore store;
  Cursor c(&store);
  EXPECT_FALSE(c.Valid());
  c.Next();  // safe on invalid
  EXPECT_FALSE(c.Valid());
}

TEST(CursorTest, BatchBoundaryHasNoDuplicatesOrGaps) {
  MemoryStore store;
  FillStore(&store, 333);
  // Batch sizes that do and do not divide the record count.
  for (size_t batch : {1u, 7u, 111u, 333u, 1000u}) {
    Cursor c(&store, Slice(), batch);
    int count = 0;
    for (; c.Valid(); c.Next()) {
      ASSERT_EQ(c.key(), Key(count)) << "batch=" << batch;
      ++count;
    }
    EXPECT_EQ(count, 333) << "batch=" << batch;
  }
}

TEST(CursorTest, KeysWithTrailingNulAreNotSkipped) {
  MemoryStore store;
  std::string a("ab", 2), b(std::string("ab\0", 3)), c3("ac");
  ASSERT_TRUE(store.Put(a, "1").ok());
  ASSERT_TRUE(store.Put(b, "2").ok());
  ASSERT_TRUE(store.Put(c3, "3").ok());
  Cursor c(&store, Slice(), /*batch_size=*/1);
  std::vector<std::string> seen;
  for (; c.Valid(); c.Next()) seen.push_back(c.key());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], a);
  EXPECT_EQ(seen[1], b);
  EXPECT_EQ(seen[2], c3);
}

}  // namespace
}  // namespace costperf::core
