#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "costmodel/cost_params.h"
#include "costmodel/mixed_workload.h"
#include "costmodel/operation_cost.h"

namespace costperf::costmodel {
namespace {

// ---------- Mixed workload model (Eqs. 1-3, Fig. 1) ----------

TEST(MixedWorkloadTest, NoMissesGivesP0) {
  EXPECT_DOUBLE_EQ(MixedThroughput(4e6, 0.0, 5.8), 4e6);
  EXPECT_DOUBLE_EQ(RelativeThroughput(0.0, 5.8), 1.0);
}

TEST(MixedWorkloadTest, AllMissesGivesP0OverR) {
  // Paper: "At a cache miss ratio of 1, the Bw-tree runs at 1/R of
  // in-memory performance."
  EXPECT_NEAR(MixedThroughput(4e6, 1.0, 5.8), 4e6 / 5.8, 1e-6);
  EXPECT_NEAR(RelativeThroughput(1.0, 5.8), 1.0 / 5.8, 1e-12);
}

TEST(MixedWorkloadTest, ThroughputMonotonicallyDecreasesInF) {
  double prev = RelativeThroughput(0.0, 5.8);
  for (int i = 1; i <= 100; ++i) {
    double cur = RelativeThroughput(i / 100.0, 5.8);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(MixedWorkloadTest, HigherRDecaysFaster) {
  for (double f : {0.1, 0.3, 0.5, 0.9}) {
    EXPECT_LT(RelativeThroughput(f, 9.0), RelativeThroughput(f, 5.8));
  }
}

TEST(MixedWorkloadTest, Equation1And2AreInverses) {
  for (double f : {0.0, 0.01, 0.25, 0.5, 1.0}) {
    for (double r : {1.0, 4.06, 5.8, 7.54, 9.0}) {
      double pf = MixedThroughput(4e6, f, r);
      EXPECT_NEAR(MixedExecTimePerOp(4e6, f, r), 1.0 / pf, 1e-15);
    }
  }
}

TEST(MixedWorkloadTest, Equation3RecoversR) {
  // Derive R back from a synthetic observation (Eq. 3 is the algebraic
  // inverse of Eq. 2).
  for (double true_r : {2.0, 5.8, 9.0}) {
    for (double f : {0.05, 0.3, 0.8}) {
      double pf = MixedThroughput(4e6, f, true_r);
      EXPECT_NEAR(DeriveR(4e6, pf, f), true_r, 1e-9);
    }
  }
}

TEST(MixedWorkloadTest, FitRRecoversRFromNoisyObservations) {
  Random rng(77);
  double true_r = 5.8, p0 = 4e6;
  std::vector<MixedObservation> obs;
  for (int i = 1; i <= 20; ++i) {
    double f = i / 20.0;
    double noise = 1.0 + (rng.NextDouble() - 0.5) * 0.04;  // ±2%
    obs.push_back({f, MixedThroughput(p0, f, true_r) * noise});
  }
  double fitted = FitR(p0, obs);
  EXPECT_NEAR(fitted, true_r, 0.3);
}

TEST(MixedWorkloadTest, FitRIgnoresDegenerateObservations) {
  EXPECT_DOUBLE_EQ(FitR(4e6, {}), 1.0);
  EXPECT_DOUBLE_EQ(FitR(4e6, {{0.0, 4e6}, {-1.0, 1.0}, {0.5, 0.0}}), 1.0);
}

TEST(MixedWorkloadTest, CurveHasRequestedShape) {
  auto curve = RelativeThroughputCurve(5.8, 11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front(), 1.0);
  EXPECT_NEAR(curve.back(), 1 / 5.8, 1e-12);
}

// ---------- Operation costs (Eqs. 4-5, Fig. 2) ----------

TEST(OperationCostTest, StorageCostRatioIsAbout11x) {
  // §4.2: "SS (flash) storage cost is cheaper than MM (DRAM + flash)
  // storage cost by a factor of about 11X."
  CostParams p = CostParams::PaperDefaults();
  double ratio = MmCost(0, p).storage / SsCost(0, p).storage;
  EXPECT_NEAR(ratio, 11.0, 0.5);
}

TEST(OperationCostTest, ExecutionCostRatioIsAbout12x) {
  // §4.2: "SS execution cost is more costly than MM execution cost by a
  // factor of about 12X" — (I/O + R*cpu) / cpu at paper constants:
  // (50/2e5 + 5.8*300/4e6) / (300/4e6) = (2.5e-4 + 4.35e-4)/7.5e-5 ≈ 9.1;
  // with the paper's rounding ("about 12X") we assert the broad band.
  CostParams p = CostParams::PaperDefaults();
  double n = 1000.0;
  double ratio = SsCost(n, p).execution / MmCost(n, p).execution;
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(OperationCostTest, AtZeroRateOnlyStorageRemains) {
  CostParams p = CostParams::PaperDefaults();
  EXPECT_DOUBLE_EQ(MmCost(0, p).execution, 0.0);
  EXPECT_DOUBLE_EQ(SsCost(0, p).execution, 0.0);
  EXPECT_GT(MmCost(0, p).storage, SsCost(0, p).storage);
}

TEST(OperationCostTest, CostsLinearInRate) {
  CostParams p = CostParams::PaperDefaults();
  double c1 = SsCost(100, p).execution;
  double c2 = SsCost(200, p).execution;
  EXPECT_NEAR(c2, 2 * c1, 1e-12);
}

TEST(OperationCostTest, CheapestTierFlipsWithRate) {
  CostParams p = CostParams::PaperDefaults();
  EXPECT_EQ(CheapestTier(0.001, p), Tier::kSecondaryStorage);
  EXPECT_EQ(CheapestTier(1000.0, p), Tier::kMainMemory);
}

TEST(OperationCostTest, CssCheapestOnlyWhenVeryCold) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams c;  // ratio .5, +3 R decompress
  EXPECT_EQ(CheapestTier(1e-6, p, c), Tier::kCompressedSecondary);
  EXPECT_EQ(CheapestTier(1000.0, p, c), Tier::kMainMemory);
}

TEST(OperationCostTest, CssHasMiddleRegimeWithFavorableParams) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams c;
  c.compression_ratio = 0.4;
  c.decompress_r = 2.0;
  // Sweep rates; expect the tier sequence CSS -> SS -> MM without ever
  // going backwards (each tier's cost is linear in N, so regimes are
  // contiguous).
  int transitions = 0;
  Tier prev = CheapestTier(1e-9, p, c);
  EXPECT_EQ(prev, Tier::kCompressedSecondary);
  for (double n = 1e-9; n < 1e5; n *= 1.3) {
    Tier t = CheapestTier(n, p, c);
    if (t != prev) {
      ++transitions;
      prev = t;
    }
  }
  EXPECT_EQ(prev, Tier::kMainMemory);
  EXPECT_EQ(transitions, 2) << "expect exactly CSS->SS and SS->MM";
}

TEST(OperationCostTest, CompressionSavesStorageProportionally) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams c;
  c.compression_ratio = 0.25;
  EXPECT_NEAR(CssCost(0, p, c).storage, 0.25 * SsCost(0, p).storage, 1e-18);
}

TEST(OperationCostTest, TierNames) {
  EXPECT_EQ(TierName(Tier::kMainMemory), "MM");
  EXPECT_EQ(TierName(Tier::kSecondaryStorage), "SS");
  EXPECT_EQ(TierName(Tier::kCompressedSecondary), "CSS");
}

TEST(CostParamsTest, ToStringMentionsKeyFields) {
  std::string s = CostParams::PaperDefaults().ToString();
  EXPECT_NE(s.find("R=5.80"), std::string::npos);
  EXPECT_NE(s.find("$P=$300"), std::string::npos);
}

}  // namespace
}  // namespace costperf::costmodel
