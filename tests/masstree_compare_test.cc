#include "costmodel/masstree_compare.h"

#include <gtest/gtest.h>

#include <cmath>

namespace costperf::costmodel {
namespace {

// §5.1/§5.2 published values: Px≈2.6, Mx≈2.1, S=6.1GB gives coefficient
// ≈ 8.3e3, T_i ≈ 1.37e-6 s, crossover rate ≈ 0.73e6 ops/sec.
TEST(MassTreeCompareTest, PaperCoefficientIs8300) {
  SystemComparison sys;  // paper defaults
  CostParams p = CostParams::PaperDefaults();
  EXPECT_NEAR(CrossoverCoefficient(sys, p), 8.3e3, 0.2e3);
}

TEST(MassTreeCompareTest, PaperCrossoverInterval) {
  SystemComparison sys;
  CostParams p = CostParams::PaperDefaults();
  EXPECT_NEAR(CrossoverIntervalSeconds(sys, p), 1.37e-6, 0.05e-6);
}

TEST(MassTreeCompareTest, PaperCrossoverRate) {
  SystemComparison sys;
  CostParams p = CostParams::PaperDefaults();
  EXPECT_NEAR(CrossoverOpsPerSec(sys, p), 0.73e6, 0.03e6);
}

// §5.2: "for a 100GB database, the access rate would need to be about
// 12e6 ops/sec before MassTree would have lower costs."
TEST(MassTreeCompareTest, HundredGigabyteDatabaseNeeds12MOps) {
  SystemComparison sys;
  sys.database_bytes = 100e9;
  CostParams p = CostParams::PaperDefaults();
  EXPECT_NEAR(CrossoverOpsPerSec(sys, p), 12e6, 0.5e6);
}

TEST(MassTreeCompareTest, CostsEqualAtCrossover) {
  SystemComparison sys;
  CostParams p = CostParams::PaperDefaults();
  double t = CrossoverIntervalSeconds(sys, p);
  double bw = BwTreeCostPerOp(t, sys, p);
  double mt = MassTreeCostPerOp(t, sys, p);
  EXPECT_NEAR(bw, mt, bw * 1e-9);
}

TEST(MassTreeCompareTest, MassTreeCheaperWhenHotterThanCrossover) {
  SystemComparison sys;
  CostParams p = CostParams::PaperDefaults();
  double t = CrossoverIntervalSeconds(sys, p);
  // Hotter = smaller interval between ops.
  EXPECT_LT(MassTreeCostPerOp(t / 10, sys, p),
            BwTreeCostPerOp(t / 10, sys, p));
  EXPECT_GT(MassTreeCostPerOp(t * 10, sys, p),
            BwTreeCostPerOp(t * 10, sys, p));
}

TEST(MassTreeCompareTest, CrossoverScalesInverselyWithDbSize) {
  SystemComparison small, big;
  small.database_bytes = 1e9;
  big.database_bytes = 10e9;
  CostParams p = CostParams::PaperDefaults();
  EXPECT_NEAR(CrossoverIntervalSeconds(small, p),
              10 * CrossoverIntervalSeconds(big, p),
              CrossoverIntervalSeconds(small, p) * 1e-9);
}

TEST(MassTreeCompareTest, BiggerSpeedupRaisesMassTreeAppeal) {
  // Larger Px -> crossover moves to colder data (bigger T_i), widening
  // the regime where MassTree wins.
  SystemComparison base, faster;
  faster.px = 4.0;
  CostParams p = CostParams::PaperDefaults();
  EXPECT_GT(CrossoverIntervalSeconds(faster, p),
            CrossoverIntervalSeconds(base, p));
}

TEST(MassTreeCompareTest, BiggerMemoryExpansionHurtsMassTree) {
  SystemComparison base, bloated;
  bloated.mx = 4.0;
  CostParams p = CostParams::PaperDefaults();
  EXPECT_LT(CrossoverIntervalSeconds(bloated, p),
            CrossoverIntervalSeconds(base, p));
}

TEST(MassTreeCompareTest, NoSpeedupMeansMassTreeNeverWins) {
  SystemComparison sys;
  sys.px = 1.0;  // same speed, more memory: strictly worse
  CostParams p = CostParams::PaperDefaults();
  EXPECT_DOUBLE_EQ(CrossoverIntervalSeconds(sys, p), 0.0);
  EXPECT_GT(MassTreeCostPerOp(1e-6, sys, p), BwTreeCostPerOp(1e-6, sys, p));
}

}  // namespace
}  // namespace costperf::costmodel
