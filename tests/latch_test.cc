#include "common/latch.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace costperf {
namespace {

TEST(SpinLatchTest, MutualExclusionUnderContention) {
  SpinLatch latch;
  int64_t counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kIters = 50000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinLatchGuard g(&latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

// Exercises deliberately unbalanced TryLock/Unlock sequences, which is
// exactly what -Wthread-safety exists to reject in real code.
void ExerciseTryLockProtocol(SpinLatch* latch) NO_THREAD_SAFETY_ANALYSIS {
  ASSERT_TRUE(latch->TryLock());
  EXPECT_FALSE(latch->TryLock());
  latch->Unlock();
  EXPECT_TRUE(latch->TryLock());
  latch->Unlock();
}

TEST(SpinLatchTest, TryLockFailsWhenHeld) {
  SpinLatch latch;
  ExerciseTryLockProtocol(&latch);
}

TEST(OptimisticVersionTest, StableSnapshotUnchangedWithoutWrites) {
  OptimisticVersion v;
  uint64_t snap = v.StableSnapshot();
  EXPECT_FALSE(v.Changed(snap));
}

TEST(OptimisticVersionTest, InsertInvalidatesSnapshot) {
  OptimisticVersion v;
  uint64_t snap = v.StableSnapshot();
  v.Lock();
  v.MarkInserting();
  v.Unlock();
  EXPECT_TRUE(v.Changed(snap));
}

TEST(OptimisticVersionTest, SplitInvalidatesSnapshot) {
  OptimisticVersion v;
  uint64_t snap = v.StableSnapshot();
  v.Lock();
  v.MarkSplitting();
  v.Unlock();
  EXPECT_TRUE(v.Changed(snap));
}

TEST(OptimisticVersionTest, LockWithoutMarksDoesNotInvalidate) {
  OptimisticVersion v;
  uint64_t snap = v.StableSnapshot();
  v.Lock();
  v.Unlock();
  EXPECT_FALSE(v.Changed(snap));
}

TEST(OptimisticVersionTest, DeletedAndRootFlags) {
  OptimisticVersion v;
  EXPECT_FALSE(v.IsDeleted());
  EXPECT_FALSE(v.IsRoot());
  v.SetRoot(true);
  EXPECT_TRUE(v.IsRoot());
  v.SetRoot(false);
  EXPECT_FALSE(v.IsRoot());
  v.MarkDeleted();
  EXPECT_TRUE(v.IsDeleted());
}

TEST(OptimisticVersionTest, SnapshotWaitsForLockRelease) {
  OptimisticVersion v;
  v.Lock();
  std::thread t([&] {
    // StableSnapshot must spin until unlock; it should then see a clean
    // version.
    uint64_t snap = v.StableSnapshot();
    EXPECT_EQ(snap & OptimisticVersion::kLockBit, 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  v.MarkInserting();
  v.Unlock();
  t.join();
}

TEST(OptimisticVersionTest, ConcurrentReadersDetectWriters) {
  OptimisticVersion v;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> validated{0};
  std::thread reader([&] {
    while (!stop.load()) {
      uint64_t snap = v.StableSnapshot();
      // Simulated read...
      if (!v.Changed(snap)) validated++;
    }
  });
  for (int i = 0; i < 1000; ++i) {
    v.Lock();
    v.MarkInserting();
    v.Unlock();
  }
  stop = true;
  reader.join();
  // No assertion on validated count (timing dependent); the test checks
  // for absence of hangs/torn state under TSan-style interleaving.
  SUCCEED();
}

}  // namespace
}  // namespace costperf
