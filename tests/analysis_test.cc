#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/bwtree_validator.h"
#include "analysis/invariant_checker.h"
#include "analysis/log_store_auditor.h"
#include "analysis/mapping_table_auditor.h"
#include "bwtree/node.h"
#include "core/caching_store.h"
#include "core/sharded_store.h"
#include "workload/runner.h"

namespace costperf {
namespace {

using analysis::BwTreeValidator;
using analysis::LogStoreAuditor;
using analysis::MappingTableAuditor;
using analysis::ReportToString;
using analysis::Violation;

core::CachingStoreOptions SmallStoreOptions() {
  core::CachingStoreOptions opts;
  opts.memory_budget_bytes = 256 << 10;
  opts.device.capacity_bytes = 64ull << 20;
  opts.device.max_iops = 0;  // unthrottled: tests measure structure, not cost
  return opts;
}

std::unique_ptr<core::CachingStore> PopulatedStore(int records) {
  auto store = std::make_unique<core::CachingStore>(SmallStoreOptions());
  for (int i = 0; i < records; ++i) {
    std::string key = "key" + std::to_string(100000 + i);
    EXPECT_TRUE(store->Put(Slice(key), Slice("value" + std::to_string(i))).ok());
  }
  return store;
}

bool HasRule(const std::vector<Violation>& violations,
             const std::string& rule) {
  for (const Violation& v : violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

// --- healthy stores -------------------------------------------------------

TEST(AnalysisCleanTest, FreshStoreReportsNoViolations) {
  core::CachingStore store(SmallStoreOptions());
  auto violations = store.CheckInvariants();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

TEST(AnalysisCleanTest, PopulatedStoreReportsNoViolations) {
  auto store = PopulatedStore(2000);
  auto violations = store->CheckInvariants();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

TEST(AnalysisCleanTest, CheckpointEvictionAndGcStayClean) {
  auto store = PopulatedStore(2000);
  // Overwrites create dead log records; checkpoint + GC exercise the
  // relocation/accounting paths the LogStoreAuditor closes over.
  for (int i = 0; i < 2000; i += 2) {
    std::string key = "key" + std::to_string(100000 + i);
    ASSERT_TRUE(store->Put(Slice(key), Slice("rewritten")).ok());
  }
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->EvictAll().ok());
  ASSERT_TRUE(store->RunGc(0.95).ok());
  auto violations = store->CheckInvariants();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

TEST(AnalysisCleanTest, ConcurrentRunnerWorkloadStaysClean) {
  auto store = core::ShardedStore::OfCaching(2, SmallStoreOptions());
  workload::WorkloadSpec spec;
  spec.record_count = 2000;
  spec.value_size = 64;
  spec.read_proportion = 0.5;
  spec.update_proportion = 0.4;
  spec.insert_proportion = 0.1;
  workload::RunnerOptions ropts;
  ropts.threads = 4;
  ropts.ops_per_thread = 3000;
  workload::Runner runner(store.get(), spec, ropts);
  workload::RunReport report = runner.LoadAndRun();
  EXPECT_EQ(report.failed_ops, 0u);
  store->Maintain();
  auto violations = store->CheckInvariants();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

// --- seeded corruption: delta chain ---------------------------------------

TEST(BwTreeValidatorTest, DetectsUnsortedLeafKeys) {
  auto store = PopulatedStore(200);
  bwtree::BwTree* tree = store->tree();
  auto pid = tree->LeafOf(Slice("key100050"));
  ASSERT_TRUE(pid.ok());
  mapping::MappingTable* table = tree->mapping_table();
  const uint64_t orig = table->Get(*pid);

  auto* bad = new bwtree::LeafBase();
  bad->keys = {"zeta", "alpha"};  // not ascending
  bad->values = {"1", "2"};
  table->Set(*pid, bwtree::EncodePointer(bad));

  BwTreeValidator validator(tree);
  auto violations = validator.Check();
  EXPECT_TRUE(HasRule(violations, "key-order")) << ReportToString(violations);

  table->Set(*pid, orig);  // restore so teardown walks a healthy tree
  delete bad;
}

TEST(BwTreeValidatorTest, DetectsCorruptChainLength) {
  auto store = PopulatedStore(200);
  bwtree::BwTree* tree = store->tree();
  auto pid = tree->LeafOf(Slice("key100050"));
  ASSERT_TRUE(pid.ok());
  mapping::MappingTable* table = tree->mapping_table();
  const uint64_t orig = table->Get(*pid);

  auto* delta = new bwtree::InsertDelta();
  delta->key = "key100050";
  delta->value = "corrupt";
  delta->next = bwtree::DecodePointer(orig);
  delta->chain_length = 42;  // lies about its depth
  table->Set(*pid, bwtree::EncodePointer(delta));

  BwTreeValidator validator(tree);
  auto violations = validator.Check();
  EXPECT_TRUE(HasRule(violations, "chain-length"))
      << ReportToString(violations);

  table->Set(*pid, orig);
  delta->next = nullptr;
  delete delta;
}

TEST(BwTreeValidatorTest, DetectsBrokenChainTail) {
  auto store = PopulatedStore(200);
  bwtree::BwTree* tree = store->tree();
  auto pid = tree->LeafOf(Slice("key100050"));
  ASSERT_TRUE(pid.ok());
  mapping::MappingTable* table = tree->mapping_table();
  const uint64_t orig = table->Get(*pid);

  auto* delta = new bwtree::DeleteDelta();
  delta->key = "key100050";
  delta->next = nullptr;  // chain ends without ever reaching a base
  delta->chain_length = 1;
  table->Set(*pid, bwtree::EncodePointer(delta));

  BwTreeValidator validator(tree);
  auto violations = validator.Check();
  EXPECT_TRUE(HasRule(violations, "chain-tail")) << ReportToString(violations);

  table->Set(*pid, orig);
  delete delta;
}

// --- seeded corruption: mapping table -------------------------------------

TEST(MappingTableAuditorTest, DetectsLeakedPid) {
  auto store = PopulatedStore(200);
  bwtree::BwTree* tree = store->tree();
  mapping::MappingTable* table = tree->mapping_table();

  // Allocate an id holding a flash word that nothing references.
  const mapping::PageId leaked =
      table->Allocate(bwtree::EncodeFlash(llama::FlashAddress(0, 64)));
  ASSERT_NE(leaked, mapping::kInvalidPageId);

  MappingTableAuditor auditor(tree, store->cache());
  auto violations = auditor.Check();
  EXPECT_TRUE(HasRule(violations, "leaked-pid")) << ReportToString(violations);

  table->Set(leaked, 0);
  table->Free(leaked);
  violations = auditor.Check();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

TEST(MappingTableAuditorTest, DetectsDanglingFreedPid) {
  auto store = PopulatedStore(200);
  bwtree::BwTree* tree = store->tree();
  auto pid = tree->LeafOf(Slice("key100050"));
  ASSERT_TRUE(pid.ok());
  mapping::MappingTable* table = tree->mapping_table();
  const uint64_t orig = table->Get(*pid);

  table->Free(*pid);  // still named by its parent: a dangling free

  MappingTableAuditor auditor(tree, store->cache());
  auto violations = auditor.Check();
  EXPECT_TRUE(HasRule(violations, "dangling-free"))
      << ReportToString(violations);

  // Free zeroed the word; re-allocating (LIFO, free list was empty
  // before) hands the id back so teardown sees the original chain.
  ASSERT_EQ(table->Allocate(orig), *pid);
  violations = auditor.Check();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

TEST(MappingTableAuditorTest, DetectsCacheMappingDisagreement) {
  auto store = PopulatedStore(200);
  // Cache accounting for an id whose mapping entry was never set.
  const mapping::PageId phantom = store->tree()->mapping_table()->Allocate(0);
  ASSERT_NE(phantom, mapping::kInvalidPageId);
  store->cache()->Insert(phantom, 4096);

  MappingTableAuditor auditor(store->tree(), store->cache());
  auto violations = auditor.Check();
  EXPECT_TRUE(HasRule(violations, "cache-not-resident"))
      << ReportToString(violations);

  store->cache()->Erase(phantom);
  store->tree()->mapping_table()->Free(phantom);
  violations = auditor.Check();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

// --- seeded corruption: log store -----------------------------------------

TEST(LogStoreAuditorTest, DetectsMiscountedSegment) {
  auto store = PopulatedStore(500);
  llama::LogStructuredStore* log = store->log_store();

  LogStoreAuditor auditor(log);
  auto violations = auditor.Check();
  ASSERT_TRUE(violations.empty()) << ReportToString(violations);

  // Seed a 100-byte accounting error in the open segment.
  log->TestOnlyAdjustSegmentAccounting(log->open_segment_id(), 100, 0);
  violations = auditor.Check();
  EXPECT_TRUE(HasRule(violations, "space-accounting"))
      << ReportToString(violations);

  log->TestOnlyAdjustSegmentAccounting(log->open_segment_id(), -100, 0);
  violations = auditor.Check();
  EXPECT_TRUE(violations.empty()) << ReportToString(violations);
}

TEST(LogStoreAuditorTest, DetectsOvercountedDeadBytes) {
  auto store = PopulatedStore(500);
  llama::LogStructuredStore* log = store->log_store();

  // More dead bytes than the segment ever held.
  log->TestOnlyAdjustSegmentAccounting(log->open_segment_id(), 0, 1 << 20);
  LogStoreAuditor auditor(log);
  auto violations = auditor.Check();
  EXPECT_TRUE(HasRule(violations, "dead-exceeds-live"))
      << ReportToString(violations);
  EXPECT_TRUE(HasRule(violations, "dead-accounting"))
      << ReportToString(violations);
}

// --- report plumbing ------------------------------------------------------

TEST(AnalysisReportTest, ViolationToStringCarriesRuleAndEntity) {
  Violation v{"LogStoreAuditor", "space-accounting", "segment 3",
              "off by 100"};
  EXPECT_EQ(v.ToString(),
            "LogStoreAuditor/space-accounting [segment 3]: off by 100");
  EXPECT_EQ(ReportToString({}), "no violations");
  EXPECT_NE(ReportToString({v}).find("1 violation(s)"), std::string::npos);
}

}  // namespace
}  // namespace costperf
