#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/sharded_store.h"

namespace costperf::core {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu", (unsigned long long)i);
  return buf;
}

TEST(ShardedStoreTest, BasicCrudRoutesByHash) {
  auto store = ShardedStore::OfMemory(4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto r = store->Get(Key(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "v" + std::to_string(i));
  }
  ASSERT_TRUE(store->Delete(Key(7)).ok());
  EXPECT_TRUE(store->Get(Key(7)).status().IsNotFound());

  // Hash placement actually spreads load: every shard owns some keys.
  for (size_t s = 0; s < store->shard_count(); ++s) {
    EXPECT_GT(store->shard(s)->Stats().writes, 0u) << "shard " << s;
  }
  // Placement is stable and consistent with ShardIndexOf.
  for (int i = 0; i < 50; ++i) {
    size_t idx = store->ShardIndexOf(Key(i));
    auto r = store->shard(idx)->Get(Key(i));
    if (i != 7) {
      EXPECT_TRUE(r.ok()) << "key " << i << " not on its shard";
    }
  }
}

TEST(ShardedStoreTest, CrossShardScanIsGloballyOrdered) {
  auto store = ShardedStore::OfMemory(5);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(store->Put(Key(i), std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store->Scan(Key(10), 25, &out).ok());
  ASSERT_EQ(out.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(out[i].first, Key(10 + i));
    EXPECT_EQ(out[i].second, std::to_string(10 + i));
  }
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));

  // Scan past the end returns the remaining records only.
  ASSERT_TRUE(store->Scan(Key(295), 100, &out).ok());
  EXPECT_EQ(out.size(), 5u);

  // Zero limit is a no-op.
  ASSERT_TRUE(store->Scan(Key(0), 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ShardedStoreTest, StatsAggregateAcrossShards) {
  auto store = ShardedStore::OfMemory(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v").ok());
  }
  for (int i = 0; i < 40; ++i) (void)store->Get(Key(i));

  KvStoreStats total = store->Stats();
  EXPECT_EQ(total.writes, 100u);
  EXPECT_EQ(total.reads, 40u);
  EXPECT_GT(total.memory_bytes, 0u);

  KvStoreStats manual;
  for (size_t s = 0; s < store->shard_count(); ++s) {
    manual += store->shard(s)->Stats();
  }
  EXPECT_EQ(total.reads, manual.reads);
  EXPECT_EQ(total.writes, manual.writes);
  EXPECT_EQ(total.memory_bytes, manual.memory_bytes);
  EXPECT_EQ(total.memory_bytes, store->MemoryFootprintBytes());

  // StatsString is a rendering of Stats(), not an independent format.
  EXPECT_NE(store->StatsString().find("sharded[3]"), std::string::npos);
  EXPECT_NE(store->StatsString().find("reads=40"), std::string::npos);
}

TEST(ShardedStoreTest, MultiGetPreservesInputOrder) {
  auto store = ShardedStore::OfMemory(4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  std::vector<std::string> keys;
  for (int i = 49; i >= 0; i -= 7) keys.push_back(Key(i));
  keys.push_back(Key(999));  // absent

  auto results = store->MultiGet(keys);
  ASSERT_EQ(results.size(), keys.size());
  size_t k = 0;
  for (int i = 49; i >= 0; i -= 7, ++k) {
    ASSERT_TRUE(results[k].ok()) << keys[k];
    EXPECT_EQ(*results[k], "v" + std::to_string(i));
  }
  EXPECT_TRUE(results.back().status().IsNotFound());
}

TEST(ShardedStoreTest, WriteBatchAppliesEveryEntry) {
  auto store = ShardedStore::OfMemory(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 200; ++i) entries.emplace_back(Key(i), "b" + Key(i));
  ASSERT_TRUE(store->WriteBatch(entries).ok());
  for (int i = 0; i < 200; ++i) {
    auto r = store->Get(Key(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "b" + Key(i));
  }
  EXPECT_EQ(store->Stats().writes, 200u);
}

TEST(ShardedStoreTest, DefaultBatchOpsWorkOnUnshardedStores) {
  // The KvStore default implementations (plain loops) back the same API.
  MemoryStore store;
  std::vector<std::pair<std::string, std::string>> entries = {
      {Key(1), "a"}, {Key(2), "b"}};
  ASSERT_TRUE(store.WriteBatch(entries).ok());
  std::vector<std::string> keys = {Key(2), Key(3), Key(1)};
  auto results = store.MultiGet(keys);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(*results[0], "b");
  EXPECT_TRUE(results[1].status().IsNotFound());
  EXPECT_EQ(*results[2], "a");
}

TEST(ShardedStoreTest, EachShardRecoversFromItsOwnDevice) {
  constexpr size_t kShards = 3;
  storage::SsdOptions dev_opts;
  dev_opts.capacity_bytes = 256ull << 20;
  dev_opts.max_iops = 0;
  std::vector<std::unique_ptr<storage::SsdDevice>> devices;
  for (size_t i = 0; i < kShards; ++i) {
    devices.push_back(std::make_unique<storage::SsdDevice>(dev_opts));
  }

  auto shard_options = [&](size_t i) {
    CachingStoreOptions o;
    o.device.capacity_bytes = dev_opts.capacity_bytes;
    o.device.max_iops = 0;
    o.tree.max_page_bytes = 1024;
    o.maintenance_interval_ops = 0;
    o.external_device = devices[i].get();
    return o;
  };

  {
    ShardedStore store(kShards, [&](size_t i) {
      return std::make_unique<CachingStore>(shard_options(i));
    });
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE(store.Put(Key(i), "v" + std::to_string(i)).ok());
    }
    for (size_t s = 0; s < kShards; ++s) {
      store.WithShard(s, [](KvStore* shard) {
        ASSERT_TRUE(static_cast<CachingStore*>(shard)->Checkpoint().ok());
      });
    }
  }  // "crash": stores destroyed, devices survive

  ShardedStore reopened(kShards, [&](size_t i) {
    return std::make_unique<CachingStore>(shard_options(i));
  });
  for (size_t s = 0; s < kShards; ++s) {
    reopened.WithShard(s, [](KvStore* shard) {
      ASSERT_TRUE(static_cast<CachingStore*>(shard)->Recover().ok());
    });
  }
  for (int i = 0; i < 1500; ++i) {
    auto r = reopened.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(*r, "v" + std::to_string(i));
  }
  // Placement is stable across the restart: a scan sees every record in
  // global order exactly once.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(reopened.Scan(Key(0), 2000, &out).ok());
  ASSERT_EQ(out.size(), 1500u);
  std::set<std::string> seen;
  for (const auto& [k, v] : out) seen.insert(k);
  EXPECT_EQ(seen.size(), 1500u);
}

}  // namespace
}  // namespace costperf::core
