#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/sharded_store.h"

namespace costperf::core {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu", (unsigned long long)i);
  return buf;
}

TEST(ShardedStoreTest, BasicCrudRoutesByHash) {
  auto store = ShardedStore::OfMemory(4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto r = store->Get(Key(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "v" + std::to_string(i));
  }
  ASSERT_TRUE(store->Delete(Key(7)).ok());
  EXPECT_TRUE(store->Get(Key(7)).status().IsNotFound());

  // Hash placement actually spreads load: every shard owns some keys.
  for (size_t s = 0; s < store->shard_count(); ++s) {
    EXPECT_GT(store->shard(s)->Stats().writes, 0u) << "shard " << s;
  }
  // Placement is stable and consistent with ShardIndexOf.
  for (int i = 0; i < 50; ++i) {
    size_t idx = store->ShardIndexOf(Key(i));
    auto r = store->shard(idx)->Get(Key(i));
    if (i != 7) {
      EXPECT_TRUE(r.ok()) << "key " << i << " not on its shard";
    }
  }
}

TEST(ShardedStoreTest, CrossShardScanIsGloballyOrdered) {
  auto store = ShardedStore::OfMemory(5);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(store->Put(Key(i), std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store->Scan(Key(10), 25, &out).ok());
  ASSERT_EQ(out.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(out[i].first, Key(10 + i));
    EXPECT_EQ(out[i].second, std::to_string(10 + i));
  }
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));

  // Scan past the end returns the remaining records only.
  ASSERT_TRUE(store->Scan(Key(295), 100, &out).ok());
  EXPECT_EQ(out.size(), 5u);

  // Zero limit is a no-op.
  ASSERT_TRUE(store->Scan(Key(0), 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ShardedStoreTest, StatsAggregateAcrossShards) {
  auto store = ShardedStore::OfMemory(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v").ok());
  }
  for (int i = 0; i < 40; ++i) (void)store->Get(Key(i));

  KvStoreStats total = store->Stats();
  EXPECT_EQ(total.writes, 100u);
  EXPECT_EQ(total.reads, 40u);
  EXPECT_GT(total.memory_bytes, 0u);

  KvStoreStats manual;
  for (size_t s = 0; s < store->shard_count(); ++s) {
    manual += store->shard(s)->Stats();
  }
  EXPECT_EQ(total.reads, manual.reads);
  EXPECT_EQ(total.writes, manual.writes);
  EXPECT_EQ(total.memory_bytes, manual.memory_bytes);
  EXPECT_EQ(total.memory_bytes, store->MemoryFootprintBytes());

  // DebugString is a display-only rendering of Stats(); a spot-check that
  // the rendering exists is all the coverage it needs — the counters
  // above are asserted structurally.
  EXPECT_NE(store->DebugString().find("sharded[3]"), std::string::npos);
}

TEST(ShardedStoreTest, MultiGetPreservesInputOrder) {
  auto store = ShardedStore::OfMemory(4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  std::vector<std::string> keys;
  for (int i = 49; i >= 0; i -= 7) keys.push_back(Key(i));
  keys.push_back(Key(999));  // absent

  BatchReadResult result;
  ASSERT_TRUE(store->MultiGet(keys, &result).ok());
  ASSERT_EQ(result.size(), keys.size());
  size_t k = 0;
  for (int i = 49; i >= 0; i -= 7, ++k) {
    ASSERT_TRUE(result.statuses[k].ok()) << keys[k];
    EXPECT_EQ(result.values[k], "v" + std::to_string(i));
  }
  EXPECT_TRUE(result.statuses.back().IsNotFound());
  EXPECT_EQ(result.found(), keys.size() - 1);
}

TEST(ShardedStoreTest, MultiGetReusesValueBuffersAcrossBatches) {
  auto store = ShardedStore::OfMemory(4);
  ASSERT_TRUE(store->Put(Key(1), std::string(500, 'x')).ok());
  ASSERT_TRUE(store->Put(Key(2), "small").ok());

  BatchReadResult result;
  std::vector<std::string> keys = {Key(1)};
  ASSERT_TRUE(store->MultiGet(keys, &result).ok());
  const size_t cap = result.values[0].capacity();
  ASSERT_GE(cap, 500u);

  // A second batch through the same result object keeps slot 0's buffer.
  keys[0] = Key(2);
  ASSERT_TRUE(store->MultiGet(keys, &result).ok());
  EXPECT_EQ(result.values[0], "small");
  EXPECT_GE(result.values[0].capacity(), cap);
}

TEST(ShardedStoreTest, MultiGetGroupsPerShard) {
  auto store = ShardedStore::OfMemory(4);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store->Put(Key(i), "v").ok());
  }
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back(Key(i));

  BatchReadResult result;
  ASSERT_TRUE(store->MultiGet(keys, &result).ok());

  // Grouping stats: one batch, 64 keys, and at most one group visit per
  // shard — the wire/batch paths are provably not per-key loops through
  // the composite.
  KvStoreStats stats = store->Stats();
  EXPECT_EQ(stats.multiget_batches, 1u);
  EXPECT_EQ(stats.multiget_keys, 64u);
  EXPECT_GE(stats.multiget_shard_groups, 1u);
  EXPECT_LE(stats.multiget_shard_groups, store->shard_count());
}

TEST(ShardedStoreTest, MultiGetHonorsMaxValueBytes) {
  auto store = ShardedStore::OfMemory(2);
  ASSERT_TRUE(store->Put(Key(1), std::string(1000, 'x')).ok());
  ASSERT_TRUE(store->Put(Key(2), "ok").ok());

  std::vector<std::string> keys = {Key(1), Key(2)};
  ReadOptions opts;
  opts.max_value_bytes = 64;
  BatchReadResult result;
  Status s = store->MultiGet(keys, opts, &result);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result.statuses[0].code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(result.statuses[1].ok());
  EXPECT_EQ(result.values[1], "ok");
}

TEST(ShardedStoreTest, WriteBatchAppliesEveryEntry) {
  auto store = ShardedStore::OfMemory(4);
  std::vector<KvEntry> entries;
  for (int i = 0; i < 200; ++i) entries.emplace_back(Key(i), "b" + Key(i));
  BatchWriteResult result;
  ASSERT_TRUE(store->WriteBatch(entries, &result).ok());
  EXPECT_EQ(result.ok_count, 200u);
  EXPECT_TRUE(result.all_ok());
  for (int i = 0; i < 200; ++i) {
    auto r = store->Get(Key(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "b" + Key(i));
  }
  KvStoreStats stats = store->Stats();
  EXPECT_EQ(stats.writes, 200u);
  EXPECT_EQ(stats.writebatch_batches, 1u);
  EXPECT_EQ(stats.writebatch_entries, 200u);
  EXPECT_LE(stats.writebatch_shard_groups, store->shard_count());
}

TEST(ShardedStoreTest, WriteBatchKeepsLastWriterWinsWithinShardGroups) {
  auto store = ShardedStore::OfMemory(4);
  // Same key three times in one batch: input order must survive grouping.
  std::vector<KvEntry> entries = {
      {Key(5), "first"}, {Key(9), "x"}, {Key(5), "second"}, {Key(5), "third"}};
  BatchWriteResult result;
  ASSERT_TRUE(store->WriteBatch(entries, &result).ok());
  EXPECT_EQ(result.ok_count, 4u);
  auto r = store->Get(Key(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "third");
}

namespace {
// A MemoryStore that rejects writes of the value "poison" — lets the batch
// tests exercise real per-entry failures.
class PoisonStore : public MemoryStore {
 public:
  Status Put(const Slice& key, const Slice& value) override {
    if (value == Slice("poison")) return Status::IoError("poisoned write");
    return MemoryStore::Put(key, value);
  }
};
}  // namespace

TEST(ShardedStoreTest, WriteBatchFailFastStopsInInputOrder) {
  PoisonStore store;  // default (base-class) batch implementation
  std::vector<KvEntry> entries = {
      {Key(1), "a"}, {Key(7), "poison"}, {Key(2), "never"}};
  WriteOptions opts;
  opts.fail_fast = true;
  BatchWriteResult result;
  Status s = store.WriteBatch(entries, opts, &result);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(result.statuses[0].ok());
  EXPECT_FALSE(result.statuses[1].ok());
  EXPECT_TRUE(result.statuses[2].IsAborted()) << "must not be attempted";
  EXPECT_EQ(result.ok_count, 1u);
  EXPECT_TRUE(store.Get(Key(2)).status().IsNotFound());
}

TEST(ShardedStoreTest, WriteBatchReportsPerEntryFailuresWithoutFailFast) {
  auto store = std::make_unique<ShardedStore>(4, [](size_t) {
    return std::unique_ptr<KvStore>(new PoisonStore());
  });
  std::vector<KvEntry> entries = {
      {Key(1), "a"}, {Key(7), "poison"}, {Key(2), "b"}};
  BatchWriteResult result;
  Status s = store->WriteBatch(entries, &result);
  EXPECT_FALSE(s.ok());  // FirstError surfaces the poisoned entry
  EXPECT_TRUE(result.statuses[0].ok());
  EXPECT_FALSE(result.statuses[1].ok());
  EXPECT_TRUE(result.statuses[2].ok()) << "later entries still attempted";
  EXPECT_EQ(result.ok_count, 2u);
  EXPECT_TRUE(store->Get(Key(2)).ok());
}

TEST(ShardedStoreTest, DefaultBatchOpsWorkOnUnshardedStores) {
  // The KvStore default implementations (plain loops) back the same API.
  MemoryStore store;
  std::vector<KvEntry> entries = {{Key(1), "a"}, {Key(2), "b"}};
  BatchWriteResult wr;
  ASSERT_TRUE(store.WriteBatch(entries, &wr).ok());
  EXPECT_EQ(wr.ok_count, 2u);
  std::vector<std::string> keys = {Key(2), Key(3), Key(1)};
  BatchReadResult rr;
  ASSERT_TRUE(store.MultiGet(keys, &rr).ok());
  ASSERT_EQ(rr.size(), 3u);
  EXPECT_EQ(rr.values[0], "b");
  EXPECT_TRUE(rr.statuses[1].IsNotFound());
  EXPECT_EQ(rr.values[2], "a");
}

TEST(ShardedStoreTest, BatchGetScattersAcrossShards) {
  // The low-level scatter surface: ops grouped per shard, results landing
  // in caller-owned slots at input positions.
  auto store = ShardedStore::OfMemory(3);
  ASSERT_TRUE(store->Put(Key(1), "a").ok());
  ASSERT_TRUE(store->Put(Key(2), "b").ok());
  std::vector<std::string> keys = {Key(2), Key(9), Key(1)};
  std::vector<std::string> values(keys.size());
  std::vector<Status> statuses(keys.size());
  std::vector<BatchGetOp> ops(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ops[i] = {Slice(keys[i]), &values[i], &statuses[i]};
  }
  store->BatchGet(ops.data(), ops.size());
  EXPECT_EQ(values[0], "b");
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_EQ(values[2], "a");
}

TEST(ShardedStoreTest, EachShardRecoversFromItsOwnDevice) {
  constexpr size_t kShards = 3;
  storage::SsdOptions dev_opts;
  dev_opts.capacity_bytes = 256ull << 20;
  dev_opts.max_iops = 0;
  std::vector<std::unique_ptr<storage::SsdDevice>> devices;
  for (size_t i = 0; i < kShards; ++i) {
    devices.push_back(std::make_unique<storage::SsdDevice>(dev_opts));
  }

  auto shard_options = [&](size_t i) {
    CachingStoreOptions o;
    o.device.capacity_bytes = dev_opts.capacity_bytes;
    o.device.max_iops = 0;
    o.tree.max_page_bytes = 1024;
    o.maintenance_interval_ops = 0;
    o.external_device = devices[i].get();
    return o;
  };

  {
    ShardedStore store(kShards, [&](size_t i) {
      return std::make_unique<CachingStore>(shard_options(i));
    });
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE(store.Put(Key(i), "v" + std::to_string(i)).ok());
    }
    for (size_t s = 0; s < kShards; ++s) {
      store.WithShard(s, [](KvStore* shard) {
        ASSERT_TRUE(static_cast<CachingStore*>(shard)->Checkpoint().ok());
      });
    }
  }  // "crash": stores destroyed, devices survive

  ShardedStore reopened(kShards, [&](size_t i) {
    return std::make_unique<CachingStore>(shard_options(i));
  });
  for (size_t s = 0; s < kShards; ++s) {
    reopened.WithShard(s, [](KvStore* shard) {
      ASSERT_TRUE(static_cast<CachingStore*>(shard)->Recover().ok());
    });
  }
  for (int i = 0; i < 1500; ++i) {
    auto r = reopened.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(*r, "v" + std::to_string(i));
  }
  // Placement is stable across the restart: a scan sees every record in
  // global order exactly once.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(reopened.Scan(Key(0), 2000, &out).ok());
  ASSERT_EQ(out.size(), 1500u);
  std::set<std::string> seen;
  for (const auto& [k, v] : out) seen.insert(k);
  EXPECT_EQ(seen.size(), 1500u);
}

}  // namespace
}  // namespace costperf::core
