#include "common/slice.h"

#include <gtest/gtest.h>

namespace costperf {
namespace {

TEST(SliceTest, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SliceTest, FromStringAndBack) {
  std::string str = "hello";
  Slice s(str);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_EQ(s.view(), std::string_view("hello"));
}

TEST(SliceTest, FromCString) {
  Slice s("abc");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[2], 'c');
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
}

TEST(SliceTest, ComparisonWithEmbeddedNul) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a), Slice(std::string("a\0b", 3)));
}

TEST(SliceTest, EqualityAndInequality) {
  EXPECT_EQ(Slice("x"), Slice("x"));
  EXPECT_NE(Slice("x"), Slice("y"));
  EXPECT_NE(Slice("x"), Slice("xx"));
  EXPECT_EQ(Slice(), Slice(""));
}

TEST(SliceTest, StartsWith) {
  Slice s("prefix_body");
  EXPECT_TRUE(s.starts_with(Slice("prefix")));
  EXPECT_TRUE(s.starts_with(Slice()));
  EXPECT_FALSE(s.starts_with(Slice("body")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(3);
  EXPECT_EQ(s.ToString(), "def");
  s.remove_prefix(3);
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, LessThanOperator) {
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_FALSE(Slice("b") < Slice("a"));
  EXPECT_FALSE(Slice("a") < Slice("a"));
}

}  // namespace
}  // namespace costperf
