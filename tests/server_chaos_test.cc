// Network chaos suite: seeded scripted fault plans against a live server
// (client- and server-side injection), plus deterministic tests for each
// degradation mechanism — load shedding by queue depth, deadline expiry
// without store work, the slow-connection watchdog, degraded-shard write
// rejection with retry_after, client retry/backoff honoring the hint, and
// SyncClient error paths against a hand-rolled misbehaving server.
//
// The seeded loop runs COSTPERF_CHAOS_ITERS plans (default 200; the
// sanitizer lanes run a reduced count). Invariants per plan: the server
// never wedges (every client op completes under a recv timeout), clean
// connections receive every response in request order, a post-plan probe
// on a fresh connection round-trips, and accepted == closed after Stop.
// Across the whole loop the process must not leak fds.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/retry.h"
#include "core/caching_store.h"
#include "core/sharded_store.h"
#include "fault/fault_injector.h"
#include "fault/net_fault.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/device.h"

namespace costperf::server {
namespace {

int ChaosIters() {
  const char* env = getenv("COSTPERF_CHAOS_ITERS");
  if (env != nullptr && *env != '\0') {
    const int n = atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

// Open-fd count via /proc/self/fd — the leak detector for the chaos loop.
int CountOpenFds() {
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int n = 0;
  while (readdir(d) != nullptr) ++n;
  closedir(d);
  return n;
}

// One scripted misbehavior shape per connection; stalls and mutes are
// excluded here (they park a connection until the watchdog fires, which
// the deterministic tests below cover without burning wall-clock per
// plan).
fault::NetFaultPlan RandomPlan(Random* rng) {
  fault::NetFaultPlan p;
  switch (rng->Uniform(6)) {
    case 0:  // torn frames: every read delivers a few bytes
      p.max_read_bytes = 1 + rng->Uniform(7);
      break;
    case 1:  // short writes
      p.max_write_bytes = 1 + rng->Uniform(7);
      break;
    case 2:  // mid-stream disconnect at the N-th inbound byte
      p.fail_read_after_bytes = 1 + rng->Uniform(300);
      break;
    case 3:  // mid-stream disconnect at the N-th outbound byte
      p.fail_write_after_bytes = 1 + rng->Uniform(300);
      break;
    case 4:  // random resets
      p.read_error_rate = 0.05 + 0.25 * rng->NextDouble();
      break;
    default:  // clean connection riding alongside the faulty ones
      break;
  }
  return p;
}

TEST(ServerChaosTest, SeededFaultPlansNeverWedgeTheServer) {
  const int iters = ChaosIters();
  const int fds_before = CountOpenFds();
  ASSERT_GT(fds_before, 0);

  for (int iter = 0; iter < iters; ++iter) {
    Random rng(0xc4a05ull * 2654435761u + static_cast<uint64_t>(iter));
    SCOPED_TRACE("plan " + std::to_string(iter));

    const bool server_side = rng.Uniform(2) == 0;
    const int nconns = 2 + static_cast<int>(rng.Uniform(3));

    fault::NetFaultInjector injector(0x5eedull + iter);
    std::vector<fault::NetFaultPlan> plans;
    for (int c = 0; c < nconns; ++c) plans.push_back(RandomPlan(&rng));
    if (server_side) {
      // One I/O thread: accept order == adoption order, so scripted plans
      // line up with connections deterministically.
      for (const auto& p : plans) injector.ScriptConnection(p);
    }

    auto store = core::ShardedStore::OfMemory(2);
    ServerOptions opts;
    opts.io_threads = 1;
    if (server_side) opts.net_fault = &injector;
    if (rng.Uniform(4) == 0) opts.shed_backlog_bytes = 1 + rng.Uniform(4096);
    Server server(store.get(), opts);
    ASSERT_TRUE(server.Start().ok());

    for (int c = 0; c < nconns; ++c) {
      SyncClient client;
      if (!server_side) {
        // Client-side injection: the client's own socket misbehaves.
        injector.Reset();
        injector.ScriptConnection(plans[c]);
        client.set_net_fault(&injector);
      }
      // Wedge detector: no op may block longer than this.
      client.set_recv_timeout_millis(2000);
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

      // Mixed pipelined window; a few frames carry deadlines.
      const int frames = 1 + static_cast<int>(rng.Uniform(6));
      std::vector<uint32_t> ids;
      for (int f = 0; f < frames; ++f) {
        client.set_deadline_micros(rng.Uniform(8) == 0 ? 5'000'000 : 0);
        switch (rng.Uniform(4)) {
          case 0:
            ids.push_back(client.QueueGet("k" + std::to_string(f)));
            break;
          case 1:
            ids.push_back(client.QueuePut("k" + std::to_string(f), "v"));
            break;
          case 2: {
            std::vector<std::string> keys = {"a", "b"};
            ids.push_back(client.QueueMultiGet(keys));
            break;
          }
          default: {
            std::vector<core::KvEntry> es = {{"wk" + std::to_string(f), "wv"}};
            ids.push_back(client.QueueWriteBatch(es));
            break;
          }
        }
      }
      const bool clean = !plans[c].active();
      Status fs = client.Flush();
      bool transport_dead = !fs.ok();
      size_t got = 0;
      for (int f = 0; f < frames && !transport_dead; ++f) {
        SyncClient::Response r;
        Status rs = client.ReadResponse(&r);
        if (!rs.ok()) {
          transport_dead = true;
          break;
        }
        // Responses arrive in request order, faults or not.
        ASSERT_EQ(r.request_id, ids[got]) << rs.ToString();
        ++got;
      }
      if (clean) {
        // A clean connection loses nothing: every frame is answered.
        EXPECT_TRUE(fs.ok()) << fs.ToString();
        EXPECT_EQ(got, ids.size());
      }
      client.Close();
    }

    // Recovery: a fresh, fault-free connection must round-trip.
    {
      SyncClient probe;
      probe.set_recv_timeout_millis(2000);
      ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()).ok());
      ASSERT_TRUE(probe.Put("probe", "ok").ok());
      auto got = probe.Get("probe");
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, "ok");
    }

    server.Stop();
    const ServerCounters c = server.counters();
    EXPECT_EQ(c.connections_accepted, c.connections_closed)
        << "leaked connection state";
  }

  const int fds_after = CountOpenFds();
  // TIME_WAIT sockets are closed; allow a little slack for the runtime.
  EXPECT_LE(fds_after, fds_before + 8) << "fd leak across chaos plans";
}

// --- NetChannel unit behavior (over a socketpair) -------------------------

class NetChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv_), 0);
  }
  void TearDown() override {
    close(sv_[0]);
    close(sv_[1]);
  }
  int sv_[2];
};

TEST_F(NetChannelTest, ReadClampForcesShortReads) {
  fault::NetFaultInjector inj(1);
  fault::NetFaultPlan p;
  p.max_read_bytes = 3;
  inj.ScriptConnection(p);
  auto ch = inj.NewChannel();
  ASSERT_EQ(write(sv_[1], "abcdefgh", 8), 8);
  char buf[16];
  EXPECT_EQ(ch->Read(sv_[0], buf, sizeof(buf)), 3);
  EXPECT_EQ(ch->Read(sv_[0], buf, sizeof(buf)), 3);
  EXPECT_EQ(ch->Read(sv_[0], buf, sizeof(buf)), 2);
  EXPECT_GE(inj.stats().short_reads, 2u);
  EXPECT_EQ(ch->bytes_read(), 8u);
}

TEST_F(NetChannelTest, FailWriteAfterDeliversExactlyNBytes) {
  fault::NetFaultInjector inj(2);
  fault::NetFaultPlan p;
  p.fail_write_after_bytes = 5;
  inj.ScriptConnection(p);
  auto ch = inj.NewChannel();
  EXPECT_EQ(ch->Send(sv_[0], "abcdefgh", 8, 0), 5);
  errno = 0;
  EXPECT_EQ(ch->Send(sv_[0], "xyz", 3, 0), -1);
  EXPECT_EQ(errno, EPIPE);
  EXPECT_TRUE(ch->dead());
  // The peer saw exactly the 5 delivered bytes.
  char buf[16];
  EXPECT_EQ(read(sv_[1], buf, sizeof(buf)), 5);
}

TEST_F(NetChannelTest, StallAnswersEagainForever) {
  fault::NetFaultInjector inj(3);
  fault::NetFaultPlan p;
  p.stall_write_after_bytes = 4;
  inj.ScriptConnection(p);
  auto ch = inj.NewChannel();
  EXPECT_EQ(ch->Send(sv_[0], "abcd", 4, 0), 4);
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(ch->Send(sv_[0], "x", 1, 0), -1);
    EXPECT_EQ(errno, EAGAIN);
  }
  EXPECT_FALSE(ch->dead()) << "a stall is not a kill";
  EXPECT_GE(inj.stats().injected_stalls, 3u);
}

TEST_F(NetChannelTest, ErrorRateIsSeedDeterministic) {
  // Same seed + same plan => the injected failure lands on the same call.
  auto first_failure = [&](uint64_t seed) {
    fault::NetFaultInjector inj(seed);
    fault::NetFaultPlan p;
    p.write_error_rate = 0.2;
    inj.ScriptConnection(p);
    auto ch = inj.NewChannel();
    for (int i = 0; i < 200; ++i) {
      if (ch->Send(sv_[0], "x", 1, 0) < 0) return i;
      char sink[4];
      read(sv_[1], sink, sizeof(sink));
    }
    return -1;
  };
  const int a = first_failure(77);
  const int b = first_failure(77);
  const int c = first_failure(78);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  (void)c;  // different seed may or may not differ; determinism is the claim
}

TEST_F(NetChannelTest, UnarmedInjectorIsPassThrough) {
  fault::NetFaultInjector inj(4);
  EXPECT_FALSE(inj.armed());
  auto ch = inj.NewChannel();
  ASSERT_EQ(write(sv_[1], "hello", 5), 5);
  char buf[16];
  EXPECT_EQ(ch->Read(sv_[0], buf, sizeof(buf)), 5);
  EXPECT_EQ(ch->Send(sv_[0], "world", 5, 0), 5);
}

// --- deterministic degradation mechanics ----------------------------------

TEST(ServerShedTest, BacklogOverBudgetShedsNewestFirstWithRetryAfter) {
  auto store = core::ShardedStore::OfMemory(2);
  ServerOptions opts;
  opts.io_threads = 1;
  opts.shed_backlog_bytes = 4096;
  opts.retry_after_millis = 123;
  Server server(store.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  // One flush of ~400KB of PUTs: a single drain pass sees far more than
  // the 4KB budget, so everything past the budget point is shed.
  SyncClient c;
  c.set_recv_timeout_millis(5000);
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
  const int n = 400;
  const std::string value(1000, 'v');
  std::vector<uint32_t> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(c.QueuePut("shed" + std::to_string(i), value));
  }
  ASSERT_TRUE(c.Flush().ok());

  // Shedding is newest-first per burst: within one drain pass, frames
  // under the budget point are served and everything past it is shed until
  // that backlog drains (the server may split 400KB across several drain
  // passes, so served/shed can alternate at burst granularity — but every
  // response still arrives, in request order).
  int served = 0, shed = 0;
  for (int i = 0; i < n; ++i) {
    SyncClient::Response r;
    ASSERT_TRUE(c.ReadResponse(&r).ok()) << "frame " << i;
    EXPECT_EQ(r.request_id, ids[i]) << "responses stay in request order";
    if (r.is_error()) {
      EXPECT_EQ(r.code, StatusCode::kUnavailable);
      EXPECT_EQ(r.retry_after_millis, 123u) << "hint rides the error frame";
      ++shed;
    } else {
      EXPECT_EQ(r.code, StatusCode::kOk);
      ++served;
    }
  }
  EXPECT_GT(served, 0) << "frames under the budget point are served";
  EXPECT_GT(shed, 0) << "frames past the budget point are shed";
  EXPECT_GE(server.counters().shed_frames, static_cast<uint64_t>(shed));

  // Shed writes never touched the store...
  const auto stats = store->Stats();
  EXPECT_EQ(stats.writes, static_cast<uint64_t>(served))
      << "a shed frame must cost no store work";

  // ...and the boundary clears once the backlog drains: fresh traffic on
  // the same connection is served again.
  ASSERT_TRUE(c.Put("after-drain", "x").ok());
  auto got = c.Get("after-drain");
  ASSERT_TRUE(got.ok());
  server.Stop();
}

// KvStore wrapper that advances a VirtualClock on every write and counts
// store-level reads — the "deadline-expired requests do no store work"
// counter proof.
class ClockAdvancingStore : public core::KvStore {
 public:
  ClockAdvancingStore(core::KvStore* inner, VirtualClock* clock,
                      uint64_t advance_nanos)
      : inner_(inner), clock_(clock), advance_nanos_(advance_nanos) {}

  Status Put(const Slice& key, const Slice& value) override {
    clock_->AdvanceNanos(advance_nanos_);
    return inner_->Put(key, value);
  }
  Result<std::string> Get(const Slice& key) override {
    reads_.fetch_add(1, std::memory_order_relaxed);
    return inner_->Get(key);
  }
  Status Delete(const Slice& key) override {
    clock_->AdvanceNanos(advance_nanos_);
    return inner_->Delete(key);
  }
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out) override {
    reads_.fetch_add(1, std::memory_order_relaxed);
    return inner_->Scan(start, limit, out);
  }
  Status MultiGet(std::span<const std::string> keys,
                  const core::ReadOptions& options,
                  core::BatchReadResult* out) override {
    reads_.fetch_add(keys.size(), std::memory_order_relaxed);
    return inner_->MultiGet(keys, options, out);
  }
  Status WriteBatch(std::span<const core::KvEntry> entries,
                    const core::WriteOptions& options,
                    core::BatchWriteResult* out) override {
    clock_->AdvanceNanos(advance_nanos_);
    return inner_->WriteBatch(entries, options, out);
  }
  bool ConcurrentSafe() const override { return inner_->ConcurrentSafe(); }
  uint64_t MemoryFootprintBytes() const override {
    return inner_->MemoryFootprintBytes();
  }
  core::KvStoreStats Stats() const override { return inner_->Stats(); }

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }

 private:
  core::KvStore* inner_;
  VirtualClock* clock_;
  uint64_t advance_nanos_;
  std::atomic<uint64_t> reads_{0};
};

TEST(ServerDeadlineTest, ExpiredRequestsAreShedWithoutStoreWork) {
  VirtualClock clock;
  auto inner = core::ShardedStore::OfMemory(2);
  // Every write stalls the (virtual) world by 10ms — far past the 100us
  // budget the GET below carries.
  ClockAdvancingStore store(inner.get(), &clock, 10'000'000);
  ServerOptions opts;
  opts.io_threads = 1;
  Server server(&store, opts, &clock);
  ASSERT_TRUE(server.Start().ok());

  SyncClient c;
  c.set_recv_timeout_millis(5000);
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(c.Put("seed", "x").ok());
  const uint64_t reads_before = store.reads();

  // [PUT][GET deadline=100us] in one flush: both frames land in one
  // pipelined window, the PUT's store call advances the clock 10ms, and
  // the GET must be expired at execution time — without ever reaching the
  // store. The interleave depends on both frames arriving in one drain
  // pass (one small send on loopback); retry a few times to be immune to
  // an unlucky split, but verify the no-store-work invariant on EVERY
  // attempt.
  bool expired_once = false;
  for (int attempt = 0; attempt < 10 && !expired_once; ++attempt) {
    c.set_deadline_micros(0);
    const uint32_t put_id = c.QueuePut("w" + std::to_string(attempt), "v");
    c.set_deadline_micros(100);
    const uint32_t get_id = c.QueueGet("seed");
    c.set_deadline_micros(0);
    ASSERT_TRUE(c.Flush().ok());

    SyncClient::Response r;
    ASSERT_TRUE(c.ReadResponse(&r).ok());
    ASSERT_EQ(r.request_id, put_id);
    EXPECT_EQ(r.code, StatusCode::kOk);
    ASSERT_TRUE(c.ReadResponse(&r).ok());
    ASSERT_EQ(r.request_id, get_id);
    if (r.is_error()) {
      EXPECT_EQ(r.code, StatusCode::kDeadlineExceeded);
      expired_once = true;
      // The counter proof: the expired GET issued no store read.
      EXPECT_EQ(store.reads(), reads_before)
          << "an expired request must not touch the store";
    }
  }
  EXPECT_TRUE(expired_once)
      << "pipelined [PUT][GET] never landed in one window across 10 tries";
  EXPECT_GE(server.counters().deadline_expired, 1u);
  server.Stop();
}

TEST(ServerWatchdogTest, SlowlorisConnectionIsKilled) {
  // Server-side stall plan: after 1 byte of response, every send returns
  // EAGAIN — the classic never-draining peer. The watchdog must close it.
  fault::NetFaultInjector injector(9);
  fault::NetFaultPlan stall;
  stall.stall_write_after_bytes = 1;
  injector.ScriptConnection(stall);

  auto store = core::ShardedStore::OfMemory(2);
  ServerOptions opts;
  opts.io_threads = 1;
  opts.net_fault = &injector;
  opts.write_stall_timeout_seconds = 0.2;
  opts.watchdog_poll_seconds = 0.05;
  Server server(store.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  SyncClient victim;
  victim.set_recv_timeout_millis(5000);
  ASSERT_TRUE(victim.Connect("127.0.0.1", server.port()).ok());
  victim.QueuePut("x", "y");
  ASSERT_TRUE(victim.Flush().ok());
  // The response can never fully arrive; the connection must be closed by
  // the watchdog (not hang forever).
  SyncClient::Response r;
  Status rs = victim.ReadResponse(&r);
  EXPECT_FALSE(rs.ok());

  RealClock rc;
  const double give_up = rc.NowSeconds() + 5.0;
  while (server.counters().watchdog_kills == 0 && rc.NowSeconds() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.counters().watchdog_kills, 1u);

  // The server is fine; only the slowloris died.
  SyncClient probe;
  probe.set_recv_timeout_millis(2000);
  ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(probe.Put("alive", "yes").ok());
  server.Stop();
}

// --- degraded store end-to-end --------------------------------------------

class DegradedServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::SsdOptions dev;
    dev.capacity_bytes = 64ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    injector_ = std::make_unique<fault::FaultInjector>(23);
    injector_->Attach(device_.get());
    core::CachingStoreOptions copts;
    copts.external_device = device_.get();
    copts.degrade_after_write_failures = 3;
    copts.tree.io_retry.max_attempts = 2;
    copts.tree.io_retry.initial_backoff_nanos = 1'000;
    store_ = std::make_unique<core::CachingStore>(copts);

    ServerOptions sopts;
    sopts.io_threads = 1;
    sopts.retry_after_millis = 40;
    server_ = std::make_unique<Server>(store_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  void Degrade() {
    injector_->set_persistent_write_failure(true);
    for (int i = 0;
         i < 16 && store_->health() == core::HealthStatus::kHealthy; ++i) {
      ASSERT_TRUE(store_->Put("dirty" + std::to_string(i), "x").ok());
      EXPECT_FALSE(store_->Checkpoint().ok());
    }
    ASSERT_EQ(store_->health(), core::HealthStatus::kDegraded);
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<core::CachingStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(DegradedServingTest, DegradedShardServesReadsAndShedsWrites) {
  SyncClient c;
  c.set_recv_timeout_millis(5000);
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("stable", "value").ok());
  Degrade();

  // Reads keep serving over the wire...
  auto got = c.Get("stable");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "value");

  // ...while writes bounce with kUnavailable + the retry_after hint
  // instead of surfacing the raw media error.
  SyncClient::Response r;
  c.QueuePut("rejected", "x");
  ASSERT_TRUE(c.Flush().ok());
  ASSERT_TRUE(c.ReadResponse(&r).ok());
  ASSERT_TRUE(r.is_error());
  EXPECT_EQ(r.code, StatusCode::kUnavailable);
  EXPECT_EQ(r.retry_after_millis, 40u);
  EXPECT_GE(server_->counters().degraded_write_rejects, 1u);

  // HEALTH reports the degraded shard.
  SyncClient::HealthReport hr;
  ASSERT_TRUE(c.Health(&hr).ok());
  EXPECT_TRUE(hr.degraded);
  EXPECT_EQ(hr.retry_after_millis, 40u);
  ASSERT_EQ(hr.shards.size(), 1u);
  EXPECT_EQ(hr.shards[0], core::HealthStatus::kDegraded);
  EXPECT_GE(hr.degraded_write_rejects, 1u);

  // Recovery: heal the device, reset health — the same connection serves
  // writes again and HEALTH flips back.
  injector_->set_persistent_write_failure(false);
  store_->ResetHealth();
  ASSERT_TRUE(c.Put("healed", "ok").ok());
  ASSERT_TRUE(c.Health(&hr).ok());
  EXPECT_FALSE(hr.degraded);
  EXPECT_EQ(hr.retry_after_millis, 0u);
}

TEST_F(DegradedServingTest, ClientRetryHonorsRetryAfterHint) {
  Degrade();

  SyncClient c;
  c.set_recv_timeout_millis(5000);
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());

  std::vector<uint64_t> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_nanos = 1'000;  // tiny, so the hint dominates
  policy.jitter = 0;
  policy.sleep = [&](uint64_t nanos) {
    sleeps.push_back(nanos);
    // Heal the store during the backoff — the retry must then succeed.
    injector_->set_persistent_write_failure(false);
    store_->ResetHealth();
  };
  c.set_retry_policy(policy);

  ASSERT_TRUE(c.Put("retried", "v").ok());
  EXPECT_EQ(c.retries(), 1u);
  EXPECT_EQ(c.give_ups(), 0u);
  ASSERT_EQ(sleeps.size(), 1u);
  // retry_after_millis = 40 → at least 40ms of requested backoff.
  EXPECT_GE(sleeps[0], 40ull * 1'000'000);

  auto got = c.Get("retried");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
}

// --- SyncClient error paths against a misbehaving peer --------------------

// Minimal scripted server: serves `rounds` connections sequentially; for
// each it reads the request, writes the scripted bytes, then closes (or
// lingers until the client hangs up).
class FakeServer {
 public:
  explicit FakeServer(std::string response_bytes, bool linger = false,
                      int rounds = 1)
      : response_(std::move(response_bytes)), linger_(linger),
        rounds_(rounds) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    listen(listen_fd_, 1);
    thread_ = std::thread([this] { Serve(); });
  }
  ~FakeServer() {
    if (thread_.joinable()) thread_.join();
    close(listen_fd_);
  }
  uint16_t port() const { return port_; }

 private:
  void Serve() {
    for (int round = 0; round < rounds_; ++round) {
      int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      // Read whatever request arrives (don't care about its contents).
      char buf[4096];
      ssize_t ignored = read(fd, buf, sizeof(buf));
      (void)ignored;
      if (!response_.empty()) {
        ssize_t w = send(fd, response_.data(), response_.size(), MSG_NOSIGNAL);
        (void)w;
      }
      if (linger_) {
        // Hold the connection open without responding further; the
        // client's recv timeout must fire. Wait for the client to hang up.
        while (read(fd, buf, sizeof(buf)) > 0) {
        }
      }
      close(fd);
    }
  }

  std::string response_;
  bool linger_;
  int rounds_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST(SyncClientErrorPathTest, ShortResponseHeaderThenCloseIsCleanError) {
  std::string good;
  AppendFrame(&good, kOpGet | kResponseBit, 1, 0, "\x00");
  FakeServer fake(good.substr(0, 10));  // 10 of 20 header bytes, then EOF
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", fake.port()).ok());
  c.QueueGet("k");
  ASSERT_TRUE(c.Flush().ok());
  SyncClient::Response r;
  Status s = c.ReadResponse(&r);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(SyncClientErrorPathTest, ChecksumCorruptedResponseIsCorruption) {
  std::string frame;
  AppendFrame(&frame, kOpGet | kResponseBit, 1, 0, std::string(1, '\0'));
  frame[8] ^= 0x40;  // flip a tenant byte; header checksum now mismatches
  FakeServer fake(frame);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", fake.port()).ok());
  c.QueueGet("k");
  ASSERT_TRUE(c.Flush().ok());
  SyncClient::Response r;
  Status s = c.ReadResponse(&r);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(SyncClientErrorPathTest, DisconnectMidPayloadIsCleanError) {
  // Header claims 100 payload bytes; only 10 arrive before the close.
  FrameHeader h;
  h.opcode = kOpGet | kResponseBit;
  h.request_id = 1;
  h.payload_len = 100;
  char hdr[kHeaderSize];
  EncodeHeader(h, hdr);
  std::string bytes(hdr, kHeaderSize);
  bytes.append(10, 'x');
  FakeServer fake(bytes);
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", fake.port()).ok());
  c.QueueGet("k");
  ASSERT_TRUE(c.Flush().ok());
  SyncClient::Response r;
  Status s = c.ReadResponse(&r);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(SyncClientErrorPathTest, RecvTimeoutSurfacesDeadlineExceeded) {
  FakeServer fake("", /*linger=*/true);  // mute peer: never responds
  SyncClient c;
  c.set_recv_timeout_millis(100);
  ASSERT_TRUE(c.Connect("127.0.0.1", fake.port()).ok());
  c.QueueGet("k");
  ASSERT_TRUE(c.Flush().ok());
  SyncClient::Response r;
  Status s = c.ReadResponse(&r);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  c.Close();  // unblocks the fake server's linger loop
}

TEST(SyncClientErrorPathTest, TransportFailureWithRetryReconnects) {
  // A peer that accepts, reads the request, and closes without answering:
  // each attempt sees a transient EOF, the client reconnects, and after
  // the budget is spent it gives up cleanly — no hang, no crash.
  FakeServer fake("", /*linger=*/false, /*rounds=*/2);
  SyncClient c;
  c.set_recv_timeout_millis(500);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_nanos = 1'000;
  policy.sleep = [](uint64_t) {};
  c.set_retry_policy(policy);
  ASSERT_TRUE(c.Connect("127.0.0.1", fake.port()).ok());
  Status s = c.Put("k", "v");
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(c.retries(), 1u);
  EXPECT_EQ(c.give_ups(), 1u);
}

}  // namespace
}  // namespace costperf::server
