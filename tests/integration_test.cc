#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "core/caching_store.h"
#include "core/memory_store.h"
#include "tc/transaction_component.h"
#include "workload/workload.h"

namespace costperf {
namespace {

// Cross-module integration: the full Deuteronomy-shaped stack (TC over
// Bw-tree over LLAMA over the simulated SSD) under memory pressure,
// paging, GC, and restart — the paper's system in one piece.

TEST(IntegrationTest, TransactionsOverBudgetedPagingStore) {
  core::CachingStoreOptions opts;
  opts.memory_budget_bytes = 16 << 10;  // heavy paging
  opts.device.capacity_bytes = 256ull << 20;
  opts.device.max_iops = 0;
  opts.tree.max_page_bytes = 1024;
  opts.maintenance_interval_ops = 64;
  core::CachingStore store(opts);
  tc::RecoveryLog log;
  tc::TransactionComponent tc(store.tree(), &log);

  // Seed accounts through the TC.
  constexpr int kAccounts = 2000;
  for (int i = 0; i < kAccounts; ++i) {
    ASSERT_TRUE(
        tc.WriteOne("acct" + std::to_string(i), std::to_string(1000)).ok());
  }

  // Run random transfers; total balance is conserved under SI.
  Random rng(31337);
  int committed = 0, aborted = 0;
  for (int t = 0; t < 3000; ++t) {
    int from = rng.Uniform(kAccounts), to = rng.Uniform(kAccounts);
    if (from == to) continue;
    tc::Transaction* txn = tc.Begin();
    std::string fv, tv;
    ASSERT_TRUE(tc.Read(txn, "acct" + std::to_string(from), &fv).ok());
    ASSERT_TRUE(tc.Read(txn, "acct" + std::to_string(to), &tv).ok());
    int amount = 1 + rng.Uniform(50);
    tc.Write(txn, "acct" + std::to_string(from),
             std::to_string(atoi(fv.c_str()) - amount));
    tc.Write(txn, "acct" + std::to_string(to),
             std::to_string(atoi(tv.c_str()) + amount));
    Status s = tc.Commit(txn);
    if (s.ok()) {
      ++committed;
    } else {
      ASSERT_TRUE(s.IsAborted()) << s.ToString();
      ++aborted;
    }
    // Periodic store maintenance under pressure.
    if (t % 200 == 0) {
      store.Maintain();
      tc.PruneVersions();
    }
  }
  EXPECT_GT(committed, 2500);

  // Conservation check via the TC (sees every committed version).
  int64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    std::string v;
    ASSERT_TRUE(tc.ReadOne("acct" + std::to_string(i), &v).ok()) << i;
    total += atoi(v.c_str());
  }
  EXPECT_EQ(total, int64_t{kAccounts} * 1000);

  // The store really paged during the run.
  EXPECT_GT(store.tree()->stats().full_evictions +
                store.tree()->stats().record_cache_evictions,
            0u);
}

TEST(IntegrationTest, CrashRecoveryWithRedoLogCatchesUnflushedCommits) {
  // The DC checkpoint lags; a crash discards resident updates. The TC
  // redo log replays them — end state must match the pre-crash commits.
  storage::SsdOptions dev;
  dev.capacity_bytes = 256ull << 20;
  dev.max_iops = 0;
  storage::SsdDevice device(dev);
  core::CachingStoreOptions opts;
  opts.external_device = &device;
  opts.device.max_iops = 0;
  opts.maintenance_interval_ops = 0;
  tc::RecoveryLog log;

  std::map<std::string, std::string> committed_state;
  {
    core::CachingStore store(opts);
    tc::TransactionComponent tc(store.tree(), &log);
    Random rng(71);
    for (int i = 0; i < 500; ++i) {
      std::string k = "k" + std::to_string(rng.Uniform(200));
      std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(tc.WriteOne(k, v).ok());
      committed_state[k] = v;
      if (i == 250) {
        // A checkpoint midway: later commits exist only in memory + log.
        ASSERT_TRUE(store.Checkpoint().ok());
      }
    }
    // No final checkpoint: crash loses resident post-checkpoint state.
  }
  core::CachingStore reopened(opts);
  ASSERT_TRUE(reopened.Recover().ok());
  tc::TransactionComponent tc2(reopened.tree(), &log);
  ASSERT_TRUE(tc2.RecoverFromLog().ok());
  for (auto& [k, v] : committed_state) {
    std::string got;
    ASSERT_TRUE(tc2.ReadOne(k, &got).ok()) << k;
    EXPECT_EQ(got, v) << k;
  }
}

TEST(IntegrationTest, MixedWorkloadWithGcAndCompressionStaysConsistent) {
  core::CachingStoreOptions opts;
  opts.memory_budget_bytes = 512 << 10;
  opts.device.capacity_bytes = 256ull << 20;
  opts.device.max_iops = 0;
  opts.tree.max_page_bytes = 1024;
  opts.maintenance_interval_ops = 128;
  core::CachingStore store(opts);

  std::map<std::string, std::string> model;
  Random rng(2718);
  for (int op = 0; op < 12'000; ++op) {
    std::string key = "key" + std::to_string(rng.Uniform(1500));
    double dice = rng.NextDouble();
    if (dice < 0.45) {
      std::string val(30 + rng.Uniform(200), 'a' + rng.Uniform(26));
      ASSERT_TRUE(store.Put(key, val).ok());
      model[key] = val;
    } else if (dice < 0.55) {
      ASSERT_TRUE(store.Delete(key).ok());
      model.erase(key);
    } else if (dice < 0.95) {
      auto r = store.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(r.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(r.ok()) << key;
        EXPECT_EQ(*r, it->second);
      }
    } else if (dice < 0.97) {
      // Occasional compressed flush of a random page (CSS tier).
      auto pid = store.tree()->LeafOf(key);
      if (pid.ok()) {
        (void)store.tree()->FlushPage(*pid,
                                      bwtree::FlushMode::kCompressedPage);
      }
    } else {
      (void)store.RunGc(0.5);
    }
  }
  // Full verification including ordered scan.
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(store.Scan("", model.size() + 10, &rows).ok());
  ASSERT_EQ(rows.size(), model.size());
  auto mit = model.begin();
  for (size_t i = 0; i < rows.size(); ++i, ++mit) {
    EXPECT_EQ(rows[i].first, mit->first);
    EXPECT_EQ(rows[i].second, mit->second);
  }
}

TEST(IntegrationTest, WorkloadRunnerDrivesBothStoresToCompletion) {
  core::CachingStoreOptions copts;
  copts.memory_budget_bytes = 1 << 20;
  copts.device.capacity_bytes = 256ull << 20;
  copts.device.max_iops = 0;
  core::CachingStore caching(copts);
  core::MemoryStore memory;

  for (auto spec :
       {workload::WorkloadSpec::YcsbA(3000), workload::WorkloadSpec::YcsbE(3000),
        workload::WorkloadSpec::YcsbF(3000)}) {
    spec.value_size = 64;
    workload::Workload l1(spec);
    ASSERT_TRUE(l1.Load(&caching).ok());
    workload::Workload l2(spec);
    ASSERT_TRUE(l2.Load(&memory).ok());
    workload::Workload w1(spec, 1), w2(spec, 1);
    auto r1 = workload::RunWorkload(&caching, &w1, 6000);
    auto r2 = workload::RunWorkload(&memory, &w2, 6000);
    EXPECT_EQ(r1.failed_ops, 0u);
    EXPECT_EQ(r2.failed_ops, 0u);
  }
}

}  // namespace
}  // namespace costperf
