#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace costperf {
namespace {

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32Test, DiffersOnSingleBitFlip) {
  std::string data(1024, 'a');
  uint32_t base = Crc32c(data.data(), data.size());
  data[512] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), base);
}

TEST(Crc32Test, SeedChaining) {
  // Chained CRC differs from unchained but is deterministic.
  uint32_t a = Crc32c("hello", 5);
  uint32_t chained = Crc32c("world", 5, a);
  EXPECT_EQ(chained, Crc32c("world", 5, Crc32c("hello", 5)));
  EXPECT_NE(chained, Crc32c("world", 5));
}

TEST(Crc32Test, MaskRoundTrips) {
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, 0xE3069283u}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(v)), v);
    EXPECT_NE(MaskCrc(v), v);
  }
}

}  // namespace
}  // namespace costperf
