#include "costmodel/five_minute_rule.h"

#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/operation_cost.h"

namespace costperf::costmodel {
namespace {

// §4.2: "We determine T_i is approximately 45 seconds at breakeven."
TEST(FiveMinuteRuleTest, PaperConstantsGiveAbout45Seconds) {
  CostParams p = CostParams::PaperDefaults();
  double t_i = BreakevenIntervalSeconds(p);
  EXPECT_NEAR(t_i, 45.0, 2.0);
}

TEST(FiveMinuteRuleTest, BreakevenRateIsInverseOfInterval) {
  CostParams p = CostParams::PaperDefaults();
  EXPECT_NEAR(BreakevenOpsPerSec(p) * BreakevenIntervalSeconds(p), 1.0,
              1e-12);
}

// The defining property: at the breakeven rate, Eq. (4) == Eq. (5).
TEST(FiveMinuteRuleTest, CostsEqualAtBreakeven) {
  CostParams p = CostParams::PaperDefaults();
  double n_star = BreakevenOpsPerSec(p);
  double mm = MmCost(n_star, p).total();
  double ss = SsCost(n_star, p).total();
  EXPECT_NEAR(mm, ss, std::abs(mm) * 1e-9);
}

TEST(FiveMinuteRuleTest, MmCheaperAboveBreakevenSsBelow) {
  CostParams p = CostParams::PaperDefaults();
  double n_star = BreakevenOpsPerSec(p);
  EXPECT_LT(MmCost(n_star * 2, p).total(), SsCost(n_star * 2, p).total());
  EXPECT_GT(MmCost(n_star / 2, p).total(), SsCost(n_star / 2, p).total());
}

// §6.3: with 10 records per page the record breakeven is ~10x the page
// breakeven ("the record breakeven T_i = 10 x minutes instead of about
// one minute for the page").
TEST(FiveMinuteRuleTest, RecordGranularityScalesInversely) {
  CostParams p = CostParams::PaperDefaults();
  double page_t = BreakevenIntervalSeconds(p);
  double record_t =
      RecordBreakevenIntervalSeconds(p, p.page_size_bytes / 10.0);
  EXPECT_NEAR(record_t / page_t, 10.0, 1e-9);
}

// §4.2: the CPU path term is an *additional* cost over Gray's classic
// trade — the updated breakeven must exceed the classic one, and by the
// ratio the paper's constants imply (~2.4x: 6.1e-4 vs 2.5e-4).
TEST(FiveMinuteRuleTest, CpuTermExtendsClassicRule) {
  CostParams p = CostParams::PaperDefaults();
  double classic = ClassicBreakevenIntervalSeconds(p);
  double updated = BreakevenIntervalSeconds(p);
  EXPECT_GT(updated, classic);
  EXPECT_NEAR(updated / classic, 2.44, 0.1);
}

TEST(FiveMinuteRuleTest, CheaperIopsShrinkBreakeven) {
  // §7.1.2: falling price of SSD IOPS shrinks the breakeven point.
  CostParams p = CostParams::PaperDefaults();
  CostParams faster = p;
  faster.iops = p.iops * 2.5;  // 500K-IOPS drive at the same price
  EXPECT_LT(BreakevenIntervalSeconds(faster), BreakevenIntervalSeconds(p));
}

TEST(FiveMinuteRuleTest, SmallerRShrinksBreakeven) {
  // §7.1.1: cheaper I/O execution path (smaller R) lowers breakeven,
  // "enabling data to be evicted from main memory earlier".
  CostParams spdk = CostParams::PaperDefaults();  // R=5.8
  CostParams os_path = spdk;
  os_path.r = 9.0;
  EXPECT_LT(BreakevenIntervalSeconds(spdk),
            BreakevenIntervalSeconds(os_path));
}

TEST(FiveMinuteRuleTest, BiggerPagesShrinkBreakeven) {
  // Larger pages make DRAM rental costlier per page, so eviction pays off
  // sooner — T_i scales as 1/P_s.
  CostParams p = CostParams::PaperDefaults();
  CostParams big = p;
  big.page_size_bytes = p.page_size_bytes * 4;
  EXPECT_NEAR(BreakevenIntervalSeconds(big),
              BreakevenIntervalSeconds(p) / 4.0, 1e-9);
}

TEST(FiveMinuteRuleTest, MmSsAliasMatches) {
  CostParams p = CostParams::PaperDefaults();
  EXPECT_DOUBLE_EQ(MmSsBreakevenOpsPerSec(p), BreakevenOpsPerSec(p));
}

// ---------- CSS/SS crossover (Fig. 8 left boundary) ----------

TEST(CssBreakevenTest, CostsEqualAtCrossover) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams c;
  double n_star = CssSsBreakevenOpsPerSec(p, c);
  ASSERT_TRUE(std::isfinite(n_star));
  double ss = SsCost(n_star, p).total();
  double css = CssCost(n_star, p, c).total();
  EXPECT_NEAR(ss, css, std::abs(ss) * 1e-9);
}

TEST(CssBreakevenTest, CssCheaperBelowCrossover) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams c;
  double n_star = CssSsBreakevenOpsPerSec(p, c);
  EXPECT_LT(CssCost(n_star / 2, p, c).total(),
            SsCost(n_star / 2, p).total());
  EXPECT_GT(CssCost(n_star * 2, p, c).total(),
            SsCost(n_star * 2, p).total());
}

TEST(CssBreakevenTest, FreeDecompressionMakesCssAlwaysCheaper) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams c;
  c.decompress_r = 0.0;
  EXPECT_TRUE(std::isinf(CssSsBreakevenOpsPerSec(p, c)));
}

TEST(CssBreakevenTest, NoCompressionBenefitMakesCssNeverCheaper) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams c;
  c.compression_ratio = 1.0;
  EXPECT_EQ(CssSsBreakevenOpsPerSec(p, c), 0.0);
}

TEST(CssBreakevenTest, BetterCompressionWidensCssRegime) {
  CostParams p = CostParams::PaperDefaults();
  CompressionParams light, heavy;
  light.compression_ratio = 0.8;
  heavy.compression_ratio = 0.2;
  EXPECT_GT(CssSsBreakevenOpsPerSec(p, heavy),
            CssSsBreakevenOpsPerSec(p, light));
}

}  // namespace
}  // namespace costperf::costmodel
