#include "compression/compressor.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace costperf::compression {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed, output;
  Compressor::Compress(Slice(input), &compressed);
  Status s = Compressor::Decompress(Slice(compressed), &output);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return output;
}

TEST(CompressorTest, EmptyInput) { EXPECT_EQ(RoundTrip(""), ""); }

TEST(CompressorTest, ShortInput) {
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
}

TEST(CompressorTest, RepetitiveInputCompressesWell) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "the quick brown fox ";
  std::string compressed;
  Compressor::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 5);
  std::string out;
  ASSERT_TRUE(Compressor::Decompress(Slice(compressed), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(CompressorTest, RunLengthSelfOverlap) {
  // Offset < match length exercises the overlapping-copy path.
  std::string input(10000, 'x');
  EXPECT_EQ(RoundTrip(input), input);
  std::string compressed;
  Compressor::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), 100u);
}

TEST(CompressorTest, RandomBytesRoundTrip) {
  Random rng(1234);
  for (size_t len : {1u, 5u, 64u, 1000u, 65536u}) {
    std::string input(len, '\0');
    rng.Fill(input.data(), len);
    EXPECT_EQ(RoundTrip(input), input) << "len=" << len;
  }
}

TEST(CompressorTest, IncompressibleDataExpandsOnlySlightly) {
  Random rng(555);
  std::string input(10000, '\0');
  rng.Fill(input.data(), input.size());
  std::string compressed;
  Compressor::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() + input.size() / 20 + 32);
}

TEST(CompressorTest, StructuredRecordsRoundTrip) {
  // Key-value page-like content: numbered keys with shared prefixes.
  std::string input;
  for (int i = 0; i < 500; ++i) {
    char buf[64];
    snprintf(buf, sizeof(buf), "user%08d|field_a=value_%d|", i, i % 7);
    input += buf;
  }
  EXPECT_EQ(RoundTrip(input), input);
  EXPECT_LT(Compressor::MeasureRatio(Slice(input)), 0.6);
}

TEST(CompressorTest, DecompressRejectsTruncation) {
  std::string input(1000, 'q');
  std::string compressed;
  Compressor::Compress(Slice(input), &compressed);
  std::string out;
  for (size_t cut : {compressed.size() - 1, compressed.size() / 2, size_t{1}}) {
    Status s =
        Compressor::Decompress(Slice(compressed.data(), cut), &out);
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
    EXPECT_TRUE(s.IsCorruption());
  }
}

TEST(CompressorTest, DecompressRejectsGarbage) {
  Random rng(777);
  std::string garbage(256, '\0');
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    rng.Fill(garbage.data(), garbage.size());
    std::string out;
    if (!Compressor::Decompress(Slice(garbage), &out).ok()) ++failures;
  }
  // Random bytes should almost never parse as a valid stream of the right
  // declared size.
  EXPECT_GT(failures, 45);
}

TEST(CompressorTest, DecompressEnforcesSizeLimit) {
  std::string input(100000, 'z');
  std::string compressed;
  Compressor::Compress(Slice(input), &compressed);
  std::string out;
  Status s = Compressor::Decompress(Slice(compressed), &out, 1000);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(CompressorTest, MeasureRatioBounds) {
  EXPECT_DOUBLE_EQ(Compressor::MeasureRatio(Slice("")), 1.0);
  std::string repetitive(4096, 'a');
  EXPECT_LT(Compressor::MeasureRatio(Slice(repetitive)), 0.05);
}

// Property sweep over sizes: round trip always exact.
class CompressorSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressorSweepTest, MixedContentRoundTrip) {
  Random rng(GetParam());
  size_t len = 100 + rng.Uniform(20000);
  std::string input;
  input.reserve(len);
  while (input.size() < len) {
    if (rng.Bernoulli(0.5)) {
      // Compressible run.
      input.append(10 + rng.Uniform(50), static_cast<char>(rng.Uniform(256)));
    } else {
      std::string noise(1 + rng.Uniform(40), '\0');
      rng.Fill(noise.data(), noise.size());
      input += noise;
    }
  }
  EXPECT_EQ(RoundTrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressorSweepTest,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace costperf::compression
