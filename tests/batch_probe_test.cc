// Batched index probes (BwTree::MultiGetBatch / MassTree::LookupBatch):
// equivalence with single-key Get across interleave depths, and races
// against the structure modifications the interleaved state machines
// must survive (border/interior splits, Bw-tree SMOs, consolidation,
// delta chains, flash-resident pages).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bwtree/bwtree.h"
#include "common/random.h"
#include "core/caching_store.h"
#include "masstree/masstree.h"

namespace costperf {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%010llu", static_cast<unsigned long long>(i));
  return buf;
}
std::string Val(uint64_t i) { return "value-" + std::to_string(i); }
// Long keys sharing an 8+ byte prefix: forces MassTree sublayers.
std::string DeepKey(uint64_t i) {
  return "deep-prefix-shared-across-layers-" + Key(i);
}

const size_t kInterleaves[] = {1, 2, 8, 16};

TEST(MassTreeBatchTest, MatchesGetAcrossInterleaves) {
  masstree::MassTree t;
  constexpr uint64_t kN = 1500;
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < kN; ++i) {
    keys.push_back(i % 3 == 0 ? DeepKey(i) : Key(i));
    ASSERT_TRUE(t.Put(keys.back(), Val(i)).ok());
  }
  // Probe set: every present key plus interspersed misses.
  std::vector<std::string> probes;
  for (uint64_t i = 0; i < kN; ++i) {
    probes.push_back(keys[i]);
    if (i % 5 == 0) probes.push_back(Key(kN + i));           // absent
    if (i % 7 == 0) probes.push_back(DeepKey(kN + i));       // absent, deep
  }
  std::vector<std::string> values(probes.size());
  std::vector<Status> statuses(probes.size());
  std::vector<masstree::MassTree::LookupOp> ops(probes.size());
  for (size_t interleave : kInterleaves) {
    for (size_t i = 0; i < probes.size(); ++i) {
      values[i].clear();
      ops[i] = {Slice(probes[i]), &values[i], &statuses[i]};
    }
    t.LookupBatch(ops.data(), ops.size(), interleave);
    for (size_t i = 0; i < probes.size(); ++i) {
      auto ref = t.Get(probes[i]);
      ASSERT_EQ(statuses[i].ok(), ref.ok())
          << "interleave=" << interleave << " key=" << probes[i];
      if (ref.ok()) {
        ASSERT_EQ(values[i], *ref) << "interleave=" << interleave;
      } else {
        ASSERT_TRUE(statuses[i].IsNotFound());
      }
    }
  }
}

TEST(MassTreeBatchTest, BatchedLookupsRaceBorderSplits) {
  masstree::MassTree t;
  // Stable set the readers check; the writer then grows the tree past
  // many border/interior splits (and sublayer creation) underneath them.
  constexpr uint64_t kStable = 400;
  std::vector<std::string> stable;
  for (uint64_t i = 0; i < kStable; ++i) {
    stable.push_back(i % 2 == 0 ? Key(i) : DeepKey(i));
    ASSERT_TRUE(t.Put(stable.back(), Val(i)).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = kStable;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)t.Put(i % 2 == 0 ? Key(i) : DeepKey(i), Val(i));
      ++i;
    }
  });
  std::vector<std::string> values(stable.size());
  std::vector<Status> statuses(stable.size());
  std::vector<masstree::MassTree::LookupOp> ops(stable.size());
  for (int round = 0; round < 60; ++round) {
    const size_t interleave = kInterleaves[round % 4];
    for (size_t i = 0; i < stable.size(); ++i) {
      ops[i] = {Slice(stable[i]), &values[i], &statuses[i]};
    }
    t.LookupBatch(ops.data(), ops.size(), interleave);
    for (size_t i = 0; i < stable.size(); ++i) {
      ASSERT_TRUE(statuses[i].ok())
          << "round=" << round << " key=" << stable[i] << " "
          << statuses[i].ToString();
      ASSERT_EQ(values[i], Val(i));
    }
  }
  stop.store(true);
  writer.join();
}

class BwTreeBatchTest : public ::testing::Test {
 protected:
  void SetUpStore(uint64_t max_page_bytes = 1024,
                  uint32_t consolidate_threshold = 4) {
    storage::SsdOptions dev;
    dev.capacity_bytes = 256ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    log_ = std::make_unique<llama::LogStructuredStore>(device_.get());
    bwtree::BwTreeOptions opts;
    opts.max_page_bytes = max_page_bytes;
    opts.consolidate_threshold = consolidate_threshold;
    opts.max_inner_children = 8;
    opts.log_store = log_.get();
    tree_ = std::make_unique<bwtree::BwTree>(opts);
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<bwtree::BwTree> tree_;
};

TEST_F(BwTreeBatchTest, MatchesGetOverDeltaChainsAndBasePages) {
  // High consolidation threshold keeps delta chains alive, so one batch
  // crosses a mix of plain base pages and chains of insert/delete deltas.
  SetUpStore(/*max_page_bytes=*/1024, /*consolidate_threshold=*/12);
  constexpr uint64_t kN = 600;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), Val(i)).ok());
  }
  for (uint64_t i = 0; i < kN; i += 3) {                // overwrite deltas
    ASSERT_TRUE(tree_->Put(Key(i), Val(i * 1000)).ok());
  }
  for (uint64_t i = 1; i < kN; i += 9) {                // delete deltas
    ASSERT_TRUE(tree_->Delete(Key(i)).ok());
  }
  std::vector<std::string> probes;
  for (uint64_t i = 0; i < kN + 50; ++i) probes.push_back(Key(i));
  std::vector<std::string> values(probes.size());
  std::vector<Status> statuses(probes.size());
  std::vector<bwtree::BwTree::BatchGetOp> ops(probes.size());
  for (size_t interleave : kInterleaves) {
    for (size_t i = 0; i < probes.size(); ++i) {
      values[i].clear();
      ops[i] = {Slice(probes[i]), &values[i], &statuses[i]};
    }
    tree_->MultiGetBatch(ops.data(), ops.size(), interleave);
    for (size_t i = 0; i < probes.size(); ++i) {
      auto ref = tree_->Get(probes[i]);
      ASSERT_EQ(statuses[i].ok(), ref.ok())
          << "interleave=" << interleave << " key=" << probes[i];
      if (ref.ok()) {
        ASSERT_EQ(values[i], *ref) << "interleave=" << interleave;
      } else {
        ASSERT_TRUE(statuses[i].IsNotFound()) << statuses[i].ToString();
      }
    }
  }
}

TEST_F(BwTreeBatchTest, BatchedReadsRaceSplitsAndConsolidations) {
  // Small pages + low threshold: the writer's stream of puts drives
  // splits, parent posts, and consolidations while batches are in
  // flight with several probes interleaved.
  SetUpStore(/*max_page_bytes=*/512, /*consolidate_threshold=*/4);
  constexpr uint64_t kStable = 300;
  std::vector<std::string> stable;
  for (uint64_t i = 0; i < kStable; ++i) {
    stable.push_back(Key(i * 2));  // gaps leave room for writer inserts
    ASSERT_TRUE(tree_->Put(stable.back(), Val(i)).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t next = kStable * 2;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)tree_->Put(Key(next | 1), Val(next));  // odd keys only
      if (next % 4 == 0) (void)tree_->Delete(Key((next - 8) | 1));
      ++next;
    }
  });
  std::vector<std::string> values(stable.size());
  std::vector<Status> statuses(stable.size());
  std::vector<bwtree::BwTree::BatchGetOp> ops(stable.size());
  for (int round = 0; round < 60; ++round) {
    const size_t interleave = kInterleaves[round % 4];
    for (size_t i = 0; i < stable.size(); ++i) {
      ops[i] = {Slice(stable[i]), &values[i], &statuses[i]};
    }
    tree_->MultiGetBatch(ops.data(), ops.size(), interleave);
    for (size_t i = 0; i < stable.size(); ++i) {
      ASSERT_TRUE(statuses[i].ok())
          << "round=" << round << " key=" << stable[i] << " "
          << statuses[i].ToString();
      ASSERT_EQ(values[i], Val(i));
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(tree_->stats().leaf_splits, 0u);
}

TEST(CachingStoreBatchTest, BatchLoadsFlashResidentPages) {
  // Evicted pages force the batch machine down its synchronous flash
  // load + restart edge; every key must still come back.
  core::CachingStoreOptions opts;
  opts.device.capacity_bytes = 256ull << 20;
  opts.device.max_iops = 0;
  opts.tree.max_page_bytes = 1024;
  opts.maintenance_interval_ops = 0;
  core::CachingStore store(opts);
  constexpr uint64_t kN = 400;
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < kN; ++i) {
    keys.push_back(Key(i));
    ASSERT_TRUE(store.Put(keys.back(), Val(i)).ok());
  }
  ASSERT_TRUE(store.EvictAll().ok());

  core::BatchReadResult result;
  ASSERT_TRUE(store.MultiGet(keys, &result).ok());
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(result.statuses[i].ok()) << keys[i];
    ASSERT_EQ(result.values[i], Val(i));
  }
  EXPECT_GT(store.Stats().misses, 0u) << "eviction should have forced SS ops";
}

}  // namespace
}  // namespace costperf
