#include "llama/cache_manager.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace costperf::llama {
namespace {

CacheOptions WithClock(VirtualClock* clock, EvictionPolicy policy,
                       uint64_t budget = 1 << 20) {
  CacheOptions o;
  o.clock = clock;
  o.policy = policy;
  o.memory_budget_bytes = budget;
  o.breakeven_interval_seconds = 45.0;
  return o;
}

TEST(CacheManagerTest, InsertTracksBytes) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  cm.Insert(1, 100);
  cm.Insert(2, 200);
  EXPECT_EQ(cm.resident_bytes(), 300u);
  EXPECT_TRUE(cm.Contains(1));
  EXPECT_FALSE(cm.Contains(3));
}

TEST(CacheManagerTest, EraseReleasesBytes) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  cm.Insert(1, 100);
  cm.Erase(1);
  EXPECT_EQ(cm.resident_bytes(), 0u);
  EXPECT_FALSE(cm.Contains(1));
  cm.Erase(1);  // idempotent
}

TEST(CacheManagerTest, ResizeAdjustsAccounting) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  cm.Insert(1, 100);
  cm.Resize(1, 350);
  EXPECT_EQ(cm.resident_bytes(), 350u);
  cm.Resize(1, 50);
  EXPECT_EQ(cm.resident_bytes(), 50u);
}

TEST(CacheManagerTest, OverBudgetDetection) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru, /*budget=*/250));
  cm.Insert(1, 100);
  EXPECT_FALSE(cm.OverBudget());
  cm.Insert(2, 200);
  EXPECT_TRUE(cm.OverBudget());
}

TEST(CacheManagerTest, LruEvictsLeastRecentlyTouched) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  cm.Insert(1, 100);
  clock.AdvanceNanos(10);
  cm.Insert(2, 100);
  clock.AdvanceNanos(10);
  cm.Insert(3, 100);
  clock.AdvanceNanos(10);
  cm.Touch(1);  // 2 becomes LRU
  auto victims = cm.PickVictims(100);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

TEST(CacheManagerTest, LruPicksEnoughBytes) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  for (mapping::PageId p = 0; p < 10; ++p) {
    cm.Insert(p, 100);
    clock.AdvanceNanos(1);
  }
  auto victims = cm.PickVictims(450);
  EXPECT_EQ(victims.size(), 5u);  // 5 x 100 >= 450
  // In LRU order: oldest first.
  EXPECT_EQ(victims[0], 0u);
  EXPECT_EQ(victims[4], 4u);
}

TEST(CacheManagerTest, SecondChanceSparesReferencedPages) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kSecondChance));
  cm.Insert(1, 100);
  cm.Insert(2, 100);
  cm.Insert(3, 100);
  // All pages start referenced (inserted). One sweep clears bits, then
  // the first unreferenced page is victimized; re-touch page 1 so it
  // survives longer than 2.
  auto first = cm.PickVictims(100);
  ASSERT_EQ(first.size(), 1u);
  // After one clearing sweep, the first victim is the LRU page 1.
  EXPECT_EQ(first[0], 1u);
}

TEST(CacheManagerTest, CostBasedEvictsOnlyPastBreakeven) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kCostBased));
  cm.Insert(1, 100);
  clock.AdvanceSeconds(50.0);  // page 1 idle 50s > 45s breakeven
  cm.Insert(2, 100);
  clock.AdvanceSeconds(10.0);  // page 2 idle 10s < breakeven
  auto victims = cm.PickVictims(0);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 1u);
}

TEST(CacheManagerTest, CostBasedNoVictimsWhenAllHot) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kCostBased));
  cm.Insert(1, 100);
  cm.Insert(2, 100);
  clock.AdvanceSeconds(1.0);
  EXPECT_TRUE(cm.PickVictims(0).empty());
}

TEST(CacheManagerTest, CostBasedHonorsHardBudget) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kCostBased, 150));
  cm.Insert(1, 100);
  clock.AdvanceSeconds(1.0);
  cm.Insert(2, 100);  // over budget, but nobody past breakeven
  ASSERT_TRUE(cm.OverBudget());
  auto victims = cm.PickVictims(50);
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims[0], 1u) << "falls back to LRU order";
}

TEST(CacheManagerTest, CostBasedMixesBreakevenAndBudgetVictims) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kCostBased));
  cm.Insert(1, 100);
  clock.AdvanceSeconds(60);
  cm.Insert(2, 100);
  clock.AdvanceSeconds(1);
  cm.Insert(3, 100);
  // Want 250 bytes: page 1 (past breakeven) + pages 2,3 via LRU fallback.
  auto victims = cm.PickVictims(250);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0], 1u);
  EXPECT_EQ(victims[1], 2u);
  EXPECT_EQ(victims[2], 3u);
}

TEST(CacheManagerTest, TouchRefreshesIdleTime) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kCostBased));
  cm.Insert(1, 100);
  clock.AdvanceSeconds(44.0);
  cm.Touch(1);
  clock.AdvanceSeconds(10.0);
  EXPECT_NEAR(cm.IdleSeconds(1), 10.0, 1e-6);
  EXPECT_TRUE(cm.PickVictims(0).empty());
}

TEST(CacheManagerTest, IdleSecondsUnknownPage) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  EXPECT_LT(cm.IdleSeconds(42), 0.0);
}

TEST(CacheManagerTest, StatsAccumulate) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  cm.Insert(1, 10);
  cm.Insert(2, 10);
  cm.Touch(1);
  cm.Erase(2);
  auto s = cm.stats();
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_EQ(s.touches, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident_pages, 1u);
  EXPECT_EQ(s.resident_bytes, 10u);
}

TEST(CacheManagerTest, ReinsertActsAsResizeTouch) {
  VirtualClock clock;
  CacheManager cm(WithClock(&clock, EvictionPolicy::kLru));
  cm.Insert(1, 100);
  clock.AdvanceNanos(5);
  cm.Insert(2, 100);
  clock.AdvanceNanos(5);
  cm.Insert(1, 300);  // re-insert: resize + move to MRU
  EXPECT_EQ(cm.resident_bytes(), 400u);
  auto victims = cm.PickVictims(100);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

TEST(CacheManagerTest, PolicyNames) {
  EXPECT_EQ(EvictionPolicyName(EvictionPolicy::kLru), "lru");
  EXPECT_EQ(EvictionPolicyName(EvictionPolicy::kSecondChance),
            "second-chance");
  EXPECT_EQ(EvictionPolicyName(EvictionPolicy::kCostBased), "cost-based");
}

}  // namespace
}  // namespace costperf::llama
