#include <gtest/gtest.h>

#include <memory>

#include "core/caching_store.h"
#include "core/memory_store.h"
#include "workload/workload.h"

namespace costperf::core {
namespace {

CachingStoreOptions SmallStoreOptions(VirtualClock* clock = nullptr) {
  CachingStoreOptions o;
  o.memory_budget_bytes = 512 << 10;
  o.device.capacity_bytes = 256ull << 20;
  o.device.max_iops = 0;
  o.tree.max_page_bytes = 2048;
  o.maintenance_interval_ops = 64;
  o.clock = clock;
  return o;
}

TEST(CachingStoreTest, BasicCrud) {
  CachingStore store(SmallStoreOptions());
  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_EQ(*store.Get("k"), "v");
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
}

TEST(CachingStoreTest, StaysNearMemoryBudgetUnderLoad) {
  CachingStore store(SmallStoreOptions());
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(20'000);
  workload::Workload w(spec);
  ASSERT_TRUE(w.Load(&store).ok());
  store.Maintain();
  // Resident bytes should be within ~2 maintenance intervals of budget.
  EXPECT_LT(store.cache()->resident_bytes(),
            store.options().memory_budget_bytes * 2);
  // Data remains correct despite evictions.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(store.Get(w.KeyAt(i * 97 % 20'000)).ok());
  }
  EXPECT_GT(store.tree()->stats().full_evictions +
                store.tree()->stats().record_cache_evictions,
            0u);
  EXPECT_GT(store.tree()->stats().ss_ops, 0u);
}

TEST(CachingStoreTest, EvictAllForcesColdCache) {
  CachingStore store(SmallStoreOptions());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        store.Put("key" + std::to_string(i), "val" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.EvictAll().ok());
  EXPECT_EQ(store.tree()->resident_leaves(), 0u);
  EXPECT_EQ(*store.Get("key123"), "val123");
}

TEST(CachingStoreTest, CheckpointThenReadBack) {
  CachingStore store(SmallStoreOptions());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store.Checkpoint().ok());
  EXPECT_GT(store.device()->stats().writes, 0u);
}

TEST(CachingStoreTest, GcReclaimsDeadSegments) {
  auto opts = SmallStoreOptions();
  opts.maintenance_interval_ops = 0;  // manual control
  CachingStore store(opts);
  std::string val(500, 'x');
  // Two full overwrite rounds leave the early segments mostly dead.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(store.Put("k" + std::to_string(i), val).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  uint64_t occupied_before = store.device()->stats().occupied_bytes;
  ASSERT_TRUE(store.RunGc(0.5).ok());
  EXPECT_LT(store.device()->stats().occupied_bytes, occupied_before);
  for (int i = 0; i < 2000; i += 37) {
    ASSERT_TRUE(store.Get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(CachingStoreTest, CostBasedPolicyEvictsIdlePages) {
  VirtualClock clock(1'000'000'000);
  auto opts = SmallStoreOptions(&clock);
  opts.eviction_policy = llama::EvictionPolicy::kCostBased;
  opts.breakeven_interval_seconds = 45.0;
  opts.memory_budget_bytes = 0;  // no budget pressure: pure cost policy
  opts.maintenance_interval_ops = 0;
  CachingStore store(opts);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i), std::string(100, 'v')).ok());
  }
  EXPECT_GT(store.tree()->resident_leaves(), 0u);
  clock.AdvanceSeconds(60.0);  // everything past breakeven
  store.Maintain();
  EXPECT_EQ(store.tree()->resident_leaves(), 0u)
      << "cost-based policy must evict pages idle past T_i";
}

TEST(CachingStoreTest, LruPolicyKeepsPagesWithoutPressure) {
  VirtualClock clock(1'000'000'000);
  auto opts = SmallStoreOptions(&clock);
  opts.eviction_policy = llama::EvictionPolicy::kLru;
  opts.memory_budget_bytes = 0;
  opts.maintenance_interval_ops = 0;
  CachingStore store(opts);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i), std::string(100, 'v')).ok());
  }
  clock.AdvanceSeconds(60.0);
  store.Maintain();
  EXPECT_GT(store.tree()->resident_leaves(), 0u)
      << "LRU without budget pressure evicts nothing";
}

TEST(CachingStoreTest, DebugStringMentionsComponents) {
  CachingStore store(SmallStoreOptions());
  ASSERT_TRUE(store.Put("a", "b").ok());
  // DebugString() is display-only by contract; this is a spot-check of
  // the human-readable rendering, which stays supported.
  std::string s = store.DebugString();
  EXPECT_NE(s.find("bwtree:"), std::string::npos);
  EXPECT_NE(s.find("device:"), std::string::npos);
  EXPECT_NE(s.find("cache:"), std::string::npos);
}


TEST(CachingStoreTest, MaintenanceMergesUnderfullLeaves) {
  auto opts = SmallStoreOptions();
  opts.merge_fill_target = 0.5;
  opts.maintenance_interval_ops = 0;
  opts.memory_budget_bytes = 0;
  CachingStore store(opts);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Put("key" + std::to_string(100000 + i),
                          std::string(100, 'v'))
                    .ok());
  }
  size_t leaves_before = store.tree()->LeafPageIds().size();
  for (int i = 100; i < 2000; ++i) {
    ASSERT_TRUE(store.Delete("key" + std::to_string(100000 + i)).ok());
  }
  store.Maintain();
  EXPECT_GT(store.tree()->stats().leaf_merges, 0u);
  EXPECT_LT(store.tree()->LeafPageIds().size(), leaves_before);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(store.Get("key" + std::to_string(100000 + i)).ok()) << i;
  }
}

TEST(MemoryStoreTest, BasicCrudAndScan) {
  MemoryStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  ASSERT_TRUE(store.Put("b", "2").ok());
  ASSERT_TRUE(store.Put("c", "3").ok());
  EXPECT_EQ(*store.Get("b"), "2");
  ASSERT_TRUE(store.Delete("b").ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(store.Scan("a", 10, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, "a");
  EXPECT_EQ(out[1].first, "c");
}

TEST(MemoryStoreTest, FootprintLargerThanCachingStoreForSameData) {
  // The M_x > 1 property the paper measures (Eq. 7). Same records in
  // both stores, both fully in memory.
  MemoryStore mass;
  CachingStoreOptions copts;
  copts.memory_budget_bytes = 0;  // fully cached
  copts.device.capacity_bytes = 256ull << 20;
  copts.device.max_iops = 0;
  copts.maintenance_interval_ops = 0;
  CachingStore bw(copts);

  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbC(20'000);
  workload::Workload w1(spec), w2(spec);
  ASSERT_TRUE(w1.Load(&mass).ok());
  ASSERT_TRUE(w2.Load(&bw).ok());
  bw.Maintain();

  double mx = static_cast<double>(mass.MemoryFootprintBytes()) /
              static_cast<double>(bw.MemoryFootprintBytes());
  EXPECT_GT(mx, 1.0) << "MassTree must use more memory than the Bw-tree";
  EXPECT_LT(mx, 10.0) << "but not absurdly more";
}

TEST(WorkloadStoresTest, BothStoresAgreeUnderYcsbA) {
  MemoryStore mass;
  CachingStore bw(SmallStoreOptions());
  workload::WorkloadSpec spec = workload::WorkloadSpec::YcsbA(2'000);
  spec.value_size = 32;
  workload::Workload loader(spec);
  ASSERT_TRUE(loader.Load(&mass).ok());
  workload::Workload loader2(spec);
  ASSERT_TRUE(loader2.Load(&bw).ok());

  // Same op stream applied to both stores must produce identical reads.
  workload::Workload ops_a(spec, 7), ops_b(spec, 7);
  for (int i = 0; i < 5'000; ++i) {
    auto op_a = ops_a.NextOp();
    auto op_b = ops_b.NextOp();
    ASSERT_EQ(op_a.key, op_b.key);
    switch (op_a.type) {
      case workload::OpType::kRead: {
        auto ra = mass.Get(Slice(op_a.key));
        auto rb = bw.Get(Slice(op_b.key));
        ASSERT_EQ(ra.ok(), rb.ok()) << op_a.key;
        if (ra.ok()) {
          ASSERT_EQ(*ra, *rb);
        }
        break;
      }
      default:
        ASSERT_TRUE(mass.Put(Slice(op_a.key), Slice(op_a.value)).ok());
        ASSERT_TRUE(bw.Put(Slice(op_b.key), Slice(op_b.value)).ok());
        break;
    }
  }
}

}  // namespace
}  // namespace costperf::core
