#include "storage/device.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_injector.h"

namespace costperf::storage {
namespace {

SsdOptions TestOptions() {
  SsdOptions o;
  o.capacity_bytes = 64ull << 20;
  o.max_iops = 0;  // no throttle in unit tests
  return o;
}

TEST(DeviceTest, WriteThenReadRoundTrip) {
  SsdDevice dev(TestOptions());
  std::string data = "hello flash";
  ASSERT_TRUE(dev.Write(4096, Slice(data)).ok());
  std::vector<char> buf(data.size());
  ASSERT_TRUE(dev.Read(4096, buf.size(), buf.data()).ok());
  EXPECT_EQ(std::string(buf.data(), buf.size()), data);
}

TEST(DeviceTest, UnwrittenReadsAsZero) {
  SsdDevice dev(TestOptions());
  std::vector<char> buf(128, 'x');
  ASSERT_TRUE(dev.Read(0, buf.size(), buf.data()).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
}

TEST(DeviceTest, CrossChunkWrite) {
  SsdDevice dev(TestOptions());
  // Spans the 1 MiB chunk boundary.
  std::string data(2 << 20, 'z');
  uint64_t off = (1 << 20) - 4096;
  ASSERT_TRUE(dev.Write(off, Slice(data)).ok());
  std::vector<char> buf(data.size());
  ASSERT_TRUE(dev.Read(off, buf.size(), buf.data()).ok());
  EXPECT_EQ(memcmp(buf.data(), data.data(), data.size()), 0);
}

TEST(DeviceTest, OutOfRangeRejected) {
  SsdDevice dev(TestOptions());
  std::vector<char> buf(16);
  EXPECT_EQ(dev.Read(dev.capacity_bytes() - 8, 16, buf.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(dev.Write(dev.capacity_bytes(), Slice("x")).code(),
            StatusCode::kOutOfRange);
}

TEST(DeviceTest, StatsCountOperations) {
  SsdDevice dev(TestOptions());
  std::string data(4096, 'a');
  dev.Write(0, Slice(data));
  dev.Write(4096, Slice(data));
  std::vector<char> buf(4096);
  dev.Read(0, 4096, buf.data());
  auto s = dev.stats();
  EXPECT_EQ(s.writes, 2u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.bytes_written, 8192u);
  EXPECT_EQ(s.bytes_read, 4096u);
  EXPECT_GT(s.path_units, 0u);
  EXPECT_GT(s.occupied_bytes, 0u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().reads, 0u);
}

TEST(DeviceTest, TrimFreesFullChunks) {
  SsdDevice dev(TestOptions());
  std::string data(4 << 20, 'b');
  ASSERT_TRUE(dev.Write(0, Slice(data)).ok());
  uint64_t occupied = dev.stats().occupied_bytes;
  EXPECT_EQ(occupied, 4ull << 20);
  ASSERT_TRUE(dev.Trim(0, 2 << 20).ok());
  EXPECT_EQ(dev.stats().occupied_bytes, 2ull << 20);
  // Trimmed region reads back as zero.
  std::vector<char> buf(16);
  dev.Read(0, 16, buf.data());
  for (char c : buf) EXPECT_EQ(c, 0);
}

TEST(DeviceTest, PartialChunkTrimKeepsChunk) {
  SsdDevice dev(TestOptions());
  std::string data(1 << 20, 'c');
  ASSERT_TRUE(dev.Write(0, Slice(data)).ok());
  ASSERT_TRUE(dev.Trim(0, 1024).ok());  // far less than a chunk
  EXPECT_EQ(dev.stats().occupied_bytes, 1ull << 20);
}

TEST(DeviceTest, ReadErrorInjection) {
  SsdDevice dev(TestOptions());
  fault::FaultInjector fi;
  fi.Attach(&dev);
  fi.set_read_error_rate(1.0);
  std::vector<char> buf(16);
  Status s = dev.Read(0, 16, buf.data());
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(dev.stats().injected_read_errors, 1u);
  EXPECT_EQ(dev.stats().reads, 0u) << "failed reads are not counted";
  EXPECT_EQ(dev.stats().bytes_read, 0u);
}

TEST(DeviceTest, WriteErrorInjection) {
  SsdDevice dev(TestOptions());
  fault::FaultInjector fi;
  fi.Attach(&dev);
  fi.set_write_error_rate(1.0);
  EXPECT_TRUE(dev.Write(0, Slice("x")).IsIoError());
  EXPECT_EQ(dev.stats().injected_write_errors, 1u);
  EXPECT_EQ(dev.stats().writes, 0u) << "rejected writes are not counted";
}

TEST(DeviceTest, PartialErrorRateIsPartial) {
  SsdDevice dev(TestOptions());
  fault::FaultInjector fi(7);
  fi.Attach(&dev);
  fi.set_read_error_rate(0.5);
  std::vector<char> buf(8);
  int errors = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!dev.Read(0, 8, buf.data()).ok()) ++errors;
  }
  EXPECT_GT(errors, 300);
  EXPECT_LT(errors, 700);
}

TEST(DeviceTest, DetachRestoresHealthyDevice) {
  SsdDevice dev(TestOptions());
  fault::FaultInjector fi;
  fi.Attach(&dev);
  fi.set_read_error_rate(1.0);
  std::vector<char> buf(8);
  ASSERT_TRUE(dev.Read(0, 8, buf.data()).IsIoError());
  fi.Detach();
  EXPECT_TRUE(dev.Read(0, 8, buf.data()).ok());
}

TEST(DeviceTest, TornWritePersistsPrefixOnly) {
  SsdDevice dev(TestOptions());
  std::string before(64, 'a');
  ASSERT_TRUE(dev.Write(0, Slice(before)).ok());
  fault::FaultInjector fi;
  fi.Attach(&dev);
  fi.ScheduleCrash(/*writes=*/0, /*torn_fraction=*/0.5);
  std::string after(64, 'b');
  EXPECT_TRUE(dev.Write(0, Slice(after)).IsIoError());
  fi.ClearCrash();
  // First half is the new data, second half still the old.
  std::vector<char> buf(64);
  ASSERT_TRUE(dev.Read(0, 64, buf.data()).ok());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(buf[i], 'b') << i;
  for (int i = 32; i < 64; ++i) EXPECT_EQ(buf[i], 'a') << i;
}

TEST(DeviceTest, BitFlipCorruptionIsSilent) {
  SsdDevice dev(TestOptions());
  fault::FaultInjector fi(11);
  fi.Attach(&dev);
  fi.ArmWriteCorruption(/*p=*/1.0, /*bits=*/1);
  std::string data(256, '\0');
  ASSERT_TRUE(dev.Write(0, Slice(data)).ok()) << "corruption is silent";
  std::vector<char> buf(256);
  ASSERT_TRUE(dev.Read(0, 256, buf.data()).ok());
  int flipped = 0;
  for (char c : buf) {
    if (c != '\0') ++flipped;
  }
  EXPECT_EQ(flipped, 1) << "exactly one byte carries the flipped bit";
}

TEST(DeviceTest, IoPathSwitchAffectsPathUnits) {
  SsdOptions o = TestOptions();
  o.io_path = IoPathKind::kUserLevel;
  SsdDevice dev(o);
  std::vector<char> buf(4096);
  dev.Read(0, buf.size(), buf.data());
  uint64_t user_units = dev.stats().path_units;
  dev.ResetStats();
  dev.set_io_path(IoPathKind::kOsMediated);
  dev.Read(0, buf.size(), buf.data());
  uint64_t os_units = dev.stats().path_units;
  EXPECT_GT(os_units, user_units) << "OS path must burn more CPU";
}

TEST(DeviceTest, ThrottleAccruesWaitWhenSaturated) {
  SsdOptions o = TestOptions();
  o.max_iops = 1000;  // tiny budget
  SsdDevice dev(o);
  std::vector<char> buf(512);
  for (int i = 0; i < 200; ++i) dev.Read(0, buf.size(), buf.data());
  EXPECT_GT(dev.stats().throttle_wait_nanos, 0u);
}

TEST(DeviceTest, MeasureIopsApproximatesConfiguredRate) {
  SsdOptions o = TestOptions();
  o.max_iops = 50'000;
  SsdDevice dev(o);
  double measured = dev.MeasureIops(5000);
  EXPECT_NEAR(measured, 50'000, 50'000 * 0.25);
}

}  // namespace
}  // namespace costperf::storage
