#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/sharded_store.h"
#include "workload/runner.h"

namespace costperf::workload {
namespace {

core::CachingStoreOptions SmallShardOptions() {
  core::CachingStoreOptions o;
  o.memory_budget_bytes = 1 << 20;
  o.device.capacity_bytes = 128ull << 20;
  o.device.max_iops = 0;
  o.tree.max_page_bytes = 2048;
  o.maintenance_interval_ops = 64;
  return o;
}

TEST(RunnerTest, FourThreadsYcsbAOnShardedCachingStore) {
  auto store = core::ShardedStore::OfCaching(4, SmallShardOptions());
  WorkloadSpec spec = WorkloadSpec::YcsbA(8'000);
  spec.value_size = 64;

  RunnerOptions opts;
  opts.threads = 4;
  opts.ops_per_thread = 4'000;
  Runner runner(store.get(), spec, opts);
  RunReport report = runner.LoadAndRun();

  EXPECT_EQ(report.threads, 4);
  EXPECT_EQ(report.ops, 16'000u);
  EXPECT_EQ(report.failed_ops, 0u);
  EXPECT_GT(report.cpu_seconds_total, 0.0);
  EXPECT_GE(report.cpu_seconds_total, report.cpu_seconds_max);
  EXPECT_GT(report.ops_per_cpu_sec, 0.0);
  EXPECT_GT(report.modeled_parallel_ops_per_sec, 0.0);
  // Latencies were recorded and merged across threads.
  EXPECT_EQ(report.latency_micros.count(), 16'000u);
  EXPECT_GT(report.p99_micros, 0.0);
  EXPECT_GE(report.p99_micros, report.p50_micros);
  // YCSB-A is 50/50 read/update; both sides of the mix actually ran.
  EXPECT_GT(report.op_counts[static_cast<int>(OpType::kRead)], 4'000u);
  EXPECT_GT(report.op_counts[static_cast<int>(OpType::kUpdate)], 4'000u);
  // The load phase completed before measurement: all records exist.
  core::KvStoreStats stats = store->Stats();
  EXPECT_GE(stats.writes, 8'000u);
}

TEST(RunnerTest, TotalsAreDeterministic) {
  WorkloadSpec spec = WorkloadSpec::YcsbA(4'000);
  RunnerOptions opts;
  opts.threads = 3;
  opts.ops_per_thread = 3'000;
  opts.record_latencies = false;

  uint64_t first_counts[5];
  {
    auto store = core::ShardedStore::OfMemory(4);
    Runner runner(store.get(), spec, opts);
    RunReport r = runner.LoadAndRun();
    EXPECT_EQ(r.ops, 9'000u);
    EXPECT_EQ(r.failed_ops, 0u);
    memcpy(first_counts, r.op_counts, sizeof(first_counts));
  }
  {
    auto store = core::ShardedStore::OfMemory(4);
    Runner runner(store.get(), spec, opts);
    RunReport r = runner.LoadAndRun();
    EXPECT_EQ(r.ops, 9'000u);
    // The generated op mix is a pure function of (spec, threads, ops):
    // identical across runs regardless of interleaving.
    for (int i = 0; i < 5; ++i) EXPECT_EQ(r.op_counts[i], first_counts[i]);
  }
}

TEST(RunnerTest, BatchedModeIssuesMultiGetAndWriteBatch) {
  auto store = core::ShardedStore::OfMemory(4);
  WorkloadSpec spec = WorkloadSpec::YcsbA(4'000);
  spec.batch_size = 16;

  RunnerOptions opts;
  opts.threads = 2;
  opts.ops_per_thread = 4'000;
  Runner runner(store.get(), spec, opts);
  RunReport report = runner.LoadAndRun();

  EXPECT_EQ(report.ops, 8'000u);
  EXPECT_EQ(report.failed_ops, 0u);
  EXPECT_GT(report.batch_calls, 0u);
  // Batched mode records one latency sample per batched call, so there
  // are far fewer samples than ops.
  EXPECT_LT(report.latency_micros.count(), report.ops);
  // Every generated op was still executed.
  uint64_t counted = 0;
  for (int i = 0; i < 5; ++i) counted += report.op_counts[i];
  EXPECT_EQ(counted, 8'000u);
}

TEST(RunnerTest, SeparateLoadThenRunPhases) {
  auto store = core::ShardedStore::OfMemory(2);
  WorkloadSpec spec = WorkloadSpec::YcsbC(3'000);
  RunnerOptions opts;
  opts.threads = 2;
  opts.ops_per_thread = 1'000;
  Runner runner(store.get(), spec, opts);

  ASSERT_TRUE(runner.Load().ok());
  // The parallel partitioned load inserted every record exactly once.
  EXPECT_EQ(store->Stats().writes, 3'000u);

  RunReport report = runner.Run();
  EXPECT_EQ(report.ops, 2'000u);
  EXPECT_EQ(report.failed_ops, 0u);
  EXPECT_EQ(report.op_counts[static_cast<int>(OpType::kRead)], 2'000u);
}

TEST(RunnerTest, ConcurrentMaintainRunsSingly) {
  // The atomic_flag gate in CachingStore::Maintain: concurrent callers
  // skip instead of stacking eviction/GC passes. Exercised raw (no shard
  // mutex) — this is the store's own guarantee.
  core::CachingStore store(SmallShardOptions());
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_TRUE(
        store.Put("key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 50; ++i) store.Maintain();
    });
  }
  for (auto& th : threads) th.join();
  // Store is intact and maintenance still works afterwards.
  store.Maintain();
  EXPECT_TRUE(store.Get("key42").ok());
}

}  // namespace
}  // namespace costperf::workload
