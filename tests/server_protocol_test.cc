// Wire-protocol framing tests: header round-trips, every malformed-frame
// class (bad magic, bad version, checksum corruption, truncation,
// oversized lengths), torn pipelined windows, and a seeded-random fuzz
// loop against a live server — the server must answer with error frames
// or clean disconnects, never crash, and must keep serving fresh
// connections afterwards.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "common/coding.h"
#include "common/random.h"
#include "core/sharded_store.h"
#include "server/client.h"
#include "server/server.h"

namespace costperf::server {
namespace {

TEST(ProtocolTest, HeaderRoundTrips) {
  FrameHeader h;
  h.opcode = kOpMultiGet;
  h.request_id = 0xdeadbeef;
  h.tenant_id = 7;
  h.payload_len = 12345;
  char buf[kHeaderSize];
  EncodeHeader(h, buf);

  FrameHeader d;
  ASSERT_EQ(DecodeHeader(buf, sizeof(buf), &d), DecodeResult::kOk);
  EXPECT_EQ(d.version, kWireVersion);
  EXPECT_EQ(d.opcode, kOpMultiGet);
  EXPECT_EQ(d.request_id, 0xdeadbeefu);
  EXPECT_EQ(d.tenant_id, 7u);
  EXPECT_EQ(d.payload_len, 12345u);
}

TEST(ProtocolTest, ShortHeaderNeedsMore) {
  FrameHeader h;
  char buf[kHeaderSize];
  EncodeHeader(FrameHeader{}, buf);
  for (size_t len = 0; len < kHeaderSize; ++len) {
    EXPECT_EQ(DecodeHeader(buf, len, &h), DecodeResult::kNeedMore) << len;
  }
}

TEST(ProtocolTest, BadMagicDetected) {
  char buf[kHeaderSize];
  EncodeHeader(FrameHeader{}, buf);
  buf[0] = 'G';  // say, an HTTP request
  FrameHeader h;
  EXPECT_EQ(DecodeHeader(buf, sizeof(buf), &h), DecodeResult::kBadMagic);
}

TEST(ProtocolTest, EveryCorruptedHeaderByteIsCaught) {
  FrameHeader ref;
  ref.opcode = kOpPut;
  ref.request_id = 99;
  ref.tenant_id = 3;
  ref.payload_len = 64;
  char good[kHeaderSize];
  EncodeHeader(ref, good);
  // Flip one bit in each header byte: the decoder must reject every such
  // frame (magic/checksum/version), never accept it as valid.
  for (size_t i = 0; i < kHeaderSize; ++i) {
    char buf[kHeaderSize];
    memcpy(buf, good, kHeaderSize);
    buf[i] ^= 0x10;
    FrameHeader h;
    EXPECT_NE(DecodeHeader(buf, sizeof(buf), &h), DecodeResult::kOk)
        << "byte " << i;
  }
}

TEST(ProtocolTest, BadVersionDetected) {
  FrameHeader h;
  h.version = kMaxWireVersion + 1;
  char buf[kHeaderSizeV2];  // bogus versions >= 2 encode the v2 layout
  EncodeHeader(h, buf);     // checksum is valid for the bogus version
  FrameHeader d;
  EXPECT_EQ(DecodeHeader(buf, sizeof(buf), &d), DecodeResult::kBadVersion);
}

TEST(ProtocolTest, V2HeaderRoundTripsDeadline) {
  FrameHeader h;
  h.version = kWireVersion2;
  h.opcode = kOpGet;
  h.request_id = 0xfeedface;
  h.tenant_id = 9;
  h.payload_len = 77;
  h.deadline_micros = 0x0123456789abcdefull;
  char buf[kHeaderSizeV2];
  EncodeHeader(h, buf);

  FrameHeader d;
  // Every prefix short of the full v2 header asks for more bytes — in
  // particular the [kHeaderSize, kHeaderSizeV2) range where a v1 decoder
  // would already have a "complete" header.
  for (size_t len = 2; len < kHeaderSizeV2; ++len) {
    EXPECT_EQ(DecodeHeader(buf, len, &d), DecodeResult::kNeedMore) << len;
  }
  ASSERT_EQ(DecodeHeader(buf, sizeof(buf), &d), DecodeResult::kOk);
  EXPECT_EQ(d.version, kWireVersion2);
  EXPECT_EQ(d.header_size, kHeaderSizeV2);
  EXPECT_EQ(d.deadline_micros, 0x0123456789abcdefull);
  EXPECT_EQ(d.request_id, 0xfeedfaceu);
  EXPECT_EQ(d.payload_len, 77u);
}

TEST(ProtocolTest, EveryCorruptedV2HeaderByteIsCaught) {
  FrameHeader ref;
  ref.version = kWireVersion2;
  ref.opcode = kOpPut;
  ref.request_id = 99;
  ref.tenant_id = 3;
  ref.payload_len = 64;
  ref.deadline_micros = 5'000'000;
  char good[kHeaderSizeV2];
  EncodeHeader(ref, good);
  for (size_t i = 0; i < kHeaderSizeV2; ++i) {
    char buf[kHeaderSizeV2];
    memcpy(buf, good, kHeaderSizeV2);
    buf[i] ^= 0x10;
    FrameHeader h;
    EXPECT_NE(DecodeHeader(buf, sizeof(buf), &h), DecodeResult::kOk)
        << "byte " << i;
  }
}

TEST(ProtocolTest, AppendFrameDeadlinePicksVersionByDeadline) {
  // Deadline-free traffic must stay byte-identical to v1.
  std::string v1, v1b, v2;
  AppendFrame(&v1, kOpGet, 1, 0, "k");
  AppendFrameDeadline(&v1b, kOpGet, 1, 0, 0, "k");
  EXPECT_EQ(v1, v1b);
  AppendFrameDeadline(&v2, kOpGet, 1, 0, 1500, "k");
  EXPECT_EQ(v2.size(), kHeaderSizeV2 + 1);
  FrameHeader h;
  ASSERT_EQ(DecodeHeader(v2.data(), v2.size(), &h), DecodeResult::kOk);
  EXPECT_EQ(h.version, kWireVersion2);
  EXPECT_EQ(h.deadline_micros, 1500u);
}

TEST(ProtocolTest, OversizedPayloadRejected) {
  FrameHeader h;
  h.payload_len = kMaxPayloadLen + 1;
  char buf[kHeaderSize];
  EncodeHeader(h, buf);
  FrameHeader d;
  EXPECT_EQ(DecodeHeader(buf, sizeof(buf), &d), DecodeResult::kTooLarge);
}

TEST(ProtocolTest, LengthPrefixedHelpersRoundTrip) {
  std::string buf;
  AppendLengthPrefixed(&buf, "hello");
  AppendLengthPrefixed(&buf, "");
  std::string_view in(buf);
  std::string_view a, b;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_TRUE(in.empty());
  std::string_view short_in("\x05\x00\x00\x00ab", 6);  // claims 5, has 2
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&short_in, &out));
}

TEST(ProtocolTest, StatusCodeRoundTripsAndClampsUnknown) {
  EXPECT_EQ(DecodeStatusCode(EncodeStatusCode(StatusCode::kNotFound)),
            StatusCode::kNotFound);
  EXPECT_EQ(DecodeStatusCode(0xEE), StatusCode::kInternal);
}

// -- live-server framing behavior --------------------------------------

class ServerFramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = core::ShardedStore::OfMemory(4);
    ServerOptions opts;
    opts.io_threads = 1;
    server_ = std::make_unique<Server>(store_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  // The server is still alive and serving iff a fresh connection can
  // complete a full round-trip.
  void ExpectServerHealthy() {
    SyncClient probe;
    ASSERT_TRUE(probe.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_TRUE(probe.Put("health", "ok").ok());
    auto got = probe.Get("health");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "ok");
  }

  std::unique_ptr<core::ShardedStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerFramingTest, GarbageBytesGetErrorFrameThenDisconnect) {
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.SendRaw("GET / HTTP/1.1\r\n\r\n").ok());
  FrameHeader h;
  std::string payload;
  ASSERT_TRUE(c.ReadRawFrame(&h, &payload).ok());
  EXPECT_EQ(h.opcode, kOpError | kResponseBit);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(DecodeStatusCode(static_cast<uint8_t>(payload[0])),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(c.ExpectPeerClose().ok());
  ExpectServerHealthy();
}

TEST_F(ServerFramingTest, ChecksumCorruptionGetsErrorFrameThenDisconnect) {
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  std::string frame;
  AppendFrame(&frame, kOpGet, 1, 0, "somekey");
  frame[12] ^= 0x01;  // corrupt payload_len; checksum now mismatches
  ASSERT_TRUE(c.SendRaw(frame).ok());
  FrameHeader h;
  std::string payload;
  ASSERT_TRUE(c.ReadRawFrame(&h, &payload).ok());
  EXPECT_EQ(h.opcode, kOpError | kResponseBit);
  EXPECT_NE(payload.find("bad-checksum"), std::string::npos);
  EXPECT_TRUE(c.ExpectPeerClose().ok());
  ExpectServerHealthy();
}

TEST_F(ServerFramingTest, OversizedFrameGetsErrorThenDisconnect) {
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  FrameHeader h;
  h.opcode = kOpPut;
  h.request_id = 1;
  h.payload_len = kMaxPayloadLen + 1;
  char hdr[kHeaderSize];
  EncodeHeader(h, hdr);
  ASSERT_TRUE(c.SendRaw(std::string_view(hdr, kHeaderSize)).ok());
  FrameHeader rh;
  std::string payload;
  ASSERT_TRUE(c.ReadRawFrame(&rh, &payload).ok());
  EXPECT_EQ(rh.opcode, kOpError | kResponseBit);
  EXPECT_NE(payload.find("too-large"), std::string::npos);
  EXPECT_TRUE(c.ExpectPeerClose().ok());
  ExpectServerHealthy();
}

TEST_F(ServerFramingTest, TornWindowCompletesWhenRestArrives) {
  // A pipelined window split at an arbitrary byte boundary must produce
  // the same responses once the remainder lands.
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("torn", "value").ok());

  std::string window;
  AppendFrame(&window, kOpGet, 10, 0, "torn");
  std::string put_payload;
  AppendLengthPrefixed(&put_payload, "torn2");
  put_payload += "v2";
  AppendFrame(&window, kOpPut, 11, 0, put_payload);
  AppendFrame(&window, kOpGet, 12, 0, "torn2");

  for (size_t cut = 1; cut + 1 < window.size(); cut += 7) {
    SyncClient torn;
    ASSERT_TRUE(torn.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_TRUE(torn.SendRaw(window.substr(0, cut)).ok());
    // The server may answer a prefix; deliver the rest and expect all 3.
    ASSERT_TRUE(torn.SendRaw(window.substr(cut)).ok());
    SyncClient::Response r;
    ASSERT_TRUE(torn.ReadResponse(&r).ok()) << "cut=" << cut;
    EXPECT_EQ(r.request_id, 10u);
    EXPECT_EQ(r.value, "value");
    ASSERT_TRUE(torn.ReadResponse(&r).ok());
    EXPECT_EQ(r.request_id, 11u);
    ASSERT_TRUE(torn.ReadResponse(&r).ok());
    EXPECT_EQ(r.request_id, 12u);
    EXPECT_EQ(r.value, "v2");
  }
}

TEST_F(ServerFramingTest, AbruptMidFrameDisconnectLeavesServerServing) {
  std::string window;
  AppendFrame(&window, kOpGet, 1, 0, "k");
  {
    SyncClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_TRUE(c.SendRaw(window.substr(0, kHeaderSize + 1)).ok());
    c.Close();  // hang up mid-payload
  }
  ExpectServerHealthy();
}

TEST_F(ServerFramingTest, MalformedMultiGetPayloadKeepsConnection) {
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  // Valid header, but payload claims 3 keys and carries only 1.
  std::string p;
  PutFixed32(&p, 3);
  AppendLengthPrefixed(&p, "only-one");
  std::string frame;
  AppendFrame(&frame, kOpMultiGet, 42, 0, p);
  ASSERT_TRUE(c.SendRaw(frame).ok());
  SyncClient::Response r;
  ASSERT_TRUE(c.ReadResponse(&r).ok());
  EXPECT_TRUE(r.is_error());
  EXPECT_EQ(r.request_id, 42u);
  EXPECT_EQ(r.code, StatusCode::kInvalidArgument);
  // Same connection still works — payload errors are per-frame, not
  // stream-fatal.
  ASSERT_TRUE(c.Put("after-error", "x").ok());
  ExpectServerHealthy();
}

TEST_F(ServerFramingTest, MalformedMultiGetDoesNotDropStagedWrites) {
  // Pipelined [PUT][MULTIGET with a bogus count]: the count check fails
  // before the run switch, so the open *write* run still holds the staged
  // PUT when the MULTIGET unwinds. The PUT response must arrive (first),
  // then the per-frame error — the write must not be silently dropped.
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  std::string window;
  std::string put_payload;
  AppendLengthPrefixed(&put_payload, "staged");
  put_payload += "v1";
  AppendFrame(&window, kOpPut, 1, 0, put_payload);
  std::string mg;
  PutFixed32(&mg, 1000);  // claims 1000 keys; carries none
  AppendFrame(&window, kOpMultiGet, 2, 0, mg);
  ASSERT_TRUE(c.SendRaw(window).ok());

  SyncClient::Response r;
  ASSERT_TRUE(c.ReadResponse(&r).ok());
  EXPECT_EQ(r.request_id, 1u);
  EXPECT_EQ(r.code, StatusCode::kOk) << "staged PUT must not be dropped";
  ASSERT_TRUE(c.ReadResponse(&r).ok());
  EXPECT_EQ(r.request_id, 2u);
  EXPECT_TRUE(r.is_error());
  EXPECT_EQ(r.code, StatusCode::kInvalidArgument);
  auto got = c.Get("staged");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v1");
}

TEST_F(ServerFramingTest, MalformedWriteBatchDoesNotDropStagedReads) {
  // Symmetric case: [GET][WRITEBATCH with a bogus count] must not cancel
  // the open read run — the GET response still arrives.
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("g1", "gv").ok());
  std::string window;
  AppendFrame(&window, kOpGet, 1, 0, "g1");
  std::string wb;
  PutFixed32(&wb, 1000);  // claims 1000 entries; carries none
  AppendFrame(&window, kOpWriteBatch, 2, 0, wb);
  ASSERT_TRUE(c.SendRaw(window).ok());

  SyncClient::Response r;
  ASSERT_TRUE(c.ReadResponse(&r).ok());
  EXPECT_EQ(r.request_id, 1u);
  EXPECT_EQ(r.code, StatusCode::kOk) << "staged GET must not be dropped";
  EXPECT_EQ(r.value, "gv");
  ASSERT_TRUE(c.ReadResponse(&r).ok());
  EXPECT_EQ(r.request_id, 2u);
  EXPECT_TRUE(r.is_error());
  ExpectServerHealthy();
}

TEST_F(ServerFramingTest, UnknownOpcodeGetsNotSupportedError) {
  SyncClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  std::string frame;
  AppendFrame(&frame, 0x33, 7, 0, "payload");
  ASSERT_TRUE(c.SendRaw(frame).ok());
  SyncClient::Response r;
  ASSERT_TRUE(c.ReadResponse(&r).ok());
  EXPECT_TRUE(r.is_error());
  EXPECT_EQ(r.code, StatusCode::kNotSupported);
  ASSERT_TRUE(c.Put("still-alive", "x").ok());
}

TEST_F(ServerFramingTest, SeededFuzzNeverCrashesServer) {
  // 64 connections of random bytes — some sharing a valid frame prefix so
  // the decoder gets past the magic — at random write granularity. The
  // server must survive all of them and still serve.
  Random rng(20260808);
  for (int round = 0; round < 64; ++round) {
    SyncClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
    std::string bytes;
    if (round % 3 == 0) {
      // Seed with a valid frame so fuzz bytes land mid-stream.
      AppendFrame(&bytes, kOpGet, rng.Next() & 0xffff, 0, "fuzzkey");
    }
    const size_t n = 1 + rng.Uniform(512);
    for (size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    size_t off = 0;
    bool dead = false;
    while (off < bytes.size() && !dead) {
      const size_t chunk = 1 + rng.Uniform(64);
      const size_t len = std::min(chunk, bytes.size() - off);
      dead = !c.SendRaw(std::string_view(bytes).substr(off, len)).ok();
      off += len;
    }
    // Whatever happened — error frame, disconnect, or responses — is
    // fine; crashing or wedging is not.
    c.Close();
  }
  ExpectServerHealthy();
  EXPECT_GT(server_->counters().protocol_errors, 0u);
}

}  // namespace
}  // namespace costperf::server
