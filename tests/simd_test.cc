#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bwtree/node.h"
#include "common/random.h"
#include "common/slice.h"

namespace costperf::simd {
namespace {

// Reference implementations the dispatched kernels must match bit for
// bit, regardless of which backend (avx2/sse2/scalar) was selected at
// static init.
size_t RefLower(const std::vector<uint64_t>& a, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(a.begin(), a.end(), key) - a.begin());
}
size_t RefUpper(const std::vector<uint64_t>& a, uint64_t key) {
  return static_cast<size_t>(
      std::upper_bound(a.begin(), a.end(), key) - a.begin());
}
uint32_t RefMatch(const std::vector<uint64_t>& a, uint64_t key) {
  uint32_t m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == key) m |= 1u << i;
  }
  return m;
}

// Keys that straddle the sign-flip boundary the AVX2 kernels depend on
// (unsigned compare via _mm256_cmpgt_epi64 after flipping the top bit).
const uint64_t kEdgeKeys[] = {
    0,
    1,
    0x7fffffffffffffffull - 1,
    0x7fffffffffffffffull,
    0x8000000000000000ull,
    0x8000000000000001ull,
    std::numeric_limits<uint64_t>::max() - 1,
    std::numeric_limits<uint64_t>::max(),
};

TEST(SimdTest, BackendNameIsSet) {
  const std::string name = BackendName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
#ifdef COSTPERF_NO_SIMD
  EXPECT_EQ(name, "scalar");
#endif
}

TEST(SimdTest, BoundsMatchScalarOnEdgeValues) {
  // Arrays built from every subset size of the edge values, sorted.
  std::vector<uint64_t> all(std::begin(kEdgeKeys), std::end(kEdgeKeys));
  for (size_t n = 0; n <= all.size(); ++n) {
    std::vector<uint64_t> a(all.begin(), all.begin() + n);
    for (uint64_t key : kEdgeKeys) {
      EXPECT_EQ(LowerBoundU64(a.data(), a.size(), key), RefLower(a, key))
          << "n=" << n << " key=" << key;
      EXPECT_EQ(UpperBoundU64(a.data(), a.size(), key), RefUpper(a, key))
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(SimdTest, BoundsMatchScalarOnRandomArrays) {
  Random rng(42);
  for (int round = 0; round < 200; ++round) {
    // Sizes sweep the vector-width boundaries (0..40 covers remainders
    // 0..3 for 4-lane AVX2 and several full blocks).
    const size_t n = rng.Uniform(41);
    std::vector<uint64_t> a(n);
    for (auto& v : a) {
      // Small value range => plenty of duplicate runs.
      v = rng.Uniform(32);
    }
    std::sort(a.begin(), a.end());
    for (int probe = 0; probe < 40; ++probe) {
      const uint64_t key = rng.Uniform(34);
      ASSERT_EQ(LowerBoundU64(a.data(), n, key), RefLower(a, key))
          << "n=" << n << " key=" << key;
      ASSERT_EQ(UpperBoundU64(a.data(), n, key), RefUpper(a, key))
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(SimdTest, MatchEqMatchesScalar) {
  Random rng(7);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng.Uniform(33);  // MatchEq contract: n <= 32
    std::vector<uint64_t> a(n);
    for (auto& v : a) v = rng.Uniform(8);  // unsorted, duplicate-heavy
    for (uint64_t key = 0; key < 9; ++key) {
      ASSERT_EQ(MatchEqU64(a.data(), n, key), RefMatch(a, key))
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(SimdTest, KeySliceAtEncodesBigEndianZeroPadded) {
  const std::string k = "ABCDEFGHIJ";
  // Full 8 bytes from offset 0: big-endian packing.
  EXPECT_EQ(KeySliceAt(k.data(), k.size(), 0), 0x4142434445464748ull);
  // Offset past the front: remaining bytes, zero-padded at the bottom.
  EXPECT_EQ(KeySliceAt(k.data(), k.size(), 8), 0x494a000000000000ull);
  // Offset at/beyond the end: all zero.
  EXPECT_EQ(KeySliceAt(k.data(), k.size(), 10), 0ull);
  EXPECT_EQ(KeySliceAt(k.data(), k.size(), 100), 0ull);
  // Short key: zero-padded.
  EXPECT_EQ(KeySliceAt("A", 1, 0), 0x4100000000000000ull);
  EXPECT_EQ(KeySliceAt("", 0, 0), 0ull);
}

TEST(SimdTest, KeySliceOrderIsNonStrictlyMonotonic) {
  // The slice order must never contradict lexicographic order at the
  // same offset: a <= b (lex) implies slice(a) <= slice(b). Equal slices
  // with different strings are fine (resolved by full compares).
  std::vector<std::string> keys = {"",     "a",    "ab",   "abc",
                                   "abcd", "abd",  "b",    "ba",
                                   "aa\x01", "aa\xff", "zzzzzzzzz"};
  std::sort(keys.begin(), keys.end());
  for (size_t i = 1; i < keys.size(); ++i) {
    const uint64_t prev =
        KeySliceAt(keys[i - 1].data(), keys[i - 1].size(), 0);
    const uint64_t cur = KeySliceAt(keys[i].data(), keys[i].size(), 0);
    EXPECT_LE(prev, cur) << keys[i - 1] << " vs " << keys[i];
  }
}

}  // namespace
}  // namespace costperf::simd

namespace costperf::bwtree {
namespace {

// NodeLowerBound/NodeUpperBound must agree with std::lower/upper_bound
// over the raw keys whether the per-node slice index is Ready or empty
// (the scalar degradation path a copy-reset index falls back to).
TEST(NodeSearchTest, BoundsMatchStdWithAndWithoutIndex) {
  Random rng(13);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.Uniform(40);
    std::vector<std::string> keys;
    for (size_t i = 0; i < n; ++i) {
      // Shared prefix exercises the skip/common-prefix logic; short
      // random tails create duplicate slices.
      std::string k = "commonprefix-";
      const size_t tail = rng.Uniform(4);
      for (size_t t = 0; t < tail; ++t) {
        k.push_back(static_cast<char>('a' + rng.Uniform(3)));
      }
      keys.push_back(std::move(k));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    NodeSearchIndex built;
    built.Build(keys);
    ASSERT_TRUE(built.Ready(keys.size()));
    NodeSearchIndex empty;  // never built: scalar path

    auto probe_at = [&](const std::string& probe) {
      const Slice key(probe);
      const size_t ref_lo = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      const size_t ref_hi = static_cast<size_t>(
          std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
      ASSERT_EQ(NodeLowerBound(keys, built, key), ref_lo) << probe;
      ASSERT_EQ(NodeUpperBound(keys, built, key), ref_hi) << probe;
      ASSERT_EQ(NodeLowerBound(keys, empty, key), ref_lo) << probe;
      ASSERT_EQ(NodeUpperBound(keys, empty, key), ref_hi) << probe;
    };

    for (const auto& k : keys) probe_at(k);       // exact hits
    probe_at("");                                 // before everything
    probe_at("commonprefix");                     // shorter than the skip
    probe_at("commonprefix-aa");                  // inside the range
    probe_at("commonprefiy");                     // above the prefix
    probe_at("zzz");                              // after everything
  }
}

TEST(NodeSearchTest, CopyProducesEmptyIndex) {
  std::vector<std::string> keys = {"a", "b", "c"};
  NodeSearchIndex idx;
  idx.Build(keys);
  ASSERT_TRUE(idx.Ready(3));
  // Copy-then-mutate is how SMOs build their new nodes; the copy must
  // come out empty so a forgotten rebuild degrades to scalar search
  // instead of silently consulting stale slices.
  NodeSearchIndex copied(idx);
  EXPECT_FALSE(copied.Ready(3));
  NodeSearchIndex assigned;
  assigned = idx;
  EXPECT_FALSE(assigned.Ready(3));
}

}  // namespace
}  // namespace costperf::bwtree
