#include <gtest/gtest.h>

#include <memory>

#include "bwtree/bwtree.h"
#include "bwtree/page_codec.h"
#include "common/random.h"
#include "core/caching_store.h"

namespace costperf::bwtree {
namespace {

// Compressible record payloads (structured text, as cold data tends to
// be).
std::string StructuredValue(int i) {
  char buf[96];
  snprintf(buf, sizeof(buf), "name=customer_%04d|city=city_%03d|tier=gold|",
           i % 1000, i % 250);
  return buf;
}

TEST(CompressedLeafCodecTest, RoundTrip) {
  LeafBase leaf;
  for (int i = 0; i < 60; ++i) {
    leaf.keys.push_back("key" + std::to_string(1000 + i));
    leaf.values.push_back(StructuredValue(i));
  }
  leaf.high_key = "kez";
  leaf.right_sibling = 77;
  std::string compressed;
  PageCodec::EncodeCompressedLeaf(leaf, &compressed);

  LeafBase out;
  ASSERT_TRUE(PageCodec::DecodeAnyLeaf(Slice(compressed), &out).ok());
  EXPECT_EQ(out.keys, leaf.keys);
  EXPECT_EQ(out.values, leaf.values);
  EXPECT_EQ(out.high_key, leaf.high_key);
  EXPECT_EQ(out.right_sibling, 77u);

  // And it actually shrinks structured content.
  std::string raw;
  PageCodec::EncodeLeaf(leaf, &raw);
  EXPECT_LT(compressed.size(), raw.size() * 0.7);
}

TEST(CompressedLeafCodecTest, DecodeAnyAcceptsPlainLeaf) {
  LeafBase leaf;
  leaf.keys = {"a"};
  leaf.values = {"b"};
  std::string raw;
  PageCodec::EncodeLeaf(leaf, &raw);
  LeafBase out;
  ASSERT_TRUE(PageCodec::DecodeAnyLeaf(Slice(raw), &out).ok());
  EXPECT_EQ(out.keys, leaf.keys);
}

TEST(CompressedLeafCodecTest, PeekKindRecognizesCompressed) {
  LeafBase leaf;
  std::string img;
  PageCodec::EncodeCompressedLeaf(leaf, &img);
  uint8_t kind = 0;
  ASSERT_TRUE(PageCodec::PeekKind(Slice(img), &kind).ok());
  EXPECT_EQ(kind, PageCodec::kCompressedLeaf);
}

class CssTreeTest : public ::testing::Test {
 protected:
  CssTreeTest() {
    storage::SsdOptions dev;
    dev.capacity_bytes = 128ull << 20;
    dev.max_iops = 0;
    device_ = std::make_unique<storage::SsdDevice>(dev);
    log_ = std::make_unique<llama::LogStructuredStore>(device_.get());
    BwTreeOptions opts;
    opts.log_store = log_.get();
    opts.max_page_bytes = 64 << 10;
    tree_ = std::make_unique<BwTree>(opts);
  }

  std::unique_ptr<storage::SsdDevice> device_;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<BwTree> tree_;
};

TEST_F(CssTreeTest, CompressedFlushEvictReloadRoundTrip) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        tree_->Put("key" + std::to_string(i), StructuredValue(i)).ok());
  }
  auto pids = tree_->LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kCompressedPage).ok());
  EXPECT_EQ(tree_->stats().compressed_flushes, 1u);
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());

  for (int i = 0; i < 100; ++i) {
    auto r = tree_->Get("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, StructuredValue(i));
  }
  EXPECT_EQ(tree_->stats().compressed_loads, 1u);
}

TEST_F(CssTreeTest, CompressedImageSmallerOnMedia) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        tree_->Put("key" + std::to_string(i), StructuredValue(i)).ok());
  }
  auto pids = tree_->LeafPageIds();
  ASSERT_EQ(pids.size(), 1u);

  uint64_t before = log_->stats().payload_bytes_appended;
  ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kFullPage).ok());
  uint64_t full_bytes = log_->stats().payload_bytes_appended - before;

  // Dirty it again so the compressed flush re-appends.
  ASSERT_TRUE(tree_->Put("key5", StructuredValue(5)).ok());
  before = log_->stats().payload_bytes_appended;
  ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kCompressedPage).ok());
  uint64_t css_bytes = log_->stats().payload_bytes_appended - before;

  EXPECT_LT(css_bytes, full_bytes / 2)
      << "CSS image should be much smaller than the raw page";
}

TEST_F(CssTreeTest, DeltaChainOverCompressedBase) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        tree_->Put("key" + std::to_string(i), StructuredValue(i)).ok());
  }
  auto pids = tree_->LeafPageIds();
  ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kCompressedPage).ok());
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());
  // Blind update + delta flush on top of the compressed base.
  ASSERT_TRUE(tree_->Put("key3", "updated").ok());
  ASSERT_TRUE(tree_->FlushPage(pids[0], FlushMode::kDeltaOnly).ok());
  ASSERT_TRUE(tree_->EvictPage(pids[0], EvictMode::kFullEviction).ok());

  EXPECT_EQ(*tree_->Get("key3"), "updated");
  EXPECT_EQ(*tree_->Get("key4"), StructuredValue(4));
}

TEST_F(CssTreeTest, RecoveryOfCompressedPages) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        tree_->Put("key" + std::to_string(i), StructuredValue(i)).ok());
  }
  for (auto pid : tree_->LeafPageIds()) {
    ASSERT_TRUE(tree_->FlushPage(pid, FlushMode::kCompressedPage).ok());
  }
  ASSERT_TRUE(log_->Flush().ok());

  BwTreeOptions opts;
  opts.log_store = log_.get();
  // A second tree over the same log store (its directory is shared state
  // on the device; recovery rescans it).
  llama::LogStructuredStore log2(device_.get());
  opts.log_store = &log2;
  BwTree recovered(opts);
  ASSERT_TRUE(recovered.RecoverFromStore().ok());
  for (int i = 0; i < 300; i += 7) {
    auto r = recovered.Get("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, StructuredValue(i));
  }
}

TEST(CssStoreTest, TieringPolicySendsColdestPagesToCss) {
  VirtualClock clock(1);
  core::CachingStoreOptions opts;
  opts.clock = &clock;
  opts.device.capacity_bytes = 256ull << 20;
  opts.device.max_iops = 0;
  opts.eviction_policy = llama::EvictionPolicy::kCostBased;
  opts.breakeven_interval_seconds = 45.0;
  opts.tier.css_budget_bytes = 64ull << 20;
  opts.tier.demote_idle_seconds = 200.0;
  opts.memory_budget_bytes = 0;
  opts.maintenance_interval_ops = 0;
  core::CachingStore store(opts);

  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        store.Put("k" + std::to_string(i), StructuredValue(i)).ok());
  }
  ASSERT_TRUE(store.Checkpoint().ok());

  // Phase 1: 60s idle -> pages pass the MM/SS breakeven and are evicted
  // uncompressed (idle < the demotion floor).
  clock.AdvanceSeconds(60);
  store.Maintain();
  EXPECT_EQ(store.Stats().tier_demotions, 0u);
  EXPECT_EQ(store.tree()->resident_leaves(), 0u);

  // Touch everything back in, then let it go stone cold.
  for (int i = 0; i < 3000; i += 10) {
    ASSERT_TRUE(store.Get("k" + std::to_string(i)).ok());
  }
  clock.AdvanceSeconds(300);  // beyond the demotion floor
  store.Maintain();
  const auto after_demote = store.Stats();
  EXPECT_GT(after_demote.tier_demotions, 0u)
      << "stone-cold pages must demote to the compressed tier";
  EXPECT_GT(after_demote.tier_css_pages, 0u);
  EXPECT_GT(after_demote.tier_css_bytes, 0u);
  EXPECT_LT(after_demote.MeasuredCompressionRatio(), 0.7)
      << "structured payloads must actually shrink";
  EXPECT_GT(after_demote.measured_css_breakeven_ops, 0.0)
      << "demotions must feed the measured Fig. 8 breakeven";
  EXPECT_GT(after_demote.measured_t_i_seconds, 0.0);

  // Data still correct through the compressed tier, and reading it IS
  // the promotion path: the load decompresses and flips the entry back
  // to DRAM.
  for (int i = 0; i < 3000; i += 97) {
    auto r = store.Get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, StructuredValue(i));
  }
  const auto after_reads = store.Stats();
  EXPECT_GT(after_reads.tier_css_hits, 0u)
      << "reads of demoted pages must be served from compressed records";
  EXPECT_GT(after_reads.tier_promotions, 0u)
      << "a touched CSS page must promote back to DRAM";
  EXPECT_LT(after_reads.tier_css_pages, after_demote.tier_css_pages);
}

TEST(CssStoreTest, ReheatLimitRefusesThrashingPages) {
  VirtualClock clock(1);
  core::CachingStoreOptions opts;
  opts.clock = &clock;
  opts.device.capacity_bytes = 256ull << 20;
  opts.device.max_iops = 0;
  opts.eviction_policy = llama::EvictionPolicy::kCostBased;
  opts.breakeven_interval_seconds = 45.0;
  opts.tier.css_budget_bytes = 64ull << 20;
  opts.tier.demote_idle_seconds = 50.0;
  opts.tier.max_reheats = 1;
  opts.memory_budget_bytes = 0;
  opts.maintenance_interval_ops = 0;
  core::CachingStore store(opts);

  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(
        store.Put("k" + std::to_string(i), StructuredValue(i)).ok());
  }
  ASSERT_TRUE(store.Checkpoint().ok());

  // Demote -> touch (promote) cycles past the reheat limit: the policy
  // must eventually refuse to demote pages that keep coming back.
  for (int round = 0; round < 4; ++round) {
    clock.AdvanceSeconds(100);
    store.Maintain();
    for (int i = 0; i < 1500; i += 10) {
      ASSERT_TRUE(store.Get("k" + std::to_string(i)).ok());
    }
  }
  const auto s = store.Stats();
  EXPECT_GT(s.tier_demotions, 0u);
  EXPECT_GT(s.tier_promotions, 0u);
  EXPECT_GT(s.tier_demotion_refusals, 0u)
      << "pages reheated past max_reheats must be refused CSS";
}

}  // namespace
}  // namespace costperf::bwtree
