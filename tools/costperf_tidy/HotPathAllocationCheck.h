#ifndef COSTPERF_TOOLS_COSTPERF_TIDY_HOT_PATH_ALLOCATION_CHECK_H_
#define COSTPERF_TOOLS_COSTPERF_TIDY_HOT_PATH_ALLOCATION_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace costperf_tidy {

// costperf-hot-path-allocation
//
// Functions marked COSTPERF_HOT (src/common/hot_path.h expands it to
// [[clang::annotate("costperf_hot")]]) promise to be allocation-free:
// they run on every Get/Put under the latch-free discipline, where a
// malloc is both a latency cliff (page faults, arena locks) and — on
// the epoch-protected paths — a reclamation hazard hiding spot.
//
// The check flags, anywhere in a hot function's body (lambdas
// included):
//   * new / new[] expressions,
//   * calls to the C allocation family (malloc, calloc, realloc,
//     aligned_alloc, strdup, ...),
//   * member calls that can grow a std:: container or string
//     (push_back, append, resize, reserve, insert, operator+=, ...).
//
// Growth calls are reported at a lower confidence wording than plain
// `new` — reserve() into a preallocated vector is sometimes deliberate;
// the fix there is to hoist the call out of the hot function, not to
// suppress the check.
class HotPathAllocationCheck : public clang::tidy::ClangTidyCheck {
 public:
  HotPathAllocationCheck(llvm::StringRef Name,
                         clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(
      const clang::LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace costperf_tidy

#endif  // COSTPERF_TOOLS_COSTPERF_TIDY_HOT_PATH_ALLOCATION_CHECK_H_
