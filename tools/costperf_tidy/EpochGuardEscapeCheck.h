#ifndef COSTPERF_TOOLS_COSTPERF_TIDY_EPOCH_GUARD_ESCAPE_CHECK_H_
#define COSTPERF_TOOLS_COSTPERF_TIDY_EPOCH_GUARD_ESCAPE_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace costperf_tidy {

// costperf-epoch-guard-escape
//
// A pointer resolved under an EpochGuard (a delta-chain Node*, a
// mass-tree node, a retired cache table) is only guaranteed live while
// that guard is. The thread-safety analysis (REQUIRES_EPOCH in
// common/epoch.h) already forces every *dereference* under a guard;
// what it cannot see is a protected pointer being *stored* somewhere
// that outlives the guard — a member, a global, or the function's own
// return value when the guard is function-local. Those escapes turn
// into use-after-reclaim the first time reclamation actually runs,
// which under light test load is approximately never: exactly the bug
// class a static check earns its keep on.
//
// Flags, inside any function whose body declares a costperf::EpochGuard:
//   * assignments that store a protected-type pointer into a class
//     member or a variable with static/global storage,
//   * return statements whose value is a protected-type pointer, when
//     the function signature does not itself demand the caller hold the
//     epoch (REQUIRES_EPOCH-annotated helpers legitimately return
//     protected pointers to guarded callers; they do not declare the
//     guard — their caller does — so they never match here).
//
// Options:
//   costperf-epoch-guard-escape.ProtectedClasses — semicolon-separated
//   class names whose pointers are epoch-protected (default: the
//   Bw-tree and mass-tree node types).
class EpochGuardEscapeCheck : public clang::tidy::ClangTidyCheck {
 public:
  EpochGuardEscapeCheck(llvm::StringRef Name,
                        clang::tidy::ClangTidyContext* Context);

  bool isLanguageVersionSupported(
      const clang::LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap& Opts) override;

 private:
  bool IsProtectedPointer(clang::QualType T) const;

  const std::string RawProtectedClasses;
  std::vector<std::string> ProtectedClasses;
};

}  // namespace costperf_tidy

#endif  // COSTPERF_TOOLS_COSTPERF_TIDY_EPOCH_GUARD_ESCAPE_CHECK_H_
