#include "HotPathAllocationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace costperf_tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

namespace {

constexpr llvm::StringRef kHotAnnotation = "costperf_hot";

// True when `FD` (or any of its redeclarations — the annotate attribute
// is usually spelled on the in-class declaration, while the match lands
// on the out-of-line definition) carries annotate("costperf_hot").
bool IsHotFunction(const clang::FunctionDecl* FD) {
  for (const clang::FunctionDecl* Redecl : FD->redecls()) {
    for (const auto* A : Redecl->specific_attrs<clang::AnnotateAttr>()) {
      if (A->getAnnotation() == kHotAnnotation) return true;
    }
  }
  return false;
}

}  // namespace

void HotPathAllocationCheck::registerMatchers(MatchFinder* Finder) {
  // Annotation text is checked in check() — the attr argument is not
  // expressible in the matcher DSL.
  auto HotFn =
      functionDecl(isDefinition(), hasAttr(clang::attr::Annotate)).bind("fn");

  Finder->addMatcher(
      cxxNewExpr(hasAncestor(HotFn)).bind("new"), this);

  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::malloc", "::calloc", "::realloc", "::aligned_alloc",
                   "::posix_memalign", "::strdup", "::strndup", "::valloc"))),
               hasAncestor(HotFn))
          .bind("calloc"),
      this);

  // Growth entry points on the standard containers/strings a hot leaf
  // plausibly touches. operator+= / operator= on basic_string allocate
  // too; they arrive here as operator calls with a method callee.
  auto GrowingMethod = cxxMethodDecl(
      ofClass(hasAnyName("::std::basic_string", "::std::vector",
                         "::std::deque", "::std::map", "::std::unordered_map",
                         "::std::set", "::std::unordered_set")),
      hasAnyName("push_back", "emplace_back", "emplace", "append", "assign",
                 "insert", "resize", "reserve", "operator+=", "operator="));
  Finder->addMatcher(
      cxxMemberCallExpr(callee(GrowingMethod), hasAncestor(HotFn))
          .bind("grow"),
      this);
  Finder->addMatcher(
      cxxOperatorCallExpr(callee(GrowingMethod), hasAncestor(HotFn))
          .bind("grow"),
      this);
}

void HotPathAllocationCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* FD = Result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
  if (FD == nullptr || !IsHotFunction(FD)) return;

  if (const auto* New = Result.Nodes.getNodeAs<clang::CXXNewExpr>("new")) {
    diag(New->getBeginLoc(),
         "operator new in COSTPERF_HOT function %0; hot-path leaves must "
         "be allocation-free (hoist the allocation to the caller or a "
         "setup phase)")
        << FD;
    return;
  }
  if (const auto* C = Result.Nodes.getNodeAs<clang::CallExpr>("calloc")) {
    diag(C->getBeginLoc(),
         "C heap allocation in COSTPERF_HOT function %0; hot-path leaves "
         "must be allocation-free")
        << FD;
    return;
  }
  if (const auto* G = Result.Nodes.getNodeAs<clang::CallExpr>("grow")) {
    diag(G->getBeginLoc(),
         "potentially allocating container/string growth in COSTPERF_HOT "
         "function %0; preallocate outside the hot path or drop the "
         "COSTPERF_HOT marker")
        << FD;
  }
}

}  // namespace costperf_tidy
