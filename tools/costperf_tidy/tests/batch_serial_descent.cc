// Fixture for costperf-batch-serial-descent. Self-contained: models the
// tree classes and the annotate attribute directly instead of including
// repo headers so the runner needs no include paths.
//
// tidy-check: costperf-batch-serial-descent
// expect: single-probe descent call in COSTPERF_HOT batch function 'MultiGetBatch'
// expect: single-probe descent call in COSTPERF_HOT batch function 'StepProbe'
// expect: single-probe descent call in COSTPERF_HOT batch function 'StepLookup'
// expect-not: 'Get'
// expect-not: 'hot_single_get'
// expect-not: 'cold_batch'

#define COSTPERF_HOT [[clang::annotate("costperf_hot")]]

namespace costperf {
namespace mapping {
// Not a tree: MappingTable::Get is the per-hop PID translation and is
// legal from anywhere, including the probe state machine.
struct MappingTable {
  unsigned long Get(unsigned long pid) { return pid; }
};
}  // namespace mapping

namespace bwtree {
struct BwTree {
  int Get(int key) { return key; }
  int DescendToLeaf(int key) { return key; }

  // Batch entry point looping per-key descent: the exact regression the
  // check exists for. Both the Get and the DescendToLeaf call are
  // flagged.
  COSTPERF_HOT void MultiGetBatch(const int* keys, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      (void)Get(keys[i]);            // flagged
      (void)DescendToLeaf(keys[i]);  // flagged
    }
  }

  // Per-hop quantum of the probe machine: the mapping-table translation
  // is the legal per-hop work; no tree-level descent here.
  COSTPERF_HOT unsigned long StepProbe(mapping::MappingTable& table,
                                       unsigned long pid, int key) {
    (void)DescendToLeaf(key);  // flagged
    return table.Get(pid);     // NOT flagged: MappingTable, not the tree
  }

  // The single-probe path itself may descend — it is not batch
  // machinery, hot or not.
  COSTPERF_HOT int hot_single_get(int key) { return Get(key); }

  // Unannotated batch-shaped helper: out of scope for a hot-path check.
  void cold_batch(const int* keys, unsigned n) {
    for (unsigned i = 0; i < n; ++i) (void)Get(keys[i]);
  }
};
}  // namespace bwtree

namespace masstree {
struct MassTree {
  int Get(int key) const { return key; }
  int FindBorder(int slice) const { return slice; }

  COSTPERF_HOT int StepLookup(int slice) const {
    return FindBorder(slice);  // flagged
  }
};
}  // namespace masstree
}  // namespace costperf
