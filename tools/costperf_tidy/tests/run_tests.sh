#!/usr/bin/env bash
# Fixture runner for the costperf-tidy plugin. Each tests/*.cc fixture
# declares its own contract in comment directives:
#
#   // tidy-check: <check-name>          check to enable (required)
#   // tidy-option: <key>=<value>        CheckOptions entry (repeatable)
#   // expect: <substring>               must appear in tidy output
#   // expect-not: <substring>           must NOT appear in tidy output
#
# Usage: run_tests.sh <plugin.so> [clang-tidy-binary]
# Exits 0 with a message (skip, not failure) when the plugin or the
# clang-tidy binary is missing, so lanes without LLVM stay green.
set -u

HERE="$(cd "$(dirname "$0")" && pwd)"
PLUGIN="${1:-}"
TIDY="${2:-}"

if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi

if [[ -z "$PLUGIN" || ! -f "$PLUGIN" ]]; then
  echo "costperf_tidy tests: plugin library not found" \
       "(${PLUGIN:-<unset>}); skipping." >&2
  exit 0
fi
if [[ -z "$TIDY" ]] || ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "costperf_tidy tests: clang-tidy binary not found; skipping." >&2
  exit 0
fi

failures=0
ran=0

for fixture in "$HERE"/*.cc; do
  check="$(sed -n 's|^// tidy-check: ||p' "$fixture" | head -1)"
  if [[ -z "$check" ]]; then
    echo "SKIP $(basename "$fixture"): no tidy-check directive"
    continue
  fi

  # Assemble -config with any fixture-declared CheckOptions.
  config="{Checks: '-*,$check', CheckOptions: ["
  first=1
  while IFS= read -r opt; do
    key="${opt%%=*}"
    val="${opt#*=}"
    [[ $first -eq 0 ]] && config+=", "
    config+="{key: '$key', value: '$val'}"
    first=0
  done < <(sed -n 's|^// tidy-option: ||p' "$fixture")
  config+="]}"

  out="$("$TIDY" -load "$PLUGIN" -config "$config" "$fixture" -- \
         -std=c++17 2>&1)"
  ran=$((ran + 1))
  fixture_failed=0

  while IFS= read -r want; do
    if ! grep -qF "$want" <<<"$out"; then
      echo "FAIL $(basename "$fixture"): missing expected diagnostic:"
      echo "     $want"
      fixture_failed=1
    fi
  done < <(sed -n 's|^// expect: ||p' "$fixture")

  while IFS= read -r bad; do
    # Only consider tidy diagnostic lines — the fixture's own source is
    # echoed in caret context and would self-match otherwise.
    if grep -E "(warning|error):" <<<"$out" | grep -qF "$bad"; then
      echo "FAIL $(basename "$fixture"): forbidden diagnostic mentions:"
      echo "     $bad"
      fixture_failed=1
    fi
  done < <(sed -n 's|^// expect-not: ||p' "$fixture")

  if [[ $fixture_failed -ne 0 ]]; then
    failures=$((failures + 1))
    echo "---- clang-tidy output for $(basename "$fixture") ----"
    echo "$out"
    echo "----"
  else
    echo "PASS $(basename "$fixture") ($check)"
  fi
done

echo "costperf_tidy tests: $ran fixtures, $failures failure(s)"
[[ $failures -eq 0 ]]
