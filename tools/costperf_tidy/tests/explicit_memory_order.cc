// Fixture for costperf-explicit-memory-order. The check only enforces
// inside configured hot-path directories; the runner passes
// HotPathDirs=tests so this file qualifies.
//
// tidy-check: costperf-explicit-memory-order
// tidy-option: costperf-explicit-memory-order.HotPathDirs=tests
// expect: defaulted seq_cst memory order
// expect: atomic operator shorthand is always seq_cst
// expect-not: explicit_orders_ok

#include <atomic>
#include <cstdint>

std::atomic<uint64_t> counter{0};

uint64_t defaulted_load() {
  return counter.load();  // flagged: defaulted seq_cst
}

void defaulted_rmw() {
  counter.fetch_add(1);  // flagged: defaulted seq_cst
}

void operator_sugar() {
  counter++;       // flagged: operator shorthand
  counter = 42;    // flagged: operator shorthand
}

// Every order spelled: no diagnostics on any line of this function.
uint64_t explicit_orders_ok() {
  counter.store(1, std::memory_order_release);
  counter.fetch_add(1, std::memory_order_relaxed);
  uint64_t expected = 2;
  counter.compare_exchange_strong(expected, 3, std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  return counter.load(std::memory_order_acquire);
}
