// Fixture for costperf-hot-path-allocation. Self-contained: spells the
// annotate attribute directly instead of including common/hot_path.h so
// the runner needs no include paths into the repo.
//
// tidy-check: costperf-hot-path-allocation
// expect: operator new in COSTPERF_HOT function 'hot_new'
// expect: C heap allocation in COSTPERF_HOT function 'hot_malloc'
// expect: container/string growth in COSTPERF_HOT function 'hot_grow'
// expect-not: 'hot_clean'
// expect-not: 'cold_alloc'

#include <cstdlib>
#include <string>
#include <vector>

#define COSTPERF_HOT [[clang::annotate("costperf_hot")]]

COSTPERF_HOT int* hot_new() {
  return new int(7);  // flagged
}

COSTPERF_HOT void* hot_malloc(unsigned n) {
  return std::malloc(n);  // flagged
}

COSTPERF_HOT void hot_grow(std::vector<int>& v, std::string& s) {
  v.push_back(1);  // flagged
  s.append("x");   // flagged
}

// Allocation-free hot leaf: reads, arithmetic, writes through existing
// storage. Must produce no diagnostics.
COSTPERF_HOT unsigned hot_clean(const std::vector<int>& v, int* out) {
  unsigned acc = 0;
  for (int x : v) acc += static_cast<unsigned>(x);
  *out = static_cast<int>(acc);
  return acc;
}

// Unannotated function: allocations are fine off the hot path.
std::string cold_alloc() {
  std::string s;
  s.append("cold paths may allocate");
  return s;
}
