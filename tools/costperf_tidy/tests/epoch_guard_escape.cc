// Fixture for costperf-epoch-guard-escape. Stubs the costperf
// EpochGuard and a protected Node type under their real qualified
// names so the fixture stands alone.
//
// tidy-check: costperf-epoch-guard-escape
// expect: stored into a class member
// expect: stored into static storage
// expect: returned from 'leak_by_return'
// expect-not: 'use_within_guard'
// expect-not: 'requires_epoch_helper'

namespace costperf {

class EpochManager {
 public:
  void Enter() {}
  void Exit() {}
};

class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* mgr) : mgr_(mgr) { mgr_->Enter(); }
  ~EpochGuard() { mgr_->Exit(); }

 private:
  EpochManager* mgr_;
};

struct Node {
  int payload = 0;
  Node* next = nullptr;
};

Node* Resolve(EpochManager&);

Node* global_leak = nullptr;

class Tree {
 public:
  void LeakToMember() {
    EpochGuard guard(&epochs_);
    cached_ = Resolve(epochs_);  // flagged: member store
  }

  void LeakToGlobal() {
    EpochGuard guard(&epochs_);
    global_leak = Resolve(epochs_);  // flagged: static-storage store
  }

  Node* leak_by_return() {
    EpochGuard guard(&epochs_);
    return Resolve(epochs_);  // flagged: guard dies before caller derefs
  }

  // Legitimate: resolve, use, drop before the guard releases. No
  // diagnostics expected.
  int use_within_guard() {
    EpochGuard guard(&epochs_);
    Node* n = Resolve(epochs_);
    int sum = 0;
    while (n != nullptr) {
      sum += n->payload;
      n = n->next;
    }
    return sum;
  }

 private:
  EpochManager epochs_;
  Node* cached_ = nullptr;
};

// Legitimate: a REQUIRES_EPOCH-style helper returns a protected pointer
// but declares no guard of its own — the caller's guard covers the
// result. Must not match (the matcher keys on a local EpochGuard decl).
Node* requires_epoch_helper(EpochManager& epochs) { return Resolve(epochs); }

}  // namespace costperf
