#include "BatchSerialDescentCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace costperf_tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

namespace {

constexpr llvm::StringRef kHotAnnotation = "costperf_hot";

// Mirrors HotPathAllocationCheck: the annotate attribute is usually
// spelled on the in-class declaration while the match lands on the
// out-of-line definition, so walk every redeclaration.
bool IsHotFunction(const clang::FunctionDecl* FD) {
  for (const clang::FunctionDecl* Redecl : FD->redecls()) {
    for (const auto* A : Redecl->specific_attrs<clang::AnnotateAttr>()) {
      if (A->getAnnotation() == kHotAnnotation) return true;
    }
  }
  return false;
}

// The batch machinery by name: the batched entry points themselves
// (anything with "Batch" in the name) and the per-hop state-machine
// steps. Only these are held to the no-serial-descent contract — a
// plain hot Get calling DescendToLeaf is the single-probe path working
// as designed.
bool IsBatchFunction(const clang::FunctionDecl* FD) {
  const std::string Name = FD->getNameAsString();
  if (Name.find("Batch") != std::string::npos) return true;
  return Name == "StepProbe" || Name == "StepLookup";
}

}  // namespace

void BatchSerialDescentCheck::registerMatchers(MatchFinder* Finder) {
  auto HotFn =
      functionDecl(isDefinition(), hasAttr(clang::attr::Annotate)).bind("fn");

  // Class-scoped single-probe descent entry points. Scoping by the
  // fully qualified method matters: StepProbe legitimately calls
  // MappingTable::Get (the per-hop PID translation) — only the trees'
  // own per-key descents defeat the interleaved machine.
  auto SerialDescent = cxxMethodDecl(hasAnyName(
      "::costperf::bwtree::BwTree::Get",
      "::costperf::bwtree::BwTree::DescendToLeaf",
      "::costperf::masstree::MassTree::Get",
      "::costperf::masstree::MassTree::GetInLayer",
      "::costperf::masstree::MassTree::FindBorder"));

  Finder->addMatcher(
      cxxMemberCallExpr(callee(SerialDescent), hasAncestor(HotFn))
          .bind("call"),
      this);
}

void BatchSerialDescentCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* FD = Result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
  const auto* Call = Result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("call");
  if (FD == nullptr || Call == nullptr) return;
  if (!IsHotFunction(FD) || !IsBatchFunction(FD)) return;

  diag(Call->getBeginLoc(),
       "single-probe descent call in COSTPERF_HOT batch function %0; "
       "batched probes must advance through the interleaved state machine "
       "(MultiGetBatch/LookupBatch), not fall back to per-key descent")
      << FD;
}

}  // namespace costperf_tidy
