#include "EpochGuardEscapeCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "llvm/ADT/StringRef.h"

namespace costperf_tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

namespace {

// The epoch-protected node types. Unqualified class names, matched
// against the pointee's unqualified name so nested types (BwTree::Node)
// and namespace moves do not silently disarm the check.
constexpr const char kDefaultProtectedClasses[] = "Node;DeltaNode;LayerNode";

}  // namespace

EpochGuardEscapeCheck::EpochGuardEscapeCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      RawProtectedClasses(
          Options.get("ProtectedClasses", kDefaultProtectedClasses)) {
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  llvm::StringRef(RawProtectedClasses)
      .split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) ProtectedClasses.emplace_back(P.str());
}

void EpochGuardEscapeCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "ProtectedClasses", RawProtectedClasses);
}

bool EpochGuardEscapeCheck::IsProtectedPointer(clang::QualType T) const {
  if (T.isNull() || !T->isPointerType()) return false;
  const clang::CXXRecordDecl* RD =
      T->getPointeeType()->getAsCXXRecordDecl();
  if (RD == nullptr) return false;
  llvm::StringRef Name = RD->getName();
  for (const std::string& P : ProtectedClasses) {
    if (Name == P) return true;
  }
  return false;
}

void EpochGuardEscapeCheck::registerMatchers(MatchFinder* Finder) {
  // A function that takes its own guard: the epoch ends when it
  // returns, so nothing protected may outlive its frame.
  auto GuardVar =
      varDecl(hasType(cxxRecordDecl(hasName("::costperf::EpochGuard"))));
  auto GuardedFn =
      functionDecl(isDefinition(), hasDescendant(declStmt(containsDeclaration(
                                       0, GuardVar))))
          .bind("fn");

  // Escape 1: storing into a member (this->cached_ = node) or into
  // static/global storage. Protected-type filtering happens in check()
  // — QualType inspection there is simpler and versions better than a
  // pointee-name matcher expression.
  Finder->addMatcher(
      binaryOperator(isAssignmentOperator(),
                     hasLHS(anyOf(memberExpr().bind("member-lhs"),
                                  declRefExpr(to(varDecl(hasGlobalStorage())))
                                      .bind("global-lhs"))),
                     hasAncestor(GuardedFn))
          .bind("store"),
      this);

  // Escape 2: returning a protected pointer out of the guard's frame.
  Finder->addMatcher(
      returnStmt(hasReturnValue(expr().bind("retval")), hasAncestor(GuardedFn))
          .bind("ret"),
      this);
}

void EpochGuardEscapeCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* FD = Result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
  if (FD == nullptr) return;

  if (const auto* Store =
          Result.Nodes.getNodeAs<clang::BinaryOperator>("store")) {
    if (!IsProtectedPointer(Store->getLHS()->getType())) return;
    const bool IsMember = Result.Nodes.getNodeAs<clang::MemberExpr>(
                              "member-lhs") != nullptr;
    diag(Store->getOperatorLoc(),
         "epoch-protected pointer stored into %select{a class member|"
         "static storage}0 inside %1's guard scope; the pointee may be "
         "reclaimed the moment the guard releases")
        << (IsMember ? 0 : 1) << FD;
    return;
  }

  if (const auto* Ret = Result.Nodes.getNodeAs<clang::ReturnStmt>("ret")) {
    const auto* Val = Result.Nodes.getNodeAs<clang::Expr>("retval");
    if (Val == nullptr || !IsProtectedPointer(Val->getType())) return;
    (void)Ret;
    diag(Val->getBeginLoc(),
         "epoch-protected pointer returned from %0, which holds its own "
         "EpochGuard; the guard releases before the caller can use the "
         "pointer — take the guard in the caller and annotate %0 with "
         "REQUIRES_EPOCH instead")
        << FD;
  }
}

}  // namespace costperf_tidy
