#ifndef COSTPERF_TOOLS_COSTPERF_TIDY_BATCH_SERIAL_DESCENT_CHECK_H_
#define COSTPERF_TOOLS_COSTPERF_TIDY_BATCH_SERIAL_DESCENT_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace costperf_tidy {

// costperf-batch-serial-descent
//
// The batched read surfaces (BwTree::MultiGetBatch, MassTree::
// LookupBatch and their StepProbe/StepLookup state machines) exist to
// overlap index-descent cache misses across a group of probes. Falling
// back to the single-probe entry points from inside them — a loop of
// tree->Get(key) per op — silently serializes the misses again while
// keeping the batched API shape, which is exactly the regression the
// perf work guards against.
//
// The check flags calls to the single-probe descent entry points
//   BwTree::Get / BwTree::DescendToLeaf
//   MassTree::Get / MassTree::GetInLayer / MassTree::FindBorder
// from COSTPERF_HOT functions that are part of the batch machinery:
// name contains "Batch", or is one of the per-hop state-machine steps
// (StepProbe, StepLookup). Matching is scoped by class, so e.g.
// MappingTable::Get from StepProbe — the per-hop PID translation —
// stays legal.
class BatchSerialDescentCheck : public clang::tidy::ClangTidyCheck {
 public:
  BatchSerialDescentCheck(llvm::StringRef Name,
                          clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(
      const clang::LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace costperf_tidy

#endif  // COSTPERF_TOOLS_COSTPERF_TIDY_BATCH_SERIAL_DESCENT_CHECK_H_
