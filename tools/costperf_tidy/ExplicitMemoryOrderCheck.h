#ifndef COSTPERF_TOOLS_COSTPERF_TIDY_EXPLICIT_MEMORY_ORDER_CHECK_H_
#define COSTPERF_TOOLS_COSTPERF_TIDY_EXPLICIT_MEMORY_ORDER_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace costperf_tidy {

// costperf-explicit-memory-order
//
// In the hot-path directories every std::atomic access must spell its
// memory order. A defaulted seq_cst is either (a) an unnecessary full
// fence on a path measured in nanoseconds, or (b) load-bearing ordering
// that nobody wrote down — both are bugs in a repo whose point is the
// cost side of cost/performance. The mapping table's publish protocol,
// the epoch Enter fence, and the cache manager's slot publication each
// document their orders at the call site; this check keeps that the
// rule rather than the exception.
//
// Flags, for files under the configured hot-path directories:
//   * atomic member calls (load/store/exchange/fetch_*/compare_exchange)
//     whose std::memory_order argument is the defaulted seq_cst,
//   * atomic operator sugar (++, --, +=, |=, =, implicit conversion
//     load) which has no way to spell an order at all.
//
// Options:
//   costperf-explicit-memory-order.HotPathDirs — semicolon-separated
//   path substrings to enforce in (default: the src/ engine dirs).
class ExplicitMemoryOrderCheck : public clang::tidy::ClangTidyCheck {
 public:
  ExplicitMemoryOrderCheck(llvm::StringRef Name,
                           clang::tidy::ClangTidyContext* Context);

  bool isLanguageVersionSupported(
      const clang::LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap& Opts) override;

 private:
  bool InHotPathDir(clang::SourceLocation Loc,
                    const clang::SourceManager& SM) const;

  const std::string RawHotPathDirs;
  std::vector<std::string> HotPathDirs;
};

}  // namespace costperf_tidy

#endif  // COSTPERF_TOOLS_COSTPERF_TIDY_EXPLICIT_MEMORY_ORDER_CHECK_H_
