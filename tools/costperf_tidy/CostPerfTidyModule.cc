// costperf-tidy — the project's clang-tidy module. Four checks enforce
// the hot-path contracts DESIGN.md states in prose:
//
//   costperf-hot-path-allocation   COSTPERF_HOT functions allocate nothing
//   costperf-explicit-memory-order no defaulted seq_cst in src/ engine dirs
//   costperf-epoch-guard-escape    guarded pointers must not outlive guards
//   costperf-batch-serial-descent  batch probes never fall back to per-key
//                                  single-probe descent
//
// Built as a plugin (tools/costperf_tidy/CMakeLists.txt) and loaded via
//   clang-tidy -load libcostperf_tidy.so -checks=costperf-*
// which scripts/run_clang_tidy.sh wires up automatically when the
// plugin was built.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "BatchSerialDescentCheck.h"
#include "EpochGuardEscapeCheck.h"
#include "ExplicitMemoryOrderCheck.h"
#include "HotPathAllocationCheck.h"

namespace costperf_tidy {

class CostPerfTidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories& Factories) override {
    Factories.registerCheck<HotPathAllocationCheck>(
        "costperf-hot-path-allocation");
    Factories.registerCheck<ExplicitMemoryOrderCheck>(
        "costperf-explicit-memory-order");
    Factories.registerCheck<EpochGuardEscapeCheck>(
        "costperf-epoch-guard-escape");
    Factories.registerCheck<BatchSerialDescentCheck>(
        "costperf-batch-serial-descent");
  }
};

}  // namespace costperf_tidy

namespace clang::tidy {

// Register at static-init time when the plugin is dlopened.
static ClangTidyModuleRegistry::Add<costperf_tidy::CostPerfTidyModule> X(
    "costperf-module", "Cost/performance hot-path checks.");

// The registry entry above is the module's only export; this anchor
// keeps the translation unit from being dropped by an over-eager
// linker when the plugin is ever linked statically into a tool.
volatile int CostPerfTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
