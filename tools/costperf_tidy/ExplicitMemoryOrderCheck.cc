#include "ExplicitMemoryOrderCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace costperf_tidy {

using namespace clang::ast_matchers;  // NOLINT: matcher DSL convention

namespace {

// Substring-match default: every directory holding latch-free or
// lock-striped engine code. tests/ and bench/ may use seq_cst sugar
// freely — convenience beats ceremony off the measured path.
constexpr const char kDefaultHotPathDirs[] =
    "src/common;src/mapping;src/bwtree;src/llama;src/masstree;src/core";

// libstdc++ implements std::atomic<T> member functions partly on the
// __atomic_base / __atomic_float base classes; match those too so the
// check does not depend on which layer the callee resolves to.
auto AtomicClass() {
  return cxxRecordDecl(hasAnyName("::std::atomic", "::std::__atomic_base",
                                  "::std::__atomic_float"));
}

}  // namespace

ExplicitMemoryOrderCheck::ExplicitMemoryOrderCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      RawHotPathDirs(Options.get("HotPathDirs", kDefaultHotPathDirs)) {
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  llvm::StringRef(RawHotPathDirs).split(Parts, ';', /*MaxSplit=*/-1,
                                        /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) HotPathDirs.emplace_back(P.str());
}

void ExplicitMemoryOrderCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "HotPathDirs", RawHotPathDirs);
}

void ExplicitMemoryOrderCheck::registerMatchers(MatchFinder* Finder) {
  // Named access with the order argument defaulted: the CXXDefaultArgExpr
  // among the call's arguments *is* the dropped std::memory_order.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              ofClass(AtomicClass()),
              hasAnyName("load", "store", "exchange", "fetch_add", "fetch_sub",
                         "fetch_and", "fetch_or", "fetch_xor",
                         "compare_exchange_weak", "compare_exchange_strong",
                         "test_and_set", "clear", "wait", "notify_one",
                         "notify_all"))),
          hasAnyArgument(cxxDefaultArgExpr().bind("defarg")))
          .bind("call"),
      this);

  // Operator sugar (x++, x += n, T v = x, x = v) — always seq_cst, and
  // not even spellable otherwise; rewrite as .load/.store/.fetch_*.
  Finder->addMatcher(
      cxxOperatorCallExpr(callee(cxxMethodDecl(ofClass(AtomicClass()))))
          .bind("sugar"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxConversionDecl(ofClass(AtomicClass()))))
          .bind("sugar"),
      this);
}

bool ExplicitMemoryOrderCheck::InHotPathDir(
    clang::SourceLocation Loc, const clang::SourceManager& SM) const {
  if (Loc.isInvalid()) return false;
  llvm::StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  for (const std::string& Dir : HotPathDirs) {
    if (File.contains(Dir)) return true;
  }
  return false;
}

void ExplicitMemoryOrderCheck::check(const MatchFinder::MatchResult& Result) {
  const clang::SourceManager& SM = *Result.SourceManager;

  if (const auto* Call =
          Result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("call")) {
    if (!InHotPathDir(Call->getBeginLoc(), SM)) return;
    // A defaulted non-order argument (e.g. compare_exchange's second
    // order defaulting *from the first*) is fine; only complain when the
    // defaulted parameter really is a std::memory_order.
    const auto* Def = Result.Nodes.getNodeAs<clang::CXXDefaultArgExpr>(
        "defarg");
    if (Def != nullptr) {
      llvm::StringRef Ty = Def->getType()
                               .getCanonicalType()
                               .getAsString();
      if (!llvm::StringRef(Ty).contains("memory_order")) return;
    }
    diag(Call->getBeginLoc(),
         "atomic operation relies on the defaulted seq_cst memory order "
         "in a hot-path directory; spell the order explicitly (and "
         "comment why if it must stay seq_cst)");
    return;
  }

  if (const auto* Sugar = Result.Nodes.getNodeAs<clang::Expr>("sugar")) {
    if (!InHotPathDir(Sugar->getBeginLoc(), SM)) return;
    diag(Sugar->getBeginLoc(),
         "atomic operator shorthand is always seq_cst and cannot name an "
         "order; use .load/.store/.fetch_* with an explicit "
         "std::memory_order in hot-path directories");
  }
}

}  // namespace costperf_tidy
