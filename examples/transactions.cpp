// Transactions through the Deuteronomy-style transaction component:
// snapshot isolation over the Bw-tree data component, with the TC's
// record caches (MVCC version store + read cache) absorbing reads and
// commit-time blind updates flowing to the DC without page reads.

#include <cstdio>

#include "core/caching_store.h"
#include "tc/transaction_component.h"

using namespace costperf;

int main() {
  core::CachingStoreOptions options;
  options.device.capacity_bytes = 1ull << 30;
  options.maintenance_interval_ops = 0;
  core::CachingStore store(options);

  tc::RecoveryLog log;
  tc::TransactionComponent tc(store.tree(), &log);

  // Seed two accounts.
  (void)tc.WriteOne("account:alice", "100");
  (void)tc.WriteOne("account:bob", "100");

  // A transfer transaction: read both, move 30, commit atomically.
  tc::Transaction* txn = tc.Begin();
  std::string alice, bob;
  (void)tc.Read(txn, "account:alice", &alice);
  (void)tc.Read(txn, "account:bob", &bob);
  int a = atoi(alice.c_str()), b = atoi(bob.c_str());
  tc.Write(txn, "account:alice", std::to_string(a - 30));
  tc.Write(txn, "account:bob", std::to_string(b + 30));
  Status s = tc.Commit(txn);
  printf("transfer committed: %s\n", s.ToString().c_str());

  (void)tc.ReadOne("account:alice", &alice);
  (void)tc.ReadOne("account:bob", &bob);
  printf("balances: alice=%s bob=%s\n", alice.c_str(), bob.c_str());

  // Conflict: two transactions racing on the same account. The second
  // committer loses (first-committer-wins snapshot isolation).
  tc::Transaction* t1 = tc.Begin();
  tc::Transaction* t2 = tc.Begin();
  tc.Write(t1, "account:alice", "1000000");
  tc.Write(t2, "account:alice", "0");
  Status s1 = tc.Commit(t1);
  Status s2 = tc.Commit(t2);
  printf("\nconflict demo: t1 -> %s, t2 -> %s\n", s1.ToString().c_str(),
         s2.ToString().c_str());

  // Record caching at work: repeated reads never reach the data
  // component, let alone the device.
  std::string v;
  for (int i = 0; i < 1000; ++i) (void)tc.ReadOne("account:bob", &v);
  auto st = tc.stats();
  printf("\nread path usage after 1000 re-reads:\n");
  printf("  MVCC version store hits: %llu\n",
         (unsigned long long)st.reads_from_version_store);
  printf("  read cache hits:         %llu\n",
         (unsigned long long)st.reads_from_read_cache);
  printf("  data component reads:    %llu\n",
         (unsigned long long)st.reads_from_dc);

  // Crash recovery: replay the durable redo log into a fresh store.
  core::CachingStore fresh_store(options);
  tc::TransactionComponent recovered(fresh_store.tree(), &log);
  if (!recovered.RecoverFromLog().ok()) return 1;
  std::string ra, rb;
  (void)recovered.ReadOne("account:alice", &ra);
  (void)recovered.ReadOne("account:bob", &rb);
  printf("\nafter simulated crash + redo replay: alice=%s bob=%s\n",
         ra.c_str(), rb.c_str());
  printf("(updates are applied identically during normal operation and "
         "recovery — they are all timestamped blind updates, §6.2)\n");
  return 0;
}
