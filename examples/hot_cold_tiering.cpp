// Demonstrates the paper's central operational idea: a data caching
// system adapts placement to data temperature. A shifting-hotspot
// workload runs over a store whose eviction policy is the cost model's
// breakeven rule; the example prints how the resident set tracks the hot
// set and what that does to dollar cost versus hoarding everything in
// DRAM.
//
// Simulated time is driven by a virtual clock (so "45 seconds idle"
// happens in milliseconds of wall time).

#include <cstdio>

#include "common/random.h"
#include "core/caching_store.h"
#include "costmodel/five_minute_rule.h"

using namespace costperf;

int main() {
  VirtualClock clock(1);
  costmodel::CostParams params = costmodel::CostParams::PaperDefaults();

  core::CachingStoreOptions options;
  options.clock = &clock;
  options.memory_budget_bytes = 0;  // let the cost rule decide, not budget
  options.eviction_policy = llama::EvictionPolicy::kCostBased;
  options.breakeven_interval_seconds =
      costmodel::BreakevenIntervalSeconds(params);
  options.maintenance_interval_ops = 0;  // we drive maintenance manually
  options.device.capacity_bytes = 1ull << 30;
  core::CachingStore store(options);

  // 40k records, ~100 B each.
  constexpr uint64_t kRecords = 40'000;
  printf("loading %llu records...\n", (unsigned long long)kRecords);
  Random value_rng(11);
  for (uint64_t i = 0; i < kRecords; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "item%010llu", (unsigned long long)i);
    std::string value(100, '\0');
    value_rng.Fill(value.data(), value.size());
    if (!store.Put(Slice(key), Slice(value)).ok()) return 1;
  }
  (void)store.Checkpoint();

  // 2% of items take 99% of traffic at 200 requests/sec; the hot region
  // moves every epoch (think: yesterday's news goes cold).
  HotspotGenerator gen(kRecords, 0.02, 0.99, 1234);
  const uint64_t step_nanos = static_cast<uint64_t>(1e9 / 200.0);

  printf("\n%8s %14s %12s %10s %10s\n", "epoch", "resident(B)", "SS ops",
         "loads", "evictions");
  uint64_t last_ss = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int op = 0; op < 20'000; ++op) {
      char key[32];
      snprintf(key, sizeof(key), "item%010llu",
               (unsigned long long)gen.Next());
      clock.AdvanceNanos(step_nanos);
      (void)store.Get(Slice(key));
      if (op % 500 == 0) store.Maintain();
    }
    auto t = store.tree()->stats();
    printf("%8d %14llu %12llu %10llu %10llu\n", epoch,
           (unsigned long long)store.cache()->resident_bytes(),
           (unsigned long long)(t.ss_ops - last_ss),
           (unsigned long long)t.page_loads,
           (unsigned long long)(t.full_evictions +
                                t.record_cache_evictions));
    last_ss = t.ss_ops;
    gen.ShiftHotSet(kRecords / 3);  // the working set drifts
  }

  // What did temperature-aware placement buy? Compare DRAM rental of the
  // final resident set against keeping the whole database resident.
  uint64_t resident = store.cache()->resident_bytes();
  uint64_t full = store.MemoryFootprintBytes();
  (void)full;
  double whole_db_bytes = kRecords * 130.0;
  printf("\nresident set settled at ~%llu bytes vs ~%.0f for the whole "
         "database —\n",
         (unsigned long long)resident, whole_db_bytes);
  printf("DRAM rental down %.0f%%, paid for with the SS operations above "
         "(each costing R=%.1f MM ops of CPU plus an I/O).\n",
         100.0 * (1.0 - resident / whole_db_bytes), params.r);
  printf("\nThat is Figure 2 in action: hot in DRAM, cold on flash.\n");
  return 0;
}
