// The paper's analysis packaged as a tool: given your hardware prices and
// measured rates, print the cost regimes — the updated five-minute rule
// (Eq. 6), the MM/SS/CSS tier boundaries (Fig. 2/8), and the main-memory
// system crossover (Eq. 7/8) — plus placement advice for sample access
// patterns.
//
// Usage: cost_advisor [dram_$per_GB flash_$per_GB cpu_$ ssd_io_$ ROPS IOPS R]
// With no arguments, uses the paper's §4.1 constants.

#include <cstdio>
#include <cstdlib>

#include "costmodel/advisor.h"
#include "costmodel/five_minute_rule.h"
#include "costmodel/masstree_compare.h"

using namespace costperf::costmodel;

int main(int argc, char** argv) {
  CostParams p = CostParams::PaperDefaults();
  if (argc == 8) {
    p.dram_cost_per_byte = atof(argv[1]) / 1e9;
    p.flash_cost_per_byte = atof(argv[2]) / 1e9;
    p.processor_cost = atof(argv[3]);
    p.ssd_io_capability_cost = atof(argv[4]);
    p.rops = atof(argv[5]);
    p.iops = atof(argv[6]);
    p.r = atof(argv[7]);
  } else if (argc != 1) {
    fprintf(stderr,
            "usage: %s [dram_$perGB flash_$perGB cpu_$ ssd_io_$ ROPS IOPS "
            "R]\n",
            argv[0]);
    return 2;
  }

  printf("cost parameters: %s\n\n", p.ToString().c_str());

  // The five-minute rule, updated.
  printf("Updated five-minute rule (Eq. 6):\n");
  printf("  page breakeven interval T_i = %.1f s\n",
         BreakevenIntervalSeconds(p));
  printf("  (classic I/O-vs-memory trade alone: %.1f s; the I/O *CPU* "
         "path adds the rest)\n",
         ClassicBreakevenIntervalSeconds(p));
  printf("  keep a page in DRAM if it is touched more often than once per "
         "T_i; evict otherwise.\n\n");

  printf("Record-granularity breakevens (Eq. 6 with record footprints):\n");
  for (double size : {64.0, 128.0, 256.0, 1024.0}) {
    printf("  %5.0f-byte record: T_i = %8.0f s\n", size,
           RecordBreakevenIntervalSeconds(p, size));
  }

  // Three-tier regimes with a compression option.
  CompressionParams comp;
  comp.compression_ratio = 0.4;
  comp.decompress_r = 3.0;
  CostAdvisor advisor(p, comp);
  printf("\nTier regimes (with a 0.40-ratio compressor costing 3 MM-ops "
         "to decompress):\n  %s\n", advisor.DescribeRegimes().c_str());

  printf("\nPlacement advice for sample page access patterns:\n");
  printf("  %-28s %10s %12s %12s %12s\n", "pattern", "tier", "$MM", "$SS",
         "$CSS");
  struct Sample {
    const char* name;
    double interval_seconds;
  } samples[] = {
      {"hot (10 ops/sec)", 0.1},
      {"warm (1 op/10 s)", 10},
      {"at breakeven (~45 s)", 45},
      {"cool (1 op/10 min)", 600},
      {"cold (1 op/day)", 86400},
      {"frozen (1 op/year)", 31536000},
  };
  for (const auto& s : samples) {
    Advice a = advisor.AdviseForInterval(s.interval_seconds);
    printf("  %-28s %10s %12.3e %12.3e %12.3e\n", s.name,
           TierName(a.tier).c_str(), a.mm_cost, a.ss_cost, *a.css_cost);
  }

  // Main-memory system crossover.
  printf("\nMain-memory system (MassTree-class: Px=2.6, Mx=2.1) vs fully "
         "cached Bw-tree (Eq. 7/8):\n");
  SystemComparison sys;
  for (double gb : {1.0, 6.1, 10.0, 100.0, 1000.0}) {
    sys.database_bytes = gb * 1e9;
    printf("  %7.1f GB database: main-memory system cheaper only above "
           "%.3g ops/sec\n",
           gb, CrossoverOpsPerSec(sys, p));
  }
  printf("\nMost databases are nowhere near those rates on most of their "
         "data — which is how data caching systems succeed.\n");
  return 0;
}
