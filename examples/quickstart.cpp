// Quickstart: open a caching store (Bw-tree over LLAMA over a simulated
// flash SSD), write, read, scan, and inspect what the storage stack did.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/caching_store.h"

using costperf::Slice;
using costperf::core::CachingStore;
using costperf::core::CachingStoreOptions;

int main() {
  // A store with a 4 MiB DRAM budget and LRU eviction. Everything not
  // resident lives on the (simulated) SSD in log-structured segments.
  CachingStoreOptions options;
  options.memory_budget_bytes = 4 << 20;
  options.device.capacity_bytes = 1ull << 30;
  CachingStore store(options);

  // 1. Write some records (blind upserts: no read I/O even if the target
  //    page is not in memory).
  for (int i = 0; i < 10'000; ++i) {
    std::string key = "user" + std::to_string(100000 + i);
    std::string value = "profile-data-for-" + std::to_string(i);
    costperf::Status s = store.Put(Slice(key), Slice(value));
    if (!s.ok()) {
      fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 2. Point reads.
  auto r = store.Get(Slice("user104242"));
  if (!r.ok()) {
    fprintf(stderr, "get failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  printf("user104242 -> %s\n", r.value().c_str());

  // 3. Range scan.
  std::vector<std::pair<std::string, std::string>> rows;
  if (!store.Scan(Slice("user105000"), 5, &rows).ok()) return 1;
  printf("\nfirst 5 records at/after user105000:\n");
  for (const auto& [k, v] : rows) printf("  %s -> %s\n", k.c_str(), v.c_str());

  // 4. Delete.
  (void)store.Delete(Slice("user104242"));
  printf("\nafter delete, user104242 found: %s\n",
         store.Get(Slice("user104242")).ok() ? "yes" : "no");

  // 5. Durability point: flush dirty pages and the log buffer.
  if (!store.Checkpoint().ok()) return 1;

  // 6. What the stack did. DebugString() is the display rendering; code
  // that needs the numbers should consume structured Stats() instead.
  printf("\n--- store internals ---\n%s\n", store.DebugString().c_str());
  printf("\nresident footprint: %llu bytes (budget %llu)\n",
         (unsigned long long)store.MemoryFootprintBytes(),
         (unsigned long long)options.memory_budget_bytes);
  return 0;
}
