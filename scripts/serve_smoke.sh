#!/usr/bin/env bash
# End-to-end loopback serving smoke: builds the Release server + loadgen,
# starts costperf_server over an in-cache ShardedStore, replays the
# multi-tenant pipelined workload, and asserts
#   - throughput >= COSTPERF_SERVE_MIN_KPS keys/s (default 500000),
#   - every tenant made progress and reported sane latencies,
#   - wire batches actually reached the batched store paths (MultiGet
#     shard grouping and WriteBatch runs, not per-key calls),
#   - the server quiesced cleanly on SIGTERM (exit 0).
# With COSTPERF_SERVE_MERGE_JSON=/path/to/BENCH_smoke.json the serve
# result is merged into that file under a top-level "serve" key.
#
# Usage: scripts/serve_smoke.sh [serve_result.json]
#   default output: build-bench/serve_smoke.json (kept out of the tree)
# The throughput gate is wall-clock sensitive; run on an idle host, or set
# COSTPERF_SERVE_MIN_KPS=0 to keep only the structural assertions.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
DIR="${COSTPERF_SERVE_BUILD_DIR:-$ROOT/build-bench}"
OUT="${1:-$DIR/serve_smoke.json}"
MIN_KPS="${COSTPERF_SERVE_MIN_KPS:-500000}"
DURATION="${COSTPERF_SERVE_DURATION:-3}"
# check.sh's serve lane rebuilds under TSan (Debug + -DCOSTPERF_SANITIZE=
# thread) in its own directory via these overrides; the default is the
# Release throughput configuration.
BUILD_TYPE="${COSTPERF_SERVE_BUILD_TYPE:-Release}"
CMAKE_EXTRA=()
if [[ -n "${COSTPERF_SERVE_SANITIZE:-}" ]]; then
  CMAKE_EXTRA+=("-DCOSTPERF_SANITIZE=${COSTPERF_SERVE_SANITIZE}")
fi

cmake -S "$ROOT" -B "$DIR" -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"} >/dev/null || exit 1
cmake --build "$DIR" --target costperf_server_bin loadgen -j "$JOBS" \
  >/dev/null || exit 1

SERVER_LOG="$DIR/serve_smoke_server.log"
"$DIR/src/server/costperf_server" --port 0 --io-threads 2 --shards 8 \
  --store memory > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null' EXIT

# The server prints "listening on host:port" once the socket is live.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on [^:]*:\([0-9]*\)$/\1/p' "$SERVER_LOG")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$SERVER_LOG"; exit 1; }
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "serve_smoke: server never reported its port" >&2
  cat "$SERVER_LOG"
  exit 1
fi

if ! "$DIR/bench/loadgen" --host 127.0.0.1 --port "$PORT" \
     --connections 8 --pipeline 16 --tenants 4 \
     --duration-seconds "$DURATION" \
     --keyspace 20000 --json "$OUT"; then
  echo "serve_smoke: loadgen failed" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi

# The server must still be alive after the run: a crash mid-load (TSan
# abort, sanitizer error, assertion) exits the process, and that failure
# must be loud even though loadgen may have finished its report.
if ! kill -0 "$SERVER_PID" 2>/dev/null; then
  wait "$SERVER_PID"
  RC=$?
  echo "serve_smoke: server died during load (exit $RC)" >&2
  cat "$SERVER_LOG" >&2
  trap - EXIT
  exit 1
fi

# Clean quiesce: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
SERVER_RC=1
if wait "$SERVER_PID"; then SERVER_RC=0; fi
trap - EXIT
if [[ "$SERVER_RC" -ne 0 ]]; then
  echo "serve_smoke: server did not shut down cleanly" >&2
  cat "$SERVER_LOG"
  exit 1
fi

MIN_KPS="$MIN_KPS" OUT="$OUT" python3 - <<'EOF' || exit 1
import json, os, sys

with open(os.environ["OUT"]) as f:
    r = json.load(f)
min_kps = float(os.environ["MIN_KPS"])

def fail(msg):
    print(f"serve_smoke: {msg}", file=sys.stderr)
    sys.exit(1)

if r["keys_per_sec"] < min_kps:
    fail(f'throughput {r["keys_per_sec"]:.0f} keys/s < gate {min_kps:.0f}')
tenants = r["per_tenant"]
if len(tenants) != r["tenants"]:
    fail(f'report has {len(tenants)} tenants, expected {r["tenants"]}')
for t in tenants:
    if t["keys"] <= 0:
        fail(f'tenant {t["tenant"]} made no progress')
    if not (0 < t["p50_us"] <= t["p99_us"]):
        fail(f'tenant {t["tenant"]} latency report is not sane: {t}')
    if t["errors"] > 0:
        fail(f'tenant {t["tenant"]} saw {t["errors"]} errors')
srv = r["server"]
if srv["multiget_batches"] <= 0 or srv["writebatch_batches"] <= 0:
    fail(f"wire batches never reached the batched store paths: {srv}")
keys_per_call = srv["multiget_keys"] / srv["multiget_batches"]
if keys_per_call < 2:
    fail(f"MultiGet grouping degenerated to per-key calls "
         f"({keys_per_call:.2f} keys/store call)")
print(f'serve_smoke: {r["keys_per_sec"]:.0f} keys/s over '
      f'{r["connections"]} conns x pipeline {r["pipeline"]}, '
      f'{keys_per_call:.0f} keys per MultiGet store call, '
      f'{srv["multiget_shard_groups"]} shard group visits')
EOF

if [[ -n "${COSTPERF_SERVE_MERGE_JSON:-}" ]]; then
  OUT="$OUT" MERGE="$COSTPERF_SERVE_MERGE_JSON" python3 - <<'EOF' || exit 1
import json, os
with open(os.environ["OUT"]) as f:
    serve = json.load(f)
path = os.environ["MERGE"]
with open(path) as f:
    base = json.load(f)
base["serve"] = serve
with open(path, "w") as f:
    json.dump(base, f, indent=2)
    f.write("\n")
print(f"merged serve result into {path}")
EOF
fi

echo "serve smoke passed; result at $OUT"
