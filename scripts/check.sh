#!/usr/bin/env bash
# Full verification matrix: plain build, Clang thread-safety analysis
# (COSTPERF_ANALYZE), and the three sanitizer configurations — each
# followed by the full ctest suite. Exits non-zero if any configured lane
# fails; lanes whose toolchain is missing (no clang++) are skipped with an
# explicit message rather than silently passing.
#
# Usage: scripts/check.sh [--list] [lane...]
#   lanes: plain analyze asan tsan ubsan simd stress serve chaos tidy
#   (default: all but bench)
#   Every ctest lane includes the three-tier suite — css_tier_test's
#   demotion/promotion/reheat policies, compressor_robustness_test's
#   adversarial decompression inputs, and the crash-recovery torture
#   with CSS demotions active — so the sanitizer lanes (asan/tsan/
#   ubsan) exercise the compressed tier's concurrency and memory
#   safety, not just the plain build.
#   `simd` rebuilds with -DCOSTPERF_NO_SIMD=ON (scalar key-slice search,
#   no vector kernels, no cpu dispatch) and runs the index + batch-probe
#   tests — proof the scalar fallback is a complete, correct
#   implementation and not just a compile-time stub.
#   `tidy` runs clang-tidy (scripts/run_clang_tidy.sh) with the base
#   .clang-tidy check set plus the costperf-* plugin checks when the
#   plugin was built; it skips with a message when LLVM is missing.
#   `stress` runs the SS-heavy steady-state bench (bench/ss_stress) and
#   fails unless background mode finished with foreground_maintenance_ops
#   == 0 — the off-the-op-path maintenance contract. It asserts counters,
#   not wall-clock numbers, so it is safe on loaded hosts.
#   `serve` rebuilds the server + loadgen under TSan and runs the
#   loopback serving smoke (scripts/serve_smoke.sh) with the throughput
#   gate disabled: it asserts per-tenant report sanity, wire batches
#   reaching the batched store paths, and a clean SIGTERM quiesce —
#   TSan-clean, no wall-clock numbers.
#   `chaos` runs the network fault-injection suite (ctest -L chaos) under
#   TSan with a reduced COSTPERF_CHAOS_ITERS: seeded torn frames, short
#   reads/writes, injected resets, slowloris stalls, and mid-stream
#   disconnects against the live server, asserting no wedges, no fd
#   leaks, and clean recovery after every plan.
#   The opt-in `bench` lane (never run by default: wall-clock sensitive)
#   runs scripts/bench_smoke.sh and leaves its BENCH_smoke.json at the
#   repo root.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
if [[ "${1:-}" == "--list" ]]; then
  cat <<'EOF'
plain    Release build + full ctest + 200-iteration crash-recovery torture
analyze  Clang -Werror=thread-safety build (locks + epoch capabilities)
asan     Debug + AddressSanitizer build + ctest + reduced torture
tsan     Debug + ThreadSanitizer build + ctest + reduced torture
ubsan    Debug + UBSanitizer (no-recover) build + ctest + reduced torture
simd     Release -DCOSTPERF_NO_SIMD=ON build; index/batch tests on the scalar path
stress   SS-heavy steady-state bench; asserts maintenance stays off op path
serve    TSan server+loadgen loopback smoke with clean-shutdown assertions
chaos    TSan network fault-injection suite (seeded plans, sheds, watchdog)
tidy     clang-tidy over all first-party sources (+ costperf-* plugin)
bench    (opt-in) wall-clock bench smoke; writes BENCH_smoke.json
EOF
  exit 0
fi
LANES=("$@")
[[ ${#LANES[@]} -eq 0 ]] && LANES=(plain analyze asan tsan ubsan simd stress serve chaos tidy)

failures=()
skips=()

have_clangxx() {
  [[ -n "${CLANGXX:-}" ]] && command -v "$CLANGXX" >/dev/null 2>&1 && return 0
  for cand in clang++ clang++-18 clang++-17 clang++-16; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANGXX="$cand"
      return 0
    fi
  done
  return 1
}

run_lane() {
  local lane="$1"
  shift
  local dir="$ROOT/build-$lane"
  echo
  echo "=== lane: $lane ==="
  if ! cmake -S "$ROOT" -B "$dir" "$@" >/dev/null; then
    failures+=("$lane (configure)")
    return
  fi
  if ! cmake --build "$dir" -j "$JOBS" >/dev/null; then
    failures+=("$lane (build)")
    return
  fi
  # The analyze lane is a compile-time check only; its test binaries are
  # identical to plain Clang ones, so building them is the verification.
  if [[ "$lane" == "analyze" ]]; then
    echo "lane $lane: build clean under -Werror=thread-safety"
    return
  fi
  if ! ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
       -LE 'torture|chaos' > "$dir/ctest.log" 2>&1; then
    tail -40 "$dir/ctest.log"
    failures+=("$lane (ctest)")
    return
  fi
  grep -E "tests (passed|failed)" "$dir/ctest.log" | tail -1
  # Crash-recovery torture loop: full 200 crash points on the plain lane,
  # a reduced loop under the (much slower) sanitizers. Every iteration
  # derives from the printed base seed, so a short loop still reproduces.
  local torture_iters=200
  [[ "$lane" != "plain" ]] && torture_iters=25
  if ! COSTPERF_TORTURE_ITERS="$torture_iters" \
       ctest --test-dir "$dir" --output-on-failure -L torture \
       > "$dir/ctest-torture.log" 2>&1; then
    tail -40 "$dir/ctest-torture.log"
    failures+=("$lane (torture)")
    return
  fi
  echo "torture loop: $torture_iters crash points passed"
  # Network chaos loop: full 200 fault plans on the plain lane, reduced
  # under sanitizers. The dedicated `chaos` lane runs it under TSan with
  # a fresh build; here it piggybacks on whatever this lane built.
  local chaos_iters=200
  [[ "$lane" != "plain" ]] && chaos_iters=40
  if ! COSTPERF_CHAOS_ITERS="$chaos_iters" \
       ctest --test-dir "$dir" --output-on-failure -L chaos \
       > "$dir/ctest-chaos.log" 2>&1; then
    tail -40 "$dir/ctest-chaos.log"
    failures+=("$lane (chaos)")
    return
  fi
  echo "chaos loop: $chaos_iters fault plans passed"
}

for lane in "${LANES[@]}"; do
  case "$lane" in
    plain)
      run_lane plain -DCMAKE_BUILD_TYPE=Release
      ;;
    analyze)
      if have_clangxx; then
        run_lane analyze -DCMAKE_BUILD_TYPE=Release \
                 -DCMAKE_CXX_COMPILER="$CLANGXX" -DCOSTPERF_ANALYZE=ON
      else
        echo "=== lane: analyze — SKIPPED (no clang++ on PATH; set CLANGXX)"
        skips+=(analyze)
      fi
      ;;
    asan)
      run_lane asan -DCMAKE_BUILD_TYPE=Debug -DCOSTPERF_SANITIZE=address
      ;;
    tsan)
      run_lane tsan -DCMAKE_BUILD_TYPE=Debug -DCOSTPERF_SANITIZE=thread
      ;;
    ubsan)
      run_lane ubsan -DCMAKE_BUILD_TYPE=Debug -DCOSTPERF_SANITIZE=undefined
      ;;
    simd)
      # Scalar-fallback lane: the SIMD wrapper compiled with the vector
      # kernels and runtime dispatch forced off. Runs the tests that
      # exercise key-slice search and the batched probes; the simd_test
      # backend assertion pins BackendName() == "scalar" in this build.
      echo
      echo "=== lane: simd ==="
      dir="$ROOT/build-simd"
      if cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release \
           -DCOSTPERF_NO_SIMD=ON >/dev/null &&
         cmake --build "$dir" --target simd_test batch_probe_test \
           bwtree_test masstree_test sharded_store_test -j "$JOBS" \
           >/dev/null &&
         ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
           -R 'Simd|NodeSearch|Batch|BwTree|MassTree|ShardedStore'
      then
        echo "lane simd: scalar fallback passes the index/batch suite"
      else
        failures+=("simd")
      fi
      ;;
    stress)
      echo
      echo "=== lane: stress ==="
      dir="$ROOT/build-stress"
      if cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release >/dev/null &&
         cmake --build "$dir" --target ss_stress -j "$JOBS" >/dev/null &&
         "$dir/bench/ss_stress"; then
        echo "lane stress: background maintenance contract holds"
      else
        failures+=("stress")
      fi
      ;;
    serve)
      echo
      echo "=== lane: serve ==="
      if COSTPERF_SERVE_BUILD_DIR="$ROOT/build-serve" \
         COSTPERF_SERVE_BUILD_TYPE=Debug \
         COSTPERF_SERVE_SANITIZE=thread \
         COSTPERF_SERVE_MIN_KPS=0 \
         COSTPERF_SERVE_DURATION=2 \
         "$ROOT/scripts/serve_smoke.sh" "$ROOT/build-serve/serve_smoke.json"
      then
        echo "lane serve: loopback smoke TSan-clean, clean shutdown"
      else
        failures+=("serve")
      fi
      ;;
    chaos)
      echo
      echo "=== lane: chaos ==="
      dir="$ROOT/build-chaos"
      if cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Debug \
           -DCOSTPERF_SANITIZE=thread >/dev/null &&
         cmake --build "$dir" --target server_chaos_test -j "$JOBS" \
           >/dev/null &&
         COSTPERF_CHAOS_ITERS="${COSTPERF_CHAOS_ITERS:-60}" \
           ctest --test-dir "$dir" --output-on-failure -L chaos
      then
        echo "lane chaos: fault plans TSan-clean, no wedges, no fd leaks"
      else
        failures+=("chaos")
      fi
      ;;
    tidy)
      echo
      echo "=== lane: tidy ==="
      if command -v clang-tidy >/dev/null 2>&1 || [[ -n "${CLANG_TIDY:-}" ]]
      then
        if "$ROOT/scripts/run_clang_tidy.sh"; then
          echo "lane tidy: clean"
        else
          failures+=("tidy")
        fi
      else
        echo "lane tidy — SKIPPED (no clang-tidy on PATH; set CLANG_TIDY)"
        skips+=(tidy)
      fi
      ;;
    bench)
      echo
      echo "=== lane: bench ==="
      if ! "$ROOT/scripts/bench_smoke.sh"; then
        failures+=("bench (smoke)")
      fi
      ;;
    *)
      echo "unknown lane '$lane' (want: plain analyze asan tsan ubsan simd stress serve chaos tidy bench)" >&2
      exit 2
      ;;
  esac
done

echo
if [[ ${#skips[@]} -gt 0 ]]; then
  echo "skipped lanes: ${skips[*]}"
fi
if [[ ${#failures[@]} -gt 0 ]]; then
  echo "FAILED lanes: ${failures[*]}"
  exit 1
fi
echo "all configured lanes passed"
