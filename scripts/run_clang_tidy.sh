#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party source file, using a compile_commands.json produced by a
# dedicated CMake configure. Exits non-zero on any finding in
# WarningsAsErrors. When clang-tidy is unavailable the default is to
# exit 0 with a message so lanes without LLVM skip instead of failing;
# set COSTPERF_REQUIRE_TIDY=1 to turn that skip into a hard failure
# (for CI stages that exist specifically to run tidy).
#
# Extra CMake options for the tidy configure pass through:
#   scripts/run_clang_tidy.sh -DCOSTPERF_SANITIZE=address
# or via CMAKE_OPTS (word-split): CMAKE_OPTS="-DFOO=ON -DBAR=OFF".
# The project's own option surface (COSTPERF_*) therefore shapes the
# exact compile commands tidy analyzes — an #ifdef'd hot path is only
# checked under the configuration that compiles it.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-tidy}"
JOBS="${JOBS:-$(nproc)}"
REQUIRE="${COSTPERF_REQUIRE_TIDY:-0}"

skip_or_fail() {
  echo "run_clang_tidy: $1" >&2
  if [[ "$REQUIRE" == "1" ]]; then
    echo "run_clang_tidy: COSTPERF_REQUIRE_TIDY=1 — failing instead of" \
         "skipping." >&2
    exit 1
  fi
  echo "run_clang_tidy: skipping (set COSTPERF_REQUIRE_TIDY=1 to make" \
       "this fatal)." >&2
  exit 0
}

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  skip_or_fail "clang-tidy not found on PATH (install LLVM or set CLANG_TIDY=/path/to/clang-tidy)"
fi

# Project options forwarded to the tidy configure: anything on our
# command line plus CMAKE_OPTS, after the defaults so callers can
# override them.
EXTRA_OPTS=()
if [[ -n "${CMAKE_OPTS:-}" ]]; then
  # shellcheck disable=SC2206 # deliberate word-splitting of user opts
  EXTRA_OPTS+=(${CMAKE_OPTS})
fi
EXTRA_OPTS+=("$@")

cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_BUILD_TYPE=Debug "${EXTRA_OPTS[@]}" >/dev/null || exit 1

# Load the costperf-tidy plugin when its library was built (any build
# dir) and enable the costperf-* checks on top of .clang-tidy. The
# plugin is optional: without Clang dev headers it never builds, and
# the base check set still runs.
TIDY_ARGS=()
PLUGIN=""
for cand in "$BUILD_DIR/tools/costperf_tidy/libcostperf_tidy.so" \
            "$ROOT"/build*/tools/costperf_tidy/libcostperf_tidy.so; do
  if [[ -f "$cand" ]]; then
    PLUGIN="$cand"
    break
  fi
done
if [[ -n "$PLUGIN" ]]; then
  echo "run_clang_tidy: loading costperf-tidy plugin: $PLUGIN"
  TIDY_ARGS+=(-load "$PLUGIN" -checks=costperf-*)
fi

mapfile -t FILES < <(find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" \
                          "$ROOT/examples" -name '*.cc' | sort)
echo "run_clang_tidy: $TIDY over ${#FILES[@]} files ($JOBS jobs)"

# run-clang-tidy (the LLVM parallel driver) when present, else serial.
if command -v run-clang-tidy >/dev/null 2>&1 && [[ -z "$PLUGIN" ]]; then
  # (The parallel driver predates per-invocation -load on some
  # versions; with a plugin we stay serial for predictable flags.)
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" \
                 -quiet "${FILES[@]}"
  exit $?
fi

status=0
for f in "${FILES[@]}"; do
  "$TIDY" "${TIDY_ARGS[@]}" -p "$BUILD_DIR" --quiet "$f" || status=1
done
exit $status
