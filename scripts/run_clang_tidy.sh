#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party source file, using a compile_commands.json produced by a
# dedicated CMake configure. Exits non-zero on any finding in
# WarningsAsErrors, zero (with a message) when clang-tidy is unavailable
# so CI lanes without LLVM skip instead of failing.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-tidy}"
JOBS="${JOBS:-$(nproc)}"

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping." >&2
  echo "run_clang_tidy: install LLVM or set CLANG_TIDY=/path/to/clang-tidy." >&2
  exit 0
fi

cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null || exit 1

mapfile -t FILES < <(find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" \
                          "$ROOT/examples" -name '*.cc' | sort)
echo "run_clang_tidy: $TIDY over ${#FILES[@]} files ($JOBS jobs)"

# run-clang-tidy (the LLVM parallel driver) when present, else serial.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" \
                 -quiet "${FILES[@]}"
  exit $?
fi

status=0
for f in "${FILES[@]}"; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
done
exit $status
