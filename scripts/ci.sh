#!/usr/bin/env bash
# Two-stage CI entry point (see DESIGN.md "Static analysis layer" for
# how the stages divide the invariant surface):
#
#   stage 1 — correctness gate (always): tier-1 Release build + full
#             ctest, then the ANALYZE lane (Clang thread-safety: lock
#             *and* epoch capabilities as compile errors). Stage 1
#             failing means the change is wrong; nothing else runs.
#   stage 2 — depth lanes (after stage 1): tidy, then the sanitizer
#             matrix + stress + serve + chaos (network fault injection
#             under TSan) via scripts/check.sh. Lanes whose toolchain is
#             missing skip with a message (tidy can be forced fatal with
#             COSTPERF_REQUIRE_TIDY=1).
#
# Usage: scripts/ci.sh [--stage1-only]
#   `scripts/check.sh --list` enumerates every lane individually.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "=== CI stage 1: build + tests ==="
cmake -S "$ROOT" -B "$ROOT/build-ci" -DCMAKE_BUILD_TYPE=Release || exit 1
cmake --build "$ROOT/build-ci" -j "$JOBS" || exit 1
ctest --test-dir "$ROOT/build-ci" --output-on-failure -j "$JOBS" || exit 1

echo
echo "=== CI stage 1: thread-safety analysis (ANALYZE lane) ==="
# check.sh skips with a message when clang++ is absent; the analysis
# then runs only on toolchains that have it, which is the documented
# degradation (annotations are no-ops under GCC).
"$ROOT/scripts/check.sh" analyze || exit 1

if [[ "${1:-}" == "--stage1-only" ]]; then
  echo
  echo "CI stage 1 passed (--stage1-only: skipping depth lanes)."
  exit 0
fi

echo
echo "=== CI stage 2: tidy + sanitizer matrix ==="
"$ROOT/scripts/check.sh" tidy asan tsan ubsan stress serve chaos || exit 1

echo
echo "CI: all stages passed."
