#!/usr/bin/env bash
# Smoke benchmark: builds the Release bench binaries and runs the sweeps,
# emitting machine-readable results so successive PRs can diff them:
#   - "sweep": in-cache read-heavy YCSB-C over {1,2,4,8} threads
#     (unbounded budget) — the hot-path scaling trajectory, now with
#     p999 alongside p50/p99.
#   - "batched_sweep": the same sweep with reads issued as 64-key
#     MultiGet batches, served by the AMAC-interleaved index probe —
#     vs_single_probe is the batched/single throughput ratio per
#     thread count.
#   - "ss_sweep": a budget-bounded SS-heavy zipf mix in inline vs
#     background maintenance mode — tail latency and the maintenance
#     attribution counters (foreground_maintenance_ops is 0 when the
#     MaintenanceScheduler does the work).
#   - "css_sweep": the Fig. 8 three-tier sweep — a compressible zipf
#     mix at three cache budgets, each with the CSS tier off and on.
#     Rows carry hit_rate_per_dollar plus the measured-vs-modeled
#     T_i and CSS/SS breakeven rates computed from actual demotions.
# Plus BENCH_index.json from bench/index_probe: per-probe ns of single
# vs batch-interleaved descent over both index structures, swept over
# batch size and interleave depth.
#
# Usage: scripts/bench_smoke.sh [output.json] [index-output.json]
#   default outputs: BENCH_smoke.json / BENCH_index.json in the repo root
#
# The sweep is wall-clock sensitive; run it on an otherwise idle host.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/BENCH_smoke.json}"
INDEX_OUT="${2:-$ROOT/BENCH_index.json}"
JOBS="${JOBS:-$(nproc)}"
DIR="$ROOT/build-bench"

cmake -S "$ROOT" -B "$DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$DIR" --target ycsb_comparison index_probe -j "$JOBS" >/dev/null

COSTPERF_SMOKE_JSON="$OUT" "$DIR/bench/ycsb_comparison"
echo "wrote $OUT"
COSTPERF_INDEX_JSON="$INDEX_OUT" "$DIR/bench/index_probe"
echo "wrote $INDEX_OUT"
