#!/usr/bin/env bash
# In-cache read-heavy smoke benchmark: builds the Release bench binary
# and runs the YCSB-C thread sweep ({1,2,4,8} threads, unbounded memory
# budget), emitting machine-readable per-thread-count results so
# successive PRs can diff the hot-path scaling trajectory.
#
# Usage: scripts/bench_smoke.sh [output.json]
#   default output: BENCH_smoke.json in the repo root
#
# The sweep is wall-clock sensitive; run it on an otherwise idle host.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/BENCH_smoke.json}"
JOBS="${JOBS:-$(nproc)}"
DIR="$ROOT/build-bench"

cmake -S "$ROOT" -B "$DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$DIR" --target ycsb_comparison -j "$JOBS" >/dev/null

COSTPERF_SMOKE_JSON="$OUT" "$DIR/bench/ycsb_comparison"
echo "wrote $OUT"
