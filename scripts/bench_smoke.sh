#!/usr/bin/env bash
# Smoke benchmark: builds the Release bench binary and runs two sweeps,
# emitting machine-readable results so successive PRs can diff them:
#   - "sweep": in-cache read-heavy YCSB-C over {1,2,4,8} threads
#     (unbounded budget) — the hot-path scaling trajectory, now with
#     p999 alongside p50/p99.
#   - "ss_sweep": a budget-bounded SS-heavy zipf mix in inline vs
#     background maintenance mode — tail latency and the maintenance
#     attribution counters (foreground_maintenance_ops is 0 when the
#     MaintenanceScheduler does the work).
#
# Usage: scripts/bench_smoke.sh [output.json]
#   default output: BENCH_smoke.json in the repo root
#
# The sweep is wall-clock sensitive; run it on an otherwise idle host.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/BENCH_smoke.json}"
JOBS="${JOBS:-$(nproc)}"
DIR="$ROOT/build-bench"

cmake -S "$ROOT" -B "$DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$DIR" --target ycsb_comparison -j "$JOBS" >/dev/null

COSTPERF_SMOKE_JSON="$OUT" "$DIR/bench/ycsb_comparison"
echo "wrote $OUT"
