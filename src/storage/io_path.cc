#include "storage/io_path.h"

#include <cstring>
#include <vector>

#include "common/clock.h"

namespace costperf::storage {

namespace {
// Sink defeating dead-code elimination of the burn loop. Thread-local:
// background maintenance workers burn I/O path work concurrently with
// foreground threads, and the sink's value is meaningless — only its
// liveness matters.
thread_local uint64_t g_burn_sink = 0;
}  // namespace

void BurnWork(uint32_t units) {
  // Each unit: a few dependent ALU ops (xorshift step). Dependent chain
  // prevents the compiler or CPU from collapsing the loop.
  uint64_t x = g_burn_sink | 0x9E3779B97F4A7C15ull;
  for (uint32_t i = 0; i < units; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x *= 0x2545F4914F6CDD1Dull;
  }
  g_burn_sink = x;
}

IoPathSimulator::IoPathSimulator(IoPathOptions options) : options_(options) {}

uint64_t IoPathSimulator::Execute(IoPathKind kind, char* transfer,
                                  size_t bytes) {
  uint64_t units = 0;
  switch (kind) {
    case IoPathKind::kUserLevel:
      units = options_.user_level_units;
      BurnWork(options_.user_level_units);
      break;
    case IoPathKind::kOsMediated:
      units = options_.os_mediated_units;
      BurnWork(options_.os_mediated_units);
      if (options_.os_extra_copy && transfer != nullptr && bytes > 0) {
        // Kernel <-> user buffer copy: one extra pass over the data.
        std::vector<char> kernel_buf(bytes);
        memcpy(kernel_buf.data(), transfer, bytes);
        memcpy(transfer, kernel_buf.data(), bytes);
        g_burn_sink =
            g_burn_sink + static_cast<unsigned char>(kernel_buf[bytes / 2]);
      }
      break;
  }
  return units;
}

double IoPathSimulator::MeasureNanosPerUnit() {
  constexpr uint32_t kProbeUnits = 2'000'000;
  const uint64_t start = ThreadCpuNanos();
  BurnWork(kProbeUnits);
  const uint64_t end = ThreadCpuNanos();
  return static_cast<double>(end - start) / kProbeUnits;
}

}  // namespace costperf::storage
