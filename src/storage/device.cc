#include "storage/device.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace costperf::storage {

SsdDevice::SsdDevice(SsdOptions options)
    : options_(options),
      clock_(options.clock ? options.clock : RealClock::Global()),
      path_(options.path_options),
      limiter_(clock_, options.max_iops) {}

SsdDevice::~SsdDevice() = default;

Status SsdDevice::ChargeIo(bool is_read, char* transfer, size_t bytes) {
  // 1. CPU execution cost of the I/O path (the paper's key SS-op cost).
  path_units_.fetch_add(path_.Execute(options_.io_path, transfer, bytes),
                        std::memory_order_relaxed);
  // 2. IOPS admission.
  uint64_t wait = limiter_.Acquire();
  if (wait > 0) {
    throttle_wait_nanos_.fetch_add(wait, std::memory_order_relaxed);
    if (options_.sleep_on_throttle) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
    }
  }
  // 3. Media service time (latency only, never CPU).
  service_nanos_.fetch_add(
      is_read ? options_.read_service_nanos : options_.write_service_nanos,
      std::memory_order_relaxed);
  return Status::Ok();
}

Status SsdDevice::Read(uint64_t offset, size_t len, char* dst) {
  if (offset + len > options_.capacity_bytes) {
    return Status::OutOfRange("read beyond device capacity");
  }
  if (IoFaultHook* hook = fault_hook_.load(std::memory_order_acquire)) {
    Status s = hook->OnRead(offset, len);
    if (!s.ok()) {
      injected_read_errors_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(len, std::memory_order_relaxed);

  {
    ReaderMutexLock lk(&mu_);
    size_t done = 0;
    while (done < len) {
      uint64_t pos = offset + done;
      uint64_t chunk_id = pos / kChunkBytes;
      uint64_t in_chunk = pos % kChunkBytes;
      size_t n = std::min<uint64_t>(len - done, kChunkBytes - in_chunk);
      // as_const: find() must bind to the const overload so the shared
      // (reader) capability suffices under -Wthread-safety.
      auto it = std::as_const(chunks_).find(chunk_id);
      if (it == chunks_.end()) {
        memset(dst + done, 0, n);
      } else {
        memcpy(dst + done, it->second->data.data() + in_chunk, n);
      }
      done += n;
    }
  }
  return ChargeIo(/*is_read=*/true, dst, len);
}

Status SsdDevice::Write(uint64_t offset, const Slice& data) {
  if (offset + data.size() > options_.capacity_bytes) {
    return Status::OutOfRange("write beyond device capacity");
  }
  // Default verdict: admit everything, no corruption, success.
  IoFaultHook::WriteOutcome verdict;
  if (IoFaultHook* hook = fault_hook_.load(std::memory_order_acquire)) {
    verdict = hook->OnWrite(offset, data.size());
  }
  const size_t admit = std::min(verdict.admit_bytes, data.size());
  if (!verdict.status.ok()) {
    injected_write_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  if (admit == 0 && !verdict.status.ok()) {
    // Fully rejected write: like the read path, nothing moved and nothing
    // is charged or counted.
    return verdict.status;
  }

  // Corrupted writes stage the payload so caller data stays untouched.
  Slice payload(data.data(), admit);
  std::string corrupted;
  if (!verdict.bit_flips.empty()) {
    corrupted.assign(data.data(), admit);
    for (const auto& [at, mask] : verdict.bit_flips) {
      if (at < admit) corrupted[at] = static_cast<char>(corrupted[at] ^ mask);
    }
    payload = Slice(corrupted);
  }

  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(admit, std::memory_order_relaxed);

  {
    WriterMutexLock lk(&mu_);
    size_t done = 0;
    while (done < payload.size()) {
      uint64_t pos = offset + done;
      uint64_t chunk_id = pos / kChunkBytes;
      uint64_t in_chunk = pos % kChunkBytes;
      size_t n =
          std::min<uint64_t>(payload.size() - done, kChunkBytes - in_chunk);
      auto& chunk = chunks_[chunk_id];
      if (chunk == nullptr) {
        chunk = std::make_unique<Chunk>();
        chunk->data.assign(kChunkBytes, 0);
        occupied_bytes_.fetch_add(kChunkBytes, std::memory_order_relaxed);
      }
      memcpy(chunk->data.data() + in_chunk, payload.data() + done, n);
      done += n;
    }
  }
  if (!verdict.status.ok()) {
    // Torn write: the prefix reached media but the device "died" before
    // acknowledging — no cost accounting for an I/O that never completed.
    return verdict.status;
  }
  // The path simulator may scribble through a copy on the OS path; pass a
  // scratch view so caller data is untouched.
  return ChargeIo(/*is_read=*/false, /*transfer=*/nullptr, data.size());
}

Status SsdDevice::Trim(uint64_t offset, uint64_t len) {
  if (offset + len > options_.capacity_bytes) {
    return Status::OutOfRange("trim beyond device capacity");
  }
  trims_.fetch_add(1, std::memory_order_relaxed);
  WriterMutexLock lk(&mu_);
  // Free only chunks fully covered by the trim.
  uint64_t first_full = (offset + kChunkBytes - 1) / kChunkBytes;
  uint64_t last_full = (offset + len) / kChunkBytes;  // exclusive
  for (uint64_t c = first_full; c < last_full; ++c) {
    auto it = chunks_.find(c);
    if (it != chunks_.end()) {
      chunks_.erase(it);
      occupied_bytes_.fetch_sub(kChunkBytes, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

DeviceStatsSnapshot SsdDevice::stats() const {
  DeviceStatsSnapshot s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.trims = trims_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.path_units = path_units_.load(std::memory_order_relaxed);
  s.throttle_wait_nanos = throttle_wait_nanos_.load(std::memory_order_relaxed);
  s.service_nanos = service_nanos_.load(std::memory_order_relaxed);
  s.injected_read_errors =
      injected_read_errors_.load(std::memory_order_relaxed);
  s.injected_write_errors =
      injected_write_errors_.load(std::memory_order_relaxed);
  s.occupied_bytes = occupied_bytes_.load(std::memory_order_relaxed);
  return s;
}

void SsdDevice::ResetStats() {
  reads_ = writes_ = trims_ = 0;
  bytes_read_ = bytes_written_ = 0;
  path_units_ = throttle_wait_nanos_ = service_nanos_ = 0;
  injected_read_errors_ = injected_write_errors_ = 0;
}

double SsdDevice::MeasureIops(uint64_t probe_ios) {
  // Drain tokens in a tight burst; the final token's admission delay tells
  // us how long the device needs to serve the batch, i.e. its IOPS rate.
  uint64_t last_wait = 0;
  const uint64_t start = clock_->NowNanos();
  for (uint64_t i = 0; i < probe_ios; ++i) {
    last_wait = limiter_.Acquire();
  }
  const uint64_t elapsed = clock_->NowNanos() - start;
  const uint64_t span = last_wait + elapsed;
  if (span == 0) {
    // Unthrottled device: report configured rate or "infinite".
    return options_.max_iops > 0 ? options_.max_iops : 1e9;
  }
  return static_cast<double>(probe_ios) /
         (static_cast<double>(span) * 1e-9);
}

}  // namespace costperf::storage
