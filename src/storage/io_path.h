#ifndef COSTPERF_STORAGE_IO_PATH_H_
#define COSTPERF_STORAGE_IO_PATH_H_

#include <cstddef>
#include <cstdint>

namespace costperf::storage {

// Which software path an I/O takes. The paper (§7.1.1) attributes a large
// part of secondary-storage operation cost to the *execution* of the I/O:
// with a conventional OS-mediated path the SS/MM execution ratio R was ~9x;
// moving the path to user level (SPDK) cut the I/O execution path by about
// a third and dropped R to ~5.8x.
enum class IoPathKind {
  // SPDK-style user-level I/O: polled completion, no protection-boundary
  // crossing, no extra buffer copy.
  kUserLevel,
  // Conventional OS path: syscall crossing, kernel buffer copy, thread
  // context switch on completion.
  kOsMediated,
};

// Tuning for the synthetic I/O execution path. Units are abstract "work
// units"; one unit is a short, fixed ALU sequence (see BurnWork). Defaults
// are calibrated so that a full SS operation (path work + page checksum +
// deserialization) costs ~5-6x an MM operation under kUserLevel and ~9x
// under kOsMediated, mirroring the paper's measured ratios.
struct IoPathOptions {
  // Issue + poll-completion work for the user-level path (~1.5us on a
  // typical core: SPDK submit + poll).
  uint32_t user_level_units = 500;
  // Syscall entry/exit, kernel dispatch, interrupt handling and the
  // thread context switch for the OS path (~7.5us).
  uint32_t os_mediated_units = 2500;
  // The OS path additionally copies the transfer through a kernel buffer.
  bool os_extra_copy = true;
};

// Burns a deterministic amount of CPU. Exposed so calibration code and
// tests can measure the per-unit cost on the host.
void BurnWork(uint32_t units);

// Simulates the CPU execution cost of one I/O: burns path work and (for
// the OS path) memcpy's the transfer once through a scratch buffer, then
// returns the number of work units consumed. The actual CPU nanoseconds
// show up in the caller's thread CPU time, which is what the paper's R
// measures.
class IoPathSimulator {
 public:
  explicit IoPathSimulator(IoPathOptions options = {});

  // `transfer` is the destination/source buffer (may be nullptr with
  // bytes==0 for pure-control operations like trim).
  uint64_t Execute(IoPathKind kind, char* transfer, size_t bytes);

  const IoPathOptions& options() const { return options_; }

  // Measures nanoseconds per work unit on this host by burning a probe
  // batch; used by calibration to translate units to expected CPU time.
  static double MeasureNanosPerUnit();

 private:
  IoPathOptions options_;
};

}  // namespace costperf::storage

#endif  // COSTPERF_STORAGE_IO_PATH_H_
