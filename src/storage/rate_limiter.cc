#include "storage/rate_limiter.h"

#include <algorithm>

namespace costperf::storage {

RateLimiter::RateLimiter(Clock* clock, double rate_per_sec, uint64_t burst)
    : clock_(clock),
      rate_per_sec_(rate_per_sec),
      burst_(burst == 0 ? 1 : burst) {
  interval_nanos_.store(
      rate_per_sec > 0 ? static_cast<uint64_t>(1e9 / rate_per_sec) : 0,
      std::memory_order_relaxed);
  // Start with a full bucket: the next token slot sits a full burst window
  // in the past, so the first `burst` acquires are admitted immediately.
  const uint64_t now = clock->NowNanos();
  const uint64_t window =
      (burst_ - 1) * interval_nanos_.load(std::memory_order_relaxed);
  next_slot_nanos_.store(now > window ? now - window : 0,
                         std::memory_order_relaxed);
}

void RateLimiter::set_rate_per_sec(double r) {
  rate_per_sec_.store(r, std::memory_order_relaxed);
  interval_nanos_.store(r > 0 ? static_cast<uint64_t>(1e9 / r) : 0,
                        std::memory_order_relaxed);
  // Discard any backlog accumulated under the old rate so the new rate
  // takes effect immediately.
  next_slot_nanos_.store(clock_->NowNanos(), std::memory_order_release);
}

uint64_t RateLimiter::Acquire() {
  const uint64_t interval = interval_nanos_.load(std::memory_order_relaxed);
  if (interval == 0) return 0;
  const uint64_t now = clock_->NowNanos();
  // The bucket holds at most `burst` tokens of credit, i.e. the next-token
  // slot can lag `now` by at most (burst-1) intervals.
  const uint64_t window = (burst_ - 1) * interval;
  const uint64_t floor = now > window ? now - window : 0;
  uint64_t slot = next_slot_nanos_.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t base = std::max(slot, floor);
    uint64_t new_slot = base + interval;
    if (next_slot_nanos_.compare_exchange_weak(slot, new_slot,
                                               std::memory_order_acq_rel)) {
      return base > now ? base - now : 0;
    }
  }
}

bool RateLimiter::TryAcquire() {
  const uint64_t interval = interval_nanos_.load(std::memory_order_relaxed);
  if (interval == 0) return true;
  const uint64_t now = clock_->NowNanos();
  const uint64_t window = (burst_ - 1) * interval;
  const uint64_t floor = now > window ? now - window : 0;
  uint64_t slot = next_slot_nanos_.load(std::memory_order_relaxed);
  for (;;) {
    if (slot > now) return false;
    uint64_t base = std::max(slot, floor);
    if (next_slot_nanos_.compare_exchange_weak(slot, base + interval,
                                               std::memory_order_acq_rel)) {
      return true;
    }
  }
}

}  // namespace costperf::storage
