#ifndef COSTPERF_STORAGE_DEVICE_H_
#define COSTPERF_STORAGE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/io_path.h"
#include "storage/rate_limiter.h"

namespace costperf::storage {

// Configuration for the simulated flash SSD.
//
// Substitution note (see DESIGN.md §2): the paper's experiments ran on a
// real Samsung SSD via SPDK. The cost analysis consumes only three device
// properties — IOPS capacity, CPU execution cost per I/O, and media
// latency — so the simulation reproduces exactly those, with the media
// itself held in RAM.
struct SsdOptions {
  uint64_t capacity_bytes = 4ull << 30;  // .5TB in the paper; scaled down
  // Max I/O operations per second the device admits (paper: 2e5; the drive
  // itself was 3e5-class). 0 disables the throttle.
  double max_iops = 200'000.0;
  // Media service times (typical flash: ~90us read). These contribute to
  // latency accounting, never to CPU cost.
  uint64_t read_service_nanos = 90'000;
  uint64_t write_service_nanos = 30'000;
  // Which CPU execution path each I/O charges (§7.1.1).
  IoPathKind io_path = IoPathKind::kUserLevel;
  IoPathOptions path_options;
  // When the throttle rejects-by-delay, optionally sleep the calling
  // thread for latency-faithful runs. CPU-cost benches leave this false:
  // the wait is accounted in stats but not slept, matching the paper's
  // "core execution time" measure which excludes I/O waiting.
  bool sleep_on_throttle = false;
  // Time source; defaults to RealClock::Global().
  Clock* clock = nullptr;
};

// Fault-injection hook consulted on every I/O when attached (see
// fault/fault_injector.h for the scriptable implementation). Implementations
// must be thread-safe: SsdDevice calls them concurrently from every I/O
// thread. The device itself pays a single atomic pointer load per I/O when
// no hook is attached.
class IoFaultHook {
 public:
  virtual ~IoFaultHook() = default;

  // Consulted before a read transfers data. A non-OK status fails the read:
  // no bytes move, no I/O is charged, and the status is returned verbatim.
  virtual Status OnRead(uint64_t offset, size_t len) = 0;

  // Verdict for one write. `admit_bytes` is how much of the payload reaches
  // media before `status` is returned — the torn-write model: a crash mid
  // write persists a prefix and the caller sees the error. `bit_flips` are
  // XOR masks applied to admitted bytes (offset relative to this write),
  // modelling media corruption of data the device claimed to accept.
  struct WriteOutcome {
    Status status = Status::Ok();
    size_t admit_bytes = ~size_t{0};  // clamped to the payload size
    std::vector<std::pair<size_t, uint8_t>> bit_flips;
  };
  virtual WriteOutcome OnWrite(uint64_t offset, size_t len) = 0;
};

// Monotonic device counters. Plain struct snapshot for reporting.
struct DeviceStatsSnapshot {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t trims = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t path_units = 0;            // CPU work units burned in I/O paths
  uint64_t throttle_wait_nanos = 0;   // admission delay accrued
  uint64_t service_nanos = 0;         // media busy time accrued
  uint64_t injected_read_errors = 0;
  uint64_t injected_write_errors = 0;
  uint64_t occupied_bytes = 0;        // physically allocated media
};

// Byte-addressable simulated flash device. Thread-safe. Storage is sparse:
// 1 MiB chunks allocated on first write, freed by Trim — so `occupied_
// bytes` tracks live media for storage-cost accounting.
class SsdDevice {
 public:
  explicit SsdDevice(SsdOptions options);
  ~SsdDevice();

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  // Reads len bytes at offset into dst. Charges one I/O: path CPU work,
  // one IOPS token, service time. Unwritten regions read as zero.
  Status Read(uint64_t offset, size_t len, char* dst);

  // Writes data at offset. Charges one I/O (LLAMA batches many pages per
  // write, so per-write cost amortizes exactly as in the paper).
  Status Write(uint64_t offset, const Slice& data);

  // Releases physical media in [offset, offset+len). Control-path only:
  // no IOPS token, no media service time.
  Status Trim(uint64_t offset, uint64_t len);

  DeviceStatsSnapshot stats() const;
  void ResetStats();

  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  const SsdOptions& options() const { return options_; }

  // Switches the I/O execution path at runtime (used by the Fig. 7 bench
  // to compare OS-mediated vs user-level on the same store).
  void set_io_path(IoPathKind kind) { options_.io_path = kind; }
  IoPathKind io_path() const { return options_.io_path; }

  // Attaches (or, with nullptr, detaches) a fault hook. The hook must
  // outlive every in-flight I/O issued after attachment; detach before
  // destroying it. Runtime-settable so tests arm faults against a live
  // device mid-workload.
  void set_fault_hook(IoFaultHook* hook) {
    fault_hook_.store(hook, std::memory_order_release);
  }
  IoFaultHook* fault_hook() const {
    return fault_hook_.load(std::memory_order_acquire);
  }

  // Observed IOPS capability of this device configuration, measured by
  // issuing a saturation burst (used by calibration).
  double MeasureIops(uint64_t probe_ios = 10'000);

 private:
  static constexpr uint64_t kChunkBytes = 1ull << 20;

  struct Chunk {
    std::vector<char> data;
  };

  // Charges the non-media costs of one I/O touching `bytes`.
  Status ChargeIo(bool is_read, char* transfer, size_t bytes);

  SsdOptions options_;
  Clock* clock_;
  IoPathSimulator path_;
  RateLimiter limiter_;

  mutable SharedMutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Chunk>> chunks_
      GUARDED_BY(mu_);

  // Counters (relaxed; they are statistics, not synchronization).
  std::atomic<uint64_t> reads_{0}, writes_{0}, trims_{0};
  std::atomic<uint64_t> bytes_read_{0}, bytes_written_{0};
  std::atomic<uint64_t> path_units_{0}, throttle_wait_nanos_{0};
  std::atomic<uint64_t> service_nanos_{0};
  std::atomic<uint64_t> injected_read_errors_{0}, injected_write_errors_{0};
  std::atomic<uint64_t> occupied_bytes_{0};

  // Single pointer load on the hot path; null when no faults are armed.
  std::atomic<IoFaultHook*> fault_hook_{nullptr};
};

}  // namespace costperf::storage

#endif  // COSTPERF_STORAGE_DEVICE_H_
