#ifndef COSTPERF_STORAGE_RATE_LIMITER_H_
#define COSTPERF_STORAGE_RATE_LIMITER_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace costperf::storage {

// Token-bucket rate limiter used to enforce the device's IOPS capacity.
// `Acquire` reserves one token and returns the number of nanoseconds the
// caller would have to wait for its I/O to be admitted (0 when the device
// has headroom). Callers decide whether to actually wait: a throughput
// bench that measures CPU cost only accounts the delay, while a
// latency-faithful run sleeps it off.
class RateLimiter {
 public:
  // rate_per_sec == 0 disables limiting. burst is the bucket depth.
  RateLimiter(Clock* clock, double rate_per_sec, uint64_t burst = 64);

  // Reserves one token; returns wait nanos until the token is usable.
  uint64_t Acquire();

  // Observed admission rate headroom: true if a token is available now.
  bool TryAcquire();

  double rate_per_sec() const {
    return rate_per_sec_.load(std::memory_order_relaxed);
  }
  void set_rate_per_sec(double r);

 private:
  Clock* clock_;
  // Rate is reconfigurable at runtime (calibration benches retune it while
  // worker threads acquire), so both derived values are atomics rather
  // than plain doubles a concurrent set_rate_per_sec would race on.
  std::atomic<double> rate_per_sec_;
  std::atomic<uint64_t> interval_nanos_;  // nanoseconds per token
  uint64_t burst_;
  // Virtual time of the next free token slot.
  std::atomic<uint64_t> next_slot_nanos_;
};

}  // namespace costperf::storage

#endif  // COSTPERF_STORAGE_RATE_LIMITER_H_
