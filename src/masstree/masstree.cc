#include "masstree/masstree.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "common/racy.h"
#include "common/simd.h"

namespace costperf::masstree {

// ---------------------------------------------------------------------
// Node structures
// ---------------------------------------------------------------------

struct MassTree::Border {
  OptimisticVersion version;
  int n = 0;
  uint64_t slices[kLeafCap];
  uint8_t lens[kLeafCap];  // 0..8 terminal; kLinkLen routes to a Layer*
  // std::string* (terminal) or Layer* (link). Atomic: optimistic
  // readers snapshot slots without the latch; the release store on
  // overwrite publishes the pointee before the pointer.
  std::atomic<void*> payloads[kLeafCap];
  Border* next = nullptr;
};

struct MassTree::Interior {
  OptimisticVersion version;
  int n = 0;
  int level = 1;  // 1 => children are Borders
  uint64_t keys[kInteriorCap];
  void* children[kInteriorCap + 1];
};

struct MassTree::Layer {
  SpinLatch write_latch;
  std::atomic<void*> root{nullptr};
  std::atomic<int> root_level{0};  // 0 => root is a Border
};

namespace {

// Composite (slice, len) ordering used within borders.
inline bool EntryLess(uint64_t s1, uint8_t l1, uint64_t s2, uint8_t l2) {
  return s1 < s2 || (s1 == s2 && l1 < l2);
}

// SIMD search over slot arrays a latch-holding writer may be shifting in
// place; the surrounding version check discards torn results. Under TSan
// the slots are snapshotted with relaxed loads first (vector loads can't
// carry atomic semantics); other builds search the array directly.
inline size_t RacyUpperBoundU64(const uint64_t* a, size_t n, uint64_t key) {
#if COSTPERF_TSAN
  uint64_t snap[16];  // callers clamp n to the 15-slot node caps
  if (n > 16) n = 16;
  for (size_t i = 0; i < n; ++i) snap[i] = RacyLoad(&a[i]);
  return simd::UpperBoundU64(snap, n, key);
#else
  return simd::UpperBoundU64(a, n, key);
#endif
}

inline uint32_t RacyMatchEqU64(const uint64_t* a, size_t n, uint64_t key) {
#if COSTPERF_TSAN
  uint64_t snap[16];
  if (n > 16) n = 16;
  for (size_t i = 0; i < n; ++i) snap[i] = RacyLoad(&a[i]);
  return simd::MatchEqU64(snap, n, key);
#else
  return simd::MatchEqU64(a, n, key);
#endif
}

}  // namespace

// ---------------------------------------------------------------------
// Construction / destruction
// ---------------------------------------------------------------------

MassTree::MassTree()
    : count_(0) {
  root_layer_ = NewLayer();
}

MassTree::Layer* MassTree::NewLayer() {
  auto* layer = new Layer();
  auto* border = new Border();
  layer->root.store(border, std::memory_order_release);
  layer->root_level.store(0, std::memory_order_release);
  s_layers_.fetch_add(1, std::memory_order_relaxed);
  return layer;
}

namespace {

template <typename BorderT, typename InteriorT>
void FreeSubtree(void* node, int level,
                 const std::function<void(BorderT*)>& free_border) {
  if (level == 0) {
    free_border(static_cast<BorderT*>(node));
    return;
  }
  auto* in = static_cast<InteriorT*>(node);
  for (int i = 0; i <= in->n; ++i) {
    FreeSubtree<BorderT, InteriorT>(in->children[i], level - 1, free_border);
  }
  delete in;
}

}  // namespace

void MassTree::FreeLayerTree(Layer* layer) {
  std::function<void(Border*)> free_border = [&](Border* b) {
    for (int i = 0; i < b->n; ++i) {
      if (b->lens[i] == kLinkLen) {
        FreeLayerTree(static_cast<Layer*>(
            b->payloads[i].load(std::memory_order_relaxed)));
      } else {
        delete static_cast<std::string*>(
            b->payloads[i].load(std::memory_order_relaxed));
      }
    }
    delete b;
  };
  FreeSubtree<Border, Interior>(layer->root.load(std::memory_order_acquire),
                                layer->root_level.load(
                                    std::memory_order_acquire),
                                free_border);
  delete layer;
}

MassTree::~MassTree() {
  epochs_.ReclaimAll();
  FreeLayerTree(root_layer_);
}

// ---------------------------------------------------------------------
// Slices
// ---------------------------------------------------------------------

uint64_t MassTree::MakeSlice(const Slice& key, uint8_t* effective_len) {
  unsigned char buf[8] = {0};
  size_t take = key.size() < 8 ? key.size() : 8;
  memcpy(buf, key.data(), take);
  uint64_t slice = 0;
  for (int i = 0; i < 8; ++i) slice = (slice << 8) | buf[i];  // big-endian
  *effective_len =
      key.size() > 8 ? kLinkLen : static_cast<uint8_t>(key.size());
  return slice;
}

// ---------------------------------------------------------------------
// Reads (optimistic)
// ---------------------------------------------------------------------

MassTree::Border* MassTree::FindBorder(const Layer* layer,
                                       uint64_t slice) const {
  epochs_.AssertActive();
  for (;;) {
    void* root = layer->root.load(std::memory_order_acquire);
    int level = layer->root_level.load(std::memory_order_acquire);
    if (layer->root.load(std::memory_order_acquire) != root) continue;
    void* node = root;
    bool restart = false;
    while (level > 0) {
      auto* in = static_cast<Interior*>(node);
      uint64_t v = in->version.StableSnapshot();
      // Clamp the snapshot of n: a torn read racing a split must not
      // take the SIMD search (or children[]) out of bounds — the
      // version check below discards the result either way.
      int n = RacyLoad(&in->n);
      if (n < 0) n = 0;
      if (n > kInteriorCap) n = kInteriorCap;
      // Child index = count of keys <= slice, one vector compare wide.
      const size_t idx = RacyUpperBoundU64(
          in->keys, static_cast<size_t>(n), slice);
      void* child = RacyLoad(&in->children[idx]);
      if (in->version.Changed(v)) {
        s_retries_.fetch_add(1, std::memory_order_relaxed);
        restart = true;
        break;
      }
      node = child;
      simd::PrefetchRead(child);
      --level;
    }
    if (restart) continue;
    auto* b = static_cast<Border*>(node);
    // B-link walk: a concurrent split may have moved the slice range
    // right before the parent (or a stale root) reflected it. A border's
    // first slice is its immutable lower bound, so this read is safe.
    int hops = 0;
    Border* nx = RacyLoad(&b->next);
    while (nx != nullptr && RacyLoad(&nx->n) > 0 &&
           slice >= RacyLoad(&nx->slices[0]) && hops++ < 1024) {
      b = nx;
      nx = RacyLoad(&b->next);
    }
    return b;
  }
}

Result<std::string> MassTree::GetInLayer(const Layer* layer,
                                         const Slice& key) const {
  uint8_t len = 0;
  uint64_t slice = MakeSlice(key, &len);
  for (int attempt = 0; attempt < 1 << 20; ++attempt) {
    Border* b = FindBorder(layer, slice);
    uint64_t v = b->version.StableSnapshot();
    // Snapshot the matching entry: one vector equality over the slice
    // array, then the (rare) same-slice candidates checked by length.
    void* payload = nullptr;
    bool found = false;
    int n = RacyLoad(&b->n);
    if (n < 0) n = 0;
    if (n > kLeafCap) n = kLeafCap;
    uint32_t m = RacyMatchEqU64(b->slices, static_cast<size_t>(n), slice);
    while (m != 0) {
      const int i = std::countr_zero(m);
      if (RacyLoad(&b->lens[i]) == len) {
        payload = b->payloads[i].load(std::memory_order_acquire);
        found = true;
        break;
      }
      m &= m - 1;
    }
    std::string value;
    const Layer* sublayer = nullptr;
    if (found) {
      if (len == kLinkLen) {
        sublayer = static_cast<Layer*>(payload);
      } else {
        value = *static_cast<std::string*>(payload);
      }
    }
    if (b->version.Changed(v)) {
      s_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!found) return Status::NotFound();
    if (sublayer != nullptr) {
      Slice suffix(key.data() + 8, key.size() - 8);
      return GetInLayer(sublayer, suffix);
    }
    return value;
  }
  return Status::Internal("Get retry budget exhausted");
}

Result<std::string> MassTree::Get(const Slice& key) const {
  s_gets_.fetch_add(1, std::memory_order_relaxed);
  EpochGuard guard(&epochs_);
  return GetInLayer(root_layer_, key);
}

// ---------------------------------------------------------------------
// Batched lookups (AMAC interleaving)
// ---------------------------------------------------------------------

// One lane of the batch machine. A probe advances one descent step per
// quantum — kRoot resolves the layer root, kInterior takes one
// version-validated level, kBorder takes one B-link hop, kRead does the
// copy-then-validate entry read — prefetching the node it will
// dereference next before yielding. Sublayer links re-enter kRoot with
// the 8-byte-advanced suffix, exactly like GetInLayer's recursion.
struct MassTree::LookupProbe {
  enum class St : uint8_t { kRoot, kInterior, kBorder, kRead, kDone };

  Slice key;  // suffix within the current layer
  std::string* value = nullptr;
  Status* status = nullptr;
  const Layer* layer = nullptr;
  uint64_t slice = 0;
  uint8_t len = 0;
  St st = St::kRoot;
  void* node = nullptr;
  int level = 0;
  int hops = 0;      // B-link hops in the current border walk
  int attempts = 0;  // kRoot entries; same 1<<20 budget as GetInLayer

  void EnterLayer(const Layer* l, Slice suffix) {
    layer = l;
    key = suffix;
    slice = MakeSlice(suffix, &len);
    st = St::kRoot;
  }
};

void MassTree::StepLookup(LookupProbe* p) const {
  auto finish = [p](Status s) {
    *p->status = s;
    p->st = LookupProbe::St::kDone;
  };

  switch (p->st) {
    case LookupProbe::St::kRoot: {
      if (++p->attempts >= (1 << 20)) {
        finish(Status::Internal("Get retry budget exhausted"));
        return;
      }
      void* root = p->layer->root.load(std::memory_order_acquire);
      const int level =
          p->layer->root_level.load(std::memory_order_acquire);
      if (p->layer->root.load(std::memory_order_acquire) != root) {
        return;  // root moved between the two loads; stay in kRoot
      }
      p->node = root;
      p->level = level;
      p->hops = 0;
      simd::PrefetchRead(root);
      p->st = level > 0 ? LookupProbe::St::kInterior
                        : LookupProbe::St::kBorder;
      return;
    }

    case LookupProbe::St::kInterior: {
      auto* in = static_cast<Interior*>(p->node);
      const uint64_t v = in->version.StableSnapshot();
      int n = RacyLoad(&in->n);
      if (n < 0) n = 0;
      if (n > kInteriorCap) n = kInteriorCap;
      const size_t idx = RacyUpperBoundU64(
          in->keys, static_cast<size_t>(n), p->slice);
      void* child = RacyLoad(&in->children[idx]);
      if (in->version.Changed(v)) {
        s_retries_.fetch_add(1, std::memory_order_relaxed);
        p->st = LookupProbe::St::kRoot;  // restart this layer's descent
        return;
      }
      p->node = child;
      --p->level;
      simd::PrefetchRead(child);
      p->st = p->level > 0 ? LookupProbe::St::kInterior
                           : LookupProbe::St::kBorder;
      return;
    }

    case LookupProbe::St::kBorder: {
      // One B-link hop per quantum: a concurrent split may have moved
      // the slice range right before the parent reflected it.
      auto* b = static_cast<Border*>(p->node);
      Border* nx = RacyLoad(&b->next);
      if (nx != nullptr && RacyLoad(&nx->n) > 0 &&
          p->slice >= RacyLoad(&nx->slices[0]) && p->hops++ < 1024) {
        p->node = nx;
        simd::PrefetchRead(&nx->payloads[0]);
        return;  // stay in kBorder
      }
      p->st = LookupProbe::St::kRead;
      return;
    }

    case LookupProbe::St::kRead: {
      auto* b = static_cast<Border*>(p->node);
      const uint64_t v = b->version.StableSnapshot();
      void* payload = nullptr;
      bool found = false;
      int n = RacyLoad(&b->n);
      if (n < 0) n = 0;
      if (n > kLeafCap) n = kLeafCap;
      uint32_t m = RacyMatchEqU64(b->slices, static_cast<size_t>(n),
                                  p->slice);
      while (m != 0) {
        const int i = std::countr_zero(m);
        if (RacyLoad(&b->lens[i]) == p->len) {
          payload = b->payloads[i].load(std::memory_order_acquire);
          found = true;
          break;
        }
        m &= m - 1;
      }
      const Layer* sublayer = nullptr;
      if (found) {
        if (p->len == kLinkLen) {
          sublayer = static_cast<const Layer*>(payload);
        } else {
          // Copy before the version check (the payload string is
          // epoch-retired, never freed under us) so a racing overwrite
          // is caught by Changed and retried, same as GetInLayer.
          *p->value = *static_cast<std::string*>(payload);
        }
      }
      if (b->version.Changed(v)) {
        s_retries_.fetch_add(1, std::memory_order_relaxed);
        p->st = LookupProbe::St::kRoot;
        return;
      }
      if (!found) {
        finish(Status::NotFound());
        return;
      }
      if (sublayer != nullptr) {
        simd::PrefetchRead(sublayer);
        p->EnterLayer(sublayer,
                      Slice(p->key.data() + 8, p->key.size() - 8));
        return;
      }
      finish(Status::Ok());
      return;
    }

    case LookupProbe::St::kDone:
      return;
  }
}

void MassTree::LookupBatch(const LookupOp* ops, size_t count,
                           size_t interleave) const {
  if (count == 0) return;
  if (interleave == 0) interleave = 1;
  s_gets_.fetch_add(count, std::memory_order_relaxed);
  // Lane state reused across calls (no per-call allocation once warm).
  thread_local std::vector<LookupProbe> lanes;
  if (lanes.size() < interleave) lanes.resize(interleave);

  for (size_t base = 0; base < count; base += interleave) {
    const size_t n = std::min<size_t>(interleave, count - base);
    // One guard per interleave group: probes hold node pointers across
    // quanta (the guard blocks reclamation) and the epoch reservation
    // cost is amortized over the group.
    EpochGuard guard(&epochs_);
    for (size_t i = 0; i < n; ++i) {
      LookupProbe& p = lanes[i];
      p.value = ops[base + i].value;
      p.status = ops[base + i].status;
      p.attempts = 0;
      p.EnterLayer(root_layer_, ops[base + i].key);
    }
    size_t live = n;
    while (live > 0) {
      for (size_t i = 0; i < n; ++i) {
        LookupProbe& p = lanes[i];
        if (p.st == LookupProbe::St::kDone) continue;
        StepLookup(&p);
        if (p.st == LookupProbe::St::kDone) --live;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Writes (layer latch + version marks for readers)
// ---------------------------------------------------------------------

MassTree::Border* MassTree::FindBorderLocked(
    Layer* layer, uint64_t slice, std::vector<Interior*>* path) const {
  path->clear();
  void* node = layer->root.load(std::memory_order_acquire);
  int level = layer->root_level.load(std::memory_order_acquire);
  while (level > 0) {
    auto* in = static_cast<Interior*>(node);
    path->push_back(in);
    int idx = 0;
    while (idx < in->n && slice >= in->keys[idx]) ++idx;
    node = in->children[idx];
    --level;
  }
  return static_cast<Border*>(node);
}

void MassTree::InsertIntoParent(Layer* layer, std::vector<Interior*>* path,
                                void* left, uint64_t sep, void* right,
                                int level) {
  if (path->empty()) {
    // left was the root: grow.
    auto* new_root = new Interior();
    new_root->level = level + 1;
    new_root->n = 1;
    new_root->keys[0] = sep;
    new_root->children[0] = left;
    new_root->children[1] = right;
    layer->root.store(new_root, std::memory_order_release);
    layer->root_level.store(level + 1, std::memory_order_release);
    return;
  }
  Interior* parent = path->back();
  path->pop_back();

  if (parent->n < kInteriorCap) {
    parent->version.Lock();
    parent->version.MarkInserting();
    // RacyStore on every slot mutation: optimistic readers walk this
    // node concurrently and rely on the version recheck, not the latch.
    int idx = 0;
    while (idx < parent->n && parent->keys[idx] < sep) ++idx;
    for (int i = parent->n; i > idx; --i) {
      RacyStore(&parent->keys[i], parent->keys[i - 1]);
      RacyStore(&parent->children[i + 1], parent->children[i]);
    }
    RacyStore(&parent->keys[idx], sep);
    RacyStore(&parent->children[idx + 1], right);
    RacyStore(&parent->n, parent->n + 1);
    parent->version.Unlock();
    return;
  }

  // Split the parent. Build the full sorted sequence conceptually, then
  // divide around the median.
  s_interior_splits_.fetch_add(1, std::memory_order_relaxed);
  uint64_t all_keys[kInteriorCap + 1];
  void* all_children[kInteriorCap + 2];
  int idx = 0;
  while (idx < parent->n && parent->keys[idx] < sep) ++idx;
  for (int i = 0; i < idx; ++i) all_keys[i] = parent->keys[i];
  all_keys[idx] = sep;
  for (int i = idx; i < parent->n; ++i) all_keys[i + 1] = parent->keys[i];
  for (int i = 0; i <= idx; ++i) all_children[i] = parent->children[i];
  all_children[idx + 1] = right;
  for (int i = idx + 1; i <= parent->n; ++i) {
    all_children[i + 1] = parent->children[i];
  }
  const int total_keys = parent->n + 1;
  const int mid = total_keys / 2;
  const uint64_t up_key = all_keys[mid];

  auto* right_in = new Interior();
  right_in->level = parent->level;
  right_in->n = total_keys - mid - 1;
  for (int i = 0; i < right_in->n; ++i) {
    right_in->keys[i] = all_keys[mid + 1 + i];
  }
  for (int i = 0; i <= right_in->n; ++i) {
    right_in->children[i] = all_children[mid + 1 + i];
  }

  parent->version.Lock();
  parent->version.MarkSplitting();
  RacyStore(&parent->n, mid);
  for (int i = 0; i < mid; ++i) RacyStore(&parent->keys[i], all_keys[i]);
  for (int i = 0; i <= mid; ++i) {
    RacyStore(&parent->children[i], all_children[i]);
  }
  parent->version.Unlock();

  InsertIntoParent(layer, path, parent, up_key, right_in, parent->level);
}

void MassTree::InsertIntoBorder(Layer* layer, Border* b,
                                std::vector<Interior*>* path, uint64_t slice,
                                uint8_t len, void* payload) {
  if (b->n < kLeafCap) {
    b->version.Lock();
    b->version.MarkInserting();
    // RacyStore on slot mutations: optimistic readers snapshot these
    // fields without the latch and validate via the version recheck.
    int idx = 0;
    while (idx < b->n && EntryLess(b->slices[idx], b->lens[idx], slice, len)) {
      ++idx;
    }
    for (int i = b->n; i > idx; --i) {
      RacyStore(&b->slices[i], b->slices[i - 1]);
      RacyStore(&b->lens[i], b->lens[i - 1]);
      b->payloads[i].store(
          b->payloads[i - 1].load(std::memory_order_relaxed),
          std::memory_order_release);
    }
    RacyStore(&b->slices[idx], slice);
    RacyStore(&b->lens[idx], len);
    b->payloads[idx].store(payload, std::memory_order_release);
    RacyStore(&b->n, b->n + 1);
    b->version.Unlock();
    return;
  }

  // Border split. Keep same-slice groups intact: pick a boundary index
  // where the slice changes, closest to the middle. A boundary always
  // exists because one slice contributes at most 10 variants (< cap).
  s_border_splits_.fetch_add(1, std::memory_order_relaxed);
  int split = -1;
  for (int d = 0; d < kLeafCap; ++d) {
    int lo = kLeafCap / 2 - d, hi = kLeafCap / 2 + d;
    if (lo >= 1 && b->slices[lo] != b->slices[lo - 1]) {
      split = lo;
      break;
    }
    if (hi >= 1 && hi < b->n && b->slices[hi] != b->slices[hi - 1]) {
      split = hi;
      break;
    }
  }
  assert(split > 0);

  auto* right = new Border();
  right->n = b->n - split;
  for (int i = 0; i < right->n; ++i) {
    right->slices[i] = b->slices[split + i];
    right->lens[i] = b->lens[split + i];
    right->payloads[i].store(
        b->payloads[split + i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  right->next = b->next;

  const uint64_t sep = right->slices[0];

  b->version.Lock();
  b->version.MarkSplitting();
  RacyStore(&b->n, split);
  RacyStore(&b->next, right);
  b->version.Unlock();

  std::vector<Interior*> parent_path(*path);
  InsertIntoParent(layer, &parent_path, b, sep, right, 0);

  // Route the pending entry into the correct half and insert (both halves
  // now have room).
  Border* target = slice < sep ? b : right;
  // Path is only used for further splits, which cannot happen now.
  std::vector<Interior*> empty_path;
  InsertIntoBorder(layer, target, &empty_path, slice, len, payload);
}

Status MassTree::PutInLayer(Layer* layer, const Slice& key,
                            const Slice& value) {
  epochs_.AssertActive();
  uint8_t len = 0;
  uint64_t slice = MakeSlice(key, &len);

  SpinLatchGuard latch(&layer->write_latch);
  std::vector<Interior*> path;
  Border* b = FindBorderLocked(layer, slice, &path);

  for (int i = 0; i < b->n; ++i) {
    if (b->slices[i] == slice && b->lens[i] == len) {
      if (len == kLinkLen) {
        // Descend into the sublayer (release this layer's latch first —
        // layer latches nest strictly downward so ordering is safe, but
        // holding it isn't needed once the link is stable).
        auto* sub = static_cast<Layer*>(
            b->payloads[i].load(std::memory_order_relaxed));
        Slice suffix(key.data() + 8, key.size() - 8);
        return PutInLayer(sub, suffix, value);
      }
      // Terminal overwrite: swap the value pointer, retire the old one.
      auto* fresh = new std::string(value.ToString());
      b->version.Lock();
      b->version.MarkInserting();
      auto* old = static_cast<std::string*>(
          b->payloads[i].load(std::memory_order_relaxed));
      b->payloads[i].store(fresh, std::memory_order_release);
      b->version.Unlock();
      epochs_.Retire([old] { delete old; });
      return Status::Ok();
    }
  }

  // No exact entry.
  if (len == kLinkLen) {
    // Create the sublayer, link it, then insert the suffix there.
    Layer* sub = NewLayer();
    InsertIntoBorder(layer, b, &path, slice, kLinkLen, sub);
    Slice suffix(key.data() + 8, key.size() - 8);
    Status s = PutInLayer(sub, suffix, value);
    if (s.ok()) return s;
    return s;
  }
  auto* fresh = new std::string(value.ToString());
  InsertIntoBorder(layer, b, &path, slice, len, fresh);
  count_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status MassTree::Put(const Slice& key, const Slice& value) {
  s_puts_.fetch_add(1, std::memory_order_relaxed);
  EpochGuard guard(&epochs_);
  return PutInLayer(root_layer_, key, value);
}

Status MassTree::DeleteInLayer(Layer* layer, const Slice& key) {
  uint8_t len = 0;
  uint64_t slice = MakeSlice(key, &len);

  SpinLatchGuard latch(&layer->write_latch);
  std::vector<Interior*> path;
  Border* b = FindBorderLocked(layer, slice, &path);
  for (int i = 0; i < b->n; ++i) {
    if (b->slices[i] == slice && b->lens[i] == len) {
      if (len == kLinkLen) {
        auto* sub = static_cast<Layer*>(
            b->payloads[i].load(std::memory_order_relaxed));
        Slice suffix(key.data() + 8, key.size() - 8);
        return DeleteInLayer(sub, suffix);
      }
      auto* old = static_cast<std::string*>(
          b->payloads[i].load(std::memory_order_relaxed));
      b->version.Lock();
      b->version.MarkInserting();
      for (int j = i; j < b->n - 1; ++j) {
        RacyStore(&b->slices[j], b->slices[j + 1]);
        RacyStore(&b->lens[j], b->lens[j + 1]);
        b->payloads[j].store(
            b->payloads[j + 1].load(std::memory_order_relaxed),
            std::memory_order_release);
      }
      RacyStore(&b->n, b->n - 1);
      b->version.Unlock();
      epochs_.Retire([old] { delete old; });
      count_.fetch_sub(1, std::memory_order_acq_rel);
      return Status::Ok();
    }
  }
  return Status::NotFound();
}

Status MassTree::Delete(const Slice& key) {
  s_deletes_.fetch_add(1, std::memory_order_relaxed);
  EpochGuard guard(&epochs_);
  return DeleteInLayer(root_layer_, key);
}

// ---------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------

namespace {

// Reconstructs the key bytes an entry contributes at this layer.
std::string SliceBytes(uint64_t slice, int len) {
  std::string out;
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>((slice >> (8 * (7 - i))) & 0xFF));
  }
  return out;
}

}  // namespace

bool MassTree::ScanLayer(
    const Layer* layer, const std::string& layer_prefix,
    const std::string& start_suffix, const Slice& global_end, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) const {
  uint8_t start_len = 0;
  uint64_t start_slice = MakeSlice(Slice(start_suffix), &start_len);

  Border* b = FindBorder(layer, start_slice);
  while (b != nullptr) {
    // Optimistically snapshot the border.
    uint64_t v = b->version.StableSnapshot();
    int n = RacyLoad(&b->n);
    uint64_t slices[kLeafCap];
    uint8_t lens[kLeafCap];
    void* payloads[kLeafCap];
    Border* next = RacyLoad(&b->next);
    for (int i = 0; i < n && i < kLeafCap; ++i) {
      slices[i] = RacyLoad(&b->slices[i]);
      lens[i] = RacyLoad(&b->lens[i]);
      payloads[i] = b->payloads[i].load(std::memory_order_acquire);
    }
    if (b->version.Changed(v)) {
      s_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;  // retry the same border
    }

    for (int i = 0; i < n; ++i) {
      // Skip entries before the start point.
      if (EntryLess(slices[i], lens[i], start_slice, start_len)) continue;
      if (lens[i] == kLinkLen) {
        auto* sub = static_cast<Layer*>(payloads[i]);
        std::string sub_prefix = layer_prefix + SliceBytes(slices[i], 8);
        std::string sub_start;
        if (slices[i] == start_slice && start_suffix.size() > 8) {
          sub_start = start_suffix.substr(8);
        }
        if (!ScanLayer(sub, sub_prefix, sub_start, global_end, limit, out)) {
          return false;
        }
      } else {
        std::string key = layer_prefix + SliceBytes(slices[i], lens[i]);
        if (Slice(key).compare(Slice(start_suffix.size() <= 8
                                         ? layer_prefix + start_suffix
                                         : key)) < 0) {
          continue;
        }
        if (!global_end.empty() && Slice(key).compare(global_end) >= 0) {
          return false;
        }
        out->emplace_back(std::move(key),
                          *static_cast<std::string*>(payloads[i]));
        if (out->size() >= limit) return false;
      }
    }
    b = next;
    // After the first border, everything qualifies.
    start_slice = 0;
    start_len = 0;
  }
  return true;
}

Status MassTree::Scan(const Slice& start, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out,
                      const Slice& end) const {
  s_scans_.fetch_add(1, std::memory_order_relaxed);
  out->clear();
  if (limit == 0) return Status::Ok();
  EpochGuard guard(&epochs_);
  ScanLayer(root_layer_, "", start.ToString(), end, limit, out);
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

uint64_t MassTree::MemoryFootprintBytes() const {
  // Walk the whole trie. Not concurrency-safe; call at a quiescent point
  // (measurement harnesses do).
  //
  // Each node, layer, and value is an individual heap allocation; charge
  // the allocator's per-chunk overhead (header + size-class rounding),
  // which is a real part of MassTree's memory expansion relative to the
  // Bw-tree's packed pages.
  constexpr uint64_t kAllocOverhead = 32;
  uint64_t total = sizeof(MassTree);
  std::function<void(const Layer*)> walk_layer = [&](const Layer* layer) {
    total += sizeof(Layer) + kAllocOverhead;
    std::function<void(const void*, int)> walk = [&](const void* node,
                                                     int level) {
      if (level > 0) {
        const auto* in = static_cast<const Interior*>(node);
        total += sizeof(Interior) + kAllocOverhead;
        for (int i = 0; i <= in->n; ++i) walk(in->children[i], level - 1);
        return;
      }
      const auto* b = static_cast<const Border*>(node);
      total += sizeof(Border) + kAllocOverhead;
      for (int i = 0; i < b->n; ++i) {
        if (b->lens[i] == kLinkLen) {
          walk_layer(static_cast<const Layer*>(
              b->payloads[i].load(std::memory_order_relaxed)));
        } else {
          const auto* s = static_cast<const std::string*>(
              b->payloads[i].load(std::memory_order_relaxed));
          total += sizeof(std::string) + kAllocOverhead +
                   (s->capacity() > 15 ? s->capacity() + kAllocOverhead : 0);
        }
      }
    };
    walk(layer->root.load(std::memory_order_acquire),
         layer->root_level.load(std::memory_order_acquire));
  };
  walk_layer(root_layer_);
  return total;
}

MassTree::Stats MassTree::stats() const {
  Stats s;
  s.puts = s_puts_.load(std::memory_order_relaxed);
  s.gets = s_gets_.load(std::memory_order_relaxed);
  s.deletes = s_deletes_.load(std::memory_order_relaxed);
  s.scans = s_scans_.load(std::memory_order_relaxed);
  s.read_retries = s_retries_.load(std::memory_order_relaxed);
  s.border_splits = s_border_splits_.load(std::memory_order_relaxed);
  s.interior_splits = s_interior_splits_.load(std::memory_order_relaxed);
  s.layers_created = s_layers_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace costperf::masstree
