#ifndef COSTPERF_MASSTREE_MASSTREE_H_
#define COSTPERF_MASSTREE_MASSTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/batch_op.h"
#include "common/epoch.h"
#include "common/latch.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace costperf::masstree {

// From-scratch reimplementation of MassTree (Mao, Kohler, Morris,
// EuroSys'12): a trie of B+-trees. Each layer indexes 8 bytes of key
// ("key slice", big-endian so slice order == lexicographic order); keys
// longer than the slice continue in a nested layer reached through a link
// entry. Border (leaf) nodes hold up to 15 entries keyed by
// (slice, effective length), where length 0..8 terminates a key in this
// layer and the link pseudo-length 9 routes longer keys downward.
//
// Concurrency model: readers are latch-free — they snapshot per-node
// optimistic versions (MassTree's technique) and retry on interference.
// Writers serialize per layer on a spin latch; nested layers are
// independent, so writes to different subtrees proceed in parallel. (The
// original fine-grained hand-over-hand writer locking is out of scope;
// the paper's P_x measurement is read-side.)
//
// This is the paper's main-memory comparison system: all data always in
// DRAM, pointer-linked fixed-fanout nodes — faster per operation than the
// Bw-tree but with a larger memory footprint (the M_x of Eq. 7).
//
// Epoch discipline mirrors BwTree: public ops take their own EpochGuard
// on epochs_; the per-layer descent/mutation helpers REQUIRES_EPOCH —
// they dereference nodes a concurrent split may have retired. ~MassTree
// and FreeLayerTree run single-threaded by contract.
class MassTree {
 public:
  MassTree();
  ~MassTree();

  MassTree(const MassTree&) = delete;
  MassTree& operator=(const MassTree&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Result<std::string> Get(const Slice& key) const;
  Status Delete(const Slice& key);

  // One probe of a batched lookup: the stack-wide shared op type (see
  // common/batch_op.h), so KvStore-layer callers pass their op arrays
  // down without translation. *value is meaningful only when *status
  // is Ok.
  using LookupOp = ::costperf::BatchGetOp;

  // Batched point lookups: up to `interleave` probes run as an
  // AMAC-style state machine, each advancing one descent step (root
  // resolve, one interior level, one B-link hop, version-validated
  // border read) and prefetching the node it touches next before
  // yielding — so a group's DRAM misses overlap instead of
  // serializing. Results match per-key Get exactly; one EpochGuard
  // covers each interleave group.
  void LookupBatch(const LookupOp* ops, size_t count,
                   size_t interleave = 8) const;

  // Ordered scan: up to `limit` records with key >= start (and < end when
  // end is non-empty).
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out,
              const Slice& end = Slice()) const;

  uint64_t size() const { return count_.load(std::memory_order_acquire); }

  // Total bytes of nodes + values + layer objects: the measured footprint
  // that the paper's M_x compares against the Bw-tree's.
  uint64_t MemoryFootprintBytes() const;

  size_t ReclaimMemory() { return epochs_.TryReclaim(); }

  struct Stats {
    uint64_t puts = 0, gets = 0, deletes = 0, scans = 0;
    uint64_t read_retries = 0;   // optimistic validation failures
    uint64_t border_splits = 0, interior_splits = 0;
    uint64_t layers_created = 0;
  };
  Stats stats() const;

 private:
  struct Layer;
  struct Border;
  struct Interior;

  static constexpr int kLeafCap = 15;
  static constexpr int kInteriorCap = 15;  // keys; children = keys+1
  static constexpr uint8_t kLinkLen = 9;

  // Big-endian slice of up to 8 bytes, zero-padded.
  static uint64_t MakeSlice(const Slice& key, uint8_t* effective_len);

  Layer* NewLayer();
  void FreeLayerTree(Layer* layer);

  Status PutInLayer(Layer* layer, const Slice& key, const Slice& value)
      REQUIRES_EPOCH(epochs_);
  Result<std::string> GetInLayer(const Layer* layer, const Slice& key) const
      REQUIRES_EPOCH(epochs_);
  Status DeleteInLayer(Layer* layer, const Slice& key)
      REQUIRES_EPOCH(epochs_);
  bool ScanLayer(const Layer* layer, const std::string& layer_prefix,
                 const std::string& start_suffix, const Slice& global_end,
                 size_t limit,
                 std::vector<std::pair<std::string, std::string>>* out) const
      REQUIRES_EPOCH(epochs_);

  Border* FindBorder(const Layer* layer, uint64_t slice) const
      REQUIRES_EPOCH(epochs_);
  // Per-probe state of the LookupBatch machine (defined in masstree.cc).
  struct LookupProbe;
  // Advances one probe by one descent step; runs inside the group guard.
  COSTPERF_HOT void StepLookup(LookupProbe* p) const
      REQUIRES_EPOCH(epochs_);
  // Writer-side descent (layer latch held).
  Border* FindBorderLocked(Layer* layer, uint64_t slice,
                           std::vector<Interior*>* path) const
      REQUIRES_EPOCH(epochs_);
  void InsertIntoBorder(Layer* layer, Border* b, std::vector<Interior*>* path,
                        uint64_t slice, uint8_t len, void* payload)
      REQUIRES_EPOCH(epochs_);
  void InsertIntoParent(Layer* layer, std::vector<Interior*>* path,
                        void* left, uint64_t sep, void* right, int level)
      REQUIRES_EPOCH(epochs_);

  // Direct member (not a unique_ptr) so REQUIRES_EPOCH clauses can name
  // it; mutable because const read paths take their own guards.
  mutable EpochManager epochs_;
  Layer* root_layer_;
  std::atomic<uint64_t> count_;

  mutable std::atomic<uint64_t> s_puts_{0}, s_gets_{0}, s_deletes_{0},
      s_scans_{0}, s_retries_{0}, s_border_splits_{0}, s_interior_splits_{0},
      s_layers_{0};
};

}  // namespace costperf::masstree

#endif  // COSTPERF_MASSTREE_MASSTREE_H_
