#ifndef COSTPERF_BWTREE_PAGE_CODEC_H_
#define COSTPERF_BWTREE_PAGE_CODEC_H_

#include <memory>
#include <string>
#include <vector>

#include "bwtree/node.h"
#include "common/slice.h"
#include "common/status.h"

namespace costperf::bwtree {

// One logical record operation inside a serialized delta page.
struct DeltaOp {
  enum Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = kInsert;
  std::string key;
  std::string value;  // empty for deletes
  uint64_t timestamp = 0;
};

// Serialization of leaf pages for the log-structured store (paper Fig. 5:
// variable-size pages; delta pages carry only the updates since the base
// was last written, with a back-pointer to the previous image).
class PageCodec {
 public:
  static constexpr uint8_t kFullLeaf = 0;
  static constexpr uint8_t kDeltaPage = 1;
  // A full leaf image stored compressed (the paper's §7.2 CSS tier):
  // smaller media footprint bought with decompression CPU on load.
  static constexpr uint8_t kCompressedLeaf = 2;

  // Full consolidated leaf image.
  static void EncodeLeaf(const LeafBase& leaf, std::string* out);
  static Status DecodeLeaf(const Slice& image, LeafBase* leaf);

  // Compressed full leaf image.
  static void EncodeCompressedLeaf(const LeafBase& leaf, std::string* out);
  // Accepts either kind (transparent fallthrough for uncompressed).
  static Status DecodeAnyLeaf(const Slice& image, LeafBase* leaf);

  // Incremental delta page: ops since `prev` was written.
  static void EncodeDeltaPage(FlashAddress prev,
                              const std::vector<DeltaOp>& ops,
                              std::string* out);
  static Status DecodeDeltaPage(const Slice& image, FlashAddress* prev,
                                std::vector<DeltaOp>* ops);

  // Peeks at the image kind without a full parse.
  static Status PeekKind(const Slice& image, uint8_t* kind);

  static bool IsLeafKind(uint8_t kind) {
    return kind == kFullLeaf || kind == kCompressedLeaf;
  }
};

}  // namespace costperf::bwtree

#endif  // COSTPERF_BWTREE_PAGE_CODEC_H_
