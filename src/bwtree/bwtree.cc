#include "bwtree/bwtree.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "common/op_class.h"
#include "common/simd.h"
#include "compression/compressor.h"

namespace costperf::bwtree {

namespace {

// Applies one delta op into the newest-wins view used by consolidation.
// Walk order is head -> base (newest first), so the first op seen for a
// key wins unless a later-seen op carries a strictly higher timestamp.
struct VersionedOp {
  bool is_delete;
  std::string value;
  uint64_t timestamp;
  bool present = false;
};

void ApplyNewestWins(std::map<std::string, VersionedOp>* view,
                     const std::string& key, bool is_delete,
                     const std::string& value, uint64_t ts) {
  auto it = view->find(key);
  if (it == view->end()) {
    (*view)[key] = VersionedOp{is_delete, value, ts, true};
  } else if (ts > it->second.timestamp) {
    it->second = VersionedOp{is_delete, value, ts, true};
  }
}

}  // namespace

BwTree::BwTree(BwTreeOptions options)
    : options_(options), table_(options.mapping_capacity) {
  // Bootstrap: the root starts as a single empty leaf.
  auto* root = new LeafBase();
  PageId pid = table_.Allocate(EncodePointer(root));
  assert(pid != kInvalidPageId);
  root_pid_.store(pid, std::memory_order_release);
  CacheInsertOrResize(pid, root);
}

BwTree::~BwTree() {
  // Free all resident chains. No concurrent access by contract.
  epochs_.ReclaimAll();
  PageId hw = table_.high_water();
  for (PageId pid = 0; pid < hw; ++pid) {
    uint64_t w = table_.Get(pid);
    if (w != 0 && !IsFlashWord(w)) {
      FreeChain(DecodePointer(w));
      table_.Set(pid, 0);
    }
  }
}

// ---------------------------------------------------------------------
// Chain helpers
// ---------------------------------------------------------------------

Node* BwTree::ChainTail(Node* head) {
  while (head->next != nullptr) head = head->next;
  return head;
}
const Node* BwTree::ChainTail(const Node* head) {
  while (head->next != nullptr) head = head->next;
  return head;
}

namespace {

// Effective fences of a leaf chain: the topmost merge delta (newest range
// extension) wins; otherwise the tail's fences. Returns false when the
// fences are unknown (FlashPointer without them).
bool ChainFences(const Node* head, const std::string** high_key,
                 PageId* right_sibling) {
  for (const Node* n = head; n != nullptr; n = n->next) {
    if (n->type == NodeType::kMergeDelta) {
      const auto* m = static_cast<const MergeDelta*>(n);
      *high_key = &m->high_key;
      *right_sibling = m->right_sibling;
      return true;
    }
    if (n->type == NodeType::kLeafBase) {
      const auto* b = static_cast<const LeafBase*>(n);
      *high_key = &b->high_key;
      *right_sibling = b->right_sibling;
      return true;
    }
    if (n->type == NodeType::kFlashPointer) {
      const auto* fp = static_cast<const FlashPointer*>(n);
      if (!fp->fences_known) return false;
      *high_key = &fp->high_key;
      *right_sibling = fp->right_sibling;
      return true;
    }
  }
  return false;
}

// True when the chain contains structure-modification deltas that the
// record-cache paths cannot clone or serialize incrementally.
bool ChainHasSmoDeltas(const Node* head) {
  for (const Node* n = head; n != nullptr; n = n->next) {
    if (n->type == NodeType::kMergeDelta ||
        n->type == NodeType::kRemoveNode) {
      return true;
    }
  }
  return false;
}

}  // namespace

void BwTree::RetireChain(Node* head) {
  // A merge delta owns the absorbed page's chain; its mapping entry may
  // still point there (for RemoveNode redirects). Detach the entry before
  // the chain can be freed — in-flight readers stay safe via epochs.
  for (Node* n = head; n != nullptr; n = n->next) {
    if (n->type == NodeType::kMergeDelta) {
      auto* m = static_cast<MergeDelta*>(n);
      if (m->right_pid != kInvalidPageId) {
        table_.Cas(m->right_pid, EncodePointer(m->right_chain), 0);
      }
    }
  }
  epochs_.Retire([head] { FreeChain(head); });
}

void BwTree::RetireNode(Node* n) {
  n->next = nullptr;
  epochs_.Retire([n] { FreeChain(n); });
}

void BwTree::CacheInsertOrResize(PageId pid, Node* head) {
  if (options_.cache == nullptr) return;
  options_.cache->Insert(pid, ChainBytes(head));
}

void BwTree::CacheTouch(PageId pid) {
  if (options_.cache != nullptr) options_.cache->Touch(pid);
}

// ---------------------------------------------------------------------
// Meta (flash chain) bookkeeping
// ---------------------------------------------------------------------

void BwTree::MetaSetChain(PageId pid, std::vector<uint64_t> chain,
                          bool dirty) {
  MutexLock lk(&meta_mu_);
  auto& m = meta_[pid];
  m.flash_chain = std::move(chain);
  m.base_dirty = dirty;
}

void BwTree::MetaPushDelta(PageId pid, uint64_t addr) {
  MutexLock lk(&meta_mu_);
  auto& m = meta_[pid];
  m.flash_chain.insert(m.flash_chain.begin(), addr);
}

void BwTree::MetaMarkDirty(PageId pid) {
  MutexLock lk(&meta_mu_);
  meta_[pid].base_dirty = true;
}

BwTree::PageMeta BwTree::MetaGet(PageId pid) const {
  MutexLock lk(&meta_mu_);
  auto it = meta_.find(pid);
  return it == meta_.end() ? PageMeta{} : it->second;
}

BwTree::PageDebugInfo BwTree::DebugPageInfo(PageId pid) const {
  PageMeta m = MetaGet(pid);
  return PageDebugInfo{std::move(m.flash_chain), m.base_dirty};
}

void BwTree::MarkChainDead(const std::vector<uint64_t>& chain) {
  if (options_.log_store == nullptr) return;
  for (uint64_t packed : chain) {
    options_.log_store->MarkDead(FlashAddress::FromPacked(packed));
  }
}

// ---------------------------------------------------------------------
// Descent
// ---------------------------------------------------------------------

PageId BwTree::DescendToLeaf(const Slice& key, std::vector<PageId>* path) {
  epochs_.AssertActive();
  if (path != nullptr) path->clear();
  PageId pid = root_pid_.load(std::memory_order_acquire);
  for (;;) {
    uint64_t w = table_.Get(pid);
    if (w == 0) {
      // Freed page under our feet (concurrent restructure); restart.
      pid = root_pid_.load(std::memory_order_acquire);
      if (path != nullptr) path->clear();
      continue;
    }
    if (IsFlashWord(w)) return pid;  // only leaves are ever on flash
    Node* head = DecodePointer(w);
    if (head->type == NodeType::kRemoveNode) {
      // Page merged away: its contents live in the left sibling now.
      pid = static_cast<RemoveNodeDelta*>(head)->left_pid;
      continue;
    }
    if (head->type != NodeType::kInnerBase) {
      // Leaf chain. Follow leaf-level B-link fences when the chain
      // exposes them: a just-split page may not be reflected in its
      // parent yet, and hopping right (rather than re-descending)
      // guarantees progress.
      const std::string* high_key = nullptr;
      PageId right_sib = kInvalidPageId;
      if (ChainFences(head, &high_key, &right_sib) && !high_key->empty() &&
          key.compare(Slice(*high_key)) >= 0 &&
          right_sib != kInvalidPageId) {
        pid = right_sib;
        continue;
      }
      return pid;
    }
    auto* inner = static_cast<InnerBase*>(head);
    // NOTE: inner-level B-link hops are deliberately NOT taken. Inner
    // fences go stale when merges detach subtrees, while leaf-level
    // fences are always maintained (split installs, merge deltas); a
    // descent through a stale parent is corrected by the leaf hop below.
    size_t idx = NodeUpperBound(inner->seps, inner->search, key);
    if (path != nullptr) path->push_back(pid);
    pid = inner->children[idx];
    // Hide part of the child mapping-entry miss behind the loop overhead.
    table_.Prefetch(pid);
  }
}

// ---------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------

bool BwTree::SearchResidentChain(Node* head, const Slice& key, bool* found,
                                 std::string* value) const {
  epochs_.AssertActive();
  // First pass over deltas with timestamp awareness: collect the winning
  // delta op for this key, if any.
  bool have_delta = false;
  VersionedOp best{};
  for (Node* n = head; n != nullptr; n = n->next) {
    // Delta-chain walk: overlap the next node's miss with this node's
    // key compare.
    if (n->next != nullptr) simd::PrefetchRead(n->next);
    switch (n->type) {
      case NodeType::kInsertDelta: {
        auto* d = static_cast<InsertDelta*>(n);
        if (Slice(d->key) == key) {
          if (!have_delta || d->timestamp > best.timestamp) {
            best = VersionedOp{false, d->value, d->timestamp, true};
            have_delta = true;
          }
        }
        break;
      }
      case NodeType::kDeleteDelta: {
        auto* d = static_cast<DeleteDelta*>(n);
        if (Slice(d->key) == key) {
          if (!have_delta || d->timestamp > best.timestamp) {
            best = VersionedOp{true, "", d->timestamp, true};
            have_delta = true;
          }
        }
        break;
      }
      case NodeType::kLeafBase: {
        if (have_delta) {
          *found = !best.is_delete;
          if (*found) *value = best.value;
          return true;
        }
        auto* base = static_cast<LeafBase*>(n);
        const size_t li = NodeLowerBound(base->keys, base->search, key);
        if (li < base->keys.size() && Slice(base->keys[li]) == key) {
          *found = true;
          *value = base->values[li];
        } else {
          *found = false;
        }
        return true;
      }
      case NodeType::kFlashPointer: {
        if (have_delta) {
          // Record-cache hit: answered without touching flash.
          *found = !best.is_delete;
          if (*found) *value = best.value;
          return true;
        }
        return false;  // need the base
      }
      case NodeType::kMergeDelta: {
        // Keys at/after the absorbed range's low fence live in the
        // absorbed base; deltas above this node (already scanned) are
        // newer and win.
        auto* m = static_cast<MergeDelta*>(n);
        if (key.compare(Slice(m->sep)) >= 0) {
          if (have_delta) {
            *found = !best.is_delete;
            if (*found) *value = best.value;
            return true;
          }
          const size_t ri = NodeLowerBound(m->right_base->keys,
                                           m->right_base->search, key);
          if (ri < m->right_base->keys.size() &&
              Slice(m->right_base->keys[ri]) == key) {
            *found = true;
            *value = m->right_base->values[ri];
          } else {
            *found = false;
          }
          return true;
        }
        break;  // key is in the original left range: keep walking down
      }
      case NodeType::kRemoveNode:
        // Searching a merged-away page directly: caller must redirect.
        return false;
      case NodeType::kInnerBase:
        // Shouldn't happen on a leaf chain.
        *found = false;
        return true;
    }
  }
  *found = false;
  return true;
}

Result<std::string> BwTree::Get(const Slice& key) {
  std::string value;
  Status s = Get(key, &value);
  if (!s.ok()) return s;
  return value;
}

Status BwTree::Get(const Slice& key, std::string* value_out) {
  OpStatCell& cell = StatCell();
  Bump(cell.gets);
  OpContext ctx;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    EpochGuard guard(&epochs_);
    // Reused per thread: descent repopulates it and no two ops on one
    // thread are ever mid-descent at once (SMO helpers build their own
    // parent paths).
    thread_local std::vector<PageId> path;
    PageId pid = DescendToLeaf(key, &path);
    uint64_t w = table_.Get(pid);
    if (w == 0) continue;

    if (IsFlashWord(w)) {
      Status s = LoadAndInstall(pid, w, &ctx);
      if (!s.ok() && !s.IsAborted()) return s;
      continue;  // re-read the entry
    }

    Node* head = DecodePointer(w);
    if (head->type == NodeType::kRemoveNode) continue;  // re-descend
    // Leaf fence check when the chain exposes fences.
    {
      const std::string* high_key = nullptr;
      PageId right_sib = kInvalidPageId;
      if (ChainFences(head, &high_key, &right_sib) && !high_key->empty() &&
          key.compare(Slice(*high_key)) >= 0 &&
          right_sib != kInvalidPageId) {
        // Mid-split: the key moved right.
        pid = right_sib;
        w = table_.Get(pid);
        if (w == 0 || IsFlashWord(w)) continue;
        head = DecodePointer(w);
        if (head->type == NodeType::kRemoveNode) continue;
      }
    }

    bool found = false;
    if (SearchResidentChain(head, key, &found, value_out)) {
      CacheTouch(pid);
      Node* t2 = ChainTail(head);
      if (t2->type == NodeType::kFlashPointer && found) {
        Bump(cell.rc_hits);
      } else if (t2->type == NodeType::kFlashPointer && !found) {
        // A delete delta answered it; also a record-cache answer.
        Bump(cell.rc_hits);
      }
      if (ctx.flash_reads > 0) {
        Bump(cell.ss);
        opclass::Publish(OpClass::kSs);
      } else {
        Bump(cell.mm);
        opclass::Publish(OpClass::kMm);
      }
      // Only take the consolidation path when the chain we just searched
      // is long enough; MaybeConsolidate re-reads the mapping entry, and
      // that extra load is wasted on the common short-chain read.
      if (head->chain_length >= options_.consolidate_threshold) {
        MaybeConsolidate(pid, &path);
      }
      if (!found) return Status::NotFound();
      return Status::Ok();
    }

    // Base needed but on flash: load it (this is an SS operation).
    Status s = LoadAndInstall(pid, w, &ctx);
    if (!s.ok() && !s.IsAborted()) return s;
  }
  return Status::Internal("Get retry budget exhausted");
}

// ---------------------------------------------------------------------
// Batched reads (AMAC interleaving)
// ---------------------------------------------------------------------

// One lane of the batch machine. A probe moves kResolve -> kInspect per
// descent level: kResolve turns the pid into a mapping word and
// prefetches the decoded node; kInspect dereferences it (now likely a
// cache hit), takes one hop — remove-node redirect, inner child pick,
// B-link fence hop — or searches the leaf chain and finishes. The flash
// (SS) paths stay synchronous: they are I/O-bound, not miss-bound, and
// re-descend afterwards exactly like Get's attempt loop.
struct BwTree::BatchProbe {
  enum class St : uint8_t { kResolve, kInspect, kDone };

  Slice key;
  std::string* value = nullptr;
  Status* status = nullptr;
  St st = St::kResolve;
  PageId pid = kInvalidPageId;
  uint64_t word = 0;
  Node* head = nullptr;
  int restarts = 0;  // full re-descents; same 1000 budget as Get
  OpContext ctx;
  std::vector<PageId> path;  // inner path for split posting
};

void BwTree::StepProbe(BatchProbe* p, OpStatCell& cell) {
  auto finish = [p](Status s) {
    *p->status = s;
    p->st = BatchProbe::St::kDone;
  };
  // Full restart from the root, mirroring one iteration of Get's
  // attempt loop (LoadAndInstall rounds and races consume budget; hops
  // within a descent do not).
  auto restart = [this, p, &finish]() {
    if (++p->restarts >= 1000) {
      finish(Status::Internal("Get retry budget exhausted"));
      return;
    }
    p->pid = root_pid_.load(std::memory_order_acquire);
    p->path.clear();
    p->st = BatchProbe::St::kResolve;
  };

  switch (p->st) {
    case BatchProbe::St::kResolve: {
      p->word = table_.Get(p->pid);
      if (p->word == 0) {
        // Freed page under our feet (concurrent restructure).
        restart();
        return;
      }
      if (IsFlashWord(p->word)) {
        // Leaf on flash: synchronous SS load, then re-descend.
        Status s = LoadAndInstall(p->pid, p->word, &p->ctx);
        if (!s.ok() && !s.IsAborted()) {
          finish(s);
          return;
        }
        restart();
        return;
      }
      p->head = DecodePointer(p->word);
      simd::PrefetchRead(p->head);
      p->st = BatchProbe::St::kInspect;
      return;
    }

    case BatchProbe::St::kInspect: {
      Node* head = p->head;
      if (head->type == NodeType::kRemoveNode) {
        // Page merged away: its contents live in the left sibling now.
        p->pid = static_cast<RemoveNodeDelta*>(head)->left_pid;
        table_.Prefetch(p->pid);
        p->st = BatchProbe::St::kResolve;
        return;
      }
      if (head->type == NodeType::kInnerBase) {
        auto* inner = static_cast<InnerBase*>(head);
        // Inner B-link hops are deliberately not taken; see
        // DescendToLeaf.
        const size_t idx = NodeUpperBound(inner->seps, inner->search,
                                          p->key);
        p->path.push_back(p->pid);
        p->pid = inner->children[idx];
        table_.Prefetch(p->pid);
        p->st = BatchProbe::St::kResolve;
        return;
      }
      // Leaf chain. Follow the leaf-level fence when the key moved
      // right past a mid-split page.
      {
        const std::string* high_key = nullptr;
        PageId right_sib = kInvalidPageId;
        if (ChainFences(head, &high_key, &right_sib) &&
            !high_key->empty() &&
            p->key.compare(Slice(*high_key)) >= 0 &&
            right_sib != kInvalidPageId) {
          p->pid = right_sib;
          table_.Prefetch(p->pid);
          p->st = BatchProbe::St::kResolve;
          return;
        }
      }
      bool found = false;
      if (SearchResidentChain(head, p->key, &found, p->value)) {
        CacheTouch(p->pid);
        Node* tail = ChainTail(head);
        if (tail->type == NodeType::kFlashPointer) {
          // Answered by an in-memory delta over an evicted base: a
          // record-cache hit whether the answer was found or deleted.
          Bump(cell.rc_hits);
        }
        if (p->ctx.flash_reads > 0) {
          Bump(cell.ss);
          opclass::Publish(OpClass::kSs);
        } else {
          Bump(cell.mm);
          opclass::Publish(OpClass::kMm);
        }
        if (head->chain_length >= options_.consolidate_threshold) {
          MaybeConsolidate(p->pid, &p->path);
        }
        finish(found ? Status::Ok() : Status::NotFound());
        return;
      }
      // Base needed but on flash: load it (SS), then re-descend.
      Status s = LoadAndInstall(p->pid, p->word, &p->ctx);
      if (!s.ok() && !s.IsAborted()) {
        finish(s);
        return;
      }
      restart();
      return;
    }

    case BatchProbe::St::kDone:
      return;
  }
}

void BwTree::MultiGetBatch(BatchGetOp* ops, size_t count, size_t interleave) {
  if (count == 0) return;
  if (interleave == 0) interleave = options_.batch_interleave;
  if (interleave == 0) interleave = 1;
  OpStatCell& cell = StatCell();
  // Lane state is reused across calls (cleared, not freed), like the
  // thread-local descent path in Get.
  thread_local std::vector<BatchProbe> lanes;
  if (lanes.size() < interleave) lanes.resize(interleave);

  for (size_t base = 0; base < count; base += interleave) {
    const size_t n = std::min<size_t>(interleave, count - base);
    // One guard per interleave group: probes carry decoded node
    // pointers across quanta (the guard keeps them from being
    // reclaimed), and one Enter/Exit amortizes the epoch reservation
    // over the whole group instead of paying it per key.
    EpochGuard guard(&epochs_);
    for (size_t i = 0; i < n; ++i) {
      BatchProbe& p = lanes[i];
      p.key = ops[base + i].key;
      p.value = ops[base + i].value;
      p.status = ops[base + i].status;
      p.st = BatchProbe::St::kResolve;
      p.pid = root_pid_.load(std::memory_order_acquire);
      p.word = 0;
      p.head = nullptr;
      p.restarts = 0;
      p.ctx = OpContext{};
      p.path.clear();
      Bump(cell.gets);
      table_.Prefetch(p.pid);
    }
    size_t live = n;
    while (live > 0) {
      for (size_t i = 0; i < n; ++i) {
        BatchProbe& p = lanes[i];
        if (p.st == BatchProbe::St::kDone) continue;
        StepProbe(&p, cell);
        if (p.st == BatchProbe::St::kDone) --live;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Writes (blind)
// ---------------------------------------------------------------------

Status BwTree::Put(const Slice& key, const Slice& value, uint64_t timestamp) {
  OpStatCell& cell = StatCell();
  Bump(cell.puts);
  auto* delta = new InsertDelta();
  delta->key = key.ToString();
  delta->value = value.ToString();
  delta->timestamp = timestamp;

  for (int attempt = 0; attempt < 1000; ++attempt) {
    EpochGuard guard(&epochs_);
    // Reused per thread: descent repopulates it and no two ops on one
    // thread are ever mid-descent at once (SMO helpers build their own
    // parent paths).
    thread_local std::vector<PageId> path;
    PageId pid = DescendToLeaf(key, &path);
    uint64_t w = table_.Get(pid);
    if (w == 0) continue;

    Node* head = nullptr;
    if (IsFlashWord(w)) {
      // Fully evicted page: materialize a FlashPointer tail so the delta
      // can be prepended without any I/O (§6.2 blind update).
      auto* fp = new FlashPointer();
      fp->addr = DecodeFlash(w);
      fp->fences_known = false;
      delta->next = fp;
      delta->chain_length = 1;
      delta->blind = true;
      if (table_.Cas(pid, w, EncodePointer(delta))) {
        Bump(cell.blind);
        Bump(cell.mm);
        opclass::Publish(OpClass::kMm);
        MetaMarkDirty(pid);
        CacheInsertOrResize(pid, delta);
        return Status::Ok();
      }
      s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
      delta->next = nullptr;
      delete fp;
      continue;
    }

    head = DecodePointer(w);
    if (head->type == NodeType::kRemoveNode) continue;  // page merged away
    Node* tail = ChainTail(head);
    if (tail->type == NodeType::kInnerBase) continue;  // raced restructure
    // Fence routing when fences are known.
    {
      const std::string* high_key = nullptr;
      PageId right_sib = kInvalidPageId;
      if (ChainFences(head, &high_key, &right_sib) && !high_key->empty() &&
          key.compare(Slice(*high_key)) >= 0 &&
          right_sib != kInvalidPageId) {
        continue;  // stale leaf; re-descend
      }
    }

    delta->next = head;
    delta->chain_length = head->chain_length + 1;
    delta->blind = tail->type == NodeType::kFlashPointer;
    if (table_.Cas(pid, w, EncodePointer(delta))) {
      if (delta->blind) Bump(cell.blind);
      Bump(cell.mm);
      opclass::Publish(OpClass::kMm);
      MetaMarkDirty(pid);
      if (options_.cache != nullptr) {
        options_.cache->Resize(pid, ChainBytes(delta));
      }
      CacheTouch(pid);
      MaybeConsolidate(pid, &path);
      return Status::Ok();
    }
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    delta->next = nullptr;
  }
  delete delta;
  return Status::Internal("Put retry budget exhausted");
}

Status BwTree::Delete(const Slice& key, uint64_t timestamp) {
  OpStatCell& cell = StatCell();
  Bump(cell.deletes);
  auto* delta = new DeleteDelta();
  delta->key = key.ToString();
  delta->timestamp = timestamp;

  for (int attempt = 0; attempt < 1000; ++attempt) {
    EpochGuard guard(&epochs_);
    // Reused per thread: descent repopulates it and no two ops on one
    // thread are ever mid-descent at once (SMO helpers build their own
    // parent paths).
    thread_local std::vector<PageId> path;
    PageId pid = DescendToLeaf(key, &path);
    uint64_t w = table_.Get(pid);
    if (w == 0) continue;

    if (IsFlashWord(w)) {
      auto* fp = new FlashPointer();
      fp->addr = DecodeFlash(w);
      delta->next = fp;
      delta->chain_length = 1;
      if (table_.Cas(pid, w, EncodePointer(delta))) {
        Bump(cell.blind);
        Bump(cell.mm);
        opclass::Publish(OpClass::kMm);
        MetaMarkDirty(pid);
        CacheInsertOrResize(pid, delta);
        return Status::Ok();
      }
      s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
      delta->next = nullptr;
      delete fp;
      continue;
    }

    Node* head = DecodePointer(w);
    if (head->type == NodeType::kRemoveNode) continue;  // page merged away
    Node* tail = ChainTail(head);
    if (tail->type == NodeType::kInnerBase) continue;
    {
      const std::string* high_key = nullptr;
      PageId right_sib = kInvalidPageId;
      if (ChainFences(head, &high_key, &right_sib) && !high_key->empty() &&
          key.compare(Slice(*high_key)) >= 0 &&
          right_sib != kInvalidPageId) {
        continue;
      }
    }

    delta->next = head;
    delta->chain_length = head->chain_length + 1;
    if (table_.Cas(pid, w, EncodePointer(delta))) {
      if (tail->type == NodeType::kFlashPointer) {
        Bump(cell.blind);
      }
      Bump(cell.mm);
      opclass::Publish(OpClass::kMm);
      MetaMarkDirty(pid);
      if (options_.cache != nullptr) {
        options_.cache->Resize(pid, ChainBytes(delta));
      }
      CacheTouch(pid);
      MaybeConsolidate(pid, &path);
      return Status::Ok();
    }
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    delta->next = nullptr;
  }
  delete delta;
  return Status::Internal("Delete retry budget exhausted");
}

// ---------------------------------------------------------------------
// Consolidation & splits
// ---------------------------------------------------------------------

LeafBase* BwTree::ConsolidateChain(Node* head) const {
  epochs_.AssertActive();
  // The chain must end in a LeafBase.
  const Node* tail = ChainTail(head);
  if (tail->type != NodeType::kLeafBase) return nullptr;
  const auto* base = static_cast<const LeafBase*>(tail);

  // Collect winning delta ops (newest wins / highest timestamp) and any
  // merge deltas (newest first in encounter order).
  std::map<std::string, VersionedOp> view;
  std::vector<const MergeDelta*> merges;
  for (const Node* n = head; n != tail; n = n->next) {
    if (n->type == NodeType::kInsertDelta) {
      const auto* d = static_cast<const InsertDelta*>(n);
      ApplyNewestWins(&view, d->key, false, d->value, d->timestamp);
    } else if (n->type == NodeType::kDeleteDelta) {
      const auto* d = static_cast<const DeleteDelta*>(n);
      ApplyNewestWins(&view, d->key, true, "", d->timestamp);
    } else if (n->type == NodeType::kMergeDelta) {
      merges.push_back(static_cast<const MergeDelta*>(n));
    } else if (n->type == NodeType::kRemoveNode) {
      return nullptr;  // merged-away page: nothing to consolidate here
    }
  }

  auto* fresh = new LeafBase();
  // The newest (topmost) merge delta carries the combined fences.
  if (!merges.empty()) {
    fresh->high_key = merges.front()->high_key;
    fresh->right_sibling = merges.front()->right_sibling;
  } else {
    fresh->high_key = base->high_key;
    fresh->right_sibling = base->right_sibling;
  }

  // Base record run: the original base followed by each absorbed base in
  // merge order (oldest merge first) — disjoint ascending key ranges, so
  // concatenation stays sorted.
  std::vector<const LeafBase*> bases;
  bases.push_back(base);
  for (auto it = merges.rbegin(); it != merges.rend(); ++it) {
    bases.push_back((*it)->right_base);
  }

  size_t total = view.size();
  for (const auto* b : bases) total += b->keys.size();
  fresh->keys.reserve(total);
  fresh->values.reserve(total);

  // Merge the concatenated sorted base run with the sorted delta view.
  size_t which = 0, bi = 0;
  auto advance_base = [&]() -> const LeafBase* {
    while (which < bases.size() && bi >= bases[which]->keys.size()) {
      ++which;
      bi = 0;
    }
    return which < bases.size() ? bases[which] : nullptr;
  };
  auto vit = view.begin();
  for (;;) {
    const LeafBase* cur = advance_base();
    if (cur == nullptr && vit == view.end()) break;
    bool take_delta;
    if (cur == nullptr) {
      take_delta = true;
    } else if (vit == view.end()) {
      take_delta = false;
    } else {
      int c = Slice(vit->first).compare(Slice(cur->keys[bi]));
      if (c == 0) {
        // Delta supersedes the base record.
        if (!vit->second.is_delete) {
          fresh->keys.push_back(vit->first);
          fresh->values.push_back(vit->second.value);
        }
        ++bi;
        ++vit;
        continue;
      }
      take_delta = c < 0;
    }
    if (take_delta) {
      if (!vit->second.is_delete) {
        fresh->keys.push_back(vit->first);
        fresh->values.push_back(vit->second.value);
      }
      ++vit;
    } else {
      fresh->keys.push_back(cur->keys[bi]);
      fresh->values.push_back(cur->values[bi]);
      ++bi;
    }
  }
  fresh->search.Build(fresh->keys);
  return fresh;
}

bool BwTree::MaybeConsolidate(PageId pid, std::vector<PageId>* path) {
  uint64_t w = table_.Get(pid);
  if (w == 0 || IsFlashWord(w)) return false;
  Node* head = DecodePointer(w);
  if (head->chain_length < options_.consolidate_threshold) return false;
  Node* tail = ChainTail(head);
  if (tail->type != NodeType::kLeafBase) return false;  // flash tail: rc

  LeafBase* fresh = ConsolidateChain(head);
  if (fresh == nullptr) return false;
  // Content changed relative to flash if any delta was merged.
  bool merged_deltas = head != tail;

  if (fresh->PayloadBytes() > options_.max_page_bytes &&
      fresh->keys.size() >= 2) {
    SplitLeaf(pid, w, fresh, path);
    return true;
  }

  if (table_.Cas(pid, w, EncodePointer(fresh))) {
    s_consolidations_.fetch_add(1, std::memory_order_relaxed);
    if (merged_deltas) MetaMarkDirty(pid);
    RetireChain(head);
    if (options_.cache != nullptr) {
      options_.cache->Resize(pid, ChainBytes(fresh));
    }
    return true;
  }
  s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
  delete fresh;
  return false;
}

void BwTree::SplitLeaf(PageId pid, uint64_t expected_word,
                       LeafBase* consolidated, std::vector<PageId>* path) {
  // Split the consolidated image in half by payload bytes.
  const size_t n = consolidated->keys.size();
  uint64_t total = consolidated->PayloadBytes();
  uint64_t acc = 0;
  size_t split_at = n / 2;
  for (size_t i = 0; i < n; ++i) {
    acc += consolidated->keys[i].size() + consolidated->values[i].size();
    if (acc >= total / 2) {
      split_at = i + 1;
      break;
    }
  }
  if (split_at == 0) split_at = 1;
  if (split_at >= n) split_at = n - 1;

  auto* right = new LeafBase();
  right->keys.assign(consolidated->keys.begin() + split_at,
                     consolidated->keys.end());
  right->values.assign(consolidated->values.begin() + split_at,
                       consolidated->values.end());
  right->high_key = consolidated->high_key;
  right->right_sibling = consolidated->right_sibling;
  right->search.Build(right->keys);
  const std::string sep = right->keys.front();

  // Publish the right page in two steps so raw mapping-slot scanners
  // (background housekeeping) never act on a page this split may still
  // take back: allocate the slot with an inert placeholder, register the
  // pid as under construction, then install the real node. Scanners skip
  // placeholders by type and registered pids by lookup, so `right` stays
  // private until the link CAS below resolves.
  auto* placeholder = new RemoveNodeDelta();
  PageId right_pid = table_.Allocate(EncodePointer(placeholder));
  if (right_pid == kInvalidPageId) {
    delete placeholder;
    delete right;
    delete consolidated;
    return;  // mapping table full; operate unsplit
  }
  {
    MutexLock lk(&construction_mu_);
    under_construction_.insert(right_pid);
  }
  table_.Set(right_pid, EncodePointer(right));
  // A scanner may already hold the placeholder pointer; epoch-retire it.
  RetireChain(placeholder);

  auto* left = new LeafBase();
  left->keys.assign(consolidated->keys.begin(),
                    consolidated->keys.begin() + split_at);
  left->values.assign(consolidated->values.begin(),
                      consolidated->values.begin() + split_at);
  left->high_key = sep;
  left->right_sibling = right_pid;
  left->search.Build(left->keys);
  delete consolidated;

  // The left half must reflect exactly the chain we consolidated; CAS
  // against the observed word so concurrent deltas are never lost.
  Node* old_head = DecodePointer(expected_word);
  if (table_.Cas(pid, expected_word, EncodePointer(left))) {
    s_consolidations_.fetch_add(1, std::memory_order_relaxed);
    s_leaf_splits_.fetch_add(1, std::memory_order_relaxed);
    MetaMarkDirty(pid);
    MetaMarkDirty(right_pid);
    {
      MutexLock lk(&construction_mu_);
      under_construction_.erase(right_pid);
    }
    RetireChain(old_head);
    if (options_.cache != nullptr) {
      options_.cache->Resize(pid, ChainBytes(left));
      options_.cache->Insert(right_pid, ChainBytes(right));
    }
    PostSplitToParent(pid, sep, right_pid, path);
  } else {
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    delete left;
    // Take the never-linked right page back: clear the slot first (a
    // scanner re-reading it sees "no page"), epoch-retire the node (a
    // scanner inside an epoch may still hold the pointer — never plain
    // delete a published node), then free the id. Unregister last, so
    // by the time the pid stops being skipped its slot is already empty.
    table_.Set(right_pid, 0);
    RetireChain(right);
    table_.Free(right_pid);
    {
      MutexLock lk(&construction_mu_);
      under_construction_.erase(right_pid);
    }
  }
}

void BwTree::PostSplitToParent(PageId left_pid, const std::string& sep,
                               PageId right_pid, std::vector<PageId>* path) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // Locate the parent: prefer the recorded path, fall back to a search.
    PageId parent = kInvalidPageId;
    if (path != nullptr && !path->empty()) {
      parent = path->back();
      // Verify it still points at left_pid.
      uint64_t w = table_.Get(parent);
      bool valid = false;
      if (w != 0 && !IsFlashWord(w)) {
        Node* h = DecodePointer(w);
        if (h->type == NodeType::kInnerBase) {
          auto* in = static_cast<InnerBase*>(h);
          valid = std::find(in->children.begin(), in->children.end(),
                            left_pid) != in->children.end();
        }
      }
      if (!valid) parent = kInvalidPageId;
    }
    if (parent == kInvalidPageId) {
      parent = FindParentOf(left_pid, Slice(sep));
    }

    if (parent == kInvalidPageId) {
      // left is the root: grow the tree.
      auto* new_root = new InnerBase();
      new_root->seps.push_back(sep);
      new_root->children.push_back(left_pid);
      new_root->children.push_back(right_pid);
      new_root->search.Build(new_root->seps);
      PageId new_root_pid = table_.Allocate(EncodePointer(new_root));
      if (new_root_pid == kInvalidPageId) {
        delete new_root;
        return;
      }
      PageId expected = left_pid;
      if (root_pid_.compare_exchange_strong(expected, new_root_pid,
                                            std::memory_order_acq_rel)) {
        s_root_splits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Someone else changed the root; clean up and retry the post.
      table_.Set(new_root_pid, 0);
      table_.Free(new_root_pid);
      delete new_root;
      continue;
    }

    uint64_t w = table_.Get(parent);
    if (w == 0 || IsFlashWord(w)) continue;
    Node* head = DecodePointer(w);
    if (head->type != NodeType::kInnerBase) continue;
    auto* inner = static_cast<InnerBase*>(head);

    // Idempotence: another thread may have posted the same split.
    if (std::find(inner->children.begin(), inner->children.end(),
                  right_pid) != inner->children.end()) {
      return;
    }

    auto* fresh = new InnerBase(*inner);
    fresh->next = nullptr;
    size_t idx = std::lower_bound(fresh->seps.begin(), fresh->seps.end(),
                                  sep) -
                 fresh->seps.begin();
    fresh->seps.insert(fresh->seps.begin() + idx, sep);
    fresh->children.insert(fresh->children.begin() + idx + 1, right_pid);
    // The copy above reset the search index; rebuild over the final seps.
    fresh->search.Build(fresh->seps);

    if (fresh->children.size() > options_.max_inner_children) {
      if (table_.Cas(parent, w, EncodePointer(fresh))) {
        RetireChain(head);
        SplitInner(parent, fresh, path);
        return;
      }
      s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
      delete fresh;
      continue;
    }

    if (table_.Cas(parent, w, EncodePointer(fresh))) {
      RetireChain(head);
      return;
    }
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    delete fresh;
  }
}

void BwTree::SplitInner(PageId pid, InnerBase* inner,
                        std::vector<PageId>* path) {
  // `inner` is the installed (immutable from now) oversized node.
  const size_t n = inner->seps.size();
  const size_t mid = n / 2;
  const std::string up_sep = inner->seps[mid];

  auto* right = new InnerBase();
  right->seps.assign(inner->seps.begin() + mid + 1, inner->seps.end());
  right->children.assign(inner->children.begin() + mid + 1,
                         inner->children.end());
  right->high_key = inner->high_key;
  right->right_sibling = inner->right_sibling;
  right->search.Build(right->seps);
  PageId right_pid = table_.Allocate(EncodePointer(right));
  if (right_pid == kInvalidPageId) {
    delete right;
    return;
  }

  auto* left = new InnerBase();
  left->seps.assign(inner->seps.begin(), inner->seps.begin() + mid);
  left->children.assign(inner->children.begin(),
                        inner->children.begin() + mid + 1);
  left->high_key = up_sep;
  left->right_sibling = right_pid;
  left->search.Build(left->seps);

  if (table_.Cas(pid, EncodePointer(inner), EncodePointer(left))) {
    s_inner_splits_.fetch_add(1, std::memory_order_relaxed);
    RetireChain(inner);
    // Pop the path element for this level if it matches.
    std::vector<PageId> parent_path;
    if (path != nullptr && !path->empty() && path->back() == pid) {
      parent_path.assign(path->begin(), path->end() - 1);
    }
    PostSplitToParent(pid, up_sep, right_pid, &parent_path);
  } else {
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    delete left;
    table_.Set(right_pid, 0);
    table_.Free(right_pid);
    delete right;
  }
}

PageId BwTree::FindParentOf(PageId child_pid, const Slice& toward_key) {
  PageId pid = root_pid_.load(std::memory_order_acquire);
  if (pid == child_pid) return kInvalidPageId;
  for (int depth = 0; depth < 64; ++depth) {
    uint64_t w = table_.Get(pid);
    if (w == 0 || IsFlashWord(w)) break;
    Node* head = DecodePointer(w);
    if (head->type != NodeType::kInnerBase) break;
    auto* inner = static_cast<InnerBase*>(head);
    if (std::find(inner->children.begin(), inner->children.end(),
                  child_pid) != inner->children.end()) {
      return pid;
    }
    size_t idx = std::upper_bound(inner->seps.begin(), inner->seps.end(),
                                  toward_key.ToString()) -
                 inner->seps.begin();
    pid = inner->children[idx];
  }
  // Key-guided descent can miss the parent after merge re-routing (the
  // child's old range now routes elsewhere). Fall back to an exhaustive
  // scan — maintenance-path cost only; correctness must not depend on
  // key routing here.
  PageId hw = table_.high_water();
  for (PageId p = 0; p < hw; ++p) {
    uint64_t w = table_.Get(p);
    if (w == 0 || IsFlashWord(w)) continue;
    Node* head = DecodePointer(w);
    if (head->type != NodeType::kInnerBase) continue;
    auto* inner = static_cast<InnerBase*>(head);
    if (std::find(inner->children.begin(), inner->children.end(),
                  child_pid) != inner->children.end()) {
      return p;
    }
  }
  return kInvalidPageId;
}

// ---------------------------------------------------------------------
// Paging: load
// ---------------------------------------------------------------------

Status BwTree::RetryIo(const std::function<Status()>& fn) {
  RetryStats rs;
  Status s = RetryTransient(options_.io_retry, fn, &rs,
                            retry_salt_.fetch_add(1,
                                                  std::memory_order_relaxed));
  s_io_retries_.fetch_add(rs.retries, std::memory_order_relaxed);
  if (rs.gave_up) s_io_give_ups_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Result<FlashAddress> BwTree::RetryAppend(PageId pid, const Slice& image) {
  Result<FlashAddress> out = Status::Internal("append never ran");
  Status s = RetryIo([&]() {
    out = options_.log_store->Append(pid, image);
    return out.status();
  });
  if (!s.ok()) return s;
  return out;
}

Result<FlashAddress> BwTree::RetryAppendCompressed(PageId pid,
                                                   const Slice& compressed,
                                                   uint32_t raw_len) {
  Result<FlashAddress> out = Status::Internal("append never ran");
  Status s = RetryIo([&]() {
    out = options_.log_store->AppendCompressed(pid, compressed, raw_len);
    return out.status();
  });
  if (!s.ok()) return s;
  return out;
}

Status BwTree::MaterializeFromFlash(FlashAddress addr, LeafBase* leaf,
                                    OpContext* ctx) {
  if (options_.log_store == nullptr) {
    return Status::FailedPrecondition("no log store configured");
  }
  // Collect the image chain newest-first, then apply oldest-first.
  std::vector<std::string> images;
  FlashAddress cur = addr;
  while (cur.valid()) {
    std::string image;
    bool was_compressed = false;
    Status s = RetryIo([&]() {
      return options_.log_store->Read(cur, &image, nullptr, &was_compressed);
    });
    if (!s.ok()) return s;
    ctx->flash_reads++;
    s_flash_reads_.fetch_add(1, std::memory_order_relaxed);
    if (was_compressed) {
      // CSS-tier record: the log store already decompressed it; this op
      // paid decompress CPU instead of the larger SS transfer.
      ctx->compressed_reads++;
      s_compressed_loads_.fetch_add(1, std::memory_order_relaxed);
    }
    uint8_t kind = 0;
    Status ks = PageCodec::PeekKind(Slice(image), &kind);
    if (!ks.ok()) return ks;
    images.push_back(std::move(image));
    if (PageCodec::IsLeafKind(kind)) {
      if (kind == PageCodec::kCompressedLeaf && !was_compressed) {
        // Legacy codec-level compressed image (the tier now compresses
        // at the log-record layer instead).
        s_compressed_loads_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    FlashAddress prev;
    std::vector<DeltaOp> ops;
    Status ds = PageCodec::DecodeDeltaPage(Slice(images.back()), &prev, &ops);
    if (!ds.ok()) return ds;
    cur = prev;
    if (images.size() > 64) {
      return Status::Corruption("flash delta chain too long");
    }
  }
  if (images.empty()) return Status::Corruption("empty flash chain");

  // Oldest image is the full leaf (possibly CSS-compressed).
  Status s = PageCodec::DecodeAnyLeaf(Slice(images.back()), leaf);
  if (!s.ok()) return s;
  // Apply delta pages oldest -> newest.
  for (size_t i = images.size() - 1; i-- > 0;) {
    FlashAddress prev;
    std::vector<DeltaOp> ops;
    s = PageCodec::DecodeDeltaPage(Slice(images[i]), &prev, &ops);
    if (!s.ok()) return s;
    for (const auto& op : ops) {
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(),
                                 op.key);
      size_t idx = it - leaf->keys.begin();
      bool match = it != leaf->keys.end() && *it == op.key;
      if (op.kind == DeltaOp::kInsert) {
        if (match) {
          leaf->values[idx] = op.value;
        } else {
          leaf->keys.insert(it, op.key);
          leaf->values.insert(leaf->values.begin() + idx, op.value);
        }
      } else {
        if (match) {
          leaf->keys.erase(it);
          leaf->values.erase(leaf->values.begin() + idx);
        }
      }
    }
  }
  return Status::Ok();
}

Status BwTree::LoadAndInstall(PageId pid, uint64_t entry_word,
                              OpContext* ctx) {
  epochs_.AssertActive();
  FlashAddress addr;
  Node* old_head = nullptr;
  if (IsFlashWord(entry_word)) {
    addr = DecodeFlash(entry_word);
  } else {
    old_head = DecodePointer(entry_word);
    Node* tail = ChainTail(old_head);
    if (tail->type != NodeType::kFlashPointer) {
      return Status::Ok();  // already resident
    }
    addr = static_cast<FlashPointer*>(tail)->addr;
  }

  auto leaf = std::make_unique<LeafBase>();
  const uint32_t pre_compressed = ctx->compressed_reads;
  Status s = MaterializeFromFlash(addr, leaf.get(), ctx);
  if (!s.ok()) {
    if (s.IsCorruption() && table_.Get(pid) != entry_word) {
      // The mapping word moved while we were reading: GC relocated the
      // record (and may already have trimmed the victim segment, so the
      // bytes we read were reclaimed media, not damage) or a concurrent
      // flush/load replaced the chain. Retry against the new word.
      s_read_relocation_retries_.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("page relocated during load");
    }
    return s;
  }
  const bool from_css = ctx->compressed_reads > pre_compressed;

  bool had_memory_deltas = false;
  if (old_head != nullptr) {
    // Merge in-memory deltas over the loaded base: build a temporary
    // chain view [deltas..., loaded base] and consolidate it.
    Node* tail = ChainTail(old_head);
    if (old_head != tail) {
      had_memory_deltas = true;
      // Temporarily relink a copy? Instead, run consolidation manually:
      // reuse ConsolidateChain by splicing: create a shallow walker.
      // Simplest correct approach: apply the same newest-wins merge here.
      std::map<std::string, VersionedOp> view;
      for (Node* n = old_head; n != tail; n = n->next) {
        if (n->type == NodeType::kInsertDelta) {
          auto* d = static_cast<InsertDelta*>(n);
          ApplyNewestWins(&view, d->key, false, d->value, d->timestamp);
        } else if (n->type == NodeType::kDeleteDelta) {
          auto* d = static_cast<DeleteDelta*>(n);
          ApplyNewestWins(&view, d->key, true, "", d->timestamp);
        }
      }
      for (auto& [key, op] : view) {
        auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
        size_t idx = it - leaf->keys.begin();
        bool match = it != leaf->keys.end() && *it == key;
        if (!op.is_delete) {
          if (match) {
            leaf->values[idx] = op.value;
          } else {
            leaf->keys.insert(it, key);
            leaf->values.insert(leaf->values.begin() + idx, op.value);
          }
        } else if (match) {
          leaf->keys.erase(it);
          leaf->values.erase(leaf->values.begin() + idx);
        }
      }
    }
  }

  LeafBase* fresh = leaf.release();
  fresh->search.Build(fresh->keys);
  if (table_.Cas(pid, entry_word, EncodePointer(fresh))) {
    s_loads_.fetch_add(1, std::memory_order_relaxed);
    // The install counts as a CSS hit when the base image came back from
    // a compressed record: the tier answered instead of plain SS. The
    // cache manager's Insert below doubles as the CSS -> DRAM promotion
    // when it was tracking this page in the compressed tier.
    if (from_css) s_css_hits_.fetch_add(1, std::memory_order_relaxed);
    if (old_head != nullptr) RetireChain(old_head);
    MetaSetChain(pid, MetaGet(pid).flash_chain, had_memory_deltas);
    CacheInsertOrResize(pid, fresh);
    return Status::Ok();
  }
  s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
  delete fresh;
  return Status::Aborted("page changed during load");
}

Status BwTree::LoadPage(PageId pid) {
  EpochGuard guard(&epochs_);
  OpContext ctx;
  for (int attempt = 0; attempt < 100; ++attempt) {
    uint64_t w = table_.Get(pid);
    if (w == 0) return Status::NotFound("no such page");
    if (!IsFlashWord(w)) {
      Node* tail = ChainTail(DecodePointer(w));
      if (tail->type != NodeType::kFlashPointer) return Status::Ok();
    }
    Status s = LoadAndInstall(pid, w, &ctx);
    if (s.ok()) return s;
    if (!s.IsAborted()) return s;
  }
  return Status::Internal("LoadPage retry budget exhausted");
}

// ---------------------------------------------------------------------
// Paging: flush & evict
// ---------------------------------------------------------------------

Status BwTree::EnsureSplitSiblingDurable(PageId sib) {
  if (sib == kInvalidPageId) return Status::Ok();
  uint64_t sw = table_.Get(sib);
  if (sw == 0 || IsFlashWord(sw)) return Status::Ok();
  if (!MetaGet(sib).flash_chain.empty()) return Status::Ok();
  // Never durable: flush it now (recursing down a run of fresh splits via
  // FlushPage's own sibling check). Aborted means a concurrent writer
  // won the CAS — retry; the chain still needs a durable image.
  Status s;
  for (int attempt = 0; attempt < 100; ++attempt) {
    s = FlushPage(sib, FlushMode::kFullPage);
    if (!s.IsAborted()) break;
  }
  return s;
}

Status BwTree::FlushPage(PageId pid, FlushMode mode) {
  if (options_.log_store == nullptr) {
    return Status::FailedPrecondition("no log store configured");
  }
  EpochGuard guard(&epochs_);
  uint64_t w = table_.Get(pid);
  if (w == 0) return Status::NotFound("no such page");
  if (IsFlashWord(w)) return Status::Ok();  // evicted == clean on flash

  Node* head = DecodePointer(w);
  if (head->type == NodeType::kRemoveNode) {
    return Status::Ok();  // merged away; the left sibling owns the data
  }
  Node* tail = ChainTail(head);
  if (tail->type == NodeType::kInnerBase) {
    return Status::InvalidArgument("inner pages are not flushed");
  }

  PageMeta meta = MetaGet(pid);

  if (tail->type == NodeType::kFlashPointer) {
    // Base already on flash; only in-memory deltas may be dirty.
    if (head == tail) return Status::Ok();  // nothing in memory but the ptr
    if (mode == FlushMode::kDeltaOnly && !ChainHasSmoDeltas(head)) {
      // Serialize in-memory deltas as an incremental delta page.
      auto* fp = static_cast<FlashPointer*>(tail);
      std::vector<DeltaOp> ops;
      // Chain is newest-first; the codec applies ops in array order, so
      // emit oldest-first.
      std::vector<const Node*> nodes;
      for (const Node* n = head; n != tail; n = n->next) nodes.push_back(n);
      for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
        const Node* n = *it;
        DeltaOp op;
        if (n->type == NodeType::kInsertDelta) {
          const auto* d = static_cast<const InsertDelta*>(n);
          op.kind = DeltaOp::kInsert;
          op.key = d->key;
          op.value = d->value;
          op.timestamp = d->timestamp;
        } else {
          const auto* d = static_cast<const DeleteDelta*>(n);
          op.kind = DeltaOp::kDelete;
          op.key = d->key;
          op.timestamp = d->timestamp;
        }
        ops.push_back(std::move(op));
      }
      std::string image;
      PageCodec::EncodeDeltaPage(fp->addr, ops, &image);
      auto addr = RetryAppend(pid, Slice(image));
      if (!addr.ok()) {
        if (addr.status().code() == StatusCode::kInvalidArgument) {
          // The accumulated delta spine no longer fits in one log
          // segment; no delta flush can ever succeed again. Materialize
          // the base and take the full-page path, which splits
          // oversized pages instead of wedging.
          OpContext ctx;
          Status ls = LoadAndInstall(pid, w, &ctx);
          if (!ls.ok() && !ls.IsAborted()) return ls;
          return FlushPage(pid, FlushMode::kFullPage);
        }
        return addr.status();
      }

      auto* new_fp = new FlashPointer();
      new_fp->addr = *addr;
      new_fp->fences_known = fp->fences_known;
      new_fp->high_key = fp->high_key;
      new_fp->right_sibling = fp->right_sibling;
      if (table_.Cas(pid, w, EncodePointer(new_fp))) {
        s_delta_flushes_.fetch_add(1, std::memory_order_relaxed);
        s_bytes_flushed_.fetch_add(image.size(), std::memory_order_relaxed);
        RetireChain(head);
        MetaPushDelta(pid, addr->packed());
        if (options_.cache != nullptr) {
          options_.cache->Resize(pid, ChainBytes(new_fp));
        }
        return Status::Ok();
      }
      s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
      delete new_fp;
      options_.log_store->MarkDead(*addr);
      return Status::Aborted("page changed during delta flush");
    }
    // Full/compressed flush of a flash-tailed chain: load, then fall
    // through by retrying (the resident path below handles it).
    OpContext ctx;
    Status s = LoadAndInstall(pid, w, &ctx);
    if (!s.ok() && !s.IsAborted()) return s;
    return FlushPage(pid, mode);
  }

  // Resident base.
  bool has_deltas = head != tail;
  if (!has_deltas && !meta.base_dirty && !meta.flash_chain.empty() &&
      mode != FlushMode::kCompressedPage) {
    return Status::Ok();  // clean
  }

  LeafBase* fresh = ConsolidateChain(head);
  if (fresh == nullptr) return Status::Internal("consolidation failed");
  {
    Status ss = EnsureSplitSiblingDurable(fresh->right_sibling);
    if (!ss.ok()) {
      delete fresh;
      return ss;
    }
  }
  // The image is always the plain leaf encoding; for the compressed
  // tier the *log record* carries the compression (flags + raw length
  // in the record header), so recovery, GC, and the auditor see one
  // uniform record identity instead of a second page kind.
  std::string image;
  PageCodec::EncodeLeaf(*fresh, &image);
  uint64_t stored_len = image.size();
  Result<FlashAddress> addr = Status::Internal("flush never appended");
  if (mode == FlushMode::kCompressedPage) {
    std::string compressed;
    compression::Compressor::Compress(Slice(image), &compressed);
    stored_len = compressed.size();
    addr = RetryAppendCompressed(pid, Slice(compressed),
                                 static_cast<uint32_t>(image.size()));
  } else {
    addr = RetryAppend(pid, Slice(image));
  }
  if (!addr.ok()) {
    if (addr.status().code() == StatusCode::kInvalidArgument &&
        fresh->keys.size() >= 2) {
      // Image too large for one log segment: no flush or eviction of
      // this page can ever succeed again, and repeated flushes reset
      // chain_length to 1 so the consolidate-threshold split check
      // cannot save it either (a background flush cadence that outpaces
      // delta arrival grows a monolithic base without bound). Split now
      // — the halves fit — and let the caller retry. SplitLeaf owns
      // `fresh` on both of its outcomes.
      SplitLeaf(pid, w, fresh, nullptr);
      return Status::Aborted("page split during flush");
    }
    delete fresh;
    return addr.status();
  }
  if (table_.Cas(pid, w, EncodePointer(fresh))) {
    if (mode == FlushMode::kCompressedPage) {
      s_compressed_flushes_.fetch_add(1, std::memory_order_relaxed);
    }
    s_full_flushes_.fetch_add(1, std::memory_order_relaxed);
    s_bytes_flushed_.fetch_add(stored_len, std::memory_order_relaxed);
    if (head != fresh) RetireChain(head);
    MarkChainDead(meta.flash_chain);
    MetaSetChain(pid, {addr->packed()}, /*dirty=*/false);
    if (options_.cache != nullptr) {
      options_.cache->Resize(pid, ChainBytes(fresh));
    }
    return Status::Ok();
  }
  s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
  delete fresh;
  options_.log_store->MarkDead(*addr);
  return Status::Aborted("page changed during flush");
}

Status BwTree::EvictPage(PageId pid, EvictMode mode) {
  if (options_.log_store == nullptr) {
    return Status::FailedPrecondition("no log store configured");
  }
  EpochGuard guard(&epochs_);
  for (int attempt = 0; attempt < 100; ++attempt) {
    uint64_t w = table_.Get(pid);
    if (w == 0) return Status::NotFound("no such page");
    if (IsFlashWord(w)) return Status::Ok();  // already evicted

    Node* head = DecodePointer(w);
    Node* tail = ChainTail(head);
    if (tail->type == NodeType::kInnerBase) {
      return Status::InvalidArgument("inner pages are not evicted");
    }

    if (head->type == NodeType::kRemoveNode) return Status::Ok();

    if (mode == EvictMode::kKeepDeltas && !ChainHasSmoDeltas(head)) {
      // Record-cache eviction: drop the base page, keep the delta spine.
      if (tail->type == NodeType::kFlashPointer) return Status::Ok();
      auto* base = static_cast<LeafBase*>(tail);
      PageMeta meta = MetaGet(pid);
      FlashAddress base_addr;
      if (meta.base_dirty || meta.flash_chain.empty()) {
        // Base content not on flash: write the base image (without
        // deltas, which stay in memory).
        Status ss = EnsureSplitSiblingDurable(base->right_sibling);
        if (!ss.ok()) return ss;
        std::string image;
        PageCodec::EncodeLeaf(*base, &image);
        auto addr = RetryAppend(pid, Slice(image));
        if (!addr.ok()) return addr.status();
        s_bytes_flushed_.fetch_add(image.size(), std::memory_order_relaxed);
        base_addr = *addr;
      } else {
        base_addr = FlashAddress::FromPacked(meta.flash_chain.front());
      }

      // Rebuild the delta spine over a FlashPointer tail.
      auto* fp = new FlashPointer();
      fp->addr = base_addr;
      fp->fences_known = true;
      fp->high_key = base->high_key;
      fp->right_sibling = base->right_sibling;

      Node* new_head = fp;
      // Copy deltas (immutable, so clone values) preserving order:
      // iterate newest-first, build by appending clones from oldest.
      std::vector<const Node*> nodes;
      for (const Node* n = head; n != tail; n = n->next) nodes.push_back(n);
      for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
        const Node* n = *it;
        Node* clone = nullptr;
        if (n->type == NodeType::kInsertDelta) {
          auto* c = new InsertDelta(*static_cast<const InsertDelta*>(n));
          clone = c;
        } else {
          auto* c = new DeleteDelta(*static_cast<const DeleteDelta*>(n));
          clone = c;
        }
        clone->next = new_head;
        clone->chain_length = new_head->chain_length + 1;
        new_head = clone;
      }

      if (table_.Cas(pid, w, EncodePointer(new_head))) {
        s_rc_evictions_.fetch_add(1, std::memory_order_relaxed);
        RetireChain(head);
        if (meta.base_dirty || meta.flash_chain.empty()) {
          MarkChainDead(meta.flash_chain);
          MetaSetChain(pid, {base_addr.packed()}, /*dirty=*/false);
        }
        if (options_.cache != nullptr) {
          options_.cache->Resize(pid, ChainBytes(new_head));
        }
        return Status::Ok();
      }
      s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
      FreeChain(new_head);
      continue;
    }

    // Full eviction: flush dirty state, then swing the entry to flash.
    if (IsDirty(pid)) {
      Status s = FlushPage(pid, FlushMode::kFullPage);
      if (!s.ok() && !s.IsAborted()) return s;
      continue;  // re-read the (now clean) entry
    }
    PageMeta meta = MetaGet(pid);
    if (meta.flash_chain.empty()) {
      // Clean but never flushed can only be an empty fresh page; flush it.
      Status s = FlushPage(pid, FlushMode::kFullPage);
      if (!s.ok() && !s.IsAborted()) return s;
      continue;
    }
    FlashAddress newest = FlashAddress::FromPacked(meta.flash_chain.front());
    if (table_.Cas(pid, w, EncodeFlash(newest))) {
      s_full_evictions_.fetch_add(1, std::memory_order_relaxed);
      RetireChain(head);
      if (options_.cache != nullptr) options_.cache->Erase(pid);
      return Status::Ok();
    }
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Aborted("EvictPage kept racing writers");
}

Status BwTree::DemotePage(PageId pid, const CssPolicy& policy,
                          DemoteResult* out) {
  if (options_.log_store == nullptr) {
    return Status::FailedPrecondition("no log store configured");
  }
  DemoteResult local;
  DemoteResult* res = out != nullptr ? out : &local;
  *res = DemoteResult{};

  EpochGuard guard(&epochs_);
  uint64_t w = table_.Get(pid);
  if (w == 0) return Status::NotFound("no such page");
  if (IsFlashWord(w)) return Status::Ok();  // already non-resident

  Node* head = DecodePointer(w);
  if (head->type == NodeType::kRemoveNode) return Status::Ok();
  Node* tail = ChainTail(head);
  if (tail->type == NodeType::kInnerBase) {
    return Status::InvalidArgument("inner pages are not demoted");
  }
  if (tail->type == NodeType::kFlashPointer) {
    // Record-cache form: the base is already on flash. Plain eviction
    // owns this shape; demotion only compresses resident bases.
    return Status::FailedPrecondition("page base not resident");
  }

  // Anti-thrash refusal: a page that keeps getting promoted back out of
  // CSS pays decompress_r on every reheat — past the policy limit the
  // tier is a measured loss for it (Fig. 8's argument in reverse).
  if (options_.cache != nullptr &&
      options_.cache->ReheatCount(pid) > policy.max_reheats) {
    s_css_refusals_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("page reheats too often for CSS");
  }

  LeafBase* fresh = ConsolidateChain(head);
  if (fresh == nullptr) return Status::Internal("consolidation failed");
  Status ss = EnsureSplitSiblingDurable(fresh->right_sibling);
  if (!ss.ok()) {
    delete fresh;
    return ss;
  }

  std::string image;
  PageCodec::EncodeLeaf(*fresh, &image);
  std::string compressed;
  compression::CompressInfo info;
  // One Compress call both produces the stored image and measures the
  // ratio the policy gates on.
  compression::Compressor::Compress(Slice(image), &compressed, &info);
  res->raw_bytes = info.raw_size;
  res->stored_bytes = info.compressed_size;
  if (info.ratio() > policy.min_ratio) {
    delete fresh;
    s_css_refusals_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("compression ratio above threshold");
  }

  auto addr = RetryAppendCompressed(pid, Slice(compressed),
                                    static_cast<uint32_t>(image.size()));
  if (!addr.ok()) {
    delete fresh;
    return addr.status();
  }

  PageMeta meta = MetaGet(pid);
  // Flush and eviction in one step: swing the mapping word straight to
  // the new record's flash address.
  if (table_.Cas(pid, w, EncodeFlash(*addr))) {
    s_compressed_flushes_.fetch_add(1, std::memory_order_relaxed);
    s_css_demotions_.fetch_add(1, std::memory_order_relaxed);
    s_css_raw_demoted_.fetch_add(info.raw_size, std::memory_order_relaxed);
    s_css_stored_demoted_.fetch_add(info.compressed_size,
                                    std::memory_order_relaxed);
    s_bytes_flushed_.fetch_add(compressed.size(), std::memory_order_relaxed);
    RetireChain(head);
    delete fresh;  // never installed; only its encoding reached the log
    MarkChainDead(meta.flash_chain);
    MetaSetChain(pid, {addr->packed()}, /*dirty=*/false);
    if (options_.cache != nullptr) {
      options_.cache->SetTier(pid, llama::CacheTier::kCss,
                              compressed.size());
    }
    res->demoted = true;
    return Status::Ok();
  }
  s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
  delete fresh;
  options_.log_store->MarkDead(*addr);
  return Status::Aborted("page changed during demotion");
}

Status BwTree::FlushAll() {
  // Flush right-to-left. A split's new sibling always sits to the right
  // of its source page, so the sibling's image reaches the log before the
  // source's post-split re-image. Recovery adopts a byte prefix of a torn
  // checkpoint, so any prefix containing the source's re-image (which no
  // longer holds the moved keys) also contains the sibling image that
  // does — a salvage rebuild of the torn state stays lossless.
  std::vector<PageId> leaves = LeafPageIds();
  for (auto it = leaves.rbegin(); it != leaves.rend(); ++it) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Status s = FlushPage(*it, FlushMode::kFullPage);
      if (s.ok()) break;
      if (!s.IsAborted()) return s;
    }
  }
  return options_.log_store != nullptr
             ? RetryIo([&]() { return options_.log_store->Flush(); })
             : Status::Ok();
}

// ---------------------------------------------------------------------
// Scans & page walks
// ---------------------------------------------------------------------

Status BwTree::Scan(const Slice& start, size_t limit,
                    std::vector<std::pair<std::string, std::string>>* out,
                    const Slice& end) {
  s_scans_.fetch_add(1, std::memory_order_relaxed);
  // Escalating publish: kSs sticks if any page load below reads flash.
  opclass::Publish(OpClass::kMm);
  out->clear();
  if (limit == 0) return Status::Ok();

  std::string cursor = start.ToString();
  PageId pid = kInvalidPageId;
  for (int hops = 0; hops < 1 << 20; ++hops) {
    EpochGuard guard(&epochs_);
    if (pid == kInvalidPageId) pid = DescendToLeaf(Slice(cursor), nullptr);
    uint64_t w = table_.Get(pid);
    if (w == 0) {
      pid = kInvalidPageId;
      continue;
    }
    if (IsFlashWord(w) ||
        ChainTail(DecodePointer(w))->type != NodeType::kLeafBase) {
      OpContext ctx;
      Status s = LoadAndInstall(pid, w, &ctx);
      if (ctx.flash_reads > 0) opclass::Publish(OpClass::kSs);
      if (!s.ok() && !s.IsAborted()) return s;
      continue;
    }
    Node* head = DecodePointer(w);
    std::unique_ptr<LeafBase> view;
    LeafBase* leaf = nullptr;
    if (head->type == NodeType::kLeafBase) {
      leaf = static_cast<LeafBase*>(head);
    } else {
      view.reset(ConsolidateChain(head));
      if (view == nullptr) {
        pid = kInvalidPageId;
        continue;
      }
      leaf = view.get();
    }
    CacheTouch(pid);

    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), cursor);
    for (; it != leaf->keys.end(); ++it) {
      if (!end.empty() && Slice(*it).compare(end) >= 0) return Status::Ok();
      out->emplace_back(*it, leaf->values[it - leaf->keys.begin()]);
      if (out->size() >= limit) return Status::Ok();
    }
    if (leaf->right_sibling == kInvalidPageId) return Status::Ok();
    // Continue from the sibling; its keys are >= high_key.
    if (!leaf->high_key.empty()) cursor = leaf->high_key;
    pid = leaf->right_sibling;
  }
  return Status::Internal("Scan hop budget exhausted");
}

Result<PageId> BwTree::LeafOf(const Slice& key) {
  EpochGuard guard(&epochs_);
  return DescendToLeaf(key, nullptr);
}

std::vector<PageId> BwTree::LeafPageIds() {
  std::vector<PageId> out;
  EpochGuard guard(&epochs_);
  PageId pid = DescendToLeaf(Slice(""), nullptr);
  int guard_hops = 0;
  while (pid != kInvalidPageId && guard_hops++ < (1 << 22)) {
    out.push_back(pid);
    uint64_t w = table_.Get(pid);
    if (w == 0) break;
    PageId next = kInvalidPageId;
    if (IsFlashWord(w)) {
      // Fences unknown without I/O; load to continue the walk.
      OpContext ctx;
      if (!LoadAndInstall(pid, w, &ctx).ok()) break;
      out.pop_back();
      continue;  // revisit
    }
    Node* head = DecodePointer(w);
    const std::string* high_key = nullptr;
    PageId sib = kInvalidPageId;
    if (ChainFences(head, &high_key, &sib)) {
      next = sib;
    } else if (ChainTail(head)->type == NodeType::kFlashPointer) {
      OpContext ctx;
      if (!LoadAndInstall(pid, w, &ctx).ok()) break;
      out.pop_back();
      continue;
    }
    pid = next;
  }
  return out;
}

bool BwTree::IsLeafResident(PageId pid) const {
  // Self-guarding: callable off the op path (tests, resident_leaves).
  // A concurrent consolidation may retire the chain between the word
  // read and the tail walk; the guard must cover both. Guarded callers
  // (EvictPage, HousekeepingScan) just re-enter — a TLS depth bump.
  EpochGuard guard(&epochs_);
  uint64_t w = table_.Get(pid);
  if (w == 0 || IsFlashWord(w)) return false;
  const Node* tail = ChainTail(DecodePointer(w));
  return tail->type == NodeType::kLeafBase;
}

bool BwTree::IsDirty(PageId pid) const {
  EpochGuard guard(&epochs_);  // self-guarding, as IsLeafResident
  uint64_t w = table_.Get(pid);
  if (w == 0 || IsFlashWord(w)) return false;
  const Node* head = DecodePointer(w);
  const Node* tail = ChainTail(head);
  if (head != tail) return true;  // deltas present
  PageMeta meta = MetaGet(pid);
  if (tail->type == NodeType::kLeafBase) {
    return meta.base_dirty || meta.flash_chain.empty();
  }
  return false;
}

// ---------------------------------------------------------------------
// Page merges (remove-node / merge-delta SMO)
// ---------------------------------------------------------------------

Status BwTree::TryMergeRight(PageId left_pid) {
  EpochGuard guard(&epochs_);

  // Both pages must be resident single bases (consolidate on demand).
  auto resolve_base = [&](PageId pid, uint64_t* word) -> LeafBase* {
    uint64_t w = table_.Get(pid);
    if (w == 0 || IsFlashWord(w)) return nullptr;
    Node* head = DecodePointer(w);
    if (head->type != NodeType::kLeafBase) {
      if (head->type == NodeType::kInnerBase ||
          head->type == NodeType::kRemoveNode) {
        return nullptr;
      }
      MaybeConsolidateForced(pid);
      w = table_.Get(pid);
      if (w == 0 || IsFlashWord(w)) return nullptr;
      head = DecodePointer(w);
      if (head->type != NodeType::kLeafBase) return nullptr;
    }
    *word = w;
    return static_cast<LeafBase*>(head);
  };

  uint64_t left_word = 0;
  LeafBase* left = resolve_base(left_pid, &left_word);
  if (left == nullptr) {
    return Status::FailedPrecondition("left page not mergeable");
  }
  PageId right_pid = left->right_sibling;
  if (right_pid == kInvalidPageId) {
    return Status::FailedPrecondition("no right sibling");
  }
  uint64_t right_word = 0;
  LeafBase* right = resolve_base(right_pid, &right_word);
  if (right == nullptr) {
    return Status::FailedPrecondition("right page not mergeable");
  }
  if (left->PayloadBytes() + right->PayloadBytes() >
      options_.max_page_bytes) {
    return Status::FailedPrecondition("combined page would be oversized");
  }

  // Step 1: mark the right page removed. From here every operation that
  // lands on it redirects to the left sibling.
  auto* remove = new RemoveNodeDelta();
  remove->left_pid = left_pid;
  remove->next = right;
  remove->chain_length = 1;
  if (!table_.Cas(right_pid, right_word, EncodePointer(remove))) {
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    remove->next = nullptr;
    delete remove;
    return Status::Aborted("right page changed");
  }

  // Step 2: extend the left page over the removed range. The merge delta
  // takes ownership of the removed page's chain.
  auto* merge = new MergeDelta();
  merge->sep = left->high_key;  // left's old high key == right's low fence
  merge->right_base = right;
  merge->right_chain = remove;
  merge->right_pid = right_pid;
  merge->high_key = right->high_key;
  merge->right_sibling = right->right_sibling;
  merge->next = left;
  merge->chain_length = 1;
  if (!table_.Cas(left_pid, left_word, EncodePointer(merge))) {
    // Roll back: restore the right page and drop the SMO nodes.
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    table_.Cas(right_pid, EncodePointer(remove), EncodePointer(right));
    merge->right_chain = nullptr;
    merge->next = nullptr;
    delete merge;
    remove->next = nullptr;
    RetireNode(remove);  // readers may have seen it
    return Status::Aborted("left page changed");
  }
  s_leaf_merges_.fetch_add(1, std::memory_order_relaxed);
  MetaMarkDirty(left_pid);

  // Step 3: detach the right page id. Readers holding stale parents may
  // still look it up, so the id is recycled only after an epoch passes.
  table_.Set(right_pid, 0);
  PageMeta right_meta = MetaGet(right_pid);
  MarkChainDead(right_meta.flash_chain);
  MetaSetChain(right_pid, {}, false);
  if (options_.cache != nullptr) options_.cache->Erase(right_pid);
  epochs_.Retire([this, right_pid] { table_.Free(right_pid); });

  // Step 4: drop the separator from the parent.
  Status s = RemoveChildFromParent(right_pid, Slice(merge->sep));
  if (!s.ok()) return s;

  // Step 5: fold the merge delta away eagerly (best effort — the generic
  // consolidation path handles it otherwise).
  MaybeConsolidateForced(left_pid);
  if (options_.cache != nullptr) {
    uint64_t w = table_.Get(left_pid);
    if (w != 0 && !IsFlashWord(w)) {
      options_.cache->Resize(left_pid, ChainBytes(DecodePointer(w)));
    }
  }
  return Status::Ok();
}

void BwTree::MaybeConsolidateForced(PageId pid) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    uint64_t w = table_.Get(pid);
    if (w == 0 || IsFlashWord(w)) return;
    Node* head = DecodePointer(w);
    if (head->type == NodeType::kLeafBase ||
        head->type == NodeType::kInnerBase ||
        head->type == NodeType::kRemoveNode) {
      return;
    }
    if (ChainTail(head)->type != NodeType::kLeafBase) return;
    LeafBase* fresh = ConsolidateChain(head);
    if (fresh == nullptr) return;
    bool merged_deltas = head->next != nullptr || head != ChainTail(head);
    if (table_.Cas(pid, w, EncodePointer(fresh))) {
      s_consolidations_.fetch_add(1, std::memory_order_relaxed);
      if (merged_deltas) MetaMarkDirty(pid);
      RetireChain(head);
      if (options_.cache != nullptr) {
        options_.cache->Resize(pid, ChainBytes(fresh));
      }
      return;
    }
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    delete fresh;
  }
}

Status BwTree::RemoveChildFromParent(PageId child_pid,
                                     const Slice& toward_key) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    PageId parent = FindParentOf(child_pid, toward_key);
    if (parent == kInvalidPageId) {
      return Status::Ok();  // already detached (or child was the root)
    }
    uint64_t w = table_.Get(parent);
    if (w == 0 || IsFlashWord(w)) continue;
    Node* head = DecodePointer(w);
    if (head->type != NodeType::kInnerBase) continue;
    auto* inner = static_cast<InnerBase*>(head);

    auto cit = std::find(inner->children.begin(), inner->children.end(),
                         child_pid);
    if (cit == inner->children.end()) return Status::Ok();
    size_t idx = cit - inner->children.begin();

    if (inner->children.size() == 1) {
      if (parent == root_pid_.load(std::memory_order_acquire)) {
        // The root losing its only child would empty the tree, which a
        // merge can never legitimately cause.
        return Status::Internal("root underflow during merge");
      }
      // Removing the parent's only child empties it: detach the parent
      // from the grandparent first (so descents stop routing through
      // it), then release the node. Order matters — clearing the entry
      // first would strand descents on a dead pointer.
      Status s = RemoveChildFromParent(parent, toward_key);
      if (!s.ok()) return s;
      uint64_t pw = table_.Get(parent);
      if (pw != 0 && !IsFlashWord(pw) && table_.Cas(parent, pw, 0)) {
        RetireChain(DecodePointer(pw));
        PageId doomed = parent;
        epochs_.Retire([this, doomed] { table_.Free(doomed); });
      }
      // The child itself still needs detaching if anything else pointed
      // at it; by construction nothing does. Done.
      return Status::Ok();
    }

    if (idx == 0) {
      // The removed child's low boundary is a separator in some ancestor
      // (between the left-neighbor subtree and this parent's subtree).
      // Widen the left subtree first — replace that separator with this
      // parent's first separator — so the removed range routes left
      // BEFORE the child disappears from this parent. Readers hitting
      // the stale child meanwhile follow its RemoveNode redirect.
      Status s = ReplaceBoundarySep(toward_key, Slice(inner->seps[0]));
      if (!s.ok()) return s;
    }

    auto* fresh = new InnerBase(*inner);
    fresh->next = nullptr;
    fresh->children.erase(fresh->children.begin() + idx);
    // The separator to drop: seps[idx-1] separates child idx-1 from idx;
    // for idx == 0 the (already re-routed) range's old first separator
    // goes.
    fresh->seps.erase(fresh->seps.begin() + (idx == 0 ? 0 : idx - 1));
    fresh->search.Build(fresh->seps);

    if (table_.Cas(parent, w, EncodePointer(fresh))) {
      RetireChain(head);
      // Root collapse: a root with one child hands the crown down.
      if (fresh->children.size() == 1 &&
          parent == root_pid_.load(std::memory_order_acquire)) {
        PageId only_child = fresh->children[0];
        PageId expected = parent;
        if (root_pid_.compare_exchange_strong(expected, only_child,
                                              std::memory_order_acq_rel)) {
          s_root_collapses_.fetch_add(1, std::memory_order_relaxed);
          uint64_t pw = table_.Get(parent);
          if (pw != 0 && !IsFlashWord(pw) &&
              table_.Cas(parent, pw, 0)) {
            RetireChain(DecodePointer(pw));
            epochs_.Retire([this, parent] { table_.Free(parent); });
          }
        }
      }
      return Status::Ok();
    }
    s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
    delete fresh;
  }
  return Status::Aborted("parent update kept racing");
}

Status BwTree::ReplaceBoundarySep(const Slice& old_sep,
                                  const Slice& new_sep) {
  // Separator values are unique across the tree, so descend toward
  // old_sep and rewrite the inner that holds it.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    PageId pid = root_pid_.load(std::memory_order_acquire);
    bool replaced = false;
    bool restart = false;
    for (int depth = 0; depth < 64; ++depth) {
      uint64_t w = table_.Get(pid);
      if (w == 0 || IsFlashWord(w)) {
        restart = true;
        break;
      }
      Node* head = DecodePointer(w);
      if (head->type != NodeType::kInnerBase) break;  // reached leaves
      auto* inner = static_cast<InnerBase*>(head);
      size_t idx = std::upper_bound(inner->seps.begin(), inner->seps.end(),
                                    old_sep.ToString()) -
                   inner->seps.begin();
      if (idx >= 1 && Slice(inner->seps[idx - 1]) == old_sep) {
        auto* fresh = new InnerBase(*inner);
        fresh->next = nullptr;
        fresh->seps[idx - 1] = new_sep.ToString();
        fresh->search.Build(fresh->seps);
        if (table_.Cas(pid, w, EncodePointer(fresh))) {
          RetireChain(head);
          replaced = true;
        } else {
          s_cas_failures_.fetch_add(1, std::memory_order_relaxed);
          delete fresh;
          restart = true;
        }
        break;
      }
      pid = inner->children[idx];
    }
    if (replaced) return Status::Ok();
    if (!restart) {
      // No ancestor holds the boundary: the removed range was the
      // leftmost of the tree, which merges never produce.
      return Status::Internal("boundary separator not found");
    }
  }
  return Status::Aborted("boundary replacement kept racing");
}

size_t BwTree::MergeUnderfullLeaves(double fill_target) {
  const uint64_t threshold =
      static_cast<uint64_t>(options_.max_page_bytes * fill_target);
  size_t merges = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (PageId pid : LeafPageIds()) {
      // The sizing walk below dereferences both leaves' chains; without
      // a guard a concurrent consolidation could retire either one
      // under us (use-after-reclaim on this maintenance path). Entered
      // before the word read so the reservation covers it.
      EpochGuard guard(&epochs_);
      uint64_t w = table_.Get(pid);
      if (w == 0 || IsFlashWord(w)) continue;
      Node* head = DecodePointer(w);
      if (head->type != NodeType::kLeafBase) {
        MaybeConsolidateForced(pid);
        w = table_.Get(pid);
        if (w == 0 || IsFlashWord(w)) continue;
        head = DecodePointer(w);
        if (head->type != NodeType::kLeafBase) continue;
      }
      auto* base = static_cast<LeafBase*>(head);
      if (base->right_sibling == kInvalidPageId) continue;
      uint64_t rw = table_.Get(base->right_sibling);
      if (rw == 0 || IsFlashWord(rw)) continue;
      Node* rhead = DecodePointer(rw);
      if (rhead->type != NodeType::kLeafBase) {
        MaybeConsolidateForced(base->right_sibling);
        rw = table_.Get(base->right_sibling);
        if (rw == 0 || IsFlashWord(rw)) continue;
        rhead = DecodePointer(rw);
        if (rhead->type != NodeType::kLeafBase) continue;
      }
      auto* rbase = static_cast<LeafBase*>(rhead);
      if (base->PayloadBytes() + rbase->PayloadBytes() > threshold) {
        continue;
      }
      if (TryMergeRight(pid).ok()) {
        ++merges;
        progress = true;
        break;  // the leaf list changed; rescan
      }
    }
  }
  return merges;
}

bool BwTree::IsUnderConstruction(PageId pid) const {
  MutexLock lk(&construction_mu_);
  return under_construction_.count(pid) != 0;
}

BwTree::HousekeepingStats BwTree::HousekeepingScan(PageId* cursor,
                                                   size_t scan_pages,
                                                   size_t max_flushes,
                                                   FlushMode mode) {
  HousekeepingStats out;
  const PageId high = table_.high_water();
  if (high == 0 || (scan_pages == 0 && max_flushes == 0)) return out;
  PageId pos = *cursor >= high ? 0 : *cursor;
  const size_t slots = std::min<size_t>(std::max<size_t>(scan_pages, 1), high);
  for (size_t i = 0; i < slots; ++i) {
    const PageId pid = pos;
    pos = pos + 1 < high ? pos + 1 : 0;
    EpochGuard guard(&epochs_);
    uint64_t w = table_.Get(pid);
    if (w == 0 || IsFlashWord(w)) continue;
    // Checked after the slot read: a split registers the pid before it
    // installs the real node, so any slot word we act on is either from
    // a registered (skipped) construction or a fully linked page.
    if (IsUnderConstruction(pid)) continue;
    Node* head = DecodePointer(w);
    if (head->type == NodeType::kRemoveNode) continue;
    if (ChainTail(head)->type == NodeType::kInnerBase) continue;
    out.scanned++;
    if (head->chain_length >= options_.consolidate_threshold) {
      // No descent path on this thread; PostSplitToParent falls back to
      // FindParentOf when the path is empty.
      std::vector<PageId> path;
      if (MaybeConsolidate(pid, &path)) out.consolidated++;
    }
    if (out.flushed < max_flushes && IsDirty(pid)) {
      Status s = FlushPage(pid, mode);
      if (s.ok()) {
        out.flushed++;
      } else if (!s.IsAborted() && !out.flush_error) {
        // Aborted = raced a writer (retried on a later pass). Anything
        // else is an I/O problem the caller's health tracking wants.
        out.flush_error = true;
        out.first_error = s;
      }
    }
  }
  *cursor = pos;
  return out;
}

// ---------------------------------------------------------------------
// Restart recovery
// ---------------------------------------------------------------------

void BwTree::DiscardResidentState() {
  epochs_.ReclaimAll();
  for (PageId pid = 0; pid < table_.high_water(); ++pid) {
    uint64_t w = table_.Get(pid);
    if (w != 0 && !IsFlashWord(w)) {
      FreeChain(DecodePointer(w));
      if (options_.cache != nullptr) options_.cache->Erase(pid);
    }
  }
  table_.Reset();
  {
    MutexLock lk(&meta_mu_);
    meta_.clear();
  }
}

Status BwTree::RecoverFromStore() {
  if (options_.log_store == nullptr) {
    return Status::FailedPrecondition("no log store configured");
  }

  // 0. Discard current in-memory state (normally just the bootstrap
  //    empty root leaf).
  DiscardResidentState();

  // 1. Scan the device: newest record per page wins; remember every
  //    visited record so stale ones can be marked dead for GC.
  struct Recovered {
    FlashAddress addr;
    std::string image;
  };
  std::map<PageId, Recovered> latest;
  std::vector<std::pair<PageId, FlashAddress>> visited;
  Status s = options_.log_store->Recover(
      [&](PageId pid, FlashAddress addr, const Slice& image) {
        visited.emplace_back(pid, addr);
        latest[pid] = Recovered{addr, image.ToString()};
      });
  if (!s.ok()) return s;

  if (latest.empty()) {
    // Empty store: restore the bootstrap empty root.
    auto* root = new LeafBase();
    PageId pid = table_.Allocate(EncodePointer(root));
    root_pid_.store(pid, std::memory_order_release);
    CacheInsertOrResize(pid, root);
    return Status::Ok();
  }

  // Steps 2-4 assume the on-media fence chain is a consistent snapshot.
  // A crash between a split SMO's page flushes breaks that (the new right
  // sibling is durable, the parent-side images are not, or vice versa);
  // any structural Corruption below falls back to the salvage rebuild.
  auto fast_path = [&]() -> Status {
  // 2. Restore mapping entries and flash-chain metadata. The newest image
  //    may be a delta page; its back-pointer chain members are live too.
  for (auto& [pid, rec] : latest) {
    if (!table_.AllocateExact(pid, EncodeFlash(rec.addr))) {
      return Status::Internal("page id collision during recovery");
    }
    std::vector<uint64_t> chain;
    chain.push_back(rec.addr.packed());
    std::string image = rec.image;
    uint8_t kind = 0;
    Status ks = PageCodec::PeekKind(Slice(image), &kind);
    if (!ks.ok()) return ks;
    while (kind == PageCodec::kDeltaPage) {
      FlashAddress prev;
      std::vector<DeltaOp> ops;
      Status ds = PageCodec::DecodeDeltaPage(Slice(image), &prev, &ops);
      if (!ds.ok()) return ds;
      chain.push_back(prev.packed());
      Status rs =
          RetryIo([&]() { return options_.log_store->Read(prev, &image); });
      if (!rs.ok()) return rs;
      ks = PageCodec::PeekKind(Slice(image), &kind);
      if (!ks.ok()) return ks;
      if (chain.size() > 64) {
        return Status::Corruption("flash chain too long during recovery");
      }
    }
    MetaSetChain(pid, std::move(chain), /*dirty=*/false);
  }

  // 3. Reconstruct the leaf order from fences. The leftmost leaf is the
  //    one no other leaf points at through right_sibling.
  std::map<PageId, std::pair<std::string, PageId>> fences;  // high, right
  std::set<PageId> pointed_at;
  for (auto& [pid, rec] : latest) {
    // Fences live in the base (full) image at the chain tail.
    PageMeta meta = MetaGet(pid);
    std::string base_image;
    if (meta.flash_chain.size() == 1) {
      base_image = rec.image;
    } else {
      Status rs = RetryIo([&]() {
        return options_.log_store->Read(
            FlashAddress::FromPacked(meta.flash_chain.back()), &base_image);
      });
      if (!rs.ok()) return rs;
    }
    LeafBase leaf;
    Status ds = PageCodec::DecodeAnyLeaf(Slice(base_image), &leaf);
    if (!ds.ok()) return ds;
    fences[pid] = {leaf.high_key, leaf.right_sibling};
    if (leaf.right_sibling != kInvalidPageId) {
      pointed_at.insert(leaf.right_sibling);
    }
  }
  PageId head = kInvalidPageId;
  for (auto& [pid, f] : fences) {
    if (pointed_at.count(pid) == 0) {
      if (head != kInvalidPageId) {
        return Status::Corruption("multiple leaf chain heads in recovery");
      }
      head = pid;
    }
  }
  if (head == kInvalidPageId) {
    return Status::Corruption("no leaf chain head found in recovery");
  }

  std::vector<PageId> leaves;
  std::vector<std::string> seps;  // between consecutive leaves
  PageId cur = head;
  while (cur != kInvalidPageId) {
    auto it = fences.find(cur);
    if (it == fences.end()) {
      return Status::Corruption("broken sibling chain in recovery");
    }
    leaves.push_back(cur);
    if (it->second.second != kInvalidPageId) {
      seps.push_back(it->second.first);  // high key == next leaf's low key
    }
    cur = it->second.second;
    if (leaves.size() > latest.size()) {
      return Status::Corruption("sibling cycle in recovery");
    }
  }
  if (leaves.size() != latest.size()) {
    return Status::Corruption("unreachable leaves in recovery");
  }

  // 4. Bulk-build the inner index bottom-up.
  if (leaves.size() == 1) {
    root_pid_.store(leaves[0], std::memory_order_release);
    return Status::Ok();
  }
  std::vector<PageId> level = leaves;
  std::vector<std::string> level_seps = seps;
  const size_t fanout = options_.max_inner_children;
  while (level.size() > 1) {
    std::vector<PageId> parents;
    std::vector<std::string> parent_seps;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min(fanout, level.size() - i);
      // Avoid leaving a lone child for the final parent.
      if (level.size() - i - take == 1) take -= 1;
      auto* inner = new InnerBase();
      for (size_t c = 0; c < take; ++c) {
        inner->children.push_back(level[i + c]);
        if (c + 1 < take) inner->seps.push_back(level_seps[i + c]);
      }
      inner->search.Build(inner->seps);
      PageId ipid = table_.Allocate(EncodePointer(inner));
      if (ipid == kInvalidPageId) {
        delete inner;
        return Status::ResourceExhausted("mapping table full in recovery");
      }
      if (i + take < level.size()) {
        inner->high_key = level_seps[i + take - 1];
        parent_seps.push_back(level_seps[i + take - 1]);
      }
      parents.push_back(ipid);
      i += take;
    }
    // Link sibling pointers across the new level.
    for (size_t k = 0; k + 1 < parents.size(); ++k) {
      auto* in = static_cast<InnerBase*>(
          DecodePointer(table_.Get(parents[k])));
      in->right_sibling = parents[k + 1];
    }
    level.swap(parents);
    level_seps.swap(parent_seps);
  }
  root_pid_.store(level[0], std::memory_order_release);
  return Status::Ok();
  };  // fast_path

  Status fs = fast_path();
  if (fs.ok()) {
    // Stale records (superseded before the crash) are dead for GC
    // purposes. Done only on success: salvage marks every record dead
    // itself, and double marks would break the auditor's accounting.
    for (auto& [pid, addr] : visited) {
      if (!GcIsLive(pid, addr)) options_.log_store->MarkDead(addr);
    }
    return fs;
  }
  if (!fs.IsCorruption()) return fs;
  return SalvageRebuild(visited);
}

Status BwTree::SalvageRebuild(
    const std::vector<std::pair<PageId, FlashAddress>>& visited) {
  s_salvage_.fetch_add(1, std::memory_order_relaxed);
  DiscardResidentState();

  // Replay every readable record in log order at per-page granularity: a
  // full image replaces the page's state, a delta page applies on top.
  // Deletes become sequenced tombstones (not erasures) so the cross-page
  // merge below cannot resurrect a key from an older page's image.
  struct SalvagedVal {
    uint64_t seq = 0;
    bool tombstone = false;
    std::string value;
  };
  std::map<PageId, std::map<std::string, SalvagedVal>> pages;
  uint64_t seq = 0;
  for (const auto& [pid, addr] : visited) {
    ++seq;
    std::string image;
    Status rs =
        RetryIo([&]() { return options_.log_store->Read(addr, &image); });
    if (!rs.ok()) return rs;
    uint8_t kind = 0;
    if (!PageCodec::PeekKind(Slice(image), &kind).ok()) continue;
    if (PageCodec::IsLeafKind(kind)) {
      LeafBase leaf;
      if (!PageCodec::DecodeAnyLeaf(Slice(image), &leaf).ok()) continue;
      auto& state = pages[pid];
      state.clear();  // a full image is the page's whole state
      for (size_t i = 0; i < leaf.keys.size(); ++i) {
        state[leaf.keys[i]] = SalvagedVal{seq, false, leaf.values[i]};
      }
    } else if (kind == PageCodec::kDeltaPage) {
      FlashAddress prev;
      std::vector<DeltaOp> ops;
      if (!PageCodec::DecodeDeltaPage(Slice(image), &prev, &ops).ok()) {
        continue;
      }
      auto& state = pages[pid];
      for (const DeltaOp& op : ops) {
        if (op.kind == DeltaOp::kInsert) {
          state[op.key] = SalvagedVal{seq, false, op.value};
        } else {
          state[op.key] = SalvagedVal{seq, true, ""};
        }
      }
    }
  }

  // Cross-page newest-wins merge. Pages overlap only through split/merge
  // SMOs, where the newer page's records carry later log positions.
  std::map<std::string, SalvagedVal> merged;
  for (const auto& [pid, state] : pages) {
    for (const auto& [key, val] : state) {
      auto it = merged.find(key);
      if (it == merged.end() || it->second.seq < val.seq) {
        merged[key] = val;
      }
    }
  }

  // Fresh bootstrap root, then rebuild by re-inserting the merged state.
  auto* root = new LeafBase();
  PageId rp = table_.Allocate(EncodePointer(root));
  if (rp == kInvalidPageId) {
    delete root;
    return Status::ResourceExhausted("mapping table full in salvage");
  }
  root_pid_.store(rp, std::memory_order_release);
  CacheInsertOrResize(rp, root);
  for (const auto& [key, val] : merged) {
    if (val.tombstone) continue;
    Status ps = Put(Slice(key), Slice(val.value));
    if (!ps.ok()) return ps;
  }
  // Every on-media record is superseded by the rebuilt in-memory state.
  for (const auto& [pid, addr] : visited) {
    options_.log_store->MarkDead(addr);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// GC integration
// ---------------------------------------------------------------------

bool BwTree::GcIsLive(PageId pid, FlashAddress addr) const {
  PageMeta meta = MetaGet(pid);
  for (uint64_t packed : meta.flash_chain) {
    if (packed == addr.packed()) return true;
  }
  return false;
}

bool BwTree::GcInstall(PageId pid, FlashAddress old_addr,
                       FlashAddress new_addr) {
  // Only simply-relocatable state: a fully evicted page whose single
  // flash record is old_addr. PrepareSegmentForGc guarantees this.
  {
    MutexLock lk(&meta_mu_);
    auto it = meta_.find(pid);
    if (it == meta_.end() || it->second.flash_chain.size() != 1 ||
        it->second.flash_chain[0] != old_addr.packed()) {
      return false;
    }
    it->second.flash_chain[0] = new_addr.packed();
  }
  uint64_t expected = EncodeFlash(old_addr);
  if (table_.Cas(pid, expected, EncodeFlash(new_addr))) return true;
  // Resident page pointing at old_addr via a FlashPointer tail: patch by
  // loading is overkill; PrepareSegmentForGc rewrites those pages, so
  // reaching here means a race. Roll the meta back and report failure.
  MutexLock lk(&meta_mu_);
  auto it = meta_.find(pid);
  if (it != meta_.end() && it->second.flash_chain.size() == 1 &&
      it->second.flash_chain[0] == new_addr.packed()) {
    it->second.flash_chain[0] = old_addr.packed();
  }
  return false;
}

Status BwTree::PrepareSegmentForGc(uint64_t segment_id,
                                   uint64_t segment_bytes) {
  // Every page with (a) a multi-record flash chain touching the segment,
  // or (b) resident state whose single record lives there, gets loaded
  // and re-flushed elsewhere, leaving only simply-relocatable records.
  std::vector<PageId> to_rewrite;
  {
    MutexLock lk(&meta_mu_);
    for (const auto& [pid, meta] : meta_) {
      bool touches = false;
      for (uint64_t packed : meta.flash_chain) {
        FlashAddress a = FlashAddress::FromPacked(packed);
        if (a.offset() / segment_bytes == segment_id) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      uint64_t w = table_.Get(pid);
      bool evicted_simple =
          IsFlashWord(w) && meta.flash_chain.size() == 1;
      if (!evicted_simple) to_rewrite.push_back(pid);
    }
  }
  for (PageId pid : to_rewrite) {
    Status s = LoadPage(pid);
    if (!s.ok()) return s;
    for (int attempt = 0; attempt < 100; ++attempt) {
      // Force a rewrite: mark dirty so FlushPage re-appends elsewhere.
      MetaMarkDirty(pid);
      s = FlushPage(pid, FlushMode::kFullPage);
      if (s.ok()) break;
      if (!s.IsAborted()) return s;
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

BwTreeStats BwTree::stats() const {
  BwTreeStats s;
  for (const OpStatCell& cell : op_cells_) {
    s.gets += cell.gets.load(std::memory_order_relaxed);
    s.puts += cell.puts.load(std::memory_order_relaxed);
    s.deletes += cell.deletes.load(std::memory_order_relaxed);
    s.mm_ops += cell.mm.load(std::memory_order_relaxed);
    s.ss_ops += cell.ss.load(std::memory_order_relaxed);
    s.record_cache_hits += cell.rc_hits.load(std::memory_order_relaxed);
    s.blind_updates += cell.blind.load(std::memory_order_relaxed);
  }
  s.scans = s_scans_.load(std::memory_order_relaxed);
  s.flash_record_reads = s_flash_reads_.load(std::memory_order_relaxed);
  s.consolidations = s_consolidations_.load(std::memory_order_relaxed);
  s.leaf_splits = s_leaf_splits_.load(std::memory_order_relaxed);
  s.inner_splits = s_inner_splits_.load(std::memory_order_relaxed);
  s.root_splits = s_root_splits_.load(std::memory_order_relaxed);
  s.leaf_merges = s_leaf_merges_.load(std::memory_order_relaxed);
  s.root_collapses = s_root_collapses_.load(std::memory_order_relaxed);
  s.cas_failures = s_cas_failures_.load(std::memory_order_relaxed);
  s.read_relocation_retries =
      s_read_relocation_retries_.load(std::memory_order_relaxed);
  s.page_loads = s_loads_.load(std::memory_order_relaxed);
  s.full_flushes = s_full_flushes_.load(std::memory_order_relaxed);
  s.delta_flushes = s_delta_flushes_.load(std::memory_order_relaxed);
  s.compressed_flushes =
      s_compressed_flushes_.load(std::memory_order_relaxed);
  s.compressed_loads = s_compressed_loads_.load(std::memory_order_relaxed);
  s.full_evictions = s_full_evictions_.load(std::memory_order_relaxed);
  s.record_cache_evictions = s_rc_evictions_.load(std::memory_order_relaxed);
  s.bytes_flushed = s_bytes_flushed_.load(std::memory_order_relaxed);
  s.io_retries = s_io_retries_.load(std::memory_order_relaxed);
  s.io_retry_give_ups = s_io_give_ups_.load(std::memory_order_relaxed);
  s.salvage_recoveries = s_salvage_.load(std::memory_order_relaxed);
  s.css_hits = s_css_hits_.load(std::memory_order_relaxed);
  s.css_demotions = s_css_demotions_.load(std::memory_order_relaxed);
  s.css_demotion_refusals = s_css_refusals_.load(std::memory_order_relaxed);
  s.css_raw_bytes_demoted =
      s_css_raw_demoted_.load(std::memory_order_relaxed);
  s.css_stored_bytes_demoted =
      s_css_stored_demoted_.load(std::memory_order_relaxed);
  return s;
}

uint64_t BwTree::MemoryFootprintBytes() const {
  uint64_t total = 0;
  PageId hw = table_.high_water();
  for (PageId pid = 0; pid < hw; ++pid) {
    // Per-slot guard: ChainBytes walks the chain, which a concurrent
    // consolidation may retire. Entered before the word read; scoped per
    // iteration so a long footprint scan never pins an old epoch.
    EpochGuard guard(&epochs_);
    uint64_t w = table_.Get(pid);
    if (w != 0 && !IsFlashWord(w)) {
      total += ChainBytes(DecodePointer(w));
    }
  }
  // The mapping table itself is part of the footprint.
  total += hw * sizeof(uint64_t);
  return total;
}

uint64_t BwTree::resident_leaves() const {
  uint64_t n = 0;
  PageId hw = table_.high_water();
  for (PageId pid = 0; pid < hw; ++pid) {
    if (IsLeafResident(pid)) ++n;
  }
  return n;
}

}  // namespace costperf::bwtree
