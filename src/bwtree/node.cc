#include "bwtree/node.h"

#include <algorithm>
#include <cstring>

#include "common/simd.h"

namespace costperf::bwtree {

void NodeSearchIndex::Build(const std::vector<std::string>& keys) {
  skip = 0;
  slices.clear();
  if (keys.empty()) return;
  // Sorted array: every key shares exactly the common prefix of the
  // first and last ones.
  const std::string& lo = keys.front();
  const std::string& hi = keys.back();
  const size_t max = lo.size() < hi.size() ? lo.size() : hi.size();
  size_t p = 0;
  while (p < max && lo[p] == hi[p]) ++p;
  skip = static_cast<uint32_t>(p);
  slices.reserve(keys.size());
  for (const auto& k : keys) {
    slices.push_back(simd::KeySliceAt(k.data(), k.size(), skip));
  }
}

namespace {

// Orders `key` against the node's common prefix: <0 / >0 place it below
// or above every key in the node; 0 means the slice window decides.
// A key shorter than the prefix that matches what it has of it sorts
// below every node key (they all carry the full prefix plus more).
int ComparePrefix(const Slice& key, const std::string& first_key,
                  uint32_t skip) {
  const size_t take = key.size() < skip ? key.size() : skip;
  int c = take == 0 ? 0 : std::memcmp(key.data(), first_key.data(), take);
  if (c == 0 && key.size() < skip) return -1;
  return c;
}

}  // namespace

size_t NodeLowerBound(const std::vector<std::string>& keys,
                      const NodeSearchIndex& idx, const Slice& key) {
  const size_t n = keys.size();
  if (!idx.Ready(n)) {
    return static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), key,
                         [](const std::string& s, const Slice& k) {
                           return Slice(s).compare(k) < 0;
                         }) -
        keys.begin());
  }
  const int pc = ComparePrefix(key, keys.front(), idx.skip);
  if (pc < 0) return 0;
  if (pc > 0) return n;
  const uint64_t ks = simd::KeySliceAt(key.data(), key.size(), idx.skip);
  size_t pos = simd::LowerBoundU64(idx.slices.data(), n, ks);
  // Slices are only non-strictly monotonic with key order: resolve the
  // run of equal slices (keys agreeing on bytes [skip, skip+8)) with
  // full compares. Runs are short — 8+ shared bytes past the prefix.
  while (pos < n && idx.slices[pos] == ks &&
         Slice(keys[pos]).compare(key) < 0) {
    ++pos;
  }
  return pos;
}

size_t NodeUpperBound(const std::vector<std::string>& seps,
                      const NodeSearchIndex& idx, const Slice& key) {
  const size_t n = seps.size();
  if (!idx.Ready(n)) {
    return static_cast<size_t>(
        std::upper_bound(seps.begin(), seps.end(), key,
                         [](const Slice& k, const std::string& s) {
                           return k.compare(Slice(s)) < 0;
                         }) -
        seps.begin());
  }
  const int pc = ComparePrefix(key, seps.front(), idx.skip);
  if (pc < 0) return 0;
  if (pc > 0) return n;
  const uint64_t ks = simd::KeySliceAt(key.data(), key.size(), idx.skip);
  size_t pos = simd::LowerBoundU64(idx.slices.data(), n, ks);
  while (pos < n && idx.slices[pos] == ks &&
         Slice(seps[pos]).compare(key) <= 0) {
    ++pos;
  }
  return pos;
}

uint64_t NodeBytes(const Node* n) {
  switch (n->type) {
    case NodeType::kLeafBase:
      return static_cast<const LeafBase*>(n)->ApproxBytes();
    case NodeType::kInnerBase:
      return static_cast<const InnerBase*>(n)->ApproxBytes();
    case NodeType::kInsertDelta:
      return static_cast<const InsertDelta*>(n)->ApproxBytes();
    case NodeType::kDeleteDelta:
      return static_cast<const DeleteDelta*>(n)->ApproxBytes();
    case NodeType::kFlashPointer:
      return sizeof(FlashPointer);
    case NodeType::kRemoveNode:
      return sizeof(RemoveNodeDelta);
    case NodeType::kMergeDelta: {
      const auto* m = static_cast<const MergeDelta*>(n);
      // The merge delta carries the absorbed page's chain.
      return sizeof(MergeDelta) + ChainBytes(m->right_chain);
    }
  }
  return sizeof(Node);
}

uint64_t ChainBytes(const Node* head) {
  uint64_t b = 0;
  for (const Node* n = head; n != nullptr; n = n->next) b += NodeBytes(n);
  return b;
}

void FreeChain(Node* head) {
  while (head != nullptr) {
    Node* next = head->next;
    switch (head->type) {
      case NodeType::kLeafBase:
        delete static_cast<LeafBase*>(head);
        break;
      case NodeType::kInnerBase:
        delete static_cast<InnerBase*>(head);
        break;
      case NodeType::kInsertDelta:
        delete static_cast<InsertDelta*>(head);
        break;
      case NodeType::kDeleteDelta:
        delete static_cast<DeleteDelta*>(head);
        break;
      case NodeType::kFlashPointer:
        delete static_cast<FlashPointer*>(head);
        break;
      case NodeType::kRemoveNode:
        delete static_cast<RemoveNodeDelta*>(head);
        break;
      case NodeType::kMergeDelta: {
        auto* m = static_cast<MergeDelta*>(head);
        FreeChain(m->right_chain);  // owned absorbed chain
        delete m;
        break;
      }
    }
    head = next;
  }
}

}  // namespace costperf::bwtree
