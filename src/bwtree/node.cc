#include "bwtree/node.h"

namespace costperf::bwtree {

uint64_t NodeBytes(const Node* n) {
  switch (n->type) {
    case NodeType::kLeafBase:
      return static_cast<const LeafBase*>(n)->ApproxBytes();
    case NodeType::kInnerBase:
      return static_cast<const InnerBase*>(n)->ApproxBytes();
    case NodeType::kInsertDelta:
      return static_cast<const InsertDelta*>(n)->ApproxBytes();
    case NodeType::kDeleteDelta:
      return static_cast<const DeleteDelta*>(n)->ApproxBytes();
    case NodeType::kFlashPointer:
      return sizeof(FlashPointer);
    case NodeType::kRemoveNode:
      return sizeof(RemoveNodeDelta);
    case NodeType::kMergeDelta: {
      const auto* m = static_cast<const MergeDelta*>(n);
      // The merge delta carries the absorbed page's chain.
      return sizeof(MergeDelta) + ChainBytes(m->right_chain);
    }
  }
  return sizeof(Node);
}

uint64_t ChainBytes(const Node* head) {
  uint64_t b = 0;
  for (const Node* n = head; n != nullptr; n = n->next) b += NodeBytes(n);
  return b;
}

void FreeChain(Node* head) {
  while (head != nullptr) {
    Node* next = head->next;
    switch (head->type) {
      case NodeType::kLeafBase:
        delete static_cast<LeafBase*>(head);
        break;
      case NodeType::kInnerBase:
        delete static_cast<InnerBase*>(head);
        break;
      case NodeType::kInsertDelta:
        delete static_cast<InsertDelta*>(head);
        break;
      case NodeType::kDeleteDelta:
        delete static_cast<DeleteDelta*>(head);
        break;
      case NodeType::kFlashPointer:
        delete static_cast<FlashPointer*>(head);
        break;
      case NodeType::kRemoveNode:
        delete static_cast<RemoveNodeDelta*>(head);
        break;
      case NodeType::kMergeDelta: {
        auto* m = static_cast<MergeDelta*>(head);
        FreeChain(m->right_chain);  // owned absorbed chain
        delete m;
        break;
      }
    }
    head = next;
  }
}

}  // namespace costperf::bwtree
