#ifndef COSTPERF_BWTREE_NODE_H_
#define COSTPERF_BWTREE_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hot_path.h"
#include "common/slice.h"
#include "llama/flash_address.h"
#include "mapping/mapping_table.h"

namespace costperf::bwtree {

using mapping::PageId;
using mapping::kInvalidPageId;
using llama::FlashAddress;

// SIMD search accelerator embedded in base nodes: the 8-byte big-endian
// key slice of every key, taken at the node's common-prefix offset
// `skip` (workload keys often share a long prefix — "user000000012345" —
// so slicing at offset 0 would leave every slice identical and the
// vector compare useless). Built once right before a base node is
// installed; the node's key array is immutable afterwards, so the index
// never goes stale on the read path.
//
// Copies deliberately produce an EMPTY index. SMO sites copy a node and
// then mutate its key array in place (ReplaceBoundarySep even keeps the
// array sizes equal, so a size-only staleness guard cannot catch it); a
// copied node therefore degrades to scalar search until Build() is
// explicitly called on the final key array. Ready() is the guard the
// search helpers check before trusting the slices.
//
// Not counted in ApproxBytes: that models the packed on-page image the
// cost model compares layouts with, and the index never goes to flash.
struct NodeSearchIndex {
  uint32_t skip = 0;             // common-prefix bytes skipped per key
  std::vector<uint64_t> slices;  // KeySliceAt(keys[i], skip), same order

  NodeSearchIndex() = default;
  NodeSearchIndex(const NodeSearchIndex&) {}
  NodeSearchIndex& operator=(const NodeSearchIndex&) {
    skip = 0;
    slices.clear();
    return *this;
  }

  // `keys` must be sorted (skip = LCP of front and back covers all).
  void Build(const std::vector<std::string>& keys);
  bool Ready(size_t n) const { return n != 0 && slices.size() == n; }
};

// Index of the first element of sorted `keys` that is >= `key`
// (std::lower_bound). Uses `idx`'s SIMD slice search when it is current
// for `keys`, refined by full string compares over the (short) run of
// equal slices; falls back to scalar binary search otherwise.
COSTPERF_HOT size_t NodeLowerBound(const std::vector<std::string>& keys,
                                   const NodeSearchIndex& idx,
                                   const Slice& key);

// Index of the first element of sorted `seps` that is > `key`
// (std::upper_bound) — the inner-node child-selection rule.
COSTPERF_HOT size_t NodeUpperBound(const std::vector<std::string>& seps,
                                   const NodeSearchIndex& idx,
                                   const Slice& key);

// In-memory node kinds. A logical page is a chain of immutable nodes:
// zero or more deltas prepended (latch-free, via mapping-table CAS) onto a
// base node — or onto a FlashPointer when the base lives on flash
// (the record-cache state of §6.3: deltas stay in memory after the base
// page is evicted).
enum class NodeType : uint8_t {
  kLeafBase,
  kInnerBase,
  kInsertDelta,   // upsert of one record (also carries blind updates)
  kDeleteDelta,   // deletion of one record
  kFlashPointer,  // rest of the page is on flash at `addr`
  kRemoveNode,    // page is being merged into its left sibling
  kMergeDelta,    // left page absorbed the right sibling's contents
};

struct Node {
  NodeType type;
  // Number of delta nodes above (and including) this one; 0 for bases and
  // flash pointers. Triggers consolidation.
  uint16_t chain_length = 0;
  Node* next = nullptr;  // toward the base; nullptr at chain tail

  explicit Node(NodeType t) : type(t) {}
};

// Sorted leaf payload. Immutable once installed.
struct LeafBase : Node {
  LeafBase() : Node(NodeType::kLeafBase) {}

  std::vector<std::string> keys;
  std::vector<std::string> values;
  // Exclusive upper fence; empty string means +infinity.
  std::string high_key;
  // B-link pointer: the sibling holding keys >= high_key.
  PageId right_sibling = kInvalidPageId;
  // SIMD slice index over `keys`; Build() after the final key array is
  // in place, before install. Empty (scalar search) on copies.
  NodeSearchIndex search;

  // Footprint of the page in its packed on-page representation: the
  // paper's Deuteronomy pages are variable-size and ~100% utilized, so a
  // record costs its bytes plus a small per-record slot (length prefixes
  // + offset). This is what M_x compares against MassTree's
  // pointer-linked fixed-fanout layout.
  uint64_t ApproxBytes() const {
    uint64_t b = sizeof(LeafBase);
    for (size_t i = 0; i < keys.size(); ++i) {
      b += keys[i].size() + values[i].size() + 10;
    }
    return b + high_key.size();
  }
  // Payload-only footprint (what a serialized page roughly costs).
  uint64_t PayloadBytes() const {
    uint64_t b = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      b += keys[i].size() + values[i].size();
    }
    return b;
  }
};

// Sorted inner node: children[i] covers keys < seps[i]; children.back()
// covers keys >= seps.back(). Immutable; updated by consolidation-CAS.
struct InnerBase : Node {
  InnerBase() : Node(NodeType::kInnerBase) {}

  std::vector<std::string> seps;
  std::vector<PageId> children;  // seps.size() + 1 entries
  std::string high_key;          // empty = +inf
  PageId right_sibling = kInvalidPageId;
  // SIMD slice index over `seps`; see NodeSearchIndex for the staleness
  // contract (copy-then-mutate SMO sites get an empty index).
  NodeSearchIndex search;

  uint64_t ApproxBytes() const {
    uint64_t b = sizeof(InnerBase) + children.size() * sizeof(PageId);
    for (const auto& s : seps) b += s.size() + sizeof(std::string);
    return b + high_key.size();
  }
};

// Upsert delta. `timestamp` orders blind updates posted by the transaction
// component (§6.2): consolidation and readers pick the version with the
// highest timestamp, falling back to chain order (newer deltas are closer
// to the head) for equal timestamps.
struct InsertDelta : Node {
  InsertDelta() : Node(NodeType::kInsertDelta) {}

  std::string key;
  std::string value;
  uint64_t timestamp = 0;
  bool blind = false;  // posted without reading the base page

  uint64_t ApproxBytes() const {
    return sizeof(InsertDelta) + key.size() + value.size();
  }
};

struct DeleteDelta : Node {
  DeleteDelta() : Node(NodeType::kDeleteDelta) {}

  std::string key;
  uint64_t timestamp = 0;

  uint64_t ApproxBytes() const { return sizeof(DeleteDelta) + key.size(); }
};

// Chain tail standing in for an evicted base page. Carries the evicted
// base's fences when known so blind updates can be routed without I/O.
struct FlashPointer : Node {
  FlashPointer() : Node(NodeType::kFlashPointer) {}

  FlashAddress addr;
  bool fences_known = false;
  std::string high_key;
  PageId right_sibling = kInvalidPageId;
};

// Posted at the head of a page that is being merged away (the canonical
// Bw-tree SMO): operations landing here redirect to the left sibling,
// which carries a MergeDelta covering this page's key range.
struct RemoveNodeDelta : Node {
  RemoveNodeDelta() : Node(NodeType::kRemoveNode) {}

  PageId left_pid = kInvalidPageId;
};

// Posted on the surviving (left) page: logically extends it over the
// removed right sibling's range. Owns the removed page's chain (freed
// with this node), including the LeafBase searched for keys >= sep.
struct MergeDelta : Node {
  MergeDelta() : Node(NodeType::kMergeDelta) {}

  std::string sep;             // low fence of the absorbed range
  LeafBase* right_base = nullptr;   // records of the absorbed page
  Node* right_chain = nullptr;      // owned: the removed page's chain
  PageId right_pid = kInvalidPageId;  // the absorbed page's id
  std::string high_key;             // combined page's new fences
  PageId right_sibling = kInvalidPageId;
};

// Footprint of a single node.
uint64_t NodeBytes(const Node* n);
// Footprint of a whole chain.
uint64_t ChainBytes(const Node* head);
// Deletes every node in the chain. Caller must guarantee no concurrent
// readers (use epoch retirement).
void FreeChain(Node* head);

// --- mapping-table word encoding ---
// Entries hold either a Node* (bit 0 clear) or a flash address (bit 0
// set). Address payload fits in 63 bits (offset 40 + len 24 > 63, so the
// offset is capped at 39 bits / 512 GiB when stored in an entry).

inline uint64_t EncodePointer(Node* n) {
  return reinterpret_cast<uint64_t>(n);
}
inline uint64_t EncodeFlash(FlashAddress a) { return (a.packed() << 1) | 1; }
inline bool IsFlashWord(uint64_t w) { return w & 1; }
inline Node* DecodePointer(uint64_t w) {
  return reinterpret_cast<Node*>(w);
}
inline FlashAddress DecodeFlash(uint64_t w) {
  return FlashAddress::FromPacked(w >> 1);
}

}  // namespace costperf::bwtree

#endif  // COSTPERF_BWTREE_NODE_H_
