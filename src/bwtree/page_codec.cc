#include "bwtree/page_codec.h"

#include "common/coding.h"
#include "compression/compressor.h"

namespace costperf::bwtree {

void PageCodec::EncodeLeaf(const LeafBase& leaf, std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(kFullLeaf));
  PutVarint64(out, leaf.keys.size());
  PutLengthPrefixedSlice(out, Slice(leaf.high_key));
  PutFixed64(out, leaf.right_sibling);
  for (size_t i = 0; i < leaf.keys.size(); ++i) {
    PutLengthPrefixedSlice(out, Slice(leaf.keys[i]));
    PutLengthPrefixedSlice(out, Slice(leaf.values[i]));
  }
}

Status PageCodec::DecodeLeaf(const Slice& image, LeafBase* leaf) {
  const char* p = image.data();
  const char* limit = p + image.size();
  if (p >= limit || static_cast<uint8_t>(*p) != kFullLeaf) {
    return Status::Corruption("not a full leaf image");
  }
  ++p;
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return Status::Corruption("bad record count");
  Slice high_key;
  p = GetLengthPrefixedSlice(p, limit, &high_key);
  if (p == nullptr) return Status::Corruption("bad high key");
  if (static_cast<uint64_t>(limit - p) < sizeof(uint64_t)) {
    return Status::Corruption("missing sibling pointer");
  }
  leaf->high_key = high_key.ToString();
  leaf->right_sibling = DecodeFixed64(p);
  p += sizeof(uint64_t);
  leaf->keys.clear();
  leaf->values.clear();
  leaf->keys.reserve(n);
  leaf->values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slice k, v;
    p = GetLengthPrefixedSlice(p, limit, &k);
    if (p == nullptr) return Status::Corruption("bad key");
    p = GetLengthPrefixedSlice(p, limit, &v);
    if (p == nullptr) return Status::Corruption("bad value");
    leaf->keys.push_back(k.ToString());
    leaf->values.push_back(v.ToString());
  }
  if (p != limit) return Status::Corruption("trailing bytes in leaf image");
  return Status::Ok();
}

void PageCodec::EncodeCompressedLeaf(const LeafBase& leaf,
                                     std::string* out) {
  std::string raw;
  EncodeLeaf(leaf, &raw);
  std::string compressed;
  compression::Compressor::Compress(Slice(raw), &compressed);
  out->clear();
  out->reserve(compressed.size() + 1);
  out->push_back(static_cast<char>(kCompressedLeaf));
  out->append(compressed);
}

Status PageCodec::DecodeAnyLeaf(const Slice& image, LeafBase* leaf) {
  uint8_t kind = 0;
  Status s = PeekKind(image, &kind);
  if (!s.ok()) return s;
  if (kind == kFullLeaf) return DecodeLeaf(image, leaf);
  if (kind != kCompressedLeaf) {
    return Status::Corruption("not a leaf image");
  }
  std::string raw;
  s = compression::Compressor::Decompress(
      Slice(image.data() + 1, image.size() - 1), &raw);
  if (!s.ok()) return s;
  return DecodeLeaf(Slice(raw), leaf);
}

void PageCodec::EncodeDeltaPage(FlashAddress prev,
                                const std::vector<DeltaOp>& ops,
                                std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(kDeltaPage));
  PutFixed64(out, prev.packed());
  PutVarint64(out, ops.size());
  for (const auto& op : ops) {
    out->push_back(static_cast<char>(op.kind));
    PutLengthPrefixedSlice(out, Slice(op.key));
    if (op.kind == DeltaOp::kInsert) {
      PutLengthPrefixedSlice(out, Slice(op.value));
    }
    PutVarint64(out, op.timestamp);
  }
}

Status PageCodec::DecodeDeltaPage(const Slice& image, FlashAddress* prev,
                                  std::vector<DeltaOp>* ops) {
  const char* p = image.data();
  const char* limit = p + image.size();
  if (p >= limit || static_cast<uint8_t>(*p) != kDeltaPage) {
    return Status::Corruption("not a delta page image");
  }
  ++p;
  if (static_cast<uint64_t>(limit - p) < sizeof(uint64_t)) {
    return Status::Corruption("missing prev pointer");
  }
  *prev = FlashAddress::FromPacked(DecodeFixed64(p));
  p += sizeof(uint64_t);
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return Status::Corruption("bad op count");
  ops->clear();
  ops->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (p >= limit) return Status::Corruption("truncated op");
    DeltaOp op;
    uint8_t kind = static_cast<uint8_t>(*p++);
    if (kind > DeltaOp::kDelete) return Status::Corruption("bad op kind");
    op.kind = static_cast<DeltaOp::Kind>(kind);
    Slice k;
    p = GetLengthPrefixedSlice(p, limit, &k);
    if (p == nullptr) return Status::Corruption("bad op key");
    op.key = k.ToString();
    if (op.kind == DeltaOp::kInsert) {
      Slice v;
      p = GetLengthPrefixedSlice(p, limit, &v);
      if (p == nullptr) return Status::Corruption("bad op value");
      op.value = v.ToString();
    }
    p = GetVarint64(p, limit, &op.timestamp);
    if (p == nullptr) return Status::Corruption("bad op timestamp");
    ops->push_back(std::move(op));
  }
  if (p != limit) {
    return Status::Corruption("trailing bytes in delta page image");
  }
  return Status::Ok();
}

Status PageCodec::PeekKind(const Slice& image, uint8_t* kind) {
  if (image.empty()) return Status::Corruption("empty page image");
  *kind = static_cast<uint8_t>(image[0]);
  if (*kind > kCompressedLeaf) return Status::Corruption("unknown page kind");
  return Status::Ok();
}

}  // namespace costperf::bwtree
