#ifndef COSTPERF_BWTREE_BWTREE_H_
#define COSTPERF_BWTREE_BWTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bwtree/node.h"
#include "bwtree/page_codec.h"
#include "common/batch_op.h"
#include "common/epoch.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "llama/cache_manager.h"
#include "llama/log_store.h"
#include "mapping/mapping_table.h"

namespace costperf::bwtree {

struct BwTreeOptions {
  size_t mapping_capacity = 1 << 20;
  // Consolidated-leaf payload size that triggers a split. The paper's
  // Deuteronomy configuration caps pages at 4K with ~100% utilization.
  uint64_t max_page_bytes = 4096;
  // Delta-chain length that triggers consolidation on access.
  uint32_t consolidate_threshold = 8;
  // Probes MultiGetBatch keeps in flight per thread (the AMAC interleave
  // width): each probe advances one descent hop, prefetches its next
  // node, then yields, so up to this many cache misses overlap instead
  // of serializing. 1 degenerates to sequential Gets.
  uint32_t batch_interleave = 8;
  // Inner-node fanout cap before an inner split.
  size_t max_inner_children = 64;
  // Log-structured store for page flush/load. May be null for a purely
  // in-memory tree (paging calls then fail with FailedPrecondition).
  llama::LogStructuredStore* log_store = nullptr;
  // Optional resident-set accounting (leaf pages only; the index is
  // assumed cached, as the paper does for blind updates).
  llama::CacheManager* cache = nullptr;
  // Bounded retry for transient device errors on the read/flush paths.
  // max_attempts = 1 disables retrying. The backoff is kept short: these
  // are in-memory-simulated I/Os, and tests inject high error rates.
  RetryPolicy io_retry = ShortBackoffRetry();

  static RetryPolicy ShortBackoffRetry() {
    RetryPolicy p;
    p.max_attempts = 4;
    p.initial_backoff_nanos = 20'000;
    return p;
  }
};

// How a dirty page reaches flash (paper Fig. 5 and §7.2).
enum class FlushMode {
  kFullPage,   // write the full consolidated page image
  kDeltaOnly,  // write just the in-memory deltas with a back-pointer to
               // the previously stored image (valid when the base page is
               // already on flash; falls back to full otherwise)
  kCompressedPage,  // CSS tier: full consolidated image, compressed —
                    // smaller media footprint, decompression CPU on load
};

// What stays in memory after eviction (paper §6.3).
enum class EvictMode {
  kFullEviction,  // mapping entry becomes a flash address
  kKeepDeltas,    // record cache: deltas survive, base page is dropped
};

// When is a page worth demoting to the compressed tier? Both knobs guard
// the Fig. 8 breakeven from the cost side: a page that barely compresses
// saves too little media to pay its decompression tax, and a page that
// keeps getting promoted back pays that tax over and over.
struct CssPolicy {
  // Refuse demotion when compressed/raw exceeds this (measured from the
  // single Compress call that produces the stored image).
  double min_ratio = 0.85;
  // Refuse pages already promoted out of CSS more than this many times.
  uint32_t max_reheats = 4;
};

// What a successful (or refused) demotion did, for the tiering loop's
// accounting and the measured-ratio feed to the cost model.
struct DemoteResult {
  bool demoted = false;
  uint64_t raw_bytes = 0;     // consolidated image size
  uint64_t stored_bytes = 0;  // compressed bytes that reached the log
};

struct BwTreeStats {
  // Operation counts.
  uint64_t gets = 0, puts = 0, deletes = 0, scans = 0;
  // MM = completed without any flash read; SS = needed >= 1 flash read.
  uint64_t mm_ops = 0, ss_ops = 0;
  uint64_t flash_record_reads = 0;  // individual log-store record reads
  // Gets answered from an in-memory delta while the base page was on
  // flash (§6.3 record-cache hits: an I/O avoided).
  uint64_t record_cache_hits = 0;
  uint64_t blind_updates = 0;  // puts/deletes posted onto non-resident bases
  // Structure maintenance.
  uint64_t consolidations = 0;
  uint64_t leaf_splits = 0, inner_splits = 0, root_splits = 0;
  uint64_t leaf_merges = 0, root_collapses = 0;
  uint64_t cas_failures = 0;
  // Flash loads that read reclaimed media because GC relocated the page
  // mid-read (benign: the op retried against the new address).
  uint64_t read_relocation_retries = 0;
  // Paging.
  uint64_t page_loads = 0;
  uint64_t full_flushes = 0, delta_flushes = 0, compressed_flushes = 0;
  uint64_t compressed_loads = 0;
  uint64_t full_evictions = 0, record_cache_evictions = 0;
  uint64_t bytes_flushed = 0;
  // Tier hierarchy (§7.2 / Fig. 8).
  uint64_t css_hits = 0;  // page loads satisfied by a compressed record
  uint64_t css_demotions = 0;          // DemotePage successes
  uint64_t css_demotion_refusals = 0;  // policy said CSS would be a loss
  uint64_t css_raw_bytes_demoted = 0;     // pre-compression image bytes
  uint64_t css_stored_bytes_demoted = 0;  // bytes that reached the log
  // Fault handling.
  uint64_t io_retries = 0;          // extra attempts after transient errors
  uint64_t io_retry_give_ups = 0;   // retry budgets exhausted
  uint64_t salvage_recoveries = 0;  // RecoverFromStore salvage fallbacks
};

// Latch-free B-tree over a mapping table with delta-record updates,
// page consolidation, B-link splits, and LLAMA-backed paging — the data
// component of the paper's Deuteronomy configuration.
//
// Concurrency: readers/writers are latch-free (epoch-protected CAS on
// mapping entries). Flush/evict/GC entry points are safe to call
// concurrently with operations but are expected to run on maintenance
// paths (they may return Aborted when racing a writer; callers retry).
//
// Epoch discipline: every public operation acquires its own EpochGuard on
// epochs_; the private descent/consolidation/SMO helpers instead declare
// REQUIRES_EPOCH(epochs_) — they dereference decoded mapping-table nodes
// and must run inside the caller's guard. Under -DCOSTPERF_ANALYZE=ON an
// unguarded call path is a compile error; debug builds also hit
// EpochManager::AssertActive() backstops on the descent/search paths.
// ~BwTree, DiscardResidentState and SalvageRebuild dereference without
// guards by explicit single-threaded contract (no concurrent access).
class BwTree {
 public:
  explicit BwTree(BwTreeOptions options = {});
  ~BwTree();

  BwTree(const BwTree&) = delete;
  BwTree& operator=(const BwTree&) = delete;

  // --- data operations ---

  // Blind upsert: never reads the base page (paper §6.2); a timestamped
  // variant lets the transaction component order its updates.
  Status Put(const Slice& key, const Slice& value) {
    return Put(key, value, /*timestamp=*/0);
  }
  Status Put(const Slice& key, const Slice& value, uint64_t timestamp);

  Result<std::string> Get(const Slice& key);
  // Out-param read: writes the value into *value_out (capacity reused by
  // callers), NotFound when the key is absent.
  Status Get(const Slice& key, std::string* value_out);

  // One probe of a batched read: the stack-wide shared op type (see
  // common/batch_op.h), so KvStore-layer callers pass their op arrays
  // down without translation. On return *status is Ok (*value written),
  // NotFound, or the error the probe hit.
  using BatchGetOp = ::costperf::BatchGetOp;

  // Batched point reads. Equivalent to Get(op.key, op.value) per op, but
  // runs up to `interleave` probes (0 = options().batch_interleave) as
  // an AMAC-style state machine: each probe advances one hop — mapping
  // resolve, inner-node descent, leaf-chain search — issues a software
  // prefetch for the node it will touch next, and yields to the next
  // probe, so the group's DRAM misses overlap instead of serializing.
  // One EpochGuard covers each interleave group (amortizing the
  // reservation CAS over the group); stats/consolidation behavior
  // matches Get exactly, per probe.
  void MultiGetBatch(BatchGetOp* ops, size_t count, size_t interleave = 0);

  // Blind delete (posts a delete delta).
  Status Delete(const Slice& key) { return Delete(key, 0); }
  Status Delete(const Slice& key, uint64_t timestamp);

  // Collects up to `limit` records with key >= start (and < end when end
  // is non-empty), in key order.
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out,
              const Slice& end = Slice());

  // --- paging operations (driven by the caching store / cache manager) ---

  Status FlushPage(PageId pid, FlushMode mode);
  Status EvictPage(PageId pid, EvictMode mode);
  // Demotes a resident leaf to the compressed tier: consolidates the
  // chain, compresses the image once (the same call that measures the
  // ratio), appends it as a compressed log record, and swings the
  // mapping entry to the flash address — flush and eviction in one CAS.
  // The cache manager keeps tracking the page in the CSS tier (recency,
  // compressed footprint, reheats); the next access promotes it back
  // through the ordinary load path. Refuses with FailedPrecondition when
  // `policy` says CSS would be a loss for this page (poor ratio or too
  // many reheats) or when the base is not resident; Aborted on races.
  Status DemotePage(PageId pid, const CssPolicy& policy,
                    DemoteResult* out = nullptr);
  // Makes the page resident (SS work happens here).
  Status LoadPage(PageId pid);
  // Flushes every dirty leaf (full images).
  Status FlushAll();

  // Leaf page currently responsible for `key`.
  Result<PageId> LeafOf(const Slice& key);
  // All leaf page ids in key order (walks the B-link chain).
  std::vector<PageId> LeafPageIds();
  bool IsLeafResident(PageId pid) const;
  bool IsDirty(PageId pid) const;

  // --- structure maintenance ---

  // Merges the right sibling of `left_pid` into it when their combined
  // payload fits comfortably in a page (the canonical Bw-tree remove-
  // node/merge-delta SMO). Both pages must be resident, consolidated and
  // quiescent enough for the three CAS steps; returns Aborted on any
  // race (callers retry on a later maintenance pass) and
  // FailedPrecondition when the pair is not mergeable.
  Status TryMergeRight(PageId left_pid);

  // Maintenance sweep: merges adjacent underfull leaves (combined payload
  // <= `fill_target` * max_page_bytes). Returns the number of merges.
  size_t MergeUnderfullLeaves(double fill_target = 0.5);

  // One quota-bounded slice of background housekeeping: scans up to
  // `scan_pages` mapping slots starting at *cursor (wrapping at the
  // high-water mark), consolidating leaves whose delta chain reached the
  // threshold and flushing up to `max_flushes` dirty leaves in `mode`.
  // Resumable: *cursor advances so successive calls cover the whole
  // table; all work is best-effort CAS (safe concurrent with foreground
  // ops). Counts are approximate under concurrency (counters only).
  struct HousekeepingStats {
    size_t scanned = 0;       // leaf chains examined
    size_t consolidated = 0;  // chains consolidated (or split)
    size_t flushed = 0;       // dirty leaves flushed
    bool flush_error = false; // a flush failed with a non-Aborted status
    Status first_error;       // first such status (Ok when none)
  };
  HousekeepingStats HousekeepingScan(PageId* cursor, size_t scan_pages,
                                     size_t max_flushes, FlushMode mode);

  // --- restart recovery ---

  // Rebuilds the tree from the log-structured store after a restart:
  // re-scans the device for the newest image of every page, restores the
  // mapping entries (at their original page ids) as flash pointers, and
  // bulk-builds the inner index from the recovered leaf fence chain.
  // Discards any current in-memory contents; call on a freshly
  // constructed tree over the old device. Unflushed pre-crash state is
  // lost, by design (the transaction component's redo log covers it).
  //
  // When the fence chain on media is structurally inconsistent (a crash
  // between a split's page flushes leaves mixed-version fences), recovery
  // falls back to a salvage rebuild: every readable record is replayed in
  // log order, merged newest-wins per key, and re-inserted into a fresh
  // tree — structure is rebuilt from scratch, data is kept. Counted in
  // stats().salvage_recoveries.
  Status RecoverFromStore();

  // --- GC integration (see LogStructuredStore::Collect*) ---

  bool GcIsLive(PageId pid, FlashAddress addr) const;
  bool GcInstall(PageId pid, FlashAddress old_addr, FlashAddress new_addr);
  // Rewrites every page that has multi-record or resident state in the
  // segment so only simply-relocatable records remain live there.
  Status PrepareSegmentForGc(uint64_t segment_id, uint64_t segment_bytes);

  // --- introspection ---

  BwTreeStats stats() const;
  // Total bytes of resident chains (the Bw-tree memory footprint; used to
  // measure the paper's M_x).
  uint64_t MemoryFootprintBytes() const;
  uint64_t resident_leaves() const;
  // Runs an epoch reclamation pass; call periodically from maintenance.
  size_t ReclaimMemory() { return epochs_.TryReclaim(); }

  // RETURN_CAPABILITY lets callers write `EpochGuard g(tree->epochs())`
  // and have the analysis resolve the held capability to epochs_.
  EpochManager* epochs() RETURN_CAPABILITY(epochs_) { return &epochs_; }
  mapping::MappingTable* mapping_table() { return &table_; }
  PageId root_pid() const { return root_pid_.load(std::memory_order_acquire); }
  const BwTreeOptions& options() const { return options_; }

  // Snapshot of a page's paging metadata, exposed for the analysis layer
  // (analysis::BwTreeValidator / LogStoreAuditor need the flash chain to
  // cross-check delta-page back-pointers and log-record liveness).
  struct PageDebugInfo {
    // Flash records backing the page, newest first (see PageMeta).
    std::vector<uint64_t> flash_chain;
    bool base_dirty = false;
  };
  PageDebugInfo DebugPageInfo(PageId pid) const;

 private:
  struct PageMeta {
    // Flash records backing this page, newest first. Element 0 is the
    // image the mapping entry / FlashPointer refers to; later elements
    // are reachable via delta-page back-pointers.
    std::vector<uint64_t> flash_chain;
    // True when the resident base's content is newer than flash_chain.
    bool base_dirty = false;
  };

  // Per-operation bookkeeping for MM/SS classification.
  struct OpContext {
    uint32_t flash_reads = 0;
    // Of those, reads whose log record was stored compressed (CSS tier):
    // the op paid decompression CPU instead of a larger SS transfer.
    uint32_t compressed_reads = 0;
    bool touched_flash_tail = false;
  };

  // Finds the leaf pid covering `key`; records the inner path (root
  // first) for split posting.
  PageId DescendToLeaf(const Slice& key, std::vector<PageId>* path)
      REQUIRES_EPOCH(epochs_);

  // Walks a resident chain for `key`. Returns true when an answer was
  // determined (found or definitely-deleted); false when the base is
  // needed but on flash.
  bool SearchResidentChain(Node* head, const Slice& key, bool* found,
                           std::string* value) const
      REQUIRES_EPOCH(epochs_);

  // Per-probe state of the MultiGetBatch machine (defined in bwtree.cc).
  struct BatchProbe;
  struct OpStatCell;  // defined below (per-thread stat cells)
  // Advances one probe by one hop/quantum; runs inside the group guard
  // (decoded node pointers in the probe state outlive the quantum only
  // because the guard blocks reclamation).
  COSTPERF_HOT void StepProbe(BatchProbe* p, OpStatCell& cell)
      REQUIRES_EPOCH(epochs_);

  // Loads the flash portion of `pid` and installs a consolidated base.
  // `entry_word` is the observed mapping word. On success the page is
  // resident.
  Status LoadAndInstall(PageId pid, uint64_t entry_word, OpContext* ctx)
      REQUIRES_EPOCH(epochs_);

  // Reads and applies the flash image chain starting at addr into `leaf`.
  Status MaterializeFromFlash(FlashAddress addr, LeafBase* leaf,
                              OpContext* ctx);

  // Builds a consolidated LeafBase from a fully resident chain.
  LeafBase* ConsolidateChain(Node* head) const REQUIRES_EPOCH(epochs_);

  // Split durability ordering: if `sib` (a page's right sibling) has never
  // reached flash, flush it first. The log is sequential, so "sibling
  // before source" guarantees any crash that preserves the source's
  // post-split image — which no longer carries the migrated keys — also
  // preserves the sibling image that does. FlushAll gets the same
  // invariant by flushing right-to-left; this covers single-page flushes
  // (background eviction, CSS re-flush, GC page rewrites).
  Status EnsureSplitSiblingDurable(PageId sib) REQUIRES_EPOCH(epochs_);

  // Attempts consolidation (and split if oversized). Best effort;
  // returns true when it installed a consolidated page or a split.
  bool MaybeConsolidate(PageId pid, std::vector<PageId>* path)
      REQUIRES_EPOCH(epochs_);
  // Consolidates regardless of chain length (merge-delta folding).
  void MaybeConsolidateForced(PageId pid) REQUIRES_EPOCH(epochs_);

  // Splits `base` (already consolidated, oversized); posts to parent.
  // `expected_word` is the chain the consolidation was built from.
  void SplitLeaf(PageId pid, uint64_t expected_word, LeafBase* base,
                 std::vector<PageId>* path) REQUIRES_EPOCH(epochs_);

  // Inserts (sep, right_pid) into the parent of left_pid; creates a new
  // root when left_pid is the root.
  void PostSplitToParent(PageId left_pid, const std::string& sep,
                         PageId right_pid, std::vector<PageId>* path)
      REQUIRES_EPOCH(epochs_);
  void SplitInner(PageId pid, InnerBase* inner, std::vector<PageId>* path)
      REQUIRES_EPOCH(epochs_);

  // Finds the inner node whose children contain `child_pid`, descending
  // toward `toward_key`. kInvalidPageId when child is the root or not
  // found.
  PageId FindParentOf(PageId child_pid, const Slice& toward_key)
      REQUIRES_EPOCH(epochs_);

  // Removes `child_pid` (and its separator) from its parent after a
  // merge; collapses the root when it shrinks to one child.
  Status RemoveChildFromParent(PageId child_pid, const Slice& toward_key)
      REQUIRES_EPOCH(epochs_);
  // Rewrites the unique ancestor separator equal to old_sep to new_sep
  // (used when the removed page was its parent's first child).
  Status ReplaceBoundarySep(const Slice& old_sep, const Slice& new_sep)
      REQUIRES_EPOCH(epochs_);

  // Runs fn under the configured transient-error retry policy and folds
  // the attempt counts into stats.
  Status RetryIo(const std::function<Status()>& fn);
  Result<FlashAddress> RetryAppend(PageId pid, const Slice& image);
  Result<FlashAddress> RetryAppendCompressed(PageId pid,
                                             const Slice& compressed,
                                             uint32_t raw_len);

  // Frees every resident chain and resets mapping/meta state (recovery
  // preamble, shared by the fast path and the salvage fallback).
  void DiscardResidentState();
  // Last-resort recovery: replay every readable log record in log order,
  // merge newest-wins per key, rebuild the tree from scratch via Put.
  Status SalvageRebuild(
      const std::vector<std::pair<PageId, FlashAddress>>& visited);

  // Chain tail helpers.
  static Node* ChainTail(Node* head);
  static const Node* ChainTail(const Node* head);

  // Retire an unlinked chain/node through the epoch. The caller must
  // still be inside the guard it held when it unlinked the chain: the
  // retire epoch stamp must cover every reader that could have seen the
  // old mapping word.
  void RetireChain(Node* head) REQUIRES_EPOCH(epochs_);
  void RetireNode(Node* n) REQUIRES_EPOCH(epochs_);

  void CacheInsertOrResize(PageId pid, Node* head);
  void CacheTouch(PageId pid);

  // Meta accessors.
  void MetaSetChain(PageId pid, std::vector<uint64_t> chain, bool dirty)
      EXCLUDES(meta_mu_);
  void MetaPushDelta(PageId pid, uint64_t addr) EXCLUDES(meta_mu_);
  void MetaMarkDirty(PageId pid) EXCLUDES(meta_mu_);
  PageMeta MetaGet(PageId pid) const EXCLUDES(meta_mu_);
  void MarkChainDead(const std::vector<uint64_t>& chain);

  BwTreeOptions options_;
  mapping::MappingTable table_;
  // mutable: const introspection paths (IsDirty, MemoryFootprintBytes…)
  // take their own guards before dereferencing resident chains.
  mutable EpochManager epochs_;
  std::atomic<PageId> root_pid_;

  mutable Mutex meta_mu_;
  std::unordered_map<PageId, PageMeta> meta_ GUARDED_BY(meta_mu_);

  // Page ids allocated by an in-flight split whose link CAS has not
  // resolved yet. Raw mapping-slot scanners (HousekeepingScan) must skip
  // them: until the split's CAS publishes the left page, the splitting
  // thread still owns the right page and reclaims it on CAS failure —
  // a concurrent flush would race that reclamation. Pages reached
  // through tree traversal or sibling links are never in this set.
  mutable Mutex construction_mu_;
  std::set<PageId> under_construction_ GUARDED_BY(construction_mu_);
  bool IsUnderConstruction(PageId pid) const;

  // Hot-path op counters live in per-thread cells indexed by the epoch
  // thread slot, so an increment is a relaxed load+store on a private
  // cache line instead of a locked RMW on a line every worker shares.
  // stats() sums the cells; totals stay exact while live threads fit in
  // EpochManager::kMaxThreads (beyond that, slot reuse can drop stat
  // increments — counters only, never correctness).
  struct alignas(64) OpStatCell {
    std::atomic<uint64_t> gets{0}, puts{0}, deletes{0};
    std::atomic<uint64_t> mm{0}, ss{0}, rc_hits{0}, blind{0};
  };
  OpStatCell& StatCell() { return op_cells_[epochs_.RegisterThread()]; }
  static void Bump(std::atomic<uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }
  mutable OpStatCell op_cells_[EpochManager::kMaxThreads];

  // Stats (relaxed atomics; snapshot via stats()).
  mutable std::atomic<uint64_t> s_scans_{0};
  mutable std::atomic<uint64_t> s_flash_reads_{0};
  mutable std::atomic<uint64_t> s_consolidations_{0}, s_leaf_splits_{0},
      s_inner_splits_{0}, s_root_splits_{0}, s_leaf_merges_{0},
      s_root_collapses_{0}, s_cas_failures_{0},
      s_read_relocation_retries_{0};
  mutable std::atomic<uint64_t> s_loads_{0}, s_full_flushes_{0},
      s_delta_flushes_{0}, s_compressed_flushes_{0}, s_compressed_loads_{0},
      s_full_evictions_{0}, s_rc_evictions_{0}, s_bytes_flushed_{0};
  mutable std::atomic<uint64_t> s_io_retries_{0}, s_io_give_ups_{0},
      s_salvage_{0};
  mutable std::atomic<uint64_t> s_css_hits_{0}, s_css_demotions_{0},
      s_css_refusals_{0}, s_css_raw_demoted_{0}, s_css_stored_demoted_{0};
  // Decorrelates concurrent retry jitter streams (see RetryTransient).
  std::atomic<uint64_t> retry_salt_{0};
};

}  // namespace costperf::bwtree

#endif  // COSTPERF_BWTREE_BWTREE_H_
