#include "analysis/log_store_auditor.h"

#include <string>

namespace costperf::analysis {

namespace {

std::string SegEntity(uint64_t id) { return "segment " + std::to_string(id); }

}  // namespace

std::vector<Violation> LogStoreAuditor::Check() {
  std::vector<Violation> out;
  const llama::LogStoreStats stats = store_->stats();
  const std::vector<llama::SegmentInfo> segments = store_->segments();
  const uint64_t open_id = store_->open_segment_id();
  const uint64_t segment_bytes = store_->options().segment_bytes;
  constexpr uint64_t kHdr = llama::LogStructuredStore::kSegmentHeaderBytes;

  uint64_t directory_record_bytes = 0;
  uint64_t directory_dead_bytes = 0;
  uint64_t directory_css_stored = 0;
  uint64_t directory_css_raw = 0;
  bool open_found = false;

  for (const llama::SegmentInfo& seg : segments) {
    if (seg.used_bytes < kHdr || seg.used_bytes > segment_bytes) {
      out.push_back(Violation{
          "LogStoreAuditor", "segment-bounds", SegEntity(seg.id),
          "used_bytes " + std::to_string(seg.used_bytes) +
              " outside [" + std::to_string(kHdr) + ", " +
              std::to_string(segment_bytes) + "]"});
    }
    const uint64_t record_bytes =
        seg.used_bytes >= kHdr ? seg.used_bytes - kHdr : 0;
    if (seg.dead_bytes > record_bytes) {
      out.push_back(Violation{
          "LogStoreAuditor", "dead-exceeds-live", SegEntity(seg.id),
          std::to_string(seg.dead_bytes) + " dead bytes exceed the " +
              std::to_string(record_bytes) + " record bytes ever written"});
    }
    if (seg.id == open_id) {
      open_found = true;
      if (seg.sealed) {
        out.push_back(Violation{
            "LogStoreAuditor", "open-segment", SegEntity(seg.id),
            "open segment is marked sealed"});
      }
    } else if (!seg.sealed) {
      out.push_back(Violation{
          "LogStoreAuditor", "open-segment", SegEntity(seg.id),
          "unsealed segment other than the open one"});
    }
    directory_record_bytes += record_bytes;
    directory_dead_bytes += seg.dead_bytes;
    directory_css_stored += seg.css_stored_bytes;
    directory_css_raw += seg.css_raw_bytes;
    if (seg.css_stored_bytes > record_bytes) {
      out.push_back(Violation{
          "LogStoreAuditor", "css-exceeds-live", SegEntity(seg.id),
          std::to_string(seg.css_stored_bytes) +
              " compressed stored bytes exceed the " +
              std::to_string(record_bytes) + " record bytes ever written"});
    }
  }

  if (!open_found) {
    out.push_back(Violation{
        "LogStoreAuditor", "open-segment", SegEntity(open_id),
        "open segment has no directory entry"});
  }

  const uint64_t produced = stats.bytes_appended + stats.recovered_bytes;
  const uint64_t accounted = directory_record_bytes + stats.bytes_collected;
  if (produced != accounted) {
    out.push_back(Violation{
        "LogStoreAuditor", "space-accounting", "log",
        "appended+recovered = " + std::to_string(produced) +
            " but directory+collected = " + std::to_string(accounted) +
            " (directory " + std::to_string(directory_record_bytes) +
            ", collected " + std::to_string(stats.bytes_collected) + ")"});
  }

  // Recovery must account every byte it adopted: the per-segment sums in
  // the report and the stats counter are computed independently, so a
  // mismatch means Recover() adopted records it did not charge (or vice
  // versa).
  const llama::RecoveryReport report = store_->last_recovery_report();
  if (stats.recovered_bytes != report.bytes_adopted) {
    out.push_back(Violation{
        "LogStoreAuditor", "recovery-accounting", "log",
        "stats.recovered_bytes = " + std::to_string(stats.recovered_bytes) +
            " but last recovery report adopted " +
            std::to_string(report.bytes_adopted) + " bytes"});
  }

  const uint64_t dead_accounted =
      directory_dead_bytes + stats.dead_bytes_collected;
  if (stats.dead_bytes_marked != dead_accounted) {
    out.push_back(Violation{
        "LogStoreAuditor", "dead-accounting", "log",
        "dead_bytes_marked = " + std::to_string(stats.dead_bytes_marked) +
            " but directory+collected = " + std::to_string(dead_accounted)});
  }

  // Compressed-record closure, the same write-side identity restricted to
  // CSS records, in both stored (on-media) and raw (pre-compression)
  // bytes. A corrupt compressed record is excluded everywhere (recovery
  // skips it, no segment charges it), so the identity holds exactly.
  const uint64_t css_stored_produced =
      stats.css_stored_bytes_appended + stats.css_stored_bytes_recovered;
  const uint64_t css_stored_accounted =
      directory_css_stored + stats.css_stored_bytes_collected;
  if (css_stored_produced != css_stored_accounted) {
    out.push_back(Violation{
        "LogStoreAuditor", "css-accounting", "log",
        "css stored appended+recovered = " +
            std::to_string(css_stored_produced) +
            " but directory+collected = " +
            std::to_string(css_stored_accounted) + " (directory " +
            std::to_string(directory_css_stored) + ", collected " +
            std::to_string(stats.css_stored_bytes_collected) + ")"});
  }
  const uint64_t css_raw_produced =
      stats.css_raw_bytes_appended + stats.css_raw_bytes_recovered;
  const uint64_t css_raw_accounted =
      directory_css_raw + stats.css_raw_bytes_collected;
  if (css_raw_produced != css_raw_accounted) {
    out.push_back(Violation{
        "LogStoreAuditor", "css-accounting", "log",
        "css raw appended+recovered = " + std::to_string(css_raw_produced) +
            " but directory+collected = " +
            std::to_string(css_raw_accounted) + " (directory " +
            std::to_string(directory_css_raw) + ", collected " +
            std::to_string(stats.css_raw_bytes_collected) + ")"});
  }

  return out;
}

}  // namespace costperf::analysis
