#ifndef COSTPERF_ANALYSIS_LOG_STORE_AUDITOR_H_
#define COSTPERF_ANALYSIS_LOG_STORE_AUDITOR_H_

#include "analysis/invariant_checker.h"
#include "llama/log_store.h"

namespace costperf::analysis {

// Audits the log-structured store's space accounting from its segment
// directory and counters alone (no device I/O). Rule ids:
//   segment-bounds   used_bytes below the segment header size or above
//                    the configured segment size
//   dead-exceeds-live  a segment's dead bytes exceed its record bytes
//   open-segment     the open segment is missing from the directory, is
//                    marked sealed, or a second unsealed segment exists
//   space-accounting the write-side closure is broken: every record byte
//                    ever produced (appended + adopted by recovery) must
//                    either still sit in a directory segment or have been
//                    retired by GC —
//                      bytes_appended + recovered_bytes ==
//                          Σ_segments(used − header) + bytes_collected
//   dead-accounting  same closure for dead marks:
//                      dead_bytes_marked ==
//                          Σ_segments(dead) + dead_bytes_collected
//   css-exceeds-live a segment charges more compressed stored bytes than
//                    record bytes ever written to it
//   css-accounting   the write-side closure restricted to compressed
//                    records, in stored and raw bytes:
//                      css_stored_appended + css_stored_recovered ==
//                          Σ_segments(css_stored) + css_stored_collected
//                    (likewise css_raw_*)
class LogStoreAuditor : public InvariantChecker {
 public:
  explicit LogStoreAuditor(llama::LogStructuredStore* store)
      : store_(store) {}

  std::string_view name() const override { return "LogStoreAuditor"; }
  std::vector<Violation> Check() override;

 private:
  llama::LogStructuredStore* store_;
};

}  // namespace costperf::analysis

#endif  // COSTPERF_ANALYSIS_LOG_STORE_AUDITOR_H_
