#ifndef COSTPERF_ANALYSIS_INVARIANT_CHECKER_H_
#define COSTPERF_ANALYSIS_INVARIANT_CHECKER_H_

#include <string>
#include <string_view>
#include <vector>

namespace costperf::analysis {

// One structural-invariant violation found by a checker. Checkers never
// throw or abort: they report everything they can find and leave the
// decision (fail the test, dump state, ignore) to the caller.
struct Violation {
  std::string checker;  // which checker found it, e.g. "BwTreeValidator"
  std::string rule;     // stable rule id, e.g. "chain-length"
  std::string entity;   // what it is about, e.g. "pid 7", "segment 3"
  std::string detail;   // human-readable explanation with the numbers

  std::string ToString() const;
};

// A structural validator over live store state. Implementations walk the
// in-memory metadata only (mapping words, delta chains, segment
// directory) — never the device — so a Check() is cheap enough to run
// after every test phase.
//
// Checkers assume the store is quiescent (no concurrent mutators); they
// are meant for tests and the KvStore::CheckInvariants() debug hook, not
// for the hot path.
class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;

  // Stable checker name, used as Violation::checker.
  virtual std::string_view name() const = 0;

  // Runs every rule; returns all violations found (empty = healthy).
  virtual std::vector<Violation> Check() = 0;
};

// Multi-line rendering of a report ("<n> violation(s)" + one per line);
// "no violations" for an empty report. For test failure messages.
std::string ReportToString(const std::vector<Violation>& violations);

}  // namespace costperf::analysis

#endif  // COSTPERF_ANALYSIS_INVARIANT_CHECKER_H_
