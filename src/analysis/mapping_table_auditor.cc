#include "analysis/mapping_table_auditor.h"

#include <string>
#include <unordered_set>

#include "analysis/bwtree_validator.h"
#include "bwtree/node.h"

namespace costperf::analysis {

namespace {

using mapping::PageId;

std::string PidEntity(PageId pid) { return "pid " + std::to_string(pid); }

}  // namespace

std::vector<Violation> MappingTableAuditor::Check() {
  std::vector<Violation> out;
  mapping::MappingTable* table = tree_->mapping_table();

  std::vector<PageId> reachable_list = CollectReachablePids(tree_);
  std::unordered_set<PageId> reachable(reachable_list.begin(),
                                       reachable_list.end());
  std::vector<PageId> free_list = table->FreeListSnapshot();
  std::unordered_set<PageId> free_ids(free_list.begin(), free_list.end());
  const PageId high_water = table->high_water();

  for (PageId pid : reachable_list) {
    if (free_ids.count(pid) != 0) {
      out.push_back(Violation{
          "MappingTableAuditor", "dangling-free", PidEntity(pid),
          "tree-reachable page id is on the mapping table's free list"});
    }
    if (pid >= high_water) {
      out.push_back(Violation{
          "MappingTableAuditor", "beyond-high-water", PidEntity(pid),
          "tree references id " + std::to_string(pid) +
              " past the allocation high water mark " +
              std::to_string(high_water)});
    }
  }

  for (PageId pid = 0; pid < high_water && pid < table->capacity(); ++pid) {
    if (free_ids.count(pid) != 0 || reachable.count(pid) != 0) continue;
    uint64_t word = table->Get(pid);
    if (word == 0) continue;  // detached, awaiting epoch recycle — not a leak
    out.push_back(Violation{
        "MappingTableAuditor", "leaked-pid", PidEntity(pid),
        std::string("allocated id holds a live ") +
            (bwtree::IsFlashWord(word) ? "flash address" : "memory pointer") +
            " but is unreachable from the tree"});
  }

  if (cache_ != nullptr) {
    for (const auto& [pid, bytes] : cache_->ResidentEntries()) {
      uint64_t word = pid < table->capacity() ? table->Get(pid) : 0;
      if (word == 0 || bwtree::IsFlashWord(word)) {
        out.push_back(Violation{
            "MappingTableAuditor", "cache-not-resident", PidEntity(pid),
            "cache manager accounts " + std::to_string(bytes) +
                " resident bytes but the mapping entry is " +
                (word == 0 ? "null" : "a flash address")});
      }
    }
  }

  return out;
}

}  // namespace costperf::analysis
