#ifndef COSTPERF_ANALYSIS_MAPPING_TABLE_AUDITOR_H_
#define COSTPERF_ANALYSIS_MAPPING_TABLE_AUDITOR_H_

#include "analysis/invariant_checker.h"
#include "bwtree/bwtree.h"
#include "llama/cache_manager.h"

namespace costperf::analysis {

// Audits the mapping table against the tree that owns it and (optionally)
// the cache manager's resident-set accounting. Rule ids:
//   dangling-free      tree-reachable page id sitting on the free list
//   beyond-high-water  tree-reachable page id that was never allocated
//   leaked-pid         allocated id holding a live mapping word (memory
//                      pointer or flash address) that the tree can no
//                      longer reach — pinned memory/flash with no owner.
//                      Detached ids with a zeroed word are NOT leaks:
//                      merge SMOs park ids that way until epoch reclaim.
//   cache-not-resident cache manager believes a page is resident but its
//                      mapping entry is null or a flash address
class MappingTableAuditor : public InvariantChecker {
 public:
  // `cache` may be null (tree without resident-set accounting).
  MappingTableAuditor(bwtree::BwTree* tree, llama::CacheManager* cache)
      : tree_(tree), cache_(cache) {}

  std::string_view name() const override { return "MappingTableAuditor"; }
  std::vector<Violation> Check() override;

 private:
  bwtree::BwTree* tree_;
  llama::CacheManager* cache_;
};

}  // namespace costperf::analysis

#endif  // COSTPERF_ANALYSIS_MAPPING_TABLE_AUDITOR_H_
