#include "analysis/bwtree_validator.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_set>

#include "bwtree/node.h"
#include "common/epoch.h"

namespace costperf::analysis {

namespace {

using bwtree::BwTree;
using bwtree::InnerBase;
using bwtree::LeafBase;
using bwtree::Node;
using bwtree::NodeType;
using mapping::kInvalidPageId;
using mapping::PageId;

// Upper bound on chain walks; anything longer is treated as a cycle.
constexpr size_t kMaxChainNodes = 1 << 16;

std::string PidEntity(PageId pid) { return "pid " + std::to_string(pid); }

bool IsDeltaType(NodeType t) {
  return t == NodeType::kInsertDelta || t == NodeType::kDeleteDelta ||
         t == NodeType::kRemoveNode || t == NodeType::kMergeDelta;
}

// Walks head toward the tail, stopping after kMaxChainNodes. Returns the
// tail (base/flash pointer) or nullptr when the chain is broken/cyclic.
// Dereferences live chain nodes, so the caller must be inside the owning
// tree's epoch — declared through the explicit manager parameter, which
// is how a free function names the capability for the analysis.
const Node* WalkChain(EpochManager* epochs, const Node* head,
                      std::vector<const Node*>* nodes)
    REQUIRES_EPOCH(epochs) {
  epochs->AssertActive();  // runtime backstop for non-Clang builds
  const Node* n = head;
  while (n != nullptr && nodes->size() < kMaxChainNodes) {
    nodes->push_back(n);
    if (!IsDeltaType(n->type)) return n;
    n = n->next;
  }
  return nullptr;
}

void EnqueueChild(PageId pid, std::unordered_set<PageId>* seen,
                  std::deque<PageId>* frontier) {
  if (pid == kInvalidPageId) return;
  if (seen->insert(pid).second) frontier->push_back(pid);
}

// Visits every reachable pid; calls visit(pid, word) for each, inside a
// live guard on the tree's epoch manager (the BFS dereferences resident
// chains throughout). Note for visit lambdas: the analysis treats a
// lambda as its own function, so a lambda that walks chains itself must
// re-establish the capability — an AssertActive() call at its top both
// satisfies the static layer and arms the runtime backstop.
template <typename Fn>
void Traverse(BwTree* tree, const Fn& visit) {
  EpochGuard guard(tree->epochs());
  mapping::MappingTable* table = tree->mapping_table();
  std::unordered_set<PageId> seen;
  std::deque<PageId> frontier;
  EnqueueChild(tree->root_pid(), &seen, &frontier);
  while (!frontier.empty()) {
    PageId pid = frontier.front();
    frontier.pop_front();
    if (pid >= table->capacity()) continue;
    uint64_t word = table->Get(pid);
    visit(pid, word);
    if (word == 0 || bwtree::IsFlashWord(word)) continue;
    std::vector<const Node*> nodes;
    const Node* tail =
        WalkChain(tree->epochs(), bwtree::DecodePointer(word), &nodes);
    if (tail == nullptr) continue;
    // A MergeDelta supersedes the tail's fences: the tail base still
    // names the absorbed (detached) sibling, the delta the live one.
    const bwtree::MergeDelta* merge = nullptr;
    for (const Node* n : nodes) {
      if (n->type == NodeType::kMergeDelta) {
        merge = static_cast<const bwtree::MergeDelta*>(n);
        break;
      }
    }
    if (tail->type == NodeType::kInnerBase) {
      const auto* inner = static_cast<const InnerBase*>(tail);
      for (PageId child : inner->children) {
        EnqueueChild(child, &seen, &frontier);
      }
      EnqueueChild(inner->right_sibling, &seen, &frontier);
    } else if (merge != nullptr) {
      EnqueueChild(merge->right_sibling, &seen, &frontier);
    } else if (tail->type == NodeType::kLeafBase) {
      EnqueueChild(static_cast<const LeafBase*>(tail)->right_sibling, &seen,
                   &frontier);
    } else if (tail->type == NodeType::kFlashPointer) {
      const auto* fp = static_cast<const bwtree::FlashPointer*>(tail);
      if (fp->fences_known) EnqueueChild(fp->right_sibling, &seen, &frontier);
    }
  }
}

void CheckChainLengths(PageId pid, const std::vector<const Node*>& nodes,
                       const Node* tail, std::vector<Violation>* out) {
  for (const Node* n : nodes) {
    uint16_t expected;
    if (!IsDeltaType(n->type)) {
      expected = 0;
    } else {
      expected = n->next == nullptr
                     ? 1
                     : static_cast<uint16_t>(n->next->chain_length + 1);
    }
    if (n->chain_length != expected) {
      out->push_back(Violation{
          "BwTreeValidator", "chain-length", PidEntity(pid),
          "node type " + std::to_string(static_cast<int>(n->type)) +
              " has chain_length " + std::to_string(n->chain_length) +
              ", expected " + std::to_string(expected)});
      return;  // one report per page; deeper mismatches are derivative
    }
  }
  (void)tail;
}

void CheckLeafOrder(PageId pid, const LeafBase* leaf,
                    std::vector<Violation>* out) {
  if (leaf->keys.size() != leaf->values.size()) {
    out->push_back(Violation{
        "BwTreeValidator", "key-order", PidEntity(pid),
        "leaf has " + std::to_string(leaf->keys.size()) + " keys but " +
            std::to_string(leaf->values.size()) + " values"});
    return;
  }
  for (size_t i = 1; i < leaf->keys.size(); ++i) {
    if (!(leaf->keys[i - 1] < leaf->keys[i])) {
      out->push_back(Violation{
          "BwTreeValidator", "key-order", PidEntity(pid),
          "leaf keys not strictly ascending at slot " + std::to_string(i) +
              " (\"" + leaf->keys[i - 1] + "\" !< \"" + leaf->keys[i] +
              "\")"});
      return;
    }
  }
  if (!leaf->high_key.empty() && !leaf->keys.empty() &&
      !(leaf->keys.back() < leaf->high_key)) {
    out->push_back(Violation{
        "BwTreeValidator", "key-order", PidEntity(pid),
        "leaf key \"" + leaf->keys.back() + "\" >= high fence \"" +
            leaf->high_key + "\""});
  }
}

void CheckInnerOrder(PageId pid, const InnerBase* inner,
                     std::vector<Violation>* out) {
  if (inner->children.size() != inner->seps.size() + 1) {
    out->push_back(Violation{
        "BwTreeValidator", "key-order", PidEntity(pid),
        "inner has " + std::to_string(inner->children.size()) +
            " children for " + std::to_string(inner->seps.size()) +
            " separators (want seps+1)"});
    return;
  }
  for (size_t i = 1; i < inner->seps.size(); ++i) {
    if (!(inner->seps[i - 1] < inner->seps[i])) {
      out->push_back(Violation{
          "BwTreeValidator", "key-order", PidEntity(pid),
          "inner separators not strictly ascending at slot " +
              std::to_string(i)});
      return;
    }
  }
}

void CheckFlashChain(BwTree* tree, PageId pid, uint64_t word,
                     const Node* tail, std::vector<Violation>* out) {
  BwTree::PageDebugInfo info = tree->DebugPageInfo(pid);
  if (bwtree::IsFlashWord(word)) {
    uint64_t packed = bwtree::DecodeFlash(word).packed();
    if (info.flash_chain.empty() || info.flash_chain.front() != packed) {
      out->push_back(Violation{
          "BwTreeValidator", "flash-chain", PidEntity(pid),
          "mapping entry points at flash record " + std::to_string(packed) +
              " but the recorded chain head is " +
              (info.flash_chain.empty()
                   ? std::string("<empty>")
                   : std::to_string(info.flash_chain.front()))});
    }
    return;
  }
  if (tail != nullptr && tail->type == NodeType::kFlashPointer) {
    uint64_t packed =
        static_cast<const bwtree::FlashPointer*>(tail)->addr.packed();
    if (std::find(info.flash_chain.begin(), info.flash_chain.end(),
                  packed) == info.flash_chain.end()) {
      out->push_back(Violation{
          "BwTreeValidator", "flash-chain", PidEntity(pid),
          "FlashPointer tail addresses record " + std::to_string(packed) +
              " which is not in the page's recorded flash chain"});
    }
  }
}

}  // namespace

std::vector<mapping::PageId> CollectReachablePids(bwtree::BwTree* tree) {
  std::vector<PageId> pids;
  Traverse(tree, [&](PageId pid, uint64_t) { pids.push_back(pid); });
  std::sort(pids.begin(), pids.end());
  return pids;
}

std::vector<Violation> BwTreeValidator::Check() {
  std::vector<Violation> out;
  Traverse(tree_, [&](PageId pid, uint64_t word) {
    // Re-establish the epoch capability for this lambda (see Traverse's
    // doc comment): Traverse's guard is live for the whole visit, the
    // assert makes that visible to the analysis and checked at runtime.
    tree_->epochs()->AssertActive();
    if (word == 0) {
      out.push_back(Violation{"BwTreeValidator", "null-word", PidEntity(pid),
                              "reachable page has a null mapping entry"});
      return;
    }
    if (bwtree::IsFlashWord(word)) {
      CheckFlashChain(tree_, pid, word, nullptr, &out);
      return;
    }
    std::vector<const Node*> nodes;
    const Node* tail =
        WalkChain(tree_->epochs(), bwtree::DecodePointer(word), &nodes);
    if (tail == nullptr) {
      out.push_back(Violation{
          "BwTreeValidator", "chain-tail", PidEntity(pid),
          "delta chain of " + std::to_string(nodes.size()) +
              " node(s) never reaches a base page (broken or cyclic)"});
      return;
    }
    CheckChainLengths(pid, nodes, tail, &out);
    if (tail->type == NodeType::kLeafBase) {
      CheckLeafOrder(pid, static_cast<const LeafBase*>(tail), &out);
    } else if (tail->type == NodeType::kInnerBase) {
      CheckInnerOrder(pid, static_cast<const InnerBase*>(tail), &out);
    }
    CheckFlashChain(tree_, pid, word, tail, &out);
  });
  return out;
}

}  // namespace costperf::analysis
