#include "analysis/invariant_checker.h"

namespace costperf::analysis {

std::string Violation::ToString() const {
  std::string out = checker;
  out += "/";
  out += rule;
  if (!entity.empty()) {
    out += " [";
    out += entity;
    out += "]";
  }
  out += ": ";
  out += detail;
  return out;
}

std::string ReportToString(const std::vector<Violation>& violations) {
  if (violations.empty()) return "no violations";
  std::string out = std::to_string(violations.size()) + " violation(s)";
  for (const Violation& v : violations) {
    out += "\n  ";
    out += v.ToString();
  }
  return out;
}

}  // namespace costperf::analysis
