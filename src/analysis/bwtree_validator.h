#ifndef COSTPERF_ANALYSIS_BWTREE_VALIDATOR_H_
#define COSTPERF_ANALYSIS_BWTREE_VALIDATOR_H_

#include <vector>

#include "analysis/invariant_checker.h"
#include "bwtree/bwtree.h"
#include "mapping/mapping_table.h"

namespace costperf::analysis {

// Every page id reachable from the tree root: inner children recursively,
// plus B-link right siblings of every base. Quiescent-tree only (the walk
// dereferences mapping words under a single epoch guard but takes no
// latches against concurrent SMOs).
std::vector<mapping::PageId> CollectReachablePids(bwtree::BwTree* tree);

// Structural validator for the Bw-tree (tentpole prong 2, rule ids):
//   null-word    reachable page whose mapping entry is 0
//   chain-tail   delta chain that does not terminate in a base page /
//                flash pointer within bounds (broken or cyclic chain)
//   chain-length node's chain_length disagrees with its position
//   key-order    unsorted leaf keys / inner separators, fence violations,
//                inner child-count mismatch
//   flash-chain  mapping word or FlashPointer disagrees with the page's
//                recorded flash chain (base image unreachable from the
//                entry the mapping table advertises)
class BwTreeValidator : public InvariantChecker {
 public:
  explicit BwTreeValidator(bwtree::BwTree* tree) : tree_(tree) {}

  std::string_view name() const override { return "BwTreeValidator"; }
  std::vector<Violation> Check() override;

 private:
  bwtree::BwTree* tree_;
};

}  // namespace costperf::analysis

#endif  // COSTPERF_ANALYSIS_BWTREE_VALIDATOR_H_
