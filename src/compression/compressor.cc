#include "compression/compressor.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace costperf::compression {

namespace {

inline uint32_t HashFour(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - Compressor::kHashBits);
}

}  // namespace

void Compressor::Compress(const Slice& input, std::string* out) {
  out->clear();
  PutVarint64(out, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n == 0) {
    PutVarint64(out, 0);  // no literals
    PutVarint64(out, 0);  // end marker
    return;
  }

  std::vector<int64_t> table(1 << kHashBits, -1);
  size_t pos = 0;
  size_t literal_start = 0;

  auto emit = [&](size_t lit_from, size_t lit_len, size_t match_len,
                  size_t offset) {
    PutVarint64(out, lit_len);
    out->append(base + lit_from, lit_len);
    PutVarint64(out, match_len);
    if (match_len > 0) PutVarint64(out, offset);
  };

  while (pos + kMinMatch <= n) {
    uint32_t h = HashFour(base + pos);
    int64_t cand = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        memcmp(base + cand, base + pos, kMinMatch) == 0) {
      // Extend the match.
      size_t len = kMinMatch;
      while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
      emit(literal_start, pos - literal_start, len, pos - cand);
      // Seed the table inside the match sparsely to keep compression fast.
      for (size_t i = pos + 1; i + kMinMatch <= pos + len; i += 7) {
        table[HashFour(base + i)] = static_cast<int64_t>(i);
      }
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Trailing literals + end marker (match_len == 0).
  emit(literal_start, n - literal_start, 0, 0);
}

void Compressor::Compress(const Slice& input, std::string* out,
                          CompressInfo* info) {
  Compress(input, out);
  info->raw_size = input.size();
  info->compressed_size = out->size();
}

Status Compressor::Decompress(const Slice& input, std::string* out,
                              size_t max_raw_size) {
  out->clear();
  const char* p = input.data();
  const char* limit = p + input.size();
  uint64_t raw_size = 0;
  p = GetVarint64(p, limit, &raw_size);
  if (p == nullptr) return Status::Corruption("bad raw size");
  if (raw_size > max_raw_size) {
    return Status::Corruption("decompressed size exceeds limit");
  }
  out->reserve(raw_size);
  for (;;) {
    uint64_t lit_len = 0;
    p = GetVarint64(p, limit, &lit_len);
    if (p == nullptr) return Status::Corruption("truncated literal length");
    if (static_cast<uint64_t>(limit - p) < lit_len) {
      return Status::Corruption("truncated literals");
    }
    // Bound literals by the declared size too: without this a malformed
    // stream could grow *out past raw_size (and past max_raw_size) before
    // the final size check fires.
    if (out->size() + lit_len > raw_size) {
      return Status::Corruption("output overruns declared size");
    }
    out->append(p, lit_len);
    p += lit_len;
    uint64_t match_len = 0;
    p = GetVarint64(p, limit, &match_len);
    if (p == nullptr) return Status::Corruption("truncated match length");
    if (match_len == 0) break;  // end of stream
    uint64_t offset = 0;
    p = GetVarint64(p, limit, &offset);
    if (p == nullptr) return Status::Corruption("truncated match offset");
    if (offset == 0 || offset > out->size()) {
      return Status::Corruption("match offset out of range");
    }
    if (out->size() + match_len > raw_size) {
      return Status::Corruption("output overruns declared size");
    }
    // Byte-by-byte copy: offsets < match_len legitimately self-overlap
    // (run-length encoding of repeats).
    size_t from = out->size() - offset;
    for (uint64_t i = 0; i < match_len; ++i) out->push_back((*out)[from + i]);
  }
  if (out->size() != raw_size) {
    return Status::Corruption("decompressed size mismatch");
  }
  return Status::Ok();
}

double Compressor::MeasureRatio(const Slice& input) {
  std::string out;
  CompressInfo info;
  Compress(input, &out, &info);
  return info.ratio();
}

}  // namespace costperf::compression
