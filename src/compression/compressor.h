#ifndef COSTPERF_COMPRESSION_COMPRESSOR_H_
#define COSTPERF_COMPRESSION_COMPRESSOR_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace costperf::compression {

// Byte-oriented LZ compressor for the compressed-secondary-storage (CSS)
// tier of §7.2 / Fig. 8. Format (all varints LEB128):
//
//   [varint raw_size]
//   repeat:
//     [varint literal_len][literal bytes]
//     [varint match_len][varint match_offset]   (match_len 0 ends stream)
//
// Matches are found with a 4-byte hash table over a 64 KiB window —
// LZ4-class speed/ratio, which is what a store would actually run on its
// cold tier. Decompression cost is the model's `decompress_r` input.
// Raw/compressed byte counts from a single Compress call, so a demotion
// path can apply a ratio policy without compressing twice.
struct CompressInfo {
  uint64_t raw_size = 0;
  uint64_t compressed_size = 0;
  // compressed/raw; 1.0 for empty input (nothing saved, nothing lost).
  double ratio() const {
    return raw_size == 0 ? 1.0
                         : static_cast<double>(compressed_size) /
                               static_cast<double>(raw_size);
  }
};

class Compressor {
 public:
  // Appends the compressed form of `input` to *out (out is cleared first).
  static void Compress(const Slice& input, std::string* out);

  // Same, reporting raw/compressed sizes of this one call so callers that
  // gate on the ratio (tier demotion) never compress the input twice.
  static void Compress(const Slice& input, std::string* out,
                       CompressInfo* info);

  // Decompresses into *out (cleared first). Fails with Corruption on
  // malformed input; refuses outputs larger than max_raw_size.
  static Status Decompress(const Slice& input, std::string* out,
                           size_t max_raw_size = 64 << 20);

  // Convenience: compressed_size / raw_size for this input (1.0 for empty).
  static double MeasureRatio(const Slice& input);

  static constexpr int kMinMatch = 4;
  static constexpr int kMaxOffset = 1 << 16;
  static constexpr int kHashBits = 14;
};

}  // namespace costperf::compression

#endif  // COSTPERF_COMPRESSION_COMPRESSOR_H_
