#ifndef COSTPERF_TC_TRANSACTION_COMPONENT_H_
#define COSTPERF_TC_TRANSACTION_COMPONENT_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bwtree/bwtree.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace costperf::tc {

// One redo record on the recovery log.
struct RedoRecord {
  uint64_t txn_id = 0;
  uint64_t commit_ts = 0;
  bool is_delete = false;
  std::string key;
  std::string value;
};

// In-memory recovery log. Buffers are append-only; "flushing" marks them
// durable but — and this is the paper's §6.3 point — the buffers are
// RETAINED in memory afterwards, so the redo records double as an
// updated-record cache. Shareable across TC instances to model restart.
class RecoveryLog {
 public:
  RecoveryLog() = default;

  // Appends a committed transaction's redo records; returns its LSN.
  uint64_t AppendCommit(const std::vector<RedoRecord>& records);
  // Marks everything up to the current end durable.
  void Flush();
  uint64_t durable_lsn() const;
  uint64_t end_lsn() const;

  // Replays all durable records in commit order.
  void ReplayDurable(
      const std::function<void(const RedoRecord&)>& fn) const;

  uint64_t ApproxBytes() const;

 private:
  mutable Mutex mu_;
  std::vector<std::vector<RedoRecord>> commits_ GUARDED_BY(mu_);
  uint64_t durable_commits_ GUARDED_BY(mu_) = 0;
};

struct TcOptions {
  // Read-cache capacity (records read from the DC, §6.3 / Fig. 6).
  uint64_t read_cache_bytes = 8ull << 20;
  // Versions older than the oldest active transaction and already posted
  // to the DC are pruned when the store exceeds this budget.
  uint64_t version_store_bytes = 32ull << 20;
};

struct TcStats {
  uint64_t begun = 0, committed = 0, aborted = 0, conflicts = 0;
  uint64_t reads = 0, writes = 0;
  // Where reads were served (the record-cache effect: the first two avoid
  // both the I/O *and* the trip into the data component).
  uint64_t reads_from_version_store = 0;
  uint64_t reads_from_read_cache = 0;
  uint64_t reads_from_dc = 0;
  uint64_t blind_posts_to_dc = 0;
  uint64_t versions_pruned = 0;
  uint64_t log_replays = 0;  // RecoverFromLog() invocations
};

class TransactionComponent;

// Handle for an open transaction. Obtained from Begin(); owned by the TC.
class Transaction {
 public:
  uint64_t id() const { return id_; }
  uint64_t begin_ts() const { return begin_ts_; }

 private:
  friend class TransactionComponent;
  uint64_t id_ = 0;
  uint64_t begin_ts_ = 0;
  bool finished = false;
  // Write set: key -> (value, is_delete). Last write wins.
  std::map<std::string, std::pair<std::string, bool>> writes;
  std::vector<std::string> read_set;
};

// Deuteronomy-style transaction component over the Bw-tree data
// component (paper §6.2/§6.3, Fig. 6):
//  - multi-version concurrency control whose hash table stores the record
//    versions themselves (an updated-record cache),
//  - a recovery redo log whose retained buffers serve the same versions,
//  - a log-structured read cache for records fetched from the DC,
//  - commit-time posting of updates to the DC as timestamped *blind*
//    updates — the DC page need not be resident.
//
// Isolation: snapshot reads at begin_ts with first-committer-wins
// write-write conflict detection (standard SI).
class TransactionComponent {
 public:
  TransactionComponent(bwtree::BwTree* data_component, RecoveryLog* log,
                       TcOptions options = {});
  ~TransactionComponent();

  TransactionComponent(const TransactionComponent&) = delete;
  TransactionComponent& operator=(const TransactionComponent&) = delete;

  Transaction* Begin();
  Status Read(Transaction* txn, const Slice& key, std::string* value);
  void Write(Transaction* txn, const Slice& key, const Slice& value);
  void Delete(Transaction* txn, const Slice& key);
  // Returns Aborted on write-write conflict (txn is finished either way).
  Status Commit(Transaction* txn);
  void Abort(Transaction* txn);

  // Non-transactional single ops (auto-commit).
  Status ReadOne(const Slice& key, std::string* value);
  Status WriteOne(const Slice& key, const Slice& value);

  // Replays the durable log into the DC (restart path; §6.2 notes updates
  // are handled identically during normal operation and recovery).
  // Idempotent: records are posted at their original commit timestamps
  // and the DC merges timestamped updates newest-wins with ties keeping
  // the already-applied version, so replaying the same log again (e.g. a
  // crash mid-recovery followed by a second recovery) is a no-op on DC
  // state. Also re-arms next_ts_ past the highest replayed commit_ts so
  // post-recovery transactions cannot reuse replayed timestamps.
  Status RecoverFromLog();

  // Prunes posted, globally-visible old versions.
  size_t PruneVersions();

  TcStats stats() const;
  uint64_t version_store_bytes() const;
  uint64_t read_cache_bytes() const;

 private:
  struct Version {
    uint64_t ts;
    bool is_delete;
    std::string value;
    bool posted_to_dc = false;
  };
  struct VersionChain {
    std::vector<Version> versions;  // ascending ts
  };

  uint64_t OldestActiveTs() const REQUIRES(mu_);
  void ReadCachePut(const std::string& key, const std::string& value)
      EXCLUDES(rc_mu_);
  bool ReadCacheGet(const std::string& key, std::string* value)
      EXCLUDES(rc_mu_);

  bwtree::BwTree* dc_;
  RecoveryLog* log_;
  TcOptions options_;

  std::atomic<uint64_t> next_ts_;
  std::atomic<uint64_t> next_txn_id_;

  mutable Mutex mu_;  // MVCC state latch
  std::unordered_map<std::string, VersionChain> versions_ GUARDED_BY(mu_);
  uint64_t version_bytes_ GUARDED_BY(mu_) = 0;
  // begin_ts -> txn
  std::map<uint64_t, Transaction*> active_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Transaction>> txns_ GUARDED_BY(mu_);

  mutable Mutex rc_mu_;  // read-cache latch
  // Keys, front = LRU.
  std::list<std::string> rc_lru_ GUARDED_BY(rc_mu_);
  struct RcEntry {
    std::string value;
    std::list<std::string>::iterator pos;
  };
  std::unordered_map<std::string, RcEntry> read_cache_ GUARDED_BY(rc_mu_);
  uint64_t rc_bytes_ GUARDED_BY(rc_mu_) = 0;

  mutable std::atomic<uint64_t> s_begun_{0}, s_committed_{0}, s_aborted_{0},
      s_conflicts_{0}, s_reads_{0}, s_writes_{0}, s_vs_hits_{0},
      s_rc_hits_{0}, s_dc_reads_{0}, s_blind_posts_{0}, s_pruned_{0},
      s_log_replays_{0};
};

}  // namespace costperf::tc

#endif  // COSTPERF_TC_TRANSACTION_COMPONENT_H_
