#include "tc/transaction_component.h"

#include <algorithm>

namespace costperf::tc {

// ---------------------------------------------------------------------
// RecoveryLog
// ---------------------------------------------------------------------

uint64_t RecoveryLog::AppendCommit(const std::vector<RedoRecord>& records) {
  MutexLock lk(&mu_);
  commits_.push_back(records);
  return commits_.size();
}

void RecoveryLog::Flush() {
  MutexLock lk(&mu_);
  durable_commits_ = commits_.size();
}

uint64_t RecoveryLog::durable_lsn() const {
  MutexLock lk(&mu_);
  return durable_commits_;
}

uint64_t RecoveryLog::end_lsn() const {
  MutexLock lk(&mu_);
  return commits_.size();
}

void RecoveryLog::ReplayDurable(
    const std::function<void(const RedoRecord&)>& fn) const {
  MutexLock lk(&mu_);
  for (uint64_t i = 0; i < durable_commits_; ++i) {
    for (const auto& r : commits_[i]) fn(r);
  }
}

uint64_t RecoveryLog::ApproxBytes() const {
  MutexLock lk(&mu_);
  uint64_t b = 0;
  for (const auto& commit : commits_) {
    for (const auto& r : commit) {
      b += sizeof(RedoRecord) + r.key.size() + r.value.size();
    }
  }
  return b;
}

// ---------------------------------------------------------------------
// TransactionComponent
// ---------------------------------------------------------------------

TransactionComponent::TransactionComponent(bwtree::BwTree* data_component,
                                           RecoveryLog* log,
                                           TcOptions options)
    : dc_(data_component),
      log_(log),
      options_(options),
      next_ts_(1),
      next_txn_id_(1) {}

TransactionComponent::~TransactionComponent() = default;

Transaction* TransactionComponent::Begin() {
  s_begun_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>();
  txn->id_ = next_txn_id_.fetch_add(1, std::memory_order_acq_rel);
  txn->begin_ts_ = next_ts_.fetch_add(1, std::memory_order_acq_rel);
  Transaction* raw = txn.get();
  MutexLock lk(&mu_);
  active_[raw->begin_ts_] = raw;
  txns_.push_back(std::move(txn));
  return raw;
}

uint64_t TransactionComponent::OldestActiveTs() const {
  return active_.empty() ? next_ts_.load(std::memory_order_acquire)
                         : active_.begin()->first;
}

Status TransactionComponent::Read(Transaction* txn, const Slice& key,
                                  std::string* value) {
  s_reads_.fetch_add(1, std::memory_order_relaxed);
  const std::string k = key.ToString();

  // 0. Own writes first.
  auto wit = txn->writes.find(k);
  if (wit != txn->writes.end()) {
    if (wit->second.second) return Status::NotFound();
    *value = wit->second.first;
    return Status::Ok();
  }
  txn->read_set.push_back(k);

  // 1. MVCC version store (the updated-record cache): newest version with
  //    ts <= begin_ts.
  {
    MutexLock lk(&mu_);
    auto it = versions_.find(k);
    if (it != versions_.end()) {
      const auto& chain = it->second.versions;
      for (auto vit = chain.rbegin(); vit != chain.rend(); ++vit) {
        if (vit->ts <= txn->begin_ts_) {
          s_vs_hits_.fetch_add(1, std::memory_order_relaxed);
          if (vit->is_delete) return Status::NotFound();
          *value = vit->value;
          return Status::Ok();
        }
      }
      // All versions are newer than our snapshot: the pre-image must come
      // from below (read cache / DC), which holds only older state.
    }
  }

  // 2. Read cache (records previously fetched from the DC).
  if (ReadCacheGet(k, value)) {
    s_rc_hits_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  // 3. Data component.
  s_dc_reads_.fetch_add(1, std::memory_order_relaxed);
  auto r = dc_->Get(key);
  if (!r.ok()) return r.status();
  *value = *r;
  ReadCachePut(k, *value);
  return Status::Ok();
}

void TransactionComponent::Write(Transaction* txn, const Slice& key,
                                 const Slice& value) {
  s_writes_.fetch_add(1, std::memory_order_relaxed);
  txn->writes[key.ToString()] = {value.ToString(), false};
}

void TransactionComponent::Delete(Transaction* txn, const Slice& key) {
  s_writes_.fetch_add(1, std::memory_order_relaxed);
  txn->writes[key.ToString()] = {"", true};
}

Status TransactionComponent::Commit(Transaction* txn) {
  if (txn->finished) return Status::FailedPrecondition("txn finished");
  if (txn->writes.empty()) {
    Abort(txn);  // read-only: nothing to validate under SI
    s_aborted_.fetch_sub(1, std::memory_order_relaxed);
    s_committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  uint64_t commit_ts;
  std::vector<RedoRecord> redo;
  {
    MutexLock lk(&mu_);
    // First-committer-wins: any committed version newer than our snapshot
    // on a key we write is a write-write conflict.
    for (const auto& [k, wv] : txn->writes) {
      auto it = versions_.find(k);
      if (it == versions_.end()) continue;
      const auto& chain = it->second.versions;
      if (!chain.empty() && chain.back().ts > txn->begin_ts_) {
        active_.erase(txn->begin_ts_);
        txn->finished = true;
        s_conflicts_.fetch_add(1, std::memory_order_relaxed);
        s_aborted_.fetch_add(1, std::memory_order_relaxed);
        return Status::Aborted("write-write conflict on " + k);
      }
    }
    commit_ts = next_ts_.fetch_add(1, std::memory_order_acq_rel);
    // Install versions (this is the updated-record cache growing).
    for (const auto& [k, wv] : txn->writes) {
      auto& chain = versions_[k];
      chain.versions.push_back(Version{commit_ts, wv.second, wv.first});
      version_bytes_ += sizeof(Version) + k.size() + wv.first.size();
      redo.push_back(RedoRecord{txn->id_, commit_ts, wv.second, k, wv.first});
    }
    active_.erase(txn->begin_ts_);
    txn->finished = true;
  }

  // Harden the redo log, then post blind updates to the DC. The paper:
  // "all transactional updates are blind updates at the Bw-tree", ordered
  // by timestamp, identical during normal operation and recovery.
  log_->AppendCommit(redo);
  log_->Flush();
  for (const auto& r : redo) {
    Status s = r.is_delete ? dc_->Delete(Slice(r.key), r.commit_ts)
                           : dc_->Put(Slice(r.key), Slice(r.value),
                                      r.commit_ts);
    if (!s.ok()) return s;
    s_blind_posts_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    MutexLock lk(&mu_);
    for (const auto& r : redo) {
      auto it = versions_.find(r.key);
      if (it == versions_.end()) continue;
      for (auto& v : it->second.versions) {
        if (v.ts == r.commit_ts) v.posted_to_dc = true;
      }
    }
  }
  s_committed_.fetch_add(1, std::memory_order_relaxed);
  if (version_store_bytes() > options_.version_store_bytes) PruneVersions();
  return Status::Ok();
}

void TransactionComponent::Abort(Transaction* txn) {
  if (txn->finished) return;
  {
    MutexLock lk(&mu_);
    active_.erase(txn->begin_ts_);
  }
  txn->finished = true;
  s_aborted_.fetch_add(1, std::memory_order_relaxed);
}

Status TransactionComponent::ReadOne(const Slice& key, std::string* value) {
  Transaction* txn = Begin();
  Status s = Read(txn, key, value);
  Abort(txn);  // read-only; no log traffic
  s_aborted_.fetch_sub(1, std::memory_order_relaxed);
  s_committed_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status TransactionComponent::WriteOne(const Slice& key, const Slice& value) {
  Transaction* txn = Begin();
  Write(txn, key, value);
  return Commit(txn);
}

Status TransactionComponent::RecoverFromLog() {
  s_log_replays_.fetch_add(1, std::memory_order_relaxed);
  Status out = Status::Ok();
  uint64_t max_ts = 0;
  log_->ReplayDurable([&](const RedoRecord& r) {
    Status s = r.is_delete ? dc_->Delete(Slice(r.key), r.commit_ts)
                           : dc_->Put(Slice(r.key), Slice(r.value),
                                      r.commit_ts);
    if (!s.ok()) out = s;
    if (r.commit_ts > max_ts) max_ts = r.commit_ts;
    s_blind_posts_.fetch_add(1, std::memory_order_relaxed);
  });
  // New commits must timestamp strictly after every replayed update, or
  // the DC's newest-wins merge would discard them as stale.
  uint64_t cur = next_ts_.load(std::memory_order_relaxed);
  while (cur <= max_ts &&
         !next_ts_.compare_exchange_weak(cur, max_ts + 1,
                                         std::memory_order_relaxed)) {
  }
  return out;
}

size_t TransactionComponent::PruneVersions() {
  MutexLock lk(&mu_);
  const uint64_t horizon = OldestActiveTs();
  size_t pruned = 0;
  for (auto it = versions_.begin(); it != versions_.end();) {
    auto& chain = it->second.versions;
    // Keep the newest version visible at the horizon plus anything newer;
    // drop older posted versions.
    size_t keep_from = 0;
    for (size_t i = chain.size(); i-- > 0;) {
      if (chain[i].ts <= horizon) {
        keep_from = i;  // newest version <= horizon stays
        break;
      }
    }
    size_t removable = 0;
    for (size_t i = 0; i < keep_from; ++i) {
      if (chain[i].posted_to_dc) ++removable;
    }
    if (removable > 0) {
      size_t removed = 0;
      std::vector<Version> kept;
      kept.reserve(chain.size() - removable);
      for (size_t i = 0; i < chain.size(); ++i) {
        if (i < keep_from && chain[i].posted_to_dc) {
          version_bytes_ -=
              std::min<uint64_t>(version_bytes_,
                                 sizeof(Version) + it->first.size() +
                                     chain[i].value.size());
          ++removed;
          continue;
        }
        kept.push_back(std::move(chain[i]));
      }
      chain.swap(kept);
      pruned += removed;
    }
    if (chain.empty()) {
      it = versions_.erase(it);
    } else {
      ++it;
    }
  }
  s_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  return pruned;
}

void TransactionComponent::ReadCachePut(const std::string& key,
                                        const std::string& value) {
  MutexLock lk(&rc_mu_);
  auto it = read_cache_.find(key);
  if (it != read_cache_.end()) {
    rc_bytes_ -= it->second.value.size();
    it->second.value = value;
    rc_bytes_ += value.size();
    rc_lru_.splice(rc_lru_.end(), rc_lru_, it->second.pos);
    return;
  }
  rc_lru_.push_back(key);
  read_cache_[key] = RcEntry{value, std::prev(rc_lru_.end())};
  rc_bytes_ += key.size() + value.size();
  while (rc_bytes_ > options_.read_cache_bytes && !rc_lru_.empty()) {
    const std::string& victim = rc_lru_.front();
    auto vit = read_cache_.find(victim);
    if (vit != read_cache_.end()) {
      rc_bytes_ -= victim.size() + vit->second.value.size();
      read_cache_.erase(vit);
    }
    rc_lru_.pop_front();
  }
}

bool TransactionComponent::ReadCacheGet(const std::string& key,
                                        std::string* value) {
  MutexLock lk(&rc_mu_);
  auto it = read_cache_.find(key);
  if (it == read_cache_.end()) return false;
  *value = it->second.value;
  rc_lru_.splice(rc_lru_.end(), rc_lru_, it->second.pos);
  return true;
}

TcStats TransactionComponent::stats() const {
  TcStats s;
  s.begun = s_begun_.load(std::memory_order_relaxed);
  s.committed = s_committed_.load(std::memory_order_relaxed);
  s.aborted = s_aborted_.load(std::memory_order_relaxed);
  s.conflicts = s_conflicts_.load(std::memory_order_relaxed);
  s.reads = s_reads_.load(std::memory_order_relaxed);
  s.writes = s_writes_.load(std::memory_order_relaxed);
  s.reads_from_version_store = s_vs_hits_.load(std::memory_order_relaxed);
  s.reads_from_read_cache = s_rc_hits_.load(std::memory_order_relaxed);
  s.reads_from_dc = s_dc_reads_.load(std::memory_order_relaxed);
  s.blind_posts_to_dc = s_blind_posts_.load(std::memory_order_relaxed);
  s.versions_pruned = s_pruned_.load(std::memory_order_relaxed);
  s.log_replays = s_log_replays_.load(std::memory_order_relaxed);
  return s;
}

uint64_t TransactionComponent::version_store_bytes() const {
  MutexLock lk(&mu_);
  return version_bytes_;
}

uint64_t TransactionComponent::read_cache_bytes() const {
  MutexLock lk(&rc_mu_);
  return rc_bytes_;
}

}  // namespace costperf::tc
