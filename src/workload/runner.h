#ifndef COSTPERF_WORKLOAD_RUNNER_H_
#define COSTPERF_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "core/kv_store.h"
#include "workload/workload.h"

namespace costperf::workload {

struct RunnerOptions {
  int threads = 1;
  uint64_t ops_per_thread = 10'000;
  // LoadAndRun(): partition the `record_count` keys across worker threads
  // and load in parallel before the measured phase.
  bool parallel_load = true;
  // Per-op wall latency into per-thread histograms (merged in the
  // report). Costs one clock read per op; off for pure-throughput runs.
  bool record_latencies = true;
  // Record only every Nth op's latency (per thread). Two clock reads per
  // sample are a measurable slice of an in-cache op, so throughput runs
  // sample; 1 = time every op.
  uint32_t latency_sample = 1;
};

// Merged result of a multi-threaded run. CPU seconds follow the paper's
// performance measure (core execution time); the wall clock covers only
// the measured phase — the phase barrier keeps load time out of it.
struct RunReport {
  int threads = 0;
  uint64_t ops = 0;
  uint64_t failed_ops = 0;
  // Generated op mix, indexed by OpType (kRead..kReadModifyWrite).
  // Deterministic for a given (spec, threads, ops_per_thread).
  uint64_t op_counts[5] = {};
  uint64_t batch_calls = 0;  // MultiGet/WriteBatch calls issued

  double wall_seconds = 0;
  double cpu_seconds_total = 0;  // summed over worker threads
  double cpu_seconds_max = 0;    // slowest worker's CPU time
  double ops_per_wall_sec = 0;   // measured on this host
  double ops_per_cpu_sec = 0;    // ops / cpu_seconds_total (efficiency)
  // ops / cpu_seconds_max: throughput if every worker had its own core —
  // the cost model's view (ops per CPU-second scaled to T cores), and the
  // honest scaling number on core-limited CI hosts.
  double modeled_parallel_ops_per_sec = 0;

  // Merged per-op wall latency (microseconds). In batched mode each
  // MultiGet/WriteBatch call contributes one sample.
  Histogram latency_micros;
  double p50_micros = 0;
  double p99_micros = 0;
  double p999_micros = 0;

  // Per-op-class latency split: ops completed purely in memory (MM) vs
  // ops that needed at least one secondary-storage read (SS), classified
  // by the store's thread-local op-class publication. Both empty for
  // stores that don't classify (e.g. MemoryStore) or when latency
  // recording is off.
  Histogram mm_latency_micros;
  Histogram ss_latency_micros;
  double mm_p50_micros = 0;
  double mm_p99_micros = 0;
  double ss_p50_micros = 0;
  double ss_p99_micros = 0;

  // Store-side maintenance attribution over the run (Stats() deltas;
  // LoadAndRun includes the load phase). foreground_maintenance_ops == 0
  // means no application thread paid for eviction/GC/consolidation.
  uint64_t foreground_maintenance_ops = 0;
  uint64_t background_maintenance_steps = 0;
  uint64_t write_stalls = 0;
  uint64_t stall_micros_total = 0;

  std::string ToString() const;
};

// Drives any KvStore with T worker threads, each consuming an
// independent deterministic op stream (Workload(spec, thread_seed_offset))
// — the multi-core harness the paper's ops/CPU-second comparisons assume.
//
// LoadAndRun() runs both phases on the same worker threads with a barrier
// between them: every thread finishes its load partition before any
// thread's measured op executes, so the timed phase sees a fully loaded
// store and no load traffic.
class Runner {
 public:
  Runner(core::KvStore* store, WorkloadSpec spec, RunnerOptions options = {});

  // Load phase only: partitions [0, record_count) across threads.
  Status Load();

  // Measured phase only (store must already be loaded).
  RunReport Run();

  // Load, barrier, run.
  RunReport LoadAndRun();

 private:
  core::KvStore* store_;
  WorkloadSpec spec_;
  RunnerOptions options_;
};

}  // namespace costperf::workload

#endif  // COSTPERF_WORKLOAD_RUNNER_H_
