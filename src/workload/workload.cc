#include "workload/workload.h"

#include <cstdio>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace costperf::workload {

namespace {

WorkloadSpec BaseSpec(uint64_t records) {
  WorkloadSpec s;
  s.record_count = records;
  return s;
}

}  // namespace

WorkloadSpec WorkloadSpec::YcsbA(uint64_t records) {
  WorkloadSpec s = BaseSpec(records);
  s.read_proportion = 0.5;
  s.update_proportion = 0.5;
  return s;
}

WorkloadSpec WorkloadSpec::YcsbB(uint64_t records) {
  WorkloadSpec s = BaseSpec(records);
  s.read_proportion = 0.95;
  s.update_proportion = 0.05;
  return s;
}

WorkloadSpec WorkloadSpec::YcsbC(uint64_t records) {
  WorkloadSpec s = BaseSpec(records);
  s.read_proportion = 1.0;
  return s;
}

WorkloadSpec WorkloadSpec::YcsbD(uint64_t records) {
  WorkloadSpec s = BaseSpec(records);
  s.read_proportion = 0.95;
  s.insert_proportion = 0.05;
  s.distribution = Distribution::kLatest;
  return s;
}

WorkloadSpec WorkloadSpec::YcsbE(uint64_t records) {
  WorkloadSpec s = BaseSpec(records);
  s.scan_proportion = 0.95;
  s.insert_proportion = 0.05;
  s.read_proportion = 0.0;
  return s;
}

WorkloadSpec WorkloadSpec::YcsbF(uint64_t records) {
  WorkloadSpec s = BaseSpec(records);
  s.read_proportion = 0.5;
  s.rmw_proportion = 0.5;
  return s;
}

Workload::Workload(WorkloadSpec spec, uint64_t thread_seed_offset)
    : spec_(spec),
      rng_(spec.seed + thread_seed_offset * 0x9E3779B97F4A7C15ull),
      insert_cursor_(spec.record_count) {
  uint64_t dseed = spec.seed ^ (thread_seed_offset + 1);
  switch (spec_.distribution) {
    case Distribution::kUniform:
      break;
    case Distribution::kZipfian:
      zipf_ = std::make_unique<ZipfianGenerator>(spec_.record_count,
                                                 spec_.zipf_theta, dseed);
      break;
    case Distribution::kScrambledZipfian:
      scrambled_ = std::make_unique<ScrambledZipfianGenerator>(
          spec_.record_count, spec_.zipf_theta, dseed);
      break;
    case Distribution::kLatest:
      latest_ = std::make_unique<LatestGenerator>(spec_.record_count,
                                                  spec_.zipf_theta, dseed);
      break;
    case Distribution::kHotspot:
      hotspot_ = std::make_unique<HotspotGenerator>(
          spec_.record_count, spec_.hotspot_set_fraction,
          spec_.hotspot_access_fraction, dseed);
      break;
  }
}

std::string Workload::KeyAt(uint64_t i) const {
  std::string key;
  KeyAt(i, &key);
  return key;
}

void Workload::KeyAt(uint64_t i, std::string* out) const {
  // Hand-rolled 12-digit zero-padded formatting: this runs once per
  // generated op, and snprintf's format parsing is a measurable slice of
  // the in-cache op budget.
  char buf[12];
  for (int d = 11; d >= 0; --d) {
    buf[d] = static_cast<char>('0' + i % 10);
    i /= 10;
  }
  out->clear();
  out->reserve(spec_.key_prefix.size() + sizeof(buf));
  out->append(spec_.key_prefix);
  out->append(buf, sizeof(buf));
}

uint64_t Workload::NextKeyIndex() {
  switch (spec_.distribution) {
    case Distribution::kUniform:
      return rng_.Uniform(insert_cursor_);
    case Distribution::kZipfian:
      return zipf_->Next();
    case Distribution::kScrambledZipfian:
      return scrambled_->Next();
    case Distribution::kLatest:
      latest_->set_max(insert_cursor_);
      return latest_->Next();
    case Distribution::kHotspot:
      return hotspot_->Next();
  }
  return 0;
}

std::string Workload::RandomValue() {
  std::string v(spec_.value_size, '\0');
  if (spec_.compressible_values) {
    // Structured payload, as real records tend to be: a random serial
    // followed by a repeated field template. Compresses to roughly the
    // ratios the paper's §7.2 CSS tier assumes; incompressible noise
    // (the default) would gate the tier off entirely.
    char frag[64];
    const int n =
        snprintf(frag, sizeof(frag), "id=%08llx|status=active|region=2|",
                 static_cast<unsigned long long>(rng_.Next()));
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = frag[i % static_cast<size_t>(n)];
    }
    return v;
  }
  rng_.Fill(v.data(), v.size());
  return v;
}

Op Workload::NextOp() {
  Op op;
  NextOp(&op);
  return op;
}

void Workload::NextOp(Op* op) {
  op->value.clear();
  op->scan_len = 0;
  double dice = rng_.NextDouble();
  double acc = spec_.read_proportion;
  if (dice < acc) {
    op->type = OpType::kRead;
    KeyAt(NextKeyIndex(), &op->key);
    return;
  }
  acc += spec_.update_proportion;
  if (dice < acc) {
    op->type = OpType::kUpdate;
    KeyAt(NextKeyIndex(), &op->key);
    op->value = RandomValue();
    return;
  }
  acc += spec_.insert_proportion;
  if (dice < acc) {
    op->type = OpType::kInsert;
    KeyAt(insert_cursor_++, &op->key);
    op->value = RandomValue();
    return;
  }
  acc += spec_.scan_proportion;
  if (dice < acc) {
    op->type = OpType::kScan;
    KeyAt(NextKeyIndex(), &op->key);
    op->scan_len = 1 + rng_.Uniform(spec_.max_scan_len);
    return;
  }
  op->type = OpType::kReadModifyWrite;
  KeyAt(NextKeyIndex(), &op->key);
  op->value = RandomValue();
}

Status Workload::Load(core::KvStore* store) {
  return LoadRange(store, 0, spec_.record_count);
}

Status Workload::LoadRange(core::KvStore* store, uint64_t begin,
                           uint64_t end) {
  for (uint64_t i = begin; i < end; ++i) {
    Status s = store->Put(Slice(KeyAt(i)), Slice(RandomValue()));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

RunResult RunWorkload(core::KvStore* store, Workload* workload,
                      uint64_t op_count) {
  RunResult result;
  std::vector<std::pair<std::string, std::string>> scan_buf;
  RealClock* wall = RealClock::Global();
  const uint64_t wall_start = wall->NowNanos();
  const uint64_t cpu_start = ThreadCpuNanos();
  for (uint64_t i = 0; i < op_count; ++i) {
    Op op = workload->NextOp();
    Status s;
    switch (op.type) {
      case OpType::kRead: {
        auto r = store->Get(Slice(op.key));
        s = r.ok() || r.status().IsNotFound() ? Status::Ok() : r.status();
        break;
      }
      case OpType::kUpdate:
      case OpType::kInsert:
        s = store->Put(Slice(op.key), Slice(op.value));
        break;
      case OpType::kScan:
        s = store->Scan(Slice(op.key), op.scan_len, &scan_buf);
        break;
      case OpType::kReadModifyWrite: {
        auto r = store->Get(Slice(op.key));
        std::string v = r.ok() ? *r : std::string();
        v += op.value;
        if (v.size() > 2 * workload->spec().value_size) {
          v.resize(workload->spec().value_size);
        }
        s = store->Put(Slice(op.key), Slice(v));
        break;
      }
    }
    if (!s.ok()) result.failed_ops++;
  }
  const uint64_t cpu_end = ThreadCpuNanos();
  const uint64_t wall_end = wall->NowNanos();
  result.ops = op_count;
  result.cpu_seconds = static_cast<double>(cpu_end - cpu_start) * 1e-9;
  result.wall_seconds = static_cast<double>(wall_end - wall_start) * 1e-9;
  result.ops_per_cpu_sec =
      result.cpu_seconds > 0 ? op_count / result.cpu_seconds : 0;
  result.ops_per_wall_sec =
      result.wall_seconds > 0 ? op_count / result.wall_seconds : 0;
  return result;
}

RunResult RunWorkloadThreaded(core::KvStore* store, const WorkloadSpec& spec,
                              uint64_t ops_per_thread, int threads) {
  std::vector<RunResult> results(threads);
  std::vector<std::thread> ts;
  RealClock* wall = RealClock::Global();
  const uint64_t wall_start = wall->NowNanos();
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Workload w(spec, /*thread_seed_offset=*/t + 1);
      results[t] = RunWorkload(store, &w, ops_per_thread);
    });
  }
  for (auto& th : ts) th.join();
  const uint64_t wall_end = wall->NowNanos();

  RunResult total;
  for (const auto& r : results) {
    total.ops += r.ops;
    total.cpu_seconds += r.cpu_seconds;
    total.failed_ops += r.failed_ops;
  }
  total.wall_seconds = static_cast<double>(wall_end - wall_start) * 1e-9;
  total.ops_per_cpu_sec =
      total.cpu_seconds > 0 ? total.ops / total.cpu_seconds : 0;
  total.ops_per_wall_sec =
      total.wall_seconds > 0 ? total.ops / total.wall_seconds : 0;
  return total;
}

}  // namespace costperf::workload
