#ifndef COSTPERF_WORKLOAD_WORKLOAD_H_
#define COSTPERF_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "core/kv_store.h"

namespace costperf::workload {

enum class Distribution {
  kUniform,
  kZipfian,           // rank-ordered (key 0 hottest)
  kScrambledZipfian,  // YCSB default: hot keys scattered
  kLatest,
  kHotspot,
};

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };

// A YCSB-flavored workload description. Proportions must sum to ~1.
struct WorkloadSpec {
  uint64_t record_count = 100'000;
  double read_proportion = 1.0;
  double update_proportion = 0.0;
  double insert_proportion = 0.0;
  double scan_proportion = 0.0;
  double rmw_proportion = 0.0;

  Distribution distribution = Distribution::kScrambledZipfian;
  double zipf_theta = 0.99;
  double hotspot_set_fraction = 0.1;
  double hotspot_access_fraction = 0.9;

  size_t value_size = 100;
  // Structured (compressible) values instead of random noise. The CSS
  // tier benches need payloads that actually compress; noise keeps the
  // demotion ratio gate shut.
  bool compressible_values = false;
  size_t max_scan_len = 100;
  std::string key_prefix = "user";
  uint64_t seed = 0xC0FFEE;

  // When > 1, the Runner groups consecutive ops and issues them through
  // KvStore::MultiGet / KvStore::WriteBatch instead of one call per op.
  size_t batch_size = 1;

  // YCSB core workload presets.
  static WorkloadSpec YcsbA(uint64_t records);  // 50/50 read/update
  static WorkloadSpec YcsbB(uint64_t records);  // 95/5 read/update
  static WorkloadSpec YcsbC(uint64_t records);  // 100% read
  static WorkloadSpec YcsbD(uint64_t records);  // 95/5 read-latest/insert
  static WorkloadSpec YcsbE(uint64_t records);  // 95/5 scan/insert
  static WorkloadSpec YcsbF(uint64_t records);  // 50/50 read/RMW
};

// One generated operation.
struct Op {
  OpType type = OpType::kRead;
  std::string key;
  std::string value;     // for updates/inserts
  size_t scan_len = 0;   // for scans
};

// Deterministic operation stream for one thread.
class Workload {
 public:
  explicit Workload(WorkloadSpec spec, uint64_t thread_seed_offset = 0);

  // Key for record index i ("user0000001234"-style, fixed width so
  // lexicographic order == numeric order).
  std::string KeyAt(uint64_t i) const;
  // Formats into *out (capacity reuse avoids the per-op key allocation
  // on the hot generation path).
  void KeyAt(uint64_t i, std::string* out) const;

  Op NextOp();
  // In-place variant: reuses op->key/op->value capacity across calls.
  // Generates the same deterministic stream as NextOp().
  void NextOp(Op* op);

  // Inserts all `record_count` records (sequential keys, random values).
  Status Load(core::KvStore* store);

  // Inserts records [begin, end) — a thread's partition of the load phase
  // when the Runner parallelizes loading.
  Status LoadRange(core::KvStore* store, uint64_t begin, uint64_t end);

  const WorkloadSpec& spec() const { return spec_; }
  uint64_t inserted_count() const { return insert_cursor_; }

 private:
  uint64_t NextKeyIndex();
  std::string RandomValue();

  WorkloadSpec spec_;
  Random rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  std::unique_ptr<ScrambledZipfianGenerator> scrambled_;
  std::unique_ptr<LatestGenerator> latest_;
  std::unique_ptr<HotspotGenerator> hotspot_;
  uint64_t insert_cursor_;
};

// Result of a measured run. CPU seconds is thread CPU time, matching the
// paper's definition of performance ("the time the core spends executing
// the operation", excluding I/O waits).
struct RunResult {
  uint64_t ops = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  double ops_per_cpu_sec = 0;
  double ops_per_wall_sec = 0;
  uint64_t failed_ops = 0;
};

// Runs `op_count` operations single-threaded on the store.
RunResult RunWorkload(core::KvStore* store, Workload* workload,
                      uint64_t op_count);

// Runs on `threads` threads, each with an independent op stream; results
// are summed (CPU seconds aggregate across threads).
RunResult RunWorkloadThreaded(core::KvStore* store, const WorkloadSpec& spec,
                              uint64_t ops_per_thread, int threads);

}  // namespace costperf::workload

#endif  // COSTPERF_WORKLOAD_WORKLOAD_H_
