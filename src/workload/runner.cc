#include "workload/runner.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/op_class.h"
#include "common/thread_annotations.h"

namespace costperf::workload {

namespace {

// Reusable rendezvous: every thread that calls Arrive() blocks until all
// `n` participants have arrived. Keeps the load phase strictly before the
// measured phase across all workers.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(int n) : remaining_(n), size_(n) {}

  void Arrive() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const uint64_t gen = generation_;
    if (--remaining_ == 0) {
      remaining_ = size_;
      ++generation_;
      cv_.notify_all();
    } else {
      // Explicit predicate loop (not the lambda overload): the wait
      // re-acquires mu_ before each generation_ read, and keeping the
      // read in this scope lets -Wthread-safety see the lock is held.
      while (generation_ == gen) cv_.wait(mu_);
    }
  }

 private:
  costperf::Mutex mu_;
  std::condition_variable_any cv_;
  int remaining_ GUARDED_BY(mu_);
  const int size_;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
};

struct ThreadResult {
  uint64_t ops = 0;
  uint64_t failed_ops = 0;
  uint64_t batch_calls = 0;
  uint64_t op_counts[5] = {};
  double cpu_seconds = 0;
  uint64_t wall_start_nanos = 0;
  uint64_t wall_end_nanos = 0;
  Histogram latency_micros;
  Histogram mm_latency_micros;
  Histogram ss_latency_micros;
  Status load_status;
};

// Executes one non-batchable op (scan / RMW / anything in unbatched
// mode). Returns false on failure. `read_buf` is a per-thread value
// buffer reused across reads so in-cache Gets don't allocate.
bool ExecuteOp(core::KvStore* store, const Op& op, size_t value_size,
               std::vector<std::pair<std::string, std::string>>* scan_buf,
               std::string* read_buf) {
  switch (op.type) {
    case OpType::kRead: {
      Status s = store->Get(Slice(op.key), read_buf);
      return s.ok() || s.IsNotFound();
    }
    case OpType::kUpdate:
    case OpType::kInsert:
      return store->Put(Slice(op.key), Slice(op.value)).ok();
    case OpType::kScan:
      return store->Scan(Slice(op.key), op.scan_len, scan_buf).ok();
    case OpType::kReadModifyWrite: {
      Status s = store->Get(Slice(op.key), read_buf);
      std::string v = s.ok() ? *read_buf : std::string();
      v += op.value;
      if (v.size() > 2 * value_size) v.resize(value_size);
      return store->Put(Slice(op.key), Slice(v)).ok();
    }
  }
  return false;
}

class LatencyTimer {
 public:
  LatencyTimer(bool enabled, uint32_t sample, Histogram* hist,
               Histogram* mm_hist, Histogram* ss_hist)
      : enabled_(enabled),
        sample_(sample < 1 ? 1 : sample),
        hist_(hist),
        mm_hist_(mm_hist),
        ss_hist_(ss_hist) {}

  void Start() {
    armed_ = enabled_ && ++round_ >= sample_;
    if (armed_) {
      round_ = 0;
      opclass::Reset();  // the store publishes MM/SS during the op
      start_ = RealClock::Global()->NowNanos();
    }
  }
  void Stop() {
    if (armed_) {
      const double micros =
          static_cast<double>(RealClock::Global()->NowNanos() - start_) *
          1e-3;
      hist_->Add(micros);
      switch (opclass::Last()) {
        case OpClass::kMm:
          mm_hist_->Add(micros);
          break;
        case OpClass::kSs:
          ss_hist_->Add(micros);
          break;
        case OpClass::kUnknown:
          break;  // store doesn't classify
      }
    }
  }

 private:
  const bool enabled_;
  const uint32_t sample_;
  Histogram* hist_;
  Histogram* mm_hist_;
  Histogram* ss_hist_;
  uint32_t round_ = 0;
  bool armed_ = false;
  uint64_t start_ = 0;
};

void RunPhase(core::KvStore* store, const WorkloadSpec& spec,
              const RunnerOptions& options, int thread_index,
              ThreadResult* result) {
  Workload workload(spec, /*thread_seed_offset=*/thread_index + 1);
  std::vector<std::pair<std::string, std::string>> scan_buf;
  std::string read_buf;
  LatencyTimer timer(options.record_latencies, options.latency_sample,
                     &result->latency_micros, &result->mm_latency_micros,
                     &result->ss_latency_micros);
  const size_t batch = std::max<size_t>(1, spec.batch_size);

  // Batch staging and results, reused across groups (the out-param batch
  // surface keeps value-buffer capacity across calls, so the batched loop
  // settles into zero allocations per group). read_keys is a string pool:
  // it only ever grows to the batch size and keys are assign()ed into the
  // existing elements, so staging a read costs a copy into retained
  // capacity, not a fresh string per key.
  std::vector<std::string> read_keys;
  size_t staged_reads = 0;
  std::vector<core::KvEntry> write_entries;
  std::vector<Op> singles;
  core::BatchReadResult read_result;
  core::BatchWriteResult write_result;

  result->wall_start_nanos = RealClock::Global()->NowNanos();
  const uint64_t cpu_start = ThreadCpuNanos();

  uint64_t done = 0;
  Op op;  // reused across ops in both modes: key/value capacity persists
  while (done < options.ops_per_thread) {
    if (batch == 1) {
      workload.NextOp(&op);
      ++result->op_counts[static_cast<int>(op.type)];
      timer.Start();
      bool ok = ExecuteOp(store, op, spec.value_size, &scan_buf, &read_buf);
      timer.Stop();
      if (!ok) ++result->failed_ops;
      ++done;
      continue;
    }

    // Batched mode: stage up to `batch` generated ops, then issue reads
    // as one MultiGet, updates/inserts as one WriteBatch, and the rest
    // (scans, RMW) individually.
    const uint64_t group =
        std::min<uint64_t>(batch, options.ops_per_thread - done);
    staged_reads = 0;
    write_entries.clear();
    singles.clear();
    for (uint64_t i = 0; i < group; ++i) {
      workload.NextOp(&op);
      ++result->op_counts[static_cast<int>(op.type)];
      switch (op.type) {
        case OpType::kRead:
          if (staged_reads == read_keys.size()) read_keys.emplace_back();
          read_keys[staged_reads].assign(op.key);
          ++staged_reads;
          break;
        case OpType::kUpdate:
        case OpType::kInsert:
          write_entries.emplace_back(std::move(op.key), std::move(op.value));
          break;
        default:
          singles.push_back(op);
      }
    }
    if (staged_reads != 0) {
      timer.Start();
      (void)store->MultiGet(
          std::span<const std::string>(read_keys.data(), staged_reads),
          &read_result);
      timer.Stop();
      ++result->batch_calls;
      for (const Status& s : read_result.statuses) {
        if (!s.ok() && !s.IsNotFound()) ++result->failed_ops;
      }
    }
    if (!write_entries.empty()) {
      timer.Start();
      (void)store->WriteBatch(write_entries, &write_result);
      timer.Stop();
      ++result->batch_calls;
      // Per-entry statuses: every failed entry counts, not just the first.
      result->failed_ops += write_entries.size() - write_result.ok_count;
    }
    for (const Op& single : singles) {
      timer.Start();
      bool ok =
          ExecuteOp(store, single, spec.value_size, &scan_buf, &read_buf);
      timer.Stop();
      if (!ok) ++result->failed_ops;
    }
    done += group;
  }

  result->cpu_seconds =
      static_cast<double>(ThreadCpuNanos() - cpu_start) * 1e-9;
  result->wall_end_nanos = RealClock::Global()->NowNanos();
  result->ops = options.ops_per_thread;
}

RunReport MergeResults(int threads, std::vector<ThreadResult>& results) {
  RunReport report;
  report.threads = threads;
  uint64_t wall_start = ~0ull, wall_end = 0;
  for (ThreadResult& r : results) {
    if (!r.load_status.ok()) ++report.failed_ops;
    report.ops += r.ops;
    report.failed_ops += r.failed_ops;
    report.batch_calls += r.batch_calls;
    for (int i = 0; i < 5; ++i) report.op_counts[i] += r.op_counts[i];
    report.cpu_seconds_total += r.cpu_seconds;
    report.cpu_seconds_max = std::max(report.cpu_seconds_max, r.cpu_seconds);
    wall_start = std::min(wall_start, r.wall_start_nanos);
    wall_end = std::max(wall_end, r.wall_end_nanos);
    report.latency_micros.Merge(r.latency_micros);
    report.mm_latency_micros.Merge(r.mm_latency_micros);
    report.ss_latency_micros.Merge(r.ss_latency_micros);
  }
  report.wall_seconds =
      wall_end > wall_start
          ? static_cast<double>(wall_end - wall_start) * 1e-9
          : 0;
  if (report.wall_seconds > 0) {
    report.ops_per_wall_sec = report.ops / report.wall_seconds;
  }
  if (report.cpu_seconds_total > 0) {
    report.ops_per_cpu_sec = report.ops / report.cpu_seconds_total;
  }
  if (report.cpu_seconds_max > 0) {
    report.modeled_parallel_ops_per_sec = report.ops / report.cpu_seconds_max;
  }
  if (report.latency_micros.count() > 0) {
    report.p50_micros = report.latency_micros.Percentile(50.0);
    report.p99_micros = report.latency_micros.Percentile(99.0);
    report.p999_micros = report.latency_micros.Percentile(99.9);
  }
  if (report.mm_latency_micros.count() > 0) {
    report.mm_p50_micros = report.mm_latency_micros.Percentile(50.0);
    report.mm_p99_micros = report.mm_latency_micros.Percentile(99.0);
  }
  if (report.ss_latency_micros.count() > 0) {
    report.ss_p50_micros = report.ss_latency_micros.Percentile(50.0);
    report.ss_p99_micros = report.ss_latency_micros.Percentile(99.0);
  }
  return report;
}

// Folds the run-interval store counters (stalls, maintenance
// attribution) into the report as before/after deltas.
void AddStatsDeltas(const core::KvStoreStats& before,
                    const core::KvStoreStats& after, RunReport* report) {
  report->foreground_maintenance_ops =
      after.foreground_maintenance_ops - before.foreground_maintenance_ops;
  report->background_maintenance_steps =
      after.background_maintenance_steps - before.background_maintenance_steps;
  report->write_stalls = after.write_stalls - before.write_stalls;
  report->stall_micros_total =
      after.stall_micros_total - before.stall_micros_total;
}

}  // namespace

std::string RunReport::ToString() const {
  char buf[640];
  snprintf(buf, sizeof(buf),
           "threads=%d ops=%llu failed=%llu wall=%.3fs cpu=%.3fs | "
           "%.0f ops/wall-sec, %.0f ops/cpu-sec, %.0f modeled ops/sec | "
           "p50=%.1fus p99=%.1fus p999=%.1fus | "
           "r/u/i/s/rmw=%llu/%llu/%llu/%llu/%llu batch_calls=%llu",
           threads, (unsigned long long)ops, (unsigned long long)failed_ops,
           wall_seconds, cpu_seconds_total, ops_per_wall_sec,
           ops_per_cpu_sec, modeled_parallel_ops_per_sec, p50_micros,
           p99_micros, p999_micros, (unsigned long long)op_counts[0],
           (unsigned long long)op_counts[1], (unsigned long long)op_counts[2],
           (unsigned long long)op_counts[3], (unsigned long long)op_counts[4],
           (unsigned long long)batch_calls);
  std::string out = buf;
  if (mm_latency_micros.count() > 0 || ss_latency_micros.count() > 0) {
    snprintf(buf, sizeof(buf),
             "\nclasses: mm=%llu (p50=%.1fus p99=%.1fus) "
             "ss=%llu (p50=%.1fus p99=%.1fus)",
             (unsigned long long)mm_latency_micros.count(), mm_p50_micros,
             mm_p99_micros, (unsigned long long)ss_latency_micros.count(),
             ss_p50_micros, ss_p99_micros);
    out += buf;
  }
  if (foreground_maintenance_ops > 0 || background_maintenance_steps > 0 ||
      write_stalls > 0) {
    snprintf(buf, sizeof(buf),
             "\nmaintenance: foreground_ops=%llu background_steps=%llu "
             "write_stalls=%llu stall_micros=%llu",
             (unsigned long long)foreground_maintenance_ops,
             (unsigned long long)background_maintenance_steps,
             (unsigned long long)write_stalls,
             (unsigned long long)stall_micros_total);
    out += buf;
  }
  return out;
}

Runner::Runner(core::KvStore* store, WorkloadSpec spec, RunnerOptions options)
    : store_(store), spec_(spec), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
}

Status Runner::Load() {
  const int threads = options_.threads;
  const uint64_t per =
      (spec_.record_count + threads - 1) / static_cast<uint64_t>(threads);
  std::vector<Status> statuses(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const uint64_t begin = std::min<uint64_t>(t * per, spec_.record_count);
      const uint64_t end = std::min<uint64_t>(begin + per, spec_.record_count);
      Workload loader(spec_, /*thread_seed_offset=*/1000 + t);
      statuses[t] = loader.LoadRange(store_, begin, end);
    });
  }
  for (auto& w : workers) w.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

RunReport Runner::Run() {
  const int threads = options_.threads;
  std::vector<ThreadResult> results(threads);
  PhaseBarrier barrier(threads);
  const core::KvStoreStats before = store_->Stats();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      barrier.Arrive();  // synchronized start: no thread measures alone
      RunPhase(store_, spec_, options_, t, &results[t]);
    });
  }
  for (auto& w : workers) w.join();
  RunReport report = MergeResults(threads, results);
  AddStatsDeltas(before, store_->Stats(), &report);
  return report;
}

RunReport Runner::LoadAndRun() {
  if (!options_.parallel_load) {
    Workload loader(spec_);
    Status s = loader.Load(store_);
    if (!s.ok()) {
      RunReport failed;
      failed.threads = options_.threads;
      failed.failed_ops = 1;
      return failed;
    }
    return Run();
  }

  const int threads = options_.threads;
  std::vector<ThreadResult> results(threads);
  PhaseBarrier barrier(threads);
  const core::KvStoreStats before = store_->Stats();
  const uint64_t per =
      (spec_.record_count + threads - 1) / static_cast<uint64_t>(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const uint64_t begin = std::min<uint64_t>(t * per, spec_.record_count);
      const uint64_t end = std::min<uint64_t>(begin + per, spec_.record_count);
      Workload loader(spec_, /*thread_seed_offset=*/1000 + t);
      results[t].load_status = loader.LoadRange(store_, begin, end);
      // Phase barrier: every partition is fully loaded before any
      // thread's first measured op.
      barrier.Arrive();
      RunPhase(store_, spec_, options_, t, &results[t]);
    });
  }
  for (auto& w : workers) w.join();
  RunReport report = MergeResults(threads, results);
  AddStatsDeltas(before, store_->Stats(), &report);
  return report;
}

}  // namespace costperf::workload
