#ifndef COSTPERF_COMMON_SLICE_H_
#define COSTPERF_COMMON_SLICE_H_

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>

namespace costperf {

// A non-owning byte range, the universal key/value currency of the library.
// Thin wrapper over std::string_view that adds store-flavored helpers
// (compare, starts_with on raw bytes) and makes intent explicit at call
// sites: a Slice never owns its bytes; the caller guarantees lifetime.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(s ? strlen(s) : 0) {}       // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  // Three-way comparison: <0, 0, >0 as memcmp.
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace costperf

#endif  // COSTPERF_COMMON_SLICE_H_
