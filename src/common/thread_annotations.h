#ifndef COSTPERF_COMMON_THREAD_ANNOTATIONS_H_
#define COSTPERF_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (-Wthread-safety), compiled to
// nothing under other compilers. The repo's locking discipline is declared
// with these and enforced by the -DCOSTPERF_ANALYZE=ON build mode (Clang
// only; see DESIGN.md "Static analysis layer"):
//
//   CAPABILITY("mutex")   on a lock class: instances are capabilities.
//   GUARDED_BY(mu)        on a member: any access requires holding mu.
//   PT_GUARDED_BY(mu)     on a pointer member: dereference requires mu
//                         (reading the pointer value itself does not).
//   REQUIRES(mu)          on a function: caller must already hold mu.
//   EXCLUDES(mu)          on a function: caller must NOT hold mu.
//   ACQUIRE / RELEASE     on lock/unlock methods.
//   TRY_ACQUIRE(true)     on try-lock methods returning true on success.
//   SCOPED_CAPABILITY     on RAII guard classes.
//
// Convention (mirrors Abseil/Chromium): every std::mutex-protected member
// in annotated classes is declared through common::Mutex/SharedMutex
// (common/mutex.h) so the analysis can see acquire/release pairs.

#if defined(__clang__) && !defined(SWIG)
#define COSTPERF_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define COSTPERF_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) COSTPERF_THREAD_ANNOTATION__(capability(x))

#define SCOPED_CAPABILITY COSTPERF_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) COSTPERF_THREAD_ANNOTATION__(guarded_by(x))

#define PT_GUARDED_BY(x) COSTPERF_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  COSTPERF_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  COSTPERF_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  COSTPERF_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  COSTPERF_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  COSTPERF_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  COSTPERF_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  COSTPERF_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  COSTPERF_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  COSTPERF_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  COSTPERF_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  COSTPERF_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) COSTPERF_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  COSTPERF_THREAD_ANNOTATION__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  COSTPERF_THREAD_ANNOTATION__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) COSTPERF_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  COSTPERF_THREAD_ANNOTATION__(no_thread_safety_analysis)

// --- Epoch capabilities -------------------------------------------------
//
// The epoch-based reclamation protocol ("never dereference a latch-free
// shared pointer without an active EpochGuard") is modeled as a capability
// too: EpochManager is the capability, EpochGuard is the SCOPED_CAPABILITY
// that acquires it, and every function whose contract is "caller must be
// inside an epoch" declares REQUIRES_EPOCH(mgr). Under
// -DCOSTPERF_ANALYZE=ON an unguarded call path is a compile error; under
// GCC the macros vanish and the debug-only EpochManager::AssertActive()
// runtime backstop takes over.
//
// These are thin aliases over the generic capability attributes, kept
// separate so epoch contracts read as epoch contracts at call sites and
// can diverge from the mutex macros later (e.g. a shared/exclusive split).
//
// Caveat (same as everywhere TSA is used): the analysis is
// intra-procedural, so a nested EpochGuard taken in a callee is invisible
// to the caller — which is exactly why re-entrant Enter stays legal at
// runtime and why EpochManager::Enter/Exit themselves carry no
// ACQUIRE/RELEASE (only the RAII guard does).

// On the epoch-manager class itself: instances are capabilities.
#define EPOCH_CAPABILITY COSTPERF_THREAD_ANNOTATION__(capability("epoch"))

// On a function: caller must hold a live EpochGuard on the named manager.
#define REQUIRES_EPOCH(...) \
  COSTPERF_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

// On a function: caller must NOT be inside the named manager's epoch
// (e.g. ReclaimAll, which frees regardless of reservations).
#define EXCLUDES_EPOCH(...) \
  COSTPERF_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// On a runtime-checked assertion function: tells the analysis the epoch
// is held from here on (the dynamic complement of REQUIRES_EPOCH).
#define ASSERT_EPOCH(...) \
  COSTPERF_THREAD_ANNOTATION__(assert_capability(__VA_ARGS__))

#endif  // COSTPERF_COMMON_THREAD_ANNOTATIONS_H_
