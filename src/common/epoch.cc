#include "common/epoch.h"

namespace costperf {

namespace {
// Thread-local slot assignment, one per (thread, manager-generation). We
// key by manager pointer to support multiple managers in one process.
struct ThreadSlotCache {
  const EpochManager* mgr = nullptr;
  int slot = -1;
};
thread_local ThreadSlotCache tls_slot;
thread_local int tls_depth = 0;
}  // namespace

EpochManager::EpochManager() : global_epoch_(1), next_slot_(0) {}

EpochManager::~EpochManager() { ReclaimAll(); }

int EpochManager::RegisterThread() {
  if (tls_slot.mgr == this && tls_slot.slot >= 0) return tls_slot.slot;
  int slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  slot %= kMaxThreads;  // Wrap: slots may be shared by >kMaxThreads threads;
                        // sharing is safe but may delay reclamation.
  slots_[slot].used.store(true, std::memory_order_release);
  tls_slot.mgr = this;
  tls_slot.slot = slot;
  tls_depth = 0;
  return slot;
}

void EpochManager::Enter() {
  int slot = RegisterThread();
  if (tls_depth++ > 0) return;  // Re-entrant: keep outer reservation.
  uint64_t e = global_epoch_.load(std::memory_order_acquire);
  slots_[slot].reserved.store(e, std::memory_order_release);
}

void EpochManager::Exit() {
  int slot = RegisterThread();
  if (--tls_depth > 0) return;
  slots_[slot].reserved.store(kIdle, std::memory_order_release);
}

void EpochManager::Retire(std::function<void()> deleter) {
  uint64_t e = global_epoch_.load(std::memory_order_acquire);
  MutexLock lk(&retired_mu_);
  retired_.push_back(RetiredItem{e, std::move(deleter)});
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = global_epoch_.load(std::memory_order_acquire);
  for (int i = 0; i < kMaxThreads; ++i) {
    if (!slots_[i].used.load(std::memory_order_acquire)) continue;
    uint64_t r = slots_[i].reserved.load(std::memory_order_acquire);
    if (r != kIdle && r < min_epoch) min_epoch = r;
  }
  return min_epoch;
}

size_t EpochManager::TryReclaim() {
  global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t safe = MinActiveEpoch();

  std::vector<std::function<void()>> to_run;
  {
    MutexLock lk(&retired_mu_);
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      // An item retired at epoch E may still be referenced by threads in
      // epochs <= E, so it is freeable only once min active epoch > E.
      if (retired_[i].epoch < safe) {
        to_run.push_back(std::move(retired_[i].deleter));
      } else {
        if (kept != i) retired_[kept] = std::move(retired_[i]);
        ++kept;
      }
    }
    retired_.resize(kept);
  }
  for (auto& d : to_run) d();
  return to_run.size();
}

size_t EpochManager::ReclaimAll() {
  std::vector<RetiredItem> items;
  {
    MutexLock lk(&retired_mu_);
    items.swap(retired_);
  }
  for (auto& it : items) it.deleter();
  return items.size();
}

size_t EpochManager::retired_count() const {
  MutexLock lk(&retired_mu_);
  return retired_.size();
}

}  // namespace costperf
