#include "common/epoch.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

namespace costperf {

namespace {
// Thread-local slot assignments, one per (thread, manager) pair. A
// process holds many managers at once (one per Bw-tree, so one per
// shard), and a worker thread hops between them on every operation — a
// single-entry cache would re-register on every hop, burn a fresh slot
// each time, wrap the slot array, and end with two threads overwriting
// each other's reservation in one shared slot (a use-after-free, not a
// slowdown). Entries are keyed by manager pointer (compared, never
// dereferenced, so a dead manager's stale entry is harmless) with the
// guard depth kept per entry; an entry is only evicted at depth 0, so a
// held guard can never lose its slot binding.
struct ThreadSlotCache {
  const EpochManager* mgr = nullptr;
  int slot = -1;
  int depth = 0;
};
constexpr int kTlsSlotCacheSize = 16;
thread_local ThreadSlotCache tls_slots[kTlsSlotCacheSize];
}  // namespace

EpochManager::EpochManager() : global_epoch_(1), next_slot_(0) {}

EpochManager::~EpochManager() { ReclaimAll(); }

namespace {
// Move-to-front on hit: RegisterThread/Enter/Exit each scan this array
// once per call, so the hot manager's entry belongs at index 0. Swapping
// a mid-guard entry is fine — depth travels with the contents and every
// caller re-finds its entry by manager pointer.
ThreadSlotCache* LookupEntry(const EpochManager* mgr) {
  if (tls_slots[0].mgr == mgr && tls_slots[0].slot >= 0) {
    return &tls_slots[0];
  }
  for (int i = 1; i < kTlsSlotCacheSize; ++i) {
    if (tls_slots[i].mgr == mgr && tls_slots[i].slot >= 0) {
      std::swap(tls_slots[i], tls_slots[0]);
      return &tls_slots[0];
    }
  }
  return nullptr;
}
}  // namespace

int EpochManager::RegisterThread() {
  ThreadSlotCache* entry = LookupEntry(this);
  if (entry != nullptr) {
    // The entry can be stale across manager generations at the same
    // address; re-assert used so reclamation scans this slot.
    Slot& s = slots_[entry->slot];
    if (!s.used.load(std::memory_order_relaxed)) {
      s.used.store(true, std::memory_order_release);
    }
    return entry->slot;
  }
  // Evict a depth-0 entry (its slot holds no reservation, losing the
  // binding just means re-registering later). Every entry being mid-guard
  // would need >kTlsSlotCacheSize managers nested on one thread — no
  // caller does that, and continuing would corrupt depth tracking.
  ThreadSlotCache* victim = nullptr;
  for (int i = 0; i < kTlsSlotCacheSize; ++i) {
    if (tls_slots[i].depth == 0) {
      victim = &tls_slots[i];
      break;
    }
  }
  if (victim == nullptr) std::abort();
  int slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  slot %= kMaxThreads;  // Wrap: slots may be shared by >kMaxThreads threads;
                        // Enter's CAS claim keeps sharing safe (sharers
                        // wait, reservations are never overwritten).
  slots_[slot].used.store(true, std::memory_order_release);
  victim->mgr = this;
  victim->slot = slot;
  victim->depth = 0;
  return slot;
}

void EpochManager::Enter() {
  ThreadSlotCache* entry = LookupEntry(this);
  if (entry == nullptr) {
    RegisterThread();
    entry = LookupEntry(this);
  }
  if (entry->depth++ > 0) return;  // Re-entrant: keep outer reservation.
  Slot& s = slots_[entry->slot];
  // Entry may be stale across manager generations at the same address;
  // re-assert used so MinActiveEpoch scans this slot (RegisterThread does
  // the same, but the cache-hit path above skips it).
  if (!s.used.load(std::memory_order_relaxed)) {
    s.used.store(true, std::memory_order_release);
  }
  // Claim-then-revalidate. The claim is a CAS from kIdle so a wrapped
  // slot shared by two threads can never have one thread overwrite the
  // other's live reservation — the latecomer waits for the holder's
  // Exit. The revalidation closes the publication race: between loading
  // the epoch and the claim becoming visible, TryReclaim can advance the
  // epoch, scan the slots, see this one idle, and free objects retired
  // at the epoch we are about to enter. seq_cst puts the claim and the
  // re-check into the single total order with TryReclaim's seq_cst
  // advance, so either the reclaimer sees our reservation, or we see its
  // advance and re-publish the newer epoch before touching any shared
  // pointer.
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  int spins = 0;
  for (;;) {
    uint64_t expect = kIdle;
    if (s.reserved.compare_exchange_strong(expect, e,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
      break;
    }
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
    e = global_epoch_.load(std::memory_order_relaxed);
  }
  for (;;) {
    uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) return;
    e = now;
    s.reserved.store(e, std::memory_order_seq_cst);
  }
}

void EpochManager::Exit() {
  ThreadSlotCache* entry = LookupEntry(this);
  if (--entry->depth > 0) return;
  slots_[entry->slot].reserved.store(kIdle, std::memory_order_release);
}

bool EpochManager::IsActiveOnThisThread() const {
  ThreadSlotCache* entry = LookupEntry(this);
  return entry != nullptr && entry->depth > 0;
}

void EpochManager::AssertActiveSlow() const {
  if (IsActiveOnThisThread()) return;
  std::fprintf(stderr,
               "epoch contract violation: thread dereferencing "
               "epoch-protected state with no live EpochGuard on "
               "EpochManager %p\n",
               static_cast<const void*>(this));
  std::abort();
}

void EpochManager::PushChain(std::atomic<RetiredNode*>* stack,
                             RetiredNode* head, RetiredNode* tail) {
  RetiredNode* cur = stack->load(std::memory_order_relaxed);
  do {
    tail->next = cur;
  } while (!stack->compare_exchange_weak(cur, head,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
}

void EpochManager::Retire(std::function<void()> deleter) {
  Slot& slot = slots_[RegisterThread()];
  // seq_cst: the stamp must be the true current epoch in the total
  // order, not a stale read — an under-stamped node could be freed while
  // a reader holding a reservation equal to the real retire epoch still
  // dereferences it.
  auto* node = new RetiredNode{
      global_epoch_.load(std::memory_order_seq_cst), std::move(deleter),
      nullptr};
  PushChain(&slot.retired, node, node);
  slot.retired_len.fetch_add(1, std::memory_order_relaxed);
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = global_epoch_.load(std::memory_order_acquire);
  for (int i = 0; i < kMaxThreads; ++i) {
    if (!slots_[i].used.load(std::memory_order_acquire)) continue;
    uint64_t r = slots_[i].reserved.load(std::memory_order_seq_cst);
    if (r != kIdle && r < min_epoch) min_epoch = r;
  }
  return min_epoch;
}

size_t EpochManager::TryReclaim() {
  // seq_cst advance: ordered against Enter's publication loop (see the
  // comment there) so the subsequent slot scan either observes every
  // reader that entered before the advance, or those readers observe the
  // advance and re-publish the newer epoch.
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t safe = MinActiveEpoch();

  size_t freed = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    Slot& slot = slots_[i];
    // Harvest the whole stack; concurrent retirers just start a new one.
    RetiredNode* head = slot.retired.exchange(nullptr,
                                              std::memory_order_acquire);
    if (head == nullptr) continue;
    RetiredNode* keep_head = nullptr;
    RetiredNode* keep_tail = nullptr;
    size_t kept = 0;
    size_t harvested = 0;
    while (head != nullptr) {
      RetiredNode* next = head->next;
      ++harvested;
      // An item retired at epoch E may still be referenced by threads in
      // epochs <= E, so it is freeable only once min active epoch > E.
      if (head->epoch < safe) {
        head->deleter();
        delete head;
        ++freed;
      } else {
        head->next = keep_head;
        keep_head = head;
        if (keep_tail == nullptr) keep_tail = head;
        ++kept;
      }
      head = next;
    }
    if (keep_head != nullptr) PushChain(&slot.retired, keep_head, keep_tail);
    slot.retired_len.fetch_sub(harvested - kept, std::memory_order_relaxed);
  }
  if (freed > 0) {
    reclaim_batches_.fetch_add(1, std::memory_order_relaxed);
    reclaimed_items_.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

size_t EpochManager::ReclaimAll() {
  size_t freed = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    Slot& slot = slots_[i];
    RetiredNode* head = slot.retired.exchange(nullptr,
                                              std::memory_order_acquire);
    size_t harvested = 0;
    while (head != nullptr) {
      RetiredNode* next = head->next;
      head->deleter();
      delete head;
      head = next;
      ++freed;
      ++harvested;
    }
    slot.retired_len.fetch_sub(harvested, std::memory_order_relaxed);
  }
  if (freed > 0) {
    reclaim_batches_.fetch_add(1, std::memory_order_relaxed);
    reclaimed_items_.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

size_t EpochManager::retired_count() const {
  size_t total = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    total += slots_[i].retired_len.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace costperf
