#ifndef COSTPERF_COMMON_CRC32_H_
#define COSTPERF_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace costperf {

// CRC-32C (Castagnoli), software table implementation. Used to checksum
// pages and log segments on the simulated flash device so corruption
// injection and torn writes are detectable, as a real store would.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

// Masked CRC (RocksDB-style rotation+offset) so that a CRC stored next to
// the data it covers does not checksum to itself.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace costperf

#endif  // COSTPERF_COMMON_CRC32_H_
