#ifndef COSTPERF_COMMON_MUTEX_H_
#define COSTPERF_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace costperf {

// std::mutex wrapped so Clang's thread-safety analysis can track it.
// std::mutex itself carries no capability attributes in libstdc++, so
// members guarded by one are invisible to -Wthread-safety; every annotated
// class in the repo declares its latches through these wrappers instead.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling so std::condition_variable_any can wait on a
  // Mutex directly. The wait re-acquires before returning, so the lock
  // state the analysis sees is unchanged across the call.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII exclusive lock, the std::lock_guard replacement for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// std::shared_mutex with reader/writer capability tracking.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_MUTEX_H_
