#ifndef COSTPERF_COMMON_SIMD_H_
#define COSTPERF_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/hot_path.h"

namespace costperf::simd {

// Small vectorized-search toolkit for the index hot paths: branchless
// lower/upper bound and equality matching over short sorted arrays of
// 64-bit key slices (Bw-tree base-page slice arrays, MassTree border and
// interior slice arrays). Both indexes reduce string comparison to
// unsigned 8-byte big-endian slices first, so one wide compare replaces
// up to four string probes.
//
// Dispatch policy (the compile-time + runtime scheme the batch-probe
// design relies on):
//  - Compile time: -DCOSTPERF_NO_SIMD (CMake option COSTPERF_NO_SIMD)
//    forces the portable scalar backend everywhere — the fallback lane
//    scripts/check.sh builds to keep it from rotting. Non-x86 targets
//    and compilers without the `target` attribute get the same scalar
//    backend automatically.
//  - Run time: on x86-64 the AVX2 backend is selected once at startup
//    via __builtin_cpu_supports("avx2"); without AVX2 an SSE2 backend
//    (baseline on x86-64) runs, so the binary never executes an
//    unsupported instruction.
//
// All functions are total: n == 0 is legal, arrays need no alignment,
// and the scalar and vector backends return bit-identical results (the
// simd lane asserts this property in tests/simd_test.cc).

#if !defined(COSTPERF_NO_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define COSTPERF_SIMD_X86 1
#else
#define COSTPERF_SIMD_X86 0
#endif

// Name of the backend selected at startup ("avx2", "sse2", "scalar");
// benches record it so BENCH_index.json rows are attributable.
const char* BackendName();

// Count of a[i] < key over sorted `a` — i.e. std::lower_bound index.
// Branchless over the whole array (n is small: <= ~256 slices per node).
size_t LowerBoundU64(const uint64_t* a, size_t n, uint64_t key);

// Count of a[i] <= key over sorted `a` — i.e. std::upper_bound index.
size_t UpperBoundU64(const uint64_t* a, size_t n, uint64_t key);

// Bitmask of positions with a[i] == key; n must be <= 32 (MassTree
// borders hold 15 entries). Bit i set <=> a[i] == key.
uint32_t MatchEqU64(const uint64_t* a, size_t n, uint64_t key);

// Big-endian 8-byte key slice at `offset`, zero-padded past the end of
// the key. Monotonic with lexicographic order for keys sharing the first
// `offset` bytes: k1 < k2 implies Slice(k1) <= Slice(k2) (ties happen
// only when the keys agree on bytes [offset, offset+8)).
COSTPERF_HOT inline uint64_t KeySliceAt(const char* data, size_t len,
                                        size_t offset) {
  unsigned char buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  if (offset < len) {
    const size_t take = len - offset < 8 ? len - offset : 8;
    std::memcpy(buf, data + offset, take);
  }
  uint64_t s = 0;
  for (int i = 0; i < 8; ++i) s = (s << 8) | buf[i];
  return s;
}

// Best-effort read prefetch of the cache line holding `p`. The batch
// probe machines issue one of these per hop so up to `interleave`
// misses are in flight per thread.
COSTPERF_HOT inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace costperf::simd

#endif  // COSTPERF_COMMON_SIMD_H_
