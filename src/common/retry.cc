#include "common/retry.h"

#include <chrono>
#include <thread>

#include "common/random.h"

namespace costperf {

bool IsTransientError(const Status& s) {
  return s.IsIoError() || s.IsUnavailable();
}

Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& fn, RetryStats* stats,
                      uint64_t seed_salt) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Random rng(policy.seed ^ Hash64(seed_salt));
  double backoff = static_cast<double>(policy.initial_backoff_nanos);
  Status s = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    s = fn();
    if (!IsTransientError(s)) return s;
    if (attempt + 1 == attempts) break;  // budget spent; report the failure
    double scale = 1.0;
    if (policy.jitter > 0.0) {
      scale = 1.0 - policy.jitter * rng.NextDouble();
    }
    uint64_t nanos = static_cast<uint64_t>(backoff * scale);
    if (stats != nullptr) {
      stats->retries++;
      stats->backoff_nanos += nanos;
    }
    if (policy.sleep) {
      policy.sleep(nanos);
    } else if (nanos > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
    }
    backoff *= policy.multiplier;
  }
  if (stats != nullptr) stats->gave_up = true;
  return s;
}

}  // namespace costperf
