#ifndef COSTPERF_COMMON_RETRY_H_
#define COSTPERF_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace costperf {

// Bounded retry with jittered exponential backoff. The k-th retry (k from
// 0) backs off initial_backoff_nanos * multiplier^k, scaled by a factor
// drawn uniformly from [1 - jitter, 1]. Sleeping is injectable so tests
// (and simulated-time runs) never block a real thread.
struct RetryPolicy {
  int max_attempts = 4;  // total tries, including the first; >= 1
  uint64_t initial_backoff_nanos = 100'000;  // 100us
  double multiplier = 2.0;
  double jitter = 0.5;  // 0 = deterministic backoff
  uint64_t seed = 0x5e771e5ull;  // jitter PRNG seed
  // Sleep function; nullptr = std::this_thread::sleep_for. Tests pass a
  // recorder or a VirtualClock advancer.
  std::function<void(uint64_t nanos)> sleep;
};

// What one RetryTransient call did, for caller-side stats aggregation.
struct RetryStats {
  uint64_t retries = 0;        // attempts beyond the first
  uint64_t backoff_nanos = 0;  // total backoff requested
  bool gave_up = false;        // exhausted max_attempts on transient errors
};

// True for failures where an immediate retry can plausibly succeed: a
// saturated or glitching device (kIoError) or an explicitly transient
// condition (kUnavailable). Corruption, NotFound, Aborted (CAS races have
// their own loops) and friends are never worth sleeping on.
bool IsTransientError(const Status& s);

// Runs fn until it returns a non-transient status or the attempt budget is
// exhausted; returns fn's last status. `seed_salt` decorrelates the jitter
// streams of concurrent callers sharing one policy (pass a per-call
// counter); with equal salts the backoff sequence is fully deterministic.
Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& fn,
                      RetryStats* stats = nullptr, uint64_t seed_salt = 0);

}  // namespace costperf

#endif  // COSTPERF_COMMON_RETRY_H_
