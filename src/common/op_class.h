#ifndef COSTPERF_COMMON_OP_CLASS_H_
#define COSTPERF_COMMON_OP_CLASS_H_

namespace costperf {

// The paper's operation classes: an MM op completes purely in memory,
// an SS op needed at least one secondary-storage read. Stores publish
// the class of each operation as it completes on the calling thread, so
// harnesses (workload::Runner) can split latency percentiles by class
// without widening the KvStore interface with per-op return metadata.
enum class OpClass : unsigned char { kUnknown = 0, kMm = 1, kSs = 2 };

namespace opclass {

inline thread_local OpClass tls_op_class = OpClass::kUnknown;

// Escalating publish: SS sticks over MM within one harness window, so a
// composite op (read-modify-write, a MultiGet batch) classifies as SS
// when any constituent missed. The harness Reset()s between windows.
inline void Publish(OpClass c) {
  if (c > tls_op_class) tls_op_class = c;
}
inline void Reset() { tls_op_class = OpClass::kUnknown; }
inline OpClass Last() { return tls_op_class; }

}  // namespace opclass
}  // namespace costperf

#endif  // COSTPERF_COMMON_OP_CLASS_H_
