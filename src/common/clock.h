#ifndef COSTPERF_COMMON_CLOCK_H_
#define COSTPERF_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace costperf {

// Time source abstraction. The simulated SSD and the cost-based cache
// manager consume a Clock so tests and deterministic benchmarks can drive
// time manually (VirtualClock) while real measurement runs use RealClock.
class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic nanoseconds since an arbitrary origin.
  virtual uint64_t NowNanos() = 0;

  double NowSeconds() { return static_cast<double>(NowNanos()) * 1e-9; }
};

// Wall-clock-backed monotonic clock.
class RealClock : public Clock {
 public:
  uint64_t NowNanos() override;

  // Process-wide shared instance.
  static RealClock* Global();
};

// Manually advanced clock for deterministic simulation.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(uint64_t start_nanos = 0) : now_(start_nanos) {}

  uint64_t NowNanos() override {
    return now_.load(std::memory_order_acquire);
  }

  void AdvanceNanos(uint64_t delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void AdvanceSeconds(double s) {
    AdvanceNanos(static_cast<uint64_t>(s * 1e9));
  }
  void SetNanos(uint64_t t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<uint64_t> now_;
};

// Thread CPU-time meter, nanoseconds of CPU consumed by the calling thread.
// This is the quantity the paper's R is defined over: "the time the core
// spends executing the operation", excluding I/O wait.
uint64_t ThreadCpuNanos();

// Simple scope timer over an arbitrary clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Clock* clock, uint64_t* out_nanos)
      : clock_(clock), out_(out_nanos), start_(clock->NowNanos()) {}
  ~ScopedTimer() { *out_ += clock_->NowNanos() - start_; }

 private:
  Clock* clock_;
  uint64_t* out_;
  uint64_t start_;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_CLOCK_H_
