#include "common/coding.h"

namespace costperf {

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int i = 0;
  while (v >= 128) {
    buf[i++] = static_cast<unsigned char>(v | 128);
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<const char*>(buf), i);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int i = 0;
  while (v >= 128) {
    buf[i++] = static_cast<unsigned char>(v | 128);
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<const char*>(buf), i);
}

const char* GetVarint64(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 128) {
      result |= (byte & 127) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint32(const char* p, const char* limit, uint32_t* value) {
  uint64_t v64;
  const char* q = GetVarint64(p, limit, &v64);
  if (q == nullptr || v64 > UINT32_MAX) return nullptr;
  *value = static_cast<uint32_t>(v64);
  return q;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

const char* GetLengthPrefixedSlice(const char* p, const char* limit,
                                   Slice* result) {
  uint64_t len;
  p = GetVarint64(p, limit, &len);
  if (p == nullptr || static_cast<uint64_t>(limit - p) < len) return nullptr;
  *result = Slice(p, len);
  return p + len;
}

}  // namespace costperf
