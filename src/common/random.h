#ifndef COSTPERF_COMMON_RANDOM_H_
#define COSTPERF_COMMON_RANDOM_H_

#include <cstdint>
#include <cstring>

namespace costperf {

// Fast xorshift64* PRNG. Deterministic across platforms, which the tests
// and workload generators rely on for reproducible runs.
class Random {
 public:
  explicit Random(uint64_t seed = 0x2545F4914F6CDD1Dull) {
    state_ = seed ? seed : 0x9E3779B97F4A7C15ull;
  }

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi).
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Random byte string of the given length (for value payloads).
  void Fill(char* dst, size_t len) {
    size_t i = 0;
    while (i + 8 <= len) {
      uint64_t v = Next();
      memcpy(dst + i, &v, 8);
      i += 8;
    }
    if (i < len) {
      uint64_t v = Next();
      memcpy(dst + i, &v, len - i);
    }
  }

 private:
  uint64_t state_;
};

// Zipfian distribution over [0, n) with skew theta (YCSB default 0.99),
// using the Gray et al. rejection-free method from "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94), as popularized by YCSB.
class ZipfianGenerator {
 public:
  // items must be >= 1; theta in (0, 1).
  ZipfianGenerator(uint64_t items, double theta = 0.99,
                   uint64_t seed = 0x8badf00d);

  uint64_t Next();

  uint64_t item_count() const { return items_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  double half_pow_theta_;  // pow(0.5, theta), hoisted out of Next()
  // When alpha = 1/(1-theta) is (numerically) a small integer — YCSB's
  // theta=0.99 gives exactly 100 — Next() replaces std::pow with
  // exponentiation by squaring, which is several times cheaper and is
  // the dominant cost of a draw. 0 = use std::pow.
  int alpha_int_ = 0;
  Random rng_;
};

// Zipfian with the rank order scattered across the keyspace via a hash, so
// the hot keys are not clustered at the low end (YCSB "scrambled zipfian").
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t items, double theta = 0.99,
                            uint64_t seed = 0x8badf00d)
      : items_(items), zipf_(items, theta, seed) {}

  uint64_t Next();

 private:
  uint64_t items_;
  ZipfianGenerator zipf_;
};

// Hotspot distribution: a fraction `hot_set` of the keyspace receives a
// fraction `hot_prob` of the accesses; both sets are uniform internally.
// Used by the hot/cold tiering experiments, where the hot set can be
// shifted over time to model a changing working set.
class HotspotGenerator {
 public:
  HotspotGenerator(uint64_t items, double hot_set_fraction, double hot_prob,
                   uint64_t seed = 0xdecafbad);

  uint64_t Next();

  // Rotates the hot region start by `delta` keys (wraps around); models
  // working-set drift.
  void ShiftHotSet(uint64_t delta);

  uint64_t hot_start() const { return hot_start_; }
  uint64_t hot_size() const { return hot_size_; }

 private:
  uint64_t items_;
  uint64_t hot_start_;
  uint64_t hot_size_;
  double hot_prob_;
  Random rng_;
};

// "Latest" distribution (YCSB-D): skewed toward recently inserted items.
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t items, double theta = 0.99,
                           uint64_t seed = 0xfeedface)
      : max_(items ? items : 1), zipf_(max_, theta, seed) {}

  uint64_t Next();

  // Grow the keyspace as items are inserted.
  void set_max(uint64_t max) { max_ = max ? max : 1; }

 private:
  uint64_t max_;
  ZipfianGenerator zipf_;
};

// 64-bit finalizer-style hash (fmix64 from MurmurHash3); good avalanche,
// used for key scrambling and hash-table bucketing.
inline uint64_t Hash64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

// FNV-1a over arbitrary bytes.
uint64_t HashBytes(const char* data, size_t len);

}  // namespace costperf

#endif  // COSTPERF_COMMON_RANDOM_H_
