#ifndef COSTPERF_COMMON_LATCH_H_
#define COSTPERF_COMMON_LATCH_H_

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.h"

namespace costperf {

// Test-and-test-and-set spin latch. Used only on cold paths (flush buffer
// sealing, GC bookkeeping); the hot index paths are latch-free by design.
// A capability under -Wthread-safety: members may be GUARDED_BY a
// SpinLatch and methods may REQUIRES one.
class CAPABILITY("latch") SpinLatch {
 public:
  SpinLatch() : locked_(false) {}

  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() ACQUIRE() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) {
        // spin
      }
    }
  }

  bool TryLock() TRY_ACQUIRE(true) {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() RELEASE() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_;
};

class SCOPED_CAPABILITY SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch* latch) ACQUIRE(latch) : latch_(latch) {
    latch_->Lock();
  }
  ~SpinLatchGuard() RELEASE() { latch_->Unlock(); }

  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch* latch_;
};

// Optimistic version lock in the MassTree style: even = unlocked, odd =
// locked; readers snapshot the version, do their reads, and revalidate.
// Split/insert bump dedicated bits so readers can tell which kind of
// change invalidated them.
//
// Declared a capability for REQUIRES()-style documentation, but Lock/
// Unlock carry no ACQUIRE/RELEASE attributes: the optimistic protocol is
// deliberately unbalanced (readers never lock; writers hand-over-hand
// across nodes), which Clang's analysis cannot express.
class CAPABILITY("version_latch") OptimisticVersion {
 public:
  static constexpr uint64_t kLockBit = 1ull << 0;
  static constexpr uint64_t kInserting = 1ull << 1;
  static constexpr uint64_t kSplitting = 1ull << 2;
  static constexpr uint64_t kDeleted = 1ull << 3;
  static constexpr uint64_t kIsRoot = 1ull << 4;
  static constexpr uint64_t kVInsertDelta = 1ull << 5;   // insert counter lsb
  static constexpr uint64_t kVSplitDelta = 1ull << 20;   // split counter lsb
  static constexpr uint64_t kVInsertMask = ((1ull << 15) - 1) << 5;
  static constexpr uint64_t kVSplitMask = ~((1ull << 20) - 1);

  OptimisticVersion() : v_(0) {}

  uint64_t StableSnapshot() const {
    uint64_t v = v_.load(std::memory_order_acquire);
    while (v & (kLockBit | kInserting | kSplitting)) {
      v = v_.load(std::memory_order_acquire);
    }
    return v;
  }

  // True if the structure may have changed since `snapshot` in a way that
  // invalidates reads (any insert or split).
  bool Changed(uint64_t snapshot) const {
    uint64_t v = v_.load(std::memory_order_acquire);
    return (v & (kVInsertMask | kVSplitMask)) !=
           (snapshot & (kVInsertMask | kVSplitMask));
  }

  void Lock() {
    for (;;) {
      uint64_t v = v_.load(std::memory_order_acquire);
      if (v & kLockBit) continue;
      if (v_.compare_exchange_weak(v, v | kLockBit,
                                   std::memory_order_acq_rel)) {
        return;
      }
    }
  }

  void MarkInserting() {
    v_.fetch_or(kInserting, std::memory_order_acq_rel);
  }
  void MarkSplitting() {
    v_.fetch_or(kSplitting, std::memory_order_acq_rel);
  }

  // Releases the lock; bumps the insert/split counters for any marks set.
  void Unlock() {
    uint64_t v = v_.load(std::memory_order_acquire);
    uint64_t nv = v;
    if (v & kInserting) nv = (nv & ~kInserting) + kVInsertDelta;
    if (v & kSplitting) nv = (nv & ~kSplitting) + kVSplitDelta;
    nv &= ~kLockBit;
    v_.store(nv, std::memory_order_release);
  }

  bool IsDeleted() const {
    return v_.load(std::memory_order_acquire) & kDeleted;
  }
  void MarkDeleted() { v_.fetch_or(kDeleted, std::memory_order_acq_rel); }

  bool IsRoot() const {
    return v_.load(std::memory_order_acquire) & kIsRoot;
  }
  void SetRoot(bool is_root) {
    if (is_root) {
      v_.fetch_or(kIsRoot, std::memory_order_acq_rel);
    } else {
      v_.fetch_and(~kIsRoot, std::memory_order_acq_rel);
    }
  }

  uint64_t raw() const { return v_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> v_;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_LATCH_H_
