#include "common/clock.h"

#include <time.h>

namespace costperf {

namespace {
uint64_t TimespecNanos(const timespec& ts) {
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}
}  // namespace

uint64_t RealClock::NowNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return TimespecNanos(ts);
}

RealClock* RealClock::Global() {
  static RealClock* const instance = new RealClock();
  return instance;
}

uint64_t ThreadCpuNanos() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return TimespecNanos(ts);
}

}  // namespace costperf
