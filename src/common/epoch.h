#ifndef COSTPERF_COMMON_EPOCH_H_
#define COSTPERF_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace costperf {

// Epoch-based memory reclamation for latch-free structures (Bw-tree delta
// chains, mapping-table payloads, MassTree nodes).
//
// Threads enter an epoch (via EpochGuard) before dereferencing shared
// latch-free pointers. Memory retired while any thread might still hold a
// reference is queued with the current global epoch and only freed once
// every thread has advanced past it. This is the same protection scheme
// the Bw-tree paper relies on for its latch-free delta updates.
//
// Retire lists are per thread slot: each registered thread pushes onto
// its own slot's lock-free Treiber stack (one allocation + one CAS, no
// mutex, no cross-thread contention on the hot path). TryReclaim
// harvests every slot's stack with an atomic exchange, frees what is
// safe, and pushes survivors back — so reclamation never blocks
// retirers either.
//
// Usage:
//   EpochManager epochs;
//   { EpochGuard g(&epochs); ... dereference shared pointers ... }
//   epochs.Retire([p]{ delete p; });
//   epochs.TryReclaim();   // called opportunistically
//
// Declared a capability so latch-free structures can document epoch
// protection in REQUIRES() clauses. Enter/Exit themselves carry no
// ACQUIRE/RELEASE attributes: epoch entry is re-entrant per thread
// (nested EpochGuards are legal and common), which the analysis would
// flag as double acquisition.
class CAPABILITY("epoch") EpochManager {
 public:
  static constexpr int kMaxThreads = 64;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Registers the calling thread (idempotent); returns its slot index.
  int RegisterThread();

  // Enter/exit a protected region. Prefer EpochGuard.
  void Enter();
  void Exit();

  // Queues a deleter to run once no thread can still observe the object.
  // Lock-free: pushes onto the calling thread's slot-local retire stack.
  void Retire(std::function<void()> deleter);

  // Advances the global epoch and frees everything retired at epochs that
  // all threads have passed. Returns number of deleters run.
  size_t TryReclaim();

  // Frees everything unconditionally. Only safe when no thread is inside
  // a guard (e.g. destructor, tests).
  size_t ReclaimAll();

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  size_t retired_count() const;

  // Cumulative reclamation counters, for contention-visibility stats:
  // TryReclaim/ReclaimAll calls that freed at least one item, and total
  // items freed.
  uint64_t reclaim_batches() const {
    return reclaim_batches_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed_items() const {
    return reclaimed_items_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kIdle = ~0ull;

  // One retired object: deleter plus the epoch it was retired at, linked
  // into a slot-local Treiber stack.
  struct RetiredNode {
    uint64_t epoch;
    std::function<void()> deleter;
    RetiredNode* next;
  };

  // Smallest epoch any active thread is in, or current epoch if none.
  uint64_t MinActiveEpoch() const;
  // Pushes the chain [head..tail] onto slot's retire stack.
  static void PushChain(std::atomic<RetiredNode*>* stack, RetiredNode* head,
                        RetiredNode* tail);

  std::atomic<uint64_t> global_epoch_;
  // Per-thread reservation + retire list. `reserved` is claimed by
  // Enter with a CAS from kIdle (so slot sharing after a >kMaxThreads
  // wrap makes latecomers wait instead of overwriting a live
  // reservation) and released to kIdle by Exit. The retire-stack head is
  // only contended when threads share a slot or a reclaimer harvests
  // concurrently — both via CAS, never a lock.
  struct alignas(64) Slot {
    std::atomic<uint64_t> reserved{kIdle};
    std::atomic<bool> used{false};
    std::atomic<RetiredNode*> retired{nullptr};
    std::atomic<size_t> retired_len{0};
  };
  Slot slots_[kMaxThreads];
  std::atomic<int> next_slot_;
  std::atomic<uint64_t> reclaim_batches_{0};
  std::atomic<uint64_t> reclaimed_items_{0};
};

// RAII epoch protection.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* mgr) : mgr_(mgr) { mgr_->Enter(); }
  ~EpochGuard() { mgr_->Exit(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* mgr_;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_EPOCH_H_
