#ifndef COSTPERF_COMMON_EPOCH_H_
#define COSTPERF_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace costperf {

// Epoch-based memory reclamation for latch-free structures (Bw-tree delta
// chains, mapping-table payloads, MassTree nodes).
//
// Threads enter an epoch (via EpochGuard) before dereferencing shared
// latch-free pointers. Memory retired while any thread might still hold a
// reference is queued with the current global epoch and only freed once
// every thread has advanced past it. This is the same protection scheme
// the Bw-tree paper relies on for its latch-free delta updates.
//
// Usage:
//   EpochManager epochs;
//   { EpochGuard g(&epochs); ... dereference shared pointers ... }
//   epochs.Retire([p]{ delete p; });
//   epochs.TryReclaim();   // called opportunistically
//
// Declared a capability so latch-free structures can document epoch
// protection in REQUIRES() clauses. Enter/Exit themselves carry no
// ACQUIRE/RELEASE attributes: epoch entry is re-entrant per thread
// (nested EpochGuards are legal and common), which the analysis would
// flag as double acquisition.
class CAPABILITY("epoch") EpochManager {
 public:
  static constexpr int kMaxThreads = 64;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Registers the calling thread (idempotent); returns its slot index.
  int RegisterThread();

  // Enter/exit a protected region. Prefer EpochGuard.
  void Enter();
  void Exit();

  // Queues a deleter to run once no thread can still observe the object.
  void Retire(std::function<void()> deleter);

  // Advances the global epoch and frees everything retired at epochs that
  // all threads have passed. Returns number of deleters run.
  size_t TryReclaim() EXCLUDES(retired_mu_);

  // Frees everything unconditionally. Only safe when no thread is inside
  // a guard (e.g. destructor, tests).
  size_t ReclaimAll() EXCLUDES(retired_mu_);

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  size_t retired_count() const;

 private:
  static constexpr uint64_t kIdle = ~0ull;

  struct RetiredItem {
    uint64_t epoch;
    std::function<void()> deleter;
  };

  // Smallest epoch any active thread is in, or current epoch if none.
  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> global_epoch_;
  // Per-thread reservation: the epoch a thread entered at, or kIdle.
  struct alignas(64) Slot {
    std::atomic<uint64_t> reserved{kIdle};
    std::atomic<bool> used{false};
  };
  Slot slots_[kMaxThreads];
  std::atomic<int> next_slot_;

  mutable Mutex retired_mu_;
  std::vector<RetiredItem> retired_ GUARDED_BY(retired_mu_);
};

// RAII epoch protection.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* mgr) : mgr_(mgr) { mgr_->Enter(); }
  ~EpochGuard() { mgr_->Exit(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* mgr_;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_EPOCH_H_
