#ifndef COSTPERF_COMMON_EPOCH_H_
#define COSTPERF_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace costperf {

// Epoch-based memory reclamation for latch-free structures (Bw-tree delta
// chains, mapping-table payloads, MassTree nodes).
//
// Threads enter an epoch (via EpochGuard) before dereferencing shared
// latch-free pointers. Memory retired while any thread might still hold a
// reference is queued with the current global epoch and only freed once
// every thread has advanced past it. This is the same protection scheme
// the Bw-tree paper relies on for its latch-free delta updates.
//
// Retire lists are per thread slot: each registered thread pushes onto
// its own slot's lock-free Treiber stack (one allocation + one CAS, no
// mutex, no cross-thread contention on the hot path). TryReclaim
// harvests every slot's stack with an atomic exchange, frees what is
// safe, and pushes survivors back — so reclamation never blocks
// retirers either.
//
// Usage:
//   EpochManager epochs;
//   { EpochGuard g(&epochs); ... dereference shared pointers ... }
//   epochs.Retire([p]{ delete p; });
//   epochs.TryReclaim();   // called opportunistically
//
// Declared an epoch capability (thread_annotations.h): functions whose
// contract is "caller must be inside this manager's epoch" say
// REQUIRES_EPOCH(mgr), EpochGuard is the SCOPED_CAPABILITY that
// satisfies it, and -DCOSTPERF_ANALYZE=ON turns an unguarded call path
// into a compile error. Enter/Exit themselves carry no ACQUIRE/RELEASE
// attributes: epoch entry is re-entrant per thread (nested EpochGuards
// across call frames are legal and common), and only the RAII guard —
// which is always strictly scoped — is visible to the analysis. Because
// the analysis is intra-procedural, a callee taking its own nested
// guard is invisible to its caller, so re-entrancy never trips a
// double-acquire diagnostic.
//
// GCC builds keep a dynamic backstop: AssertActive() aborts in debug
// builds when called off-guard, and IsActiveOnThisThread() is always
// available for tests.
class EPOCH_CAPABILITY EpochManager {
 public:
  static constexpr int kMaxThreads = 64;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Registers the calling thread (idempotent); returns its slot index.
  int RegisterThread();

  // Enter/exit a protected region. Prefer EpochGuard.
  COSTPERF_HOT void Enter();
  COSTPERF_HOT void Exit();

  // True iff the calling thread currently holds a live guard (depth > 0)
  // on this manager. Always compiled; costs one TLS slot-cache lookup.
  bool IsActiveOnThisThread() const;

  // Dynamic complement of REQUIRES_EPOCH for compilers without TSA: in
  // debug builds, aborts with a diagnostic if the calling thread is not
  // inside this manager's epoch; in release builds compiles to nothing.
  // The ASSERT_EPOCH attribute tells Clang's analysis the capability is
  // held from here on, so debug backstops never conflict with the
  // static layer.
  void AssertActive() const ASSERT_EPOCH(this) {
#ifndef NDEBUG
    AssertActiveSlow();
#endif
  }

  // Queues a deleter to run once no thread can still observe the object.
  // Lock-free: pushes onto the calling thread's slot-local retire stack.
  void Retire(std::function<void()> deleter);

  // Advances the global epoch and frees everything retired at epochs that
  // all threads have passed. Returns number of deleters run.
  size_t TryReclaim();

  // Frees everything unconditionally. Only safe when no thread is inside
  // a guard (e.g. destructor, tests) — in particular the caller must not
  // hold one, which EXCLUDES_EPOCH makes a compile error under ANALYZE.
  size_t ReclaimAll() EXCLUDES_EPOCH(this);

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  size_t retired_count() const;

  // Cumulative reclamation counters, for contention-visibility stats:
  // TryReclaim/ReclaimAll calls that freed at least one item, and total
  // items freed.
  uint64_t reclaim_batches() const {
    return reclaim_batches_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed_items() const {
    return reclaimed_items_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kIdle = ~0ull;

  // One retired object: deleter plus the epoch it was retired at, linked
  // into a slot-local Treiber stack.
  struct RetiredNode {
    uint64_t epoch;
    std::function<void()> deleter;
    RetiredNode* next;
  };

  // Smallest epoch any active thread is in, or current epoch if none.
  uint64_t MinActiveEpoch() const;
  // Out-of-line body of AssertActive (debug builds only): aborts with a
  // message naming the manager when no live guard covers this thread.
  void AssertActiveSlow() const;
  // Pushes the chain [head..tail] onto slot's retire stack.
  static void PushChain(std::atomic<RetiredNode*>* stack, RetiredNode* head,
                        RetiredNode* tail);

  std::atomic<uint64_t> global_epoch_;
  // Per-thread reservation + retire list. `reserved` is claimed by
  // Enter with a CAS from kIdle (so slot sharing after a >kMaxThreads
  // wrap makes latecomers wait instead of overwriting a live
  // reservation) and released to kIdle by Exit. The retire-stack head is
  // only contended when threads share a slot or a reclaimer harvests
  // concurrently — both via CAS, never a lock.
  struct alignas(64) Slot {
    std::atomic<uint64_t> reserved{kIdle};
    std::atomic<bool> used{false};
    std::atomic<RetiredNode*> retired{nullptr};
    std::atomic<size_t> retired_len{0};
  };
  Slot slots_[kMaxThreads];
  std::atomic<int> next_slot_;
  std::atomic<uint64_t> reclaim_batches_{0};
  std::atomic<uint64_t> reclaimed_items_{0};
};

// RAII epoch protection. A SCOPED_CAPABILITY: constructing one satisfies
// REQUIRES_EPOCH(mgr) for the rest of the scope under ANALYZE. Nested
// guards on the same manager are legal at runtime (re-entrant depth
// counter); keep them in separate call frames — two guards on the same
// manager in one lexical scope would (correctly) be flagged as a double
// acquire by the analysis.
class SCOPED_CAPABILITY EpochGuard {
 public:
  explicit EpochGuard(EpochManager* mgr) ACQUIRE(mgr) : mgr_(mgr) {
    mgr_->Enter();
  }
  ~EpochGuard() RELEASE() { mgr_->Exit(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* mgr_;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_EPOCH_H_
