#ifndef COSTPERF_COMMON_CODING_H_
#define COSTPERF_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace costperf {

// Little-endian fixed and varint encoders for page/log serialization.

inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
// Raw-buffer variants for callers that pre-reserved space (e.g. the log
// store's group-append path encodes into a reserved buffer slice without
// growing the string).
inline void EncodeFixed32(char* dst, uint32_t v) {
  memcpy(dst, &v, sizeof(v));
}
inline void EncodeFixed64(char* dst, uint64_t v) {
  memcpy(dst, &v, sizeof(v));
}
inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

// Varint32/64 in the protobuf wire format.
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

// Parses a varint from [p, limit); returns the position after it, or
// nullptr on malformed/truncated input.
const char* GetVarint32(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64(const char* p, const char* limit, uint64_t* value);

// Length-prefixed slice.
void PutLengthPrefixedSlice(std::string* dst, const Slice& s);
const char* GetLengthPrefixedSlice(const char* p, const char* limit,
                                   Slice* result);

inline int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 128) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace costperf

#endif  // COSTPERF_COMMON_CODING_H_
