#include "common/crc32.h"

#include <cstring>

namespace costperf {

namespace {

// Slicing-by-8 CRC-32C tables (polynomial 0x1EDC6F41, reflected
// 0x82F63B78). Processes 8 bytes per iteration — the table-per-byte
// variant costs ~3ns/B, which would dominate SS-operation cost; this one
// runs at ~0.4ns/B, comparable to hardware-assisted implementations real
// stores use.
struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[slice][i] = c;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables& tables = *new Crc32cTables();
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& tb = Tables();
  uint32_t c = seed ^ 0xFFFFFFFFu;

  // Align-free slicing-by-8 main loop.
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    memcpy(&lo, p, 4);
    memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
        tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^
        tb.t[3][hi & 0xFF] ^ tb.t[2][(hi >> 8) & 0xFF] ^
        tb.t[1][(hi >> 16) & 0xFF] ^ tb.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace costperf
