#ifndef COSTPERF_COMMON_STATUS_H_
#define COSTPERF_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace costperf {

// Error codes used across the library. Modeled on the usual embedded-store
// convention (RocksDB/LevelDB-style) of returning rich status objects
// instead of throwing: storage code paths must be able to report media and
// resource errors cheaply and explicitly.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kIoError,
  kCorruption,
  kResourceExhausted,
  kAborted,        // e.g. transaction conflict
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,    // transient; retry may succeed (e.g. device saturated)
  kNotSupported,
  kInternal,
  kDeadlineExceeded,  // request budget expired before/while serving it
};

// Returns a stable human-readable name ("Ok", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

// A cheap, copyable success/error result. An Ok status carries no
// allocation; error statuses carry a code and an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "IoError: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: a Status or a value. Minimal StatusOr-alike so call sites can
// write `auto r = ...; if (!r.ok()) return r.status();`.
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}     // NOLINT: implicit by design

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_STATUS_H_
