#ifndef COSTPERF_COMMON_HOT_PATH_H_
#define COSTPERF_COMMON_HOT_PATH_H_

// COSTPERF_HOT marks a function as belonging to the allocation-free hot
// path: the per-operation leaf work (epoch enter/exit, mapping-table
// load/CAS, cache-slot probe/touch) whose cost/performance argument in
// the paper depends on doing no heap allocation and no locking.
//
// Under Clang the marker is a [[clang::annotate]] attribute, which the
// costperf-hot-path-allocation clang-tidy check (tools/costperf_tidy)
// reads to reject `new`, `malloc`, and allocating std::string growth
// inside the function body. Under other compilers it compiles to
// nothing. The marker is a contract, not an optimization hint — pair it
// with [[gnu::always_inline]] etc. separately if needed.
//
// Do NOT mark functions that allocate by design (BwTree::Put publishes a
// heap-allocated delta; EpochManager::Retire allocates the retire node).
// The marker is for the leaves that must stay allocation-free.

#if defined(__clang__) && !defined(SWIG)
#define COSTPERF_HOT [[clang::annotate("costperf_hot")]]
#else
#define COSTPERF_HOT
#endif

#endif  // COSTPERF_COMMON_HOT_PATH_H_
