#ifndef COSTPERF_COMMON_HISTOGRAM_H_
#define COSTPERF_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace costperf {

// Log-bucketed histogram for latency/size distributions. Buckets grow
// geometrically (~x1.5) so the structure covers nanoseconds-to-seconds in
// ~100 buckets with bounded relative error on percentile estimates.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  // Percentile estimate by linear interpolation inside the bucket; p in
  // [0,100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // Multi-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

 private:
  static const std::vector<double>& BucketLimits();

  uint64_t count_;
  double sum_;
  double sum_squares_;
  double min_;
  double max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_HISTOGRAM_H_
