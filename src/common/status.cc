#include "common/status.h"

namespace costperf {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace costperf
