#ifndef COSTPERF_COMMON_BATCH_OP_H_
#define COSTPERF_COMMON_BATCH_OP_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace costperf {

// One probe of a batched point read, shared by every layer of the stack
// (KvStore::BatchGet, BwTree::MultiGetBatch, MassTree::LookupBatch): a
// key plus the caller-owned output slots it fills. Scatter-friendly: a
// composite store can hand each inner store an op array whose slots
// point straight into the caller's result buffers, so grouping costs no
// copy-back pass. Being ONE type end to end also means the store layers
// pass the same array straight down to the tree's probe machine — no
// per-layer translation copy on the hot batched-read path.
//
// `value` and `status` must be non-null; *value is meaningful only when
// *status is Ok; `key` must stay valid for the duration of the call.
struct BatchGetOp {
  Slice key;
  std::string* value = nullptr;
  Status* status = nullptr;
};

}  // namespace costperf

#endif  // COSTPERF_COMMON_BATCH_OP_H_
