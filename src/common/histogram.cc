#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace costperf {

const std::vector<double>& Histogram::BucketLimits() {
  static const std::vector<double>& limits = *new std::vector<double>([] {
    std::vector<double> v;
    double limit = 1.0;
    v.push_back(0.0);
    while (limit < 1e13) {
      v.push_back(limit);
      limit *= 1.5;
    }
    v.push_back(std::numeric_limits<double>::infinity());
    return v;
  }());
  return limits;
}

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  buckets_.assign(BucketLimits().size(), 0);
}

void Histogram::Add(double value) {
  const auto& limits = BucketLimits();
  // First bucket whose upper limit is > value.
  size_t b = std::upper_bound(limits.begin(), limits.end(), value) -
             limits.begin();
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  buckets_[b] += 1;
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::min() const { return count_ ? min_ : 0; }
double Histogram::max() const { return count_ ? max_ : 0; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0;
}

double Histogram::stddev() const {
  if (count_ == 0) return 0;
  double n = static_cast<double>(count_);
  double var = (sum_squares_ - sum_ * sum_ / n) / n;
  return var > 0 ? std::sqrt(var) : 0;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const auto& limits = BucketLimits();
  double threshold = static_cast<double>(count_) * (p / 100.0);
  double seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    double next = seen + static_cast<double>(buckets_[b]);
    if (next >= threshold) {
      double lo = (b == 0) ? 0 : limits[b - 1];
      double hi = limits[b];
      if (!std::isfinite(hi)) hi = max_;
      double frac = (threshold - seen) / static_cast<double>(buckets_[b]);
      double r = lo + (hi - lo) * frac;
      return std::clamp(r, min_, max_);
    }
    seen = next;
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu mean=%.2f p50=%.2f p95=%.2f p99=%.2f min=%.2f max=%.2f",
           static_cast<unsigned long long>(count_), mean(), Percentile(50),
           Percentile(95), Percentile(99), min(), max());
  return buf;
}

}  // namespace costperf
