#include "common/random.h"

#include <cmath>
#include <cstring>

namespace costperf {

ZipfianGenerator::ZipfianGenerator(uint64_t items, double theta, uint64_t seed)
    : items_(items ? items : 1), theta_(theta), rng_(seed) {
  zetan_ = Zeta(items_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
  const double rounded = std::round(alpha_);
  if (rounded >= 1.0 && rounded <= 4096.0 &&
      std::abs(alpha_ - rounded) < 1e-9) {
    alpha_int_ = static_cast<int>(rounded);
  }
}

namespace {
// x^n by squaring: ~log2(n) multiplies vs a full pow() call.
inline double PowInt(double x, int n) {
  double result = 1.0;
  while (n > 0) {
    if (n & 1) result *= x;
    x *= x;
    n >>= 1;
  }
  return result;
}
}  // namespace

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // Exact sum for small n; for very large n this O(n) setup cost is paid
  // once per generator, which is fine for our workload sizes (<= 1e8).
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const double base = eta_ * u - eta_ + 1.0;
  const double v =
      static_cast<double>(items_) *
      (alpha_int_ != 0 ? PowInt(base, alpha_int_) : std::pow(base, alpha_));
  uint64_t r = static_cast<uint64_t>(v);
  if (r >= items_) r = items_ - 1;
  return r;
}

uint64_t ScrambledZipfianGenerator::Next() {
  return Hash64(zipf_.Next()) % items_;
}

HotspotGenerator::HotspotGenerator(uint64_t items, double hot_set_fraction,
                                   double hot_prob, uint64_t seed)
    : items_(items ? items : 1),
      hot_start_(0),
      hot_prob_(hot_prob),
      rng_(seed) {
  hot_size_ = static_cast<uint64_t>(
      static_cast<double>(items_) * hot_set_fraction);
  if (hot_size_ == 0) hot_size_ = 1;
  if (hot_size_ > items_) hot_size_ = items_;
}

uint64_t HotspotGenerator::Next() {
  if (rng_.Bernoulli(hot_prob_)) {
    return (hot_start_ + rng_.Uniform(hot_size_)) % items_;
  }
  // Cold access: uniform over the complement (or whole space if hot==all).
  if (hot_size_ == items_) return rng_.Uniform(items_);
  uint64_t off = rng_.Uniform(items_ - hot_size_);
  return (hot_start_ + hot_size_ + off) % items_;
}

void HotspotGenerator::ShiftHotSet(uint64_t delta) {
  hot_start_ = (hot_start_ + delta) % items_;
}

uint64_t LatestGenerator::Next() {
  // Rank 0 maps to the most recently inserted key.
  uint64_t rank = zipf_.Next() % max_;
  return max_ - 1 - rank;
}

uint64_t HashBytes(const char* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace costperf
