#include "common/simd.h"

#if COSTPERF_SIMD_X86
#include <immintrin.h>
#endif

namespace costperf::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar backend: branchless linear count. The arrays involved are short
// (15 entries in MassTree nodes, up to a few hundred slices in a Bw-tree
// base page), so a predicated linear pass beats a branchy binary search
// on mispredict cost and matches the vector backends' access pattern.
// ---------------------------------------------------------------------

size_t LowerBoundScalar(const uint64_t* a, size_t n, uint64_t key) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += a[i] < key ? 1 : 0;
  return count;
}

size_t UpperBoundScalar(const uint64_t* a, size_t n, uint64_t key) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += a[i] <= key ? 1 : 0;
  return count;
}

uint32_t MatchEqScalar(const uint64_t* a, size_t n, uint64_t key) {
  uint32_t mask = 0;
  for (size_t i = 0; i < n; ++i) {
    mask |= (a[i] == key ? 1u : 0u) << i;
  }
  return mask;
}

#if COSTPERF_SIMD_X86

// ---------------------------------------------------------------------
// SSE2 backend (baseline on x86-64). SSE2 has no 64-bit compare, so the
// two lanes are compared with the 32-bit trick: unsigned 64-bit a < b
// == (hi(a) < hi(b)) || (hi(a) == hi(b) && lo(a) < lo(b)), computed
// branchlessly per pair. For the short arrays here the simpler move is
// scalar-per-lane with SIMD-width unrolling; measurements on the node
// sizes involved show the unrolled predicated loop is within noise of a
// hand-built pcmpgtq emulation, so SSE2 keeps the scalar kernels (the
// real vector win is AVX2 below).
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// AVX2 backend: 4 slices per compare. Unsigned order via the sign-flip
// trick (x ^ 1<<63 maps unsigned order onto signed order, which
// vpcmpgtq implements).
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) size_t LowerBoundAvx2(const uint64_t* a,
                                                      size_t n,
                                                      uint64_t key) {
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i k =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(key)), flip);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    v = _mm256_xor_si256(v, flip);
    // a[i] < key  <=>  key > a[i]  (signed, post-flip)
    const __m256i lt = _mm256_cmpgt_epi64(k, v);
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(lt)))));
  }
  for (; i < n; ++i) count += a[i] < key ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) size_t UpperBoundAvx2(const uint64_t* a,
                                                      size_t n,
                                                      uint64_t key) {
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i k =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(key)), flip);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    v = _mm256_xor_si256(v, flip);
    // a[i] <= key  <=>  !(a[i] > key)
    const __m256i gt = _mm256_cmpgt_epi64(v, k);
    count += 4 - static_cast<size_t>(__builtin_popcount(
                     static_cast<unsigned>(
                         _mm256_movemask_pd(_mm256_castsi256_pd(gt)))));
  }
  for (; i < n; ++i) count += a[i] <= key ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) uint32_t MatchEqAvx2(const uint64_t* a,
                                                     size_t n, uint64_t key) {
  const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
  uint32_t mask = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i eq = _mm256_cmpeq_epi64(v, k);
    mask |= static_cast<uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
            << i;
  }
  for (; i < n; ++i) mask |= (a[i] == key ? 1u : 0u) << i;
  return mask;
}

#endif  // COSTPERF_SIMD_X86

// Backend table, resolved once at static-initialization time. The table
// is written before main() and never again, so hot-path reads need no
// synchronization.
struct Backend {
  const char* name;
  size_t (*lower)(const uint64_t*, size_t, uint64_t);
  size_t (*upper)(const uint64_t*, size_t, uint64_t);
  uint32_t (*match)(const uint64_t*, size_t, uint64_t);
};

Backend PickBackend() {
#if COSTPERF_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return Backend{"avx2", LowerBoundAvx2, UpperBoundAvx2, MatchEqAvx2};
  }
  // SSE2 is the x86-64 baseline; its kernels are the unrolled scalar
  // loops (see the backend note above).
  return Backend{"sse2", LowerBoundScalar, UpperBoundScalar, MatchEqScalar};
#else
  return Backend{"scalar", LowerBoundScalar, UpperBoundScalar, MatchEqScalar};
#endif
}

const Backend g_backend = PickBackend();

}  // namespace

const char* BackendName() { return g_backend.name; }

size_t LowerBoundU64(const uint64_t* a, size_t n, uint64_t key) {
  return g_backend.lower(a, n, key);
}

size_t UpperBoundU64(const uint64_t* a, size_t n, uint64_t key) {
  return g_backend.upper(a, n, key);
}

uint32_t MatchEqU64(const uint64_t* a, size_t n, uint64_t key) {
  return g_backend.match(a, n, key);
}

}  // namespace costperf::simd
