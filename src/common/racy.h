#ifndef COSTPERF_COMMON_RACY_H_
#define COSTPERF_COMMON_RACY_H_

// Relaxed access to plain fields that optimistic readers inspect while a
// latch-holding writer mutates them in place (MassTree node slots: the
// version snapshot/recheck discards any torn result). The __atomic
// builtins work on ordinary objects, compile to the same mov as a plain
// access on x86-64, and mark the overlap as intentional so TSan checks
// the validation protocol instead of reporting every reader/writer
// interleaving as a bug.
//
// COSTPERF_TSAN gates snapshot-then-search copies in front of SIMD
// kernels: vector loads cannot carry atomic semantics, so under TSan the
// racy array is first captured slot-by-slot with RacyLoad.

#if defined(__SANITIZE_THREAD__)
#define COSTPERF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define COSTPERF_TSAN 1
#endif
#endif
#ifndef COSTPERF_TSAN
#define COSTPERF_TSAN 0
#endif

namespace costperf {

template <typename T>
inline T RacyLoad(const T* p) {
  return __atomic_load_n(p, __ATOMIC_RELAXED);
}

template <typename T>
inline void RacyStore(T* p, T v) {
  __atomic_store_n(p, v, __ATOMIC_RELAXED);
}

}  // namespace costperf

#endif  // COSTPERF_COMMON_RACY_H_
