#ifndef COSTPERF_COMMON_LOCK_ORDER_H_
#define COSTPERF_COMMON_LOCK_ORDER_H_

#include "common/thread_annotations.h"

// Global lock-acquisition order, declared as a chain of marker
// capabilities. The concrete mutexes live as private members of classes
// that cannot name each other (CacheManager's shard mutex cannot appear
// in LogStructuredStore's header and vice versa), so each one instead
// anchors itself ACQUIRED_BEFORE/ACQUIRED_AFTER the rank markers below;
// Clang's analysis stitches the per-mutex edges into one transitive
// graph and flags any acquisition that inverts it (enforced by the
// -Wthread-safety-beta flag the ANALYZE lane adds — acquired_before/
// after are beta-gated warnings).
//
// The declared order, outermost first (see DESIGN.md "Lock order"):
//
//   1. store maintenance   CachingStore::maintenance_mu_ — held across a
//                          whole maintenance pass (eviction, GC, merges),
//                          so it nests outside every I/O and cache latch.
//   2. log append          LogStructuredStore::mu_ — the append/group-
//                          commit latch; may be held across (simulated)
//                          media waits, so nothing below it may stall.
//   3. cache shard         CacheManager::Shard::mu — short structural
//                          latch; in particular it must NEVER be held
//                          across a log append: a stalling append under
//                          a shard latch would block that shard's
//                          Insert/Erase for the duration of the I/O.
//   4. scheduler queue     MaintenanceScheduler::mu_ — pure leaf: Signal
//                          runs on op paths and workers drop it before
//                          running a step, so it may never wrap another
//                          lock on this list.
//
// The markers are never locked; they exist only as graph nodes. A
// RankTag carries the generic "mutex" capability kind so the analysis
// relates it to the Mutex wrappers it orders.

namespace costperf::lock_rank {

class CAPABILITY("mutex") RankTag {};

inline RankTag kStoreMaintenance;
inline RankTag kLogAppend ACQUIRED_AFTER(kStoreMaintenance);
inline RankTag kCacheShard ACQUIRED_AFTER(kLogAppend);
inline RankTag kSchedulerQueue ACQUIRED_AFTER(kCacheShard);

}  // namespace costperf::lock_rank

#endif  // COSTPERF_COMMON_LOCK_ORDER_H_
