#ifndef COSTPERF_COSTMODEL_CALIBRATION_H_
#define COSTPERF_COSTMODEL_CALIBRATION_H_

#include <functional>
#include <string>
#include <vector>

#include "costmodel/cost_params.h"
#include "costmodel/mixed_workload.h"

namespace costperf::costmodel {

// Translates running-system measurements into CostParams inputs, so the
// model's R / ROPS / IOPS come from our substrate the same way the paper's
// came from its experiments.

struct CalibrationReport {
  double rops = 0;          // measured MM ops/sec (one thread)
  double iops = 0;          // measured device IOPS capability
  double r = 0;             // fitted SS/MM execution ratio
  double r_min = 0;         // min per-point R across observations
  double r_max = 0;         // max per-point R across observations
  std::vector<MixedObservation> observations;
  double p0 = 0;            // all-cached ops/sec used for R derivation

  std::string ToString() const;
};

// Measures MM ops/sec by timing `op` (which must perform exactly one MM
// operation per call) with thread-CPU time over `iterations` calls.
double MeasureRops(const std::function<void()>& op, uint64_t iterations);

// Derives R from observations via Eq. (3) per point and a least-squares
// fit overall (paper §2.2: "R was 5.8 ± 30% over most of the range").
CalibrationReport DeriveRFromObservations(
    double p0, const std::vector<MixedObservation>& observations);

// Applies a report onto params (rops/iops/r), returning the updated copy.
CostParams ApplyCalibration(const CostParams& base,
                            const CalibrationReport& report);

}  // namespace costperf::costmodel

#endif  // COSTPERF_COSTMODEL_CALIBRATION_H_
