#ifndef COSTPERF_COSTMODEL_OPERATION_COST_H_
#define COSTPERF_COSTMODEL_OPERATION_COST_H_

#include <string>

#include "costmodel/cost_params.h"

namespace costperf::costmodel {

// Cost-per-second of keeping one page and operating on it at a given rate
// (paper §3.2, Equations (4) and (5); Fig. 8 adds the compressed tier).
// Costs carry the paper's implicit 1/L lifetime factor, which cancels in
// all comparisons.

// Decomposed cost so benches can print storage vs execution contributions.
struct CostBreakdown {
  double storage = 0;    // $/lifetime for media rental
  double execution = 0;  // $/lifetime for CPU (+ SSD I/O capability)
  double total() const { return storage + execution; }
};

// Equation (4): MM operation. Page lives in DRAM *and* on flash (for
// durability); execution is one MM op on the processor, N times a second.
CostBreakdown MmCost(double ops_per_sec, const CostParams& p);

// Equation (5): SS operation. Page lives only on flash; execution charges
// R processor-op times plus one SSD I/O per operation.
CostBreakdown SsCost(double ops_per_sec, const CostParams& p);

// Fig. 8 CSS operation: page lives compressed on flash (smaller storage),
// execution charges R + decompress_r processor-op times plus one I/O.
CostBreakdown CssCost(double ops_per_sec, const CostParams& p,
                      const CompressionParams& c);

// The operation tiers the model can place a page in.
enum class Tier { kMainMemory, kSecondaryStorage, kCompressedSecondary };

std::string TierName(Tier t);

// Cheapest tier for a page accessed ops_per_sec times a second. Without
// compression params, chooses between MM and SS only.
Tier CheapestTier(double ops_per_sec, const CostParams& p);
Tier CheapestTier(double ops_per_sec, const CostParams& p,
                  const CompressionParams& c);

}  // namespace costperf::costmodel

#endif  // COSTPERF_COSTMODEL_OPERATION_COST_H_
