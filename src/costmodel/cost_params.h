#ifndef COSTPERF_COSTMODEL_COST_PARAMS_H_
#define COSTPERF_COSTMODEL_COST_PARAMS_H_

#include <cstdint>
#include <string>

namespace costperf::costmodel {

// Infrastructure prices and measured performance quantities that feed the
// cost model (paper §3.1, §4.1).
//
// All "$" quantities are dollars; the common lifetime divisor L cancels in
// every comparison the model makes, exactly as in the paper, so costs are
// reported in dollars amortized over a lifetime (relative values are the
// meaningful output).
struct CostParams {
  // --- prices ---
  double dram_cost_per_byte = 5e-9;     // $M  ($5/GB)
  double flash_cost_per_byte = 0.5e-9;  // $Fl ($0.5/GB)
  double processor_cost = 300.0;        // $P  (one core's share)
  double ssd_io_capability_cost = 50.0; // $I  (SSD price minus flash price)

  // --- measured rates ---
  double rops = 4e6;    // MM operations/sec a core sustains (paper 4-core)
  double iops = 2e5;    // device max I/O operations/sec
  double r = 5.8;       // SS/MM CPU execution-time ratio (Eq. 3)

  // --- data layout ---
  double page_size_bytes = 2.7e3;  // average page footprint P_s (§4.1)

  // Paper §4.1 constants. (These are also the field defaults; the named
  // constructor documents provenance at call sites.)
  static CostParams PaperDefaults() { return CostParams{}; }

  std::string ToString() const;
};

// Parameters of the compressed secondary-storage tier (paper §7.2, Fig. 8).
struct CompressionParams {
  // Compressed bytes / raw bytes, in (0, 1].
  double compression_ratio = 0.5;
  // Extra CPU per operation for decompression, expressed as a multiple of
  // an MM operation's execution time (so the CSS execution ratio becomes
  // r + decompress_r).
  double decompress_r = 3.0;
};

}  // namespace costperf::costmodel

#endif  // COSTPERF_COSTMODEL_COST_PARAMS_H_
