#include "costmodel/masstree_compare.h"

namespace costperf::costmodel {

double BwTreeCostPerOp(double t_i_seconds, const SystemComparison& sys,
                       const CostParams& p) {
  return t_i_seconds * sys.database_bytes * p.dram_cost_per_byte +
         p.processor_cost / p.rops;
}

double MassTreeCostPerOp(double t_i_seconds, const SystemComparison& sys,
                         const CostParams& p) {
  return t_i_seconds * sys.mx * sys.database_bytes * p.dram_cost_per_byte +
         p.processor_cost / (sys.px * p.rops);
}

double CrossoverCoefficient(const SystemComparison& sys, const CostParams& p) {
  return (p.processor_cost / p.rops) * (1.0 / p.dram_cost_per_byte) *
         (sys.px - 1.0) / (sys.px * (sys.mx - 1.0));
}

double CrossoverIntervalSeconds(const SystemComparison& sys,
                                const CostParams& p) {
  return CrossoverCoefficient(sys, p) / sys.database_bytes;
}

double CrossoverOpsPerSec(const SystemComparison& sys, const CostParams& p) {
  return 1.0 / CrossoverIntervalSeconds(sys, p);
}

}  // namespace costperf::costmodel
