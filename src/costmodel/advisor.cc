#include "costmodel/advisor.h"

#include <algorithm>
#include <cstdio>

#include "costmodel/five_minute_rule.h"

namespace costperf::costmodel {

CostAdvisor::CostAdvisor(CostParams params)
    : params_(params),
      breakeven_interval_(BreakevenIntervalSeconds(params_)) {}

CostAdvisor::CostAdvisor(CostParams params, CompressionParams compression)
    : params_(params),
      compression_(compression),
      breakeven_interval_(BreakevenIntervalSeconds(params_)) {}

Advice CostAdvisor::AdviseForRate(double ops_per_sec) const {
  Advice a;
  a.mm_cost = MmCost(ops_per_sec, params_).total();
  a.ss_cost = SsCost(ops_per_sec, params_).total();
  double best = std::min(a.mm_cost, a.ss_cost);
  double worst = std::max(a.mm_cost, a.ss_cost);
  a.tier = a.mm_cost <= a.ss_cost ? Tier::kMainMemory
                                  : Tier::kSecondaryStorage;
  if (compression_.has_value()) {
    double css = CssCost(ops_per_sec, params_, *compression_).total();
    a.css_cost = css;
    if (css < best) {
      best = css;
      a.tier = Tier::kCompressedSecondary;
    }
    worst = std::max(worst, css);
  }
  a.savings_vs_worst = worst - best;
  return a;
}

Advice CostAdvisor::AdviseForInterval(double interval_seconds) const {
  // A page never accessed belongs on the cheapest storage.
  double rate = interval_seconds > 0 ? 1.0 / interval_seconds : 1e12;
  return AdviseForRate(rate);
}

bool CostAdvisor::ShouldEvict(double idle_seconds) const {
  return idle_seconds > breakeven_interval_;
}

std::string CostAdvisor::DescribeRegimes() const {
  char buf[512];
  double n_star = MmSsBreakevenOpsPerSec(params_);
  if (compression_.has_value()) {
    double css_ss = CssSsBreakevenOpsPerSec(params_, *compression_);
    snprintf(buf, sizeof(buf),
             "CSS cheapest below %.3g ops/sec; SS cheapest in [%.3g, %.3g) "
             "ops/sec; MM cheapest above %.3g ops/sec (T_i = %.1f s)",
             css_ss, css_ss, n_star, n_star, breakeven_interval_);
  } else {
    snprintf(buf, sizeof(buf),
             "SS cheapest below %.3g ops/sec; MM cheapest above %.3g "
             "ops/sec (T_i = %.1f s)",
             n_star, n_star, breakeven_interval_);
  }
  return buf;
}

}  // namespace costperf::costmodel
