#ifndef COSTPERF_COSTMODEL_FIVE_MINUTE_RULE_H_
#define COSTPERF_COSTMODEL_FIVE_MINUTE_RULE_H_

#include "costmodel/cost_params.h"

namespace costperf::costmodel {

// The paper's updated five-minute rule (§4.2, Equation (6)).
//
// Setting Eq. (4) equal to Eq. (5) and solving for the inter-access
// interval T_i = 1/N:
//
//   T_i = (1 / ($M * P_s)) * [ $I/IOPS + (R-1) * $P/ROPS ]
//
// Pages accessed more often than once per T_i are cheaper in main memory;
// pages accessed less often are cheaper evicted to flash. The paper
// evaluates this at its §4.1 constants to T_i ≈ 45 seconds.

// Breakeven inter-access interval in seconds (Eq. 6).
double BreakevenIntervalSeconds(const CostParams& p);

// Breakeven rate N = 1/T_i in accesses/sec.
double BreakevenOpsPerSec(const CostParams& p);

// Record-granularity variant (§6.3): the same rule with the record's
// footprint in place of the page size. With 10 records per page the
// breakeven interval grows ~10x, widening the range where caching the
// record is the cheapest choice.
double RecordBreakevenIntervalSeconds(const CostParams& p,
                                      double record_size_bytes);

// Gray's classic formulation for reference: only the I/O-vs-memory storage
// trade, i.e. Eq. (6) without the (R-1)*$P/ROPS CPU-path term. The gap
// between the two is the paper's "additional cost" insight — as SSD IOPS
// get cheap, the CPU cost of executing the I/O dominates the breakeven.
double ClassicBreakevenIntervalSeconds(const CostParams& p);

// Breakeven between SS and the compressed tier (Fig. 8's left crossover):
// the access rate below which CSS (smaller storage, more CPU) is cheaper
// than plain SS. Returns +inf if CSS is never cheaper, 0 if always.
double CssSsBreakevenOpsPerSec(const CostParams& p,
                               const CompressionParams& c);

// Breakeven rate between MM and SS (the Fig. 2 crossover; equals
// BreakevenOpsPerSec but named for symmetry with the CSS variant).
double MmSsBreakevenOpsPerSec(const CostParams& p);

}  // namespace costperf::costmodel

#endif  // COSTPERF_COSTMODEL_FIVE_MINUTE_RULE_H_
