#ifndef COSTPERF_COSTMODEL_ADVISOR_H_
#define COSTPERF_COSTMODEL_ADVISOR_H_

#include <optional>
#include <string>
#include <vector>

#include "costmodel/cost_params.h"
#include "costmodel/operation_cost.h"

namespace costperf::costmodel {

// Placement advice for one page/record given its observed access pattern.
struct Advice {
  Tier tier = Tier::kMainMemory;
  double mm_cost = 0;   // $/lifetime at the observed rate
  double ss_cost = 0;
  std::optional<double> css_cost;  // set when compression enabled
  double savings_vs_worst = 0;     // best-vs-worst total cost delta
};

// The paper's analysis packaged as a decision component (§4.2: "A data
// caching system can use the breakeven point for guidance in choosing the
// lower cost operation"). The LLAMA cache manager's cost-based eviction
// policy and the cost_advisor example are both built on this.
class CostAdvisor {
 public:
  explicit CostAdvisor(CostParams params);
  CostAdvisor(CostParams params, CompressionParams compression);

  // Advice for a page accessed every `interval_seconds` on average.
  Advice AdviseForInterval(double interval_seconds) const;
  // Advice for a page accessed `ops_per_sec` times per second.
  Advice AdviseForRate(double ops_per_sec) const;

  // True if a page last touched `idle_seconds` ago should be evicted under
  // the updated five-minute rule (idle time exceeds breakeven T_i).
  bool ShouldEvict(double idle_seconds) const;

  // The MM/SS breakeven interval this advisor operates with.
  double breakeven_interval_seconds() const { return breakeven_interval_; }

  const CostParams& params() const { return params_; }
  bool compression_enabled() const { return compression_.has_value(); }

  // Human-readable multi-line summary of the regime boundaries.
  std::string DescribeRegimes() const;

 private:
  CostParams params_;
  std::optional<CompressionParams> compression_;
  double breakeven_interval_;
};

}  // namespace costperf::costmodel

#endif  // COSTPERF_COSTMODEL_ADVISOR_H_
