#include "costmodel/calibration.h"

#include <algorithm>
#include <cstdio>

#include "common/clock.h"

namespace costperf::costmodel {

double MeasureRops(const std::function<void()>& op, uint64_t iterations) {
  if (iterations == 0) return 0;
  const uint64_t start = ThreadCpuNanos();
  for (uint64_t i = 0; i < iterations; ++i) op();
  const uint64_t end = ThreadCpuNanos();
  const double secs = static_cast<double>(end - start) * 1e-9;
  return secs > 0 ? static_cast<double>(iterations) / secs : 0;
}

CalibrationReport DeriveRFromObservations(
    double p0, const std::vector<MixedObservation>& observations) {
  CalibrationReport rep;
  rep.p0 = p0;
  rep.observations = observations;
  rep.r = FitR(p0, observations);
  rep.r_min = rep.r_max = rep.r;
  bool first = true;
  for (const auto& ob : observations) {
    if (ob.f <= 0 || ob.pf <= 0) continue;
    double r = DeriveR(p0, ob.pf, ob.f);
    if (first) {
      rep.r_min = rep.r_max = r;
      first = false;
    } else {
      rep.r_min = std::min(rep.r_min, r);
      rep.r_max = std::max(rep.r_max, r);
    }
  }
  return rep;
}

CostParams ApplyCalibration(const CostParams& base,
                            const CalibrationReport& report) {
  CostParams p = base;
  if (report.rops > 0) p.rops = report.rops;
  if (report.iops > 0) p.iops = report.iops;
  if (report.r > 0) p.r = report.r;
  return p;
}

std::string CalibrationReport::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "rops=%.3g iops=%.3g R=%.2f (range %.2f..%.2f) p0=%.3g over %zu "
           "observations",
           rops, iops, r, r_min, r_max, p0, observations.size());
  return buf;
}

std::string CostParams::ToString() const {
  char buf[320];
  snprintf(buf, sizeof(buf),
           "$M=%.3g/B $Fl=%.3g/B $P=$%.0f $I=$%.0f ROPS=%.3g IOPS=%.3g "
           "R=%.2f Ps=%.0fB",
           dram_cost_per_byte, flash_cost_per_byte, processor_cost,
           ssd_io_capability_cost, rops, iops, r, page_size_bytes);
  return buf;
}

}  // namespace costperf::costmodel
